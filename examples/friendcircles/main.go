// Friendcircles demonstrates the paper's first motivating scenario
// (Sect. I): circle-based friend suggestion. On a Facebook-like social
// graph it trains one proximity model per circle (family, classmate) and
// suggests friends for the same user under each circle — with dual-stage
// training, so only a fraction of the metagraphs is ever matched.
package main

import (
	"fmt"
	"log"

	semprox "repro"
	"repro/internal/dataset"
	"repro/internal/mining"
)

func main() {
	log.SetFlags(0)

	ds := dataset.Facebook(dataset.Config{Users: 300, Seed: 42, NoiseRate: 0.05})
	g := ds.G
	fmt.Printf("social graph: %d nodes, %d edges, %d attribute types\n",
		g.NumNodes(), g.NumEdges(), g.NumTypes())

	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 5}
	opts.Train.Restarts = 3
	opts.Train.MaxIters = 300
	eng, err := semprox.NewEngine(g, "user", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metagraph vocabulary: %d\n\n", eng.NumMetagraphs())

	users := ds.Users()
	// Train each circle with dual-stage training: metapath seeds plus 25
	// heuristically chosen candidates.
	for _, circle := range ds.ClassNames() {
		labels := ds.Classes[circle]
		examples := semprox.MakeExamples(labels, labels.Queries(), users, 300, 7)
		before := eng.MatchedCount()
		eng.TrainDualStage(circle, examples, 25)
		fmt.Printf("trained circle %-9s on %d examples (matched %d more metagraphs, %d/%d total)\n",
			circle, len(examples), eng.MatchedCount()-before, eng.MatchedCount(), eng.NumMetagraphs())
	}

	// Pick a user that has labeled partners in both circles so the contrast
	// is visible.
	var probe semprox.NodeID = semprox.InvalidNode
	for _, u := range users {
		if len(ds.Classes["family"][u]) > 0 && len(ds.Classes["classmate"][u]) > 0 {
			probe = u
			break
		}
	}
	if probe == semprox.InvalidNode {
		probe = users[0]
	}

	fmt.Printf("\nfriend suggestions for %s, by circle:\n", g.Name(probe))
	for _, circle := range ds.ClassNames() {
		res, err := eng.Query(circle, probe, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s:", circle)
		hits := 0
		for _, r := range res {
			mark := ""
			if ds.Classes[circle].Has(probe, r.Node) {
				mark = "*"
				hits++
			}
			fmt.Printf("  %s%s(%.2f)", g.Name(r.Node), mark, r.Score)
		}
		fmt.Printf("   [%d/%d in circle]\n", hits, len(res))
	}
	fmt.Println("\n(* = pair labeled with that circle in the ground truth)")
}
