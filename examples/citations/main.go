// Citations demonstrates the paper's second motivating scenario
// (Sect. I): context-aware citation search. On a synthetic citation graph
// connecting papers to authors, venues and keywords, two semantic classes
// of paper–paper proximity are trained:
//
//	same-problem — papers attacking the same core problem (shared
//	               keywords and venue)
//	same-group   — papers from the same research group (shared authors),
//	               the typical source of background citations
//
// Given a query paper, the two models surface different papers — filtering
// citations by context rather than by a generic relevance score.
package main

import (
	"fmt"
	"log"
	"math/rand"

	semprox "repro"
	"repro/internal/mining"
)

const (
	nPapers   = 260
	nAuthors  = 80
	nVenues   = 8
	nKeywords = 40
	nProblems = 26 // latent "core problems", 10 papers each
	nGroups   = 20 // latent research groups
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(11))

	// Build the citation graph. Papers of the same latent problem share
	// keywords (and often a venue); papers of the same latent group share
	// authors.
	b := semprox.NewGraphBuilder()
	papers := make([]semprox.NodeID, nPapers)
	problem := make([]int, nPapers)
	group := make([]int, nPapers)

	authors := make([]semprox.NodeID, nAuthors)
	for i := range authors {
		authors[i] = b.AddNodeOnce("author", fmt.Sprintf("author-%d", i))
	}
	venues := make([]semprox.NodeID, nVenues)
	for i := range venues {
		venues[i] = b.AddNodeOnce("venue", fmt.Sprintf("venue-%d", i))
	}
	keywords := make([]semprox.NodeID, nKeywords)
	for i := range keywords {
		keywords[i] = b.AddNodeOnce("keyword", fmt.Sprintf("kw-%d", i))
	}

	for i := range papers {
		papers[i] = b.AddNodeOnce("paper", fmt.Sprintf("paper-%03d", i))
		problem[i] = i % nProblems
		group[i] = rng.Intn(nGroups)

		// Problem structure: two signature keywords plus a noisy one, and a
		// preferred venue.
		b.AddEdge(papers[i], keywords[(problem[i]*2)%nKeywords])
		b.AddEdge(papers[i], keywords[(problem[i]*2+1)%nKeywords])
		b.AddEdge(papers[i], keywords[rng.Intn(nKeywords)])
		if rng.Float64() < 0.7 {
			b.AddEdge(papers[i], venues[problem[i]%nVenues])
		} else {
			b.AddEdge(papers[i], venues[rng.Intn(nVenues)])
		}
		// Group structure: 2–3 authors from the group's author block.
		base := group[i] * (nAuthors / nGroups)
		for k := 0; k < 2+rng.Intn(2); k++ {
			b.AddEdge(papers[i], authors[base+rng.Intn(nAuthors/nGroups)])
		}
	}
	g := b.MustBuild()
	fmt.Println("citation graph:", g)

	// Ground truth for the two contexts.
	sameProblem := semprox.Labels{}
	sameGroup := semprox.Labels{}
	for i := 0; i < nPapers; i++ {
		for j := i + 1; j < nPapers; j++ {
			if problem[i] == problem[j] {
				sameProblem.Add(papers[i], papers[j])
			}
			if group[i] == group[j] {
				sameGroup.Add(papers[i], papers[j])
			}
		}
	}

	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 4}
	opts.Train.Restarts = 3
	opts.Train.MaxIters = 300
	eng, err := semprox.NewEngine(g, "paper", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d paper–paper metagraphs\n\n", eng.NumMetagraphs())

	for name, labels := range map[string]semprox.Labels{
		"same-problem": sameProblem,
		"same-group":   sameGroup,
	} {
		examples := semprox.MakeExamples(labels, labels.Queries(), papers, 400, 5)
		eng.Train(name, examples)
		fmt.Printf("trained context %-12s on %d examples\n", name, len(examples))
	}

	q := papers[0]
	fmt.Printf("\ncontext-aware search for %s (problem %d, group %d):\n",
		g.Name(q), problem[0], group[0])
	for _, context := range []string{"same-problem", "same-group"} {
		res, err := eng.Query(context, q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s:", context)
		correct := 0
		for _, r := range res {
			idx := int(r.Node - papers[0])
			tag := ""
			switch {
			case context == "same-problem" && problem[idx] == problem[0]:
				tag = "*"
				correct++
			case context == "same-group" && group[idx] == group[0]:
				tag = "*"
				correct++
			}
			fmt.Printf("  %s%s", g.Name(r.Node), tag)
		}
		fmt.Printf("   [%d/%d correct]\n", correct, len(res))
	}
	fmt.Println("\n(* = shares the query's latent problem/group)")
}
