// Quickstart reproduces the paper's running example (Fig. 1): a toy social
// network where the same query node has different closest nodes under
// different semantic classes. It builds the graph through the public API,
// trains two classes (classmate, family) from a handful of triplets, and
// prints the rankings of Fig. 1(b).
package main

import (
	"fmt"
	"log"

	semprox "repro"
	"repro/internal/mining"
)

func main() {
	log.SetFlags(0)

	// Build the toy graph of Fig. 1(a): each user and each attribute value
	// is a node; AddNodeOnce deduplicates shared attribute values.
	b := semprox.NewGraphBuilder()
	alice := b.AddNodeOnce("user", "Alice")
	bob := b.AddNodeOnce("user", "Bob")
	kate := b.AddNodeOnce("user", "Kate")
	jay := b.AddNodeOnce("user", "Jay")
	tom := b.AddNodeOnce("user", "Tom")

	attach := func(u semprox.NodeID, typ, value string) {
		b.AddEdge(u, b.AddNodeOnce(typ, value))
	}
	attach(alice, "surname", "Clinton")
	attach(bob, "surname", "Clinton")
	attach(alice, "address", "123 Green St")
	attach(bob, "address", "123 Green St")
	attach(kate, "address", "456 White St")
	attach(jay, "address", "456 White St")
	attach(bob, "school", "College A")
	attach(tom, "school", "College A")
	attach(kate, "school", "College B")
	attach(jay, "school", "College B")
	attach(bob, "major", "Economics")
	attach(tom, "major", "Economics")
	attach(kate, "major", "Physics")
	attach(jay, "major", "Physics")
	attach(alice, "employer", "Company X")
	attach(kate, "employer", "Company X")
	attach(alice, "hobby", "Music")
	attach(kate, "hobby", "Music")
	g := b.MustBuild()
	fmt.Println("graph:", g)

	// Mine the metagraph set and prepare the engine. The toy graph is tiny,
	// so every structure occurs once and the support threshold is 1.
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
	eng, err := semprox.NewEngine(g, "user", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d symmetric metagraphs with a user–user anchor pair\n\n", eng.NumMetagraphs())

	// Supervision, as in Fig. 1(b): for classmates, Jay ranks before Alice
	// w.r.t. Kate and Tom before Alice w.r.t. Bob; for family, Alice ranks
	// before Tom w.r.t. Bob.
	eng.Train("classmate", []semprox.Example{
		{Q: kate, X: jay, Y: alice},
		{Q: bob, X: tom, Y: alice},
	})
	eng.Train("family", []semprox.Example{
		{Q: bob, X: alice, Y: tom},
		{Q: bob, X: alice, Y: kate},
	})

	// The same query node, two semantic classes, two different answers —
	// the point of semantic proximity search.
	for _, tc := range []struct {
		class string
		query semprox.NodeID
	}{
		{"classmate", kate},
		{"classmate", bob},
		{"family", bob},
	} {
		res, err := eng.Query(tc.class, tc.query, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s closest to %-5s:", tc.class, g.Name(tc.query))
		for _, r := range res {
			fmt.Printf("  %s (π=%.2f)", g.Name(r.Node), r.Score)
		}
		fmt.Println()
	}
}
