// Package eval provides the evaluation substrate of Sect. V-A: binary
// relevance ground truth per semantic class, NDCG@k and MAP@k against the
// ideal ranking, repeated random train/test query splits, and pairwise
// training-triplet generation.
package eval

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Ranker is the minimal interface the harness needs from a proximity
// system; every system in internal/baselines satisfies it.
type Ranker interface {
	Name() string
	Rank(q graph.NodeID) []core.Ranked
}

// Relevance is the set of nodes belonging to the desired class w.r.t. one
// query.
type Relevance map[graph.NodeID]bool

// Labels is a class's ground truth: query node → relevant set. The
// relation is symmetric for the symmetric classes this paper considers.
type Labels map[graph.NodeID]Relevance

// Add records that x and y belong to the class w.r.t. each other.
func (l Labels) Add(x, y graph.NodeID) {
	if x == y {
		return
	}
	if l[x] == nil {
		l[x] = make(Relevance)
	}
	if l[y] == nil {
		l[y] = make(Relevance)
	}
	l[x][y] = true
	l[y][x] = true
}

// Remove deletes the pair from the class.
func (l Labels) Remove(x, y graph.NodeID) {
	if l[x] != nil {
		delete(l[x], y)
		if len(l[x]) == 0 {
			delete(l, x)
		}
	}
	if l[y] != nil {
		delete(l[y], x)
		if len(l[y]) == 0 {
			delete(l, y)
		}
	}
}

// Has reports whether the pair belongs to the class.
func (l Labels) Has(x, y graph.NodeID) bool { return l[x] != nil && l[x][y] }

// NumPairs returns the number of labeled pairs.
func (l Labels) NumPairs() int {
	n := 0
	for _, rel := range l {
		n += len(rel)
	}
	return n / 2
}

// Queries returns the nodes usable as queries — those with at least one
// relevant partner (Sect. V-A) — in ascending order.
func (l Labels) Queries() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(l))
	for q, rel := range l {
		if len(rel) > 0 {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NDCGAt computes NDCG@k of a ranking against binary relevance: the ideal
// ranking places all relevant nodes first.
func NDCGAt(ranking []core.Ranked, rel Relevance, k int) float64 {
	if len(rel) == 0 {
		return 0
	}
	dcg := 0.0
	n := k
	if len(ranking) < n {
		n = len(ranking)
	}
	for i := 0; i < n; i++ {
		if rel[ranking[i].Node] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	r := len(rel)
	if r > k {
		r = k
	}
	for i := 0; i < r; i++ {
		ideal += 1 / math.Log2(float64(i)+2)
	}
	return dcg / ideal
}

// APAt computes average precision at cutoff k against binary relevance.
func APAt(ranking []core.Ranked, rel Relevance, k int) float64 {
	if len(rel) == 0 {
		return 0
	}
	n := k
	if len(ranking) < n {
		n = len(ranking)
	}
	hits := 0
	sum := 0.0
	for i := 0; i < n; i++ {
		if rel[ranking[i].Node] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	denom := len(rel)
	if denom > k {
		denom = k
	}
	return sum / float64(denom)
}

// Result is an averaged accuracy measurement.
type Result struct {
	NDCG float64
	MAP  float64
}

// Evaluate averages NDCG@k and AP@k of the ranker over the given queries.
func Evaluate(r Ranker, labels Labels, queries []graph.NodeID, k int) Result {
	if len(queries) == 0 {
		return Result{}
	}
	var res Result
	for _, q := range queries {
		ranking := r.Rank(q)
		rel := labels[q]
		res.NDCG += NDCGAt(ranking, rel, k)
		res.MAP += APAt(ranking, rel, k)
	}
	res.NDCG /= float64(len(queries))
	res.MAP /= float64(len(queries))
	return res
}

// Split is one train/test partition of the query set.
type Split struct {
	Train []graph.NodeID
	Test  []graph.NodeID
}

// Splits produces `repeats` independent random splits with the given
// training fraction (the paper uses 20% training, 10 repeats).
func Splits(queries []graph.NodeID, trainFrac float64, repeats int, seed int64) []Split {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Split, 0, repeats)
	for r := 0; r < repeats; r++ {
		perm := rng.Perm(len(queries))
		nTrain := int(trainFrac * float64(len(queries)))
		if nTrain < 1 && len(queries) > 0 {
			nTrain = 1
		}
		s := Split{}
		for i, p := range perm {
			if i < nTrain {
				s.Train = append(s.Train, queries[p])
			} else {
				s.Test = append(s.Test, queries[p])
			}
		}
		sort.Slice(s.Train, func(i, j int) bool { return s.Train[i] < s.Train[j] })
		sort.Slice(s.Test, func(i, j int) bool { return s.Test[i] < s.Test[j] })
		out = append(out, s)
	}
	return out
}

// MakeExamples samples up to n training triplets (q, x, y): q is a training
// query, x is relevant to q, and y is drawn from candidates and not
// relevant (Sect. V-A). Candidates are typically the user nodes.
func MakeExamples(labels Labels, train []graph.NodeID, candidates []graph.NodeID, n int, seed int64) []core.Example {
	return MakeExamplesHard(labels, train, candidates, nil, 0, n, seed)
}

// MakeExamplesHard is MakeExamples with hard negatives: with probability
// hardFrac the negative y is drawn from hardOf(q) — typically the nodes
// that co-occur with q in some metagraph instance — instead of uniformly
// from candidates. Uniform negatives mostly share nothing with q and are
// separated by any weighting, which leaves the likelihood blind to the
// distinctions that matter at ranking time; hard negatives restore that
// signal. Negatives are still always outside the class, as Sect. V-A
// requires.
func MakeExamplesHard(labels Labels, train []graph.NodeID, candidates []graph.NodeID,
	hardOf func(graph.NodeID) []graph.NodeID, hardFrac float64, n int, seed int64) []core.Example {
	rng := rand.New(rand.NewSource(seed))
	var out []core.Example
	if len(train) == 0 || len(candidates) == 0 {
		return out
	}
	// Sorted relevant lists per query keep sampling deterministic (map
	// iteration order is not).
	relOf := make(map[graph.NodeID][]graph.NodeID, len(train))
	for _, q := range train {
		var rs []graph.NodeID
		for v := range labels[q] {
			rs = append(rs, v)
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		relOf[q] = rs
	}
	for attempts := 0; len(out) < n && attempts < 50*n; attempts++ {
		q := train[rng.Intn(len(train))]
		rs := relOf[q]
		if len(rs) == 0 {
			continue
		}
		x := rs[rng.Intn(len(rs))]
		var y graph.NodeID
		if hardOf != nil && hardFrac > 0 && rng.Float64() < hardFrac {
			hard := hardOf(q)
			if len(hard) == 0 {
				continue
			}
			y = hard[rng.Intn(len(hard))]
		} else {
			y = candidates[rng.Intn(len(candidates))]
		}
		if y == q || labels[q][y] {
			continue
		}
		out = append(out, core.Example{Q: q, X: x, Y: y})
	}
	return out
}
