package eval

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func rk(nodes ...graph.NodeID) []core.Ranked {
	out := make([]core.Ranked, len(nodes))
	for i, n := range nodes {
		out[i] = core.Ranked{Node: n, Score: float64(len(nodes) - i)}
	}
	return out
}

func TestNDCGPerfect(t *testing.T) {
	rel := Relevance{1: true, 2: true}
	if got := NDCGAt(rk(1, 2, 3), rel, 10); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %f", got)
	}
}

func TestNDCGEmptyAndMiss(t *testing.T) {
	if got := NDCGAt(rk(1, 2), Relevance{}, 10); got != 0 {
		t.Fatalf("NDCG with no relevant = %f", got)
	}
	if got := NDCGAt(rk(3, 4), Relevance{1: true}, 10); got != 0 {
		t.Fatalf("NDCG all misses = %f", got)
	}
	if got := NDCGAt(nil, Relevance{1: true}, 10); got != 0 {
		t.Fatalf("NDCG of empty ranking = %f", got)
	}
}

func TestNDCGPositionDiscount(t *testing.T) {
	rel := Relevance{1: true}
	top := NDCGAt(rk(1, 2, 3), rel, 10)
	third := NDCGAt(rk(2, 3, 1), rel, 10)
	if top <= third {
		t.Fatalf("NDCG must discount by position: %f vs %f", top, third)
	}
	// Exact value at rank 3: (1/log2(4)) / (1/log2(2)) = 0.5.
	if math.Abs(third-0.5) > 1e-12 {
		t.Fatalf("NDCG@rank3 = %f, want 0.5", third)
	}
}

func TestNDCGCutoff(t *testing.T) {
	rel := Relevance{9: true}
	// Relevant item beyond the cutoff contributes nothing.
	ranking := rk(1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 9)
	if got := NDCGAt(ranking, rel, 10); got != 0 {
		t.Fatalf("NDCG beyond cutoff = %f", got)
	}
}

func TestAPAt(t *testing.T) {
	rel := Relevance{1: true, 2: true}
	// Ranking: 1 (hit@1), 3, 2 (hit@3): AP = (1/1 + 2/3)/2.
	want := (1.0 + 2.0/3.0) / 2
	if got := APAt(rk(1, 3, 2), rel, 10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AP = %f, want %f", got, want)
	}
	if got := APAt(rk(3, 4), rel, 10); got != 0 {
		t.Fatalf("AP all misses = %f", got)
	}
	if got := APAt(nil, Relevance{}, 10); got != 0 {
		t.Fatalf("AP empty = %f", got)
	}
}

func TestAPAtDenominatorCap(t *testing.T) {
	// 15 relevant items but cutoff 10: denominator must be 10, so a
	// perfect top-10 gives AP 1.
	rel := Relevance{}
	var nodes []graph.NodeID
	for i := graph.NodeID(0); i < 15; i++ {
		rel[i] = true
		if i < 10 {
			nodes = append(nodes, i)
		}
	}
	if got := APAt(rk(nodes...), rel, 10); math.Abs(got-1) > 1e-12 {
		t.Fatalf("capped AP = %f, want 1", got)
	}
}

func TestLabels(t *testing.T) {
	l := Labels{}
	l.Add(1, 2)
	l.Add(1, 3)
	l.Add(1, 1) // ignored
	if !l.Has(1, 2) || !l.Has(2, 1) {
		t.Fatal("Add not symmetric")
	}
	if l.NumPairs() != 2 {
		t.Fatalf("NumPairs = %d", l.NumPairs())
	}
	qs := l.Queries()
	if len(qs) != 3 || qs[0] != 1 || qs[1] != 2 || qs[2] != 3 {
		t.Fatalf("Queries = %v", qs)
	}
	l.Remove(1, 2)
	if l.Has(1, 2) || l.Has(2, 1) {
		t.Fatal("Remove not symmetric")
	}
	if len(l.Queries()) != 2 {
		t.Fatalf("Queries after remove = %v", l.Queries())
	}
}

func TestSplits(t *testing.T) {
	queries := make([]graph.NodeID, 20)
	for i := range queries {
		queries[i] = graph.NodeID(i)
	}
	splits := Splits(queries, 0.2, 10, 7)
	if len(splits) != 10 {
		t.Fatalf("splits = %d", len(splits))
	}
	for _, s := range splits {
		if len(s.Train) != 4 || len(s.Test) != 16 {
			t.Fatalf("split sizes %d/%d", len(s.Train), len(s.Test))
		}
		seen := make(map[graph.NodeID]bool)
		for _, q := range append(append([]graph.NodeID(nil), s.Train...), s.Test...) {
			if seen[q] {
				t.Fatal("query in both partitions")
			}
			seen[q] = true
		}
		if len(seen) != 20 {
			t.Fatal("split does not cover all queries")
		}
	}
	// Deterministic under the same seed, different across seeds.
	again := Splits(queries, 0.2, 10, 7)
	for i := range splits {
		for j := range splits[i].Train {
			if splits[i].Train[j] != again[i].Train[j] {
				t.Fatal("splits not deterministic")
			}
		}
	}
}

func TestSplitsTinyQuerySet(t *testing.T) {
	s := Splits([]graph.NodeID{1, 2}, 0.2, 1, 1)
	if len(s[0].Train) != 1 || len(s[0].Test) != 1 {
		t.Fatalf("tiny split %v", s)
	}
}

func TestMakeExamples(t *testing.T) {
	l := Labels{}
	l.Add(1, 2)
	l.Add(3, 4)
	candidates := []graph.NodeID{1, 2, 3, 4, 5, 6}
	ex := MakeExamples(l, []graph.NodeID{1, 3}, candidates, 50, 9)
	if len(ex) != 50 {
		t.Fatalf("examples = %d", len(ex))
	}
	for _, e := range ex {
		if !l.Has(e.Q, e.X) {
			t.Fatalf("x not relevant in %+v", e)
		}
		if l.Has(e.Q, e.Y) || e.Y == e.Q {
			t.Fatalf("bad y in %+v", e)
		}
	}
	// Deterministic.
	ex2 := MakeExamples(l, []graph.NodeID{1, 3}, candidates, 50, 9)
	for i := range ex {
		if ex[i] != ex2[i] {
			t.Fatal("MakeExamples not deterministic")
		}
	}
	if got := MakeExamples(l, nil, candidates, 5, 1); len(got) != 0 {
		t.Fatal("examples from empty train set")
	}
}

// fixedRanker returns a constant ranking; used to test Evaluate.
type fixedRanker struct{ r []core.Ranked }

func (f fixedRanker) Name() string                      { return "fixed" }
func (f fixedRanker) Rank(q graph.NodeID) []core.Ranked { return f.r }

func TestEvaluate(t *testing.T) {
	l := Labels{}
	l.Add(1, 2)
	l.Add(3, 2)
	r := fixedRanker{rk(2, 4)}
	res := Evaluate(r, l, []graph.NodeID{1, 3}, 10)
	// Both queries have node 2 relevant and ranked first: perfect.
	if math.Abs(res.NDCG-1) > 1e-12 || math.Abs(res.MAP-1) > 1e-12 {
		t.Fatalf("Evaluate = %+v", res)
	}
	if got := Evaluate(r, l, nil, 10); got.NDCG != 0 || got.MAP != 0 {
		t.Fatalf("Evaluate with no queries = %+v", got)
	}
}
