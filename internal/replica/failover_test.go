package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	semprox "repro"
	"repro/api"
	"repro/client"
	"repro/internal/replica"
	"repro/internal/server"
)

// newDurableFollower builds a follower with a local state directory —
// the promotable kind semproxd -state runs.
func newDurableFollower(t *testing.T, primaryURL string, hc *http.Client, dir string) *replica.Follower {
	t.Helper()
	f := replica.NewFollower(primaryURL, hc)
	f.Dir = dir
	f.PollWait = 100 * time.Millisecond
	f.Backoff = 20 * time.Millisecond
	return f
}

// waitApplied polls until the follower has applied at least target.
func waitApplied(t *testing.T, f *replica.Follower, target uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if f.Status().Applied >= target {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower stuck at applied %d, want >= %d", f.Status().Applied, target)
}

// snapshotOf compacts and saves one engine's state for byte comparison.
func snapshotOf(t *testing.T, eng *semprox.Engine) []byte {
	t.Helper()
	eng.Compact()
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFollowerRestartConvergesByteIdentical is the restart property of a
// durable follower: killed at ANY point of catch-up, a new process that
// Restores from the local snapshot + local WAL — never touching the
// primary for state it already holds — converges to the same bytes as
// the primary AND as a follower freshly bootstrapped from scratch. The
// kill points land before, during, and after the live stream.
func TestFollowerRestartConvergesByteIdentical(t *testing.T) {
	for _, killAt := range []uint64{3, 5, 8} {
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			h := newPrimaryHarness(t)
			rng := rand.New(rand.NewSource(int64(killAt)))
			for i := 0; i < 3; i++ {
				h.applyRandom(t, rng, fmt.Sprintf("pre%d", i))
			}
			dir := t.TempDir()
			f := newDurableFollower(t, h.ts.URL, h.ts.Client(), dir)
			ctx, cancel := context.WithCancel(context.Background())
			if err := f.Bootstrap(ctx); err != nil {
				t.Fatal(err)
			}
			runDone := make(chan error, 1)
			go func() { runDone <- f.Run(ctx) }()
			for i := 0; i < 5; i++ {
				h.applyRandom(t, rng, fmt.Sprintf("live%d", i))
			}
			waitApplied(t, f, killAt)
			cancel()
			<-runDone
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			// "Restart": a brand-new follower over the same directory must
			// restore without the primary and resume exactly where the
			// durable local state ends.
			f2 := newDurableFollower(t, h.ts.URL, h.ts.Client(), dir)
			restored, err := f2.Restore()
			if err != nil {
				t.Fatal(err)
			}
			if !restored {
				t.Fatal("Restore found no local state after a populated run")
			}
			if got := f2.Engine().LSN(); got < killAt {
				t.Fatalf("restored engine at LSN %d, want >= %d (locally fsynced records lost)", got, killAt)
			}
			ctx2, cancel2 := context.WithCancel(context.Background())
			runDone2 := make(chan error, 1)
			go func() { runDone2 <- f2.Run(ctx2) }()
			waitCaughtUp(t, f2, h.log.DurableLSN())
			cancel2()
			<-runDone2
			t.Cleanup(func() { f2.Close() })

			// A control follower bootstrapped fresh from the primary.
			f3 := replica.NewFollower(h.ts.URL, h.ts.Client())
			f3.PollWait = 100 * time.Millisecond
			f3.Backoff = 20 * time.Millisecond
			ctx3, cancel3 := context.WithCancel(context.Background())
			if err := f3.Bootstrap(ctx3); err != nil {
				t.Fatal(err)
			}
			runDone3 := make(chan error, 1)
			go func() { runDone3 <- f3.Run(ctx3) }()
			waitCaughtUp(t, f3, h.log.DurableLSN())
			cancel3()
			<-runDone3

			want := snapshotOf(t, h.eng)
			if got := snapshotOf(t, f2.Engine()); !bytes.Equal(got, want) {
				t.Fatal("restored follower's snapshot differs from the primary's")
			}
			if got := snapshotOf(t, f3.Engine()); !bytes.Equal(got, want) {
				t.Fatal("fresh-bootstrap follower's snapshot differs from the primary's")
			}
		})
	}
}

// TestPromotionServesWrites is the failover path end to end in-process:
// the primary dies, the durable follower promotes — raising the term,
// replaying any fsynced-but-unapplied local gap, and swapping its server
// role — and then accepts /v1/update with records stamped by the new
// term.
func TestPromotionServesWrites(t *testing.T) {
	h := newPrimaryHarness(t)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		h.applyRandom(t, rng, fmt.Sprintf("pre%d", i))
	}
	f := newDurableFollower(t, h.ts.URL, h.ts.Client(), t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(ctx) }()
	h.applyRandom(t, rng, "live")
	waitCaughtUp(t, f, h.log.DurableLSN())
	atLSN := f.Status().Applied

	fsrv := server.New(f.Engine())
	fsrv.SetFollower(f)
	fts := httptest.NewServer(fsrv)
	defer fts.Close()
	fc := client.New(fts.URL, fts.Client())

	// Updates are refused while still a follower.
	if _, err := fc.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "refused"}}}); err == nil {
		t.Fatal("follower accepted an update before promotion")
	}

	h.ts.Close() // the primary is gone
	cancel()
	<-runDone
	w, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Term(); got != 2 {
		t.Fatalf("promoted term = %d, want 2", got)
	}
	if _, _, err := semprox.ReplayWAL(f.Engine(), w); err != nil {
		t.Fatal(err)
	}
	if err := fsrv.Promote(w); err != nil {
		t.Fatal(err)
	}
	// A second promotion of the same follower is refused.
	if _, err := f.Promote(); err == nil {
		t.Fatal("double promotion accepted")
	}

	rctx := context.Background()
	ready, err := fc.Ready(rctx)
	if err != nil {
		t.Fatal(err)
	}
	if ready.Role != api.RolePrimary || ready.Term != 2 || !ready.Ready() {
		t.Fatalf("promoted readyz = %+v, want ready primary at term 2", ready)
	}
	resp, err := fc.Update(rctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "post-failover"}}})
	if err != nil {
		t.Fatalf("update on the promoted primary: %v", err)
	}
	if resp.LSN != atLSN+1 {
		t.Fatalf("promoted write at LSN %d, want %d (history must continue, not restart)", resp.LSN, atLSN+1)
	}
	if term, ok := w.TermAt(resp.LSN); !ok || term != 2 {
		t.Fatalf("promoted record's term = %d, %v; want 2", term, ok)
	}
	// The write is immediately queryable on the new primary.
	if f.Engine().Graph().NodeByName("post-failover") == semprox.InvalidNode {
		t.Fatal("promoted write not visible in the serving graph")
	}
}

// TestZombiePrimaryIsFenced: a follower that has seen term 2 and is
// pointed back at the still-running term-1 primary must refuse
// everything it says — reporting StatusFenced, regressing nothing,
// never re-bootstrapping into the stale history — and must recover the
// moment it is retargeted at the current-term primary.
func TestZombiePrimaryIsFenced(t *testing.T) {
	h := newPrimaryHarness(t) // will become the zombie
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 4; i++ {
		h.applyRandom(t, rng, fmt.Sprintf("pre%d", i))
	}
	// Follower A catches up, promotes to term 2, serves writes.
	fa := newDurableFollower(t, h.ts.URL, h.ts.Client(), t.TempDir())
	ctxA, cancelA := context.WithCancel(context.Background())
	if err := fa.Bootstrap(ctxA); err != nil {
		t.Fatal(err)
	}
	runA := make(chan error, 1)
	go func() { runA <- fa.Run(ctxA) }()
	waitCaughtUp(t, fa, h.log.DurableLSN())
	cancelA()
	<-runA
	srvA := server.New(fa.Engine())
	srvA.SetFollower(fa)
	tsA := httptest.NewServer(srvA)
	defer tsA.Close()
	w, err := fa.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := semprox.ReplayWAL(fa.Engine(), w); err != nil {
		t.Fatal(err)
	}
	if err := srvA.Promote(w); err != nil {
		t.Fatal(err)
	}
	ca := client.New(tsA.URL, tsA.Client())
	if _, err := ca.Update(context.Background(), api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "term2-write"}}}); err != nil {
		t.Fatal(err)
	}

	// Follower B tracks the NEW primary (term 2), then gets pointed at
	// the zombie — the old primary never learned it was deposed.
	fb := replica.NewFollower(tsA.URL, tsA.Client())
	fb.PollWait = 50 * time.Millisecond
	fb.Backoff = 10 * time.Millisecond
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	if err := fb.Bootstrap(ctxB); err != nil {
		t.Fatal(err)
	}
	runB := make(chan error, 1)
	go func() { runB <- fb.Run(ctxB) }()
	srvB := server.New(fb.Engine())
	srvB.SetFollower(fb)
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	waitCaughtUp(t, fb, 5)
	applied := fb.Status().Applied

	fb.Retarget(h.ts.URL) // the zombie
	deadline := time.Now().Add(10 * time.Second)
	for !fb.Status().Fenced {
		if time.Now().After(deadline) {
			t.Fatal("follower never fenced while polling the zombie")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := fb.Status()
	if st.Applied != applied {
		t.Fatalf("fenced follower's position moved: %d -> %d", applied, st.Applied)
	}
	if st.Ready {
		t.Fatal("fenced follower still reports ready")
	}
	if st.Term != 2 {
		t.Fatalf("fenced follower's term = %d, want 2 (it keeps its newest knowledge)", st.Term)
	}
	// /v1/readyz reports the distinct fenced status on 503.
	resp, err := tsB.Client().Get(tsB.URL + api.PathReadyz)
	if err != nil {
		t.Fatal(err)
	}
	var ready api.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Status != api.StatusFenced {
		t.Fatalf("fenced readyz = %d %q, want 503 %q", resp.StatusCode, ready.Status, api.StatusFenced)
	}

	// Back on the real primary the fence clears without a re-bootstrap.
	fb.Retarget(tsA.URL)
	waitCaughtUp(t, fb, 5)
	if st := fb.Status(); st.Fenced || st.Applied < applied {
		t.Fatalf("fence did not clear cleanly: %+v", st)
	}
	cancelB()
	<-runB
}

// TestSinceTermMismatchForcesRebootstrap: a poller claiming a different
// term for a record this log holds gets 409 term_mismatch through the
// whole HTTP stack — the signal Follower.Run converts into a fresh
// bootstrap.
func TestSinceTermMismatchForcesRebootstrap(t *testing.T) {
	h := newPrimaryHarness(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3; i++ {
		h.applyRandom(t, rng, fmt.Sprintf("r%d", i))
	}
	c := client.New(h.ts.URL, h.ts.Client())
	ctx := context.Background()
	// The true term of LSN 2 is 1: claiming 5 is a diverged history.
	_, err := c.ReplicateSince(ctx, 2, 5, 10, 0)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeTermMismatch || apiErr.Status != http.StatusConflict {
		t.Fatalf("diverged poll returned %v, want 409 %s", err, api.CodeTermMismatch)
	}
	// The matching term and the term-less (legacy) poll both stream.
	if sr, err := c.ReplicateSince(ctx, 2, 1, 10, 0); err != nil || len(sr.Records) != 1 {
		t.Fatalf("matching-term poll = %+v, %v", sr, err)
	}
	if sr, err := c.ReplicateSince(ctx, 2, 0, 10, 0); err != nil || len(sr.Records) != 1 {
		t.Fatalf("term-less poll = %+v, %v", sr, err)
	}
}

// TestAckReplicasHoldsAckUntilConfirmed: with -ack-replicas the primary
// releases an update's ack only after a follower's poll position proves
// the record durable elsewhere. No follower -> the ack times out with
// the client; a live follower -> it completes.
func TestAckReplicasHoldsAckUntilConfirmed(t *testing.T) {
	h := newPrimaryHarness(t)
	// Rebuild the handler around the harness engine+log so we control
	// SetAckReplicas (the harness's own server has it off).
	srv := server.New(h.eng)
	srv.AttachWAL(h.log)
	srv.SetAckReplicas(1)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	_, err := c.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "lonely"}}})
	cancel()
	if err == nil {
		t.Fatal("synchronous update acked with no replica in existence")
	}

	f := replica.NewFollower(ts.URL, ts.Client())
	f.PollWait = 100 * time.Millisecond
	f.Backoff = 10 * time.Millisecond
	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(fctx) }()
	t.Cleanup(func() { fcancel(); <-runDone })

	uctx, ucancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ucancel()
	resp, err := c.Update(uctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "replicated"}}})
	if err != nil {
		t.Fatalf("synchronous update with a live follower: %v", err)
	}
	waitCaughtUp(t, f, resp.LSN)
	if f.Engine().Graph().NodeByName("replicated") == semprox.InvalidNode {
		t.Fatal("confirmed record not on the follower")
	}
}

// TestNewerHistoryPollDoesNotConfirm: a deposed primary (zombie) keeps
// seeing polls from followers that moved on to its successor — positioned
// past its own durable end, under a newer term. Those polls are served
// (the response's stale term is what fences the poller) but they vouch
// for a DIFFERENT history, so they must never release the zombie's
// synchronous acks: a write it acked on that basis would exist nowhere
// else, ever.
func TestNewerHistoryPollDoesNotConfirm(t *testing.T) {
	h := newPrimaryHarness(t)
	rng := rand.New(rand.NewSource(7))
	h.applyRandom(t, rng, "r0")
	srv := server.New(h.eng)
	srv.AttachWAL(h.log)
	srv.SetAckReplicas(1)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())

	poll := func(stop chan struct{}, after func() uint64, term uint64) {
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.ReplicateSince(context.Background(), after(), term, 10, 0) //nolint:errcheck
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Zombie's view of a fenced follower: ahead of this log, newer term.
	stop := make(chan struct{})
	go poll(stop, func() uint64 { return h.log.DurableLSN() + 50 }, 99)
	ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	_, err := c.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "zombie-write"}}})
	cancel()
	close(stop)
	if err == nil {
		t.Fatal("a poll vouching for a newer history confirmed the zombie's write")
	}

	// An honest poll at this log's own durable position does confirm.
	stop2 := make(chan struct{})
	defer close(stop2)
	go poll(stop2, h.log.DurableLSN, 0)
	uctx, ucancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ucancel()
	if _, err := c.Update(uctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "confirmed"}}}); err != nil {
		t.Fatalf("honest confirmation did not release the ack: %v", err)
	}
}

// TestMonitorElectsLongestLog: when the primary dies, the monitor on the
// follower with the highest (term, LSN) wins the election — Run returns
// nil so its caller promotes — while a lagging peer's monitor keeps
// watching and retargets at the winner once it serves as primary.
func TestMonitorElectsLongestLog(t *testing.T) {
	h := newPrimaryHarness(t)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 3; i++ {
		h.applyRandom(t, rng, fmt.Sprintf("pre%d", i))
	}

	// f1 (durable) will follow to the end; f2 stops early and lags.
	f1 := newDurableFollower(t, h.ts.URL, h.ts.Client(), t.TempDir())
	ctx1, cancel1 := context.WithCancel(context.Background())
	if err := f1.Bootstrap(ctx1); err != nil {
		t.Fatal(err)
	}
	run1 := make(chan error, 1)
	go func() { run1 <- f1.Run(ctx1) }()
	f2 := replica.NewFollower(h.ts.URL, h.ts.Client())
	f2.PollWait = 50 * time.Millisecond
	f2.Backoff = 10 * time.Millisecond
	ctx2, cancel2 := context.WithCancel(context.Background())
	if err := f2.Bootstrap(ctx2); err != nil {
		t.Fatal(err)
	}
	run2 := make(chan error, 1)
	go func() { run2 <- f2.Run(ctx2) }()
	waitCaughtUp(t, f1, 3)
	waitCaughtUp(t, f2, 3)
	cancel2() // f2 stops replicating here: applied stays 3
	<-run2
	for i := 0; i < 2; i++ {
		h.applyRandom(t, rng, fmt.Sprintf("late%d", i))
	}
	waitCaughtUp(t, f1, 5)

	srv1 := server.New(f1.Engine())
	srv1.SetFollower(f1)
	ts1 := httptest.NewServer(srv1)
	defer ts1.Close()
	srv2 := server.New(f2.Engine())
	srv2.SetFollower(f2)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	peers := []string{ts1.URL, ts2.URL}

	h.ts.Close() // primary dies

	mctx, mcancel := context.WithCancel(context.Background())
	defer mcancel()
	m1 := &replica.Monitor{F: f1, Self: ts1.URL, Peers: peers,
		Interval: 20 * time.Millisecond, Threshold: 2}
	m1Done := make(chan error, 1)
	go func() { m1Done <- m1.Run(mctx) }()
	m2 := &replica.Monitor{F: f2, Self: ts2.URL, Peers: peers,
		Interval: 20 * time.Millisecond, Threshold: 2}
	m2Done := make(chan error, 1)
	go func() { m2Done <- m2.Run(mctx) }()

	select {
	case err := <-m1Done:
		if err != nil {
			t.Fatalf("winning monitor returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("monitor on the longest log never won the election")
	}
	// The loser must still be watching — its LSN (3) loses to f1's (5).
	select {
	case err := <-m2Done:
		t.Fatalf("lagging monitor exited (%v); it must wait for the winner", err)
	default:
	}

	// Promote the winner, exactly as cmd/semproxd does.
	cancel1()
	<-run1
	w, err := f1.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := semprox.ReplayWAL(f1.Engine(), w); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Promote(w); err != nil {
		t.Fatal(err)
	}

	// m2 discovers the new primary and retargets f2 at it.
	deadline := time.Now().Add(15 * time.Second)
	for f2.PrimaryURL() != ts1.URL {
		if time.Now().After(deadline) {
			t.Fatalf("lagging follower still targets %s, want %s", f2.PrimaryURL(), ts1.URL)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
