// Package replica adds read replicas on top of the WAL: a primary serves
// its log and snapshots over HTTP, and a follower bootstraps from a
// primary snapshot, streams the delta records the snapshot doesn't cover,
// and applies them through the engine's epoch machinery — so follower
// reads stay lock-free and byte-identical to the primary at the same LSN.
// This is the ROADMAP's horizontal-read-scaling step: any number of
// followers can serve /query traffic while the primary alone accepts
// /update.
//
// Wire protocol (declared in the public api package, mounted by
// internal/server, spoken by the client package):
//
//	GET /v1/replicate/snapshot     an engine snapshot stream (semprox.Save)
//	GET /v1/replicate/since?lsn=N  records with LSN > N as api.SinceResponse
//	    [&max=M][&wait_ms=T]       long-polls up to T ms when none exist
//
// The since response carries each delta in the same binary encoding the
// WAL stores (base64 inside JSON), plus the primary's durable LSN so the
// follower can measure its lag.
package replica

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	semprox "repro"
	"repro/api"
	"repro/internal/wal"
)

// DefaultMaxBatch bounds the records returned by one since request.
const DefaultMaxBatch = 1024

// DefaultMaxWait caps a long poll; clients re-poll after a drained wait.
const DefaultMaxWait = 25 * time.Second

// DefaultMaxBytes bounds the cumulative delta payload of one since
// response. The follower hard-caps its JSON decode at 256MB and treats a
// truncated body as a transient error, so an over-large response would
// wedge it in a retry loop on the very same request; batches that stop
// well under the cap (even after base64 and JSON overhead) keep every
// response consumable. A single record larger than the bound is still
// sent alone — progress beats the bound.
const DefaultMaxBytes = 32 << 20

// Primary serves one engine's WAL to followers.
type Primary struct {
	eng *semprox.Engine
	log *wal.WAL
	// MaxBatch, MaxBytes and MaxWait override the defaults when > 0;
	// mostly for tests.
	MaxBatch int
	MaxBytes int
	MaxWait  time.Duration

	// confirmed is the highest LSN any follower has reported durably
	// applied (the lsn= parameter of its since polls — a follower only
	// advances that after its local WAL fsynced the records). Writers
	// that want synchronous replication wait on it via WaitConfirmed.
	mu          sync.Mutex
	confirmed   uint64
	confirmedCh chan struct{} // closed and replaced when confirmed advances
}

// NewPrimary wraps an engine and the WAL its updates are logged to.
func NewPrimary(eng *semprox.Engine, log *wal.WAL) *Primary {
	return &Primary{eng: eng, log: log}
}

// ServeSince answers GET /v1/replicate/since?lsn=N[&max=M][&wait_ms=T]
// [&term=X]: records with LSN > N in log order. With wait_ms and no
// records ready it long-polls until one arrives or the wait elapses (an
// empty response is not an error — it tells the follower it is caught up
// at last_lsn). The caller (internal/server) renders the returned
// status/body/error in its structured JSON shapes.
//
// term=X is the term of the record the POLLER holds at LSN N. When this
// log's record at N carries a different term, the two histories diverged
// at or before N — the poller applied records from a primary that was
// later deposed and its suffix was overwritten by a promotion. Streaming
// from N would silently graft the new history onto the old one, so the
// poll is refused with 409 and the poller must re-bootstrap from a
// snapshot. term=0 (or absent) skips the check: the poller either
// predates terms or holds no record at N.
func (p *Primary) ServeSince(r *http.Request) (int, any, error) {
	q := r.URL.Query()
	after, err := strconv.ParseUint(q.Get("lsn"), 10, 64)
	if err != nil {
		return http.StatusBadRequest, nil, fmt.Errorf("bad lsn %q", q.Get("lsn"))
	}
	var pollerTerm uint64
	if ts := q.Get("term"); ts != "" {
		pollerTerm, err = strconv.ParseUint(ts, 10, 64)
		if err != nil {
			return http.StatusBadRequest, nil, fmt.Errorf("bad term %q", ts)
		}
		if pollerTerm > 0 && after > 0 {
			if have, ok := p.log.TermAt(after); ok && have != pollerTerm {
				return http.StatusConflict, nil, fmt.Errorf(
					"history diverged at LSN %d: this log's record has term %d, yours has term %d; re-bootstrap from a snapshot",
					after, have, pollerTerm)
			}
		}
	}
	// The poll position doubles as a durability receipt: a follower only
	// advances lsn= after the records are fsynced in its local log, so
	// `after` is replicated-and-durable and synchronous writers waiting in
	// WaitConfirmed can be released — but only when this log can vouch for
	// the position. A poller past our durable end, or whose record at
	// `after` carries a term NEWER than our current one, holds records this
	// log never wrote: it is following a newer primary and we are the
	// deposed one. Its position vouches for a different history, and a
	// zombie releasing a synchronous ack on the strength of a fenced
	// follower's poll would ack a write nobody will ever replicate. (The
	// poll itself is still served: the response's stale term is what tells
	// the poller to fence.)
	if after <= p.log.DurableLSN() && pollerTerm <= p.log.Term() {
		p.noteConfirmed(after)
	}
	max := p.MaxBatch
	if max <= 0 {
		max = DefaultMaxBatch
	}
	if ms := q.Get("max"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 1 {
			return http.StatusBadRequest, nil, fmt.Errorf("bad max %q", ms)
		}
		if n < max {
			max = n
		}
	}
	if ws := q.Get("wait_ms"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			return http.StatusBadRequest, nil, fmt.Errorf("bad wait_ms %q", ws)
		}
		maxWait := p.MaxWait
		if maxWait <= 0 {
			maxWait = DefaultMaxWait
		}
		wait := time.Duration(n) * time.Millisecond
		if wait > maxWait {
			wait = maxWait
		}
		if wait > 0 && p.log.DurableLSN() <= after {
			ctx, cancel := context.WithTimeout(r.Context(), wait)
			p.log.WaitSince(ctx, after)
			cancel()
		}
	}
	// SinceRaw ships the stored payload bytes verbatim — the hot case
	// (an almost-caught-up follower) is served from the log's in-memory
	// tail with no disk read and no decode/re-encode round trip. The byte
	// budget (see DefaultMaxBytes) rides on the record-count cap and is
	// enforced inside the log read, so a lagging follower's poll stops
	// scanning at the budget instead of materializing max records and
	// throwing the overflow away; the kept prefix stays contiguous, so the
	// follower just polls again for the rest.
	maxBytes := p.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	recs, durable, err := p.log.SinceRaw(after, max, maxBytes)
	if err != nil {
		return http.StatusInternalServerError, nil, fmt.Errorf("read log: %w", err)
	}
	resp := api.SinceResponse{
		From:    after,
		LastLSN: durable,
		Term:    p.log.Term(),
		Records: make([]api.ReplicateRecord, len(recs)),
	}
	for i, rec := range recs {
		resp.Records[i] = api.ReplicateRecord{LSN: rec.LSN, Term: rec.Term, Delta: rec.Delta}
	}
	return http.StatusOK, resp, nil
}

// noteConfirmed records that some follower has durably applied through
// lsn, waking WaitConfirmed waiters at or below it.
func (p *Primary) noteConfirmed(lsn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if lsn <= p.confirmed {
		return
	}
	p.confirmed = lsn
	if p.confirmedCh != nil {
		close(p.confirmedCh)
		p.confirmedCh = nil
	}
}

// Confirmed returns the highest LSN any follower has reported durably
// applied.
func (p *Primary) Confirmed() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.confirmed
}

// WaitConfirmed blocks until some follower has reported lsn durably
// applied (true) or ctx ends (false). This is the synchronous-replication
// gate: a primary started with -ack-replicas holds each update's ack here
// so an acked write survives losing the primary — the promoted follower
// already has it.
func (p *Primary) WaitConfirmed(ctx context.Context, lsn uint64) bool {
	for {
		p.mu.Lock()
		if p.confirmed >= lsn {
			p.mu.Unlock()
			return true
		}
		if p.confirmedCh == nil {
			p.confirmedCh = make(chan struct{})
		}
		ch := p.confirmedCh
		p.mu.Unlock()
		select {
		case <-ctx.Done():
			return false
		case <-ch:
		}
	}
}

// ServeSnapshot answers GET /v1/replicate/snapshot with an engine snapshot
// stream — the follower bootstrap source. The save pins one immutable
// epoch, then gates on the WAL until that epoch's LSN is durable before
// streaming a byte: under pipelined commit an epoch can be visible while
// its record is still in flight to disk, and a snapshot of such an epoch
// would hand the follower state a crash could make the primary forget.
func (p *Primary) ServeSnapshot(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "application/octet-stream")
	return p.eng.SaveWait(w, p.log.WaitDurable)
}
