// Package replica adds read replicas on top of the WAL: a primary serves
// its log and snapshots over HTTP, and a follower bootstraps from a
// primary snapshot, streams the delta records the snapshot doesn't cover,
// and applies them through the engine's epoch machinery — so follower
// reads stay lock-free and byte-identical to the primary at the same LSN.
// This is the ROADMAP's horizontal-read-scaling step: any number of
// followers can serve /query traffic while the primary alone accepts
// /update.
//
// Wire protocol (declared in the public api package, mounted by
// internal/server, spoken by the client package):
//
//	GET /v1/replicate/snapshot     an engine snapshot stream (semprox.Save)
//	GET /v1/replicate/since?lsn=N  records with LSN > N as api.SinceResponse
//	    [&max=M][&wait_ms=T]       long-polls up to T ms when none exist
//
// The since response carries each delta in the same binary encoding the
// WAL stores (base64 inside JSON), plus the primary's durable LSN so the
// follower can measure its lag.
package replica

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	semprox "repro"
	"repro/api"
	"repro/internal/wal"
)

// DefaultMaxBatch bounds the records returned by one since request.
const DefaultMaxBatch = 1024

// DefaultMaxWait caps a long poll; clients re-poll after a drained wait.
const DefaultMaxWait = 25 * time.Second

// DefaultMaxBytes bounds the cumulative delta payload of one since
// response. The follower hard-caps its JSON decode at 256MB and treats a
// truncated body as a transient error, so an over-large response would
// wedge it in a retry loop on the very same request; batches that stop
// well under the cap (even after base64 and JSON overhead) keep every
// response consumable. A single record larger than the bound is still
// sent alone — progress beats the bound.
const DefaultMaxBytes = 32 << 20

// Primary serves one engine's WAL to followers.
type Primary struct {
	eng *semprox.Engine
	log *wal.WAL
	// MaxBatch, MaxBytes and MaxWait override the defaults when > 0;
	// mostly for tests.
	MaxBatch int
	MaxBytes int
	MaxWait  time.Duration
}

// NewPrimary wraps an engine and the WAL its updates are logged to.
func NewPrimary(eng *semprox.Engine, log *wal.WAL) *Primary {
	return &Primary{eng: eng, log: log}
}

// ServeSince answers GET /v1/replicate/since?lsn=N[&max=M][&wait_ms=T]:
// records with LSN > N in log order. With wait_ms and no records ready it
// long-polls until one arrives or the wait elapses (an empty response is
// not an error — it tells the follower it is caught up at last_lsn). The
// caller (internal/server) renders the returned status/body/error in its
// structured JSON shapes.
func (p *Primary) ServeSince(r *http.Request) (int, any, error) {
	q := r.URL.Query()
	after, err := strconv.ParseUint(q.Get("lsn"), 10, 64)
	if err != nil {
		return http.StatusBadRequest, nil, fmt.Errorf("bad lsn %q", q.Get("lsn"))
	}
	max := p.MaxBatch
	if max <= 0 {
		max = DefaultMaxBatch
	}
	if ms := q.Get("max"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 1 {
			return http.StatusBadRequest, nil, fmt.Errorf("bad max %q", ms)
		}
		if n < max {
			max = n
		}
	}
	if ws := q.Get("wait_ms"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			return http.StatusBadRequest, nil, fmt.Errorf("bad wait_ms %q", ws)
		}
		maxWait := p.MaxWait
		if maxWait <= 0 {
			maxWait = DefaultMaxWait
		}
		wait := time.Duration(n) * time.Millisecond
		if wait > maxWait {
			wait = maxWait
		}
		if wait > 0 && p.log.DurableLSN() <= after {
			ctx, cancel := context.WithTimeout(r.Context(), wait)
			p.log.WaitSince(ctx, after)
			cancel()
		}
	}
	// SinceRaw ships the stored payload bytes verbatim — the hot case
	// (an almost-caught-up follower) is served from the log's in-memory
	// tail with no disk read and no decode/re-encode round trip. The byte
	// budget (see DefaultMaxBytes) rides on the record-count cap and is
	// enforced inside the log read, so a lagging follower's poll stops
	// scanning at the budget instead of materializing max records and
	// throwing the overflow away; the kept prefix stays contiguous, so the
	// follower just polls again for the rest.
	maxBytes := p.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	recs, durable, err := p.log.SinceRaw(after, max, maxBytes)
	if err != nil {
		return http.StatusInternalServerError, nil, fmt.Errorf("read log: %w", err)
	}
	resp := api.SinceResponse{From: after, LastLSN: durable, Records: make([]api.ReplicateRecord, len(recs))}
	for i, rec := range recs {
		resp.Records[i] = api.ReplicateRecord{LSN: rec.LSN, Delta: rec.Delta}
	}
	return http.StatusOK, resp, nil
}

// ServeSnapshot answers GET /v1/replicate/snapshot with an engine snapshot
// stream — the follower bootstrap source. Save reads one immutable epoch,
// so the stream is a consistent engine at one (epoch, LSN) point even
// while updates keep applying.
func (p *Primary) ServeSnapshot(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "application/octet-stream")
	return p.eng.Save(w)
}
