package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	semprox "repro"
	"repro/client"
	"repro/internal/graph"
)

// Follower keeps a local engine converged with a primary: Bootstrap
// fetches a full snapshot (arriving at the primary's engine state at some
// LSN), then Run streams /v1/replicate/since records and applies them
// through Engine.ApplyUpdateBatchAt — the same epoch-swap machinery the
// primary used, so local reads are lock-free during catch-up and the
// follower at LSN N answers queries byte-identically to the primary at
// LSN N. All primary traffic goes through the typed client package — the
// wire protocol exists in exactly one place (api).
//
// A drained since batch is coalesced into ONE apply: contiguous logged
// deltas concatenate (new-node ids are assigned deterministically, so
// the merged delta is id-for-id the sequence it replaces) and the epoch
// counter advances once per covered record, cutting the epoch churn —
// graph clones, index patches, class re-merges — of catch-up from one
// per record to one per poll while keeping the engine byte-identical to
// a record-at-a-time replica.
type Follower struct {
	c *client.Client

	// Workers retunes the bootstrapped engine for this host (the snapshot
	// carries the primary's setting); <= 0 keeps one worker per CPU.
	Workers int
	// PollWait is the long-poll duration requested per since call.
	PollWait time.Duration
	// MaxBatch bounds the records requested per since call.
	MaxBatch int
	// Backoff is the pause after a failed poll before retrying.
	Backoff time.Duration

	eng     atomic.Pointer[semprox.Engine]
	applied atomic.Uint64 // LSN of the last record applied locally
	target  atomic.Uint64 // primary durable LSN as of the last poll
	polled  atomic.Bool   // at least one successful poll completed
}

// NewFollower returns a follower of the primary at baseURL. Call
// Bootstrap (or Run, which bootstraps if needed) before serving reads.
// A nil hc gets a timeout-FREE http.Client, unlike the client package's
// default: a whole-request timeout also bounds reading the response
// body, and a snapshot bootstrap streams an engine of unbounded size —
// a fixed cap would wedge large followers in a bootstrap-retry loop.
// Per-call deadlines come from the contexts Bootstrap and Run pass in.
func NewFollower(baseURL string, hc *http.Client) *Follower {
	if hc == nil {
		hc = &http.Client{}
	}
	c := client.New(baseURL, hc)
	// The follower is its own retry policy (Backoff between polls);
	// client-level retries would just delay the lag signal.
	c.Retries = 0
	return &Follower{
		c:        c,
		PollWait: 10 * time.Second,
		MaxBatch: DefaultMaxBatch,
		Backoff:  500 * time.Millisecond,
	}
}

// Engine returns the local serving engine (nil before Bootstrap).
func (f *Follower) Engine() *semprox.Engine { return f.eng.Load() }

// Bootstrap downloads a snapshot from the primary and installs the
// loaded engine. The snapshot's LSN becomes the stream position: Run
// resumes exactly where the snapshot ends.
func (f *Follower) Bootstrap(ctx context.Context) error {
	body, err := f.c.ReplicateSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	defer body.Close()
	eng, err := semprox.LoadEngine(body)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	eng.SetWorkers(f.Workers)
	f.eng.Store(eng)
	f.applied.Store(eng.LSN())
	return nil
}

// Run bootstraps (if Bootstrap was not already called) and then streams
// records until ctx ends, coalescing each drained batch into one apply
// and compacting the accumulated overlays afterwards. Transient primary
// failures back off and retry. Divergence — a stream gap (the primary
// truncated its log past this follower), an undecodable record, or a
// record the local engine rejects — drops readiness (so /v1/readyz goes
// 503 and load balancers stop routing here) and re-bootstraps a fresh
// snapshot from the primary. Run returns only on context cancellation.
func (f *Follower) Run(ctx context.Context) error {
	if f.Engine() == nil {
		if err := f.Bootstrap(ctx); err != nil {
			return err
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		applied, err := f.pollOnce(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var app *applyError
			if errors.As(err, &app) {
				// The local engine can never converge from here; only a
				// fresh snapshot can. Stop reporting ready until a clean
				// poll completes after re-bootstrap. This cannot loop on
				// one record: a record the primary itself rejected after
				// logging is recorded as a skip there (Engine.AdvanceLSN),
				// so the primary's snapshot LSN is already beyond it and
				// the fresh bootstrap resumes past the record.
				f.polled.Store(false)
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(f.Backoff):
				}
				if berr := f.Bootstrap(ctx); berr != nil && ctx.Err() != nil {
					return ctx.Err()
				}
				continue
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(f.Backoff):
			}
			continue
		}
		if applied > 0 {
			f.Engine().Compact()
		}
	}
}

// applyError marks a record the local engine rejected — divergence, not a
// transient failure.
type applyError struct{ err error }

func (e *applyError) Error() string { return e.err.Error() }
func (e *applyError) Unwrap() error { return e.err }

// pollOnce issues one since request through the typed client, coalesces
// the contiguous records it returned into one delta, and applies it in a
// single epoch swap (see Engine.ApplyUpdateBatchAt), returning how many
// records were applied.
func (f *Follower) pollOnce(ctx context.Context) (int, error) {
	after := f.applied.Load()
	sr, err := f.c.ReplicateSince(ctx, after, f.MaxBatch, f.PollWait)
	if err != nil {
		return 0, fmt.Errorf("replica: poll: %w", err)
	}
	// Coalesce the batch. Records at or below the applied position are
	// duplicate deliveries after a retry; past that the LSNs must be
	// contiguous — a gap means the primary truncated its log past this
	// follower and records in between are gone, so applying anything
	// later would silently diverge. Each record is validated EXACTLY as
	// a one-at-a-time apply would validate it (known types, edge
	// endpoints within the node count as of ITS position in the stream):
	// a record the primary logged but rejected-and-skipped must fail here
	// too, not be absorbed by a merged delta whose later records happen
	// to bring its out-of-range endpoints into range. The contiguous
	// valid prefix before a gap / undecodable / invalid record still
	// applies; the divergence error surfaces after.
	eng := f.Engine()
	var d graph.Delta
	nodes := eng.Graph().NumNodes()
	last, count := after, 0
	var diverged error
	for _, rec := range sr.Records {
		if rec.LSN <= last {
			continue // duplicate delivery after a retry
		}
		if rec.LSN != last+1 {
			diverged = &applyError{fmt.Errorf("replica: stream gap: record %d after %d (primary log truncated past us)", rec.LSN, last)}
			break
		}
		rd, err := graph.DecodeDelta(rec.Delta)
		if err != nil {
			diverged = &applyError{fmt.Errorf("replica: record %d: %w", rec.LSN, err)}
			break
		}
		if err := applicable(eng, nodes, rd); err != nil {
			diverged = &applyError{fmt.Errorf("replica: apply record %d: %w", rec.LSN, err)}
			break
		}
		d.Nodes = append(d.Nodes, rd.Nodes...)
		d.Edges = append(d.Edges, rd.Edges...)
		nodes += len(rd.Nodes)
		last = rec.LSN
		count++
	}
	applied := 0
	if count > 0 {
		if _, err := eng.ApplyUpdateBatchAt(d, last, count); err != nil {
			return 0, &applyError{fmt.Errorf("replica: apply records %d..%d: %w", after+1, last, err)}
		}
		f.applied.Store(last)
		applied = count
	}
	if diverged != nil {
		return applied, diverged
	}
	if sr.LastLSN > f.target.Load() {
		f.target.Store(sr.LastLSN)
	}
	f.polled.Store(true)
	return applied, nil
}

// applicable reports whether d would be accepted by a graph currently
// holding `nodes` nodes — graph.Apply's own acceptance predicate
// (graph.ValidateApply), evaluated at the record's position in the
// stream rather than against the merged batch, so a record the primary
// rejected is never absorbed by coalescing.
func applicable(eng *semprox.Engine, nodes int, d graph.Delta) error {
	return graph.ValidateApply(eng.Graph().Types(), nodes, d)
}

// Status reports the follower's replication position in one consistent
// read: the LSN applied locally, the primary's durable LSN as of the
// last successful poll, the lag between them (clamped at 0), and whether
// the follower is ready — bootstrapped, at least one poll completed, and
// zero lag. Callers needing several of these values must take them from
// ONE Status call; separate calls read the atomics independently and can
// disagree.
func (f *Follower) Status() (applied, primaryLSN, lag uint64, ready bool) {
	applied = f.applied.Load()
	primaryLSN = f.target.Load()
	if primaryLSN > applied {
		lag = primaryLSN - applied
	}
	ready = f.Engine() != nil && f.polled.Load() && lag == 0
	return applied, primaryLSN, lag, ready
}

// Lag returns primaryLSN - appliedLSN as of the last poll (0 when caught
// up or not yet polled).
func (f *Follower) Lag() uint64 {
	_, _, lag, _ := f.Status()
	return lag
}

// PrimaryURL returns the primary base URL the follower replicates from.
func (f *Follower) PrimaryURL() string { return f.c.BaseURL() }

// ValidPrimaryURL rejects -follow values that cannot name a primary;
// cmd/semproxd validates the flag before bootstrapping.
func ValidPrimaryURL(s string) error {
	u, err := url.Parse(s)
	if err != nil {
		return err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("replica: primary URL %q must be http or https", s)
	}
	if u.Host == "" {
		return fmt.Errorf("replica: primary URL %q has no host", s)
	}
	return nil
}
