package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	semprox "repro"
	"repro/internal/graph"
)

// Follower keeps a local engine converged with a primary: Bootstrap
// fetches a full snapshot (arriving at the primary's engine state at some
// LSN), then Run streams /replicate/since records and applies each at its
// original LSN through Engine.ApplyUpdateAt — the same epoch-swap
// machinery the primary used, so local reads are lock-free during
// catch-up and the follower at LSN N answers queries byte-identically to
// the primary at LSN N.
type Follower struct {
	primary string // base URL, e.g. http://127.0.0.1:8080
	client  *http.Client

	// Workers retunes the bootstrapped engine for this host (the snapshot
	// carries the primary's setting); <= 0 keeps one worker per CPU.
	Workers int
	// PollWait is the long-poll duration requested per since call.
	PollWait time.Duration
	// MaxBatch bounds the records requested per since call.
	MaxBatch int
	// Backoff is the pause after a failed poll before retrying.
	Backoff time.Duration

	eng     atomic.Pointer[semprox.Engine]
	applied atomic.Uint64 // LSN of the last record applied locally
	target  atomic.Uint64 // primary durable LSN as of the last poll
	polled  atomic.Bool   // at least one successful poll completed
}

// NewFollower returns a follower of the primary at baseURL. Call
// Bootstrap (or Run, which bootstraps if needed) before serving reads.
func NewFollower(baseURL string, client *http.Client) *Follower {
	if client == nil {
		client = &http.Client{}
	}
	return &Follower{
		primary:  baseURL,
		client:   client,
		PollWait: 10 * time.Second,
		MaxBatch: DefaultMaxBatch,
		Backoff:  500 * time.Millisecond,
	}
}

// Engine returns the local serving engine (nil before Bootstrap).
func (f *Follower) Engine() *semprox.Engine { return f.eng.Load() }

// Bootstrap downloads a snapshot from the primary and installs the
// loaded engine. The snapshot's LSN becomes the stream position: Run
// resumes exactly where the snapshot ends.
func (f *Follower) Bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+"/replicate/snapshot", nil)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replica: bootstrap: primary returned %d: %s", resp.StatusCode, body)
	}
	eng, err := semprox.LoadEngine(resp.Body)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	eng.SetWorkers(f.Workers)
	f.eng.Store(eng)
	f.applied.Store(eng.LSN())
	return nil
}

// Run bootstraps (if Bootstrap was not already called) and then streams
// records until ctx ends, applying each through the epoch machinery and
// compacting the accumulated overlays after every applied batch.
// Transient primary failures back off and retry. Divergence — a stream
// gap (the primary truncated its log past this follower), an
// undecodable record, or a record the local engine rejects — drops
// readiness (so /readyz goes 503 and load balancers stop routing here)
// and re-bootstraps a fresh snapshot from the primary. Run returns only
// on context cancellation.
func (f *Follower) Run(ctx context.Context) error {
	if f.Engine() == nil {
		if err := f.Bootstrap(ctx); err != nil {
			return err
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		applied, err := f.pollOnce(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var app *applyError
			if errors.As(err, &app) {
				// The local engine can never converge from here; only a
				// fresh snapshot can. Stop reporting ready until a clean
				// poll completes after re-bootstrap. This cannot loop on
				// one record: a record the primary itself rejected after
				// logging is recorded as a skip there (Engine.AdvanceLSN),
				// so the primary's snapshot LSN is already beyond it and
				// the fresh bootstrap resumes past the record.
				f.polled.Store(false)
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(f.Backoff):
				}
				if berr := f.Bootstrap(ctx); berr != nil && ctx.Err() != nil {
					return ctx.Err()
				}
				continue
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(f.Backoff):
			}
			continue
		}
		if applied > 0 {
			f.Engine().Compact()
		}
	}
}

// applyError marks a record the local engine rejected — divergence, not a
// transient failure.
type applyError struct{ err error }

func (e *applyError) Error() string { return e.err.Error() }
func (e *applyError) Unwrap() error { return e.err }

// pollOnce issues one since request and applies its records, returning
// how many were applied.
func (f *Follower) pollOnce(ctx context.Context) (int, error) {
	after := f.applied.Load()
	u := fmt.Sprintf("%s/replicate/since?lsn=%d&max=%d&wait_ms=%d",
		f.primary, after, f.MaxBatch, f.PollWait.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, fmt.Errorf("replica: %w", err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("replica: poll: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("replica: poll: primary returned %d: %s", resp.StatusCode, body)
	}
	var sr sinceResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&sr); err != nil {
		return 0, fmt.Errorf("replica: poll: %w", err)
	}
	eng := f.Engine()
	applied := 0
	for _, rec := range sr.Records {
		cur := f.applied.Load()
		if rec.LSN <= cur {
			continue // duplicate delivery after a retry
		}
		if rec.LSN != cur+1 {
			// A gap means the primary truncated its log past this
			// follower's position: records cur+1..rec.LSN-1 are gone and
			// applying anything later would silently diverge.
			return applied, &applyError{fmt.Errorf("replica: stream gap: record %d after %d (primary log truncated past us)", rec.LSN, cur)}
		}
		d, err := graph.DecodeDelta(rec.Delta)
		if err != nil {
			return applied, &applyError{fmt.Errorf("replica: record %d: %w", rec.LSN, err)}
		}
		if _, err := eng.ApplyUpdateAt(d, rec.LSN); err != nil {
			return applied, &applyError{fmt.Errorf("replica: apply record %d: %w", rec.LSN, err)}
		}
		f.applied.Store(rec.LSN)
		applied++
	}
	if sr.LastLSN > f.target.Load() {
		f.target.Store(sr.LastLSN)
	}
	f.polled.Store(true)
	return applied, nil
}

// Status reports the follower's replication position in one consistent
// read: the LSN applied locally, the primary's durable LSN as of the
// last successful poll, the lag between them (clamped at 0), and whether
// the follower is ready — bootstrapped, at least one poll completed, and
// zero lag. Callers needing several of these values must take them from
// ONE Status call; separate calls read the atomics independently and can
// disagree.
func (f *Follower) Status() (applied, primaryLSN, lag uint64, ready bool) {
	applied = f.applied.Load()
	primaryLSN = f.target.Load()
	if primaryLSN > applied {
		lag = primaryLSN - applied
	}
	ready = f.Engine() != nil && f.polled.Load() && lag == 0
	return applied, primaryLSN, lag, ready
}

// Lag returns primaryLSN - appliedLSN as of the last poll (0 when caught
// up or not yet polled).
func (f *Follower) Lag() uint64 {
	_, _, lag, _ := f.Status()
	return lag
}

// PrimaryURL returns the primary base URL the follower replicates from.
func (f *Follower) PrimaryURL() string { return f.primary }

// ValidPrimaryURL rejects -follow values that cannot name a primary;
// cmd/semproxd validates the flag before bootstrapping.
func ValidPrimaryURL(s string) error {
	u, err := url.Parse(s)
	if err != nil {
		return err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("replica: primary URL %q must be http or https", s)
	}
	if u.Host == "" {
		return fmt.Errorf("replica: primary URL %q has no host", s)
	}
	return nil
}
