package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	semprox "repro"
	"repro/api"
	"repro/client"
	"repro/internal/atomicfile"
	"repro/internal/graph"
	"repro/internal/wal"
)

// Follower keeps a local engine converged with a primary: Bootstrap
// fetches a full snapshot (arriving at the primary's engine state at some
// LSN), then Run streams /v1/replicate/since records and applies them
// through Engine.ApplyUpdateBatchAt — the same epoch-swap machinery the
// primary used, so local reads are lock-free during catch-up and the
// follower at LSN N answers queries byte-identically to the primary at
// LSN N. All primary traffic goes through the typed client package — the
// wire protocol exists in exactly one place (api).
//
// A drained since batch is coalesced into ONE apply: contiguous logged
// deltas concatenate (new-node ids are assigned deterministically, so
// the merged delta is id-for-id the sequence it replaces) and the epoch
// counter advances once per covered record, cutting the epoch churn —
// graph clones, index patches, class re-merges — of catch-up from one
// per record to one per poll while keeping the engine byte-identical to
// a record-at-a-time replica.
//
// With Dir set the follower is also durable and promotable: every batch
// is fsynced into a follower-local WAL BEFORE it is applied, the
// bootstrap snapshot is persisted next to it, Restore rebuilds the
// engine from that local state without touching the primary, and
// Promote seals the local log under a raised term so a Server can start
// accepting writes on it — the failover path when the primary dies.
//
// Terms fence zombies. Every poll carries the term of the follower's
// newest applied record; a primary holding a different record there
// answers 409 (histories diverged → re-bootstrap). Every since response
// carries the serving log's current term; a response from a term OLDER
// than the newest this follower has seen means the server lost its
// authority to a promotion it has not noticed — the follower refuses to
// apply and reports StatusFenced until it reaches a current-term
// primary (Retarget points it at one).
type Follower struct {
	// Workers retunes the bootstrapped engine for this host (the snapshot
	// carries the primary's setting); <= 0 keeps one worker per CPU.
	Workers int
	// PollWait is the long-poll duration requested per since call.
	PollWait time.Duration
	// MaxBatch bounds the records requested per since call.
	MaxBatch int
	// Backoff is the pause after a failed poll before retrying.
	Backoff time.Duration
	// Dir, when non-empty, is the follower's local state directory: the
	// bootstrap snapshot persists to Dir/engine.snap and replicated
	// records fsync into Dir/wal before they apply. Set it before
	// Restore/Bootstrap/Run; empty keeps the follower memory-only (no
	// Restore, no Promote).
	Dir string

	hc  *http.Client
	cmu sync.Mutex // guards c (Retarget swaps it mid-Run)
	c   *client.Client

	eng      atomic.Pointer[semprox.Engine]
	applied  atomic.Uint64 // LSN of the last record applied locally
	target   atomic.Uint64 // primary durable LSN as of the last poll
	polled   atomic.Bool   // at least one successful poll completed
	appTerm  atomic.Uint64 // term of the last record applied locally
	seenTerm atomic.Uint64 // newest term observed anywhere (responses, records)
	fenced   atomic.Bool   // last poll hit a zombie (stale-term) primary

	wmu      sync.Mutex // guards log and promoted
	log      *wal.WAL   // follower-local durable log (nil when Dir == "")
	promoted bool       // Promote handed the log to a server; Close must not close it
}

// NewFollower returns a follower of the primary at baseURL. Call
// Bootstrap (or Run, which bootstraps if needed) before serving reads.
// A nil hc gets a timeout-FREE http.Client, unlike the client package's
// default: a whole-request timeout also bounds reading the response
// body, and a snapshot bootstrap streams an engine of unbounded size —
// a fixed cap would wedge large followers in a bootstrap-retry loop.
// Per-call deadlines come from the contexts Bootstrap and Run pass in.
func NewFollower(baseURL string, hc *http.Client) *Follower {
	if hc == nil {
		hc = &http.Client{}
	}
	f := &Follower{
		hc:       hc,
		PollWait: 10 * time.Second,
		MaxBatch: DefaultMaxBatch,
		Backoff:  500 * time.Millisecond,
	}
	f.setClient(baseURL)
	f.registerGauges()
	return f
}

func (f *Follower) setClient(baseURL string) {
	c := client.New(baseURL, f.hc)
	// The follower is its own retry policy (Backoff between polls);
	// client-level retries would just delay the lag signal.
	c.Retries = 0
	f.cmu.Lock()
	f.c = c
	f.cmu.Unlock()
}

func (f *Follower) client() *client.Client {
	f.cmu.Lock()
	defer f.cmu.Unlock()
	return f.c
}

// Retarget points the follower at a different primary; the next poll
// goes there. Safe to call while Run is polling — the monitor calls it
// when it discovers that a peer (not this node) won a promotion.
func (f *Follower) Retarget(baseURL string) { f.setClient(baseURL) }

// Engine returns the local serving engine (nil before Bootstrap).
func (f *Follower) Engine() *semprox.Engine { return f.eng.Load() }

// snapPath and walDir name the two halves of the local state directory.
func (f *Follower) snapPath() string { return filepath.Join(f.Dir, "engine.snap") }
func (f *Follower) walDir() string   { return filepath.Join(f.Dir, "wal") }

// Restore rebuilds the follower from its local state directory — the
// persisted bootstrap snapshot plus the follower-local WAL — without
// touching the primary. It returns (false, nil) when Dir is unset or
// holds no snapshot (call Bootstrap), and (true, nil) when the follower
// is ready to Run from exactly where it crashed: the replayed engine is
// byte-identical to one that had applied the same records live, because
// replay drives the same ApplyUpdateAt path the live stream does.
func (f *Follower) Restore() (bool, error) {
	if f.Dir == "" {
		return false, nil
	}
	snap, err := os.Open(f.snapPath())
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("replica: restore: %w", err)
	}
	eng, lerr := semprox.LoadEngine(snap)
	snap.Close()
	if lerr != nil {
		return false, fmt.Errorf("replica: restore: %w", lerr)
	}
	eng.SetWorkers(f.Workers)
	log, err := wal.Open(f.walDir(), wal.Options{BaseLSN: eng.LSN()})
	if err != nil {
		return false, fmt.Errorf("replica: restore: %w", err)
	}
	if _, _, err := semprox.ReplayWAL(eng, log); err != nil {
		log.Close()
		return false, fmt.Errorf("replica: restore: %w", err)
	}
	eng.Compact()
	f.installLog(log)
	f.eng.Store(eng)
	f.applied.Store(eng.LSN())
	f.appTerm.Store(log.LastTerm())
	if t := log.Term(); t > f.seenTerm.Load() {
		f.seenTerm.Store(t)
	}
	return true, nil
}

// Bootstrap downloads a snapshot from the primary and installs the
// loaded engine. The snapshot's LSN becomes the stream position: Run
// resumes exactly where the snapshot ends. With Dir set, the snapshot
// is persisted locally (atomically) and a fresh local WAL is created at
// its LSN — any previous local log is discarded, because a bootstrap
// means the old local history is useless (first boot) or diverged
// (zombie suffix). The newest term this follower has seen survives the
// wipe: it is seeded into the fresh log so a later Promote still
// outranks the deposed primary.
func (f *Follower) Bootstrap(ctx context.Context) error {
	repBootstraps.Inc()
	body, err := f.client().ReplicateSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	defer body.Close()
	var eng *semprox.Engine
	if f.Dir != "" {
		if err := os.MkdirAll(f.Dir, 0o755); err != nil {
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
		// Persist first (atomic: temp + fsync + rename), then load from
		// the local copy — the stream is consumed once either way, and a
		// load failure removes the unusable file so Restore can't boot
		// from it.
		if err := atomicfile.WriteWith(f.snapPath(), func(w io.Writer) error {
			_, cerr := io.Copy(w, body)
			return cerr
		}); err != nil {
			return fmt.Errorf("replica: bootstrap: persist snapshot: %w", err)
		}
		snap, err := os.Open(f.snapPath())
		if err != nil {
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
		eng, err = semprox.LoadEngine(snap)
		snap.Close()
		if err != nil {
			os.Remove(f.snapPath())
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
	} else {
		eng, err = semprox.LoadEngine(body)
		if err != nil {
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
	}
	eng.SetWorkers(f.Workers)
	if f.Dir != "" {
		if err := os.RemoveAll(f.walDir()); err != nil {
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
		log, err := wal.Open(f.walDir(), wal.Options{BaseLSN: eng.LSN()})
		if err != nil {
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
		if t := f.seenTerm.Load(); t > log.Term() {
			if err := log.SetTerm(t); err != nil {
				log.Close()
				return fmt.Errorf("replica: bootstrap: %w", err)
			}
		}
		f.installLog(log)
	}
	f.eng.Store(eng)
	f.applied.Store(eng.LSN())
	f.appTerm.Store(0) // snapshots carry no term; the first poll skips the history check
	return nil
}

// installLog swaps in a fresh local WAL, closing any previous one.
func (f *Follower) installLog(log *wal.WAL) {
	f.wmu.Lock()
	old := f.log
	f.log = log
	f.wmu.Unlock()
	if old != nil {
		old.Close()
	}
}

func (f *Follower) walRef() *wal.WAL {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if f.promoted {
		return nil
	}
	return f.log
}

// Promote seals the follower's local log for writing: the current term
// is raised past every term this follower has ever observed (durably,
// sidecar-first) and the log is handed to the caller — Server.Promote
// mounts it and starts accepting /v1/update. Call only after Run has
// stopped (cancel its context and wait); the returned log now belongs
// to the server, and Close leaves it alone. Requires Dir (a memory-only
// follower has no durable history to promote).
func (f *Follower) Promote() (*wal.WAL, error) {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if f.log == nil {
		return nil, errors.New("replica: promote: no local log (follower started without a state dir)")
	}
	if f.promoted {
		return nil, errors.New("replica: promote: already promoted")
	}
	next := f.log.Term()
	if seen := f.seenTerm.Load(); seen > next {
		next = seen
	}
	if err := f.log.SetTerm(next + 1); err != nil {
		return nil, fmt.Errorf("replica: promote: %w", err)
	}
	f.seenTerm.Store(next + 1)
	f.promoted = true
	repPromotions.Inc()
	return f.log, nil
}

// Close releases the follower's local log (no-op when memory-only or
// already promoted — a promoted log belongs to the server).
func (f *Follower) Close() error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if f.log == nil || f.promoted {
		f.log = nil
		return nil
	}
	err := f.log.Close()
	f.log = nil
	return err
}

// Run bootstraps (if Restore or Bootstrap was not already called) and
// then streams records until ctx ends, coalescing each drained batch
// into one apply and compacting the accumulated overlays afterwards.
// Transient primary failures (and fencing — polling a deposed primary)
// back off and retry. Divergence — a 409 term mismatch, a stream gap, an
// undecodable record, or a record the local engine rejects — drops
// readiness (so /v1/readyz goes 503 and load balancers stop routing
// here) and re-bootstraps a fresh snapshot from the primary. Run returns
// only on context cancellation.
func (f *Follower) Run(ctx context.Context) error {
	if f.Engine() == nil {
		if err := f.Bootstrap(ctx); err != nil {
			return err
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		applied, err := f.pollOnce(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var app *applyError
			if errors.As(err, &app) {
				// The local engine can never converge from here; only a
				// fresh snapshot can. Stop reporting ready until a clean
				// poll completes after re-bootstrap. This cannot loop on
				// one record: a record the primary itself rejected after
				// logging is recorded as a skip there (Engine.AdvanceLSN),
				// so the primary's snapshot LSN is already beyond it and
				// the fresh bootstrap resumes past the record.
				f.polled.Store(false)
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(f.Backoff):
				}
				if berr := f.Bootstrap(ctx); berr != nil && ctx.Err() != nil {
					return ctx.Err()
				}
				continue
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(f.Backoff):
			}
			continue
		}
		if applied > 0 {
			f.Engine().Compact()
		}
	}
}

// applyError marks a record the local engine rejected — divergence, not a
// transient failure.
type applyError struct{ err error }

func (e *applyError) Error() string { return e.err.Error() }
func (e *applyError) Unwrap() error { return e.err }

// pollOnce issues one since request through the typed client, coalesces
// the contiguous records it returned into one delta, fsyncs them into
// the local WAL (durable BEFORE visible — an LSN this follower reports
// in its next poll, and so may release a synchronously-replicated ack
// on the primary, must survive this follower crashing), and applies
// them in a single epoch swap (see Engine.ApplyUpdateBatchAt),
// returning how many records were applied.
func (f *Follower) pollOnce(ctx context.Context) (int, error) {
	repPolls.Inc()
	after := f.applied.Load()
	afterTerm := uint64(0)
	if after > 0 {
		afterTerm = f.appTerm.Load()
	}
	sr, err := f.client().ReplicateSince(ctx, after, afterTerm, f.MaxBatch, f.PollWait)
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) && apiErr.Code == api.CodeTermMismatch {
			// The primary holds a DIFFERENT record at our applied LSN:
			// our suffix came from a deposed primary and was overwritten
			// by a promotion. Only a fresh snapshot reconverges.
			return 0, &applyError{fmt.Errorf("replica: poll: %w", err)}
		}
		return 0, fmt.Errorf("replica: poll: %w", err)
	}
	// Fencing comes FIRST, before any divergence check: a response from a
	// term older than one we have seen is a zombie primary — still
	// answering, unaware it was deposed. Nothing it says is actionable
	// (not even "you are ahead of me", which from a zombie is expected,
	// not divergence); applying its records would fork our history. Stay
	// fenced until a current-term primary answers — the monitor's
	// Retarget, or the zombie rejoining as a follower of the new primary,
	// clears it.
	srvTerm := sr.Term
	if srvTerm == 0 {
		srvTerm = 1 // a pre-term primary is term 1, same as its records
	}
	if seen := f.seenTerm.Load(); srvTerm < seen {
		f.fenced.Store(true)
		return 0, fmt.Errorf("replica: poll: fenced: primary %s answers at term %d but term %d exists — polling a zombie", f.client().BaseURL(), srvTerm, seen)
	}
	if srvTerm > f.seenTerm.Load() {
		f.seenTerm.Store(srvTerm)
	}
	if sr.LastLSN < after {
		// A CURRENT-term primary whose durable log ends behind what we
		// applied: our suffix never reached it (we replicated it from a
		// log that died with the old primary) — that suffix is not part
		// of history. Discard local state and re-bootstrap.
		return 0, &applyError{fmt.Errorf("replica: primary at term %d ends at LSN %d but we applied %d: our suffix lost the promotion", srvTerm, sr.LastLSN, after)}
	}
	// Coalesce the batch. Records at or below the applied position are
	// duplicate deliveries after a retry; past that the LSNs must be
	// contiguous — a gap means the primary truncated its log past this
	// follower and records in between are gone, so applying anything
	// later would silently diverge. Each record is validated EXACTLY as
	// a one-at-a-time apply would validate it (known types, edge
	// endpoints within the node count as of ITS position in the stream):
	// a record the primary logged but rejected-and-skipped must fail here
	// too, not be absorbed by a merged delta whose later records happen
	// to bring its out-of-range endpoints into range. Terms must never
	// decrease along the stream (the serving log enforces that on its own
	// records, so a violation here means a broken or lying server).
	// The contiguous valid prefix before a gap / undecodable / invalid
	// record still applies; the divergence error surfaces after.
	eng := f.Engine()
	var d graph.Delta
	var raws []wal.RawRecord
	nodes := eng.Graph().NumNodes()
	last, count := after, 0
	lastTerm, prevTerm := f.appTerm.Load(), f.appTerm.Load()
	var diverged error
	for _, rec := range sr.Records {
		if rec.LSN <= last {
			continue // duplicate delivery after a retry
		}
		if rec.LSN != last+1 {
			diverged = &applyError{fmt.Errorf("replica: stream gap: record %d after %d (primary log truncated past us)", rec.LSN, last)}
			break
		}
		recTerm := rec.Term
		if recTerm == 0 {
			recTerm = 1
		}
		if recTerm < prevTerm || recTerm > srvTerm {
			diverged = &applyError{fmt.Errorf("replica: record %d term %d outside [%d, %d]: stream breaks term order", rec.LSN, recTerm, prevTerm, srvTerm)}
			break
		}
		rd, err := graph.DecodeDelta(rec.Delta)
		if err != nil {
			diverged = &applyError{fmt.Errorf("replica: record %d: %w", rec.LSN, err)}
			break
		}
		if err := applicable(eng, nodes, rd); err != nil {
			diverged = &applyError{fmt.Errorf("replica: apply record %d: %w", rec.LSN, err)}
			break
		}
		d.Nodes = append(d.Nodes, rd.Nodes...)
		d.Edges = append(d.Edges, rd.Edges...)
		raws = append(raws, wal.RawRecord{LSN: rec.LSN, Term: recTerm, Delta: rec.Delta})
		nodes += len(rd.Nodes)
		last, prevTerm, lastTerm = rec.LSN, recTerm, recTerm
		count++
	}
	applied := 0
	if count > 0 {
		if log := f.walRef(); log != nil {
			// Durable before visible: the batch fsyncs into the local log
			// before the engine applies it. A crash between the two replays
			// the batch from the local log (Restore); the reverse order
			// could advance our reported position past records a crash
			// erases — and the primary may have released an acked write on
			// that report.
			if err := log.AppendRawBatch(raws); err != nil {
				return 0, fmt.Errorf("replica: local log: %w", err)
			}
		}
		if _, err := eng.ApplyUpdateBatchAt(d, last, count); err != nil {
			return 0, &applyError{fmt.Errorf("replica: apply records %d..%d: %w", after+1, last, err)}
		}
		f.applied.Store(last)
		f.appTerm.Store(lastTerm)
		repApplied.Add(uint64(count))
		applied = count
	}
	if diverged != nil {
		return applied, diverged
	}
	if sr.LastLSN > f.target.Load() {
		f.target.Store(sr.LastLSN)
	}
	f.polled.Store(true)
	f.fenced.Store(false)
	return applied, nil
}

// applicable reports whether d would be accepted by a graph currently
// holding `nodes` nodes — graph.Apply's own acceptance predicate
// (graph.ValidateApply), evaluated at the record's position in the
// stream rather than against the merged batch, so a record the primary
// rejected is never absorbed by coalescing.
func applicable(eng *semprox.Engine, nodes int, d graph.Delta) error {
	return graph.ValidateApply(eng.Graph().Types(), nodes, d)
}

// FollowerStatus is one consistent read of a follower's replication
// position: the LSN applied locally, the primary's durable LSN as of
// the last successful poll, the lag between them (clamped at 0), the
// newest term observed, and the readiness verdicts. Callers needing
// several of these values must take them from ONE Status call; separate
// calls read the atomics independently and can disagree.
type FollowerStatus struct {
	Applied    uint64
	PrimaryLSN uint64
	Lag        uint64
	Term       uint64
	Ready      bool // bootstrapped, polled cleanly, zero lag, not fenced
	Fenced     bool // last poll hit a deposed (stale-term) primary
}

// Status reports the follower's replication position.
func (f *Follower) Status() FollowerStatus {
	st := FollowerStatus{
		Applied:    f.applied.Load(),
		PrimaryLSN: f.target.Load(),
		Term:       f.seenTerm.Load(),
		Fenced:     f.fenced.Load(),
	}
	if st.PrimaryLSN > st.Applied {
		st.Lag = st.PrimaryLSN - st.Applied
	}
	st.Ready = f.Engine() != nil && f.polled.Load() && st.Lag == 0 && !st.Fenced
	return st
}

// Lag returns primaryLSN - appliedLSN as of the last poll (0 when caught
// up or not yet polled).
func (f *Follower) Lag() uint64 { return f.Status().Lag }

// PrimaryURL returns the primary base URL the follower replicates from.
func (f *Follower) PrimaryURL() string { return f.client().BaseURL() }

// ValidPrimaryURL rejects -follow values that cannot name a primary;
// cmd/semproxd validates the flag before bootstrapping.
func ValidPrimaryURL(s string) error {
	u, err := url.Parse(s)
	if err != nil {
		return err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("replica: primary URL %q must be http or https", s)
	}
	if u.Host == "" {
		return fmt.Errorf("replica: primary URL %q has no host", s)
	}
	return nil
}
