package replica

import (
	"context"
	"net/http"
	"time"

	"repro/api"
	"repro/client"
)

// Monitor watches a follower's primary and decides when — and who — to
// promote when it dies. Every Interval it probes the primary's
// /v1/readyz; after Threshold consecutive probes that do not show a
// write-capable primary (unreachable, wrong role, or a sticky-failed
// WAL), it runs an election among the reachable peers:
//
//   - a peer already serving as primary at a term >= ours won a race we
//     lost (or finished one we never saw) — the monitor retargets the
//     follower at it and goes back to watching;
//   - otherwise the candidate with the highest (term, applied LSN, URL)
//     tuple wins, the URL being a deterministic tiebreak so two monitors
//     looking at the same world elect the same node. If that is Self,
//     Run returns nil and the caller performs the promotion
//     (Follower.Promote + Server.Promote); if it is someone else, the
//     monitor keeps watching until the winner shows up as a primary.
//
// The (term, LSN)-max rule is what makes promotion safe with
// synchronous replication (-ack-replicas): an acked write is durable on
// at least one follower, and the follower with the longest log at the
// newest term holds every such write.
type Monitor struct {
	// F is the follower whose primary is watched (and retargeted).
	F *Follower
	// Self is this node's advertised base URL — the identity compared
	// against peers in the election.
	Self string
	// Peers are the other replication nodes' advertised base URLs (the
	// dead primary may be among them; it just fails its probe). Self is
	// skipped if present.
	Peers []string
	// Interval is the probe cadence (default 500ms).
	Interval time.Duration
	// Threshold is how many consecutive failed probes declare the
	// primary dead (default 3) — one lost packet must not trigger a
	// promotion storm.
	Threshold int
	// HTTP issues the probes; nil gets a client with Interval-scale
	// timeouts.
	HTTP *http.Client
}

// Run watches until the primary dies AND this node wins the election
// (returns nil — caller must promote) or ctx ends (returns ctx.Err()).
func (m *Monitor) Run(ctx context.Context) error {
	interval := m.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	threshold := m.Threshold
	if threshold <= 0 {
		threshold = 3
	}
	hc := m.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 2 * interval}
	}
	probe := func(url string) (api.ReadyResponse, error) {
		pctx, cancel := context.WithTimeout(ctx, 2*interval)
		defer cancel()
		c := client.New(url, hc)
		c.Retries = 0
		return c.Ready(pctx)
	}
	fails := 0
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		resp, err := probe(m.F.PrimaryURL())
		if err == nil && resp.Role == api.RolePrimary && resp.Ready() {
			fails = 0
			continue
		}
		if fails++; fails < threshold {
			continue
		}
		// Primary declared dead. Election: probe the peers once.
		self := m.F.Status()
		win, winTerm, winLSN := m.Self, self.Term, self.Applied
		promoted := ""
		var promotedTerm uint64
		for _, url := range m.Peers {
			if url == m.Self {
				continue
			}
			r, err := probe(url)
			if err != nil {
				continue
			}
			if r.Role == api.RolePrimary && r.Term >= self.Term {
				if promoted == "" || r.Term > promotedTerm {
					promoted, promotedTerm = url, r.Term
				}
				continue
			}
			if r.Role != api.RoleFollower {
				continue
			}
			if betterCandidate(r.Term, r.LSN, url, winTerm, winLSN, win) {
				win, winTerm, winLSN = url, r.Term, r.LSN
			}
		}
		if promoted != "" {
			// Someone already holds the crown; follow them.
			if m.F.PrimaryURL() != promoted {
				m.F.Retarget(promoted)
			}
			fails = 0
			continue
		}
		if win == m.Self {
			return nil
		}
		// A better-placed peer should promote; keep watching — either it
		// shows up as primary (we retarget) or it died too and the next
		// election falls to us.
	}
}

// betterCandidate orders election candidates: term first (newer history
// wins), applied LSN second (longest log wins — it holds every
// synchronously-acked write), URL last (a deterministic tiebreak).
func betterCandidate(term, lsn uint64, url string, curTerm, curLSN uint64, curURL string) bool {
	if term != curTerm {
		return term > curTerm
	}
	if lsn != curLSN {
		return lsn > curLSN
	}
	return url > curURL
}
