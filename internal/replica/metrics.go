// Replication observability, mirroring the WAL's split: rates (polls,
// applied records, bootstraps, promotions) are process-wide counters on
// the obs default registry; position gauges (lag, applied LSN, fenced)
// are per-instance callbacks with replace-on-register semantics — in a
// real follower daemon there is exactly one Follower, so the series is
// unambiguous.
package replica

import "repro/internal/obs"

var (
	repPolls = obs.Default().Counter("semprox_replica_polls_total",
		"Replication since-polls issued to the primary, successful or not.")
	repApplied = obs.Default().Counter("semprox_replica_records_applied_total",
		"Replicated records durably logged and applied to the local engine.")
	repBootstraps = obs.Default().Counter("semprox_replica_bootstraps_total",
		"Snapshot bootstraps — the initial one plus every divergence-forced re-bootstrap.")
	repPromotions = obs.Default().Counter("semprox_replica_promotions_total",
		"Followers promoted to primary (local log sealed at a raised term).")
)

// registerGauges wires f's position gauges; called from NewFollower.
func (f *Follower) registerGauges() {
	r := obs.Default()
	r.RegisterGaugeFunc("semprox_replica_lag",
		"Records behind the primary as of the last poll (0 when caught up).",
		func() float64 { return float64(f.Status().Lag) })
	r.RegisterGaugeFunc("semprox_replica_applied_lsn",
		"Highest LSN applied to the local engine.",
		func() float64 { return float64(f.applied.Load()) })
	r.RegisterGaugeFunc("semprox_replica_fenced",
		"1 while the last poll hit a deposed (stale-term) primary, else 0.",
		func() float64 {
			if f.fenced.Load() {
				return 1
			}
			return 0
		})
}
