package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	semprox "repro"
	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/mining"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// primaryHarness is a trained engine with an attached WAL behind a real
// HTTP server — the exact stack semproxd -wal runs.
type primaryHarness struct {
	eng *semprox.Engine
	log *wal.WAL
	ts  *httptest.Server
}

func newPrimaryHarness(t *testing.T) *primaryHarness {
	t.Helper()
	g := fixtures.Toy()
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
	opts.Train.Restarts = 2
	opts.Train.MaxIters = 200
	eng, err := semprox.NewEngine(g, "user", opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Train("classmate", []semprox.Example{
		{Q: g.NodeByName("Kate"), X: g.NodeByName("Jay"), Y: g.NodeByName("Alice")},
		{Q: g.NodeByName("Bob"), X: g.NodeByName("Tom"), Y: g.NodeByName("Alice")},
	})
	w, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	srv := server.New(eng)
	srv.AttachWAL(w)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &primaryHarness{eng: eng, log: w, ts: ts}
}

// applyRandom pushes one random delta through the primary's durable write
// path (log first, then apply — what POST /update does).
func (h *primaryHarness) applyRandom(t *testing.T, rng *rand.Rand, tag string) {
	t.Helper()
	types := []string{"user", "school", "hobby"}
	var d graph.Delta
	for i := 1 + rng.Intn(2); i > 0; i-- {
		d.Nodes = append(d.Nodes, graph.DeltaNode{
			Type:  types[rng.Intn(len(types))],
			Value: fmt.Sprintf("%s-%d", tag, i),
		})
	}
	n := h.eng.Graph().NumNodes() + len(d.Nodes)
	for i := 1 + rng.Intn(4); i > 0; i-- {
		d.Edges = append(d.Edges, graph.Edge{
			U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n)),
		})
	}
	lsn, err := h.log.Append(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.eng.ApplyUpdateAt(d, lsn); err != nil {
		t.Fatal(err)
	}
}

// waitCaughtUp polls until the follower reports ready at the primary's
// durable LSN.
func waitCaughtUp(t *testing.T, f *replica.Follower, target uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := f.Status()
		if st.Ready && st.Applied >= target {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := f.Status()
	t.Fatalf("follower never caught up: applied %d, primary %d, lag %d, ready %v (target %d)",
		st.Applied, st.PrimaryLSN, st.Lag, st.Ready, target)
}

// TestFollowerConvergesByteIdentical is the acceptance property of the
// replication subsystem: a follower bootstrapped MID-stream (the primary
// already has logged updates, more keep arriving during catch-up)
// converges to byte-identical query results with the primary, while
// concurrent queries hammer the follower's engine throughout (run with
// -race via make test).
func TestFollowerConvergesByteIdentical(t *testing.T) {
	h := newPrimaryHarness(t)
	rng := rand.New(rand.NewSource(42))

	// Updates before the follower exists.
	for i := 0; i < 3; i++ {
		h.applyRandom(t, rng, fmt.Sprintf("pre%d", i))
	}

	f := replica.NewFollower(h.ts.URL, h.ts.Client())
	f.PollWait = 200 * time.Millisecond
	f.Backoff = 20 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if f.Engine().LSN() != 3 {
		t.Fatalf("bootstrap at LSN %d, want 3", f.Engine().LSN())
	}

	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(ctx) }()

	// Hammer the follower's engine with reads during catch-up; the epoch
	// machinery must keep every read consistent and data-race free.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				eng := f.Engine()
				g := eng.Graph()
				users := g.NodesOfType(g.Types().ID("user"))
				if _, err := eng.Query("classmate", users[i%len(users)], 5); err != nil {
					t.Error(err)
					return
				}
				_ = eng.Stats()
			}
		}()
	}

	// Updates while the follower is streaming.
	for i := 0; i < 5; i++ {
		h.applyRandom(t, rng, fmt.Sprintf("live%d", i))
		time.Sleep(5 * time.Millisecond)
	}

	waitCaughtUp(t, f, h.log.DurableLSN())
	close(stop)
	wg.Wait()

	// Byte-identical state: same snapshot bytes, same answers everywhere.
	h.eng.Compact()
	var want, got bytes.Buffer
	if err := h.eng.Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := f.Engine().Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("follower snapshot differs from primary snapshot")
	}
	pg := h.eng.Graph()
	users := pg.NodesOfType(pg.Types().ID("user"))
	for _, q := range users {
		a, errA := h.eng.Query("classmate", q, 0)
		b, errB := f.Engine().Query("classmate", q, 0)
		if errA != nil || errB != nil || !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d diverged: %v/%v vs %v/%v", q, a, errA, b, errB)
		}
	}

	// /readyz on a follower-flagged server reports ready with lag 0.
	fsrv := server.New(f.Engine())
	fsrv.SetFollower(f)
	fts := httptest.NewServer(fsrv)
	defer fts.Close()
	resp, err := fts.Client().Get(fts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/readyz on caught-up follower = %d, want 200", resp.StatusCode)
	}
	if f.Lag() != 0 {
		t.Fatalf("lag = %d, want 0", f.Lag())
	}

	cancel()
	if err := <-runDone; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestFollowerBootstrapRejectsBadPrimary: a primary that serves garbage
// snapshots fails Bootstrap with an error, not a panic.
func TestFollowerBootstrapRejectsBadPrimary(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	f := replica.NewFollower(ts.URL, ts.Client())
	if err := f.Bootstrap(context.Background()); err == nil {
		t.Fatal("bootstrap from a non-primary succeeded")
	}
}

func TestValidPrimaryURL(t *testing.T) {
	for _, ok := range []string{"http://127.0.0.1:8080", "https://primary.internal"} {
		if err := replica.ValidPrimaryURL(ok); err != nil {
			t.Fatalf("%s rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", "127.0.0.1:8080", "ftp://x", "http://"} {
		if err := replica.ValidPrimaryURL(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

// TestServeSinceByteBound: the primary bounds a since batch by bytes as
// well as record count, so a follower that fell far behind a stream of
// large deltas never receives a response bigger than it will decode —
// the kept prefix stays contiguous and the follower simply re-polls.
func TestServeSinceByteBound(t *testing.T) {
	h := newPrimaryHarness(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		h.applyRandom(t, rng, fmt.Sprintf("bb%d", i))
	}
	p := replica.NewPrimary(h.eng, h.log)
	p.MaxBytes = 1 // every record exceeds the budget: one per response

	got := 0
	after := uint64(0)
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/replicate/since?lsn=%d&max=100", after), nil)
		status, body, err := p.ServeSince(req)
		if err != nil || status != http.StatusOK {
			t.Fatalf("ServeSince = %d, %v", status, err)
		}
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		var sr struct {
			LastLSN uint64 `json:"last_lsn"`
			Records []struct {
				LSN uint64 `json:"lsn"`
			} `json:"records"`
		}
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Records) != 1 {
			t.Fatalf("poll %d returned %d records, want 1 (byte bound)", i, len(sr.Records))
		}
		if sr.Records[0].LSN != after+1 {
			t.Fatalf("poll %d: LSN %d, want %d (non-contiguous prefix)", i, sr.Records[0].LSN, after+1)
		}
		after = sr.Records[0].LSN
		got++
	}
	if got != 3 || after != h.log.DurableLSN() {
		t.Fatalf("drained %d records to LSN %d, want 3 to %d", got, after, h.log.DurableLSN())
	}
}
