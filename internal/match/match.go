// Package match implements metagraph matching (Sect. IV of the paper):
// computing the instances I(M) of a metagraph M on a typed object graph G.
//
// Four engines are provided. QuickSI, TurboISO and BoostISO are
// reimplementations of the backtracking baselines the paper compares
// against (Sect. IV-A, Fig. 11), each preserving its distinguishing pruning
// idea. SymISO is the paper's contribution (Sect. IV-C, Alg. 2–3): it
// decomposes a symmetric metagraph into symmetric components and computes
// candidate matchings once per component group.
//
// All engines enumerate assignments: injective, type-preserving maps from
// metagraph nodes to graph nodes under which every metagraph edge lands on
// a graph edge (Def. 2; instances are subgraphs, not induced subgraphs).
// Distinct assignments related by an automorphism of M describe the same
// instance subgraph, so Instances wraps an engine with an
// automorphism-canonical filter that reports each instance exactly once.
// Engines are differential-tested to produce identical assignment sets.
package match

import (
	"repro/internal/graph"
	"repro/internal/metagraph"
)

// Visitor receives one assignment per call: a[i] is the graph node matched
// to metagraph node i. The slice is reused between calls; implementations
// must copy it if they retain it. Returning false stops the enumeration.
type Visitor func(a []graph.NodeID) bool

// Matcher enumerates all assignments of a metagraph on the graph it was
// constructed for.
type Matcher interface {
	// Name identifies the engine in reports ("QuickSI", "SymISO", ...).
	Name() string
	// Match enumerates every assignment of m, in engine-specific order.
	Match(m *metagraph.Metagraph, visit Visitor)
}

// CountAssignments runs matcher on m and returns the total number of
// assignments.
func CountAssignments(matcher Matcher, m *metagraph.Metagraph) int64 {
	var n int64
	matcher.Match(m, func([]graph.NodeID) bool {
		n++
		return true
	})
	return n
}

// Instances enumerates each instance subgraph of m exactly once by
// filtering assignments to automorphism-canonical representatives: an
// assignment a is reported iff it is lexicographically minimal among
// {a∘σ : σ ∈ Aut(M)}. Two assignments describe the same instance iff they
// differ by an automorphism, so this visits one witness per instance.
func Instances(matcher Matcher, m *metagraph.Metagraph, visit Visitor) {
	auts := m.Automorphisms()
	// Drop the identity; it never rejects.
	nontrivial := auts[:0]
	for _, s := range auts {
		id := true
		for i, v := range s {
			if v != i {
				id = false
				break
			}
		}
		if !id {
			nontrivial = append(nontrivial, s)
		}
	}
	matcher.Match(m, func(a []graph.NodeID) bool {
		for _, s := range nontrivial {
			// Compare a∘s with a lexicographically; reject if smaller.
			for i := range a {
				x, y := a[s[i]], a[i]
				if x == y {
					continue
				}
				if x < y {
					return true // a∘s is smaller: a is not canonical
				}
				break // a is smaller on this automorphism; check next
			}
		}
		return visit(a)
	})
}

// CountInstances returns the number of distinct instances of m.
func CountInstances(matcher Matcher, m *metagraph.Metagraph) int64 {
	var n int64
	Instances(matcher, m, func([]graph.NodeID) bool {
		n++
		return true
	})
	return n
}
