package match

import (
	"math"

	"repro/internal/graph"
	"repro/internal/metagraph"
)

// GraphStats caches per-type selectivity statistics of a graph for the
// matching-order estimates of Sect. IV-C: |I(u)| is approximated by the
// node count of u's type and |I(<u,u'>)| by the edge count between the two
// endpoint types.
type GraphStats struct {
	g *graph.Graph
	// nodesOfType[t] = number of nodes with type t.
	nodesOfType []float64
	// edgesOfTypes[t1*numTypes+t2] = number of edges joining types t1, t2
	// (symmetric; each undirected edge counted once in both slots).
	edgesOfTypes []float64
}

// NewGraphStats scans g once and returns its selectivity statistics.
func NewGraphStats(g *graph.Graph) *GraphStats {
	nt := g.NumTypes()
	s := &GraphStats{
		g:            g,
		nodesOfType:  make([]float64, nt),
		edgesOfTypes: make([]float64, nt*nt),
	}
	for t := 0; t < nt; t++ {
		s.nodesOfType[t] = float64(g.NumNodesOfType(graph.TypeID(t)))
	}
	g.Edges(func(u, v graph.NodeID) bool {
		tu, tv := int(g.Type(u)), int(g.Type(v))
		s.edgesOfTypes[tu*nt+tv]++
		if tu != tv {
			s.edgesOfTypes[tv*nt+tu]++
		}
		return true
	})
	return s
}

// NodeCount returns |I(u)| for a metagraph node of type t.
func (s *GraphStats) NodeCount(t graph.TypeID) float64 {
	return s.nodesOfType[t]
}

// EdgeCount returns |I(<u,u'>)| for an edge between types t1 and t2.
func (s *GraphStats) EdgeCount(t1, t2 graph.TypeID) float64 {
	return s.edgesOfTypes[int(t1)*s.g.NumTypes()+int(t2)]
}

// extensionFactor estimates the growth in intermediate instances when a
// node of type tNew is matched through an edge from a matched node of type
// tFrom: |I(<u,u'>)| / |I(u)| (Sect. IV-C).
func (s *GraphStats) extensionFactor(tFrom, tNew graph.TypeID) float64 {
	base := s.NodeCount(tFrom)
	if base == 0 {
		return math.Inf(1)
	}
	return s.EdgeCount(tFrom, tNew) / base
}

// EstimateOrder computes a matching order over m's nodes that greedily
// minimizes the estimated number of intermediate instances, mirroring the
// edge-growth estimation of Sect. IV-C. The first node is the one whose
// type is rarest in the graph; each subsequent node is a neighbor of the
// ordered prefix with the smallest extension factor (non-adjacent nodes are
// considered last with their full type count as the factor, which only
// matters for patterns whose prefix disconnects, and keeps the order total).
func EstimateOrder(s *GraphStats, m *metagraph.Metagraph) []int {
	n := m.N()
	order := make([]int, 0, n)
	placed := make([]bool, n)

	first, bestCount := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		if c := s.NodeCount(m.Type(i)); c < bestCount {
			first, bestCount = i, c
		}
	}
	order = append(order, first)
	placed[first] = true

	for len(order) < n {
		next, bestF := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			f := math.Inf(1)
			for _, j := range order {
				if m.HasEdge(i, j) {
					if ef := s.extensionFactor(m.Type(j), m.Type(i)); ef < f {
						f = ef
					}
				}
			}
			if math.IsInf(f, 1) {
				// No edge to the prefix; deprioritize but keep finite so a
				// disconnected prefix cannot stall the order.
				f = s.NodeCount(m.Type(i)) + 1e12
			}
			if f < bestF || next == -1 {
				next, bestF = i, f
			}
		}
		order = append(order, next)
		placed[next] = true
	}
	return order
}

// connectedOrder returns an order over the node subset such that every node
// after the first is adjacent in m to an earlier node of the subset when
// possible. Used to order nodes inside a SymISO component.
func connectedOrder(m *metagraph.Metagraph, nodes []int) []int {
	if len(nodes) <= 1 {
		return append([]int(nil), nodes...)
	}
	in := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		in[v] = true
	}
	order := []int{nodes[0]}
	placed := map[int]bool{nodes[0]: true}
	for len(order) < len(nodes) {
		found := -1
		for _, v := range nodes {
			if placed[v] {
				continue
			}
			for _, w := range order {
				if m.HasEdge(v, w) {
					found = v
					break
				}
			}
			if found != -1 {
				break
			}
		}
		if found == -1 {
			for _, v := range nodes {
				if !placed[v] {
					found = v
					break
				}
			}
		}
		order = append(order, found)
		placed[found] = true
	}
	return order
}
