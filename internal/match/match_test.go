package match

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/metagraph"
)

// Type ids shared by the fixtures (registration order in buildToy).
const (
	tUser graph.TypeID = iota
	tSurname
	tAddress
	tSchool
	tMajor
	tEmployer
	tHobby
)

// buildToy reproduces the toy social network of Fig. 1(a).
func buildToy(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	// Register types in the fixed order the constants above assume.
	for _, n := range []string{"user", "surname", "address", "school", "major", "employer", "hobby"} {
		b.Types().Register(n)
	}
	alice := b.AddNodeOnce("user", "Alice")
	bob := b.AddNodeOnce("user", "Bob")
	kate := b.AddNodeOnce("user", "Kate")
	jay := b.AddNodeOnce("user", "Jay")
	tom := b.AddNodeOnce("user", "Tom")
	clinton := b.AddNodeOnce("surname", "Clinton")
	green := b.AddNodeOnce("address", "123 Green St")
	white := b.AddNodeOnce("address", "456 White St")
	collegeA := b.AddNodeOnce("school", "College A")
	collegeB := b.AddNodeOnce("school", "College B")
	econ := b.AddNodeOnce("major", "Economics")
	physics := b.AddNodeOnce("major", "Physics")
	companyX := b.AddNodeOnce("employer", "Company X")
	music := b.AddNodeOnce("hobby", "Music")
	for _, e := range [][2]graph.NodeID{
		{alice, clinton}, {bob, clinton},
		{alice, green}, {bob, green},
		{kate, white}, {jay, white},
		{bob, collegeA}, {tom, collegeA},
		{kate, collegeB}, {jay, collegeB},
		{bob, econ}, {tom, econ},
		{kate, physics}, {jay, physics},
		{alice, companyX}, {kate, companyX},
		{alice, music}, {kate, music},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

func mgM1() *metagraph.Metagraph {
	return metagraph.MustNew(
		[]graph.TypeID{tUser, tUser, tSchool, tMajor},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
}

func mgM2() *metagraph.Metagraph {
	return metagraph.MustNew(
		[]graph.TypeID{tUser, tUser, tEmployer, tHobby},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
}

func mgM3() *metagraph.Metagraph {
	return metagraph.MustNew(
		[]graph.TypeID{tUser, tAddress, tUser},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
}

func mgM4() *metagraph.Metagraph {
	return metagraph.MustNew(
		[]graph.TypeID{tUser, tUser, tSurname, tAddress},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
}

func allMatchers(g *graph.Graph) []Matcher {
	return []Matcher{
		NewQuickSI(g),
		NewTurboISO(g),
		NewBoostISO(g),
		NewSymISO(g),
		NewSymISOR(g, 7),
	}
}

// assignmentSet collects the sorted multiset of assignments as strings.
func assignmentSet(matcher Matcher, m *metagraph.Metagraph) []string {
	var out []string
	matcher.Match(m, func(a []graph.NodeID) bool {
		out = append(out, fmt.Sprint(a))
		return true
	})
	sort.Strings(out)
	return out
}

// instanceSet collects the set of instance subgraphs, each normalized to a
// sorted node list plus sorted edge list.
func instanceSet(matcher Matcher, m *metagraph.Metagraph) map[string]bool {
	out := make(map[string]bool)
	Instances(matcher, m, func(a []graph.NodeID) bool {
		nodes := append([]graph.NodeID(nil), a...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		var edges [][2]graph.NodeID
		for _, e := range m.Edges() {
			u, v := a[e.U], a[e.V]
			if u > v {
				u, v = v, u
			}
			edges = append(edges, [2]graph.NodeID{u, v})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i][0] != edges[j][0] {
				return edges[i][0] < edges[j][0]
			}
			return edges[i][1] < edges[j][1]
		})
		out[fmt.Sprint(nodes, edges)] = true
		return true
	})
	return out
}

func TestToyM3Instances(t *testing.T) {
	g := buildToy(t)
	for _, matcher := range allMatchers(g) {
		// Two instances (Alice–Green–Bob, Kate–White–Jay), each with two
		// automorphic assignments.
		if got := CountAssignments(matcher, mgM3()); got != 4 {
			t.Errorf("%s: assignments(M3) = %d, want 4", matcher.Name(), got)
		}
		if got := CountInstances(matcher, mgM3()); got != 2 {
			t.Errorf("%s: instances(M3) = %d, want 2", matcher.Name(), got)
		}
	}
}

func TestToyM1M2M4Instances(t *testing.T) {
	g := buildToy(t)
	// M1: (Bob,Tom | College A, Economics) and (Kate,Jay | College B,
	// Physics). M2: (Alice,Kate | Company X, Music). M4: (Alice,Bob |
	// Clinton, 123 Green St).
	wants := map[string]int64{"M1": 2, "M2": 1, "M4": 1}
	mgs := map[string]*metagraph.Metagraph{"M1": mgM1(), "M2": mgM2(), "M4": mgM4()}
	for name, m := range mgs {
		for _, matcher := range allMatchers(g) {
			if got := CountInstances(matcher, m); got != wants[name] {
				t.Errorf("%s: instances(%s) = %d, want %d", matcher.Name(), name, got, wants[name])
			}
		}
	}
}

func TestMatchersAgreeOnToy(t *testing.T) {
	g := buildToy(t)
	ref := NewQuickSI(g)
	for _, m := range []*metagraph.Metagraph{mgM1(), mgM2(), mgM3(), mgM4()} {
		want := assignmentSet(ref, m)
		for _, matcher := range allMatchers(g)[1:] {
			got := assignmentSet(matcher, m)
			if len(got) != len(want) {
				t.Fatalf("%s on %v: %d assignments, want %d", matcher.Name(), m, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s on %v: assignment sets differ at %d: %s vs %s",
						matcher.Name(), m, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEarlyStop(t *testing.T) {
	g := buildToy(t)
	for _, matcher := range allMatchers(g) {
		n := 0
		matcher.Match(mgM3(), func(a []graph.NodeID) bool {
			n++
			return false
		})
		if n != 1 {
			t.Errorf("%s: early stop visited %d assignments", matcher.Name(), n)
		}
	}
}

func TestInstancesVisitUniqueSubgraphs(t *testing.T) {
	g := buildToy(t)
	m := mgM1()
	seen := make(map[string]int)
	Instances(NewQuickSI(g), m, func(a []graph.NodeID) bool {
		nodes := append([]graph.NodeID(nil), a...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		seen[fmt.Sprint(nodes)]++
		return true
	})
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("instance %s visited %d times", k, c)
		}
	}
}

// randomTypedGraph builds a random graph for differential tests.
func randomTypedGraph(rng *rand.Rand, nodes, edges, types int) *graph.Graph {
	b := graph.NewBuilder()
	names := make([]string, types)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
		b.Types().Register(names[i])
	}
	for i := 0; i < nodes; i++ {
		b.AddNode(names[rng.Intn(types)], "")
	}
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(nodes)), graph.NodeID(rng.Intn(nodes)))
	}
	return b.MustBuild()
}

// randomMetagraph builds a random connected metagraph over the type set.
func randomMetagraph(rng *rand.Rand, types int) *metagraph.Metagraph {
	n := 2 + rng.Intn(4)
	ts := make([]graph.TypeID, n)
	for i := range ts {
		ts[i] = graph.TypeID(rng.Intn(types))
	}
	var edges []metagraph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, metagraph.Edge{U: rng.Intn(i), V: i})
	}
	for k := 0; k < rng.Intn(3); k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			if u > v {
				u, v = v, u
			}
			edges = append(edges, metagraph.Edge{U: u, V: v})
		}
	}
	return metagraph.MustNew(ts, edges)
}

// TestQuickMatchersAgree is the central differential test: every engine
// must enumerate exactly the same assignment multiset on random inputs.
func TestQuickMatchersAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		types := 1 + rng.Intn(3)
		g := randomTypedGraph(rng, 4+rng.Intn(20), rng.Intn(50), types)
		m := randomMetagraph(rng, types)
		want := assignmentSet(NewQuickSI(g), m)
		for _, matcher := range allMatchers(g)[1:] {
			got := assignmentSet(matcher, m)
			if len(got) != len(want) {
				t.Logf("seed %d: %s found %d assignments, QuickSI %d (m=%v)",
					seed, matcher.Name(), len(got), len(want), m)
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("seed %d: %s assignment mismatch (m=%v)", seed, matcher.Name(), m)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInstancesAgree verifies instance sets agree too (the Instances
// dedup layer composed with any engine).
func TestQuickInstancesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		types := 1 + rng.Intn(3)
		g := randomTypedGraph(rng, 4+rng.Intn(16), rng.Intn(40), types)
		m := randomMetagraph(rng, types)
		want := instanceSet(NewQuickSI(g), m)
		for _, matcher := range allMatchers(g)[1:] {
			got := instanceSet(matcher, m)
			if len(got) != len(want) {
				return false
			}
			for k := range want {
				if !got[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAssignmentsValid: every reported assignment is injective,
// type-preserving, and edge-preserving (Def. 2).
func TestQuickAssignmentsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		types := 1 + rng.Intn(3)
		g := randomTypedGraph(rng, 4+rng.Intn(16), rng.Intn(40), types)
		m := randomMetagraph(rng, types)
		ok := true
		for _, matcher := range allMatchers(g) {
			matcher.Match(m, func(a []graph.NodeID) bool {
				used := make(map[graph.NodeID]bool)
				for i, v := range a {
					if used[v] || g.Type(v) != m.Type(i) {
						ok = false
						return false
					}
					used[v] = true
				}
				for _, e := range m.Edges() {
					if !g.HasEdge(a[e.U], a[e.V]) {
						ok = false
						return false
					}
				}
				return true
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateOrderIsPermutation(t *testing.T) {
	g := buildToy(t)
	stats := NewGraphStats(g)
	for _, m := range []*metagraph.Metagraph{mgM1(), mgM2(), mgM3(), mgM4()} {
		order := EstimateOrder(stats, m)
		if len(order) != m.N() {
			t.Fatalf("order length %d != %d", len(order), m.N())
		}
		seen := make(map[int]bool)
		for _, v := range order {
			if v < 0 || v >= m.N() || seen[v] {
				t.Fatalf("order %v is not a permutation", order)
			}
			seen[v] = true
		}
	}
}

func TestGraphStats(t *testing.T) {
	g := buildToy(t)
	s := NewGraphStats(g)
	if s.NodeCount(tUser) != 5 {
		t.Fatalf("NodeCount(user) = %f", s.NodeCount(tUser))
	}
	// user–surname edges: Alice–Clinton, Bob–Clinton.
	if s.EdgeCount(tUser, tSurname) != 2 || s.EdgeCount(tSurname, tUser) != 2 {
		t.Fatalf("EdgeCount(user,surname) = %f", s.EdgeCount(tUser, tSurname))
	}
	if s.EdgeCount(tSurname, tHobby) != 0 {
		t.Fatalf("EdgeCount(surname,hobby) = %f", s.EdgeCount(tSurname, tHobby))
	}
}

func TestBoostISOClasses(t *testing.T) {
	// Two leaf users attached to the same school are equivalent; a third
	// attached elsewhere is not.
	b := graph.NewBuilder()
	s1 := b.AddNode("school", "s1")
	s2 := b.AddNode("school", "s2")
	u1 := b.AddNode("user", "u1")
	u2 := b.AddNode("user", "u2")
	u3 := b.AddNode("user", "u3")
	b.AddEdge(u1, s1)
	b.AddEdge(u2, s1)
	b.AddEdge(u3, s2)
	g := b.MustBuild()
	bi := NewBoostISO(g)
	if bi.class[u1] != bi.class[u2] {
		t.Fatal("duplicate leaves should share a class")
	}
	if bi.class[u1] == bi.class[u3] {
		t.Fatal("leaves of different schools must not share a class")
	}
	if bi.NumClasses() >= g.NumNodes() {
		t.Fatalf("NumClasses = %d, want < %d", bi.NumClasses(), g.NumNodes())
	}
}

func TestConnectedOrder(t *testing.T) {
	m := mgM1()
	order := connectedOrder(m, []int{0, 1, 2})
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// Node after the first must touch the prefix when possible: 0 and 1 are
	// not adjacent, but both touch 2.
	if order[0] == 0 && order[1] == 1 {
		t.Fatalf("order %v breaks connectivity preference", order)
	}
}

func TestSymISONameAndR(t *testing.T) {
	g := buildToy(t)
	if NewSymISO(g).Name() != "SymISO" {
		t.Fatal("bad name")
	}
	if NewSymISOR(g, 1).Name() != "SymISO-R" {
		t.Fatal("bad name")
	}
}
