package match

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/metagraph"
)

// SymISO is the paper's symmetry-based matching algorithm (Sect. IV-C,
// Alg. 2–3). The metagraph is decomposed into symmetric-component groups
// (internal/metagraph.Decompose); matching proceeds one group at a time.
// For a group B = {S, S', ...} of mutually symmetric components, the
// candidate matchings C(S|D) are computed once from the representative S
// and reused for every sibling: the involutive automorphism behind the
// group fixes all already-matched nodes, so a sibling's constraints
// against D coincide with the representative's and are never re-verified.
// Only the cross-edges between the group's own components are checked when
// a tuple of distinct matchings is selected.
type SymISO struct {
	g     *graph.Graph
	stats *GraphStats
	rng   *rand.Rand // non-nil for SymISO-R: random component order
}

// NewSymISO builds a SymISO engine for g with the estimated-instances
// component order of Sect. IV-C.
func NewSymISO(g *graph.Graph) *SymISO {
	return &SymISO{g: g, stats: NewGraphStats(g)}
}

// NewSymISOR builds SymISO-R, the ablation with a random matching order
// (used in Fig. 11 to show the value of the ordering). The random order
// still prefers connectivity to the matched prefix — a fully arbitrary
// order can degenerate to full type scans, which no implementation would
// ship.
func NewSymISOR(g *graph.Graph, seed int64) *SymISO {
	return &SymISO{g: g, stats: NewGraphStats(g), rng: rand.New(rand.NewSource(seed))}
}

// Name implements Matcher.
func (s *SymISO) Name() string {
	if s.rng != nil {
		return "SymISO-R"
	}
	return "SymISO"
}

// Match implements Matcher.
func (s *SymISO) Match(m *metagraph.Metagraph, visit Visitor) {
	d := metagraph.Decompose(m)
	groups := d.Groups
	order := s.groupOrder(m, groups)

	st := &symState{
		s:      s,
		m:      m,
		groups: groups,
		order:  order,
		assign: make([]graph.NodeID, m.N()),
		used:   make([]bool, s.g.NumNodes()),
		visit:  visit,
	}
	for i := range st.assign {
		st.assign[i] = graph.InvalidNode
	}

	// Precompute, per group and member, the member's neighbors *within the
	// group*: those are the only edges a sibling tuple pick must verify
	// (edges to D are guaranteed by the group's automorphism; internal
	// member edges by the representative's matching).
	st.groupNbrs = make([][][][]int, len(groups))
	for gi := range groups {
		g := &groups[gi]
		inGroup := make(map[int]bool)
		for _, c := range g.Members {
			for _, v := range c.Nodes {
				inGroup[v] = true
			}
		}
		st.groupNbrs[gi] = make([][][]int, len(g.Members))
		for k := range g.Members {
			nodes := g.Maps[k]
			nbrs := make([][]int, len(nodes))
			for i, u := range nodes {
				for _, w := range m.Neighbors(u) {
					if inGroup[w] {
						nbrs[i] = append(nbrs[i], w)
					}
				}
			}
			st.groupNbrs[gi][k] = nbrs
		}
	}
	st.matchGroup(0)
}

// groupOrder orders groups by the first appearance of any of their nodes
// in the node-level estimate order ("when a node of a component S is
// chosen, we select S as the next component"), or randomly (but
// connectivity-respecting) for SymISO-R.
func (s *SymISO) groupOrder(m *metagraph.Metagraph, groups []metagraph.Group) []int {
	idx := make([]int, len(groups))
	for i := range idx {
		idx[i] = i
	}
	if s.rng != nil {
		s.rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		return connectGroups(m, groups, idx)
	}
	nodeOrder := EstimateOrder(s.stats, m)
	pos := make([]int, m.N())
	for p, v := range nodeOrder {
		pos[v] = p
	}
	first := make([]int, len(groups))
	for i, g := range groups {
		f := m.N()
		for _, c := range g.Members {
			for _, v := range c.Nodes {
				if pos[v] < f {
					f = pos[v]
				}
			}
		}
		first[i] = f
	}
	for a := 1; a < len(idx); a++ {
		for b := a; b > 0 && first[idx[b]] < first[idx[b-1]]; b-- {
			idx[b], idx[b-1] = idx[b-1], idx[b]
		}
	}
	return idx
}

// connectGroups reorders idx so that every group after the first touches
// an earlier group through some metagraph edge when possible, keeping the
// incoming (random) order otherwise.
func connectGroups(m *metagraph.Metagraph, groups []metagraph.Group, idx []int) []int {
	nodesOf := func(gi int) []int {
		var out []int
		for _, c := range groups[gi].Members {
			out = append(out, c.Nodes...)
		}
		return out
	}
	touches := func(gi int, placedMask uint16) bool {
		for _, u := range nodesOf(gi) {
			for _, w := range m.Neighbors(u) {
				if placedMask&(1<<uint(w)) != 0 {
					return true
				}
			}
		}
		return false
	}
	out := make([]int, 0, len(idx))
	remaining := append([]int(nil), idx...)
	var placed uint16
	for len(remaining) > 0 {
		pick := -1
		if len(out) > 0 {
			for i, gi := range remaining {
				if touches(gi, placed) {
					pick = i
					break
				}
			}
		}
		if pick == -1 {
			pick = 0
		}
		gi := remaining[pick]
		out = append(out, gi)
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		for _, u := range nodesOf(gi) {
			placed |= 1 << uint(u)
		}
	}
	return out
}

// symState carries the recursion state of MatchingByComponent (Alg. 3).
type symState struct {
	s      *SymISO
	m      *metagraph.Metagraph
	groups []metagraph.Group
	order  []int

	// groupNbrs[gi][member][i] lists the group-internal metagraph
	// neighbors of member node i.
	groupNbrs [][][][]int

	assign  []graph.NodeID
	used    []bool
	visit   Visitor
	stopped bool
}

func (st *symState) matchGroup(k int) {
	if st.stopped {
		return
	}
	if k == len(st.order) {
		if !st.visit(st.assign) {
			st.stopped = true
		}
		return
	}
	gi := st.order[k]
	g := &st.groups[gi]
	rep := g.Representative()

	// Fast path: a singleton group with a single node behaves exactly like
	// one step of plain backtracking — no materialization needed.
	if len(g.Members) == 1 && len(rep.Nodes) == 1 {
		u := rep.Nodes[0]
		for _, v := range st.candidatesFor(u) {
			if st.used[v] || !st.consistent(u, v) {
				continue
			}
			st.assign[u] = v
			st.used[v] = true
			st.matchGroup(k + 1)
			st.used[v] = false
			st.assign[u] = graph.InvalidNode
			if st.stopped {
				return
			}
		}
		return
	}

	// C(S|D): candidate matchings of the representative component, each
	// aligned with rep.Nodes. Computed once for the whole group.
	cands := st.componentMatchings(rep.Nodes)
	if len(cands) == 0 {
		return
	}

	if len(g.Members) == 1 {
		for _, c := range cands {
			st.apply(rep.Nodes, c)
			st.matchGroup(k + 1)
			st.unapply(rep.Nodes, c)
			if st.stopped {
				return
			}
		}
		return
	}

	// Choose an ordered tuple of node-disjoint matchings, one per member,
	// reusing cands for all of them. Constraints against D hold for free
	// (the group's automorphisms fix D); only the group-internal cross
	// edges are verified as each member is placed.
	var tuple func(j int)
	tuple = func(j int) {
		if st.stopped {
			return
		}
		if j == len(g.Members) {
			st.matchGroup(k + 1)
			return
		}
		nodes := g.Maps[j]
		nbrs := st.groupNbrs[gi][j]
		for _, c := range cands {
			if !st.free(c) {
				continue
			}
			if j > 0 && !st.groupCrossConsistent(nodes, nbrs, c) {
				continue
			}
			st.apply(nodes, c)
			tuple(j + 1)
			st.unapply(nodes, c)
			if st.stopped {
				return
			}
		}
	}
	tuple(0)
}

// candidatesFor returns the candidate list for a single metagraph node:
// the typed adjacency of the cheapest assigned neighbor, or the full type
// list if none is assigned yet.
func (st *symState) candidatesFor(u int) []graph.NodeID {
	pivot := graph.InvalidNode
	bestDeg := 0
	for _, w := range st.m.Neighbors(u) {
		a := st.assign[w]
		if a == graph.InvalidNode {
			continue
		}
		d := st.s.g.DegreeOfType(a, st.m.Type(u))
		if pivot == graph.InvalidNode || d < bestDeg {
			pivot, bestDeg = a, d
		}
	}
	if pivot != graph.InvalidNode {
		return st.s.g.NeighborsOfType(pivot, st.m.Type(u))
	}
	return st.s.g.NodesOfType(st.m.Type(u))
}

// consistent checks every assigned metagraph neighbor of u against v.
func (st *symState) consistent(u int, v graph.NodeID) bool {
	for _, w := range st.m.Neighbors(u) {
		if a := st.assign[w]; a != graph.InvalidNode && !st.s.g.HasEdge(v, a) {
			return false
		}
	}
	return true
}

// componentMatchings computes all assignments of the given metagraph
// nodes consistent with the current partial assignment: type-preserving,
// injective against used nodes, and preserving every metagraph edge whose
// other endpoint is already assigned or earlier in the component.
func (st *symState) componentMatchings(nodes []int) [][]graph.NodeID {
	order := connectedOrder(st.m, nodes)
	posInNodes := make(map[int]int, len(nodes))
	for i, v := range nodes {
		posInNodes[v] = i
	}

	var out [][]graph.NodeID
	// Flat backing array: one allocation amortized over all matchings.
	var backing []graph.NodeID
	cur := make([]graph.NodeID, len(nodes))
	var rec func(i int)
	rec = func(i int) {
		if i == len(order) {
			start := len(backing)
			backing = append(backing, cur...)
			out = append(out, backing[start:len(backing):len(backing)])
			return
		}
		u := order[i]
		for _, v := range st.candidatesFor(u) {
			if st.used[v] || !st.consistent(u, v) {
				continue
			}
			st.assign[u] = v
			st.used[v] = true
			cur[posInNodes[u]] = v
			rec(i + 1)
			st.used[v] = false
			st.assign[u] = graph.InvalidNode
		}
	}
	rec(0)
	return out
}

// free reports whether none of the matching's graph nodes is already used.
func (st *symState) free(c []graph.NodeID) bool {
	for _, v := range c {
		if st.used[v] {
			return false
		}
	}
	return true
}

// groupCrossConsistent verifies only the group-internal metagraph edges of
// a sibling member against what is assigned so far. Edges to D need no
// check (symmetry), nor do edges within the member (automorphism image of
// the representative's internal edges, verified in componentMatchings).
func (st *symState) groupCrossConsistent(nodes []int, nbrs [][]int, c []graph.NodeID) bool {
	for i := range nodes {
		v := c[i]
		for _, w := range nbrs[i] {
			if a := st.assign[w]; a != graph.InvalidNode && !st.s.g.HasEdge(v, a) {
				return false
			}
		}
	}
	return true
}

// apply installs a matching of the given metagraph nodes.
func (st *symState) apply(nodes []int, c []graph.NodeID) {
	for i, u := range nodes {
		st.assign[u] = c[i]
		st.used[c[i]] = true
	}
}

// unapply reverts apply.
func (st *symState) unapply(nodes []int, c []graph.NodeID) {
	for i, u := range nodes {
		st.assign[u] = graph.InvalidNode
		st.used[c[i]] = false
	}
}
