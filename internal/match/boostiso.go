package match

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/metagraph"
)

// BoostISO is the vertex-relationship baseline (after Ren & Wang,
// PVLDB'15): graph vertices with identical type and identical neighbor sets
// are *syntactically equivalent* — any assignment mapping a pattern node to
// one of them remains valid under substitution by another. The engine
// verifies adjacency once per equivalence class and then emits every unused
// class member, which pays off on attribute graphs where many leaf objects
// duplicate each other. Like the other baselines, it does not exploit
// pattern-side symmetry.
type BoostISO struct {
	g     *graph.Graph
	stats *GraphStats

	// class[v] = equivalence class id of vertex v; members[c] lists the
	// vertices of class c in ascending order.
	class   []int32
	members [][]graph.NodeID
}

// NewBoostISO builds a BoostISO engine for g, precomputing vertex
// equivalence classes (one scan, hashing sorted adjacency).
func NewBoostISO(g *graph.Graph) *BoostISO {
	b := &BoostISO{g: g, stats: NewGraphStats(g)}
	n := g.NumNodes()
	b.class = make([]int32, n)
	byKey := make(map[string]int32, n)
	for v := 0; v < n; v++ {
		var sb strings.Builder
		sb.WriteString(strconv.Itoa(int(g.Type(graph.NodeID(v)))))
		sb.WriteByte('|')
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			sb.WriteString(strconv.Itoa(int(w)))
			sb.WriteByte(',')
		}
		key := sb.String()
		id, ok := byKey[key]
		if !ok {
			id = int32(len(b.members))
			byKey[key] = id
			b.members = append(b.members, nil)
		}
		b.class[v] = id
		b.members[id] = append(b.members[id], graph.NodeID(v))
	}
	for _, ms := range b.members {
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	}
	return b
}

// Name implements Matcher.
func (b *BoostISO) Name() string { return "BoostISO" }

// NumClasses returns the number of vertex equivalence classes (for tests
// and reports).
func (b *BoostISO) NumClasses() int { return len(b.members) }

// Match implements Matcher.
func (b *BoostISO) Match(m *metagraph.Metagraph, visit Visitor) {
	bt := newBacktracker(b.g, m, EstimateOrder(b.stats, m), visit)
	// Override the recursion: group candidates by equivalence class, verify
	// the class once, then emit each unused member.
	var rec func(k int)
	// One class-dedup map per depth: the recursion below must not clobber
	// an outer depth's tracking.
	seenByDepth := make([]map[int32]bool, len(bt.order))
	for i := range seenByDepth {
		seenByDepth[i] = make(map[int32]bool, 16)
	}
	rec = func(k int) {
		if bt.stopped {
			return
		}
		if k == len(bt.order) {
			if !bt.visit(bt.assign) {
				bt.stopped = true
			}
			return
		}
		u := bt.order[k]
		pivot := bt.pivotFor(u)
		cands := bt.defaultCandidates(u, pivot)
		seenClass := seenByDepth[k]
		for key := range seenClass {
			delete(seenClass, key)
		}
		for _, v := range cands {
			c := b.class[v]
			if seenClass[c] {
				continue
			}
			seenClass[c] = true
			// Verify adjacency once using v; all class members share v's
			// neighbor set, so the result holds for each of them. Members
			// are pairwise non-adjacent (no self loops), so edges among
			// pattern nodes mapped into one class fail uniformly too.
			if !bt.consistent(u, v) {
				continue
			}
			for _, w := range b.members[c] {
				if bt.used[w] {
					continue
				}
				// Class members may not all be candidates when the pivot's
				// list was a strict subset (it never is: equivalent
				// vertices share all neighbors, so they co-occur in every
				// adjacency list). Still, guard the type invariant cheaply.
				bt.assign[u] = w
				bt.used[w] = true
				rec(k + 1)
				bt.used[w] = false
				bt.assign[u] = graph.InvalidNode
				if bt.stopped {
					return
				}
			}
		}
	}
	rec(0)
}
