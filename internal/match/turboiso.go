package match

import (
	"repro/internal/graph"
	"repro/internal/metagraph"
)

// TurboISO is the candidate-region baseline (after Han et al., SIGMOD'13):
// before backtracking it computes a filtered candidate set per metagraph
// node using degree and neighbor-type-frequency (NLF) conditions, and
// during backtracking it intersects the typed adjacency lists of *all*
// matched neighbors instead of pivoting on one. The stronger filtering is
// what distinguishes the engine; like the original, it ignores metagraph
// symmetry and so repeats work that SymISO reuses.
type TurboISO struct {
	g     *graph.Graph
	stats *GraphStats
}

// NewTurboISO builds a TurboISO engine for g.
func NewTurboISO(g *graph.Graph) *TurboISO {
	return &TurboISO{g: g, stats: NewGraphStats(g)}
}

// Name implements Matcher.
func (t *TurboISO) Name() string { return "TurboISO" }

// Match implements Matcher.
func (t *TurboISO) Match(m *metagraph.Metagraph, visit Visitor) {
	n := m.N()
	nt := t.g.NumTypes()

	// Neighbor-type requirements of each metagraph node.
	req := make([][]int, n)
	for u := 0; u < n; u++ {
		req[u] = make([]int, nt)
		for _, w := range m.Neighbors(u) {
			req[u][m.Type(w)]++
		}
	}

	passes := func(u int, v graph.NodeID) bool {
		if t.g.Degree(v) < m.Degree(u) {
			return false
		}
		for tt, need := range req[u] {
			if need > 0 && t.g.DegreeOfType(v, graph.TypeID(tt)) < need {
				return false
			}
		}
		return true
	}

	// Candidate sets per metagraph node (the "candidate regions").
	cand := make([][]graph.NodeID, n)
	candSet := make([]map[graph.NodeID]bool, n)
	for u := 0; u < n; u++ {
		for _, v := range t.g.NodesOfType(m.Type(u)) {
			if passes(u, v) {
				cand[u] = append(cand[u], v)
			}
		}
		if len(cand[u]) == 0 {
			return // some pattern node has no candidate: no instances
		}
		candSet[u] = make(map[graph.NodeID]bool, len(cand[u]))
		for _, v := range cand[u] {
			candSet[u][v] = true
		}
	}

	order := EstimateOrder(t.stats, m)
	b := newBacktracker(t.g, m, order, visit)
	// One scratch buffer per metagraph node: the recursion re-enters
	// candidates at deeper levels while the caller is still ranging over
	// its own result, so buffers must not be shared across depths.
	scratchFor := make([][]graph.NodeID, n)
	b.candidates = func(u, pivot int) []graph.NodeID {
		if pivot < 0 {
			return cand[u]
		}
		// Intersect typed adjacency of every matched neighbor, then filter
		// by the precomputed candidate region. Start from the pivot's list
		// (smallest typed degree).
		scratch := scratchFor[u][:0]
		base := t.g.NeighborsOfType(b.assign[pivot], m.Type(u))
	outer:
		for _, v := range base {
			if !candSet[u][v] {
				continue
			}
			for _, w := range m.Neighbors(u) {
				if w == pivot {
					continue
				}
				if a := b.assign[w]; a != graph.InvalidNode && !t.g.HasEdge(v, a) {
					continue outer
				}
			}
			scratch = append(scratch, v)
		}
		scratchFor[u] = scratch
		return scratch
	}
	b.run()
}
