package match

import (
	"repro/internal/graph"
	"repro/internal/metagraph"
)

// backtracker is the shared recursive engine of Sect. IV-A. Engines differ
// in how they order metagraph nodes and how they generate candidate sets;
// the skeleton (extend D_k to D_{k+1}, backtrack on failure) is common.
type backtracker struct {
	g     *graph.Graph
	m     *metagraph.Metagraph
	order []int // matching order over metagraph nodes

	assign []graph.NodeID // assign[metagraph node] = graph node or InvalidNode
	used   []bool         // used[graph node]

	visit   Visitor
	stopped bool

	// candidates returns the candidate graph nodes for metagraph node u at
	// depth k. pivot is a matched neighbor of u chosen for its small typed
	// neighbor list, or -1 if u has no matched neighbor yet.
	candidates func(u, pivot int) []graph.NodeID
}

func newBacktracker(g *graph.Graph, m *metagraph.Metagraph, order []int, visit Visitor) *backtracker {
	b := &backtracker{
		g:      g,
		m:      m,
		order:  order,
		assign: make([]graph.NodeID, m.N()),
		used:   make([]bool, g.NumNodes()),
		visit:  visit,
	}
	for i := range b.assign {
		b.assign[i] = graph.InvalidNode
	}
	return b
}

// defaultCandidates picks candidates from the typed neighbor list of the
// matched neighbor with the fewest neighbors of u's type, or from all nodes
// of u's type if none is matched yet.
func (b *backtracker) defaultCandidates(u, pivot int) []graph.NodeID {
	if pivot >= 0 {
		return b.g.NeighborsOfType(b.assign[pivot], b.m.Type(u))
	}
	return b.g.NodesOfType(b.m.Type(u))
}

// pivotFor returns the matched neighbor of u with the smallest typed
// neighbor list, or -1.
func (b *backtracker) pivotFor(u int) int {
	best, bestDeg := -1, 0
	for _, w := range b.m.Neighbors(u) {
		if b.assign[w] == graph.InvalidNode {
			continue
		}
		d := b.g.DegreeOfType(b.assign[w], b.m.Type(u))
		if best == -1 || d < bestDeg {
			best, bestDeg = w, d
		}
	}
	return best
}

// consistent reports whether mapping u to v preserves all edges from u to
// already-matched metagraph nodes.
func (b *backtracker) consistent(u int, v graph.NodeID) bool {
	for _, w := range b.m.Neighbors(u) {
		if a := b.assign[w]; a != graph.InvalidNode && !b.g.HasEdge(v, a) {
			return false
		}
	}
	return true
}

func (b *backtracker) run() {
	if b.candidates == nil {
		b.candidates = b.defaultCandidates
	}
	b.rec(0)
}

func (b *backtracker) rec(k int) {
	if b.stopped {
		return
	}
	if k == len(b.order) {
		if !b.visit(b.assign) {
			b.stopped = true
		}
		return
	}
	u := b.order[k]
	pivot := b.pivotFor(u)
	for _, v := range b.candidates(u, pivot) {
		if b.used[v] || !b.consistent(u, v) {
			continue
		}
		b.assign[u] = v
		b.used[v] = true
		b.rec(k + 1)
		b.used[v] = false
		b.assign[u] = graph.InvalidNode
		if b.stopped {
			return
		}
	}
}

// QuickSI is the selectivity-ordered backtracking baseline: a static
// matching order minimizing estimated intermediate instances (as in Shang
// et al., PVLDB'08), with candidates drawn from the cheapest matched
// neighbor's typed adjacency list.
type QuickSI struct {
	g     *graph.Graph
	stats *GraphStats
}

// NewQuickSI builds a QuickSI engine for g.
func NewQuickSI(g *graph.Graph) *QuickSI {
	return &QuickSI{g: g, stats: NewGraphStats(g)}
}

// Name implements Matcher.
func (q *QuickSI) Name() string { return "QuickSI" }

// Match implements Matcher.
func (q *QuickSI) Match(m *metagraph.Metagraph, visit Visitor) {
	b := newBacktracker(q.g, m, EstimateOrder(q.stats, m), visit)
	b.run()
}
