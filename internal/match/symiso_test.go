package match

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/metagraph"
)

// Focused SymISO tests beyond the cross-engine differential suite: the
// component-reuse machinery has its own invariants worth pinning down.

// buildM5Graph plants several instances of the M5 pattern (Fig. 5): users
// with majors under shared schools.
func buildM5Graph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for _, n := range []string{"user", "major", "school"} {
		b.Types().Register(n)
	}
	// Two schools; each school has users with majors, plus one "plain"
	// user directly attached to the school.
	for s := 0; s < 2; s++ {
		school := b.AddNodeOnce("school", fmt.Sprintf("school-%d", s))
		plain := b.AddNodeOnce("user", fmt.Sprintf("plain-%d", s))
		b.AddEdge(plain, school)
		for u := 0; u < 3; u++ {
			user := b.AddNodeOnce("user", fmt.Sprintf("u-%d-%d", s, u))
			major := b.AddNodeOnce("major", fmt.Sprintf("m-%d-%d", s, u))
			b.AddEdge(user, major)
			b.AddEdge(major, school)
		}
	}
	return b.MustBuild()
}

// m5 pattern over the test graph's type ids: user-major-school-user +
// second user-major branch (exactly Fig. 5).
func m5For(g *graph.Graph) *metagraph.Metagraph {
	tu := g.Types().ID("user")
	tm := g.Types().ID("major")
	ts := g.Types().ID("school")
	return metagraph.MustNew(
		[]graph.TypeID{tu, tm, ts, tu, tu, tm},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 2, V: 5}})
}

func TestSymISOM5AgainstQuickSI(t *testing.T) {
	g := buildM5Graph(t)
	m := m5For(g)
	want := assignmentSet(NewQuickSI(g), m)
	got := assignmentSet(NewSymISO(g), m)
	if len(want) == 0 {
		t.Fatal("fixture has no M5 assignments; test is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("SymISO found %d assignments, QuickSI %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("assignment sets differ at %d", i)
		}
	}
}

// TestSymISOHandlesSingleEdgeUserPair exercises the degenerate "group is
// the whole metagraph" case: two directly linked same-type nodes.
func TestSymISOHandlesSingleEdgeUserPair(t *testing.T) {
	b := graph.NewBuilder()
	u1 := b.AddNode("user", "u1")
	u2 := b.AddNode("user", "u2")
	u3 := b.AddNode("user", "u3")
	b.AddEdge(u1, u2)
	b.AddEdge(u2, u3)
	g := b.MustBuild()
	m := metagraph.MustNew([]graph.TypeID{0, 0}, []metagraph.Edge{{U: 0, V: 1}})
	// Assignments: (u1,u2),(u2,u1),(u2,u3),(u3,u2) = 4.
	if got := CountAssignments(NewSymISO(g), m); got != 4 {
		t.Fatalf("assignments = %d, want 4", got)
	}
	if got := CountInstances(NewSymISO(g), m); got != 2 {
		t.Fatalf("instances = %d, want 2", got)
	}
}

// TestSymISOStarGroup exercises a group with three mutually symmetric
// members (school with three user leaves).
func TestSymISOStarGroup(t *testing.T) {
	b := graph.NewBuilder()
	b.Types().Register("school")
	b.Types().Register("user")
	s1 := b.AddNode("school", "s1")
	for i := 0; i < 4; i++ {
		u := b.AddNode("user", fmt.Sprintf("u%d", i))
		b.AddEdge(u, s1)
	}
	g := b.MustBuild()
	star := metagraph.MustNew(
		[]graph.TypeID{g.Types().ID("school"), g.Types().ID("user"), g.Types().ID("user"), g.Types().ID("user")},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	// Assignments: 4·3·2 = 24 ordered leaf triples; instances: C(4,3) = 4.
	for _, eng := range []Matcher{NewSymISO(g), NewQuickSI(g)} {
		if got := CountAssignments(eng, star); got != 24 {
			t.Fatalf("%s: assignments = %d, want 24", eng.Name(), got)
		}
		if got := CountInstances(eng, star); got != 4 {
			t.Fatalf("%s: instances = %d, want 4", eng.Name(), got)
		}
	}
}

// TestSymISORDeterministicPerSeed: the random order must be reproducible.
func TestSymISORDeterministicPerSeed(t *testing.T) {
	g := buildM5Graph(t)
	m := m5For(g)
	a := assignmentSet(NewSymISOR(g, 5), m)
	bs := assignmentSet(NewSymISOR(g, 5), m)
	if len(a) != len(bs) {
		t.Fatal("SymISO-R not deterministic for a fixed seed")
	}
	// And equal to SymISO's set regardless of order.
	c := assignmentSet(NewSymISO(g), m)
	if len(a) != len(c) {
		t.Fatalf("SymISO-R found %d assignments, SymISO %d", len(a), len(c))
	}
}

// TestQuickSymISOLargerPatterns drives SymISO against QuickSI on random
// 5–6 node patterns, where multi-node symmetric components appear.
func TestQuickSymISOLargerPatterns(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		types := 1 + rng.Intn(3)
		g := randomTypedGraph(rng, 6+rng.Intn(14), 10+rng.Intn(40), types)
		n := 5 + rng.Intn(2)
		ts := make([]graph.TypeID, n)
		for i := range ts {
			ts[i] = graph.TypeID(rng.Intn(types))
		}
		var edges []metagraph.Edge
		for i := 1; i < n; i++ {
			edges = append(edges, metagraph.Edge{U: rng.Intn(i), V: i})
		}
		for k := 0; k < rng.Intn(4); k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				if u > v {
					u, v = v, u
				}
				edges = append(edges, metagraph.Edge{U: u, V: v})
			}
		}
		m := metagraph.MustNew(ts, edges)
		want := assignmentSet(NewQuickSI(g), m)
		got := assignmentSet(NewSymISO(g), m)
		if len(got) != len(want) {
			t.Fatalf("seed %d: SymISO %d vs QuickSI %d assignments (m=%v)",
				seed, len(got), len(want), m)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: assignment mismatch (m=%v)", seed, m)
			}
		}
	}
}

// TestConnectGroups verifies the SymISO-R order repair keeps connectivity
// to the prefix when possible.
func TestConnectGroups(t *testing.T) {
	g := buildM5Graph(t)
	m := m5For(g)
	d := metagraph.Decompose(m)
	rng := rand.New(rand.NewSource(3))
	idx := rng.Perm(len(d.Groups))
	ordered := connectGroups(m, d.Groups, idx)
	if len(ordered) != len(d.Groups) {
		t.Fatalf("order lost groups: %v", ordered)
	}
	seen := make(map[int]bool)
	var placed []int
	for pos, gi := range ordered {
		if seen[gi] {
			t.Fatal("duplicate group in order")
		}
		seen[gi] = true
		if pos > 0 {
			// Must touch the prefix (M5's component graph is connected).
			touch := false
			for _, c := range d.Groups[gi].Members {
				for _, u := range c.Nodes {
					for _, w := range m.Neighbors(u) {
						for _, pgi := range placed {
							for _, pc := range d.Groups[pgi].Members {
								for _, pu := range pc.Nodes {
									if pu == w {
										touch = true
									}
								}
							}
						}
					}
				}
			}
			if !touch {
				t.Fatalf("group %d at position %d does not touch the prefix", gi, pos)
			}
		}
		placed = append(placed, gi)
	}
	sort.Ints(placed)
}
