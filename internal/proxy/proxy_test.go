package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	semprox "repro"
	"repro/api"
	"repro/client"
	"repro/internal/fixtures"
	"repro/internal/mining"
	"repro/internal/server"
)

// fake is a scripted backend: readyz answers with the configured role,
// query sleeps the configured delay (bailing out — and counting — when
// the proxy cancels the attempt), update just counts.
type fake struct {
	ts        *httptest.Server
	role      string
	delay     atomic.Int64 // nanoseconds
	queries   atomic.Int64
	updates   atomic.Int64
	cancelled atomic.Int64
	lastTrace atomic.Value // last X-Semprox-Trace seen on a query
}

func newFake(t *testing.T, role string, delay time.Duration) *fake {
	t.Helper()
	f := &fake{role: role}
	f.delay.Store(int64(delay))
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathReadyz, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.ReadyResponse{Status: api.StatusReady, Role: f.role, Term: 1})
	})
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		f.queries.Add(1)
		f.lastTrace.Store(r.Header.Get(api.HeaderTrace))
		if d := time.Duration(f.delay.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				f.cancelled.Add(1)
				return
			}
		}
		w.Header().Set(api.HeaderEpoch, "1")
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"from":%q}`, f.ts.URL)
	})
	mux.HandleFunc(api.PathUpdate, func(w http.ResponseWriter, r *http.Request) {
		f.updates.Add(1)
		json.NewEncoder(w).Encode(api.UpdateResponse{Epoch: 2, LSN: 1})
	})
	mux.HandleFunc(api.PathStats, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.StatsResponse{Epoch: 7})
	})
	mux.HandleFunc(api.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"healthz_from":%q}`, f.ts.URL)
	})
	mux.HandleFunc(api.PathReplicateSince, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"since":%q,"from":%q}`, r.URL.Query().Get("from"), f.ts.URL)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// fakeStack wires a fake primary + followers behind a proxy.
func fakeStack(t *testing.T, opts Options, primary *fake, followers ...*fake) (*Proxy, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(followers))
	for i, f := range followers {
		urls[i] = f.ts.URL
	}
	router := client.NewRouter(primary.ts.URL, urls, nil)
	router.Probe(context.Background())
	p := New(router, opts)
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return p, ts
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestHedgeWinsOverStraggler: a slow follower's reads must be rescued by
// a hedge to the fast one — the winner's bytes come back, the loser is
// cancelled through its context, and the counters record all of it.
func TestHedgeWinsOverStraggler(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	slow := newFake(t, api.RoleFollower, 300*time.Millisecond)
	fast := newFake(t, api.RoleFollower, 0)
	_, ts := fakeStack(t, Options{
		Hedge:       true,
		HedgeCapPct: 100, // the cap is not under test here
		HedgeBudget: 20 * time.Millisecond,
	}, primary, slow, fast)

	p := tsProxy(t, ts)
	sawHedgeWin := false
	for i := 0; i < 6; i++ {
		status, body, _ := get(t, ts.URL+api.PathQuery+"?class=c&query=q")
		if status != http.StatusOK {
			t.Fatalf("read %d: status %d: %s", i, status, body)
		}
		// Every response must name a backend that actually answered; a
		// read that started on the slow follower must have been rescued by
		// the fast one well before the slow 300ms completes.
		if strings.Contains(string(body), fast.ts.URL) {
			sawHedgeWin = true
		}
	}
	c := p.Counters()
	if c.HedgesIssued == 0 || c.HedgesWon == 0 || !sawHedgeWin {
		t.Fatalf("expected hedges to fire and win: %+v (sawHedgeWin=%v)", c, sawHedgeWin)
	}
	if c.HedgesIssued > c.Reads {
		t.Fatalf("more hedges than reads: %+v", c)
	}
	// The slow follower's abandoned attempts were cancelled, not left
	// running to completion.
	deadline := time.Now().Add(2 * time.Second)
	for slow.cancelled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if slow.cancelled.Load() == 0 {
		t.Fatal("the losing attempt was never cancelled")
	}
}

// tsProxy recovers the *Proxy behind a test server (fakeStack returns it
// already; this helper exists for tests that only kept the server).
func tsProxy(t *testing.T, ts *httptest.Server) *Proxy {
	t.Helper()
	p, ok := ts.Config.Handler.(*Proxy)
	if !ok {
		t.Fatal("test server does not wrap a Proxy")
	}
	return p
}

// TestNoHedgeUnderBudget: fast backends answer well inside the budget,
// so the hedge timer must never fire.
func TestNoHedgeUnderBudget(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	a := newFake(t, api.RoleFollower, 0)
	b := newFake(t, api.RoleFollower, 0)
	p, ts := fakeStack(t, Options{
		Hedge:       true,
		HedgeCapPct: 100,
		// Far beyond any loopback latency even on a loaded -race runner.
		// HedgeBudgetMax must rise with it or the default 100ms clamp
		// would silently lower the budget back down — and HedgeBudgetMin
		// must too, or the per-backend p95 estimate (sub-millisecond over
		// loopback, clamped UP to the 1ms default min) replaces the
		// configured budget after the first read and one slow scheduling
		// hiccup fires a hedge.
		HedgeBudget:    5 * time.Second,
		HedgeBudgetMin: 5 * time.Second,
		HedgeBudgetMax: 5 * time.Second,
	}, primary, a, b)
	for i := 0; i < 20; i++ {
		if status, body, _ := get(t, ts.URL+api.PathQuery+"?class=c&query=q"); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
	}
	if c := p.Counters(); c.HedgesIssued != 0 {
		t.Fatalf("hedges fired under budget: %+v", c)
	}
}

// TestHedgeCapEnforced: with every backend slow and a tiny budget, every
// read WANTS a hedge — the cap must keep issued hedges at or under
// HedgeCapPct% of forwarded reads.
func TestHedgeCapEnforced(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 20*time.Millisecond)
	a := newFake(t, api.RoleFollower, 20*time.Millisecond)
	b := newFake(t, api.RoleFollower, 20*time.Millisecond)
	p, ts := fakeStack(t, Options{
		Hedge:          true,
		HedgeCapPct:    10,
		HedgeBudget:    time.Millisecond,
		HedgeBudgetMax: 2 * time.Millisecond, // keep the estimator from raising the budget past the delay
	}, primary, a, b)
	const reads = 40
	for i := 0; i < reads; i++ {
		if status, body, _ := get(t, ts.URL+api.PathQuery+"?class=c&query=q"); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
	}
	c := p.Counters()
	if c.Reads != reads {
		t.Fatalf("reads = %d, want %d", c.Reads, reads)
	}
	if c.HedgesIssued == 0 {
		t.Fatal("cap test needs hedges to actually fire")
	}
	if c.HedgesIssued*100 > uint64(10)*c.Reads {
		t.Fatalf("hedge rate over the 10%% cap: %+v", c)
	}
}

// TestWritesNeverHedged: an update through the proxy reaches exactly the
// primary exactly once, however slow it is and however aggressive the
// hedge settings are.
func TestWritesNeverHedged(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	a := newFake(t, api.RoleFollower, 0)
	b := newFake(t, api.RoleFollower, 0)
	p, ts := fakeStack(t, Options{
		Hedge:       true,
		HedgeCapPct: 100,
		HedgeBudget: time.Millisecond,
	}, primary, a, b)
	resp, err := http.Post(ts.URL+api.PathUpdate, "application/json",
		strings.NewReader(`{"nodes":[{"type":"user","name":"n"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	if got := primary.updates.Load(); got != 1 {
		t.Fatalf("primary saw %d updates, want 1", got)
	}
	if a.updates.Load() != 0 || b.updates.Load() != 0 {
		t.Fatal("an update reached a follower")
	}
	if c := p.Counters(); c.HedgesIssued != 0 {
		t.Fatalf("an update was hedged: %+v", c)
	}
	// The update's response epoch advanced the cache tracker.
	if c := p.Counters(); c.Epoch != 2 {
		t.Fatalf("update epoch not tracked: %+v", c)
	}
}

// TestStatsCarriesProxyExtension: the forwarded stats gain the proxy's
// counters, and the primary's epoch piggybacks into the tracker.
func TestStatsCarriesProxyExtension(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	p, ts := fakeStack(t, Options{CacheEntries: 16}, primary)
	status, body, _ := get(t, ts.URL+api.PathStats)
	if status != http.StatusOK {
		t.Fatalf("stats status %d: %s", status, body)
	}
	var st api.StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Proxy == nil {
		t.Fatal("stats response lacks the proxy extension")
	}
	if st.Proxy.Epoch != 7 {
		t.Fatalf("stats epoch did not piggyback into the tracker: %+v", st.Proxy)
	}
	if got := p.Counters().Epoch; got != 7 {
		t.Fatalf("tracker epoch = %d, want 7", got)
	}
}

// TestReadyz: ready with a live backend, no_backends with none.
func TestReadyz(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	_, ts := fakeStack(t, Options{}, primary)
	status, body, _ := get(t, ts.URL+api.PathReadyz)
	if status != http.StatusOK {
		t.Fatalf("readyz = %d: %s", status, body)
	}
	var rr api.ReadyResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Role != api.RoleProxy || rr.Status != api.StatusReady {
		t.Fatalf("readyz body = %+v", rr)
	}

	dead := newFake(t, api.RolePrimary, 0)
	deadURL := dead.ts.URL
	dead.ts.Close()
	router := client.NewRouter(deadURL, nil, nil)
	p2 := httptest.NewServer(New(router, Options{}))
	defer p2.Close()
	status, body, _ = get(t, p2.URL+api.PathReadyz)
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), api.StatusNoBackends) {
		t.Fatalf("dead-backend readyz = %d: %s", status, body)
	}
}

// --- the cache-correctness property test against a REAL engine ---

// liveStack is a trained engine server behind a caching proxy.
type liveStack struct {
	eng     *semprox.Engine
	g       *semprox.Graph
	backend *httptest.Server
	proxy   *Proxy
	edge    *httptest.Server
}

func newLiveStack(t *testing.T, cacheEntries int) *liveStack {
	t.Helper()
	g := fixtures.Toy()
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
	opts.Train.Restarts = 2
	opts.Train.MaxIters = 200
	eng, err := semprox.NewEngine(g, "user", opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Train("classmate", []semprox.Example{
		{Q: g.NodeByName("Kate"), X: g.NodeByName("Jay"), Y: g.NodeByName("Alice")},
		{Q: g.NodeByName("Bob"), X: g.NodeByName("Tom"), Y: g.NodeByName("Alice")},
	})
	backend := httptest.NewServer(server.New(eng))
	t.Cleanup(backend.Close)
	router := client.NewRouter(backend.URL, nil, backend.Client())
	p := New(router, Options{CacheEntries: cacheEntries})
	edge := httptest.NewServer(p)
	t.Cleanup(edge.Close)
	return &liveStack{eng: eng, g: g, backend: backend, proxy: p, edge: edge}
}

// TestCacheMatchesFreshUnderUpdates is the cache-correctness property
// test: while updates hammer the graph through the proxy, every read
// response — cached through the proxy or fresh from the backend — that
// claims a given (request, epoch) pair must be byte-identical to every
// other response claiming the same pair. Epochs are immutable
// generations and the engine's scan is deterministic per epoch, so any
// divergence means the cache served stale bytes under a fresh epoch (or
// admitted a stale fill). Run under -race this also hammers the
// tracker/LRU locking.
func TestCacheMatchesFreshUnderUpdates(t *testing.T) {
	st := newLiveStack(t, 256)

	var mu sync.Mutex
	canonical := make(map[string][]byte) // (request key | epoch) -> bytes
	check := func(t *testing.T, key string, epoch string, body []byte) {
		mu.Lock()
		defer mu.Unlock()
		ck := key + "|" + epoch
		if prev, ok := canonical[ck]; ok {
			if string(prev) != string(body) {
				t.Errorf("two responses for %s diverge:\n%s\n--- vs ---\n%s", ck, prev, body)
			}
			return
		}
		canonical[ck] = body
	}

	fetch := func(t *testing.T, base, path string) (string, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return "", nil
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d err %v: %s", path, resp.StatusCode, err, body)
			return "", nil
		}
		return resp.Header.Get(api.HeaderEpoch), body
	}

	const updates = 25
	done := make(chan struct{})
	go func() { // writer: grow the graph through the proxy
		defer close(done)
		c := client.New(st.edge.URL, nil)
		for i := 0; i < updates; i++ {
			_, err := c.Update(context.Background(), api.UpdateRequest{
				Nodes: []api.UpdateNode{{Type: "user", Name: fmt.Sprintf("prop-%d", i)}},
				Edges: []api.UpdateEdge{{U: fmt.Sprintf("prop-%d", i), V: "Kate"}},
			})
			if err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
		}
	}()

	anchors := []string{"Kate", "Bob", "Alice", "Jay", "Tom"}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				a := anchors[rng.Intn(len(anchors))]
				var path string
				if rng.Intn(4) == 0 {
					b := anchors[rng.Intn(len(anchors))]
					path = api.PathProximity + "?class=classmate&x=" + a + "&y=" + b
				} else {
					path = api.PathQuery + "?class=classmate&query=" + a + "&k=3"
				}
				// The proxy (cached or not) and the backend (always fresh)
				// must agree whenever they claim the same epoch.
				if epoch, body := fetch(t, st.edge.URL, path); body != nil {
					check(t, path, epoch, body)
				}
				if epoch, body := fetch(t, st.backend.URL, path); body != nil {
					check(t, path, epoch, body)
				}
			}
		}(int64(r + 1))
	}
	<-done
	wg.Wait()
	if t.Failed() {
		return
	}

	c := st.proxy.Counters()
	if c.CacheHits == 0 {
		t.Fatalf("property test never exercised a cache hit: %+v", c)
	}
	if c.EpochFlushes < updates {
		t.Fatalf("expected at least %d epoch flushes, got %+v", updates, c)
	}
	// And after the dust settles: a cached read equals a fresh one.
	path := api.PathQuery + "?class=classmate&query=Kate&k=3"
	_, first := fetch(t, st.edge.URL, path)
	_, second := fetch(t, st.edge.URL, path)
	_, direct := fetch(t, st.backend.URL, path)
	if string(first) != string(second) || string(first) != string(direct) {
		t.Fatal("post-run cached/fresh responses diverge")
	}
}

// TestPlainReadAndReplicatePassthrough: healthz is a hedged forward with
// no cache, and the replication endpoints stream through to the resolved
// primary untouched — a follower must never answer them.
func TestPlainReadAndReplicatePassthrough(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	follower := newFake(t, api.RoleFollower, 0)
	_, ts := fakeStack(t, Options{}, primary, follower)

	status, body, _ := get(t, ts.URL+api.PathHealthz)
	if status != http.StatusOK {
		t.Fatalf("healthz through proxy: status %d: %s", status, body)
	}
	if !strings.Contains(string(body), `"healthz_from"`) {
		t.Fatalf("healthz body not forwarded from a backend: %s", body)
	}

	status, body, _ = get(t, ts.URL+api.PathReplicateSince+"?from=42")
	if status != http.StatusOK {
		t.Fatalf("replicate/since through proxy: status %d: %s", status, body)
	}
	want := fmt.Sprintf(`{"since":"42","from":%q}`, primary.ts.URL)
	if string(body) != want {
		t.Fatalf("replicate/since must pass through to the primary:\n got %s\nwant %s", body, want)
	}
}

// TestMethodAndBodyRejections: the proxy's own envelope rendering must
// mirror the backend's — 405 with an Allow header for a bad method, 400
// for malformed or trailing JSON on update, all without touching a
// backend.
func TestMethodAndBodyRejections(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	_, ts := fakeStack(t, Options{}, primary)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+api.PathQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE query: status %d, want 405: %s", resp.StatusCode, body)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, http.MethodGet) {
		t.Fatalf("405 Allow header %q must list GET", allow)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != api.CodeMethodNotAllowed {
		t.Fatalf("405 envelope mismatch (%v): %s", err, body)
	}

	for name, payload := range map[string]string{
		"malformed": `{"nodes":`,
		"trailing":  `{}{"extra":1}`,
		"unknown":   `{"bogus_field":1}`,
	} {
		resp, err := http.Post(ts.URL+api.PathUpdate, "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s update body: status %d, want 400: %s", name, resp.StatusCode, body)
		}
		var env api.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != api.CodeBadRequest {
			t.Fatalf("%s update 400 envelope mismatch (%v): %s", name, err, body)
		}
	}
	if n := primary.updates.Load(); n != 0 {
		t.Fatalf("rejected updates still reached the primary %d times", n)
	}
}

// TestUpdateUpstreamFailureIs502: a transport-dead primary must surface
// as a structured 502, not a hung or empty response.
func TestUpdateUpstreamFailureIs502(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	follower := newFake(t, api.RoleFollower, 0)
	_, ts := fakeStack(t, Options{}, primary, follower)
	primary.ts.Close()

	resp, err := http.Post(ts.URL+api.PathUpdate, "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("update with dead primary: status %d, want 502: %s", resp.StatusCode, body)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != api.CodeInternal {
		t.Fatalf("502 envelope mismatch (%v): %s", err, body)
	}
}

// TestAdvanceEpochFlushes: the externally fed epoch (cmd/semproxy's
// stats poll) must flush the cache exactly like an update through the
// proxy would.
func TestAdvanceEpochFlushes(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	p, ts := fakeStack(t, Options{CacheEntries: 16}, primary)

	url := ts.URL + api.PathQuery + "?class=c&query=q"
	get(t, url)
	_, _, h := get(t, url)
	if got := h.Get(HeaderCache); got != "hit" {
		t.Fatalf("repeat read: %s = %q, want hit", HeaderCache, got)
	}
	p.AdvanceEpoch(99)
	_, _, h = get(t, url)
	if got := h.Get(HeaderCache); got != "miss" {
		t.Fatalf("read after AdvanceEpoch: %s = %q, want miss", HeaderCache, got)
	}
	c := p.Counters()
	if c.Epoch != 99 || c.EpochFlushes == 0 {
		t.Fatalf("counters after AdvanceEpoch(99): epoch %d flushes %d", c.Epoch, c.EpochFlushes)
	}
}
