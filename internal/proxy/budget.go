package proxy

import (
	"sync"
	"time"

	"repro/internal/loadstats"
)

const (
	// budgetWindow is how many samples one histogram holds before the
	// rotating pair swaps; the estimate always covers the last one-to-two
	// windows, so a backend that was slow an hour ago doesn't keep paying
	// a tight budget forever.
	budgetWindow = 1024
	// budgetRefresh is how often (in samples) the cached p95 is
	// recomputed; quantile reads walk every bucket, so computing per
	// sample would put a scan on the hot path for no accuracy gain.
	budgetRefresh = 64
)

// estimator tracks one backend's trailing read-latency p95 — the hedge
// budget: a request still unanswered past the backend's own p95 is, by
// definition, in that backend's slowest 5%, which is exactly the
// straggler population hedging exists to cut. A rotating pair of
// streaming histograms (internal/loadstats, ≤1/64 relative error) keeps
// the estimate trailing: samples land in cur, the quantile reads
// prev+cur merged, and when cur fills a window it becomes prev — so the
// estimate spans the last 1–2 windows and old behaviour ages out.
// Only successful, non-cancelled attempts are recorded: errors return
// fast and cancelled hedge losers stop early; either would drag the p95
// down and make the proxy hedge everything.
type estimator struct {
	mu     sync.Mutex
	cur    *loadstats.Hist
	prev   *loadstats.Hist
	cached time.Duration // last computed p95; 0 until first refresh
}

func newEstimator() *estimator {
	return &estimator{cur: loadstats.New(), prev: loadstats.New()}
}

// observe records one successful read's latency and refreshes the cached
// p95 every budgetRefresh samples.
func (e *estimator) observe(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cur.RecordDuration(d)
	if e.cached == 0 || e.cur.Count()%budgetRefresh == 0 {
		m := loadstats.New()
		m.Merge(e.prev)
		m.Merge(e.cur)
		e.cached = time.Duration(m.Quantile(0.95))
	}
	if e.cur.Count() >= budgetWindow {
		e.prev, e.cur = e.cur, loadstats.New()
	}
}

// value returns the current p95 estimate, or 0 when no sample has been
// recorded yet (the caller falls back to the configured default).
func (e *estimator) value() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cached
}
