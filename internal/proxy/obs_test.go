package proxy

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/api"
)

// expoValue finds one exact series ("name" or `name{label="v"}`) in a
// Prometheus text exposition.
func expoValue(t *testing.T, expo, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok && name == series {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q: %v", series, val, err)
			}
			return f
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, expo)
	return 0
}

// TestStatsMetricsConsistent: api.ProxyStats on /v1/stats is DERIVED
// from the proxy's metric registry, so after traffic (driven
// concurrently — run under -race) every stats field must agree exactly
// with its /metrics series.
func TestStatsMetricsConsistent(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	follower := newFake(t, api.RoleFollower, 0)
	_, ts := fakeStack(t, Options{CacheEntries: 16}, primary, follower)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				// Repeated keys give cache hits, distinct ones misses.
				status, _, _ := get(t, ts.URL+api.PathQuery+"?q="+strconv.Itoa(j%3))
				if status != http.StatusOK {
					t.Errorf("query status = %d", status)
				}
			}
		}(i)
	}
	wg.Wait()
	resp, err := http.Post(ts.URL+api.PathUpdate, "application/json",
		bytes.NewReader([]byte(`{"class":"c","adds":[{"text":"x"}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// /v1/stats snapshots the counters (after its own epoch advance), and
	// nothing else runs before /metrics — the two renderings must agree on
	// every field.
	status, body, _ := get(t, ts.URL+api.PathStats)
	if status != http.StatusOK {
		t.Fatalf("stats status = %d: %s", status, body)
	}
	var st api.StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Proxy == nil {
		t.Fatal("stats response carries no proxy block")
	}
	status, expoB, _ := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	expo := string(expoB)

	for series, want := range map[string]uint64{
		"semprox_proxy_reads_total":                        st.Proxy.Reads,
		`semprox_proxy_hedges_total{outcome="issued"}`:     st.Proxy.HedgesIssued,
		`semprox_proxy_hedges_total{outcome="won"}`:        st.Proxy.HedgesWon,
		`semprox_proxy_hedges_total{outcome="cancelled"}`:  st.Proxy.HedgesCancelled,
		`semprox_proxy_cache_lookups_total{result="hit"}`:  st.Proxy.CacheHits,
		`semprox_proxy_cache_lookups_total{result="miss"}`: st.Proxy.CacheMisses,
		"semprox_proxy_cache_evictions_total":              st.Proxy.CacheEvictions,
		"semprox_proxy_cache_epoch_flushes_total":          st.Proxy.EpochFlushes,
		"semprox_proxy_cache_entries":                      uint64(st.Proxy.CacheEntries),
		"semprox_proxy_cache_bytes":                        uint64(st.Proxy.CacheBytes),
		"semprox_proxy_cache_epoch":                        st.Proxy.Epoch,
	} {
		if got := expoValue(t, expo, series); got != float64(want) {
			t.Errorf("%s = %v on /metrics, %d on /v1/stats", series, got, want)
		}
	}
	if st.Proxy.CacheHits == 0 || st.Proxy.CacheMisses == 0 {
		t.Errorf("traffic drove no cache activity: %+v", st.Proxy)
	}
	// The middleware's own families cover the proxy surface too.
	if expoValue(t, expo, `semprox_http_requests_total{code="2xx",path="/v1/query"}`) == 0 {
		t.Error("no 2xx query requests recorded")
	}
	if expoValue(t, expo, "semprox_router_live_followers") != 1 {
		t.Error("live follower gauge should read 1")
	}
}

// TestProxyTracePropagation: a caller-supplied trace ID is echoed on the
// proxy response AND forwarded to the backend; a missing one is minted;
// error envelopes carry the header too.
func TestProxyTracePropagation(t *testing.T) {
	primary := newFake(t, api.RolePrimary, 0)
	follower := newFake(t, api.RoleFollower, 0)
	_, ts := fakeStack(t, Options{}, primary, follower)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+api.PathQuery+"?q=x", nil)
	req.Header.Set(api.HeaderTrace, "trace-prox-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.HeaderTrace); got != "trace-prox-1" {
		t.Fatalf("response trace = %q, want the caller's", got)
	}
	if got, _ := follower.lastTrace.Load().(string); got != "trace-prox-1" {
		t.Fatalf("backend saw trace %q, want the caller's", got)
	}

	resp, err = http.Get(ts.URL + api.PathQuery + "?q=y")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(api.HeaderTrace) == "" {
		t.Fatal("proxy minted no trace for a bare request")
	}

	// DELETE on /v1/update: a proxy-generated error envelope. The trace
	// header must be present even though no backend was involved.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+api.PathUpdate, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get(api.HeaderTrace) == "" {
		t.Fatal("error envelope carries no trace header")
	}
}
