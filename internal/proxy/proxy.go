// Package proxy is the semproxy edge tier: the full /v1 surface of an
// engine server, served by forwarding to a primary + followers through
// the replica-aware client.Router — so ANY http caller (not just Go
// programs embedding the client) gets failover, read spreading, and two
// perf layers the backends alone can't provide:
//
//   - Hedged reads. A read still unanswered after a latency budget — the
//     serving backend's own trailing p95, estimated per backend from a
//     streaming histogram (internal/loadstats) — is duplicated to the
//     next live replica and the first non-error answer wins; the loser
//     is cancelled through its request context. Writes are never hedged
//     (duplicating a non-idempotent update could double-apply), and
//     hedges are capped to a fraction of forwarded reads so a uniformly
//     slow fleet cannot double its own load. This is the tail-at-scale
//     cut: it pays one duplicate request in the slowest ~5% of reads to
//     move p99 toward p50.
//
//   - An epoch-keyed response cache. Query, batch-query and proximity
//     responses are cached in a bounded LRU keyed by the exact request
//     (method, canonical path, query string, body) under the engine
//     epoch that computed them — which every backend stamps on read
//     responses (api.HeaderEpoch) from the same pinned engine view that
//     produced the body. An epoch bump (observed from update responses
//     through the proxy, the stats poll, or any read response) flushes
//     the cache, so stale entries are unreachable by construction: no
//     TTLs, no invalidation races, and cached bytes are provably
//     identical to fresh ones (see TestCacheMatchesFreshUnderUpdates).
//
// The proxy holds no data: /v1/stats and /v1/update forward (typed) to
// the resolved primary — stats gaining the proxy's own counters as the
// api.ProxyStats extension — the replication endpoints stream through
// untouched, and /v1/readyz answers for the proxy itself (role "proxy").
package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/obs"
)

// HeaderCache marks proxy read responses as served from the cache
// ("hit") or forwarded to a backend ("miss") — transport metadata for
// smokes and debugging; bodies are identical either way.
const HeaderCache = "X-Semprox-Cache"

// maxReadTargets bounds the candidate backends one read will consider
// (first attempt + failovers + at most one hedge).
const maxReadTargets = 8

// Option defaults, applied by New when the corresponding field is zero.
const (
	DefaultHedgeCapPct    = 10
	DefaultHedgeBudget    = 10 * time.Millisecond
	DefaultHedgeBudgetMin = time.Millisecond
	DefaultHedgeBudgetMax = 100 * time.Millisecond
)

// Options configures a Proxy.
type Options struct {
	// CacheEntries bounds the response cache (entries); <= 0 disables
	// caching entirely.
	CacheEntries int
	// Hedge enables hedged reads.
	Hedge bool
	// HedgeCapPct caps hedges at this percentage of forwarded reads
	// (default 10): the hedger may only ever have issued fewer duplicate
	// requests than cap% of the reads it forwarded, so hedging bounds its
	// own added load even when every backend is slow.
	HedgeCapPct int
	// HedgeBudget is the latency budget before a backend's own p95
	// estimate exists (default 10ms).
	HedgeBudget time.Duration
	// HedgeBudgetMin/Max clamp the per-backend p95 estimate: Min keeps a
	// fast backend from hedging micro-jitter (default 1ms), Max bounds
	// the wait before a hedge fires however slow the estimate got
	// (default 100ms).
	HedgeBudgetMin time.Duration
	HedgeBudgetMax time.Duration
	// HTTPClient is the per-attempt client for forwarded reads (nil: one
	// with client.DefaultTimeout).
	HTTPClient *http.Client
}

// Proxy is the edge-tier handler. Create with New; safe for concurrent
// use.
type Proxy struct {
	router *client.Router
	opts   Options
	hc     *http.Client // forwarded reads (bounded timeout)
	raw    *http.Client // replication passthrough (long-poll + snapshot streams)
	mux    *http.ServeMux
	cache  *cache

	// reg is this proxy's own metric registry — the single source of
	// truth for the edge counters: api.ProxyStats (the /v1/stats
	// extension) is DERIVED from these handles, and /metrics renders the
	// union of this registry and the process default, so both views can
	// never drift. Per-instance (not Default) because the hedge cap math
	// is per-proxy and test stacks run several proxies in one process.
	reg *obs.Registry
	// wrap is mux behind the obs middleware (tracing, metrics, request
	// log). Rebuilt by SetRequestLog — call that before serving.
	wrap http.Handler

	emu  sync.Mutex
	ests map[string]*estimator // per-backend latency, keyed by base URL

	reads           *obs.Counter // reads forwarded to backends (cache hits excluded)
	hedgesIssued    *obs.Counter
	hedgesWon       *obs.Counter
	hedgesCancelled *obs.Counter
}

// New builds the proxy over a router. The router's probe loop (Run) is
// the caller's to start — the proxy only consumes its live set.
func New(r *client.Router, opts Options) *Proxy {
	if opts.HedgeCapPct <= 0 {
		opts.HedgeCapPct = DefaultHedgeCapPct
	}
	if opts.HedgeBudget <= 0 {
		opts.HedgeBudget = DefaultHedgeBudget
	}
	if opts.HedgeBudgetMin <= 0 {
		opts.HedgeBudgetMin = DefaultHedgeBudgetMin
	}
	if opts.HedgeBudgetMax <= 0 {
		opts.HedgeBudgetMax = DefaultHedgeBudgetMax
	}
	hc := opts.HTTPClient
	if hc == nil {
		// Not http.DefaultTransport: its 2 idle conns per host would make
		// an edge tier under load re-handshake almost every forwarded read.
		hc = &http.Client{
			Timeout: client.DefaultTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 512,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	reg := obs.NewRegistry()
	p := &Proxy{
		router: r,
		opts:   opts,
		hc:     hc,
		raw:    &http.Client{Transport: hc.Transport},
		mux:    http.NewServeMux(),
		cache:  newCache(opts.CacheEntries, reg),
		reg:    reg,
		ests:   make(map[string]*estimator),

		reads: reg.Counter("semprox_proxy_reads_total",
			"Reads forwarded to backends (cache hits excluded)."),
		hedgesIssued:    reg.Counter(metricHedges, helpHedges, obs.L("outcome", "issued")),
		hedgesWon:       reg.Counter(metricHedges, helpHedges, obs.L("outcome", "won")),
		hedgesCancelled: reg.Counter(metricHedges, helpHedges, obs.L("outcome", "cancelled")),
	}
	for path, h := range map[string]http.HandlerFunc{
		api.PathHealthz:           p.handlePlainRead,
		api.PathClasses:           p.handlePlainRead,
		api.PathQuery:             p.handleCachedRead,
		api.PathProximity:         p.handleCachedRead,
		api.PathUpdate:            p.handleUpdate,
		api.PathStats:             p.handleStats,
		api.PathReadyz:            p.handleReadyz,
		api.PathReplicateSince:    p.handleReplicate,
		api.PathReplicateSnapshot: p.handleReplicate,
	} {
		p.mux.HandleFunc(path, h)
		p.mux.HandleFunc(api.LegacyPath(path), h)
	}
	p.mux.Handle(metricsPath, obs.Handler(p.reg, obs.Default()))
	// Routing transitions count on the proxy registry; an OnEvent the
	// caller already installed keeps firing after ours.
	prev := r.OnEvent
	r.OnEvent = func(ev client.Event) {
		reg.Counter("semprox_router_events_total",
			"Routing transitions observed (admit, eject, primary_change).",
			obs.L("type", ev.Type)).Inc()
		if prev != nil {
			prev(ev)
		}
	}
	reg.RegisterGaugeFunc("semprox_router_live_followers",
		"Followers currently in the read rotation.",
		func() float64 { return float64(len(r.Live())) })
	p.buildWrap(nil, 0)
	return p
}

// Hedge and cache family names, shared between New and the cache.
const (
	metricHedges = "semprox_proxy_hedges_total"
	helpHedges   = "Hedged read outcomes: issued (duplicate launched), won (hedge answered first), cancelled (original answered first)."

	metricCacheLookups = "semprox_proxy_cache_lookups_total"
	helpCacheLookups   = "Response cache lookups at the current epoch, by result."
)

// metricsPath serves the Prometheus exposition. Unversioned on purpose:
// it is operational surface, not part of the /v1 wire contract.
const metricsPath = "/metrics"

// buildWrap (re)wraps the mux with the obs middleware.
func (p *Proxy) buildWrap(logger *slog.Logger, slow time.Duration) {
	p.wrap = obs.WrapHTTP(p.mux, obs.HTTPOptions{
		Registry:      p.reg,
		TraceHeader:   api.HeaderTrace,
		Component:     "proxy",
		Logger:        logger,
		SlowThreshold: slow,
		PathLabel:     pathLabel,
		EpochHeader:   api.HeaderEpoch,
		CacheHeader:   HeaderCache,
	})
}

// SetRequestLog enables one structured log line per request on logger —
// endpoint, status, latency, trace ID, epoch, cache disposition, backend
// and hedge outcome — escalated to Warn when a request takes at least
// slow (0 never escalates). Call before serving.
func (p *Proxy) SetRequestLog(logger *slog.Logger, slow time.Duration) {
	p.buildWrap(logger, slow)
}

// knownPaths bounds metric label cardinality: canonical /v1 paths and
// /metrics keep their names, everything else (typos, scans) collapses.
var knownPaths = func() map[string]bool {
	m := map[string]bool{metricsPath: true}
	for _, p := range api.Paths() {
		m[p] = true
	}
	return m
}()

func pathLabel(p string) string {
	if c := api.CanonicalPath(p); knownPaths[c] {
		return c
	}
	return "other"
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.wrap.ServeHTTP(w, r) }

// AdvanceEpoch feeds the cache an externally observed serving epoch
// (cmd/semproxy's stats poll); newer epochs flush the cache.
func (p *Proxy) AdvanceEpoch(epoch uint64) { p.cache.advance(epoch) }

// Counters snapshots the proxy's observability block — read straight off
// the metric registry, so the ProxyStats extension on /v1/stats and the
// /metrics exposition are two renderings of the same handles.
func (p *Proxy) Counters() api.ProxyStats {
	cc := p.cache.counters()
	return api.ProxyStats{
		Reads:           p.reads.Value(),
		HedgesIssued:    p.hedgesIssued.Value(),
		HedgesWon:       p.hedgesWon.Value(),
		HedgesCancelled: p.hedgesCancelled.Value(),
		CacheHits:       cc.hits,
		CacheMisses:     cc.misses,
		CacheEvictions:  cc.evicts,
		CacheEntries:    cc.entries,
		CacheBytes:      cc.bytes,
		EpochFlushes:    cc.flushes,
		Epoch:           cc.epoch,
	}
}

// estimatorFor returns the latency estimator of one backend.
func (p *Proxy) estimatorFor(c *client.Client) *estimator {
	p.emu.Lock()
	defer p.emu.Unlock()
	e := p.ests[c.BaseURL()]
	if e == nil {
		e = newEstimator()
		p.ests[c.BaseURL()] = e
	}
	return e
}

// budgetFor returns the hedge budget against one backend: its trailing
// p95 clamped to [HedgeBudgetMin, HedgeBudgetMax], or HedgeBudget before
// any sample exists.
func (p *Proxy) budgetFor(c *client.Client) time.Duration {
	b := p.estimatorFor(c).value()
	if b == 0 {
		b = p.opts.HedgeBudget
	}
	if b < p.opts.HedgeBudgetMin {
		b = p.opts.HedgeBudgetMin
	}
	if b > p.opts.HedgeBudgetMax {
		b = p.opts.HedgeBudgetMax
	}
	return b
}

// hedgeAllowed enforces the cap: a hedge may launch only while the
// issued count stays under HedgeCapPct% of forwarded reads.
func (p *Proxy) hedgeAllowed() bool {
	return (p.hedgesIssued.Value()+1)*100 <= uint64(p.opts.HedgeCapPct)*p.reads.Value()
}

// result is one backend attempt's outcome.
type result struct {
	c       *client.Client
	status  int
	header  http.Header
	body    []byte
	err     error
	latency time.Duration
	hedged  bool
}

// attempt performs one raw forwarded read against one backend, buffering
// the response body so the winner can be replayed to the caller (and
// cached) byte-for-byte.
func (p *Proxy) attempt(ctx context.Context, c *client.Client, method, path, rawQuery string, body []byte) result {
	u := c.BaseURL() + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(body))
	if err != nil {
		return result{c: c, err: err}
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	if trace := obs.TraceID(ctx); trace != "" {
		req.Header.Set(api.HeaderTrace, trace)
	}
	start := time.Now()
	resp, err := p.hc.Do(req)
	if err != nil {
		return result{c: c, err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return result{c: c, err: fmt.Errorf("reading %s response: %w", u, err)}
	}
	return result{c: c, status: resp.StatusCode, header: resp.Header, body: b, latency: time.Since(start)}
}

// forwardRead runs one read against the rotation with failover and (when
// enabled, under the cap) one hedge: the first attempt goes to the
// rotation's next backend, a hedge fires to the following one if the
// attempt outlives the backend's latency budget, and the first answer
// below 500 wins — the loser's context is cancelled on return. A
// failover-grade outcome (transport error or 5xx) ejects the backend
// from rotation (cancelled losers are never reported: their context
// error says nothing about the backend) and moves on to the next
// candidate when no other attempt is still in flight.
func (p *Proxy) forwardRead(ctx context.Context, method, path, rawQuery string, body []byte) (result, *api.Error) {
	p.reads.Inc()
	targets := p.router.ReadTargets(maxReadTargets)
	if len(targets) == 0 {
		return result{}, api.Errorf(http.StatusBadGateway, api.CodeInternal, "proxy: no backend available")
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // kills the losing attempt the moment a winner returns
	results := make(chan result, len(targets))
	next := 0
	launch := func(hedged bool) {
		c := targets[next]
		next++
		go func() {
			res := p.attempt(actx, c, method, path, rawQuery, body)
			res.hedged = hedged
			results <- res
		}()
	}
	launch(false)
	inflight := 1
	hedgeLaunched := false
	var timerC <-chan time.Time
	if p.opts.Hedge && next < len(targets) && p.hedgeAllowed() {
		t := time.NewTimer(p.budgetFor(targets[0]))
		defer t.Stop()
		timerC = t.C
	}
	var lastErr error
	for {
		select {
		case res := <-results:
			inflight--
			if res.err == nil && res.status < http.StatusInternalServerError {
				p.estimatorFor(res.c).observe(res.latency)
				p.router.ReportRead(res.c, nil)
				if res.hedged {
					p.hedgesWon.Inc()
				} else if hedgeLaunched {
					p.hedgesCancelled.Inc()
				}
				obs.AddAttrs(ctx, slog.String("backend", res.c.BaseURL()),
					slog.Bool("hedged", res.hedged))
				return res, nil
			}
			if ctx.Err() != nil {
				// The CALLER is gone (or timed out); the backends are not at
				// fault, so no ejection.
				return result{}, api.Errorf(http.StatusBadGateway, api.CodeInternal,
					"proxy: read abandoned: %v", ctx.Err())
			}
			lastErr = res.err
			if lastErr == nil {
				lastErr = fmt.Errorf("backend %s answered %d", res.c.BaseURL(), res.status)
			}
			p.router.ReportRead(res.c, lastErr)
			if inflight > 0 {
				continue // the other attempt may still win
			}
			if next >= len(targets) {
				return result{}, api.Errorf(http.StatusBadGateway, api.CodeInternal,
					"proxy: every backend failed: %v", lastErr)
			}
			launch(false)
			inflight++
		case <-timerC:
			timerC = nil
			if next < len(targets) {
				hedgeLaunched = true
				p.hedgesIssued.Inc()
				launch(true)
				inflight++
			}
		}
	}
}

// readBody buffers a request body for replay across attempts. Bodies one
// byte over the wire limit are forwarded as-is: the backend rejects them
// with exactly the envelope a direct caller would get, so there is no
// need to duplicate its validation (or its message bytes) here.
func readBody(r *http.Request) ([]byte, *api.Error) {
	if r.Body == nil {
		return nil, nil
	}
	defer r.Body.Close()
	b, err := io.ReadAll(io.LimitReader(r.Body, api.MaxBodyBytes+1))
	if err != nil {
		return nil, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "reading request body: %v", err)
	}
	return b, nil
}

// cacheKey is the exact-request key: two requests share an entry only if
// a backend would answer them byte-identically at one epoch. Legacy
// aliases share entries with their /v1 twins (responses are
// byte-identical by the api package's aliasing contract).
func cacheKey(method, path, rawQuery string, body []byte) string {
	return method + "\x00" + path + "\x00" + rawQuery + "\x00" + string(body)
}

// copyRespHeaders forwards the response headers that carry meaning
// across the hop.
func copyRespHeaders(w http.ResponseWriter, h http.Header) {
	for _, k := range []string{"Content-Type", "Allow", api.HeaderEpoch} {
		if v := h.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
}

// handleCachedRead serves query and proximity: cache lookup at the
// current epoch first, then a hedged forward whose 200 responses fill
// the cache under the epoch the backend stamped them with.
func (p *Proxy) handleCachedRead(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	body, herr := readBody(r)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	path := api.CanonicalPath(r.URL.Path)
	key := cacheKey(r.Method, path, r.URL.RawQuery, body)
	if cached, epoch, ok := p.cache.get(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(api.HeaderEpoch, strconv.FormatUint(epoch, 10))
		w.Header().Set(HeaderCache, "hit")
		w.WriteHeader(http.StatusOK)
		w.Write(cached) //nolint:errcheck // the client is gone if this fails
		return
	}
	res, herr := p.forwardRead(r.Context(), r.Method, path, r.URL.RawQuery, body)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	if res.status == http.StatusOK {
		if epoch, err := strconv.ParseUint(res.header.Get(api.HeaderEpoch), 10, 64); err == nil {
			p.cache.put(key, epoch, res.body)
		}
	}
	copyRespHeaders(w, res.header)
	w.Header().Set(HeaderCache, "miss")
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // the client is gone if this fails
}

// handlePlainRead serves healthz and classes: hedged forward, no cache
// (they're cheap and not epoch-stamped).
func (p *Proxy) handlePlainRead(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	res, herr := p.forwardRead(r.Context(), r.Method, api.CanonicalPath(r.URL.Path), r.URL.RawQuery, nil)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	copyRespHeaders(w, res.header)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // the client is gone if this fails
}

// handleUpdate forwards writes typed through Router.Update — never
// hedged (an update is not idempotent), pinned to the resolved primary
// with the router's retry-on-promotion semantics — and uses the
// response's epoch as an immediate cache flush: a write through the
// proxy invalidates synchronously, before its ack reaches the caller.
func (p *Proxy) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodPost) {
		return
	}
	var req api.UpdateRequest
	if herr := decodeStrict(w, r, &req); herr != nil {
		writeErr(w, herr)
		return
	}
	resp, err := p.router.Update(r.Context(), req)
	if err != nil {
		writeUpstreamErr(w, err)
		return
	}
	p.cache.advance(resp.Epoch)
	writeJSON(w, http.StatusOK, resp)
}

// handleStats forwards the resolved primary's stats and appends the
// proxy's own counters as the ProxyStats extension. The primary's epoch
// doubles as a cache-flush signal (poll piggybacking: any caller asking
// for stats refreshes the proxy's epoch for free).
func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	st, err := p.router.Stats(r.Context())
	if err != nil {
		writeUpstreamErr(w, err)
		return
	}
	p.cache.advance(st.Epoch)
	counters := p.Counters()
	st.Proxy = &counters
	writeJSON(w, http.StatusOK, st)
}

// handleReadyz answers for the proxy itself: ready while at least one
// backend can serve reads (a live follower, or a reachable ready
// primary).
func (p *Proxy) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	ready := len(p.router.Live()) > 0
	if !ready {
		if resp, err := p.router.Primary().Ready(r.Context()); err == nil && resp.Ready() {
			ready = true
		}
	}
	out := api.ReadyResponse{Status: api.StatusReady, Role: api.RoleProxy}
	status := http.StatusOK
	if !ready {
		out.Status = api.StatusNoBackends
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}

// handleReplicate streams the replication endpoints through to the
// resolved primary untouched — long-polls and snapshot streams must not
// be buffered, hedged, or timed out by the proxy (the request context
// still applies).
func (p *Proxy) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	c := p.router.Primary()
	u := c.BaseURL() + api.CanonicalPath(r.URL.Path)
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
	if err != nil {
		writeErr(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal, "%v", err))
		return
	}
	resp, err := p.raw.Do(req)
	if err != nil {
		writeUpstreamErr(w, err)
		return
	}
	defer resp.Body.Close()
	copyRespHeaders(w, resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // the client is gone if this fails
}

// --- wire helpers, mirroring internal/server's envelope rendering ---

// writeJSON writes v with the given status in the server's format, so
// typed forwards stay byte-identical to direct backend responses.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

// writeErr writes err as the structured error envelope.
func writeErr(w http.ResponseWriter, err *api.Error) {
	writeJSON(w, err.Status, api.ErrorEnvelope{Error: *err})
}

// writeUpstreamErr renders a typed-forward failure: a structured backend
// error passes through under its own status and code; a transport
// failure becomes a 502.
func writeUpstreamErr(w http.ResponseWriter, err error) {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		writeErr(w, apiErr)
		return
	}
	writeErr(w, api.Errorf(http.StatusBadGateway, api.CodeInternal, "proxy: backend unreachable: %v", err))
}

// methodCheck mirrors internal/server's: 405 with the canonical path.
func methodCheck(w http.ResponseWriter, r *http.Request, allowed ...string) bool {
	for _, m := range allowed {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	writeErr(w, api.Errorf(http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
		"method %s not allowed on %s", r.Method, api.CanonicalPath(r.URL.Path)))
	return false
}

// decodeStrict mirrors internal/server's body decoding so proxy-side
// rejections carry the same envelope a backend would send.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) *api.Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, api.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return api.Errorf(http.StatusBadRequest, api.CodeBadRequest,
				"request body exceeds %d bytes", api.MaxBodyBytes)
		}
		return api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "malformed JSON: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "trailing data after JSON body")
	}
	return nil
}
