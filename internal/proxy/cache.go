package proxy

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// cache is the epoch-keyed bounded LRU over read responses. Conceptually
// every entry is keyed by (request key, epoch) — the ISSUE's
// (endpoint, anchor, class, k, epoch) — but since lookups only ever ask
// for the CURRENT epoch, the implementation keeps a single-epoch
// residency invariant instead of widening the map key: every resident
// entry's epoch equals the tracker's current epoch, and advancing the
// tracker flushes the whole map in one move. Stale entries are therefore
// unreachable by construction — there is no TTL, no per-entry validation,
// and no window where a lookup can return bytes from a previous
// generation once the bump is observed.
//
// Entries are filled from backend responses that carry their exact data
// epoch (api.HeaderEpoch, stamped from the same pinned engine View that
// computed the body). A fill whose epoch is OLDER than the tracker —
// a lagging follower answered after the proxy already saw a newer
// generation — is dropped, never cached: admitting it would resurrect
// stale bytes under a current-epoch lookup. A fill whose epoch is NEWER
// advances the tracker first (the response itself is the freshest epoch
// signal the proxy has) and lands in the fresh generation.
type cache struct {
	mu  sync.Mutex
	cap int // <= 0 disables storage; lookups miss, fills drop

	epoch uint64 // current tracker epoch; every resident entry matches it
	byKey map[string]*list.Element
	lru   *list.List // front = most recently used
	bytes int        // resident body bytes, for stats

	// Counters live on the proxy's metric registry; the cacheCounters
	// snapshot (and through it api.ProxyStats) reads the same handles
	// /metrics renders, so the two views cannot drift.
	hits    *obs.Counter
	misses  *obs.Counter
	evicts  *obs.Counter
	flushes *obs.Counter // epoch advances that flushed the map
}

// centry is one resident response body.
type centry struct {
	key   string
	epoch uint64
	body  []byte
}

func newCache(capEntries int, reg *obs.Registry) *cache {
	c := &cache{
		cap:   capEntries,
		byKey: make(map[string]*list.Element),
		lru:   list.New(),
		hits:  reg.Counter(metricCacheLookups, helpCacheLookups, obs.L("result", "hit")),
		misses: reg.Counter(metricCacheLookups, helpCacheLookups,
			obs.L("result", "miss")),
		evicts: reg.Counter("semprox_proxy_cache_evictions_total",
			"Entries evicted by the LRU capacity bound (epoch flushes excluded)."),
		flushes: reg.Counter("semprox_proxy_cache_epoch_flushes_total",
			"Epoch advances observed by the cache tracker (each flushes every resident entry)."),
	}
	reg.RegisterGaugeFunc("semprox_proxy_cache_entries",
		"Resident response cache entries.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.lru.Len()) })
	reg.RegisterGaugeFunc("semprox_proxy_cache_bytes",
		"Resident response cache body bytes.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.bytes) })
	reg.RegisterGaugeFunc("semprox_proxy_cache_epoch",
		"Current cache tracker epoch (resident entries all match it).",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.epoch) })
	return c
}

// get returns the cached body for key at the CURRENT epoch, plus the
// epoch it was computed under (for the response header).
func (c *cache) get(key string) (body []byte, epoch uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Inc()
		return nil, 0, false
	}
	c.hits.Inc()
	c.lru.MoveToFront(el)
	en := el.Value.(*centry)
	return en.body, en.epoch, true
}

// put offers a response body computed under the given epoch. Fills older
// than the tracker are dropped (stale), fills newer advance the tracker
// (flushing every older entry) and then land.
func (c *cache) put(key string, epoch uint64, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.epoch {
		c.advanceLocked(epoch)
	} else if epoch < c.epoch {
		return // a lagging replica's answer; current-epoch lookups must never see it
	}
	if c.cap <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		// A concurrent miss already filled it; same (key, epoch) means the
		// same bytes (that is the cached-equals-fresh invariant), so keep
		// the resident copy.
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&centry{key: key, epoch: epoch, body: body})
	c.bytes += len(body)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		en := back.Value.(*centry)
		c.lru.Remove(back)
		delete(c.byKey, en.key)
		c.bytes -= len(en.body)
		c.evicts.Inc()
	}
}

// advance moves the tracker to epoch if it is newer, flushing every
// resident entry (they all belong to an older generation). Signals come
// from update responses through the proxy, the stats poll, and read
// response headers (via put).
func (c *cache) advance(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.epoch {
		c.advanceLocked(epoch)
	}
}

func (c *cache) advanceLocked(epoch uint64) {
	c.epoch = epoch
	if c.lru.Len() > 0 {
		c.byKey = make(map[string]*list.Element)
		c.lru.Init()
		c.bytes = 0
	}
	c.flushes.Inc()
}

// cacheCounters is a point-in-time snapshot for the stats extension.
type cacheCounters struct {
	epoch   uint64
	entries int
	bytes   int
	hits    uint64
	misses  uint64
	evicts  uint64
	flushes uint64
}

func (c *cache) counters() cacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheCounters{
		epoch:   c.epoch,
		entries: c.lru.Len(),
		bytes:   c.bytes,
		hits:    c.hits.Value(),
		misses:  c.misses.Value(),
		evicts:  c.evicts.Value(),
		flushes: c.flushes.Value(),
	}
}
