package proxy

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCacheEpochFlush(t *testing.T) {
	c := newCache(16, obs.NewRegistry())
	c.put("k", 1, []byte("v1"))
	if body, epoch, ok := c.get("k"); !ok || string(body) != "v1" || epoch != 1 {
		t.Fatalf("get = %q, %d, %v", body, epoch, ok)
	}
	c.advance(2)
	if _, _, ok := c.get("k"); ok {
		t.Fatal("entry survived an epoch bump")
	}
	cc := c.counters()
	if cc.flushes != 2 { // put's 0→1 advance, then 1→2
		t.Fatalf("flushes = %d, want 2", cc.flushes)
	}
	if cc.epoch != 2 || cc.entries != 0 || cc.bytes != 0 {
		t.Fatalf("counters after flush = %+v", cc)
	}
}

func TestCacheStaleFillDropped(t *testing.T) {
	c := newCache(16, obs.NewRegistry())
	c.advance(5)
	// A lagging replica answers with epoch-3 bytes after the proxy already
	// saw epoch 5: caching it would serve stale data under current-epoch
	// lookups.
	c.put("k", 3, []byte("stale"))
	if _, _, ok := c.get("k"); ok {
		t.Fatal("stale fill was admitted")
	}
	// A FRESHER fill than the tracker advances it and lands.
	c.put("k", 6, []byte("fresh"))
	if body, epoch, ok := c.get("k"); !ok || string(body) != "fresh" || epoch != 6 {
		t.Fatalf("get = %q, %d, %v", body, epoch, ok)
	}
}

func TestCacheLRUBound(t *testing.T) {
	c := newCache(4, obs.NewRegistry())
	for i := 0; i < 6; i++ {
		c.put(fmt.Sprintf("k%d", i), 1, []byte{byte(i)})
	}
	cc := c.counters()
	if cc.entries != 4 || cc.evicts != 2 {
		t.Fatalf("entries = %d, evicts = %d, want 4 and 2", cc.entries, cc.evicts)
	}
	for i, wantHit := range []bool{false, false, true, true, true, true} {
		if _, _, ok := c.get(fmt.Sprintf("k%d", i)); ok != wantHit {
			t.Fatalf("k%d hit = %v, want %v (LRU should evict oldest first)", i, ok, wantHit)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(0, obs.NewRegistry())
	c.put("k", 1, []byte("v"))
	if _, _, ok := c.get("k"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if cc := c.counters(); cc.epoch != 1 {
		t.Fatalf("disabled cache must still track the epoch, got %d", cc.epoch)
	}
}

func TestEstimatorTracksP95(t *testing.T) {
	e := newEstimator()
	for i := 0; i < 200; i++ {
		d := time.Millisecond
		if i%20 == 0 { // a 5% straggler tail
			d = 50 * time.Millisecond
		}
		e.observe(d)
	}
	got := e.value()
	if got < time.Millisecond || got > 60*time.Millisecond {
		t.Fatalf("p95 estimate = %v, want within [1ms, 60ms]", got)
	}
	// Rotation: cross the window boundary and keep answering.
	for i := 0; i < budgetWindow; i++ {
		e.observe(2 * time.Millisecond)
	}
	if got := e.value(); got < time.Millisecond || got > 60*time.Millisecond {
		t.Fatalf("post-rotation estimate = %v", got)
	}
}
