package wal

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// delta builds a small distinguishable delta for record i.
func delta(i int) graph.Delta {
	return graph.Delta{
		Nodes: []graph.DeltaNode{{Type: "user", Value: fmt.Sprintf("u-%d", i)}},
		Edges: []graph.Edge{{U: graph.NodeID(i), V: graph.NodeID(i + 1)}},
	}
}

// appendN appends n deltas and asserts contiguous LSNs from firstWant.
func appendN(t *testing.T, w *WAL, n int, firstWant uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		lsn, err := w.Append(delta(i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != firstWant+uint64(i) {
			t.Fatalf("append %d: lsn %d, want %d", i, lsn, firstWant+uint64(i))
		}
	}
}

// collect replays everything after afterLSN into a slice.
func collect(t *testing.T, w *WAL, afterLSN uint64) []Record {
	t.Helper()
	var out []Record
	if err := w.Replay(afterLSN, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 10, 1)
	if got := w.DurableLSN(); got != 10 {
		t.Fatalf("durable = %d, want 10", got)
	}
	recs := collect(t, w, 0)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d: lsn %d", i, r.LSN)
		}
		if !reflect.DeepEqual(r.Delta, delta(i)) {
			t.Fatalf("record %d: delta %+v, want %+v", i, r.Delta, delta(i))
		}
	}
	// Replay from the middle.
	if recs := collect(t, w, 7); len(recs) != 3 || recs[0].LSN != 8 {
		t.Fatalf("replay after 7: %+v", recs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: durable position and records survive, and Since serves
	// from disk (the in-memory tail dies with the process).
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.DurableLSN(); got != 10 {
		t.Fatalf("reopened durable = %d, want 10", got)
	}
	disk, durable, err := w2.Since(7, 0)
	if err != nil || durable != 10 || len(disk) != 3 || disk[0].LSN != 8 {
		t.Fatalf("Since after reopen = %+v (durable %d, %v)", disk, durable, err)
	}
	if !reflect.DeepEqual(disk[0].Delta, delta(7)) {
		t.Fatalf("disk-served record drifted: %+v", disk[0].Delta)
	}
	appendN(t, w2, 1, 11)
	// The fresh append is tail-served; it must splice cleanly after the
	// disk-recovered history.
	both, _, err := w2.Since(9, 0)
	if err != nil || len(both) != 2 || both[0].LSN != 10 || both[1].LSN != 11 {
		t.Fatalf("Since spanning reopen = %+v, %v", both, err)
	}
}

func TestSinceAndWaitSince(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 5, 1)

	recs, durable, err := w.Since(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if durable != 5 || len(recs) != 2 || recs[0].LSN != 3 || recs[1].LSN != 4 {
		t.Fatalf("Since(2, 2) = %+v, durable %d", recs, durable)
	}
	recs, _, err = w.Since(5, 0)
	if err != nil || len(recs) != 0 {
		t.Fatalf("Since(5) = %+v, %v", recs, err)
	}

	// WaitSince returns immediately when records exist...
	if !w.WaitSince(context.Background(), 0) {
		t.Fatal("WaitSince(0) should return true")
	}
	// ...times out when none arrive...
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if w.WaitSince(ctx, 5) {
		t.Fatal("WaitSince(5) should time out")
	}
	// ...and wakes on the next durable append.
	done := make(chan bool, 1)
	go func() { done <- w.WaitSince(context.Background(), 5) }()
	time.Sleep(10 * time.Millisecond)
	appendN(t, w, 1, 6)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitSince woke with false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitSince never woke")
	}
}

// TestGroupCommitConcurrent hammers Append from many goroutines; run with
// -race this pins the group-commit path. Every LSN must come back unique
// and the replayed log must hold exactly the appended set.
func TestGroupCommitConcurrent(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	lsns := make([][]uint64, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := w.Append(delta(g*1000 + i))
				if err != nil {
					t.Error(err)
					return
				}
				lsns[g] = append(lsns[g], lsn)
			}
		}(g)
	}
	wg.Wait()
	var all []uint64
	for _, ls := range lsns {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, lsn := range all {
		if lsn != uint64(i+1) {
			t.Fatalf("lsn set not contiguous at %d: %d", i, lsn)
		}
	}
	if recs := collect(t, w, 0); len(recs) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*perWriter)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64}) // rotate every record or two
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 12, 1)
	if n := w.SegmentCount(); n < 3 {
		t.Fatalf("only %d segments after 12 appends at 64-byte rotation", n)
	}
	if recs := collect(t, w, 0); len(recs) != 12 {
		t.Fatalf("replayed %d records across segments, want 12", len(recs))
	}

	// Truncating through LSN 6 drops sealed prefix segments but keeps
	// everything needed to replay LSN 7+.
	if err := w.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	if first := w.FirstLSN(); first == 0 || first > 7 {
		t.Fatalf("after truncate FirstLSN = %d, want <= 7 and > 0", first)
	}
	if recs := collect(t, w, 6); len(recs) != 6 || recs[0].LSN != 7 {
		t.Fatalf("replay after truncate: %d records, first %d", len(recs), recs[0].LSN)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after truncation: the log resumes at LSN 13.
	w2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	appendN(t, w2, 1, 13)
}

func TestBaseLSNSeedsEmptyLog(t *testing.T) {
	w, err := Open(t.TempDir(), Options{BaseLSN: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.DurableLSN(); got != 41 {
		t.Fatalf("durable = %d, want 41", got)
	}
	appendN(t, w, 1, 42)
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

// TestRecoverTruncatesTornTail simulates a crash mid-write: garbage (a
// partial record) after the last valid record must be truncated away on
// Open, keeping every complete record.
func TestRecoverTruncatesTornTail(t *testing.T) {
	for _, garbage := range [][]byte{
		{0x00},                         // lone zero byte
		{0x00, 0x00, 0x00, 0x10, 0xaa}, // plausible length, missing payload
		make([]byte, 200),              // a whole zeroed "record"
	} {
		dir := t.TempDir()
		w, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 5, 1)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(lastSegment(t, dir), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(garbage); err != nil {
			t.Fatal(err)
		}
		f.Close()

		w2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("garbage %v: reopen: %v", garbage, err)
		}
		if got := w2.DurableLSN(); got != 5 {
			t.Fatalf("garbage %v: durable = %d, want 5", garbage, got)
		}
		if recs := collect(t, w2, 0); len(recs) != 5 {
			t.Fatalf("garbage %v: %d records, want 5", garbage, len(recs))
		}
		// The log keeps appending cleanly past the healed tail.
		appendN(t, w2, 1, 6)
		w2.Close()
	}
}

// TestRecoverBitFlips flips every byte of a closed single-segment log in
// turn: Open must never panic — it either truncates the tail (a flip in
// the last records or their framing) or reports an error (header damage).
// Flips strictly before the final record must never lose earlier records
// silently beyond the flip point... they truncate from the damaged record.
func TestRecoverBitFlips(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 4, 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(pristine); pos++ {
		mutated := append([]byte(nil), pristine...)
		mutated[pos] ^= 0x40
		if err := os.WriteFile(seg, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(dir, Options{})
		if err != nil {
			continue // header or name mismatch: rejected, never panicked
		}
		// Accepted: the surviving prefix must replay without error and be
		// a prefix of the original records.
		recs := collect(t, w2, 0)
		for i, r := range recs {
			if r.LSN != uint64(i+1) || !reflect.DeepEqual(r.Delta, delta(i)) {
				t.Fatalf("flip at %d: surviving record %d corrupt: %+v", pos, i, r)
			}
		}
		w2.Close()
	}
	if err := os.WriteFile(seg, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverDropsTornSegmentCreation simulates a crash between rotate's
// segment creation and its first write: a trailing segment shorter than
// its header holds no data and must be dropped on Open, resuming the
// previous segment — not brick the log.
func TestRecoverDropsTornSegmentCreation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 6, 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A rotation target that never got its header fully written.
	torn := filepath.Join(dir, "wal-00000000000000ff.seg")
	if err := os.WriteFile(torn, []byte("SPXW"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("torn segment creation bricked the log: %v", err)
	}
	defer w2.Close()
	if got := w2.DurableLSN(); got != 6 {
		t.Fatalf("durable = %d, want 6", got)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn segment not removed")
	}
	appendN(t, w2, 1, 7)

	// The same applies to a sole empty segment of a fresh log.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "wal-0000000000000001.seg"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w3, err := Open(dir2, Options{})
	if err != nil {
		t.Fatalf("sole torn segment bricked the log: %v", err)
	}
	defer w3.Close()
	appendN(t, w3, 1, 1)
}

// TestRecoverRejectsCorruptSealedSegment: damage in a sealed (non-final)
// segment is unrecoverable data loss and must fail Open loudly rather
// than truncate silently.
func TestRecoverRejectsCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 10, 1)
	if w.SegmentCount() < 2 {
		t.Fatal("need at least two segments")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	sort.Strings(names)
	sealed := names[0]
	b, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // flip inside the sealed segment's last record
	if err := os.WriteFile(sealed, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 64}); err == nil {
		t.Fatal("corrupt sealed segment accepted")
	}
}

// TestRecoverRejectsMissingSegment: a gap in the segment chain (operator
// deleted a middle file) must fail Open.
func TestRecoverRejectsMissingSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 10, 1)
	if w.SegmentCount() < 3 {
		t.Fatal("need at least three segments")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	sort.Strings(names)
	if err := os.Remove(names[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 64}); err == nil {
		t.Fatal("gapped segment chain accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(delta(0)); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

// TestRecordSkipAccumulatesAndIgnoresStaleTemp: the skip list is
// rewritten atomically (temp + rename), so entries accumulate across
// RecordSkip calls and process restarts, and a temp file left by a crash
// mid-rewrite is ignored at Open — the sidecar is always either the old
// complete list or the new one, never a torn hybrid.
func TestRecordSkipAccumulatesAndIgnoresStaleTemp(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RecordSkip(3); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordSkip(7); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordSkip(7); err != nil {
		t.Fatal("re-recording a skip must be a no-op, got", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash between writing the temp file and renaming it leaves an
	// ".atomic-*" staging file behind (the name atomicfile.Write uses);
	// it must not corrupt or replace the committed list, nor confuse
	// segment discovery.
	if err := os.WriteFile(filepath.Join(dir, ".atomic-stale"), []byte("99"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.Skipped(3) || !w.Skipped(7) {
		t.Fatalf("skips lost across reopen: skipped(3)=%v skipped(7)=%v", w.Skipped(3), w.Skipped(7))
	}
	if w.Skipped(99) {
		t.Fatal("stale temp file leaked into the skip list")
	}
	if err := w.RecordSkip(11); err != nil {
		t.Fatal(err)
	}
	if !w.Skipped(3) || !w.Skipped(7) || !w.Skipped(11) {
		t.Fatal("recording a new skip dropped earlier entries")
	}
}

// TestRecordSkipFailurePoisonsLog: a skip that cannot be durably
// recorded leaves the log holding a record replay will refuse — the log
// must stop accepting writes and surface the state through Err (which a
// primary's /readyz reports as wal_failed), not discover it at the next
// boot.
func TestRecordSkipFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Destroying the directory makes the sidecar rewrite fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordSkip(1); err == nil {
		t.Fatal("RecordSkip succeeded with the log directory gone")
	}
	if w.Err() == nil {
		t.Fatal("failed RecordSkip did not poison the log")
	}
	if _, err := w.Append(delta(0)); err == nil {
		t.Fatal("Append accepted a record on a poisoned log")
	}
	if err := w.RecordSkip(2); err == nil {
		t.Fatal("RecordSkip accepted a new skip on a poisoned log")
	}
}

// BenchmarkWALAppend measures the group-commit append path. The parallel
// variant is where batching pays: many goroutines share each fsync.
func BenchmarkWALAppend(b *testing.B) {
	d := delta(7)
	b.Run("serial", func(b *testing.B) {
		w, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Append(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		w, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := w.Append(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// TestAppendRejectsUndecodableDelta: a record is only durable if it is
// also replayable — a delta the decoder's bounds would reject (here a
// >1MB string) must be refused at Append, not acknowledged and then
// discovered unreplayable after a crash.
func TestAppendRejectsUndecodableDelta(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	huge := graph.Delta{Nodes: []graph.DeltaNode{{Type: "user", Value: string(make([]byte, 2<<20))}}}
	if _, err := w.Append(huge); err == nil {
		t.Fatal("Append acknowledged a delta DecodeDelta rejects")
	}
	// The log is still healthy and appendable afterwards.
	if w.Err() != nil {
		t.Fatalf("refused append poisoned the log: %v", w.Err())
	}
	if _, err := w.Append(delta(1)); err != nil {
		t.Fatal(err)
	}
}

// TestReplayFailsOnSealedSegmentCorruption: corruption that lands in a
// sealed segment AFTER Open's validation must surface as a replay error,
// never as a silent mid-segment truncation of the read.
func TestReplayFailsOnSealedSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 8; i++ {
		if _, err := w.Append(delta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 2 {
		t.Fatalf("expected rotation, have %d segment(s)", w.SegmentCount())
	}
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	// Flip one payload byte in the first (sealed) segment.
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameSize+2] ^= 0xff
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay over a corrupt sealed segment reported success")
	}
}

// TestSinceRawDiskPathByteBound drives the byte budget through the
// segment-scan path — a reopened log has an empty in-memory tail, the
// position every lagging follower reads from. The budget must stop the
// scan early WITHOUT tripping the below-durable corruption check (the
// early stop is a budget, not a torn record), keep the prefix
// contiguous, and still hand over a first record regardless of size.
func TestSinceRawDiskPathByteBound(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 6, 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	one := len(graph.EncodeDelta(delta(0))) // deltas 0..5 encode to equal sizes
	recs, durable, err := w.SinceRaw(0, 0, 2*one)
	if err != nil {
		t.Fatalf("budget-limited disk scan errored: %v", err)
	}
	if durable != 6 {
		t.Fatalf("durable = %d, want 6", durable)
	}
	if len(recs) != 2 || recs[0].LSN != 1 || recs[1].LSN != 2 {
		t.Fatalf("budget of two records returned %+v", recs)
	}
	// A budget smaller than any record still returns the first one.
	recs, _, err = w.SinceRaw(2, 0, 1)
	if err != nil || len(recs) != 1 || recs[0].LSN != 3 {
		t.Fatalf("minimal budget: recs %+v, err %v", recs, err)
	}
	// Re-polling past the budgeted prefix drains the rest.
	recs, _, err = w.SinceRaw(3, 0, 0)
	if err != nil || len(recs) != 3 || recs[0].LSN != 4 || recs[2].LSN != 6 {
		t.Fatalf("drain: recs %+v, err %v", recs, err)
	}
}

// TestReplayFailsOnActiveSegmentCorruptionBelowDurable: the active
// segment is scanned tolerantly only for the torn bytes a crash leaves
// past the durable bound — corruption BELOW the durable LSN must surface
// as an error, or a disk-path reader (replay, the replication feed)
// would silently receive a truncated prefix and a lagging follower would
// wedge below the corrupt record with no alarm.
func TestReplayFailsOnActiveSegmentCorruptionBelowDurable(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 5, 1)
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(names) != 1 {
		t.Fatalf("want one segment, have %v (%v)", names, err)
	}
	// Flip one payload byte in the first durable record of the (still
	// active) segment.
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameSize+2] ^= 0xff
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay over a corrupt active segment reported a silently truncated view as success")
	}
}

// TestErrReportsClosedAndHealthy pins the Err contract readiness relies
// on: nil while healthy, non-nil once the log can no longer append.
func TestErrReportsClosedAndHealthy(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatalf("healthy log reports %v", w.Err())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Err() == nil {
		t.Fatal("closed log reports healthy")
	}
}
