package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/graph"
)

// Reading the log: recovery scans (Open), crash-recovery replay
// (Replay), and the replication feed (Since/WaitSince). All reads go
// through scanSegment, which validates framing, CRC, LSN contiguity,
// term ordering and delta decoding, so every consumer sees the same
// hardened view of the bytes: a record is either fully valid or the scan
// stops (tolerant mode, for the final segment's torn tail) or fails
// (strict mode, for sealed segments).

// errTornTail marks a record that ends mid-frame or fails its checksum —
// the shape a crash mid-write leaves behind.
var errTornTail = errors.New("torn record")

// scanSegment reads one segment file, sniffing the wire version from the
// header magic (legacy records read back as term 1). It returns the byte
// offset just past the last valid record, that record's LSN (0 if the
// segment holds none), and the segment's version. In strict mode any
// invalid byte is an error; otherwise the scan stops at the first torn
// record (the caller truncates there). A term regressing within the
// segment is an error in BOTH modes: a crash tears bytes, it cannot
// decrement a varint behind a valid CRC — that shape means mixed or
// tampered logs, never a recoverable tail. fn, when non-nil, is called
// for every valid record; a false return stops the scan early
// (offset/last then describe the scanned prefix).
func scanSegment(path string, declaredFirst uint64, strict bool, fn func(lsn, term uint64, body []byte) bool) (offset int64, last uint64, version int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, 0, 0, fmt.Errorf("wal: segment %s: short header: %w", path, err)
	}
	switch string(hdr[:len(segMagic)]) {
	case segMagicV1:
		version = 1
	case segMagic:
		version = 2
	default:
		return 0, 0, 0, fmt.Errorf("wal: segment %s: bad magic", path)
	}
	if got := binary.BigEndian.Uint64(hdr[len(segMagic):]); got != declaredFirst {
		return 0, 0, 0, fmt.Errorf("wal: segment %s: header LSN %d does not match name", path, got)
	}

	offset = int64(headerSize)
	next := declaredFirst
	var prevTerm uint64
	var payload []byte
	for {
		lsn, term, body, n, err := readRecord(br, version, &payload)
		if err == io.EOF {
			return offset, last, version, nil
		}
		if err != nil {
			if !strict && errors.Is(err, errTornTail) {
				return offset, last, version, nil
			}
			return 0, 0, 0, fmt.Errorf("wal: segment %s: offset %d: %w", path, offset, err)
		}
		if lsn != next {
			if !strict {
				return offset, last, version, nil
			}
			return 0, 0, 0, fmt.Errorf("wal: segment %s: offset %d: LSN %d, want %d", path, offset, lsn, next)
		}
		if term < prevTerm {
			return 0, 0, 0, fmt.Errorf("wal: segment %s: offset %d: LSN %d term %d regresses from %d", path, offset, lsn, term, prevTerm)
		}
		if fn != nil && !fn(lsn, term, body) {
			return offset + n, lsn, version, nil
		}
		offset += n
		last = lsn
		next = lsn + 1
		prevTerm = term
	}
}

// readRecord reads one framed record, reusing *payload as scratch. It
// returns io.EOF at a clean record boundary and errTornTail for a
// truncated or checksum-failing record. Legacy (version 1) payloads
// carry no term varint and read back as term 1. The returned body
// aliases the scratch buffer and is only valid until the next call.
func readRecord(br *bufio.Reader, version int, payload *[]byte) (lsn, term uint64, body []byte, size int64, err error) {
	var frame [frameSize]byte
	if _, err := io.ReadFull(br, frame[:]); err != nil {
		if err == io.EOF {
			return 0, 0, nil, 0, io.EOF
		}
		return 0, 0, nil, 0, fmt.Errorf("%w: short frame", errTornTail)
	}
	length := binary.BigEndian.Uint32(frame[0:4])
	if length == 0 || length > MaxRecordBytes {
		return 0, 0, nil, 0, fmt.Errorf("%w: implausible record length %d", errTornTail, length)
	}
	if cap(*payload) < int(length) {
		*payload = make([]byte, length)
	}
	buf := (*payload)[:length]
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, 0, nil, 0, fmt.Errorf("%w: short payload", errTornTail)
	}
	if got, want := crc32.Checksum(buf, castagnoli), binary.BigEndian.Uint32(frame[4:8]); got != want {
		return 0, 0, nil, 0, fmt.Errorf("%w: checksum mismatch", errTornTail)
	}
	lsn, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, nil, 0, fmt.Errorf("%w: bad LSN varint", errTornTail)
	}
	buf = buf[n:]
	term = 1
	if version >= 2 {
		var tn int
		term, tn = binary.Uvarint(buf)
		if tn <= 0 || term == 0 {
			return 0, 0, nil, 0, fmt.Errorf("%w: bad term varint", errTornTail)
		}
		buf = buf[tn:]
	}
	return lsn, term, buf, frameSize + int64(length), nil
}

// Replay streams every durable record with LSN > afterLSN, in order,
// decoding each delta. It only sees records that were fsynced before the
// call, so replay after a crash and the replication feed read the same
// prefix a recovery would. fn returning an error stops the replay.
func (w *WAL) Replay(afterLSN uint64, fn func(r Record) error) error {
	w.mu.Lock()
	durable := w.durable
	w.mu.Unlock()
	return w.replayRaw(afterLSN, durable, func(lsn, term uint64, body []byte) error {
		d, derr := graph.DecodeDelta(body)
		if derr != nil {
			return fmt.Errorf("wal: record %d: %w", lsn, derr)
		}
		return fn(Record{LSN: lsn, Term: term, Delta: d})
	})
}

// replayRaw scans the segment files for records in (afterLSN, durable],
// in order. The body passed to fn aliases scan scratch — copy to retain.
func (w *WAL) replayRaw(afterLSN, durable uint64, fn func(lsn, term uint64, body []byte) error) error {
	w.mu.Lock()
	segs := append([]segment(nil), w.segments...)
	w.mu.Unlock()

	var ferr error
	for i, s := range segs {
		if s.last == 0 || s.last <= afterLSN {
			continue
		}
		// Sealed segments are immutable and were validated at Open, so any
		// invalid byte found now is on-disk corruption that must surface
		// as an error — tolerant mode would silently truncate the read
		// mid-segment. Only the active (final) segment scans tolerantly: a
		// concurrent group commit may have written a partial record past
		// the durable bound, which the lsn > durable check below stops at
		// anyway.
		strict := i < len(segs)-1
		_, last, _, err := scanSegment(s.path, s.first, strict, func(lsn, term uint64, body []byte) bool {
			if lsn <= afterLSN {
				return true
			}
			if lsn > durable {
				return false
			}
			if err := fn(lsn, term, body); err != nil {
				ferr = err
				return false
			}
			return true
		})
		if ferr != nil {
			return ferr
		}
		if err != nil {
			return err
		}
		// Tolerance on the active segment exists for the torn bytes a
		// crash or in-flight group commit leaves past the durable bound —
		// never for corruption below it. A tolerant scan that stopped
		// before the durable high-watermark silently read a short prefix:
		// surfacing no error here would hand callers (replay, the
		// replication feed) a truncated view they would trust — a follower
		// would wedge below the corrupt record with lag > 0 and no alarm
		// anywhere. The bound is the min of the segment's recorded last
		// and the caller's durable LSN: s.last alone can run ahead of the
		// durable value the caller captured (appends commit between the
		// two lock acquisitions), and the scan legitimately stops at the
		// caller's bound.
		bound := s.last
		if durable < bound {
			bound = durable
		}
		if !strict && last < bound {
			return fmt.Errorf("wal: segment %s: valid records end at LSN %d but LSN %d is durable — corruption below the durable bound", s.path, last, bound)
		}
	}
	return nil
}

// RawRecord is one durable record with its delta still in the encoded
// wire form (graph.EncodeDelta) — what the WAL stores and what the
// replication feed ships, so serving a follower never decodes and
// re-encodes. Term is the promotion epoch the record was written under.
// The Delta bytes may alias internal storage: treat as read-only.
type RawRecord struct {
	LSN   uint64
	Term  uint64
	Delta []byte
}

// SinceRaw returns up to max raw records with LSN > afterLSN (all of
// them when max <= 0), plus the durable LSN at read time so a caller can
// tell "no records" apart from "caught up". maxBytes (<= 0 = unbounded)
// additionally stops the batch before the cumulative delta payload
// exceeds it — the first record is always returned whatever its size, so
// a bounded reader still makes progress. Enforcing the bound here, not
// in the caller, matters for the disk path: a lagging reader would
// otherwise pay the scan and copy of up to max full records per poll
// only to have the caller discard everything past the budget, re-reading
// the same suffix on every re-poll. The hot case — a follower within
// tailMaxRecords of the head — is served from the in-memory tail without
// touching disk; older positions fall back to scanning the segment
// files.
func (w *WAL) SinceRaw(afterLSN uint64, max, maxBytes int) ([]RawRecord, uint64, error) {
	w.mu.Lock()
	durable := w.durable
	if len(w.tail) > 0 && w.tail[0].lsn <= afterLSN+1 {
		var out []RawRecord
		total := 0
		for _, tr := range w.tail {
			if tr.lsn <= afterLSN {
				continue
			}
			if tr.lsn > durable {
				break
			}
			if maxBytes > 0 && len(out) > 0 && total+len(tr.delta) > maxBytes {
				break
			}
			total += len(tr.delta)
			out = append(out, RawRecord{LSN: tr.lsn, Term: tr.term, Delta: tr.delta})
			if max > 0 && len(out) >= max {
				break
			}
		}
		w.mu.Unlock()
		return out, durable, nil
	}
	w.mu.Unlock()

	var out []RawRecord
	total := 0
	err := w.replayRaw(afterLSN, durable, func(lsn, term uint64, body []byte) error {
		if maxBytes > 0 && len(out) > 0 && total+len(body) > maxBytes {
			return errStopReplay
		}
		total += len(body)
		out = append(out, RawRecord{LSN: lsn, Term: term, Delta: append([]byte(nil), body...)})
		if max > 0 && len(out) >= max {
			return errStopReplay
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopReplay) {
		return nil, 0, err
	}
	return out, durable, nil
}

// Since is SinceRaw with the deltas decoded and no byte bound.
func (w *WAL) Since(afterLSN uint64, max int) ([]Record, uint64, error) {
	raw, durable, err := w.SinceRaw(afterLSN, max, 0)
	if err != nil {
		return nil, 0, err
	}
	out := make([]Record, len(raw))
	for i, r := range raw {
		d, err := graph.DecodeDelta(r.Delta)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: record %d: %w", r.LSN, err)
		}
		out[i] = Record{LSN: r.LSN, Term: r.Term, Delta: d}
	}
	return out, durable, nil
}

// TermAt returns the term of the durable record at lsn, or ok=false
// when the log does not hold it (never appended, not yet durable, or
// truncated away). The fencing history check uses it to compare a
// follower's view of a given LSN with the log's. The hot case — lsn
// within the in-memory tail — is O(1); older positions scan segments.
func (w *WAL) TermAt(lsn uint64) (term uint64, ok bool) {
	w.mu.Lock()
	if lsn == 0 || lsn > w.durable {
		w.mu.Unlock()
		return 0, false
	}
	if len(w.tail) > 0 && w.tail[0].lsn <= lsn {
		// The tail is contiguous by construction: direct index.
		tr := w.tail[lsn-w.tail[0].lsn]
		w.mu.Unlock()
		return tr.term, true
	}
	durable := w.durable
	w.mu.Unlock()

	err := w.replayRaw(lsn-1, durable, func(l, t uint64, body []byte) error {
		if l == lsn {
			term, ok = t, true
		}
		return errStopReplay
	})
	if err != nil && !errors.Is(err, errStopReplay) {
		return 0, false
	}
	return term, ok
}

// errStopReplay is the internal early-exit sentinel of bounded reads.
var errStopReplay = errors.New("wal: stop replay")

// WaitSince blocks until the log holds at least one durable record with
// LSN > afterLSN (returning true) or the context ends (returning false).
// It is the long-poll primitive behind GET /replicate/since.
func (w *WAL) WaitSince(ctx context.Context, afterLSN uint64) bool {
	for {
		w.mu.Lock()
		if w.durable > afterLSN {
			w.mu.Unlock()
			return true
		}
		if w.closed || w.err != nil {
			w.mu.Unlock()
			return false
		}
		watch := w.watch
		w.mu.Unlock()
		select {
		case <-ctx.Done():
			return false
		case <-watch:
		}
	}
}
