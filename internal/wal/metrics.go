// WAL observability: throughput counters and latency histograms are
// process-wide (recorded into the obs default registry — every WAL in
// the process folds into one series, which is exactly one WAL in a real
// daemon), while per-instance state (current term, sticky failure,
// durable watermark) registers as callback gauges with
// replace-on-register semantics, so the most recently opened log owns
// those series.
package wal

import "repro/internal/obs"

var (
	walAppends = obs.Default().Counter("semprox_wal_appends_total",
		"Records handed to the WAL commit pipeline (blocking, async, and raw-batch appends).")
	walFsync = obs.Default().Histogram("semprox_wal_fsync_seconds",
		"Latency of each coalesced group-commit fsync.", obs.Seconds)
	walBatch = obs.Default().Histogram("semprox_wal_commit_batch_records",
		"Records written per group-commit batch — the fsync-sharing convoy size.", obs.Units)
)

// registerGauges wires w's instance-state gauges; called once from Open.
func (w *WAL) registerGauges() {
	r := obs.Default()
	r.RegisterGaugeFunc("semprox_wal_term",
		"Current term of the most recently opened WAL.",
		func() float64 { return float64(w.Term()) })
	r.RegisterGaugeFunc("semprox_wal_failed",
		"1 when the WAL has failed sticky (every append refused), else 0.",
		func() float64 {
			if w.Err() != nil {
				return 1
			}
			return 0
		})
	r.RegisterGaugeFunc("semprox_wal_durable_lsn",
		"Highest LSN known durable (fsynced) on the most recently opened WAL.",
		func() float64 { return float64(w.DurableLSN()) })
}
