// Package wal is the durability substrate of the live-update path: a
// write-ahead log of graph.Delta records. Every update a primary accepts
// is appended — and fsynced — here before it is applied to the serving
// engine, so a crash loses nothing: recovery loads the newest snapshot and
// replays the log tail (semprox.ReplayWAL), and a follower replica streams
// the same records over HTTP (internal/replica) to stay byte-identical
// with the primary.
//
// On-disk layout: a directory of segment files named
// wal-<firstLSN:016x>.seg. Each segment starts with an 16-byte header
// (magic + the first LSN it stores, big endian) followed by records:
//
//	uint32 length | uint32 CRC32-C of payload | payload
//	payload = uvarint LSN ++ graph.AppendDelta encoding
//
// LSNs (log sequence numbers) are assigned contiguously from 1 (or
// Options.BaseLSN+1), one per appended delta, and match the engine's LSN
// counter: a snapshot taken at LSN L is superseded exactly by the records
// with LSN > L. A sidecar file ("skipped", one decimal LSN per line)
// durably records the rare record that was appended but then rejected by
// the engine and intentionally skipped — see RecordSkip.
//
// Durability: Append batches fsyncs through a single group-commit
// goroutine — concurrent appenders enqueue encoded records and block until
// the syncer has written AND fsynced their record, so one fsync commits a
// whole convoy under load, and an Append that returned nil is on disk. A
// torn tail write (crash mid-record) is detected by length/CRC at Open and
// truncated away; corruption in any sealed (non-final) segment is an
// error, never silently skipped.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/atomicfile"
	"repro/internal/graph"
)

const (
	// segMagic opens every segment file.
	segMagic = "SPXWAL01"
	// headerSize is the segment header: magic plus the first LSN.
	headerSize = len(segMagic) + 8
	// frameSize prefixes every record: payload length plus CRC.
	frameSize = 8
	// MaxRecordBytes bounds one record payload; larger lengths in a frame
	// indicate corruption, and larger deltas must be split by the caller.
	MaxRecordBytes = 1 << 26
	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes unset.
	DefaultSegmentBytes = 64 << 20
)

// castagnoli is the CRC32-C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the active one reaches
	// this size (checked between group commits). <= 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// BaseLSN seeds the LSN counter when the directory holds no records:
	// the first append gets BaseLSN+1. Use the LSN of the snapshot the
	// engine booted from so log and engine stay aligned. Ignored when the
	// directory already has records.
	BaseLSN uint64
}

// Record is one logged delta.
type Record struct {
	LSN   uint64
	Delta graph.Delta
}

// segment tracks one on-disk segment file.
type segment struct {
	path  string
	first uint64 // first LSN the segment stores (header-declared)
	last  uint64 // last LSN written, 0 while empty
}

// WAL is an append-only log of deltas. All methods are safe for
// concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu   sync.Mutex
	cond *sync.Cond // guards + signals pending/durable/err transitions

	// pending holds encoded frames not yet handed to the syncer;
	// pendingFirst/pendingLast are the LSN range inside it.
	pending      []byte
	pendingFirst uint64
	pendingLast  uint64

	next    uint64 // next LSN to assign
	durable uint64 // highest LSN fsynced to disk
	err     error  // sticky I/O failure; fails all later appends
	closed  bool

	active     *os.File
	activeSize int64
	segments   []segment

	// watch is closed and replaced every time durable advances, so
	// WaitSince can block without polling.
	watch chan struct{}

	// tail is an in-memory copy of the most recent records (encoded
	// delta payloads), so steady-state replication polls (Since/SinceRaw
	// for an almost-caught-up follower) never touch disk. Bounded by
	// tailMaxRecords/tailMaxBytes; older reads fall back to the segment
	// files.
	tail      []tailRec
	tailBytes int

	// skips holds the LSNs of records that were appended but then
	// rejected by the engine and intentionally skipped (RecordSkip) —
	// loaded from the sidecar skip-list file at Open.
	skips map[uint64]bool

	syncerDone chan struct{}
}

// skipsFile names the sidecar in the log directory that durably records
// skipped LSNs, one decimal number per line.
const skipsFile = "skipped"

// tailRec is one in-memory record: the LSN and the encoded delta.
type tailRec struct {
	lsn   uint64
	delta []byte
}

const (
	tailMaxRecords = 1024
	tailMaxBytes   = 4 << 20
)

// Open opens (creating if needed) the log in dir and recovers its tail: a
// torn or corrupt trailing record in the final segment is truncated away,
// while corruption in a sealed segment is an error. The returned WAL is
// ready to append at LSN DurableLSN()+1.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, watch: make(chan struct{}), syncerDone: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	if err := w.recover(); err != nil {
		return nil, err
	}
	if err := w.loadSkips(); err != nil {
		return nil, err
	}
	go w.syncLoop()
	return w, nil
}

// loadSkips reads the sidecar skip list (missing file = no skips).
func (w *WAL) loadSkips() error {
	data, err := os.ReadFile(filepath.Join(w.dir, skipsFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.skips = make(map[uint64]bool)
	for _, field := range strings.Fields(string(data)) {
		n, err := strconv.ParseUint(field, 10, 64)
		if err != nil {
			return fmt.Errorf("wal: skip list: bad entry %q", field)
		}
		w.skips[n] = true
	}
	return nil
}

// RecordSkip durably notes that the record at lsn was appended but then
// rejected by the engine and intentionally skipped — the "record the
// gap" half of the skip protocol. Replay (semprox.ReplayWAL) reproduces
// a rejection of a RECORDED LSN as the primary's own skip; a rejection
// of an unrecorded LSN stays a hard error, the guard against replaying
// a log directory that does not belong to the booted snapshot. The note
// is fsynced before RecordSkip returns.
//
// The whole list is rewritten atomically (atomicfile: temp + fsync +
// rename) rather than appended in place: a crash mid-append could leave
// a torn entry with no delimiter, and the next append would concatenate
// onto it ("1" + "20\n" parses as LSN 120) — a wrong LSN recorded as
// skippable while the real one stays a boot-wedging hard error. Skips
// are rare enough that rewriting the tiny file costs nothing.
//
// A RecordSkip failure poisons the log (Err turns non-nil, Append
// refuses, a primary's /readyz flips to wal_failed): the log now holds a
// durable record whose skip is NOT durably recorded, so continuing to
// serve would re-arm the boot-wedging state the skip protocol exists to
// remove — the operator must see it now, not at the next boot.
func (w *WAL) RecordSkip(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.skips[lsn] {
		return nil
	}
	if w.err != nil {
		// Never rewrite the sidecar from a map that may be behind the disk
		// state a partially-failed rewrite left (rename committed, dir
		// sync failed): that could erase a durably recorded skip.
		return w.err
	}
	lsns := make([]uint64, 0, len(w.skips)+1)
	for s := range w.skips {
		lsns = append(lsns, s)
	}
	lsns = append(lsns, lsn)
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	var sb strings.Builder
	for _, s := range lsns {
		fmt.Fprintf(&sb, "%d\n", s)
	}
	if err := atomicfile.Write(filepath.Join(w.dir, skipsFile), []byte(sb.String())); err != nil {
		w.err = fmt.Errorf("wal: skip list write failed, log poisoned (a durable record's skip is not durably recorded): %w", err)
		// Blocked appenders and WaitSince pollers must observe the sticky
		// error now: an appender whose batch syncLoop has not yet picked
		// up would otherwise wait forever, because syncLoop's error-exit
		// path returns without another broadcast.
		w.wakeAll()
		return w.err
	}
	if w.skips == nil {
		w.skips = make(map[uint64]bool)
	}
	w.skips[lsn] = true
	return nil
}

// Skipped reports whether lsn is in the durable skip list.
func (w *WAL) Skipped(lsn uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.skips[lsn]
}

// segmentPath names the segment whose first record is lsn.
func (w *WAL) segmentPath(lsn uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("wal-%016x.seg", lsn))
}

// parseSegmentName extracts the first-LSN of a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recover scans the directory, validates every segment, truncates a torn
// tail, and positions the log for appending.
func (w *WAL) recover() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		w.segments = append(w.segments, segment{path: filepath.Join(w.dir, e.Name()), first: first})
	}
	sort.Slice(w.segments, func(i, j int) bool { return w.segments[i].first < w.segments[j].first })

	// A crash between rotate's segment creation and its first write (or
	// header fsync) can leave a trailing segment shorter than its header.
	// That is a torn creation, not data: drop it and let the previous
	// segment resume as the active one (rotation will simply re-trigger).
	for len(w.segments) > 0 {
		last := w.segments[len(w.segments)-1]
		st, err := os.Stat(last.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if st.Size() >= int64(headerSize) {
			break
		}
		if err := os.Remove(last.path); err != nil {
			return fmt.Errorf("wal: drop torn segment: %w", err)
		}
		if err := syncDir(w.dir); err != nil {
			return err
		}
		w.segments = w.segments[:len(w.segments)-1]
	}

	if len(w.segments) == 0 {
		return w.openFresh(w.opts.BaseLSN + 1)
	}

	expect := w.segments[0].first
	for i := range w.segments {
		seg := &w.segments[i]
		if seg.first != expect {
			return fmt.Errorf("wal: segment %s starts at LSN %d, want %d (missing segment?)",
				seg.path, seg.first, expect)
		}
		final := i == len(w.segments)-1
		size, last, err := scanSegment(seg.path, seg.first, !final, nil)
		if err != nil {
			return err
		}
		seg.last = last
		if final {
			// Truncate a torn tail (no-op when the scan consumed the whole
			// file) and reopen for appending.
			f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			if st, err := f.Stat(); err != nil {
				f.Close()
				return fmt.Errorf("wal: %w", err)
			} else if st.Size() > size {
				if err := f.Truncate(size); err != nil {
					f.Close()
					return fmt.Errorf("wal: truncate torn tail of %s: %w", seg.path, err)
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return fmt.Errorf("wal: %w", err)
				}
			}
			if _, err := f.Seek(size, 0); err != nil {
				f.Close()
				return fmt.Errorf("wal: %w", err)
			}
			w.active = f
			w.activeSize = size
		}
		if last > 0 {
			expect = last + 1
		}
	}
	// expect accumulated to lastRecorded+1 (or stayed at the first
	// segment's declared first when the log holds no records yet): the
	// next append continues exactly where the disk state ends.
	w.next = expect
	w.durable = expect - 1
	return nil
}

// openFresh creates the first segment of an empty log.
func (w *WAL) openFresh(first uint64) error {
	f, size, err := createSegment(w.segmentPath(first), first)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.activeSize = size
	w.segments = []segment{{path: f.Name(), first: first}}
	w.next = first
	w.durable = first - 1
	return nil
}

// createSegment writes a new segment file with its header, fsynced.
func createSegment(path string, first uint64) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, segMagic...)
	hdr = binary.BigEndian.AppendUint64(hdr, first)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	return f, int64(headerSize), nil
}

// syncDir fsyncs a directory so freshly created/removed names survive a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Append encodes d as the next record, hands it to the group-commit
// goroutine, and blocks until the record is written and fsynced. It
// returns the record's LSN. Concurrent appenders share fsyncs: all
// records that accumulate while one sync is in flight commit with the
// next single sync.
func (w *WAL) Append(d graph.Delta) (uint64, error) {
	// A record is only durable if it is also replayable: the decoder
	// enforces bounds the encoder does not (per-string size caps), and an
	// acknowledged record replay later rejects would make the log
	// permanently unreplayable. ValidateDelta checks those bounds before
	// the encode pays for an allocation the rejection would waste.
	if err := graph.ValidateDelta(d); err != nil {
		return 0, fmt.Errorf("wal: delta would not survive replay: %w", err)
	}
	body := graph.EncodeDelta(d)
	if len(body)+binary.MaxVarintLen64 > MaxRecordBytes {
		return 0, fmt.Errorf("wal: delta encodes to %d bytes, limit %d", len(body), MaxRecordBytes)
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	if w.closed {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: closed")
	}
	lsn := w.next
	payload := append(binary.AppendUvarint(make([]byte, 0, binary.MaxVarintLen64+len(body)), lsn), body...)
	w.next++
	if len(w.pending) == 0 {
		w.pendingFirst = lsn
	}
	var frame [frameSize]byte
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	w.pending = append(append(w.pending, frame[:]...), payload...)
	w.pendingLast = lsn
	w.tail = append(w.tail, tailRec{lsn: lsn, delta: body})
	w.tailBytes += len(body)
	for len(w.tail) > tailMaxRecords || (w.tailBytes > tailMaxBytes && len(w.tail) > 1) {
		w.tailBytes -= len(w.tail[0].delta)
		w.tail = w.tail[1:]
	}
	w.cond.Broadcast()
	for w.err == nil && w.durable < lsn {
		w.cond.Wait()
	}
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return lsn, nil
}

// syncLoop is the group-commit goroutine: it drains whatever records
// accumulated since the last sync, writes them with one write + one
// fsync, rotates segments at the size threshold, and wakes the appenders
// whose records just became durable.
func (w *WAL) syncLoop() {
	defer close(w.syncerDone)
	for {
		w.mu.Lock()
		for len(w.pending) == 0 && !w.closed && w.err == nil {
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && len(w.pending) == 0) {
			w.mu.Unlock()
			return
		}
		batch := w.pending
		first, last := w.pendingFirst, w.pendingLast
		w.pending = nil
		rotate := w.activeSize >= w.opts.SegmentBytes
		w.mu.Unlock()

		var failure error
		if rotate {
			failure = w.rotate(first)
		}
		if failure == nil {
			if _, err := w.active.Write(batch); err != nil {
				failure = fmt.Errorf("wal: write: %w", err)
			} else if err := w.active.Sync(); err != nil {
				failure = fmt.Errorf("wal: fsync: %w", err)
			}
		}

		w.mu.Lock()
		if failure != nil {
			w.err = failure
			w.wakeAll()
			w.mu.Unlock()
			return
		}
		w.activeSize += int64(len(batch))
		w.segments[len(w.segments)-1].last = last
		w.durable = last
		w.wakeAll()
		w.mu.Unlock()
	}
}

// wakeAll wakes everything blocked on the log — appenders in cond.Wait
// and WaitSince pollers parked on the watch channel — so they re-examine
// durable/err/closed state. Every state change those waiters observe
// (durability advancing, a sticky failure, close) must go through here:
// a path that mutates state without waking can strand a waiter forever.
// Callers hold w.mu.
func (w *WAL) wakeAll() {
	w.cond.Broadcast()
	close(w.watch)
	w.watch = make(chan struct{})
}

// rotate seals the active segment and opens a fresh one whose first
// record will be firstLSN. Called only from syncLoop.
func (w *WAL) rotate(firstLSN uint64) error {
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync before rotate: %w", err)
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("wal: close sealed segment: %w", err)
	}
	f, size, err := createSegment(w.segmentPath(firstLSN), firstLSN)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.mu.Lock()
	w.active = f
	w.activeSize = size
	w.segments = append(w.segments, segment{path: f.Name(), first: firstLSN})
	w.mu.Unlock()
	return nil
}

// Err reports why the log can no longer accept appends: the sticky I/O
// failure from a failed write/fsync (every Append fails until restart),
// or a closed-log error after Close. Nil while the log is healthy.
// Serving layers use it to drop readiness on a write-dead primary.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	return nil
}

// DurableLSN returns the highest LSN fsynced to disk (0 for an empty
// log): everything up to and including it survives a crash.
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// NextLSN returns the LSN the next Append will be assigned.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// FirstLSN returns the lowest LSN still present in the log, or 0 when the
// log holds no records (everything was truncated or nothing was ever
// appended).
func (w *WAL) FirstLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range w.segments {
		if s.last > 0 {
			return s.first
		}
	}
	return 0
}

// SegmentCount reports how many segment files the log currently spans.
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segments)
}

// TruncateThrough deletes every sealed segment whose records are all
// <= lsn — call it after a snapshot at LSN lsn made that prefix
// redundant. The active segment is never deleted.
func (w *WAL) TruncateThrough(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.segments[:0]
	removed := false
	for i, s := range w.segments {
		sealed := i < len(w.segments)-1
		// A sealed segment's range is [s.first, next segment's first - 1]
		// even if it holds no records; s.last covers the recorded case.
		end := s.last
		if sealed {
			if n := w.segments[i+1].first; n > 0 {
				end = n - 1
			}
		}
		if sealed && end <= lsn {
			if err := os.Remove(s.path); err != nil {
				w.segments = append(kept, w.segments[i:]...)
				return fmt.Errorf("wal: truncate: %w", err)
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	w.segments = kept
	if removed {
		return syncDir(w.dir)
	}
	return nil
}

// Close flushes every pending append, stops the group-commit goroutine,
// and closes the active segment. Appends issued after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.syncerDone
	w.mu.Lock()
	err := w.err
	w.wakeAll() // WaitSince pollers observe closed
	w.mu.Unlock()
	if cerr := w.active.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}
