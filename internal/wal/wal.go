// Package wal is the durability substrate of the live-update path: a
// write-ahead log of graph.Delta records. Every update a primary accepts
// is appended — and fsynced — here before it is applied to the serving
// engine, so a crash loses nothing: recovery loads the newest snapshot and
// replays the log tail (semprox.ReplayWAL), and a follower replica streams
// the same records over HTTP (internal/replica) to stay byte-identical
// with the primary.
//
// On-disk layout: a directory of segment files named
// wal-<firstLSN:016x>.seg. Each segment starts with an 16-byte header
// (magic + the first LSN it stores, big endian) followed by records:
//
//	uint32 length | uint32 CRC32-C of payload | payload
//	payload = uvarint LSN ++ uvarint term ++ graph.AppendDelta encoding
//
// Two wire versions coexist, distinguished by the header magic. The
// current format ("SPXWAL02") carries a term (promotion epoch) varint in
// every payload; the legacy format ("SPXWAL01") has no term and its
// records read back as term 1 — the term every log starts at. A legacy
// log reopened by this version keeps its old segments readable in place,
// seals the legacy active segment, and appends new records to a fresh
// current-format segment: formats never mix within one segment.
//
// LSNs (log sequence numbers) are assigned contiguously from 1 (or
// Options.BaseLSN+1), one per appended delta, and match the engine's LSN
// counter: a snapshot taken at LSN L is superseded exactly by the records
// with LSN > L. Terms order write authority across promotions: a newly
// promoted primary bumps the log's term (SetTerm), every later record is
// stamped with it, and terms never decrease along the LSN order — a
// term regression on read is corruption (or a zombie's writes) and fails
// the scan. The current term survives restarts in a sidecar file
// ("term"), written and fsynced atomically BEFORE any record carries the
// new term. A second sidecar ("skipped", one decimal LSN per line)
// durably records the rare record that was appended but then rejected by
// the engine and intentionally skipped — see RecordSkip.
//
// Durability: appends batch fsyncs through a two-stage pipeline — a
// writer goroutine drains encoded records and issues the write() while a
// syncer goroutine fsyncs the previous batch, so batch N+1 is being
// written (and N+2 accumulating) while batch N's fsync is in flight.
// Append blocks until its record is written AND fsynced; AppendAsync
// returns as soon as the record is sequenced and WaitDurable supplies
// the durability barrier separately, which lets a server apply an update
// to its in-memory state while the fsync is still in flight and only
// delay the client's ack — never visibility ordering — on the disk. A
// torn tail write (crash mid-record) is detected by length/CRC at Open
// and truncated away; corruption in any sealed (non-final) segment is an
// error, never silently skipped. Options.Inject mounts a fault-injection
// schedule (internal/faultfs) on every write/fsync/create path so tests
// prove those claims with real injected failures.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/faultfs"
	"repro/internal/graph"
)

const (
	// segMagicV1 opens legacy (term-less) segment files.
	segMagicV1 = "SPXWAL01"
	// segMagic opens every current-format segment file.
	segMagic = "SPXWAL02"
	// headerSize is the segment header: magic plus the first LSN.
	headerSize = len(segMagic) + 8
	// frameSize prefixes every record: payload length plus CRC.
	frameSize = 8
	// MaxRecordBytes bounds one record payload; larger lengths in a frame
	// indicate corruption, and larger deltas must be split by the caller.
	MaxRecordBytes = 1 << 26
	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes unset.
	DefaultSegmentBytes = 64 << 20
)

// castagnoli is the CRC32-C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the active one reaches
	// this size (checked between group commits). <= 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// BaseLSN seeds the LSN counter when the directory holds no records:
	// the first append gets BaseLSN+1. Use the LSN of the snapshot the
	// engine booted from so log and engine stay aligned. Ignored when the
	// directory already has records.
	BaseLSN uint64
	// Inject, when non-nil, is consulted before every write, fsync and
	// segment creation — the fault-injection hook tests use to fail I/O
	// on a schedule. Nil in production.
	Inject *faultfs.Injector
}

// Record is one logged delta.
type Record struct {
	LSN   uint64
	Term  uint64
	Delta graph.Delta
}

// segment tracks one on-disk segment file.
type segment struct {
	path    string
	first   uint64 // first LSN the segment stores (header-declared)
	last    uint64 // last LSN written, 0 while empty
	version int    // wire version from the header magic (1 legacy, 2 current)
}

// syncReq asks the syncer goroutine for one fsync of f. last, when
// non-zero, is the LSN the durable watermark advances to once the fsync
// succeeds. done, when non-nil, is closed after the request is handled —
// the writer's rotation barrier.
type syncReq struct {
	f    *os.File
	last uint64
	done chan struct{}
}

// WAL is an append-only log of deltas. All methods are safe for
// concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu   sync.Mutex
	cond *sync.Cond // guards + signals pending/durable/err transitions

	// pending holds encoded frames not yet handed to the writer;
	// pendingFirst/pendingLast are the LSN range inside it.
	pending      []byte
	pendingFirst uint64
	pendingLast  uint64

	next     uint64 // next LSN to assign
	durable  uint64 // highest LSN fsynced to disk
	term     uint64 // current term, stamped on every new record
	lastTerm uint64 // term of the newest record in the log (0 when empty)
	err      error  // sticky I/O failure; fails all later appends
	closed   bool

	active     *os.File
	activeSize int64
	segments   []segment

	// watch is closed and replaced every time durable advances, so
	// WaitSince can block without polling.
	watch chan struct{}

	// tail is an in-memory copy of the most recent records (encoded
	// delta payloads), so steady-state replication polls (Since/SinceRaw
	// for an almost-caught-up follower) never touch disk. Bounded by
	// tailMaxRecords/tailMaxBytes; older reads fall back to the segment
	// files.
	tail      []tailRec
	tailBytes int

	// skips holds the LSNs of records that were appended but then
	// rejected by the engine and intentionally skipped (RecordSkip) —
	// loaded from the sidecar skip-list file at Open.
	skips map[uint64]bool

	// writing marks an active commit leader: the one goroutine currently
	// allowed to drain pending and issue the write(). Leadership is
	// transient — an appender that finds no leader becomes one for a
	// single batch — with the flusher goroutine as the fallback for
	// records nobody is waiting on (AppendAsync stragglers).
	writing bool

	syncCh      chan syncReq
	flusherDone chan struct{}
	syncerDone  chan struct{}
}

// skipsFile names the sidecar in the log directory that durably records
// skipped LSNs, one decimal number per line.
const skipsFile = "skipped"

// termFile names the sidecar that persists the current term as one
// decimal number. Written atomically (and fsynced) BEFORE any record is
// stamped with a raised term, so a restart can never observe a record
// whose term exceeds the sidecar's.
const termFile = "term"

// tailRec is one in-memory record: the LSN, its term, and the encoded
// delta.
type tailRec struct {
	lsn   uint64
	term  uint64
	delta []byte
}

const (
	tailMaxRecords = 1024
	tailMaxBytes   = 4 << 20
)

// Open opens (creating if needed) the log in dir and recovers its tail: a
// torn or corrupt trailing record in the final segment is truncated away,
// while corruption in a sealed segment is an error. The returned WAL is
// ready to append at LSN DurableLSN()+1.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{
		dir: dir, opts: opts,
		watch:       make(chan struct{}),
		syncCh:      make(chan syncReq, 4),
		flusherDone: make(chan struct{}),
		syncerDone:  make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	if err := w.recover(); err != nil {
		return nil, err
	}
	if err := w.loadTerm(); err != nil {
		return nil, err
	}
	if err := w.loadSkips(); err != nil {
		return nil, err
	}
	w.registerGauges()
	go w.flusherLoop()
	go w.syncerLoop()
	return w, nil
}

// loadSkips reads the sidecar skip list (missing file = no skips).
func (w *WAL) loadSkips() error {
	data, err := os.ReadFile(filepath.Join(w.dir, skipsFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.skips = make(map[uint64]bool)
	for _, field := range strings.Fields(string(data)) {
		n, err := strconv.ParseUint(field, 10, 64)
		if err != nil {
			return fmt.Errorf("wal: skip list: bad entry %q", field)
		}
		w.skips[n] = true
	}
	return nil
}

// loadTerm restores the current term from its sidecar. A missing file —
// a fresh log, or one written before terms existed — starts at the term
// of the newest record (1 when the log is empty, matching how legacy
// records read back). A sidecar BEHIND the newest record's term breaks
// the write-sidecar-first invariant and can only mean mispaired files,
// so it is an error, not something to repair silently.
func (w *WAL) loadTerm() error {
	w.term = w.lastTerm
	if w.term == 0 {
		w.term = 1
	}
	data, err := os.ReadFile(filepath.Join(w.dir, termFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	n, perr := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if perr != nil || n == 0 {
		return fmt.Errorf("wal: term sidecar: bad entry %q", strings.TrimSpace(string(data)))
	}
	if n < w.lastTerm {
		return fmt.Errorf("wal: term sidecar says %d but the log holds a record at term %d — mispaired directory", n, w.lastTerm)
	}
	w.term = n
	return nil
}

// Term returns the log's current term: the one every new record is
// stamped with. Starts at 1 and only moves up (SetTerm).
func (w *WAL) Term() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.term
}

// LastTerm returns the term of the newest record in the log, or 0 when
// the log holds no records. It can lag Term: SetTerm raises the current
// term before any record carries it.
func (w *WAL) LastTerm() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastTerm
}

// SetTerm raises the current term to t, durably (sidecar write +
// fsync) before returning; every later append is stamped with t. A
// promotion is exactly SetTerm(Term()+1) on the winning follower's
// local log. Lowering the term is refused — terms are the fencing
// order, and regressing one would let a zombie's records interleave as
// if current. Setting the current term again is a no-op.
func (w *WAL) SetTerm(t uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	if t < w.term {
		return fmt.Errorf("wal: term regression: have %d, asked to set %d", w.term, t)
	}
	if t == w.term {
		return nil
	}
	return w.setTermLocked(t)
}

// setTermLocked persists and adopts a raised term. Caller holds w.mu. A
// failed sidecar write poisons the log: records stamped with an
// unpersisted term would read back as "from the future" after a
// restart.
func (w *WAL) setTermLocked(t uint64) error {
	if err := atomicfile.Write(filepath.Join(w.dir, termFile), []byte(strconv.FormatUint(t, 10)+"\n")); err != nil {
		w.err = fmt.Errorf("wal: term write failed, log poisoned (records would carry an unpersisted term): %w", err)
		w.wakeAll()
		return w.err
	}
	w.term = t
	return nil
}

// RecordSkip durably notes that the record at lsn was appended but then
// rejected by the engine and intentionally skipped — the "record the
// gap" half of the skip protocol. Replay (semprox.ReplayWAL) reproduces
// a rejection of a RECORDED LSN as the primary's own skip; a rejection
// of an unrecorded LSN stays a hard error, the guard against replaying
// a log directory that does not belong to the booted snapshot. The note
// is fsynced before RecordSkip returns.
//
// The whole list is rewritten atomically (atomicfile: temp + fsync +
// rename) rather than appended in place: a crash mid-append could leave
// a torn entry with no delimiter, and the next append would concatenate
// onto it ("1" + "20\n" parses as LSN 120) — a wrong LSN recorded as
// skippable while the real one stays a boot-wedging hard error. Skips
// are rare enough that rewriting the tiny file costs nothing.
//
// A RecordSkip failure poisons the log (Err turns non-nil, Append
// refuses, a primary's /readyz flips to wal_failed): the log now holds a
// durable record whose skip is NOT durably recorded, so continuing to
// serve would re-arm the boot-wedging state the skip protocol exists to
// remove — the operator must see it now, not at the next boot.
func (w *WAL) RecordSkip(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.skips[lsn] {
		return nil
	}
	if w.err != nil {
		// Never rewrite the sidecar from a map that may be behind the disk
		// state a partially-failed rewrite left (rename committed, dir
		// sync failed): that could erase a durably recorded skip.
		return w.err
	}
	lsns := make([]uint64, 0, len(w.skips)+1)
	for s := range w.skips {
		lsns = append(lsns, s)
	}
	lsns = append(lsns, lsn)
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	var sb strings.Builder
	for _, s := range lsns {
		fmt.Fprintf(&sb, "%d\n", s)
	}
	if err := atomicfile.Write(filepath.Join(w.dir, skipsFile), []byte(sb.String())); err != nil {
		w.err = fmt.Errorf("wal: skip list write failed, log poisoned (a durable record's skip is not durably recorded): %w", err)
		// Blocked appenders and WaitSince pollers must observe the sticky
		// error now: an appender whose batch the writer has not yet picked
		// up would otherwise wait forever, because the loops' error-exit
		// paths return without another broadcast.
		w.wakeAll()
		return w.err
	}
	if w.skips == nil {
		w.skips = make(map[uint64]bool)
	}
	w.skips[lsn] = true
	return nil
}

// Skipped reports whether lsn is in the durable skip list.
func (w *WAL) Skipped(lsn uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.skips[lsn]
}

// segmentPath names the segment whose first record is lsn.
func (w *WAL) segmentPath(lsn uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("wal-%016x.seg", lsn))
}

// parseSegmentName extracts the first-LSN of a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recover scans the directory, validates every segment, truncates a torn
// tail, and positions the log for appending. A legacy-format final
// segment is sealed (its torn tail still truncated) and a fresh
// current-format segment opened after it, so new records never extend a
// legacy file.
func (w *WAL) recover() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		w.segments = append(w.segments, segment{path: filepath.Join(w.dir, e.Name()), first: first})
	}
	sort.Slice(w.segments, func(i, j int) bool { return w.segments[i].first < w.segments[j].first })

	// A crash between rotate's segment creation and its first write (or
	// header fsync) can leave a trailing segment shorter than its header.
	// That is a torn creation, not data: drop it and let the previous
	// segment resume as the active one (rotation will simply re-trigger).
	for len(w.segments) > 0 {
		last := w.segments[len(w.segments)-1]
		st, err := os.Stat(last.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if st.Size() >= int64(headerSize) {
			break
		}
		if err := os.Remove(last.path); err != nil {
			return fmt.Errorf("wal: drop torn segment: %w", err)
		}
		if err := syncDir(w.dir); err != nil {
			return err
		}
		w.segments = w.segments[:len(w.segments)-1]
	}

	if len(w.segments) == 0 {
		return w.openFresh(w.opts.BaseLSN + 1)
	}

	expect := w.segments[0].first
	var prevSegTerm uint64
	for i := range w.segments {
		seg := &w.segments[i]
		if seg.first != expect {
			return fmt.Errorf("wal: segment %s starts at LSN %d, want %d (missing segment?)",
				seg.path, seg.first, expect)
		}
		final := i == len(w.segments)-1
		var firstTerm, segLastTerm uint64
		size, last, version, err := scanSegment(seg.path, seg.first, !final, func(lsn, term uint64, body []byte) bool {
			if firstTerm == 0 {
				firstTerm = term
			}
			segLastTerm = term
			return true
		})
		if err != nil {
			return err
		}
		// scanSegment enforces term order within one segment; the
		// boundary between segments is checked here.
		if firstTerm > 0 && firstTerm < prevSegTerm {
			return fmt.Errorf("wal: segment %s: first record term %d regresses from %d — mixed log directories?",
				seg.path, firstTerm, prevSegTerm)
		}
		if segLastTerm > prevSegTerm {
			prevSegTerm = segLastTerm
		}
		seg.last = last
		seg.version = version
		if final {
			// Truncate a torn tail (no-op when the scan consumed the whole
			// file). Current-format segments reopen for appending; a legacy
			// final segment is sealed here and a fresh segment created below.
			f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			if st, err := f.Stat(); err != nil {
				f.Close()
				return fmt.Errorf("wal: %w", err)
			} else if st.Size() > size {
				if err := f.Truncate(size); err != nil {
					f.Close()
					return fmt.Errorf("wal: truncate torn tail of %s: %w", seg.path, err)
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return fmt.Errorf("wal: %w", err)
				}
			}
			if version == 2 {
				if _, err := f.Seek(size, 0); err != nil {
					f.Close()
					return fmt.Errorf("wal: %w", err)
				}
				w.active = f
				w.activeSize = size
			} else if err := f.Close(); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
		if last > 0 {
			expect = last + 1
		}
	}
	// expect accumulated to lastRecorded+1 (or stayed at the first
	// segment's declared first when the log holds no records yet): the
	// next append continues exactly where the disk state ends.
	w.next = expect
	w.durable = expect - 1
	w.lastTerm = prevSegTerm

	if w.segments[len(w.segments)-1].version != 2 {
		// Legacy active segment, now sealed. If it holds no records its
		// name collides with the fresh segment's (same first LSN): drop
		// it — an empty legacy tail is pure header, not data.
		if tail := &w.segments[len(w.segments)-1]; tail.last == 0 && tail.first == expect {
			if err := os.Remove(tail.path); err != nil {
				return fmt.Errorf("wal: drop empty legacy segment: %w", err)
			}
			if err := syncDir(w.dir); err != nil {
				return err
			}
			w.segments = w.segments[:len(w.segments)-1]
		}
		if len(w.segments) == 0 {
			return w.openFresh(expect)
		}
		f, size, err := createSegment(w.segmentPath(expect), expect, w.opts.Inject)
		if err != nil {
			return err
		}
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return err
		}
		w.active = f
		w.activeSize = size
		w.segments = append(w.segments, segment{path: f.Name(), first: expect, version: 2})
	}
	return nil
}

// openFresh creates the first segment of an empty log.
func (w *WAL) openFresh(first uint64) error {
	f, size, err := createSegment(w.segmentPath(first), first, w.opts.Inject)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.activeSize = size
	w.segments = []segment{{path: f.Name(), first: first, version: 2}}
	w.next = first
	w.durable = first - 1
	return nil
}

// createSegment writes a new current-format segment file with its
// header, fsynced.
func createSegment(path string, first uint64, inject *faultfs.Injector) (*os.File, int64, error) {
	if err := inject.Check(faultfs.OpCreate); err != nil {
		return nil, 0, fmt.Errorf("wal: create segment: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, segMagic...)
	hdr = binary.BigEndian.AppendUint64(hdr, first)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	return f, int64(headerSize), nil
}

// syncDir fsyncs a directory so freshly created/removed names survive a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Append encodes d as the next record, hands it to the commit pipeline,
// and blocks until the record is written and fsynced. It returns the
// record's LSN. Concurrent appenders share fsyncs: all records that
// accumulate while one sync is in flight commit with the next single
// sync.
func (w *WAL) Append(d graph.Delta) (uint64, error) {
	body, err := encodeRecord(d)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("wal: closed")
	}
	lsn := w.next
	w.enqueueLocked(lsn, w.term, body)
	walAppends.Inc()
	if !w.writing {
		w.leadOnceLocked()
	}
	for w.err == nil && w.durable < lsn {
		w.cond.Wait()
	}
	if w.durable >= lsn {
		return lsn, nil
	}
	return 0, w.err
}

// encodeRecord validates and encodes one delta for appending. A record
// is only durable if it is also replayable: the decoder enforces bounds
// the encoder does not (per-string size caps), and an acknowledged
// record replay later rejects would make the log permanently
// unreplayable. ValidateDelta checks those bounds before the encode
// pays for an allocation the rejection would waste.
func encodeRecord(d graph.Delta) ([]byte, error) {
	if err := graph.ValidateDelta(d); err != nil {
		return nil, fmt.Errorf("wal: delta would not survive replay: %w", err)
	}
	body := graph.EncodeDelta(d)
	if len(body)+2*binary.MaxVarintLen64 > MaxRecordBytes {
		return nil, fmt.Errorf("wal: delta encodes to %d bytes, limit %d", len(body), MaxRecordBytes)
	}
	return body, nil
}

// AppendAsync sequences d as the next record — assigning its LSN,
// stamping the current term, and handing it to the commit pipeline —
// without waiting for the fsync. The record WILL become durable (or the
// log fail sticky) without further calls; WaitDurable(lsn) is the
// barrier to pass before acknowledging anything that depends on it.
// Decoupling the two lets a caller overlap its own work (applying the
// update in memory) with the disk flush.
func (w *WAL) AppendAsync(d graph.Delta) (uint64, error) {
	body, err := encodeRecord(d)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("wal: closed")
	}
	lsn := w.next
	w.enqueueLocked(lsn, w.term, body)
	walAppends.Inc()
	// Hand the batch to the flusher rather than leading inline: an async
	// appender is a stream, and the records it enqueues while the
	// flusher is writing the previous batch become the next convoy — one
	// fsync for all of them. (Blocking Append leads inline instead: it
	// is about to park anyway, and self-leading saves a handoff.)
	w.cond.Broadcast()
	return lsn, nil
}

// AppendRawBatch appends already-encoded records carrying their own
// LSNs and terms — the follower-local log path, where the primary (not
// this log) assigned both. The batch must continue this log exactly:
// contiguous LSNs from NextLSN, terms non-decreasing from LastTerm. A
// batch term above the current term adopts it durably (sidecar first)
// before any record carries it. One fsync covers the whole batch;
// AppendRawBatch returns once every record is durable.
func (w *WAL) AppendRawBatch(recs []RawRecord) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	expect, term := w.next, w.lastTerm
	for _, r := range recs {
		if r.LSN != expect {
			return fmt.Errorf("wal: raw batch LSN %d, want %d", r.LSN, expect)
		}
		if r.Term == 0 {
			return fmt.Errorf("wal: raw batch LSN %d carries no term", r.LSN)
		}
		if r.Term < term {
			return fmt.Errorf("wal: raw batch LSN %d term %d regresses from %d", r.LSN, r.Term, term)
		}
		if len(r.Delta)+2*binary.MaxVarintLen64 > MaxRecordBytes {
			return fmt.Errorf("wal: raw batch LSN %d encodes to %d bytes, limit %d", r.LSN, len(r.Delta), MaxRecordBytes)
		}
		expect, term = r.LSN+1, r.Term
	}
	if term > w.term {
		if err := w.setTermLocked(term); err != nil {
			return err
		}
	}
	for _, r := range recs {
		w.enqueueLocked(r.LSN, r.Term, r.Delta)
	}
	walAppends.Add(uint64(len(recs)))
	if !w.writing {
		w.leadOnceLocked()
	}
	last := recs[len(recs)-1].LSN
	for w.err == nil && w.durable < last {
		w.cond.Wait()
	}
	if w.durable >= last {
		return nil
	}
	return w.err
}

// enqueueLocked frames one record into the pending buffer and the
// in-memory tail, advances the LSN counter, and wakes the writer.
// Caller holds w.mu and has validated lsn == w.next and term ordering.
func (w *WAL) enqueueLocked(lsn, term uint64, body []byte) {
	payload := binary.AppendUvarint(make([]byte, 0, 2*binary.MaxVarintLen64+len(body)), lsn)
	payload = binary.AppendUvarint(payload, term)
	payload = append(payload, body...)
	w.next = lsn + 1
	if len(w.pending) == 0 {
		w.pendingFirst = lsn
	}
	var frame [frameSize]byte
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	w.pending = append(append(w.pending, frame[:]...), payload...)
	w.pendingLast = lsn
	w.lastTerm = term
	w.tail = append(w.tail, tailRec{lsn: lsn, term: term, delta: body})
	w.tailBytes += len(body)
	for len(w.tail) > tailMaxRecords || (w.tailBytes > tailMaxBytes && len(w.tail) > 1) {
		w.tailBytes -= len(w.tail[0].delta)
		w.tail = w.tail[1:]
	}
}

// WaitDurable blocks until the record at lsn is written and fsynced,
// returning nil, or the log fails sticky first, returning why. lsn must
// have been assigned (returned by AppendAsync/Append) — waiting on an
// LSN the log never sequenced is refused rather than left to block
// forever.
func (w *WAL) WaitDurable(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn >= w.next {
		return fmt.Errorf("wal: WaitDurable(%d): LSN not assigned (next is %d)", lsn, w.next)
	}
	for w.err == nil && w.durable < lsn {
		w.cond.Wait()
	}
	if w.durable >= lsn {
		return nil
	}
	return w.err
}

// leadOnceLocked is the first pipeline stage: the calling goroutine
// becomes the commit leader for exactly one batch — drains pending,
// rotates segments at the size threshold, issues the write(), and hands
// the batch to the syncer. It does NOT wait for the fsync: while the
// syncer flushes batch N, the next leader is already writing batch N+1
// and appenders are accumulating N+2, which is what lets one fsync
// commit a whole convoy instead of collapsing to one record per sync
// under lock-step wakeups. Running in the appender itself (rather than
// a dedicated writer goroutine) keeps the uncontended single-writer
// path at the same two goroutine handoffs the non-pipelined design
// paid. Caller holds w.mu with w.writing false, pending non-empty and
// err nil; returns with w.mu held.
func (w *WAL) leadOnceLocked() {
	w.writing = true
	batch := w.pending
	first, last := w.pendingFirst, w.pendingLast
	w.pending = nil
	rotate := w.activeSize >= w.opts.SegmentBytes
	w.mu.Unlock()

	var failure error
	if rotate {
		failure = w.rotate(first)
	}
	if failure == nil {
		n := len(batch)
		var werr error
		if w.opts.Inject != nil {
			n, werr = w.opts.Inject.CheckWrite(len(batch))
		}
		if n > 0 {
			if _, err := w.active.Write(batch[:n]); err != nil && werr == nil {
				werr = err
			}
		}
		if werr != nil {
			failure = fmt.Errorf("wal: write: %w", werr)
		}
	}
	if failure != nil {
		w.mu.Lock()
		w.writing = false
		if w.err == nil {
			w.err = failure
		}
		w.wakeAll()
		return
	}
	walBatch.Observe(int64(last - first + 1))
	w.mu.Lock()
	w.activeSize += int64(len(batch))
	w.segments[len(w.segments)-1].last = last
	f := w.active
	w.mu.Unlock()
	// Leadership is held across the send: it guarantees sync requests
	// are queued in write order and that no request for a sealed file
	// can land behind a rotation barrier.
	w.syncCh <- syncReq{f: f, last: last}
	w.mu.Lock()
	w.writing = false
	// Wake the flusher (and Close) to pick up records that arrived
	// while this batch was being written.
	w.cond.Broadcast()
}

// flusherLoop is the fallback commit leader: it drains records no
// appender is positioned to lead — AppendAsync stragglers enqueued
// while another leader was mid-write — and performs the final drain at
// Close. It parks unless there is work only it can pick up.
func (w *WAL) flusherLoop() {
	defer close(w.flusherDone)
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.err != nil || (w.closed && len(w.pending) == 0) {
			return
		}
		if len(w.pending) > 0 && !w.writing {
			w.leadOnceLocked()
			continue
		}
		w.cond.Wait()
	}
}

// syncerLoop is the second pipeline stage: it coalesces every queued
// request into one fsync, advances the durable watermark to the group's
// maximum, and wakes all waiters. Once the log fails sticky it keeps
// draining the queue (closing barriers) but touches the disk no
// further.
func (w *WAL) syncerLoop() {
	defer close(w.syncerDone)
	for {
		req, ok := <-w.syncCh
		if !ok {
			return
		}
		reqs := []syncReq{req}
		chClosed := false
	drain:
		for {
			select {
			case r, ok := <-w.syncCh:
				if !ok {
					chClosed = true
					break drain
				}
				reqs = append(reqs, r)
			default:
				break drain
			}
		}
		w.syncReqs(reqs)
		if chClosed {
			return
		}
	}
}

// syncReqs performs one coalesced fsync. Every request in the group
// references the same file: rotation waits on a barrier request before
// sealing, and leadership is exclusive, so requests for two different
// files can never be queued at once.
func (w *WAL) syncReqs(reqs []syncReq) {
	w.mu.Lock()
	bad := w.err != nil
	w.mu.Unlock()
	if !bad {
		err := w.opts.Inject.Check(faultfs.OpSync)
		if err == nil {
			start := time.Now()
			err = reqs[0].f.Sync()
			walFsync.Since(start)
		}
		w.mu.Lock()
		if err != nil {
			if w.err == nil {
				w.err = fmt.Errorf("wal: fsync: %w", err)
			}
			w.wakeAll()
		} else {
			advanced := false
			for _, r := range reqs {
				if r.last > w.durable {
					w.durable = r.last
					advanced = true
				}
			}
			if advanced {
				w.wakeAll()
			}
		}
		w.mu.Unlock()
	}
	for _, r := range reqs {
		if r.done != nil {
			close(r.done)
		}
	}
}

// wakeAll wakes everything blocked on the log — appenders in cond.Wait
// and WaitSince pollers parked on the watch channel — so they re-examine
// durable/err/closed state. Every state change those waiters observe
// (durability advancing, a sticky failure, close) must go through here:
// a path that mutates state without waking can strand a waiter forever.
// Callers hold w.mu.
func (w *WAL) wakeAll() {
	w.cond.Broadcast()
	close(w.watch)
	w.watch = make(chan struct{})
}

// rotate seals the active segment and opens a fresh one whose first
// record will be firstLSN. Called only from writerLoop. The sync
// barrier — an empty request the syncer acknowledges — drains every
// in-flight fsync of the old file before it is closed: the pipeline
// must not leave the syncer holding a handle the writer is sealing.
func (w *WAL) rotate(firstLSN uint64) error {
	done := make(chan struct{})
	w.syncCh <- syncReq{f: w.active, done: done}
	<-done
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync before rotate: %w", err)
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("wal: close sealed segment: %w", err)
	}
	f, size, err := createSegment(w.segmentPath(firstLSN), firstLSN, w.opts.Inject)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.mu.Lock()
	w.active = f
	w.activeSize = size
	w.segments = append(w.segments, segment{path: f.Name(), first: firstLSN, version: 2})
	w.mu.Unlock()
	return nil
}

// Err reports why the log can no longer accept appends: the sticky I/O
// failure from a failed write/fsync (every Append fails until restart),
// or a closed-log error after Close. Nil while the log is healthy.
// Serving layers use it to drop readiness on a write-dead primary.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	return nil
}

// DurableLSN returns the highest LSN fsynced to disk (0 for an empty
// log): everything up to and including it survives a crash.
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// NextLSN returns the LSN the next Append will be assigned.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// FirstLSN returns the lowest LSN still present in the log, or 0 when the
// log holds no records (everything was truncated or nothing was ever
// appended).
func (w *WAL) FirstLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range w.segments {
		if s.last > 0 {
			return s.first
		}
	}
	return 0
}

// SegmentCount reports how many segment files the log currently spans.
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segments)
}

// TruncateThrough deletes every sealed segment whose records are all
// <= lsn — call it after a snapshot at LSN lsn made that prefix
// redundant. The active segment is never deleted.
func (w *WAL) TruncateThrough(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.segments[:0]
	removed := false
	for i, s := range w.segments {
		sealed := i < len(w.segments)-1
		// A sealed segment's range is [s.first, next segment's first - 1]
		// even if it holds no records; s.last covers the recorded case.
		end := s.last
		if sealed {
			if n := w.segments[i+1].first; n > 0 {
				end = n - 1
			}
		}
		if sealed && end <= lsn {
			if err := os.Remove(s.path); err != nil {
				w.segments = append(kept, w.segments[i:]...)
				return fmt.Errorf("wal: truncate: %w", err)
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	w.segments = kept
	if removed {
		return syncDir(w.dir)
	}
	return nil
}

// Close flushes every pending append, stops the commit pipeline, and
// closes the active segment. Appends issued after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	// Wait out the active leader (it may be mid-send on syncCh) and let
	// the flusher drain what is still pending; on a sticky error the
	// pending records are lost anyway and only the leader matters.
	for w.writing || (w.err == nil && len(w.pending) > 0) {
		w.cond.Wait()
	}
	w.mu.Unlock()
	<-w.flusherDone
	close(w.syncCh)
	<-w.syncerDone
	w.mu.Lock()
	err := w.err
	w.wakeAll() // WaitSince pollers observe closed
	w.mu.Unlock()
	if cerr := w.active.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}
