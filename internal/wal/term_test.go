package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestTermStampsAndSurvivesRestart: records carry the term current at
// their append, SetTerm raises it durably (sidecar first), and a reopen
// restores both the current term and every record's stamped term.
func TestTermStampsAndSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Term(); got != 1 {
		t.Fatalf("fresh log term = %d, want 1", got)
	}
	if got := w.LastTerm(); got != 0 {
		t.Fatalf("empty log LastTerm = %d, want 0", got)
	}
	appendN(t, w, 2, 1)
	if err := w.SetTerm(3); err != nil {
		t.Fatal(err)
	}
	if got := w.Term(); got != 3 {
		t.Fatalf("term after SetTerm(3) = %d", got)
	}
	if got := w.LastTerm(); got != 1 {
		t.Fatalf("LastTerm before any term-3 record = %d, want 1", got)
	}
	appendN(t, w, 2, 3)
	if got := w.LastTerm(); got != 3 {
		t.Fatalf("LastTerm = %d, want 3", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Term(); got != 3 {
		t.Fatalf("reopened term = %d, want 3", got)
	}
	wantTerms := []uint64{1, 1, 3, 3}
	for i, r := range collect(t, w2, 0) {
		if r.Term != wantTerms[i] {
			t.Fatalf("record %d: term %d, want %d", r.LSN, r.Term, wantTerms[i])
		}
	}
	for lsn, want := range map[uint64]uint64{1: 1, 2: 1, 3: 3, 4: 3} {
		if got, ok := w2.TermAt(lsn); !ok || got != want {
			t.Fatalf("TermAt(%d) = %d, %v; want %d", lsn, got, ok, want)
		}
	}
	if _, ok := w2.TermAt(5); ok {
		t.Fatal("TermAt past the durable end reported ok")
	}
	if _, ok := w2.TermAt(0); ok {
		t.Fatal("TermAt(0) reported ok")
	}
}

// TestSetTermRefusesRegression: terms are the fencing order — lowering
// one would let a zombie's records interleave as current.
func TestSetTermRefusesRegression(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.SetTerm(4); err != nil {
		t.Fatal(err)
	}
	if err := w.SetTerm(2); err == nil {
		t.Fatal("term regression accepted")
	}
	if err := w.SetTerm(4); err != nil {
		t.Fatalf("re-setting the current term must be a no-op, got %v", err)
	}
}

// TestOpenRejectsMispairedTermSidecar: a term sidecar BEHIND the newest
// record's term violates the sidecar-before-record invariant and can
// only mean mixed log directories — Open must refuse, not repair.
func TestOpenRejectsMispairedTermSidecar(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetTerm(5); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, termFile), []byte("2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("sidecar behind the log's records accepted")
	}
}

// TestOpenRejectsTermRegressionInLog: a record whose term is lower than
// its predecessor's is corruption or a zombie's interleaved writes —
// never a recoverable tail. Doctor a valid segment (correct CRC, correct
// LSN order, decremented term) and Open must fail.
func TestOpenRejectsTermRegressionInLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0000000000000001.seg")
	var buf []byte
	buf = append(buf, segMagic...)
	buf = binary.BigEndian.AppendUint64(buf, 1)
	terms := []uint64{3, 2} // regression
	for i, term := range terms {
		payload := binary.AppendUvarint(nil, uint64(i+1))
		payload = binary.AppendUvarint(payload, term)
		payload = append(payload, graph.EncodeDelta(delta(i))...)
		var frame [frameSize]byte
		binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
		buf = append(append(buf, frame[:]...), payload...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{})
	if err == nil {
		t.Fatal("term regression inside a segment accepted")
	}
	if !strings.Contains(err.Error(), "regresses") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

// TestLegacyV1SegmentReadsAsTermOne: a log written by the term-less v1
// format reopens in place — its records read back as term 1, the legacy
// active segment is sealed, and new records land in a fresh v2 segment.
func TestLegacyV1SegmentReadsAsTermOne(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0000000000000001.seg")
	var buf []byte
	buf = append(buf, segMagicV1...)
	buf = binary.BigEndian.AppendUint64(buf, 1)
	for i := 0; i < 3; i++ {
		payload := binary.AppendUvarint(nil, uint64(i+1)) // v1: no term varint
		payload = append(payload, graph.EncodeDelta(delta(i))...)
		var frame [frameSize]byte
		binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
		buf = append(append(buf, frame[:]...), payload...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("legacy log rejected: %v", err)
	}
	if got := w.DurableLSN(); got != 3 {
		t.Fatalf("durable = %d, want 3", got)
	}
	if got := w.Term(); got != 1 {
		t.Fatalf("term = %d, want 1", got)
	}
	for _, r := range collect(t, w, 0) {
		if r.Term != 1 {
			t.Fatalf("legacy record %d read back at term %d, want 1", r.LSN, r.Term)
		}
	}
	// Appends continue past the sealed legacy segment in a new v2 one;
	// promotion (SetTerm) works on the upgraded log.
	if n := w.SegmentCount(); n != 2 {
		t.Fatalf("segments = %d, want 2 (sealed v1 + fresh v2)", n)
	}
	appendN(t, w, 1, 4)
	if err := w.SetTerm(2); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2, 0)
	wantTerms := []uint64{1, 1, 1, 1, 2}
	if len(recs) != len(wantTerms) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(wantTerms))
	}
	for i, r := range recs {
		if r.Term != wantTerms[i] {
			t.Fatalf("record %d: term %d, want %d", r.LSN, r.Term, wantTerms[i])
		}
	}
}

// TestAppendRawBatchRules: the follower-local append path must demand
// contiguous LSNs and non-decreasing non-zero terms, and adopt a higher
// batch term durably.
func TestAppendRawBatchRules(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc := func(i int) []byte { return graph.EncodeDelta(delta(i)) }
	if err := w.AppendRawBatch([]RawRecord{
		{LSN: 1, Term: 1, Delta: enc(0)},
		{LSN: 2, Term: 2, Delta: enc(1)},
	}); err != nil {
		t.Fatal(err)
	}
	if got := w.Term(); got != 2 {
		t.Fatalf("batch term 2 not adopted: term = %d", got)
	}
	if got := w.DurableLSN(); got != 2 {
		t.Fatalf("AppendRawBatch returned before durability: durable = %d", got)
	}
	for _, bad := range [][]RawRecord{
		{{LSN: 5, Term: 2, Delta: enc(2)}},                                   // gap
		{{LSN: 3, Term: 0, Delta: enc(2)}},                                   // no term
		{{LSN: 3, Term: 1, Delta: enc(2)}},                                   // term regression
		{{LSN: 3, Term: 2, Delta: enc(2)}, {LSN: 3, Term: 2, Delta: enc(3)}}, // dup LSN in batch
	} {
		if err := w.AppendRawBatch(bad); err == nil {
			t.Fatalf("bad batch %+v accepted", bad)
		}
	}
	// The good path still works after rejections.
	if err := w.AppendRawBatch([]RawRecord{{LSN: 3, Term: 2, Delta: enc(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Term(); got != 2 {
		t.Fatalf("adopted term lost across reopen: %d", got)
	}
}
