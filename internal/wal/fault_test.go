package wal

import (
	"errors"
	"testing"

	"repro/internal/faultfs"
)

// TestInjectedFsyncFailureNeverAcks is the ack-discipline regression test:
// an append whose fsync fails must return the error (never an LSN the
// caller would treat as durable), poison the log sticky, and leave every
// PREVIOUSLY acked record replayable after reopen.
func TestInjectedFsyncFailureNeverAcks(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New()
	// Serial appends sync once per record: skip the first three, fail the
	// fourth — and every later one, in case the pipeline retries.
	inj.Arm(faultfs.Rule{Op: faultfs.OpSync, After: 3, Times: 1 << 30})
	w, err := Open(dir, Options{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 3, 1)
	if _, err := w.Append(delta(3)); err == nil {
		t.Fatal("append acked with its fsync failed")
	}
	if w.Err() == nil {
		t.Fatal("failed fsync did not poison the log")
	}
	if _, err := w.Append(delta(4)); err == nil {
		t.Fatal("append accepted on a poisoned log")
	}
	w.Close()

	// Reopen clean: the three acked records are there; whether the fourth
	// survived is the disk's business (its write may have landed), but the
	// durable prefix must contain everything that was acked.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.DurableLSN(); got < 3 {
		t.Fatalf("reopened durable = %d, want >= 3 (acked records lost)", got)
	}
	recs := collect(t, w2, 0)
	if len(recs) < 3 || recs[0].LSN != 1 || recs[2].LSN != 3 {
		t.Fatalf("acked records lost across reopen: %+v", recs)
	}
}

// TestInjectedTornWriteLosesOnlyUnacked tears a write mid-record — the
// shape a crash mid-write leaves — and proves the contract from both
// sides: the torn append was never acked, AND after reopen the torn
// bytes are truncated away, the acked prefix is intact, and the log
// appends onward from exactly where the acked history ends.
func TestInjectedTornWriteLosesOnlyUnacked(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New()
	inj.Arm(faultfs.Rule{Op: faultfs.OpWrite, After: 2, TearBytes: 5, Err: errors.New("injected torn write")})
	w, err := Open(dir, Options{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 2, 1)
	if _, err := w.Append(delta(2)); err == nil {
		t.Fatal("append acked with only 5 of its bytes written")
	}
	if w.Err() == nil {
		t.Fatal("torn write did not poison the log")
	}
	w.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over a torn tail: %v", err)
	}
	defer w2.Close()
	if got := w2.DurableLSN(); got != 2 {
		t.Fatalf("reopened durable = %d, want 2 (torn record must not count)", got)
	}
	if recs := collect(t, w2, 0); len(recs) != 2 {
		t.Fatalf("acked prefix damaged: %+v", recs)
	}
	// The healed log resumes at LSN 3 — the torn record's LSN is reused,
	// which is correct: it was never acknowledged to anyone.
	appendN(t, w2, 1, 3)
}

// TestWaitDurableSurfacesInjectedFailure pins the pipelined ack barrier:
// AppendAsync hands out the LSN before the fsync, so WaitDurable — the
// gate the server holds every client ack behind — must report the
// injected fsync failure instead of returning success or hanging.
func TestWaitDurableSurfacesInjectedFailure(t *testing.T) {
	inj := faultfs.New()
	inj.Arm(faultfs.Rule{Op: faultfs.OpSync, Times: 1 << 30})
	w, err := Open(t.TempDir(), Options{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lsn, err := w.AppendAsync(delta(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err == nil {
		t.Fatal("WaitDurable returned success for a record whose fsync failed")
	}
	// An LSN the log never assigned is refused, not left to block forever.
	if err := w.WaitDurable(lsn + 10); err == nil {
		t.Fatal("WaitDurable accepted an unassigned LSN")
	}
}

// TestInjectedCreateFailurePoisonsRotation: a segment-creation failure at
// the rotation boundary must fail the append that triggered it, sticky.
func TestInjectedCreateFailurePoisonsRotation(t *testing.T) {
	inj := faultfs.New()
	// The first create (Open's fresh segment) succeeds; the rotation's
	// create fails.
	inj.Arm(faultfs.Rule{Op: faultfs.OpCreate, After: 1, Times: 1 << 30})
	w, err := Open(t.TempDir(), Options{SegmentBytes: 64, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var lastErr error
	for i := 0; i < 20 && lastErr == nil; i++ {
		_, lastErr = w.Append(delta(i))
	}
	if lastErr == nil {
		t.Fatal("20 appends at 64-byte rotation never hit the injected create failure")
	}
	if w.Err() == nil {
		t.Fatal("failed rotation did not poison the log")
	}
}
