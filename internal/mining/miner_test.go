package mining

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/metagraph"
)

// buildAttributeGraph plants a small attribute graph: users attached to
// shared schools and hobbies, so that user–school–user and
// user–hobby–user patterns (and their joins) are frequent.
func buildAttributeGraph(t testing.TB, users, schools, hobbies int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	b.Types().Register("user")
	b.Types().Register("school")
	b.Types().Register("hobby")
	us := make([]graph.NodeID, users)
	for i := range us {
		us[i] = b.AddNode("user", fmt.Sprintf("u%d", i))
	}
	ss := make([]graph.NodeID, schools)
	for i := range ss {
		ss[i] = b.AddNode("school", fmt.Sprintf("s%d", i))
	}
	hs := make([]graph.NodeID, hobbies)
	for i := range hs {
		hs[i] = b.AddNode("hobby", fmt.Sprintf("h%d", i))
	}
	for _, u := range us {
		b.AddEdge(u, ss[rng.Intn(schools)])
		b.AddEdge(u, hs[rng.Intn(hobbies)])
		if rng.Intn(2) == 0 {
			b.AddEdge(u, hs[rng.Intn(hobbies)])
		}
	}
	return b.MustBuild()
}

func TestMineFindsMetapath(t *testing.T) {
	g := buildAttributeGraph(t, 30, 3, 3, 1)
	pats := Mine(g, Options{MaxNodes: 3, MinSupport: 2})
	if len(pats) == 0 {
		t.Fatal("no patterns mined")
	}
	// user–school–user must be among them.
	tUser := g.Types().ID("user")
	tSchool := g.Types().ID("school")
	want := metagraph.MustNew([]graph.TypeID{tUser, tSchool, tUser},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	found := false
	for _, p := range pats {
		if metagraph.Isomorphic(p.M, want) {
			found = true
			if p.Support < 2 {
				t.Fatalf("support %d < threshold", p.Support)
			}
		}
	}
	if !found {
		t.Fatal("user–school–user not mined")
	}
}

func TestMineDeduplicates(t *testing.T) {
	g := buildAttributeGraph(t, 20, 2, 2, 2)
	pats := Mine(g, Options{MaxNodes: 4, MinSupport: 2})
	seen := make(map[string]bool)
	for _, p := range pats {
		key := p.M.Canonical()
		if seen[key] {
			t.Fatalf("duplicate pattern %v", p.M)
		}
		seen[key] = true
	}
}

func TestMineRespectsMaxNodes(t *testing.T) {
	g := buildAttributeGraph(t, 20, 2, 2, 3)
	for _, maxN := range []int{2, 3, 4} {
		for _, p := range Mine(g, Options{MaxNodes: maxN, MinSupport: 2}) {
			if p.M.N() > maxN {
				t.Fatalf("pattern %v exceeds MaxNodes=%d", p.M, maxN)
			}
		}
	}
}

func TestMineSupportThreshold(t *testing.T) {
	g := buildAttributeGraph(t, 30, 3, 3, 4)
	lo := Mine(g, Options{MaxNodes: 3, MinSupport: 2})
	hi := Mine(g, Options{MaxNodes: 3, MinSupport: 15})
	if len(hi) > len(lo) {
		t.Fatalf("higher threshold mined more patterns (%d > %d)", len(hi), len(lo))
	}
	for _, p := range hi {
		if p.Support < 15 {
			t.Fatalf("pattern %v has support %d < 15", p.M, p.Support)
		}
	}
}

func TestMineAntiMonotonicity(t *testing.T) {
	// Every frequent pattern's MNI support must be >= threshold by direct
	// recomputation with a different engine.
	g := buildAttributeGraph(t, 25, 3, 2, 5)
	const threshold = 3
	matcher := match.NewQuickSI(g)
	for _, p := range Mine(g, Options{MaxNodes: 4, MinSupport: threshold}) {
		if got := mniSupport(g, matcher, p.M, threshold); got < threshold {
			t.Fatalf("pattern %v reported frequent but MNI=%d", p.M, got)
		}
	}
}

func TestMineMaxPatterns(t *testing.T) {
	g := buildAttributeGraph(t, 30, 3, 3, 6)
	pats := Mine(g, Options{MaxNodes: 4, MinSupport: 2, MaxPatterns: 5})
	if len(pats) != 5 {
		t.Fatalf("MaxPatterns ignored: %d", len(pats))
	}
}

func TestProximityFilter(t *testing.T) {
	g := buildAttributeGraph(t, 30, 3, 3, 7)
	tUser := g.Types().ID("user")
	pats := Mine(g, Options{MaxNodes: 4, MinSupport: 2})
	filtered := ProximityFilter(pats, tUser)
	if len(filtered) == 0 {
		t.Fatal("filter removed everything")
	}
	if len(filtered) >= len(pats) {
		t.Fatalf("filter removed nothing (%d of %d)", len(filtered), len(pats))
	}
	for _, p := range filtered {
		if p.M.CountType(tUser) < 2 {
			t.Fatalf("pattern %v lacks two users", p.M)
		}
		if p.M.CountType(tUser) == p.M.N() {
			t.Fatalf("pattern %v has no attribute node", p.M)
		}
		if len(p.M.AnchorPairs(tUser)) == 0 {
			t.Fatalf("pattern %v lacks a symmetric user pair", p.M)
		}
	}
}

func TestCountPathsAndMetagraphs(t *testing.T) {
	g := buildAttributeGraph(t, 30, 3, 3, 8)
	pats := Mine(g, Options{MaxNodes: 4, MinSupport: 2})
	if n := CountPaths(pats); n == 0 || n > len(pats) {
		t.Fatalf("CountPaths = %d of %d", n, len(pats))
	}
	ms := Metagraphs(pats)
	if len(ms) != len(pats) {
		t.Fatal("Metagraphs length mismatch")
	}
}

func TestMniSupportExactOnToy(t *testing.T) {
	// Two users share one school: user–school–user has MNI 2 (users) and 1
	// (school) -> support 1.
	b := graph.NewBuilder()
	u1 := b.AddNode("user", "u1")
	u2 := b.AddNode("user", "u2")
	s := b.AddNode("school", "s")
	b.AddEdge(u1, s)
	b.AddEdge(u2, s)
	g := b.MustBuild()
	m := metagraph.MustNew(
		[]graph.TypeID{g.Types().ID("user"), g.Types().ID("school"), g.Types().ID("user")},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if got := mniSupport(g, match.NewQuickSI(g), m, 10); got != 1 {
		t.Fatalf("MNI = %d, want 1", got)
	}
	// A pattern with no matches at all.
	m2 := metagraph.MustNew(
		[]graph.TypeID{g.Types().ID("school"), g.Types().ID("school")},
		[]metagraph.Edge{{U: 0, V: 1}})
	if got := mniSupport(g, match.NewQuickSI(g), m2, 10); got != 0 {
		t.Fatalf("MNI = %d, want 0", got)
	}
}

func TestMineDeterministic(t *testing.T) {
	g := buildAttributeGraph(t, 25, 3, 3, 9)
	a := Mine(g, Options{MaxNodes: 4, MinSupport: 2})
	b := Mine(g, Options{MaxNodes: 4, MinSupport: 2})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].M.Canonical() != b[i].M.Canonical() {
			t.Fatalf("non-deterministic order at %d", i)
		}
	}
}
