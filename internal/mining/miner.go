// Package mining enumerates the metagraph set M of a typed object graph
// (subproblem 1 of the paper's offline phase, Sect. II-B). The paper uses
// GRAMI (Elseidy et al., PVLDB'14) off the shelf; this package is a
// from-scratch substitute that keeps GRAMI's defining traits: single-graph
// frequent pattern mining under the MNI (minimum node image) support
// measure, which is the canonical anti-monotone support for a single large
// graph, with pattern growth and canonical-form deduplication.
//
// Patterns grow from single-edge seeds by attaching a new typed node to an
// existing node or closing an edge between two existing nodes; both moves
// preserve connectivity, and every connected pattern is reachable this way.
// MNI anti-monotonicity prunes infrequent branches exactly as in GRAMI.
package mining

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/metagraph"
)

// Options configures a mining run.
type Options struct {
	// MaxNodes caps |V_M|; the paper uses 5 (Sect. V-A).
	MaxNodes int
	// MinSupport is the MNI support threshold for a pattern to be frequent.
	MinSupport int
	// MaxPatterns stops mining after this many frequent patterns have been
	// collected (0 = unlimited); a safety valve for dense graphs.
	MaxPatterns int
}

// DefaultOptions mirrors the paper's setup: metagraphs of at most 5 nodes.
func DefaultOptions() Options {
	return Options{MaxNodes: 5, MinSupport: 2}
}

// Pattern is one mined metagraph with its MNI support (a lower bound equal
// to at least MinSupport; computation stops early once the threshold is
// established, as only the threshold matters for mining).
type Pattern struct {
	M       *metagraph.Metagraph
	Support int
}

// Mine enumerates the frequent metagraphs of g under opts, in canonical-key
// order (deterministic across runs).
func Mine(g *graph.Graph, opts Options) []Pattern {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 5
	}
	if opts.MinSupport <= 0 {
		opts.MinSupport = 1
	}
	matcher := match.NewSymISO(g)
	stats := match.NewGraphStats(g)

	seen := make(map[string]bool)
	var frequent []Pattern

	// Seeds: one 2-node pattern per type pair with at least one edge.
	var queue []*metagraph.Metagraph
	nt := g.NumTypes()
	for t1 := 0; t1 < nt; t1++ {
		for t2 := t1; t2 < nt; t2++ {
			if stats.EdgeCount(graph.TypeID(t1), graph.TypeID(t2)) == 0 {
				continue
			}
			m := metagraph.MustNew(
				[]graph.TypeID{graph.TypeID(t1), graph.TypeID(t2)},
				[]metagraph.Edge{{U: 0, V: 1}})
			key := m.Canonical()
			if !seen[key] {
				seen[key] = true
				queue = append(queue, m)
			}
		}
	}

	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]

		sup := mniSupport(g, matcher, m, opts.MinSupport)
		if sup < opts.MinSupport {
			continue // anti-monotone prune: no extension can be frequent
		}
		frequent = append(frequent, Pattern{M: m, Support: sup})
		if opts.MaxPatterns > 0 && len(frequent) >= opts.MaxPatterns {
			break
		}

		// Extensions: add a typed node, or close an edge.
		if m.N() < opts.MaxNodes {
			for u := 0; u < m.N(); u++ {
				for t := 0; t < nt; t++ {
					if stats.EdgeCount(m.Type(u), graph.TypeID(t)) == 0 {
						continue
					}
					ext, err := m.ExtendNode(u, graph.TypeID(t))
					if err != nil {
						continue
					}
					if key := ext.Canonical(); !seen[key] {
						seen[key] = true
						queue = append(queue, ext)
					}
				}
			}
		}
		for u := 0; u < m.N(); u++ {
			for v := u + 1; v < m.N(); v++ {
				if m.HasEdge(u, v) || stats.EdgeCount(m.Type(u), m.Type(v)) == 0 {
					continue
				}
				ext, err := m.ExtendEdge(u, v)
				if err != nil {
					continue
				}
				if key := ext.Canonical(); !seen[key] {
					seen[key] = true
					queue = append(queue, ext)
				}
			}
		}
	}

	sort.Slice(frequent, func(i, j int) bool {
		ci, cj := frequent[i].M.Canonical(), frequent[j].M.Canonical()
		if len(ci) != len(cj) {
			return len(ci) < len(cj) // smaller patterns first
		}
		return ci < cj
	})
	return frequent
}

// mniSupport computes the MNI support of m on g: the minimum, over pattern
// nodes u, of the number of distinct graph nodes that appear as the image
// of u across all assignments. Enumeration stops as soon as every pattern
// node has at least `enough` distinct images, so the returned value is
// min(MNI, enough) — exact whenever it is below the threshold.
func mniSupport(g *graph.Graph, matcher match.Matcher, m *metagraph.Metagraph, enough int) int {
	images := make([]map[graph.NodeID]bool, m.N())
	for i := range images {
		images[i] = make(map[graph.NodeID]bool, enough)
	}
	matcher.Match(m, func(a []graph.NodeID) bool {
		done := true
		for i, v := range a {
			images[i][v] = true
			if len(images[i]) < enough {
				done = false
			}
		}
		return !done
	})
	mni := -1
	for _, s := range images {
		if mni == -1 || len(s) < mni {
			mni = len(s)
		}
	}
	if mni < 0 {
		return 0
	}
	return mni
}

// ProximityFilter selects the mined metagraphs usable for semantic
// proximity between nodes of the anchor type (Sect. V-A): symmetric
// (Def. 1), at least two anchor-typed nodes forming at least one symmetric
// anchor pair, and at least one node of another type.
func ProximityFilter(patterns []Pattern, anchor graph.TypeID) []Pattern {
	var out []Pattern
	for _, p := range patterns {
		m := p.M
		if m.CountType(anchor) < 2 || m.CountType(anchor) == m.N() {
			continue
		}
		if len(m.AnchorPairs(anchor)) == 0 {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Metagraphs extracts just the metagraphs of a pattern list.
func Metagraphs(patterns []Pattern) []*metagraph.Metagraph {
	out := make([]*metagraph.Metagraph, len(patterns))
	for i, p := range patterns {
		out[i] = p.M
	}
	return out
}

// CountPaths returns how many of the patterns are metapaths; the paper
// reports metapaths to be 2–3% of all metagraphs (Sect. III-C).
func CountPaths(patterns []Pattern) int {
	n := 0
	for _, p := range patterns {
		if p.M.IsPath() {
			n++
		}
	}
	return n
}
