package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type sample struct {
	Benchmark string `json:"benchmark"`
	Value     int    `json:"value"`
}

func TestMarshalShape(t *testing.T) {
	js, err := Marshal(sample{Benchmark: "x", Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(js, []byte("\n")) {
		t.Fatal("no trailing newline")
	}
	if !strings.Contains(string(js), "  \"benchmark\": \"x\"") {
		t.Fatalf("not two-space indented:\n%s", js)
	}
}

func TestMarshalError(t *testing.T) {
	if _, err := Marshal(make(chan int)); err == nil {
		t.Fatal("marshaling a channel should fail")
	}
}

func TestEmitWritesFileAndLogs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout bytes.Buffer
	if err := emit(&stdout, path, sample{Benchmark: "b", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "wrote "+path) {
		t.Fatalf("missing wrote line, got %q", stdout.String())
	}
	var got sample
	if err := Load(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != "b" || got.Value != 1 {
		t.Fatalf("round trip drifted: %+v", got)
	}
}

func TestEmitStdoutOnly(t *testing.T) {
	dir := t.TempDir()
	var stdout bytes.Buffer
	if err := emit(&stdout, Stdout, sample{Benchmark: "s"}); err != nil {
		t.Fatal(err)
	}
	var got sample
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("stdout is not the report JSON: %v\n%s", err, stdout.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 0 {
		t.Fatalf("stdout emit touched the filesystem: %v %v", entries, err)
	}
}

// TestEmitFailureLeavesOldReport is the atomicity contract: an unwritable
// emit must not clobber or truncate the committed baseline.
func TestEmitFailureLeavesOldReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	if err := EmitJSON(path, sample{Benchmark: "old"}); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755) //nolint:errcheck // restore for cleanup
	var stdout bytes.Buffer
	if err := emit(&stdout, path, sample{Benchmark: "new"}); err == nil {
		t.Skip("running with privileges that ignore directory permissions")
	}
	os.Chmod(dir, 0o755) //nolint:errcheck
	var got sample
	if err := Load(path, &got); err != nil || got.Benchmark != "old" {
		t.Fatalf("failed emit damaged the baseline: %+v, %v", got, err)
	}
}

func TestLoadErrors(t *testing.T) {
	var out sample
	if err := Load(filepath.Join(t.TempDir(), "missing.json"), &out); err == nil {
		t.Fatal("loading a missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(bad, &out); err == nil {
		t.Fatal("loading malformed JSON should fail")
	}
}
