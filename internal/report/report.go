// Package report is the one place bench-style tools (cmd/bench,
// cmd/loadgen) turn a report struct into a committed BENCH_*.json file:
// two-space-indented JSON with a trailing newline, written atomically
// (temp + fsync + rename via internal/atomicfile) so a failed run never
// leaves a partial trajectory point behind, with "-" as the conventional
// write-to-stdout-only path for smoke runs that must not touch committed
// files.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicfile"
)

// Stdout is the path value meaning "print, do not write a file".
const Stdout = "-"

// Marshal renders a report in the committed BENCH_*.json shape:
// two-space indent, trailing newline.
func Marshal(report any) ([]byte, error) {
	js, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return append(js, '\n'), nil
}

// EmitJSON writes the report to path, staging through a temp file and
// renaming so a failed run never leaves a partial JSON behind. Path "-"
// prints to stdout instead; a real path also logs "wrote <path>" so runs
// show which trajectory files they touched.
func EmitJSON(path string, report any) error {
	return emit(os.Stdout, path, report)
}

// emit is EmitJSON with the stdout destination injected for tests.
func emit(stdout io.Writer, path string, report any) error {
	js, err := Marshal(report)
	if err != nil {
		return err
	}
	if path == Stdout {
		_, err := stdout.Write(js)
		return err
	}
	if err := atomicfile.Write(path, js); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

// Load reads a previously emitted report back into out — the gate half of
// the trajectory: a fresh run is compared against the committed baseline.
func Load(path string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("report: %s: %w", path, err)
	}
	return nil
}
