package baselines

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// SRW implements supervised random walks (Backstrom & Leskovec, WSDM'11)
// adapted to typed object graphs as the paper does (Sect. V-B): each edge's
// strength is a function of features derived from its endpoint types, the
// strengths bias a personalized-PageRank transition matrix, and the feature
// weights are learned from the same pairwise ranking examples.
//
// Concretely the feature of edge {u, v} is the unordered type pair
// (τ(u), τ(v)) and the strength is a(u,v) = exp(θ[f(u,v)]); the typed
// structure keeps the transition rows cheap to normalize. Ranking scores
// are the stationary personalized-PageRank probabilities approximated by
// power iteration, and ∂p/∂θ is computed by the matching iterative scheme.
type SRW struct {
	g       *graph.Graph
	theta   []float64
	alpha   float64 // restart probability
	iters   int     // power iterations for p and ∂p/∂θ
	rank    graph.TypeID
	feature []int32 // feature id per unordered type pair
	nf      int
}

// SRWOptions configures SRW training.
type SRWOptions struct {
	Alpha      float64 // restart probability (default 0.2)
	Iterations int     // power iterations (default 12)
	Steps      int     // gradient steps (default 30)
	Rate       float64 // gradient step size (default 1)
	Mu         float64 // sigmoid scale of the pairwise loss (default 5)
	MaxQueries int     // cap on distinct queries per gradient step (0 = all)
	Seed       int64
}

// DefaultSRW returns the option set used by the experiments.
func DefaultSRW() SRWOptions {
	return SRWOptions{Alpha: 0.2, Iterations: 12, Steps: 30, Rate: 0.5, Mu: 5, Seed: 1}
}

// NewSRW trains SRW on g. rankType restricts rankings to nodes of that type
// (user-to-user proximity in the paper's evaluation).
func NewSRW(g *graph.Graph, rankType graph.TypeID, examples []core.Example, opts SRWOptions) *SRW {
	if opts.Alpha == 0 {
		opts = DefaultSRW()
	}
	nt := g.NumTypes()
	s := &SRW{
		g:       g,
		alpha:   opts.Alpha,
		iters:   opts.Iterations,
		rank:    rankType,
		feature: make([]int32, nt*nt),
	}
	// Dense feature ids for unordered type pairs.
	for i := range s.feature {
		s.feature[i] = -1
	}
	id := int32(0)
	for t1 := 0; t1 < nt; t1++ {
		for t2 := t1; t2 < nt; t2++ {
			s.feature[t1*nt+t2] = id
			s.feature[t2*nt+t1] = id
			id++
		}
	}
	s.nf = int(id)
	rng := rand.New(rand.NewSource(opts.Seed))
	s.theta = make([]float64, s.nf)
	for i := range s.theta {
		s.theta[i] = 0.1 * rng.NormFloat64()
	}
	s.train(examples, opts)
	return s
}

// Name implements Ranker.
func (s *SRW) Name() string { return "SRW" }

// featureOf returns the feature id of edge {u, v}.
func (s *SRW) featureOf(u, v graph.NodeID) int32 {
	return s.feature[int(s.g.Type(u))*s.g.NumTypes()+int(s.g.Type(v))]
}

// rowNorm returns Z_u = Σ_w a(u,w), exploiting that strengths depend only
// on the neighbor's type.
func (s *SRW) rowNorm(u graph.NodeID, strength []float64) float64 {
	z := 0.0
	for t := 0; t < s.g.NumTypes(); t++ {
		d := s.g.DegreeOfType(u, graph.TypeID(t))
		if d > 0 {
			z += float64(d) * strength[s.featureOf(u, s.g.NodesOfType(graph.TypeID(t))[0])]
		}
	}
	return z
}

// strengths materializes exp(θ[f]) per feature.
func (s *SRW) strengths() []float64 {
	a := make([]float64, s.nf)
	for i, th := range s.theta {
		a[i] = math.Exp(th)
	}
	return a
}

// pagerank computes the personalized PageRank vector for query q under the
// current θ. When grad is non-nil it also computes ∂p/∂θ_f for every
// feature via the coupled iteration.
func (s *SRW) pagerank(q graph.NodeID, withGrad bool) (p []float64, dp [][]float64) {
	n := s.g.NumNodes()
	a := s.strengths()

	// Row normalizers.
	z := make([]float64, n)
	for u := 0; u < n; u++ {
		z[u] = s.rowNorm(graph.NodeID(u), a)
	}

	p = make([]float64, n)
	p[q] = 1
	next := make([]float64, n)
	if withGrad {
		dp = make([][]float64, s.nf)
		for f := range dp {
			dp[f] = make([]float64, n)
		}
	}
	dnext := make([]float64, n)

	for it := 0; it < s.iters; it++ {
		// next = α e_q + (1-α) Pᵀ p
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			if p[u] == 0 || z[u] == 0 {
				continue
			}
			pu := (1 - s.alpha) * p[u] / z[u]
			for _, v := range s.g.Neighbors(graph.NodeID(u)) {
				next[v] += pu * a[s.featureOf(graph.NodeID(u), v)]
			}
		}
		next[q] += s.alpha

		if withGrad {
			// dφ_f ← (1-α)(Pᵀ dφ_f + (∂Pᵀ/∂θ_f) p), where
			// ∂P_uv/∂θ_f = P_uv (1[f(u,v)=f] − S_u(f)) with
			// S_u(f) = Σ_w P_uw 1[f(u,w)=f].
			for f := 0; f < s.nf; f++ {
				cur := dp[f]
				for i := range dnext {
					dnext[i] = 0
				}
				for u := 0; u < n; u++ {
					if z[u] == 0 {
						continue
					}
					uu := graph.NodeID(u)
					// S_u(f): probability mass of u's transitions with
					// feature f.
					var su float64
					for t := 0; t < s.g.NumTypes(); t++ {
						d := s.g.DegreeOfType(uu, graph.TypeID(t))
						if d == 0 {
							continue
						}
						ft := s.featureOf(uu, s.g.NodesOfType(graph.TypeID(t))[0])
						if int(ft) == f {
							su += float64(d) * a[ft] / z[u]
						}
					}
					cu := (1 - s.alpha) * cur[u] / z[u]
					pu := (1 - s.alpha) * p[u] / z[u]
					if cu == 0 && (pu == 0 || (su == 0 && !s.rowHasFeature(uu, f))) {
						continue
					}
					for _, v := range s.g.Neighbors(uu) {
						fv := s.featureOf(uu, v)
						puv := a[fv]
						// Pᵀ dφ term.
						if cu != 0 {
							dnext[v] += cu * puv
						}
						// (∂Pᵀ/∂θ_f) p term.
						if pu != 0 {
							ind := 0.0
							if int(fv) == f {
								ind = 1
							}
							if ind != 0 || su != 0 {
								dnext[v] += pu * puv * (ind - su)
							}
						}
					}
				}
				copy(cur, dnext)
			}
		}
		p, next = next, p
	}
	return p, dp
}

// rowHasFeature reports whether node u has any incident edge with feature f.
func (s *SRW) rowHasFeature(u graph.NodeID, f int) bool {
	for t := 0; t < s.g.NumTypes(); t++ {
		if s.g.DegreeOfType(u, graph.TypeID(t)) == 0 {
			continue
		}
		if int(s.featureOf(u, s.g.NodesOfType(graph.TypeID(t))[0])) == f {
			return true
		}
	}
	return false
}

// train runs gradient ascent on the pairwise sigmoid likelihood, grouping
// examples by query so each query's PageRank (and derivatives) is computed
// once per step.
func (s *SRW) train(examples []core.Example, opts SRWOptions) {
	if len(examples) == 0 {
		return
	}
	byQ := make(map[graph.NodeID][]core.Example)
	for _, ex := range examples {
		byQ[ex.Q] = append(byQ[ex.Q], ex)
	}
	queries := make([]graph.NodeID, 0, len(byQ))
	for q := range byQ {
		queries = append(queries, q)
	}
	sort.Slice(queries, func(i, j int) bool { return queries[i] < queries[j] })
	// PageRank (and its derivative) is recomputed per query per step — the
	// dominant cost. A deterministic stride-subsample keeps large example
	// sets affordable without biasing toward any query block.
	if opts.MaxQueries > 0 && len(queries) > opts.MaxQueries {
		stride := len(queries) / opts.MaxQueries
		sub := make([]graph.NodeID, 0, opts.MaxQueries)
		for i := 0; i < len(queries) && len(sub) < opts.MaxQueries; i += stride {
			sub = append(sub, queries[i])
		}
		queries = sub
	}

	grad := make([]float64, s.nf)
	for step := 0; step < opts.Steps; step++ {
		for i := range grad {
			grad[i] = 0
		}
		used := 0
		for _, q := range queries {
			p, dp := s.pagerank(q, true)
			for _, ex := range byQ[q] {
				d := p[ex.X] - p[ex.Y]
				sig := 1 / (1 + math.Exp(-opts.Mu*d))
				c := opts.Mu * (1 - sig)
				used++
				if c == 0 {
					continue
				}
				for f := 0; f < s.nf; f++ {
					grad[f] += c * (dp[f][ex.X] - dp[f][ex.Y])
				}
			}
		}
		// Mean gradient: step size independent of the example count.
		if used > 0 {
			for f := range grad {
				grad[f] /= float64(used)
			}
		}
		// Normalized ascent: PageRank differences are O(1/n), so the raw
		// mean gradient is minuscule; stepping Rate along the L∞-normalized
		// direction moves θ at a graph-size-independent pace.
		norm := 0.0
		for _, gv := range grad {
			if a := math.Abs(gv); a > norm {
				norm = a
			}
		}
		if norm < 1e-15 {
			break
		}
		for f := 0; f < s.nf; f++ {
			s.theta[f] += opts.Rate * grad[f] / norm
			// Keep strengths bounded; exp(±8) spans 3e3 either way.
			if s.theta[f] > 8 {
				s.theta[f] = 8
			} else if s.theta[f] < -8 {
				s.theta[f] = -8
			}
		}
	}
}

// Rank implements Ranker: personalized PageRank scores restricted to the
// rank type, descending, query excluded.
func (s *SRW) Rank(q graph.NodeID) []core.Ranked {
	p, _ := s.pagerank(q, false)
	var out []core.Ranked
	for _, v := range s.g.NodesOfType(s.rank) {
		if v == q || p[v] == 0 {
			continue
		}
		out = append(out, core.Ranked{Node: v, Score: p[v]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Theta exposes the learned feature weights (for tests and reports).
func (s *SRW) Theta() []float64 { return append([]float64(nil), s.theta...) }
