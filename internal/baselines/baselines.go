// Package baselines implements the comparison systems of the paper's
// accuracy study (Sect. V-B): MPP (metapath-restricted MGP), MGP-U
// (uniform weights), MGP-B (single best metagraph), and SRW (supervised
// random walks after Backstrom & Leskovec, WSDM'11).
package baselines

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/metagraph"
)

// Ranker produces a proximity ranking for a query node; all compared
// systems implement it so the evaluation harness can treat them uniformly.
type Ranker interface {
	Name() string
	Rank(q graph.NodeID) []core.Ranked
}

// MGPRanker ranks by the MGP measure under a fixed weight vector. The full
// MGP system, MGP-U, MGP-B and MPP are all MGPRankers over different
// weights/indices.
type MGPRanker struct {
	Label string
	Ix    *index.Index
	W     []float64
}

// Name implements Ranker.
func (r *MGPRanker) Name() string { return r.Label }

// Rank implements Ranker.
func (r *MGPRanker) Rank(q graph.NodeID) []core.Ranked {
	return core.Rank(r.Ix, r.W, q)
}

// NewMGP trains the full MGP system on all metagraphs.
func NewMGP(ix *index.Index, examples []core.Example, opts core.TrainOptions) *MGPRanker {
	model := core.Train(ix, examples, opts)
	return &MGPRanker{Label: "MGP", Ix: ix, W: model.W}
}

// NewMGPU is MGP with uniform weights: no supervision, no differentiation
// between metagraphs.
func NewMGPU(ix *index.Index) *MGPRanker {
	return &MGPRanker{Label: "MGP-U", Ix: ix, W: core.UniformWeights(ix.NumMeta())}
}

// NewMPP restricts the metagraph set to metapaths (the representation of
// PathSim-style systems) and applies the same supervised learning. It
// returns the ranker and the retained original indices.
func NewMPP(ms []*metagraph.Metagraph, ix *index.Index, examples []core.Example, opts core.TrainOptions) (*MGPRanker, []int) {
	paths := core.Seeds(ms)
	sub := ix.Project(paths)
	model := core.Train(sub, examples, opts)
	return &MGPRanker{Label: "MPP", Ix: sub, W: model.W}, paths
}

// NewMGPB finds the single metagraph that best orders the training
// examples on its own (one-hot weights) and ranks with it alone.
func NewMGPB(ix *index.Index, examples []core.Example) *MGPRanker {
	best, bestScore := 0, -1
	w := make([]float64, ix.NumMeta())
	for i := 0; i < ix.NumMeta(); i++ {
		for j := range w {
			w[j] = 0
		}
		w[i] = 1
		score := 0
		for _, ex := range examples {
			if core.Proximity(ix, w, ex.Q, ex.X) > core.Proximity(ix, w, ex.Q, ex.Y) {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	w = make([]float64, ix.NumMeta())
	w[best] = 1
	return &MGPRanker{Label: "MGP-B", Ix: ix, W: w}
}

// BestIndex reports which metagraph a MGP-B ranker selected (the index of
// its one-hot weight), or -1 for other rankers.
func (r *MGPRanker) BestIndex() int {
	idx := -1
	for i, v := range r.W {
		if v != 0 {
			if idx != -1 {
				return -1 // more than one non-zero: not one-hot
			}
			idx = i
		}
	}
	return idx
}
