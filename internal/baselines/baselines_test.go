package baselines

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
)

func toyIndex(t testing.TB) (*graph.Graph, *index.Index) {
	t.Helper()
	g := fixtures.Toy()
	mgs := fixtures.All()
	b := index.NewBuilder(len(mgs))
	matcher := match.NewSymISO(g)
	for i, m := range mgs {
		b.AddMetagraph(i, m, matcher)
	}
	return g, b.Build()
}

func classmateExamples(g *graph.Graph) []core.Example {
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	alice := g.NodeByName("Alice")
	bob := g.NodeByName("Bob")
	tom := g.NodeByName("Tom")
	return []core.Example{
		{Q: kate, X: jay, Y: alice},
		{Q: bob, X: tom, Y: alice},
	}
}

func TestMGPURanksUniformly(t *testing.T) {
	g, ix := toyIndex(t)
	r := NewMGPU(ix)
	if r.Name() != "MGP-U" {
		t.Fatal("name")
	}
	kate := g.NodeByName("Kate")
	ranking := r.Rank(kate)
	if len(ranking) != 2 {
		t.Fatalf("ranking = %v", ranking)
	}
	// Uniform weights: Jay (2 shared instances) before Alice (1).
	if ranking[0].Node != g.NodeByName("Jay") {
		t.Fatalf("ranking = %v", ranking)
	}
}

func TestMGPTrainsAndRanks(t *testing.T) {
	g, ix := toyIndex(t)
	opts := core.DefaultTrain()
	opts.Restarts = 2
	r := NewMGP(ix, classmateExamples(g), opts)
	if r.Name() != "MGP" {
		t.Fatal("name")
	}
	kate := g.NodeByName("Kate")
	ranking := r.Rank(kate)
	if len(ranking) == 0 || ranking[0].Node != g.NodeByName("Jay") {
		t.Fatalf("MGP ranking = %v", ranking)
	}
}

func TestMPPRestrictsToPaths(t *testing.T) {
	g, ix := toyIndex(t)
	opts := core.DefaultTrain()
	opts.Restarts = 1
	r, kept := NewMPP(fixtures.All(), ix, classmateExamples(g), opts)
	if r.Name() != "MPP" {
		t.Fatal("name")
	}
	// Only M3 is a path.
	if len(kept) != 1 || kept[0] != 2 {
		t.Fatalf("kept = %v", kept)
	}
	if r.Ix.NumMeta() != 1 {
		t.Fatalf("MPP index has %d metagraphs", r.Ix.NumMeta())
	}
	// MPP cannot see M1 evidence: for Kate it only knows the shared
	// address with Jay.
	kate := g.NodeByName("Kate")
	ranking := r.Rank(kate)
	if len(ranking) != 1 || ranking[0].Node != g.NodeByName("Jay") {
		t.Fatalf("MPP ranking = %v", ranking)
	}
}

func TestMGPBPicksBestSingleMetagraph(t *testing.T) {
	g, ix := toyIndex(t)
	r := NewMGPB(ix, classmateExamples(g))
	if r.Name() != "MGP-B" {
		t.Fatal("name")
	}
	// M1 (shared school+major) alone orders both classmate examples
	// correctly; M2/M3/M4 do not.
	if got := r.BestIndex(); got != 0 {
		t.Fatalf("BestIndex = %d, want 0 (M1)", got)
	}
	ranking := r.Rank(g.NodeByName("Bob"))
	if len(ranking) == 0 || ranking[0].Node != g.NodeByName("Tom") {
		t.Fatalf("MGP-B ranking for Bob = %v", ranking)
	}
}

func TestBestIndexNonOneHot(t *testing.T) {
	_, ix := toyIndex(t)
	r := NewMGPU(ix)
	if r.BestIndex() != -1 {
		t.Fatal("uniform weights misreported as one-hot")
	}
}

func TestSRWPagerankIsDistribution(t *testing.T) {
	g, _ := toyIndex(t)
	s := NewSRW(g, g.Types().ID("user"), nil, DefaultSRW())
	p, _ := s.pagerank(g.NodeByName("Kate"), false)
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %f", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank mass = %f, want 1", sum)
	}
	// Restart concentrates mass at the query.
	if p[g.NodeByName("Kate")] < p[g.NodeByName("Tom")] {
		t.Fatal("query should hold more mass than a distant node")
	}
}

// TestSRWGradientMatchesFiniteDifference validates the coupled derivative
// iteration against numeric differentiation of the PageRank scores.
func TestSRWGradientMatchesFiniteDifference(t *testing.T) {
	g, _ := toyIndex(t)
	s := NewSRW(g, g.Types().ID("user"), nil, DefaultSRW())
	q := g.NodeByName("Kate")
	x := g.NodeByName("Jay")

	_, dp := s.pagerank(q, true)
	const h = 1e-6
	for f := 0; f < s.nf; f++ {
		orig := s.theta[f]
		s.theta[f] = orig + h
		pp, _ := s.pagerank(q, false)
		s.theta[f] = orig - h
		pm, _ := s.pagerank(q, false)
		s.theta[f] = orig
		num := (pp[x] - pm[x]) / (2 * h)
		if math.Abs(num-dp[f][x]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("feature %d: analytic %g vs numeric %g", f, dp[f][x], num)
		}
	}
}

func TestSRWTrainingImprovesObjective(t *testing.T) {
	g, _ := toyIndex(t)
	examples := classmateExamples(g)
	opts := DefaultSRW()
	opts.Steps = 0
	untrained := NewSRW(g, g.Types().ID("user"), examples, opts)
	opts.Steps = 25
	trained := NewSRW(g, g.Types().ID("user"), examples, opts)

	obj := func(s *SRW) float64 {
		var ll float64
		for _, ex := range examples {
			p, _ := s.pagerank(ex.Q, false)
			d := p[ex.X] - p[ex.Y]
			ll += -math.Log1p(math.Exp(-5 * d))
		}
		return ll
	}
	if obj(trained) < obj(untrained) {
		t.Fatalf("training decreased objective: %f -> %f", obj(untrained), obj(trained))
	}
}

func TestSRWRankRestrictsToUsers(t *testing.T) {
	g, _ := toyIndex(t)
	s := NewSRW(g, g.Types().ID("user"), classmateExamples(g), DefaultSRW())
	kate := g.NodeByName("Kate")
	ranking := s.Rank(kate)
	if len(ranking) == 0 {
		t.Fatal("empty SRW ranking")
	}
	for _, r := range ranking {
		if g.Type(r.Node) != g.Types().ID("user") {
			t.Fatalf("non-user %d in ranking", r.Node)
		}
		if r.Node == kate {
			t.Fatal("query in its own ranking")
		}
	}
	for i := 1; i < len(ranking); i++ {
		if ranking[i].Score > ranking[i-1].Score {
			t.Fatal("ranking not descending")
		}
	}
	if len(s.Theta()) != s.nf {
		t.Fatal("Theta length")
	}
}
