// Package mcs computes the maximum common subgraph of two metagraphs and
// the structural similarity SS built on it (Sect. III-C of the paper):
//
//	SS(Mi, Mj) = (|V_M| + |E_M|)² / ((|V_Mi| + |E_Mi|) · (|V_Mj| + |E_Mj|))
//
// where M is the MCS of Mi and Mj. Dual-stage training uses SS to infer a
// metagraph's "function" from its structure without matching it.
//
// Metagraphs have at most 16 nodes (5 in the paper), so the MCS search is
// an exact branch-and-bound over type-preserving partial mappings.
package mcs

import (
	"repro/internal/metagraph"
)

// Size is the size of a maximum common subgraph: the number of shared
// nodes plus the number of shared edges under the best mapping.
type Size struct {
	Nodes int
	Edges int
}

// Total returns |V_M| + |E_M|.
func (s Size) Total() int { return s.Nodes + s.Edges }

// MCS returns the size of the maximum common subgraph of a and b: the
// type-preserving partial injective mapping from a's nodes to b's nodes
// maximizing mapped nodes + edges present in both patterns under the
// mapping. (Isolated compatible nodes always help, so the node count is
// maximal; edges break ties among mappings.)
func MCS(a, b *metagraph.Metagraph) Size {
	na := a.N()
	mapTo := make([]int, na) // image in b, or -1 = excluded
	usedB := make([]bool, b.N())
	var best Size

	score := func() Size {
		var s Size
		for i := 0; i < na; i++ {
			if mapTo[i] >= 0 {
				s.Nodes++
			}
		}
		for _, e := range a.Edges() {
			bu, bv := mapTo[e.U], mapTo[e.V]
			if bu >= 0 && bv >= 0 && b.HasEdge(bu, bv) {
				s.Edges++
			}
		}
		return s
	}

	maxEdges := a.NumEdges()
	if be := b.NumEdges(); be < maxEdges {
		maxEdges = be
	}
	var rec func(i, mapped int)
	rec = func(i, mapped int) {
		if i == na {
			if s := score(); s.Total() > best.Total() {
				best = s
			}
			return
		}
		// Bound: even mapping every remaining node and sharing every edge
		// cannot beat the best already found.
		if mapped+(na-i)+maxEdges <= best.Total() {
			return
		}
		for j := 0; j < b.N(); j++ {
			if usedB[j] || b.Type(j) != a.Type(i) {
				continue
			}
			mapTo[i] = j
			usedB[j] = true
			rec(i+1, mapped+1)
			usedB[j] = false
		}
		mapTo[i] = -1
		rec(i+1, mapped)
	}
	for i := range mapTo {
		mapTo[i] = -1
	}
	rec(0, 0)
	return best
}

// StructuralSimilarity returns SS(a, b) ∈ [0, 1].
func StructuralSimilarity(a, b *metagraph.Metagraph) float64 {
	m := MCS(a, b)
	num := float64(m.Total())
	return num * num / (float64(a.Size()) * float64(b.Size()))
}
