package mcs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/metagraph"
)

const (
	tUser graph.TypeID = iota
	tSchool
	tMajor
	tEmployer
	tHobby
)

func mgUSU() *metagraph.Metagraph {
	return metagraph.MustNew([]graph.TypeID{tUser, tSchool, tUser},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
}

func mgM1() *metagraph.Metagraph {
	return metagraph.MustNew([]graph.TypeID{tUser, tUser, tSchool, tMajor},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
}

func mgM2() *metagraph.Metagraph {
	return metagraph.MustNew([]graph.TypeID{tUser, tUser, tEmployer, tHobby},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
}

func TestMCSIdentical(t *testing.T) {
	m := mgM1()
	s := MCS(m, m)
	if s.Nodes != m.N() || s.Edges != m.NumEdges() {
		t.Fatalf("MCS(m,m) = %+v, want full graph", s)
	}
	if got := StructuralSimilarity(m, m); math.Abs(got-1) > 1e-12 {
		t.Fatalf("SS(m,m) = %f, want 1", got)
	}
}

func TestMCSPathInsideM1(t *testing.T) {
	// user–school–user is fully contained in M1.
	p := mgUSU()
	s := MCS(p, mgM1())
	if s.Nodes != 3 || s.Edges != 2 {
		t.Fatalf("MCS(path, M1) = %+v, want 3 nodes / 2 edges", s)
	}
	want := float64(5*5) / float64(5*8)
	if got := StructuralSimilarity(p, mgM1()); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SS = %f, want %f", got, want)
	}
}

func TestMCSDisjointTypes(t *testing.T) {
	// M1 (school+major) vs M2 (employer+hobby): only the two users are
	// shared, no edges survive.
	s := MCS(mgM1(), mgM2())
	if s.Nodes != 2 || s.Edges != 0 {
		t.Fatalf("MCS(M1, M2) = %+v, want 2 nodes / 0 edges", s)
	}
}

func TestMCSEdgeChoiceBeatsGreedyNodes(t *testing.T) {
	// a: user–school plus isolated-ish structure; force a mapping choice
	// between two school nodes where only one preserves the edge.
	a := metagraph.MustNew([]graph.TypeID{tUser, tSchool},
		[]metagraph.Edge{{U: 0, V: 1}})
	b := metagraph.MustNew([]graph.TypeID{tUser, tSchool, tSchool},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	s := MCS(a, b)
	if s.Nodes != 2 || s.Edges != 1 {
		t.Fatalf("MCS = %+v, want 2/1", s)
	}
}

func TestSSSymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomConnected(rng)
		b := randomConnected(rng)
		ab := StructuralSimilarity(a, b)
		ba := StructuralSimilarity(b, a)
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		return ab >= 0 && ab <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMCSNeverExceedsEither(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomConnected(rng)
		b := randomConnected(rng)
		s := MCS(a, b)
		return s.Nodes <= min(a.N(), b.N()) && s.Edges <= min(a.NumEdges(), b.NumEdges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomConnected(rng *rand.Rand) *metagraph.Metagraph {
	n := 2 + rng.Intn(4)
	types := make([]graph.TypeID, n)
	for i := range types {
		types[i] = graph.TypeID(rng.Intn(3))
	}
	var edges []metagraph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, metagraph.Edge{U: rng.Intn(i), V: i})
	}
	if rng.Intn(2) == 0 && n > 2 {
		edges = append(edges, metagraph.Edge{U: 0, V: n - 1})
	}
	return metagraph.MustNew(types, edges)
}
