package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/metagraph"
)

// denseRandomIndex builds a random user/attribute graph with few attribute
// nodes, so partner lists grow to hundreds of candidates and the sharded
// scan actually fans out (shardMinPartners is far exceeded).
func denseRandomIndex(rng *rand.Rand) (*graph.Graph, *index.Index) {
	b := graph.NewBuilder()
	b.Types().Register("user")
	b.Types().Register("a")
	b.Types().Register("b")
	nu := 64 + rng.Intn(128)
	na := 2 + rng.Intn(3)
	users := make([]graph.NodeID, nu)
	for i := range users {
		users[i] = b.AddNode("user", "")
	}
	attrsA := make([]graph.NodeID, na)
	attrsB := make([]graph.NodeID, na)
	for i := 0; i < na; i++ {
		attrsA[i] = b.AddNode("a", "")
		attrsB[i] = b.AddNode("b", "")
	}
	for _, u := range users {
		b.AddEdge(u, attrsA[rng.Intn(na)])
		if rng.Intn(4) > 0 {
			b.AddEdge(u, attrsB[rng.Intn(na)])
		}
	}
	g := b.MustBuild()

	tu, ta, tb := g.Types().ID("user"), g.Types().ID("a"), g.Types().ID("b")
	ms := []*metagraph.Metagraph{
		metagraph.MustNew([]graph.TypeID{tu, ta, tu}, []metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}),
		metagraph.MustNew([]graph.TypeID{tu, tb, tu}, []metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}),
	}
	bld := index.NewBuilder(len(ms))
	matcher := match.NewSymISO(g)
	for i, m := range ms {
		bld.AddMetagraph(i, m, matcher)
	}
	return g, bld.Build()
}

// TestRankTopShardedMatchesSerial is the acceptance property: for random
// graphs, random weights, every worker count and every k, the sharded scan
// returns rankings identical (node AND bit-for-bit score) to the serial
// reference.
func TestRankTopShardedMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, ix := denseRandomIndex(rng)
		w := make([]float64, ix.NumMeta())
		for i := range w {
			w[i] = rng.Float64()
		}
		users := g.NodesOfType(g.Types().ID("user"))
		for trial := 0; trial < 5; trial++ {
			q := users[rng.Intn(len(users))]
			if len(ix.Partners(q)) < shardMinPartners {
				t.Fatalf("seed %d: partner list too short to exercise sharding", seed)
			}
			for _, k := range []int{0, 1, 3, 10, 1 << 20} {
				want := RankTop(ix, w, q, k)
				for _, workers := range []int{1, 2, 3, 4, 8, 16, 33} {
					got := RankTopSharded(ix, w, q, k, workers)
					if len(got) != len(want) {
						t.Fatalf("seed %d q=%d k=%d workers=%d: %d results, want %d",
							seed, q, k, workers, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed %d q=%d k=%d workers=%d: result[%d] = %+v, want %+v",
								seed, q, k, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestRankTopShardedZeroWeights pins the degenerate cases: an all-zero
// weight vector scores every candidate out, and a query with no partners
// returns an empty ranking for every worker count.
func TestRankTopShardedZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, ix := denseRandomIndex(rng)
	users := g.NodesOfType(g.Types().ID("user"))
	zero := make([]float64, ix.NumMeta())
	for _, workers := range []int{1, 4, 16} {
		if got := RankTopSharded(ix, zero, users[0], 10, workers); len(got) != 0 {
			t.Fatalf("workers=%d: zero weights ranked %d nodes", workers, len(got))
		}
		// An attribute node is never a symmetric anchor: no partners.
		attr := g.NodesOfType(g.Types().ID("a"))[0]
		w := UniformWeights(ix.NumMeta())
		if got := RankTopSharded(ix, w, attr, 10, workers); len(got) != 0 {
			t.Fatalf("workers=%d: partnerless query ranked %d nodes", workers, len(got))
		}
	}
}
