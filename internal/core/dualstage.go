package core

import (
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/mcs"
	"repro/internal/metagraph"
)

// Dual-stage training (Sect. III-C, Alg. 1). Matching every metagraph
// dominates the offline cost, so the seed stage matches only the metapaths
// (cheap to identify, cheap to match), trains seed weights w0, and the
// candidate stage matches just the |K| non-seed metagraphs most promising
// under the candidate heuristic H (Eq. 7):
//
//	H(Mj) = max over seeds Mi of  w0[i] · SS(Mi, Mj)
//
// The caller supplies matching through a MatchFunc so the expensive work
// stays where the caller controls it (real matching offline, index
// projection in experiments that pre-matched everything).

// MatchFunc builds a metagraph-vector index over the subset of M given by
// indices; the returned index must be numbered 0..len(indices)-1 in the
// given order.
type MatchFunc func(indices []int) *index.Index

// Seeds returns the indices of the metapaths in ms — the seed set K0 of
// Alg. 1 (easy to identify, fast to match).
func Seeds(ms []*metagraph.Metagraph) []int {
	var out []int
	for i, m := range ms {
		if m.IsPath() {
			out = append(out, i)
		}
	}
	return out
}

// ScoredCandidate is a non-seed metagraph with its heuristic score.
type ScoredCandidate struct {
	Index int     // index into M
	H     float64 // Eq. 7 score
}

// CandidateScores evaluates H for every metagraph outside the seed set,
// given the seed weights w0 (aligned with seedIdx). Results are sorted by
// descending H (ascending for reverse=true, the RCH control of Fig. 10),
// ties broken by index for determinism.
func CandidateScores(ms []*metagraph.Metagraph, seedIdx []int, w0 []float64, reverse bool) []ScoredCandidate {
	isSeed := make(map[int]bool, len(seedIdx))
	for _, i := range seedIdx {
		isSeed[i] = true
	}
	var out []ScoredCandidate
	for j, mj := range ms {
		if isSeed[j] {
			continue
		}
		h := 0.0
		for k, i := range seedIdx {
			if w0[k] == 0 {
				continue
			}
			if s := w0[k] * mcs.StructuralSimilarity(ms[i], mj); s > h {
				h = s
			}
		}
		out = append(out, ScoredCandidate{Index: j, H: h})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].H != out[b].H {
			if reverse {
				return out[a].H < out[b].H
			}
			return out[a].H > out[b].H
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// DualStageOptions configures Alg. 1.
type DualStageOptions struct {
	// NumCandidates is |K|, the number of non-seed metagraphs to match.
	NumCandidates int
	// Stages splits candidate selection into this many progressive batches
	// (the multi-stage extension of Sect. III-C); each batch re-scores the
	// remaining metagraphs with the weights learned so far. 1 reproduces
	// Alg. 1 exactly.
	Stages int
	// Reverse selects candidates by ascending H (the RCH control).
	Reverse bool
	// Train configures both training runs.
	Train TrainOptions
}

// DefaultDualStage returns Alg. 1 with the paper's training setup.
func DefaultDualStage(numCandidates int) DualStageOptions {
	return DualStageOptions{NumCandidates: numCandidates, Stages: 1, Train: DefaultTrain()}
}

// DualStageResult reports the trained model and which metagraphs were
// matched.
type DualStageResult struct {
	SeedIdx []int     // K0 (indices into M)
	CandIdx []int     // K in selection order
	Kept    []int     // K0 ∪ K in the order the final index numbers them
	Model   *Model    // weights aligned with Kept
	SeedW   []float64 // seed-stage weights w0, aligned with SeedIdx
}

// WeightFor returns the final weight of metagraph i (index into M), or 0
// if i was never matched.
func (r *DualStageResult) WeightFor(i int) float64 {
	for k, idx := range r.Kept {
		if idx == i {
			return r.Model.W[k]
		}
	}
	return 0
}

// DualStage runs Alg. 1 (or its multi-stage extension) over the metagraph
// set ms: seed stage on the metapaths, candidate selection by H, final
// training on K0 ∪ K.
func DualStage(ms []*metagraph.Metagraph, matchFn MatchFunc, examples []Example, opts DualStageOptions) *DualStageResult {
	if opts.Stages < 1 {
		opts.Stages = 1
	}
	res := &DualStageResult{SeedIdx: Seeds(ms)}

	// Seed stage: match K0, train w0.
	seedIx := matchFn(res.SeedIdx)
	seedModel := Train(seedIx, examples, opts.Train)
	res.SeedW = seedModel.W

	// Candidate stage(s): progressively grow K, rescoring with the weights
	// learned so far (stage 1 uses w0, reproducing Alg. 1).
	kept := append([]int(nil), res.SeedIdx...)
	keptW := append([]float64(nil), seedModel.W...)
	remainingBudget := opts.NumCandidates
	var finalIx *index.Index = seedIx
	var finalModel = seedModel
	for s := 0; s < opts.Stages && remainingBudget > 0; s++ {
		batch := remainingBudget / (opts.Stages - s)
		if batch == 0 {
			batch = remainingBudget
		}
		scores := CandidateScores(ms, kept, keptW, opts.Reverse)
		if len(scores) == 0 {
			break
		}
		if batch > len(scores) {
			batch = len(scores)
		}
		for _, sc := range scores[:batch] {
			res.CandIdx = append(res.CandIdx, sc.Index)
			kept = append(kept, sc.Index)
		}
		remainingBudget -= batch

		finalIx = matchFn(kept)
		finalModel = Train(finalIx, examples, opts.Train)
		keptW = finalModel.W
	}
	res.Kept = kept
	res.Model = finalModel
	_ = finalIx
	return res
}

// FunctionalSimilarity is FS(Mi, Mj) = 1 − |w*[i] − w*[j]| (Sect. III-C),
// defined on weights normalized to [0, 1].
func FunctionalSimilarity(wi, wj float64) float64 {
	return 1 - math.Abs(wi-wj)
}
