package core

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/index"
)

// Example is one pairwise training triplet (q, x, y) of Sect. III-B: node x
// should rank before node y with respect to query q.
type Example struct {
	Q, X, Y graph.NodeID
}

// TrainOptions configures gradient ascent. Defaults (via DefaultTrain)
// follow the paper's experimental setup (Sect. V-B).
type TrainOptions struct {
	Mu           float64 // sigmoid scale µ of Eq. 4
	LearningRate float64 // initial γ of Eq. 6
	DecayEvery   int     // reduce γ every this many iterations ...
	DecayFactor  float64 // ... by this multiplicative factor
	MaxIters     int     // hard iteration cap per restart
	Tol          float64 // stop when |ΔL| < Tol·|L| (paper: 0.001% → 1e-5)
	Restarts     int     // independent random initializations; best L wins
	Seed         int64   // RNG seed for the initializations
}

// DefaultTrain mirrors the paper: µ=5, γ=10 decayed by 5% every 100
// iterations, 5 restarts. The convergence tolerance is stricter than the
// paper's 0.001% because our L is the mean (not sum) log-likelihood:
// per-iteration changes are |Ω| times smaller, and a loose tolerance stops
// ascent on slow plateaus far from the optimum.
func DefaultTrain() TrainOptions {
	return TrainOptions{
		Mu:           5,
		LearningRate: 10,
		DecayEvery:   100,
		DecayFactor:  0.95,
		MaxIters:     2000,
		Tol:          1e-7,
		Restarts:     5,
		Seed:         1,
	}
}

// Model is a learned MGP proximity model: the characteristic weight vector
// w* over the metagraph set the index was built for.
type Model struct {
	W             []float64
	LogLikelihood float64
	Iterations    int // total iterations across restarts
}

// Train learns w* = argmax_w L(w; Ω) by gradient ascent (Eq. 5–6) with
// multiple random restarts, then normalizes the weights into [0, 1].
// Examples whose nodes never occur in the index contribute a constant to L
// and zero gradient; they are harmless.
func Train(ix *index.Index, examples []Example, opts TrainOptions) *Model {
	if opts.Mu == 0 {
		opts = DefaultTrain()
	}
	n := ix.NumMeta()
	rng := rand.New(rand.NewSource(opts.Seed))

	best := &Model{W: UniformWeights(n), LogLikelihood: math.Inf(-1)}
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	for r := 0; r < restarts; r++ {
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.1 + 0.9*rng.Float64()
		}
		ll, iters := ascend(ix, examples, w, opts)
		if ll > best.LogLikelihood {
			best.W = w
			best.LogLikelihood = ll
		}
		best.Iterations += iters
	}
	NormalizeWeights(best.W)
	// Recompute L at the normalized weights (identical by scale-invariance,
	// but report the exact value the model carries).
	best.LogLikelihood = LogLikelihood(ix, best.W, examples, opts.Mu)
	return best
}

// ascend runs one gradient-ascent trajectory in place and returns the final
// log-likelihood and iteration count. A backtracking line search halves the
// step whenever it would decrease L: with the non-negativity clamp a fixed
// step can overshoot a ridge into an all-zero dead corner, and monotone
// ascent rules that out.
func ascend(ix *index.Index, examples []Example, w []float64, opts TrainOptions) (float64, int) {
	gamma := opts.LearningRate
	prevLL := LogLikelihood(ix, w, examples, opts.Mu)
	grad := make([]float64, len(w))
	cand := make([]float64, len(w))
	it := 0
	for ; it < opts.MaxIters; it++ {
		gradient(ix, w, examples, opts.Mu, grad)

		step := gamma
		ll := math.Inf(-1)
		for attempt := 0; attempt < 30; attempt++ {
			for i := range w {
				cand[i] = w[i] + step*grad[i]
				if cand[i] < 0 {
					cand[i] = 0 // non-negativity constraint of Def. 3
				}
			}
			ll = LogLikelihood(ix, cand, examples, opts.Mu)
			if ll >= prevLL {
				break
			}
			step /= 2
		}
		if ll < prevLL {
			break // no improving step along the gradient: converged
		}
		copy(w, cand)

		// Guard against drift to huge magnitudes: scaling is free by
		// Theorem 1 and keeps the arithmetic well conditioned.
		maxW := 0.0
		for _, v := range w {
			if v > maxW {
				maxW = v
			}
		}
		if maxW > 1e6 {
			for i := range w {
				w[i] /= maxW
			}
		}
		if opts.DecayEvery > 0 && (it+1)%opts.DecayEvery == 0 {
			gamma *= opts.DecayFactor
		}
		if math.Abs(ll-prevLL) < opts.Tol*math.Abs(prevLL) {
			prevLL = ll
			it++
			break
		}
		prevLL = ll
	}
	return prevLL, it
}

// LogLikelihood computes the mean log-likelihood L(w; Ω)/|Ω| with P per
// Eq. 4. The mean normalization matches gradient (the maximizer is the
// same; step sizes become |Ω|-independent).
func LogLikelihood(ix *index.Index, w []float64, examples []Example, mu float64) float64 {
	var ll float64
	for _, ex := range examples {
		d := Proximity(ix, w, ex.Q, ex.X) - Proximity(ix, w, ex.Q, ex.Y)
		// log sigmoid(µd) computed stably.
		z := mu * d
		if z > 0 {
			ll += -math.Log1p(math.Exp(-z))
		} else {
			ll += z - math.Log1p(math.Exp(z))
		}
	}
	if len(examples) > 0 {
		ll /= float64(len(examples))
	}
	return ll
}

// gradient fills grad with ∇L(w)/|Ω| using the closed-form partial
// derivatives of Sect. III-B:
//
//	∂π(v,u)/∂w[i] = [2(m_v·w + m_u·w)·m_vu[i] − 2(m_vu·w)(m_v[i]+m_u[i])]
//	                / (m_v·w + m_u·w)²
//
// The mean (rather than the sum) keeps the effective step size of Eq. 6
// independent of |Ω|, so the paper's γ=10 behaves identically at 10 and at
// 1000 examples (scale-invariance of π makes the two parameterizations
// equivalent up to the learning-rate schedule).
func gradient(ix *index.Index, w []float64, examples []Example, mu float64, grad []float64) {
	for i := range grad {
		grad[i] = 0
	}
	for _, ex := range examples {
		px := Proximity(ix, w, ex.Q, ex.X)
		py := Proximity(ix, w, ex.Q, ex.Y)
		// µ(1 − P(q,x,y;w))
		p := sigmoid(mu * (px - py))
		c := mu * (1 - p)
		if c == 0 {
			continue
		}
		addPairGrad(ix, w, ex.Q, ex.X, c, grad)
		addPairGrad(ix, w, ex.Q, ex.Y, -c, grad)
	}
	if n := float64(len(examples)); n > 0 {
		for i := range grad {
			grad[i] /= n
		}
	}
}

// addPairGrad accumulates c · ∂π(v,u)/∂w into grad, exploiting sparsity:
// only coordinates present in m_vu, m_v or m_u are touched.
func addPairGrad(ix *index.Index, w []float64, v, u graph.NodeID, c float64, grad []float64) {
	if v == u {
		return // π(x,x) is constant 1
	}
	mv := ix.NodeVec(v)
	mu := ix.NodeVec(u)
	mvu := ix.PairVec(v, u)
	den := mv.Dot(w) + mu.Dot(w)
	if den <= 0 {
		return
	}
	num := mvu.Dot(w)
	inv2 := 1 / (den * den)
	for _, e := range mvu {
		grad[e.Meta] += c * 2 * den * e.Count * inv2
	}
	for _, e := range mv {
		grad[e.Meta] -= c * 2 * num * e.Count * inv2
	}
	for _, e := range mu {
		grad[e.Meta] -= c * 2 * num * e.Count * inv2
	}
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
