package core
