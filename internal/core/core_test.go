package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
)

// toyIndex builds the metagraph vectors of the toy graph over M1–M4.
func toyIndex(t testing.TB) (*graph.Graph, *index.Index) {
	t.Helper()
	g := fixtures.Toy()
	mgs := fixtures.All()
	b := index.NewBuilder(len(mgs))
	matcher := match.NewSymISO(g)
	for i, m := range mgs {
		b.AddMetagraph(i, m, matcher)
	}
	return g, b.Build()
}

func users(g *graph.Graph) []graph.NodeID {
	return g.NodesOfType(g.Types().ID("user"))
}

func TestProximityTheorem1(t *testing.T) {
	g, ix := toyIndex(t)
	us := users(g)

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, ix.NumMeta())
		for i := range w {
			w[i] = rng.Float64()
		}
		c := 0.5 + 2*rng.Float64()
		cw := make([]float64, len(w))
		for i := range w {
			cw[i] = c * w[i]
		}
		for _, x := range us {
			// Self-maximum.
			if Proximity(ix, w, x, x) != 1 {
				return false
			}
			for _, y := range us {
				p := Proximity(ix, w, x, y)
				// Range.
				if p < 0 || p > 1+1e-12 {
					return false
				}
				// Symmetry.
				if math.Abs(p-Proximity(ix, w, y, x)) > 1e-12 {
					return false
				}
				// Scale-invariance.
				if math.Abs(p-Proximity(ix, cw, x, y)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestProximityToyValues(t *testing.T) {
	g, ix := toyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	alice := g.NodeByName("Alice")
	w := UniformWeights(ix.NumMeta())
	// m_Kate = (M1:1, M2:1, M3:1); m_Jay = (M1:1, M3:1); m_{Kate,Jay} =
	// (M1:1, M3:1) → π = 2·2/(3+2) = 0.8.
	if got := Proximity(ix, w, kate, jay); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("π(Kate,Jay) = %f, want 0.8", got)
	}
	// m_Alice = (M2:1, M3:1, M4:1); m_{Kate,Alice} = (M2:1) → 2/(3+3).
	if got := Proximity(ix, w, kate, alice); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("π(Kate,Alice) = %f, want 1/3", got)
	}
	// Unrelated pair.
	tom := g.NodeByName("Tom")
	if got := Proximity(ix, w, kate, tom); got != 0 {
		t.Fatalf("π(Kate,Tom) = %f, want 0", got)
	}
}

func TestRank(t *testing.T) {
	g, ix := toyIndex(t)
	kate := g.NodeByName("Kate")
	w := UniformWeights(ix.NumMeta())
	r := Rank(ix, w, kate)
	if len(r) != 2 {
		t.Fatalf("Rank(Kate) = %v", r)
	}
	if r[0].Node != g.NodeByName("Jay") || r[1].Node != g.NodeByName("Alice") {
		t.Fatalf("Rank(Kate) order = %v", r)
	}
	if r[0].Score <= r[1].Score {
		t.Fatalf("scores out of order: %v", r)
	}
	if top := RankTop(ix, w, kate, 1); len(top) != 1 || top[0].Node != r[0].Node {
		t.Fatalf("RankTop = %v", top)
	}
	if all := RankTop(ix, w, kate, 0); len(all) != 2 {
		t.Fatalf("RankTop(0) = %v", all)
	}
}

func TestNormalizeWeights(t *testing.T) {
	w := []float64{2, -1, 4}
	NormalizeWeights(w)
	if w[0] != 0.5 || w[1] != 0 || w[2] != 1 {
		t.Fatalf("normalized = %v", w)
	}
	z := []float64{0, 0}
	NormalizeWeights(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero vector changed: %v", z)
	}
}

// TestGradientMatchesFiniteDifference validates the closed-form gradient of
// Sect. III-B against a numerical derivative.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	g, ix := toyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	alice := g.NodeByName("Alice")
	bob := g.NodeByName("Bob")
	tom := g.NodeByName("Tom")
	examples := []Example{
		{Q: kate, X: jay, Y: alice},
		{Q: bob, X: alice, Y: tom},
		{Q: kate, X: alice, Y: tom},
	}
	rng := rand.New(rand.NewSource(42))
	const mu = 5.0
	for trial := 0; trial < 10; trial++ {
		w := make([]float64, ix.NumMeta())
		for i := range w {
			w[i] = 0.2 + rng.Float64()
		}
		grad := make([]float64, len(w))
		gradient(ix, w, examples, mu, grad)
		const h = 1e-6
		for i := range w {
			wp := append([]float64(nil), w...)
			wm := append([]float64(nil), w...)
			wp[i] += h
			wm[i] -= h
			num := (LogLikelihood(ix, wp, examples, mu) - LogLikelihood(ix, wm, examples, mu)) / (2 * h)
			if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("trial %d coord %d: analytic %g vs numeric %g", trial, i, grad[i], num)
			}
		}
	}
}

func TestTrainLearnsClassmateWeights(t *testing.T) {
	g, ix := toyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	alice := g.NodeByName("Alice")
	bob := g.NodeByName("Bob")
	tom := g.NodeByName("Tom")

	// Classmate supervision: Jay before Alice for Kate; Tom before Alice
	// for Bob. Characteristic metagraph: M1 (shared school+major).
	examples := []Example{
		{Q: kate, X: jay, Y: alice},
		{Q: bob, X: tom, Y: alice},
	}
	opts := DefaultTrain()
	opts.Restarts = 3
	model := Train(ix, examples, opts)

	uniLL := LogLikelihood(ix, UniformWeights(ix.NumMeta()), examples, opts.Mu)
	if model.LogLikelihood < uniLL {
		t.Fatalf("trained LL %f worse than uniform %f", model.LogLikelihood, uniLL)
	}
	// The learned proximity must respect the supervision.
	if Proximity(ix, model.W, kate, jay) <= Proximity(ix, model.W, kate, alice) {
		t.Fatalf("training failed to order Jay before Alice: w=%v", model.W)
	}
	// M1 (classmate) must dominate M2 (close-friend evidence toward Alice).
	if model.W[0] <= model.W[1] {
		t.Fatalf("w[M1]=%f should exceed w[M2]=%f", model.W[0], model.W[1])
	}
	// Weights normalized to [0, 1].
	for _, v := range model.W {
		if v < 0 || v > 1 {
			t.Fatalf("weights not normalized: %v", model.W)
		}
	}
	if model.Iterations <= 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestTrainDeterministic(t *testing.T) {
	g, ix := toyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	alice := g.NodeByName("Alice")
	ex := []Example{{Q: kate, X: jay, Y: alice}}
	opts := DefaultTrain()
	opts.Restarts = 2
	a := Train(ix, ex, opts)
	b := Train(ix, ex, opts)
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatalf("non-deterministic training: %v vs %v", a.W, b.W)
		}
	}
}

func TestTrainEmptyExamples(t *testing.T) {
	_, ix := toyIndex(t)
	model := Train(ix, nil, DefaultTrain())
	if model == nil || len(model.W) != ix.NumMeta() {
		t.Fatal("Train with no examples must still return a model")
	}
}

func TestSeeds(t *testing.T) {
	ms := fixtures.All()
	// Only M3 is a metapath.
	got := Seeds(ms)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Seeds = %v, want [2]", got)
	}
}

func TestCandidateScoresOrdering(t *testing.T) {
	ms := fixtures.All()
	seedIdx := []int{2} // M3 (user–address–user)
	w0 := []float64{1}
	fwd := CandidateScores(ms, seedIdx, w0, false)
	rev := CandidateScores(ms, seedIdx, w0, true)
	if len(fwd) != 3 || len(rev) != 3 {
		t.Fatalf("scores: %v / %v", fwd, rev)
	}
	for i := 1; i < len(fwd); i++ {
		if fwd[i].H > fwd[i-1].H {
			t.Fatalf("forward order broken: %v", fwd)
		}
		if rev[i].H < rev[i-1].H {
			t.Fatalf("reverse order broken: %v", rev)
		}
	}
	// M4 contains an address node like the seed; M1 does not, so
	// H(M4) > H(M1).
	hOf := func(sc []ScoredCandidate, idx int) float64 {
		for _, s := range sc {
			if s.Index == idx {
				return s.H
			}
		}
		t.Fatalf("index %d missing", idx)
		return 0
	}
	if hOf(fwd, 3) <= hOf(fwd, 0) {
		t.Fatalf("H(M4)=%f should exceed H(M1)=%f", hOf(fwd, 3), hOf(fwd, 0))
	}
	// Zero seed weight wipes all scores.
	zero := CandidateScores(ms, seedIdx, []float64{0}, false)
	for _, s := range zero {
		if s.H != 0 {
			t.Fatalf("H with zero weights = %v", zero)
		}
	}
}

func TestDualStage(t *testing.T) {
	g, ix := toyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	alice := g.NodeByName("Alice")
	bob := g.NodeByName("Bob")
	tom := g.NodeByName("Tom")
	ms := fixtures.All()

	matched := [][]int(nil)
	matchFn := func(indices []int) *index.Index {
		matched = append(matched, append([]int(nil), indices...))
		return ix.Project(indices)
	}
	examples := []Example{
		{Q: kate, X: jay, Y: alice},
		{Q: bob, X: tom, Y: alice},
	}
	opts := DefaultDualStage(2)
	opts.Train.Restarts = 2
	res := DualStage(ms, matchFn, examples, opts)

	if len(res.SeedIdx) != 1 || res.SeedIdx[0] != 2 {
		t.Fatalf("SeedIdx = %v", res.SeedIdx)
	}
	if len(res.CandIdx) != 2 {
		t.Fatalf("CandIdx = %v", res.CandIdx)
	}
	if len(res.Kept) != 3 || res.Kept[0] != 2 {
		t.Fatalf("Kept = %v", res.Kept)
	}
	if len(res.Model.W) != 3 {
		t.Fatalf("model size %d", len(res.Model.W))
	}
	// Two match calls: seeds, then seeds+candidates.
	if len(matched) != 2 || len(matched[0]) != 1 || len(matched[1]) != 3 {
		t.Fatalf("match calls = %v", matched)
	}
	// WeightFor maps back to original indices; unmatched metagraphs get 0.
	sum := 0.0
	for i := range ms {
		sum += res.WeightFor(i)
	}
	if sum == 0 {
		t.Fatal("all mapped weights zero")
	}
	unmatched := -1
	for i := range ms {
		found := false
		for _, k := range res.Kept {
			if k == i {
				found = true
			}
		}
		if !found {
			unmatched = i
		}
	}
	if unmatched == -1 {
		t.Fatal("expected one unmatched metagraph")
	}
	if res.WeightFor(unmatched) != 0 {
		t.Fatal("unmatched metagraph has non-zero weight")
	}
}

func TestDualStageMultiStage(t *testing.T) {
	g, ix := toyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	alice := g.NodeByName("Alice")
	ms := fixtures.All()
	matchFn := func(indices []int) *index.Index { return ix.Project(indices) }
	ex := []Example{{Q: kate, X: jay, Y: alice}}
	opts := DefaultDualStage(3)
	opts.Stages = 3
	opts.Train.Restarts = 1
	res := DualStage(ms, matchFn, ex, opts)
	if len(res.CandIdx) != 3 {
		t.Fatalf("multi-stage CandIdx = %v", res.CandIdx)
	}
	if len(res.Kept) != 4 {
		t.Fatalf("multi-stage Kept = %v", res.Kept)
	}
}

func TestFunctionalSimilarity(t *testing.T) {
	if FunctionalSimilarity(0.9, 0.9) != 1 {
		t.Fatal("FS of equal weights should be 1")
	}
	if got := FunctionalSimilarity(1, 0); got != 0 {
		t.Fatalf("FS(1,0) = %f", got)
	}
	if got := FunctionalSimilarity(0.2, 0.7); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FS(0.2,0.7) = %f", got)
	}
}

func TestPartialTransitivityOnToy(t *testing.T) {
	// A sanity check in the spirit of Theorem 1's partial transitivity:
	// with uniform weights, Kate close to both Jay and Alice implies
	// Jay–Alice proximity is not forced to zero structurally... on the toy
	// graph Jay and Alice actually share nothing, so instead verify the
	// formal statement's trivial direction: proximities are consistent
	// bounds (π ≤ 1 and π(x,x) = 1 held elsewhere). Here we verify that
	// the premise of the theorem cannot be satisfied with ε close to 0.5
	// for this w, documenting the boundary behaviour.
	g, ix := toyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	alice := g.NodeByName("Alice")
	w := UniformWeights(ix.NumMeta())
	pj := Proximity(ix, w, kate, jay)
	pa := Proximity(ix, w, kate, alice)
	if pj >= 1 || pa >= 1 {
		t.Fatalf("premise proximities out of open range: %f %f", pj, pa)
	}
}
