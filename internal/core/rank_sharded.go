package core

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/index"
)

// Sharded online ranking. RankTop scans every candidate of the query
// serially; on graphs dense enough to matter (the "heavy traffic" regime of
// the ROADMAP) that scan is the whole online cost of Fig. 3. The candidate
// set is embarrassingly parallel: shards of the partner list are scored
// independently, each shard keeps its local top k in a bounded heap, and
// the shard winners merge into the global top k. Every arithmetic step is
// identical to the serial path and the final order is the same total order
// Rank uses, so the sharded ranking is element-for-element identical to the
// serial one for every worker count.

// shardMinPartners is the candidate count below which sharding cannot pay
// for its goroutine fan-out; shorter partner lists fall back to the serial
// scan (which is also the k <= 0 reference order).
const shardMinPartners = 32

// RankTopSharded is RankTop with the candidate scan fanned out over the
// given number of workers (index.Workers-normalized; values <= 1 and short
// candidate lists use the serial scan). The result is identical to
// RankTop(ix, w, q, k) for every worker count.
func RankTopSharded(ix *index.Index, w []float64, q graph.NodeID, k int, workers int) []Ranked {
	partners := ix.Partners(q)
	workers = index.Workers(workers)
	if workers > len(partners) {
		workers = len(partners)
	}
	if workers <= 1 || len(partners) < shardMinPartners {
		return RankTop(ix, w, q, k)
	}

	qDot := ix.NodeVec(q).Dot(w)
	shards := make([][]Ranked, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo := s * len(partners) / workers
		hi := (s + 1) * len(partners) / workers
		wg.Add(1)
		go func(s int, chunk []graph.NodeID) {
			defer wg.Done()
			shards[s] = rankShard(ix, w, q, qDot, chunk, k)
		}(s, partners[lo:hi])
	}
	wg.Wait()

	total := 0
	for _, sh := range shards {
		total += len(sh)
	}
	out := make([]Ranked, 0, total)
	for _, sh := range shards {
		out = append(out, sh...)
	}
	// Each shard's top k contains every global top-k element that lives in
	// that shard, so sorting the union under the ranking order and cutting
	// at k reproduces the serial result exactly.
	sortRanked(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// rankShard scores one chunk of the candidate list. With a positive k it
// keeps only the chunk's k best in a bounded heap; k <= 0 keeps everything
// (the caller wants the full ranking).
func rankShard(ix *index.Index, w []float64, q graph.NodeID, qDot float64, chunk []graph.NodeID, k int) []Ranked {
	if k <= 0 {
		out := make([]Ranked, 0, len(chunk))
		for _, v := range chunk {
			if r, ok := scorePartner(ix, w, q, qDot, v); ok {
				out = append(out, r)
			}
		}
		return out
	}
	// A shard can never keep more than its chunk, so an oversized k (a
	// client asking for "everything") must not size the allocation.
	capHint := k
	if capHint > len(chunk) {
		capHint = len(chunk)
	}
	h := make(worstHeap, 0, capHint)
	for _, v := range chunk {
		r, ok := scorePartner(ix, w, q, qDot, v)
		if !ok {
			continue
		}
		if len(h) < k {
			h.push(r)
		} else if rankedBetter(r, h[0]) {
			h[0] = r
			h.siftDown(0)
		}
	}
	return h
}

// scorePartner evaluates one candidate exactly as the serial Rank loop
// does, reporting false for the candidates Rank drops (zero denominator or
// non-positive score).
func scorePartner(ix *index.Index, w []float64, q graph.NodeID, qDot float64, v graph.NodeID) (Ranked, bool) {
	den := qDot + ix.NodeVec(v).Dot(w)
	if den <= 0 {
		return Ranked{}, false
	}
	s := 2 * ix.PairVec(q, v).Dot(w) / den
	if s <= 0 {
		return Ranked{}, false
	}
	return Ranked{v, s}, true
}

// worstHeap is a bounded top-k heap with the WORST kept candidate at the
// root (a min-heap under the ranking order), so replacing the loser when a
// better candidate arrives is one root swap plus a sift. Hand-rolled
// instead of container/heap to keep the per-query hot loop free of
// interface boxing.
type worstHeap []Ranked

// push appends r and restores the heap property.
func (h *worstHeap) push(r Ranked) {
	*h = append(*h, r)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !rankedBetter((*h)[parent], (*h)[i]) {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

// siftDown restores the heap property after the root was replaced.
func (h worstHeap) siftDown(i int) {
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && rankedBetter(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && rankedBetter(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
