// Package core implements the paper's primary contribution: the
// metagraph-based proximity (MGP) family (Sect. III-A), its supervised
// learning (Sect. III-B), and dual-stage training (Sect. III-C, Alg. 1).
package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/index"
)

// Proximity evaluates the MGP measure of Def. 3:
//
//	π(x, y; w) = 2 (m_xy · w) / (m_x · w + m_y · w)
//
// over the precomputed metagraph vectors in ix. w must be non-negative and
// len(w) == ix.NumMeta(). π(x, x) is 1 by the self-maximum property; a pair
// with zero denominator (neither node ever occurs symmetrically under w's
// support) has proximity 0.
func Proximity(ix *index.Index, w []float64, x, y graph.NodeID) float64 {
	if x == y {
		return 1
	}
	den := ix.NodeVec(x).Dot(w) + ix.NodeVec(y).Dot(w)
	if den <= 0 {
		return 0
	}
	return 2 * ix.PairVec(x, y).Dot(w) / den
}

// Ranked is one entry of a proximity ranking.
type Ranked struct {
	Node  graph.NodeID
	Score float64
}

// rankedBetter is the total ranking order: descending score with ties
// broken by ascending node id. Node ids are distinct within one ranking, so
// the order has no equal elements and every sort under it is deterministic.
func rankedBetter(a, b Ranked) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Node < b.Node
}

// sortRanked orders rs by rankedBetter.
func sortRanked(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool { return rankedBetter(rs[i], rs[j]) })
}

// Rank returns the candidate nodes for query q ordered by descending MGP
// (ties broken by ascending node id for determinism). Candidates are the
// nodes that co-occur symmetrically with q in at least one instance — every
// other node has proximity 0 (online phase of Fig. 3).
func Rank(ix *index.Index, w []float64, q graph.NodeID) []Ranked {
	partners := ix.Partners(q)
	out := make([]Ranked, 0, len(partners))
	qDot := ix.NodeVec(q).Dot(w)
	for _, v := range partners {
		den := qDot + ix.NodeVec(v).Dot(w)
		if den <= 0 {
			continue
		}
		s := 2 * ix.PairVec(q, v).Dot(w) / den
		if s > 0 {
			out = append(out, Ranked{v, s})
		}
	}
	sortRanked(out)
	return out
}

// RankTop returns the top k of Rank (k <= 0 means all).
func RankTop(ix *index.Index, w []float64, q graph.NodeID, k int) []Ranked {
	r := Rank(ix, w, q)
	if k > 0 && len(r) > k {
		r = r[:k]
	}
	return r
}

// UniformWeights returns the all-ones weight vector of length n (the MGP-U
// baseline uses it; by scale-invariance any positive constant is
// equivalent).
func UniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// NormalizeWeights scales w in place so its maximum entry is 1 (legal by
// the scale-invariance property of Theorem 1), clamping negatives to 0.
// A zero vector is left unchanged.
func NormalizeWeights(w []float64) {
	max := 0.0
	for i, v := range w {
		if v < 0 {
			w[i] = 0
		} else if v > max {
			max = v
		}
	}
	if max == 0 {
		return
	}
	for i := range w {
		w[i] /= max
	}
}
