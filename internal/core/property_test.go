package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/metagraph"
)

// Property tests on randomized graphs: MGP's Theorem 1 guarantees and the
// learning machinery must hold on arbitrary typed attribute graphs, not
// just the paper's toy.

// randomBipartiteIndex builds a random user/attribute graph and its index
// over a few standard metagraphs.
func randomBipartiteIndex(rng *rand.Rand) (*graph.Graph, *index.Index) {
	b := graph.NewBuilder()
	b.Types().Register("user")
	b.Types().Register("a")
	b.Types().Register("b")
	nu := 4 + rng.Intn(8)
	na := 2 + rng.Intn(4)
	users := make([]graph.NodeID, nu)
	for i := range users {
		users[i] = b.AddNode("user", "")
	}
	attrsA := make([]graph.NodeID, na)
	attrsB := make([]graph.NodeID, na)
	for i := 0; i < na; i++ {
		attrsA[i] = b.AddNode("a", "")
		attrsB[i] = b.AddNode("b", "")
	}
	for _, u := range users {
		for k := 0; k < 1+rng.Intn(2); k++ {
			b.AddEdge(u, attrsA[rng.Intn(na)])
		}
		if rng.Intn(2) == 0 {
			b.AddEdge(u, attrsB[rng.Intn(na)])
		}
	}
	g := b.MustBuild()

	tu, ta, tb := g.Types().ID("user"), g.Types().ID("a"), g.Types().ID("b")
	ms := []*metagraph.Metagraph{
		metagraph.MustNew([]graph.TypeID{tu, ta, tu}, []metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}),
		metagraph.MustNew([]graph.TypeID{tu, tb, tu}, []metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}),
		metagraph.MustNew([]graph.TypeID{tu, tu, ta, tb},
			[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}}),
	}
	bld := index.NewBuilder(len(ms))
	matcher := match.NewSymISO(g)
	for i, m := range ms {
		bld.AddMetagraph(i, m, matcher)
	}
	return g, bld.Build()
}

// Property: π ∈ [0,1], symmetric, self-max, scale-invariant on random
// graphs and random non-negative weights.
func TestQuickTheorem1RandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ix := randomBipartiteIndex(rng)
		w := make([]float64, ix.NumMeta())
		for i := range w {
			w[i] = rng.Float64()
		}
		us := g.NodesOfType(g.Types().ID("user"))
		for trial := 0; trial < 10; trial++ {
			x := us[rng.Intn(len(us))]
			y := us[rng.Intn(len(us))]
			p := Proximity(ix, w, x, y)
			if p < 0 || p > 1+1e-9 {
				return false
			}
			if math.Abs(p-Proximity(ix, w, y, x)) > 1e-12 {
				return false
			}
			if Proximity(ix, w, x, x) != 1 {
				return false
			}
			c := 0.1 + 3*rng.Float64()
			cw := make([]float64, len(w))
			for i := range w {
				cw[i] = c * w[i]
			}
			if math.Abs(p-Proximity(ix, cw, x, y)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the analytic gradient matches finite differences on random
// graphs and random example sets.
func TestQuickGradientRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ix := randomBipartiteIndex(rng)
		us := g.NodesOfType(g.Types().ID("user"))
		var ex []Example
		for k := 0; k < 5; k++ {
			ex = append(ex, Example{
				Q: us[rng.Intn(len(us))],
				X: us[rng.Intn(len(us))],
				Y: us[rng.Intn(len(us))],
			})
		}
		w := make([]float64, ix.NumMeta())
		for i := range w {
			w[i] = 0.2 + rng.Float64()
		}
		grad := make([]float64, len(w))
		gradient(ix, w, ex, 5, grad)
		const h = 1e-6
		for i := range w {
			wp := append([]float64(nil), w...)
			wm := append([]float64(nil), w...)
			wp[i] += h
			wm[i] -= h
			num := (LogLikelihood(ix, wp, ex, 5) - LogLikelihood(ix, wm, ex, 5)) / (2 * h)
			if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: gradient ascent never decreases the mean log-likelihood
// between its start and converged point.
func TestQuickAscentMonotoneEndToEnd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ix := randomBipartiteIndex(rng)
		us := g.NodesOfType(g.Types().ID("user"))
		var ex []Example
		for k := 0; k < 6; k++ {
			ex = append(ex, Example{
				Q: us[rng.Intn(len(us))],
				X: us[rng.Intn(len(us))],
				Y: us[rng.Intn(len(us))],
			})
		}
		opts := DefaultTrain()
		opts.MaxIters = 120
		w := make([]float64, ix.NumMeta())
		for i := range w {
			w[i] = 0.1 + 0.9*rng.Float64()
		}
		start := LogLikelihood(ix, w, ex, opts.Mu)
		end, iters := ascend(ix, ex, w, opts)
		if iters < 0 {
			return false
		}
		// Gradient ascent must not end below its own starting point (small
		// slack for the final partial step before the convergence check).
		return end >= start-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: m_xy ≤ min(m_x, m_y) coordinate-wise (each co-occurrence is an
// occurrence), which is what keeps π ≤ 1.
func TestQuickVectorDominance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ix := randomBipartiteIndex(rng)
		us := g.NodesOfType(g.Types().ID("user"))
		for _, x := range us {
			for _, y := range ix.Partners(x) {
				for i := 0; i < ix.NumMeta(); i++ {
					pv := ix.PairVec(x, y).Get(i)
					if pv > ix.NodeVec(x).Get(i) || pv > ix.NodeVec(y).Get(i) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
