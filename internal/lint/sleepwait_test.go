package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestSleepWait pins the polling rule: time.Sleep inside any loop shape
// (for, range, nested) in serving code is reported exactly once, while
// one-shot sleeps, sleeps inside goroutines launched from a loop, and
// ticker-driven periodic work stay silent.
func TestSleepWait(t *testing.T) {
	linttest.Run(t, testdata(t), lint.SleepWait, "repro/internal/proxy")
}
