package lint

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
)

// AtomicWrite enforces the PR-4 lesson that birthed internal/atomicfile:
// the temp+fsync+rename+dirsync dance was hand-copied three times and
// one copy was wrong. Outside internal/atomicfile (the one blessed
// implementation) and internal/wal (which owns its own fsync schedule
// for segments and sidecars), code must not reach for the raw
// persistence primitives — os.Rename, os.Create, os.CreateTemp, or
// (*os.File).Sync. Durable files go through atomicfile.Write/WriteWith.
var AtomicWrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "report raw os.Rename/os.Create/os.CreateTemp/(*os.File).Sync persistence outside " +
		"internal/atomicfile and internal/wal; durable files go through atomicfile.Write/WriteWith",
	Run: runAtomicWrite,
}

// rawPersistence maps each forbidden callee to the habit it indicates.
var rawPersistence = map[string]string{
	"os.Rename":       "a hand-rolled atomic-replace",
	"os.Create":       "a hand-rolled file write",
	"os.CreateTemp":   "a hand-rolled temp+rename",
	"(*os.File).Sync": "a hand-rolled fsync schedule",
}

func runAtomicWrite(pass *analysis.Pass) (any, error) {
	if pkgIn(pass, pkgAtomicfile, pkgWAL) {
		return nil, nil // the two owners of raw durability
	}
	sup := newSuppressor(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(pass, call)
			if why, bad := rawPersistence[name]; bad {
				sup.report(call.Pos(),
					"%s outside internal/atomicfile and internal/wal is %s: write durable files through internal/atomicfile (Write/WriteWith)",
					name, why)
			}
			return true
		})
	}
	return nil, nil
}
