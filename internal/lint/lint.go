// Package lint is the repo's project-specific analyzer suite: every
// load-bearing convention that earlier PRs enforced by review (versioned
// paths live only in api, durable files go through internal/atomicfile,
// metric names are literal and cardinality-bounded, handlers render
// errors through the api envelope, exported I/O takes a leading context,
// serving code never sleep-polls) is a go/analysis pass here, run by
// cmd/semproxlint under `make lint` and CI.
//
// Suppression: a finding can be silenced with a
//
//	//lint:semprox-allow <justification>
//
// comment on the offending line or the line directly above it. The
// justification is mandatory — an allow comment without one is itself
// reported — so every suppression carries its reason in the diff, the
// same way the DESIGN.md prose used to.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Analyzers returns the full suite in a stable order; cmd/semproxlint
// registers exactly this slice, so adding an analyzer here is all it
// takes to put a new invariant under CI.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		RawPath,
		AtomicWrite,
		MetricName,
		Envelope,
		CtxFirst,
		SleepWait,
	}
}

// Package paths the analyzers scope their rules by. Test variants
// ("repro/api_test" external test packages) normalize to the same path.
const (
	pkgAPI        = "repro/api"
	pkgClient     = "repro/client"
	pkgAtomicfile = "repro/internal/atomicfile"
	pkgObs        = "repro/internal/obs"
	pkgProxy      = "repro/internal/proxy"
	pkgReplica    = "repro/internal/replica"
	pkgServer     = "repro/internal/server"
	pkgWAL        = "repro/internal/wal"
)

// normPkgPath maps an external test package ("repro/api_test") onto the
// package it tests, so scoping rules treat both the same way.
func normPkgPath(pass *analysis.Pass) string {
	return strings.TrimSuffix(pass.Pkg.Path(), "_test")
}

// pkgIn reports whether the pass's package is one of paths.
func pkgIn(pass *analysis.Pass, paths ...string) bool {
	p := normPkgPath(pass)
	for _, want := range paths {
		if p == want {
			return true
		}
	}
	return false
}

// isTestFile reports whether file was parsed from a _test.go file.
// Conventions about serving-path code do not bind tests: tests poll,
// hardcode wire bytes, and write scratch files on purpose.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}

// calleeName resolves the statically-called function of call to its
// FullName ("os.Rename", "(*os.File).Sync"), or "" when the callee is
// dynamic.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	f, ok := fn.(*types.Func)
	if !ok {
		return ""
	}
	return f.FullName()
}

// allowDirective is the suppression escape hatch every analyzer honors.
const allowDirective = "//lint:semprox-allow"

// suppressor indexes the //lint:semprox-allow comments of a pass so
// report can drop findings the code explicitly (and justifiedly) waived.
type suppressor struct {
	pass *analysis.Pass
	// allows maps filename → line → justification text ("" = missing).
	allows map[string]map[int]string
}

func newSuppressor(pass *analysis.Pass) *suppressor {
	s := &suppressor{pass: pass, allows: make(map[string]map[int]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //lint:semprox-allowx — not the directive
				}
				p := pass.Fset.Position(c.Pos())
				m := s.allows[p.Filename]
				if m == nil {
					m = make(map[int]string)
					s.allows[p.Filename] = m
				}
				m[p.Line] = strings.TrimSpace(rest)
			}
		}
	}
	return s
}

// report emits a diagnostic at pos unless an allow comment with a
// non-empty justification covers the line (same line or the line above).
// An allow comment without a justification does not suppress — the
// finding is re-reported with a reminder, so "zero unexplained
// suppressions" is machine-checked too.
func (s *suppressor) report(pos token.Pos, format string, args ...any) {
	p := s.pass.Fset.Position(pos)
	if m := s.allows[p.Filename]; m != nil {
		for _, line := range []int{p.Line, p.Line - 1} {
			reason, ok := m[line]
			if !ok {
				continue
			}
			if reason != "" {
				return // justified waiver
			}
			s.pass.Reportf(pos, "%s (//lint:semprox-allow needs a justification: //lint:semprox-allow <why this line is exempt>)",
				fmt.Sprintf(format, args...))
			return
		}
	}
	s.pass.Reportf(pos, format, args...)
}

// stringTagsAndImports collects the BasicLits of a file that are import
// paths or struct tags, which path- and name-shaped rules must never
// fire on.
func stringTagsAndImports(file *ast.File) map[*ast.BasicLit]bool {
	skip := make(map[*ast.BasicLit]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ImportSpec:
			skip[n.Path] = true
		case *ast.Field:
			if n.Tag != nil {
				skip[n.Tag] = true
			}
		}
		return true
	})
	return skip
}
