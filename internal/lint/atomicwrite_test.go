package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestAtomicWrite pins that the four raw persistence callees
// (os.Create, os.CreateTemp, os.Rename, (*os.File).Sync) are reported
// outside internal/atomicfile and internal/wal, that reads and
// non-durable writes are not, and that the two blessed packages stay
// exempt.
func TestAtomicWrite(t *testing.T) {
	linttest.Run(t, testdata(t), lint.AtomicWrite,
		"repro/internal/snapshot", "repro/internal/atomicfile", "repro/internal/wal")
}
