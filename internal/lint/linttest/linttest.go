// Package linttest is the golden-file harness the analyzer suite's
// tests run on: a small, hermetic analogue of
// golang.org/x/tools/go/analysis/analysistest (which is not in the
// vendored subset of x/tools).
//
// Layout is analysistest's GOPATH style: a testdata directory holds
// src/<import/path>/*.go trees. Every import — including "stdlib"
// packages like os, time, net/http — resolves from the same tree, so
// testdata ships tiny fakes of the handful of standard declarations the
// analyzers match on (same import paths, same names) and a run never
// type-checks the real standard library: goldens are fast, offline, and
// independent of the host toolchain's sources.
//
// Expectations are analysistest's syntax: a comment
//
//	// want `regexp` "another regexp"
//
// on the line of the expected diagnostic. Every diagnostic must match an
// expectation on its exact line and every expectation must be consumed,
// so goldens pin both the positives and the negatives.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each named package (and, transitively, everything it
// imports) from dir's GOPATH-style src/ tree, applies a to each named
// package, and fails t on any mismatch between reported diagnostics and
// the // want expectations in the package's files.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	if len(a.Requires) > 0 {
		t.Fatalf("linttest cannot run %s: analyzers with Requires need a full driver", a.Name)
	}
	l := &loader{
		t:    t,
		fset: token.NewFileSet(),
		src:  filepath.Join(dir, "src"),
		pkgs: make(map[string]*pkgInfo),
	}
	for _, path := range pkgs {
		pi := l.load(path)
		diags := runAnalyzer(t, a, l.fset, pi)
		checkExpectations(t, a.Name, l.fset, pi.files, diags)
	}
}

// pkgInfo is one type-checked testdata package.
type pkgInfo struct {
	tpkg  *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves and memoizes testdata packages; it is the
// types.Importer of its own type-checking runs, so fakes in the tree
// shadow the real standard library by construction.
type loader struct {
	t       *testing.T
	fset    *token.FileSet
	src     string
	pkgs    map[string]*pkgInfo
	loading []string // active import chain, for cycle reporting
}

func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err != nil {
		// Not in the tree: fall back to the compiler's export data so
		// testdata may also lean on real stdlib when a fake would be
		// bigger than the real thing.
		return importer.Default().Import(path)
	}
	return l.load(path).tpkg, nil
}

func (l *loader) load(path string) *pkgInfo {
	l.t.Helper()
	if pi, ok := l.pkgs[path]; ok {
		if pi == nil {
			l.t.Fatalf("import cycle in testdata: %s", strings.Join(append(l.loading, path), " -> "))
		}
		return pi
	}
	l.pkgs[path] = nil // cycle marker
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("loading testdata package %s: %v", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		l.t.Fatalf("testdata package %s has no .go files", path)
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			l.t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	var terrs []string
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err.Error()) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(terrs) > 0 {
		l.t.Fatalf("type errors in testdata package %s (testdata must compile):\n  %s",
			path, strings.Join(terrs, "\n  "))
	}
	pi := &pkgInfo{tpkg: tpkg, files: files, info: info}
	l.pkgs[path] = pi
	return pi
}

// runAnalyzer applies a to one package and collects its diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, pi *pkgInfo) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      pi.files,
		Pkg:        pi.tpkg,
		TypesInfo:  pi.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   make(map[*analysis.Analyzer]any),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s failed on %s: %v", a.Name, pi.tpkg.Path(), err)
	}
	return diags
}

// expectation is one parsed // want regexp, consumed by at most one
// diagnostic on its line.
type expectation struct {
	re       *regexp.Regexp
	raw      string
	consumed bool
}

type lineKey struct {
	file string
	line int
}

// checkExpectations matches diagnostics against // want comments
// line-for-line.
func checkExpectations(t *testing.T, name string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				exps, err := parseWants(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				k := lineKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], exps...)
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, exp := range wants[k] {
			if !exp.consumed && exp.re.MatchString(d.Message) {
				exp.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, name, d.Message)
		}
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.consumed {
				t.Errorf("%s:%d: no %s diagnostic matched want %q", k.file, k.line, name, exp.raw)
			}
		}
	}
}

// parseWants splits a want payload into its quoted regexps; both
// double-quoted and backquoted forms are accepted, as in analysistest.
func parseWants(s string) ([]*expectation, error) {
	var out []*expectation
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected a quoted regexp, found %q", s)
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("unterminated quoted regexp in %q", s)
		}
		raw, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", q, err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("compiling want regexp %q: %v", raw, err)
		}
		out = append(out, &expectation{re: re, raw: raw})
		s = s[len(q):]
	}
}
