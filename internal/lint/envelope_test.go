package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestEnvelope pins that http.Error and fmt.Fprint* onto a
// ResponseWriter are reported inside internal/server (the envelope
// helpers being the only sanctioned error path), that printing to a
// non-ResponseWriter is not, and that packages outside
// internal/server + internal/proxy (repro/cmd/etool) are out of scope.
func TestEnvelope(t *testing.T) {
	linttest.Run(t, testdata(t), lint.Envelope, "repro/internal/server", "repro/cmd/etool")
}
