package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestMetricName pins the registration-site rules: names must be
// compile-time constant semprox_-prefixed snake_case strings (named
// constants pass, runtime concatenations fail), and obs.L label values
// must not reach into url.URL or the unbounded http.Request fields —
// mapping through a bounded helper is the sanctioned shape.
func TestMetricName(t *testing.T) {
	linttest.Run(t, testdata(t), lint.MetricName, "repro/internal/metrics")
}
