package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
)

// MetricName keeps the /metrics exposition greppable and its
// cardinality bounded, mechanizing the PR-9 registry conventions:
// every name passed to an internal/obs registration (Counter, Gauge,
// Histogram, RegisterGaugeFunc) must be a compile-time constant
// semprox_-prefixed snake_case string — never a value computed at
// runtime, which dashboards and alerts could not be written against —
// and no obs.L label value may derive from the raw request
// (url.URL fields/methods, Request.URL/RequestURI/Host), because one
// crawler walking unbounded paths would mint an unbounded family of
// time series. Paths must go through a bounded mapping (the pathLabel
// table in internal/obs) before they become label values.
var MetricName = &analysis.Analyzer{
	Name: "metricname",
	Doc: "report non-literal or non-semprox_-prefixed metric names at internal/obs registration " +
		"sites and unbounded (raw request derived) label values",
	Run: runMetricName,
}

// metricNameRe is the accepted shape: semprox_-prefixed snake_case.
var metricNameRe = regexp.MustCompile(`^semprox_[a-z0-9]+(_[a-z0-9]+)*$`)

// registrars are the *obs.Registry methods whose first argument is a
// metric family name.
var registrars = map[string]bool{
	"(*" + pkgObs + ".Registry).Counter":           true,
	"(*" + pkgObs + ".Registry).Gauge":             true,
	"(*" + pkgObs + ".Registry).Histogram":         true,
	"(*" + pkgObs + ".Registry).RegisterGaugeFunc": true,
}

func runMetricName(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch name := calleeName(pass, call); {
			case registrars[name]:
				checkMetricNameArg(pass, sup, call)
			case name == pkgObs+".L" && len(call.Args) == 2:
				checkLabelValue(pass, sup, call.Args[1])
			}
			return true
		})
	}
	return nil, nil
}

// checkMetricNameArg validates the name argument of a registration call:
// it must carry a constant string value (literal or named constant) of
// the semprox_ snake_case shape.
func checkMetricNameArg(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	tv := pass.TypesInfo.Types[arg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		sup.report(arg.Pos(),
			"metric name must be a compile-time constant string so the exposition is greppable at rest; got a runtime value")
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRe.MatchString(name) {
		sup.report(arg.Pos(),
			"metric name %q must be a semprox_-prefixed snake_case literal (e.g. semprox_wal_appends_total)", name)
	}
}

// requestDerived reports whether expr reaches into the raw request:
// any field or method of net/url.URL, or the unbounded fields of
// net/http.Request. Such a value is unbounded-cardinality by
// construction and must be mapped through a bounded table first.
func checkLabelValue(pass *analysis.Pass, sup *suppressor, value ast.Expr) {
	ast.Inspect(value, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := recvNamed(pass, se)
		if recv == nil {
			return true
		}
		pkg := recv.Obj().Pkg()
		if pkg == nil {
			return true
		}
		switch {
		case pkg.Path() == "net/url" && recv.Obj().Name() == "URL":
			sup.report(value.Pos(),
				"label value derives from the raw request URL (.%s): metric labels must be cardinality-bounded — map the path through a bounded table first", se.Sel.Name)
			return false
		case pkg.Path() == "net/http" && recv.Obj().Name() == "Request" && unboundedRequestField[se.Sel.Name]:
			sup.report(value.Pos(),
				"label value derives from the raw request (.%s): metric labels must be cardinality-bounded — map the path through a bounded table first", se.Sel.Name)
			return false
		}
		return true
	})
}

// unboundedRequestField lists the http.Request members whose value space
// is caller-controlled and unbounded. Method is deliberately absent: the
// verb set is bounded.
var unboundedRequestField = map[string]bool{
	"URL":        true,
	"RequestURI": true,
	"Host":       true,
	"Header":     true,
}

// recvNamed resolves the receiver type of a selector to its named type,
// unwrapping one level of pointer, or nil when the selector is not a
// field/method selection on a named type.
func recvNamed(pass *analysis.Pass, se *ast.SelectorExpr) *types.Named {
	sel := pass.TypesInfo.Selections[se]
	if sel == nil {
		return nil
	}
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
