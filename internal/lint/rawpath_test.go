package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestRawPath pins the three behaviors of the path rule: versioned and
// legacy literals are reported outside repro/api (including inside full
// URLs), constant references and unrelated strings are not, and the api
// package plus _test.go files are exempt. The rptool package also
// carries the suppression-hatch goldens: a justified
// //lint:semprox-allow (above or inline) silences the finding, a bare
// one re-reports it with the justification reminder.
func TestRawPath(t *testing.T) {
	linttest.Run(t, testdata(t), lint.RawPath, "repro/cmd/rptool", "repro/api")
}
