package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestCtxFirst pins the cancellation-discipline rules in the I/O
// packages: an exported function's context.Context parameter must be
// first (multi-name parameter fields count positions correctly),
// unexported helpers are unconstrained, and mid-path
// context.Background()/TODO() calls are reported.
func TestCtxFirst(t *testing.T) {
	linttest.Run(t, testdata(t), lint.CtxFirst, "repro/internal/replica")
}
