package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Envelope protects the one error-body contract of the wire protocol:
// every non-2xx response is {"error":{"code","message"}} with a
// machine-readable code (see repro/api). Inside the two packages that
// render HTTP responses — internal/server and internal/proxy — calling
// http.Error or fmt.Fprint* on a ResponseWriter ships a free-text body
// that no client can branch on and that breaks the byte-identity
// guarantees the replica and alias tests pin. Errors must go through the
// api envelope helpers (writeErr over api.Errorf).
var Envelope = &analysis.Analyzer{
	Name: "envelope",
	Doc: "report http.Error / fmt.Fprint* error rendering on ResponseWriters in internal/server " +
		"and internal/proxy; non-2xx bodies must be the api error envelope",
	Run: runEnvelope,
}

// fprinters are the fmt functions whose first argument is the
// destination writer.
var fprinters = map[string]bool{
	"fmt.Fprintf":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintln": true,
}

func runEnvelope(pass *analysis.Pass) (any, error) {
	if !pkgIn(pass, pkgServer, pkgProxy) {
		return nil, nil
	}
	rw := responseWriterIface(pass.Pkg)
	sup := newSuppressor(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch name := calleeName(pass, call); {
			case name == "net/http.Error":
				sup.report(call.Pos(),
					"http.Error writes a free-text body: render errors through the api envelope (writeErr / api.Errorf)")
			case fprinters[name] && len(call.Args) > 0 && writesToResponseWriter(pass, rw, call.Args[0]):
				sup.report(call.Pos(),
					"%s onto an http.ResponseWriter bypasses the api envelope: render responses through the api types (writeJSON / writeErr)", name)
			}
			return true
		})
	}
	return nil, nil
}

// responseWriterIface finds net/http.ResponseWriter among the package's
// imports, or nil when net/http is not imported (then nothing in the
// package can hold one under a concrete http type anyway).
func responseWriterIface(pkg *types.Package) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		obj := imp.Scope().Lookup("ResponseWriter")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// writesToResponseWriter reports whether arg's static type satisfies
// http.ResponseWriter.
func writesToResponseWriter(pass *analysis.Pass, rw *types.Interface, arg ast.Expr) bool {
	if rw == nil {
		return false
	}
	t := pass.TypesInfo.TypeOf(arg)
	if t == nil {
		return false
	}
	return types.Implements(t, rw)
}
