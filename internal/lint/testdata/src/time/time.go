// Package time fakes the declarations the sleepwait analyzer matches on.
package time

type Duration int64

const (
	Nanosecond  Duration = 1
	Millisecond          = 1000 * 1000 * Nanosecond
	Second               = 1000 * Millisecond
)

func Sleep(d Duration) {}

type Ticker struct {
	C <-chan struct{}
}

func NewTicker(d Duration) *Ticker { return &Ticker{} }
