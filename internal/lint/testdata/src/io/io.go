// Package io fakes the Writer interface fmt's fake constrains on.
package io

type Writer interface {
	Write(p []byte) (n int, err error)
}
