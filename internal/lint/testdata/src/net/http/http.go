// Package http fakes the request/response surface the envelope and
// metricname analyzers match on.
package http

import "net/url"

type Header map[string][]string

type Request struct {
	Method     string
	URL        *url.URL
	RequestURI string
	Host       string
	Header     Header
}

type ResponseWriter interface {
	Header() Header
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

func Error(w ResponseWriter, error string, code int) {}

const (
	StatusOK                  = 200
	StatusBadRequest          = 400
	StatusInternalServerError = 500
)
