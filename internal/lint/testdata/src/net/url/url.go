// Package url fakes the URL type whose members the metricname analyzer
// treats as unbounded label sources.
package url

type URL struct {
	Path     string
	RawPath  string
	RawQuery string
}

func (u *URL) String() string      { return u.Path }
func (u *URL) EscapedPath() string { return u.Path }
