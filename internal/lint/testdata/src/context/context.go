// Package context fakes the two declarations the ctxfirst analyzer
// matches on: the Context type and the Background/TODO constructors.
package context

type Context interface {
	Done() <-chan struct{}
}

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }

func Background() Context { return emptyCtx{} }

func TODO() Context { return emptyCtx{} }
