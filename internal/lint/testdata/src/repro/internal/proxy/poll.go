// Package proxy exercises sleepwait: no sleep-polling loops in serving
// code.
package proxy

import (
	"context"
	"time"
)

func waitReady(ctx context.Context, ready func() bool) {
	for !ready() {
		time.Sleep(10 * time.Millisecond) // want `time.Sleep in a polling loop`
	}
}

func drain(items []int, tick func(int)) {
	for _, it := range items {
		tick(it)
		time.Sleep(time.Millisecond) // want `time.Sleep in a polling loop`
	}
}

func nested(ready func() bool) {
	for {
		for !ready() {
			time.Sleep(time.Second) // want `time.Sleep in a polling loop`
		}
		return
	}
}

// A single settling sleep outside any loop is in-bounds.
func settleOnce() { time.Sleep(time.Millisecond) }

// A goroutine launched from a loop that sleeps once is not the loop
// polling.
func spawnWorkers(n int, run func()) {
	for i := 0; i < n; i++ {
		go func() {
			time.Sleep(time.Millisecond)
			run()
		}()
	}
}

// Ticker-driven periodic work is the blessed shape.
func periodic(ctx context.Context, tick func()) {
	t := time.NewTicker(time.Second)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			tick()
		}
	}
}
