// Package wal owns its own fsync schedule; atomicwrite must stay
// silent here.
package wal

import "os"

func sealSegment(f *os.File, next string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(f.Name(), next)
}
