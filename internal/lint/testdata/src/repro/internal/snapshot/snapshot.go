// Package snapshot exercises atomicwrite: hand-rolled persistence
// outside the two blessed packages.
package snapshot

import "os"

func saveByHand(path string, data []byte) error {
	f, err := os.Create(path + ".tmp") // want `os.Create outside internal/atomicfile`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // want `\(\*os\.File\)\.Sync outside internal/atomicfile`
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path) // want `os.Rename outside internal/atomicfile`
}

func scratch(dir string) error {
	_, err := os.CreateTemp(dir, "scratch-*") // want `os.CreateTemp outside internal/atomicfile`
	return err
}

// Reading and non-durable writing stay in-bounds.
func read(path string) (*os.File, error) { return os.Open(path) }

func plainWrite(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
