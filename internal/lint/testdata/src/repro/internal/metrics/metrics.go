// Package metrics exercises metricname: literal semprox_ snake_case
// names and cardinality-bounded label values.
package metrics

import (
	"net/http"
	"repro/internal/obs"
)

const goodName = "semprox_reads_total"

const badPrefix = "reads_total"

var runtimeName = "semprox_runtime_total"

func register(r *obs.Registry, req *http.Request) {
	r.Counter(goodName, "named constants with the right shape pass")
	r.Counter("semprox_writes_total", "literals with the right shape pass")
	r.Counter(badPrefix, "help")                    // want `must be a semprox_-prefixed snake_case literal`
	r.Counter("semprox_Bad-Name_total", "help")     // want `must be a semprox_-prefixed snake_case literal`
	r.Counter("semprox__double_underscore", "help") // want `must be a semprox_-prefixed snake_case literal`
	r.Counter(runtimeName, "help")                  // want `compile-time constant`
	r.Counter("semprox_prefix_"+req.Host, "help")   // want `compile-time constant`
	r.Gauge("semprox_cache_entries", "bounded labels pass", obs.L("tier", "edge"))
	r.Histogram("semprox_lat_seconds", "help", 1e9,
		obs.L("path", req.URL.Path)) // want `label value derives from the raw request URL`
	r.RegisterGaugeFunc("semprox_live_followers", "help", func() float64 { return 0 })
	_ = obs.L("uri", req.RequestURI)   // want `label value derives from the raw request \(\.RequestURI\)`
	_ = obs.L("url", req.URL.String()) // want `label value derives from the raw request URL`
	_ = obs.L("path", boundedPath(req))
	_ = obs.L("verb", req.Method) // the verb set is bounded: in-bounds
}

// boundedPath maps raw paths onto a fixed table; reading req inside it
// is fine — the rule binds label-value expressions, not helpers.
func boundedPath(req *http.Request) string {
	if req.URL.Path == "/v1/query" {
		return "query"
	}
	return "other"
}
