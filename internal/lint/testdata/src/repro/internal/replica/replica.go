// Package replica exercises ctxfirst: exported I/O entry points thread
// the caller's context, first, and never mint their own.
package replica

import "context"

type Follower struct{}

// Exported with ctx first: the required shape.
func (f *Follower) Bootstrap(ctx context.Context, full bool) error { return nil }

func (f *Follower) Poll(max int, ctx context.Context) error { return nil } // want `context.Context must be the first parameter of exported Poll`

func Connect(addr string, ctx context.Context) error { return nil } // want `context.Context must be the first parameter of exported Connect`

func MultiName(a, b int, ctx context.Context) error { return nil } // want `first parameter of exported MultiName`

// Unexported helpers may order parameters freely.
func dial(addr string, ctx context.Context) error { return nil }

func (f *Follower) Refresh() error {
	ctx := context.Background() // want `context.Background\(\) mid-path`
	<-ctx.Done()
	return nil
}

func (f *Follower) Retarget() error {
	_ = context.TODO() // want `context.TODO\(\) mid-path`
	return nil
}

// NoCtx takes no context at all: nothing to order.
func NoCtx(a, b int) int { return a + b }
