// Package server exercises envelope: error rendering inside the
// response-owning packages must go through the api envelope helpers.
package server

import (
	"fmt"
	"net/http"
)

type apiError struct {
	Code    string
	Message string
}

func bad(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusInternalServerError) // want `http.Error writes a free-text body`
	fmt.Fprintf(w, "oops: %v", err)                            // want `fmt.Fprintf onto an http.ResponseWriter`
	fmt.Fprintln(w, "oops")                                    // want `fmt.Fprintln onto an http.ResponseWriter`
	fmt.Fprint(w, "oops")                                      // want `fmt.Fprint onto an http.ResponseWriter`
}

func good(w http.ResponseWriter, err error) {
	writeErr(w, &apiError{Code: "internal", Message: err.Error()})
	// Printing to something that is not a ResponseWriter is in-bounds.
	fmt.Fprintf(logBuf{}, "handled: %v", err)
}

// writeErr stands in for the real envelope helper.
func writeErr(w http.ResponseWriter, e *apiError) {
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write([]byte(e.Code))
}

type logBuf struct{}

func (logBuf) Write(p []byte) (int, error) { return len(p), nil }
