// Package obs fakes the registry surface the metricname analyzer
// matches on: the four registrars and the label constructor.
package obs

type Label struct{ Key, Value string }

func L(key, value string) Label { return Label{key, value} }

type Registry struct{}

func Default() *Registry { return &Registry{} }

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

func (g *Gauge) Set(v int64) {}

type Histogram struct{}

func (h *Histogram) Observe(v int64) {}

func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, unit float64, labels ...Label) *Histogram {
	return &Histogram{}
}

func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64, labels ...Label) {}
