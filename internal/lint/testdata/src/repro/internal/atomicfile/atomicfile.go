// Package atomicfile is one of the two packages allowed to touch the
// raw persistence primitives; atomicwrite must stay silent here.
package atomicfile

import "os"

func Write(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", ".atomic-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
