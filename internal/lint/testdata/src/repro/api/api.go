// Package api is the one package allowed to spell wire paths as
// literals; rawpath must stay silent on every line here.
package api

const Version = "v1"

const Prefix = "/" + Version

const (
	PathQuery     = Prefix + "/query"
	PathProximity = Prefix + "/proximity"
	PathUpdate    = "/v1/update"
	PathStats     = Prefix + "/stats"
)

// LegacyPath mirrors the real helper's shape; the alias literal below is
// in-bounds because this is the api package.
func LegacyPath(p string) string {
	if p == PathQuery {
		return "/query"
	}
	return p
}
