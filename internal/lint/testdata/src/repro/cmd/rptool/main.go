// Package main exercises rawpath: literal wire paths outside repro/api.
package main

import "repro/api"

var paths = []string{
	"/v1/query",    // want `hardcoded versioned path "/v1/query"`
	api.PathQuery,  // a constant reference, not a literal: in-bounds
	"/query",       // want `hardcoded legacy alias "/query"`
	"/stats",       // want `hardcoded legacy alias "/stats"`
	"/v2/whatever", // a future version this suite does not own yet
	"/unrelated",
	"query", // no leading slash: not an alias
}

var base = "http://localhost:8080" + api.PathUpdate

var fullURL = "http://localhost:8080/v1/update" // want `hardcoded versioned path`

var prefixOnly = "/v1" // want `hardcoded versioned path "/v1"`

type tagged struct {
	// Struct tags and import paths are never path literals.
	Field string `json:"/v1/query"`
}

func main() {
	_ = paths
	_ = base
	_ = fullURL
	_ = prefixOnly
}
