package main

// The suppression hatch: a justified allow silences the finding, an
// unjustified one re-reports it with a reminder.

//lint:semprox-allow the replication smoke greps for this exact raw wire path
var waivedPath = "/v1/query"

var waivedInline = "/v1/proximity" //lint:semprox-allow byte-for-byte fixture the alias test compares against

//lint:semprox-allow
var unjustified = "/v1/update" // want `needs a justification`
