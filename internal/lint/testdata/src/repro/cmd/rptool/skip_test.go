package main

// Test files are exempt from the path rule: tests hardcode wire bytes
// on purpose. No want comments — a diagnostic here fails the golden.

var testFixture = "/v1/query"

var testAlias = "/proximity"
