// Package main is outside envelope's scope (it owns no wire responses):
// the same calls that fail internal/server are silent here.
package main

import (
	"fmt"
	"net/http"
)

func debugDump(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusInternalServerError)
	fmt.Fprintf(w, "debug: %v", err)
}

func main() {}
