// Package os fakes the persistence primitives the atomicwrite analyzer
// matches on.
package os

type File struct{}

func (f *File) Name() string                      { return "" }
func (f *File) Write(p []byte) (int, error)       { return len(p), nil }
func (f *File) WriteString(s string) (int, error) { return len(s), nil }
func (f *File) Sync() error                       { return nil }
func (f *File) Close() error                      { return nil }

func Rename(oldpath, newpath string) error                  { return nil }
func Create(name string) (*File, error)                     { return &File{}, nil }
func CreateTemp(dir, pattern string) (*File, error)         { return &File{}, nil }
func Open(name string) (*File, error)                       { return &File{}, nil }
func WriteFile(name string, data []byte, perm uint32) error { return nil }
