// Package fmt fakes the printers the envelope analyzer matches on.
package fmt

import "io"

func Fprintf(w io.Writer, format string, a ...any) (int, error) { return 0, nil }
func Fprint(w io.Writer, a ...any) (int, error)                 { return 0, nil }
func Fprintln(w io.Writer, a ...any) (int, error)               { return 0, nil }
func Sprintf(format string, a ...any) string                    { return format }
func Errorf(format string, a ...any) error                      { return nil }
