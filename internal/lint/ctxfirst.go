package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// CtxFirst pins the cancellation discipline of the I/O-performing
// packages (client, internal/proxy, internal/replica): an exported
// function or method that accepts a context.Context takes it as the
// first parameter — the shape every caller in the repo already relies
// on — and nothing mid-path manufactures its own context.Background()/
// context.TODO(), which would detach the call from the caller's
// deadline and make hedging, failover, and shutdown uncancellable.
var CtxFirst = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "report exported functions in client/internal/proxy/internal/replica whose " +
		"context.Context parameter is not first, and mid-path context.Background()/TODO() calls",
	Run: runCtxFirst,
}

func runCtxFirst(pass *analysis.Pass) (any, error) {
	if !pkgIn(pass, pkgClient, pkgProxy, pkgReplica) {
		return nil, nil
	}
	sup := newSuppressor(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxPosition(pass, sup, n)
			case *ast.CallExpr:
				switch name := calleeName(pass, n); name {
				case "context.Background", "context.TODO":
					sup.report(n.Pos(),
						"%s() mid-path detaches the call from the caller's deadline: accept and propagate a context.Context parameter", name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkCtxPosition flags an exported function whose context.Context
// parameter sits anywhere but position 0.
func checkCtxPosition(pass *analysis.Pass, sup *suppressor, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fn.Type.Params.List {
		// A field may declare several names ("a, b int"); each occupies
		// its own parameter position.
		width := len(field.Names)
		if width == 0 {
			width = 1 // unnamed parameter
		}
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) && pos != 0 {
			sup.report(field.Pos(),
				"context.Context must be the first parameter of exported %s so every caller threads cancellation the same way", fn.Name.Name)
			return
		}
		pos += width
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
