package lint

import (
	"go/ast"
	"go/token"

	"golang.org/x/tools/go/analysis"
)

// SleepWait bans sleep-polling from the serving path. The WAL already
// exposes the right primitives — WaitSince long-polls a durable LSN and
// its sync.Cond broadcast wakes appenders and pollers on every
// transition — and time.Ticker covers genuinely periodic work. A bare
// time.Sleep inside a loop in internal/server, internal/proxy,
// internal/replica, internal/wal, or client burns a scheduling quantum
// per probe and adds up to half the sleep interval of avoidable latency
// to every wakeup; at millions of users that is the tail.
var SleepWait = &analysis.Analyzer{
	Name: "sleepwait",
	Doc: "report time.Sleep polling loops in non-test serving code; block on wal.WaitSince, " +
		"a sync.Cond, or a time.Ticker instead",
	Run: runSleepWait,
}

func runSleepWait(pass *analysis.Pass) (any, error) {
	if !pkgIn(pass, pkgServer, pkgProxy, pkgReplica, pkgWAL, pkgClient) {
		return nil, nil
	}
	sup := newSuppressor(pass)
	reported := make(map[token.Pos]bool)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			flagSleeps(pass, sup, reported, body)
			return true
		})
	}
	return nil, nil
}

// flagSleeps reports time.Sleep calls lexically inside body, without
// descending into nested function literals: a goroutine launched from a
// loop that sleeps once is not the loop polling.
func flagSleeps(pass *analysis.Pass, sup *suppressor, reported map[token.Pos]bool, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if calleeName(pass, call) == "time.Sleep" && !reported[call.Pos()] {
			reported[call.Pos()] = true
			sup.report(call.Pos(),
				"time.Sleep in a polling loop: block on the condition instead (wal.WaitSince long-poll, sync.Cond broadcast, or time.Ticker)")
		}
		return true
	})
}
