package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/api"
)

// RawPath enforces the api package's monopoly on wire paths: outside
// repro/api, no string literal may spell a versioned "/v1/..." path or a
// pre-versioning legacy alias ("/query", "/stats", …). Handlers,
// clients, proxies, and tools must name endpoints through the api path
// constants (api.PathQuery, api.LegacyPath(api.PathQuery), …) so a path
// rename or a /v2 cut is one diff in one package — the invariant PR 5
// introduced and reviewers have policed by eye since.
var RawPath = &analysis.Analyzer{
	Name: "rawpath",
	Doc: "report hardcoded /v1 or legacy-alias path literals outside the api package; " +
		"use the api path constants instead",
	Run: runRawPath,
}

// legacyAliases is derived from the api package itself, so the analyzer
// can never drift from the contract it polices: every versioned path's
// unversioned alias is forbidden as a literal elsewhere.
var legacyAliases = func() map[string]bool {
	m := make(map[string]bool, len(api.Paths()))
	for _, p := range api.Paths() {
		m[api.LegacyPath(p)] = true
	}
	return m
}()

func runRawPath(pass *analysis.Pass) (any, error) {
	if pkgIn(pass, pkgAPI) {
		return nil, nil // the one package allowed to spell paths out
	}
	sup := newSuppressor(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		skip := stringTagsAndImports(file)
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || skip[lit] {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			switch {
			case val == api.Prefix || strings.Contains(val, api.Prefix+"/"):
				sup.report(lit.Pos(),
					"hardcoded versioned path %q: use the repro/api path constants (api.PathQuery, …)", val)
			case legacyAliases[val]:
				sup.report(lit.Pos(),
					"hardcoded legacy alias %q: use api.LegacyPath on the repro/api path constant", val)
			}
			return true
		})
	}
	return nil, nil
}
