package metagraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Type ids used across the tests, mirroring the paper's toy examples.
const (
	tUser graph.TypeID = iota
	tSchool
	tMajor
	tEmployer
	tHobby
	tAddress
	tSurname
)

// m1 is metagraph M1 of Fig. 2(a): two users sharing a school and a major.
// Nodes: 0,1 = user; 2 = school; 3 = major.
func m1() *Metagraph {
	return MustNew(
		[]graph.TypeID{tUser, tUser, tSchool, tMajor},
		[]Edge{{0, 2}, {1, 2}, {0, 3}, {1, 3}},
	)
}

// m2 is M2 of Fig. 2(b): two users sharing an employer and a hobby.
func m2() *Metagraph {
	return MustNew(
		[]graph.TypeID{tUser, tUser, tEmployer, tHobby},
		[]Edge{{0, 2}, {1, 2}, {0, 3}, {1, 3}},
	)
}

// m3 is M3 of Fig. 2(b): the metapath user–address–user.
func m3() *Metagraph {
	return MustNew(
		[]graph.TypeID{tUser, tAddress, tUser},
		[]Edge{{0, 1}, {1, 2}},
	)
}

// m4 is M4 of Fig. 2(c): two users sharing a surname and an address.
func m4() *Metagraph {
	return MustNew(
		[]graph.TypeID{tUser, tUser, tSurname, tAddress},
		[]Edge{{0, 2}, {1, 2}, {0, 3}, {1, 3}},
	)
}

// m5 is M5 of Fig. 5: six nodes, where {u1,u2} is symmetric to {u5,u6}
// jointly but not independently. Indices: 0=u1(user), 1=u2(major),
// 2=u3(school), 3=u4(user), 4=u5(user), 5=u6(major).
func m5() *Metagraph {
	return MustNew(
		[]graph.TypeID{tUser, tMajor, tSchool, tUser, tUser, tMajor},
		[]Edge{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {2, 5}},
	)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("New accepted empty node set")
	}
	if _, err := New([]graph.TypeID{0, 0}, []Edge{{0, 0}}); err == nil {
		t.Fatal("New accepted a self loop")
	}
	if _, err := New([]graph.TypeID{0, 0}, []Edge{{0, 5}}); err == nil {
		t.Fatal("New accepted out-of-range endpoint")
	}
	if _, err := New([]graph.TypeID{0, 0}, nil); err == nil {
		t.Fatal("New accepted a disconnected pattern")
	}
	big := make([]graph.TypeID, MaxNodes+1)
	if _, err := New(big, nil); err == nil {
		t.Fatal("New accepted an oversized pattern")
	}
	// Duplicate edges are tolerated and collapse.
	m, err := New([]graph.TypeID{0, 0}, []Edge{{0, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", m.NumEdges())
	}
}

func TestBasicAccessors(t *testing.T) {
	m := m1()
	if m.N() != 4 || m.NumEdges() != 4 || m.Size() != 8 {
		t.Fatalf("N=%d E=%d Size=%d", m.N(), m.NumEdges(), m.Size())
	}
	if m.Type(2) != tSchool {
		t.Fatalf("Type(2) = %d", m.Type(2))
	}
	if !m.HasEdge(0, 2) || m.HasEdge(0, 1) || m.HasEdge(2, 2) {
		t.Fatal("HasEdge wrong")
	}
	if m.Degree(0) != 2 || m.Degree(2) != 2 {
		t.Fatal("Degree wrong")
	}
	if got := m.Neighbors(0); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if got := m.NodesOfType(tUser); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("NodesOfType(user) = %v", got)
	}
	if m.CountType(tUser) != 2 || m.CountType(tHobby) != 0 {
		t.Fatal("CountType wrong")
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
	reg := graph.NewTypeRegistry()
	for _, n := range []string{"user", "school", "major", "employer", "hobby", "address", "surname"} {
		reg.Register(n)
	}
	if m.Pretty(reg) == "" {
		t.Fatal("empty Pretty")
	}
}

func TestIsPath(t *testing.T) {
	if !m3().IsPath() {
		t.Fatal("M3 (user–address–user) should be a path")
	}
	for _, m := range []*Metagraph{m1(), m2(), m4()} {
		if m.IsPath() {
			t.Fatalf("%v should not be a path", m)
		}
	}
	p, err := NewPath(tUser, tHobby, tUser, tHobby, tUser)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	if !p.IsPath() {
		t.Fatal("NewPath result should be a path")
	}
	single := MustNew([]graph.TypeID{tUser}, nil)
	if !single.IsPath() {
		t.Fatal("single node counts as a path")
	}
}

func TestExtend(t *testing.T) {
	m := m3()
	m2x, err := m.ExtendNode(1, tUser)
	if err != nil {
		t.Fatalf("ExtendNode: %v", err)
	}
	if m2x.N() != 4 || !m2x.HasEdge(1, 3) {
		t.Fatal("ExtendNode wrong shape")
	}
	if _, err := m.ExtendNode(9, tUser); err == nil {
		t.Fatal("ExtendNode accepted bad node")
	}
	me, err := m2x.ExtendEdge(0, 3)
	if err != nil {
		t.Fatalf("ExtendEdge: %v", err)
	}
	if !me.HasEdge(0, 3) {
		t.Fatal("ExtendEdge lost edge")
	}
	if _, err := me.ExtendEdge(0, 3); err == nil {
		t.Fatal("ExtendEdge accepted duplicate")
	}
}

func TestPermute(t *testing.T) {
	m := m1()
	p, err := m.Permute([]int{3, 2, 1, 0})
	if err != nil {
		t.Fatalf("Permute: %v", err)
	}
	if p.Type(3) != tUser || p.Type(1) != tSchool {
		t.Fatal("Permute mislabeled types")
	}
	if !p.HasEdge(3, 1) {
		t.Fatal("Permute lost an edge")
	}
	if _, err := m.Permute([]int{0, 0, 1, 2}); err == nil {
		t.Fatal("Permute accepted a non-permutation")
	}
	if _, err := m.Permute([]int{0, 1}); err == nil {
		t.Fatal("Permute accepted wrong length")
	}
}

func TestCanonicalInvariantUnderIsomorphism(t *testing.T) {
	for _, m := range []*Metagraph{m1(), m2(), m3(), m4(), m5()} {
		key := m.Canonical()
		perm := rand.New(rand.NewSource(1)).Perm(m.N())
		p, err := m.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		if p.Canonical() != key {
			t.Fatalf("canonical key not invariant for %v under %v", m, perm)
		}
		if !Isomorphic(m, p) {
			t.Fatalf("Isomorphic(%v, permuted) = false", m)
		}
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	// M1 and M2 share shape but differ in types.
	if m1().Canonical() == m2().Canonical() {
		t.Fatal("M1 and M2 share a canonical key")
	}
	// Path u-s-u vs star would differ in shape.
	path := MustNew([]graph.TypeID{tUser, tSchool, tUser}, []Edge{{0, 1}, {1, 2}})
	tri := MustNew([]graph.TypeID{tUser, tSchool, tUser}, []Edge{{0, 1}, {1, 2}, {0, 2}})
	if path.Canonical() == tri.Canonical() {
		t.Fatal("path and triangle share a canonical key")
	}
	if Isomorphic(path, tri) {
		t.Fatal("Isomorphic(path, triangle) = true")
	}
}

// randomConnected builds a random connected typed metagraph for property
// tests: a random spanning tree plus a few extra edges.
func randomConnected(rng *rand.Rand) *Metagraph {
	n := 2 + rng.Intn(5)
	types := make([]graph.TypeID, n)
	for i := range types {
		types[i] = graph.TypeID(rng.Intn(3))
	}
	var edges []Edge
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		edges = append(edges, Edge{j, i})
	}
	for k := 0; k < rng.Intn(3); k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			if u > v {
				u, v = v, u
			}
			edges = append(edges, Edge{u, v})
		}
	}
	return MustNew(types, edges)
}

func TestQuickCanonicalInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomConnected(rng)
		p, err := m.Permute(rng.Perm(m.N()))
		if err != nil {
			return false
		}
		return m.Canonical() == p.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAutomorphismsCount(t *testing.T) {
	// M3: identity + end swap.
	if got := len(m3().Automorphisms()); got != 2 {
		t.Fatalf("M3 automorphisms = %d, want 2", got)
	}
	// M1: identity + user swap (school/major differ in type, cannot swap).
	if got := len(m1().Automorphisms()); got != 2 {
		t.Fatalf("M1 automorphisms = %d, want 2", got)
	}
	// A 4-cycle of identical types has the full dihedral group (8).
	sq := MustNew([]graph.TypeID{0, 0, 0, 0}, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if got := len(sq.Automorphisms()); got != 8 {
		t.Fatalf("square automorphisms = %d, want 8", got)
	}
}

func TestSymmetricPairs(t *testing.T) {
	// M1–M4 are all symmetric with the two users as the (only) pair.
	for _, tc := range []struct {
		m    *Metagraph
		want []Edge
	}{
		{m1(), []Edge{{0, 1}}},
		{m2(), []Edge{{0, 1}}},
		{m3(), []Edge{{0, 2}}},
		{m4(), []Edge{{0, 1}}},
	} {
		got := tc.m.SymmetricPairs()
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("SymmetricPairs(%v) = %v, want %v", tc.m, got, tc.want)
		}
		if !tc.m.IsSymmetric() {
			t.Fatalf("%v should be symmetric", tc.m)
		}
	}
	// M5: pairs (u1,u5) and (u2,u6) arise jointly.
	got := m5().SymmetricPairs()
	want := []Edge{{0, 4}, {1, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SymmetricPairs(M5) = %v, want %v", got, want)
	}
	// An asymmetric metagraph: user–school–major chain.
	asym := MustNew([]graph.TypeID{tUser, tSchool, tMajor}, []Edge{{0, 1}, {1, 2}})
	if asym.IsSymmetric() {
		t.Fatal("chain of distinct types should be asymmetric")
	}
}

func TestAnchorPairs(t *testing.T) {
	// In M5 only (u1, u5) is a user–user symmetric pair.
	got := m5().AnchorPairs(tUser)
	if !reflect.DeepEqual(got, []Edge{{0, 4}}) {
		t.Fatalf("AnchorPairs = %v", got)
	}
	// M1's pair is user-typed.
	if got := m1().AnchorPairs(tUser); !reflect.DeepEqual(got, []Edge{{0, 1}}) {
		t.Fatalf("AnchorPairs(M1) = %v", got)
	}
	if got := m1().AnchorPairs(tSchool); got != nil {
		t.Fatalf("AnchorPairs(M1, school) = %v, want none", got)
	}
}

func TestInvolutionsAreInvolutions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomConnected(rng)
		for _, inv := range m.Involutions() {
			for i, p := range inv.Perm {
				if inv.Perm[p] != i {
					return false
				}
				if m.types[i] != m.types[p] {
					return false
				}
			}
			// Permutation must preserve edges.
			for _, e := range m.Edges() {
				if !m.HasEdge(inv.Perm[e.U], inv.Perm[e.V]) {
					return false
				}
			}
			if len(inv.Pairs) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeM5(t *testing.T) {
	d := Decompose(m5())
	// Paper: S1={u4}, S2={u1,u2}, S3={u3}, S4={u5,u6} → 4 components in 3
	// groups (S2 and S4 together).
	if d.NumComponents() != 4 {
		t.Fatalf("components = %d, want 4", d.NumComponents())
	}
	if len(d.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(d.Groups))
	}
	var sym *Group
	for i := range d.Groups {
		if len(d.Groups[i].Members) == 2 {
			sym = &d.Groups[i]
		}
	}
	if sym == nil {
		t.Fatal("no 2-member group found")
	}
	rep := sym.Representative().Nodes
	sib := sym.Members[1].Nodes
	if !reflect.DeepEqual(rep, []int{0, 1}) || !reflect.DeepEqual(sib, []int{4, 5}) {
		t.Fatalf("group = %v / %v, want {0,1} / {4,5}", rep, sib)
	}
	// Map must send u1→u5 and u2→u6.
	if !reflect.DeepEqual(sym.Maps[1], []int{4, 5}) {
		t.Fatalf("map = %v", sym.Maps[1])
	}
}

func TestDecomposeStar(t *testing.T) {
	// A school with three user leaves: one singleton plus one group of three
	// mutually symmetric components.
	star := MustNew([]graph.TypeID{tSchool, tUser, tUser, tUser},
		[]Edge{{0, 1}, {0, 2}, {0, 3}})
	d := Decompose(star)
	if d.NumComponents() != 4 {
		t.Fatalf("components = %d, want 4", d.NumComponents())
	}
	var big *Group
	for i := range d.Groups {
		if len(d.Groups[i].Members) == 3 {
			big = &d.Groups[i]
		}
	}
	if big == nil {
		t.Fatalf("expected a 3-member group, got %+v", d.Groups)
	}
}

func TestDecomposeAsymmetric(t *testing.T) {
	asym := MustNew([]graph.TypeID{tUser, tSchool, tMajor}, []Edge{{0, 1}, {1, 2}})
	d := Decompose(asym)
	if d.NumComponents() != 3 || len(d.Groups) != 3 {
		t.Fatalf("asymmetric decomposition: %d comps, %d groups", d.NumComponents(), len(d.Groups))
	}
}

// TestQuickDecomposeInvariants checks the properties SymISO relies on:
// the components partition V_M; within a group every member is the image of
// the representative under a type-preserving bijection that preserves
// internal adjacency and the adjacency to all nodes outside rep ∪ member.
func TestQuickDecomposeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomConnected(rng)
		d := Decompose(m)

		seen := make(map[int]bool)
		total := 0
		for _, g := range d.Groups {
			for _, c := range g.Members {
				for _, v := range c.Nodes {
					if seen[v] {
						return false // overlap
					}
					seen[v] = true
					total++
				}
			}
		}
		if total != m.N() {
			return false // not a partition
		}

		for _, g := range d.Groups {
			rep := g.Representative().Nodes
			for k := 1; k < len(g.Members); k++ {
				mp := g.Maps[k]
				if len(mp) != len(rep) {
					return false
				}
				inGroup := make(map[int]bool)
				for _, v := range rep {
					inGroup[v] = true
				}
				for _, v := range mp {
					inGroup[v] = true
				}
				for i, u := range rep {
					if m.types[u] != m.types[mp[i]] {
						return false
					}
					// Internal adjacency preserved.
					for j, v := range rep {
						if m.HasEdge(u, v) != m.HasEdge(mp[i], mp[j]) {
							return false
						}
					}
					// Adjacency to outside nodes preserved (involution
					// fixes the rest).
					for w := 0; w < m.N(); w++ {
						if inGroup[w] {
							continue
						}
						if m.HasEdge(u, w) != m.HasEdge(mp[i], w) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplified(t *testing.T) {
	d := Decompose(m5())
	comps, adj := d.Simplified()
	// M5 simplifies to 3 components (paper Fig. 5(b)).
	if len(comps) != 3 {
		t.Fatalf("simplified components = %d, want 3", len(comps))
	}
	if len(adj) != 3 {
		t.Fatalf("adjacency size = %d", len(adj))
	}
	// The school singleton {2} must connect to both other retained
	// components ({0,1} and {3}).
	schoolIdx := -1
	for i, c := range comps {
		if len(c.Nodes) == 1 && c.Nodes[0] == 2 {
			schoolIdx = i
		}
	}
	if schoolIdx == -1 {
		t.Fatalf("school singleton missing from %v", comps)
	}
	links := 0
	for j := range comps {
		if adj[schoolIdx][j] {
			links++
		}
	}
	if links != 2 {
		t.Fatalf("school component links = %d, want 2", links)
	}
}

func TestComponentContains(t *testing.T) {
	c := Component{Nodes: []int{1, 3}}
	if !c.contains(3) || c.contains(2) {
		t.Fatal("contains wrong")
	}
}

func TestDecomposeFourLeafStarPartition(t *testing.T) {
	// Regression: a double-transposition involution (1,2)(3,4) over four
	// mutually symmetric leaves once produced overlapping groups — the
	// first unit's group extension absorbed leaves 3 and 4, yet the second
	// unit still emitted a duplicate group for them.
	star := MustNew([]graph.TypeID{tUser, tUser, tUser, tUser, tUser},
		[]Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	d := Decompose(star)
	seen := make(map[int]int)
	for _, g := range d.Groups {
		for _, c := range g.Members {
			for _, v := range c.Nodes {
				seen[v]++
			}
		}
	}
	if len(seen) != 5 {
		t.Fatalf("decomposition covers %d nodes, want 5", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("node %d appears in %d components", v, n)
		}
	}
}

func TestDiameter(t *testing.T) {
	for _, tc := range []struct {
		m    *Metagraph
		want int
	}{
		{MustNew([]graph.TypeID{tUser}, nil), 0},
		{m2(), 2}, // users joined through employer or hobby
		{m3(), 2}, // user–address–user path
		{m4(), 2}, // users joined through surname or address
		{m5(), 4}, // u5(4)–u6(5)–u3(2)–u2(1)–u1(0)
		{MustNew([]graph.TypeID{tUser, tUser}, []Edge{{0, 1}}), 1},
	} {
		if got := tc.m.Diameter(); got != tc.want {
			t.Fatalf("Diameter(%v) = %d, want %d", tc.m, got, tc.want)
		}
	}
}
