// Package metagraph implements the type-level pattern graphs of the paper
// (Sect. II-A): a metagraph M = (V_M, E_M) whose nodes denote object types
// rather than objects. The package provides canonical forms for isomorphism
// deduplication, symmetry detection per Def. 1, and the symmetric-component
// decomposition and metagraph simplification that the SymISO matching
// algorithm builds on (Sect. IV-C).
//
// Metagraphs are tiny (the paper caps them at 5 nodes; we support up to 16),
// so all structural algorithms here are exact enumerations.
package metagraph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/graph"
)

// MaxNodes bounds the size of a metagraph. Sixteen lets adjacency fit in a
// uint16 bitmask per node while far exceeding the paper's cap of five.
const MaxNodes = 16

// Edge is an undirected edge between metagraph node indices, stored with
// U < V.
type Edge struct {
	U, V int
}

// Metagraph is an immutable small typed pattern graph. Node indices run
// 0..N()-1; each node has a type from the object graph's registry (τ_M).
type Metagraph struct {
	types []graph.TypeID
	adj   []uint16 // adj[i] bit j set iff edge {i,j}
	edges []Edge   // sorted (U,V) with U<V
}

// New builds a metagraph over the given node types with the given edges.
// It returns an error if the metagraph would be invalid: too many nodes,
// out-of-range endpoints, self loops, or a disconnected pattern. Duplicate
// edges are tolerated.
func New(types []graph.TypeID, edges []Edge) (*Metagraph, error) {
	n := len(types)
	if n == 0 {
		return nil, fmt.Errorf("metagraph: no nodes")
	}
	if n > MaxNodes {
		return nil, fmt.Errorf("metagraph: %d nodes exceeds MaxNodes=%d", n, MaxNodes)
	}
	m := &Metagraph{
		types: append([]graph.TypeID(nil), types...),
		adj:   make([]uint16, n),
	}
	for _, e := range edges {
		u, v := e.U, e.V
		if u == v {
			return nil, fmt.Errorf("metagraph: self loop at %d", u)
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("metagraph: edge (%d,%d) out of range", u, v)
		}
		m.adj[u] |= 1 << uint(v)
		m.adj[v] |= 1 << uint(u)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if m.adj[u]&(1<<uint(v)) != 0 {
				m.edges = append(m.edges, Edge{u, v})
			}
		}
	}
	if !m.connected() {
		return nil, fmt.Errorf("metagraph: pattern is disconnected")
	}
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(types []graph.TypeID, edges []Edge) *Metagraph {
	m, err := New(types, edges)
	if err != nil {
		panic(err)
	}
	return m
}

// NewPath builds the metapath with the given type sequence:
// types[0]–types[1]–…–types[k-1].
func NewPath(types ...graph.TypeID) (*Metagraph, error) {
	edges := make([]Edge, 0, len(types)-1)
	for i := 0; i+1 < len(types); i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return New(types, edges)
}

// N returns |V_M|.
func (m *Metagraph) N() int { return len(m.types) }

// NumEdges returns |E_M|.
func (m *Metagraph) NumEdges() int { return len(m.edges) }

// Type returns τ_M(i).
func (m *Metagraph) Type(i int) graph.TypeID { return m.types[i] }

// Types returns a copy of the node type slice.
func (m *Metagraph) Types() []graph.TypeID {
	return append([]graph.TypeID(nil), m.types...)
}

// Edges returns the edge list sorted by (U, V). The slice aliases internal
// storage and must not be modified.
func (m *Metagraph) Edges() []Edge { return m.edges }

// HasEdge reports whether {u, v} ∈ E_M.
func (m *Metagraph) HasEdge(u, v int) bool {
	return u != v && m.adj[u]&(1<<uint(v)) != 0
}

// AdjMask returns the neighbor bitmask of node i.
func (m *Metagraph) AdjMask(i int) uint16 { return m.adj[i] }

// Degree returns the number of neighbors of node i.
func (m *Metagraph) Degree(i int) int {
	d := 0
	for mask := m.adj[i]; mask != 0; mask &= mask - 1 {
		d++
	}
	return d
}

// Neighbors returns the neighbor indices of node i in ascending order.
func (m *Metagraph) Neighbors(i int) []int {
	var out []int
	for j := 0; j < m.N(); j++ {
		if m.HasEdge(i, j) {
			out = append(out, j)
		}
	}
	return out
}

// Size returns |V_M| + |E_M|, the size measure used by the structural
// similarity of Sect. III-C.
func (m *Metagraph) Size() int { return m.N() + m.NumEdges() }

// Diameter returns the longest shortest-path distance between any two
// metagraph nodes. Because an instance maps every metagraph edge onto a
// graph edge, all nodes of an instance lie within Diameter() hops of each
// other in the object graph — the radius incremental re-matching uses to
// bound the neighborhood a mutation can affect. Metagraphs are connected
// by construction, so the value is always finite (0 for a single node).
func (m *Metagraph) Diameter() int {
	n := m.N()
	diam := 0
	for s := 0; s < n; s++ {
		// BFS over the adjacency bitmasks.
		seen := uint16(1) << uint(s)
		frontier := seen
		for d := 1; frontier != 0; d++ {
			var next uint16
			for f := frontier; f != 0; f &= f - 1 {
				next |= m.adj[bits.TrailingZeros16(f)] &^ seen
			}
			if next == 0 {
				break
			}
			seen |= next
			frontier = next
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// IsPath reports whether the metagraph is a metapath: a single node, or a
// connected pattern whose nodes all have degree ≤ 2 with exactly two
// endpoints of degree 1 and no cycle.
func (m *Metagraph) IsPath() bool {
	n := m.N()
	if n == 1 {
		return true
	}
	ends := 0
	for i := 0; i < n; i++ {
		switch d := m.Degree(i); d {
		case 1:
			ends++
		case 2:
			// interior node
		default:
			return false
		}
	}
	// Connectivity is a construction invariant, so degree conditions plus
	// the tree edge count rule out cycles.
	return ends == 2 && m.NumEdges() == n-1
}

// NodesOfType returns the metagraph node indices having type t.
func (m *Metagraph) NodesOfType(t graph.TypeID) []int {
	var out []int
	for i, ti := range m.types {
		if ti == t {
			out = append(out, i)
		}
	}
	return out
}

// CountType returns the number of metagraph nodes having type t.
func (m *Metagraph) CountType(t graph.TypeID) int {
	c := 0
	for _, ti := range m.types {
		if ti == t {
			c++
		}
	}
	return c
}

// ExtendEdge returns a new metagraph with the extra edge {u, v} between
// existing nodes. It returns an error for invalid or duplicate edges.
func (m *Metagraph) ExtendEdge(u, v int) (*Metagraph, error) {
	if m.HasEdge(u, v) {
		return nil, fmt.Errorf("metagraph: edge (%d,%d) already present", u, v)
	}
	return New(m.types, append(append([]Edge(nil), m.edges...), Edge{min(u, v), max(u, v)}))
}

// ExtendNode returns a new metagraph with one extra node of type t attached
// to existing node u.
func (m *Metagraph) ExtendNode(u int, t graph.TypeID) (*Metagraph, error) {
	if u < 0 || u >= m.N() {
		return nil, fmt.Errorf("metagraph: node %d out of range", u)
	}
	types := append(m.Types(), t)
	edges := append(append([]Edge(nil), m.edges...), Edge{u, m.N()})
	return New(types, edges)
}

// String renders the metagraph compactly using type ids, e.g.
// "MG[0 1 0 | 0-1 1-2]".
func (m *Metagraph) String() string {
	var b strings.Builder
	b.WriteString("MG[")
	for i, t := range m.types {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	b.WriteString(" |")
	for _, e := range m.edges {
		fmt.Fprintf(&b, " %d-%d", e.U, e.V)
	}
	b.WriteString("]")
	return b.String()
}

// Pretty renders the metagraph with type names from reg, e.g.
// "user–school–user + edges", for reports and examples.
func (m *Metagraph) Pretty(reg *graph.TypeRegistry) string {
	var b strings.Builder
	b.WriteString("{")
	for i, t := range m.types {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%s", i, reg.Name(t))
	}
	b.WriteString("; ")
	for i, e := range m.edges {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d-%d", e.U, e.V)
	}
	b.WriteString("}")
	return b.String()
}

// connected reports whether the pattern is connected (checked once in New).
func (m *Metagraph) connected() bool {
	n := m.N()
	var seen uint16 = 1
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := 0; w < n; w++ {
			bit := uint16(1) << uint(w)
			if m.adj[v]&bit != 0 && seen&bit == 0 {
				seen |= bit
				stack = append(stack, w)
			}
		}
	}
	return seen == uint16(1<<uint(n))-1
}

// Permute returns an isomorphic copy with node i renamed to perm[i].
// perm must be a permutation of 0..N()-1.
func (m *Metagraph) Permute(perm []int) (*Metagraph, error) {
	n := m.N()
	if len(perm) != n {
		return nil, fmt.Errorf("metagraph: permutation length %d != %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("metagraph: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	types := make([]graph.TypeID, n)
	for i, t := range m.types {
		types[perm[i]] = t
	}
	edges := make([]Edge, 0, len(m.edges))
	for _, e := range m.edges {
		u, v := perm[e.U], perm[e.V]
		if u > v {
			u, v = v, u
		}
		edges = append(edges, Edge{u, v})
	}
	return New(types, edges)
}

// Equal reports structural equality under the identity mapping (same types
// in the same positions, same edge set). Use Canonical keys for isomorphism.
func (m *Metagraph) Equal(o *Metagraph) bool {
	if m.N() != o.N() || len(m.edges) != len(o.edges) {
		return false
	}
	for i := range m.types {
		if m.types[i] != o.types[i] {
			return false
		}
	}
	for i := range m.edges {
		if m.edges[i] != o.edges[i] {
			return false
		}
	}
	return true
}

// SortEdges sorts e in place by (U, V); exported for test helpers.
func SortEdges(e []Edge) {
	sort.Slice(e, func(i, j int) bool {
		if e[i].U != e[j].U {
			return e[i].U < e[j].U
		}
		return e[i].V < e[j].V
	})
}
