package metagraph

import "sort"

// Decomposition machinery for SymISO (Sect. IV-C). The node set V_M is
// partitioned into disjoint components: a singleton for every node that is
// not symmetric to any other node, and, for symmetric nodes, connected
// components that are pairwise symmetric to sibling components via an
// involutive automorphism. Components that are symmetric to one another form
// a Group; the matcher computes candidate matchings once for the group's
// representative component and reuses them for the siblings.

// Component is one part of the decomposition: a set of metagraph node
// indices (sorted ascending).
type Component struct {
	Nodes []int
}

// contains reports whether node v belongs to the component.
func (c Component) contains(v int) bool {
	for _, u := range c.Nodes {
		if u == v {
			return true
		}
	}
	return false
}

// Group is a set of mutually symmetric components. Members[0] is the
// representative. For k ≥ 1, Maps[k] is a bijection from representative
// nodes to member-k nodes: Maps[k][i] is the image of Members[0].Nodes[i].
// Maps[0] is the identity on the representative's nodes. Each Maps[k] comes
// from an involutive automorphism of M that fixes every node outside
// Members[0] ∪ Members[k], which is what justifies reusing candidate
// matchings across the group during matching.
type Group struct {
	Members []Component
	Maps    [][]int
}

// Representative returns the group's representative component.
func (g Group) Representative() Component { return g.Members[0] }

// Decomposition is the full component structure of a metagraph.
type Decomposition struct {
	M      *Metagraph
	Groups []Group // singleton groups have exactly one member
}

// NumComponents returns the total number of components across groups.
func (d *Decomposition) NumComponents() int {
	n := 0
	for _, g := range d.Groups {
		n += len(g.Members)
	}
	return n
}

// Decompose partitions m's nodes into symmetric-component groups.
//
// The construction follows Sect. IV-C: nodes that are not symmetric to any
// other node become singleton components (each its own group). Remaining
// nodes are processed smallest-first: we pick the involution that pairs the
// node with an unassigned partner and maximizes the number of transpositions
// over unassigned nodes; the connected components of the involution's "left"
// node set become representatives, and their images the sibling components.
// Additional siblings are attached when another involution maps an existing
// representative onto a disjoint set of still-unassigned nodes.
func Decompose(m *Metagraph) *Decomposition {
	n := m.N()
	d := &Decomposition{M: m}
	partners := m.SymmetricPartners()
	invs := m.Involutions()

	assigned := make([]bool, n)

	// Singleton components for asymmetric nodes.
	for v := 0; v < n; v++ {
		if partners[v] == 0 {
			assigned[v] = true
			d.Groups = append(d.Groups, Group{
				Members: []Component{{Nodes: []int{v}}},
				Maps:    [][]int{{v}},
			})
		}
	}

	// unassignedMask returns the bitmask of still-unassigned nodes.
	unassignedMask := func() uint16 {
		var mask uint16
		for v := 0; v < n; v++ {
			if !assigned[v] {
				mask |= 1 << uint(v)
			}
		}
		return mask
	}

	for {
		// Smallest unassigned symmetric node.
		u := -1
		for v := 0; v < n; v++ {
			if !assigned[v] {
				u = v
				break
			}
		}
		if u == -1 {
			break
		}
		free := unassignedMask()

		// Choose the involution moving u whose transpositions stay within
		// unassigned nodes and are most numerous (ties: first found). More
		// transpositions mean larger symmetric components and thus more
		// reuse during matching.
		best := -1
		bestScore := -1
		for i, inv := range invs {
			if inv.Perm[u] == u {
				continue
			}
			score := 0
			ok := true
			for _, p := range inv.Pairs {
				bits := uint16(1<<uint(p.U) | 1<<uint(p.V))
				if free&bits == bits {
					score++
				} else if p.U == u || p.V == u {
					ok = false
					break
				}
			}
			if ok && score > bestScore {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			// No usable involution remains (partners already consumed by
			// earlier components); fall back to a singleton so the
			// decomposition stays a partition.
			assigned[u] = true
			d.Groups = append(d.Groups, Group{
				Members: []Component{{Nodes: []int{u}}},
				Maps:    [][]int{{u}},
			})
			continue
		}

		inv := invs[best]
		// Usable transpositions: both endpoints still unassigned.
		var usable []Edge
		for _, p := range inv.Pairs {
			bits := uint16(1<<uint(p.U) | 1<<uint(p.V))
			if free&bits == bits {
				usable = append(usable, p)
			}
		}

		// Split the usable transpositions into minimal sub-involutions that
		// are each automorphisms on their own. A connectivity-based split
		// (as sketched in the paper) is unsound when transpositions are
		// entangled — e.g. swapping (a,b) alone may break edges that the
		// joint swap with (c,d) preserves — so we test automorphism-ness of
		// subsets directly, which is exact at metagraph sizes.
		for _, unit := range minimalUnits(m, usable) {
			// A previous unit's group extension may have absorbed this
			// unit's nodes already (e.g. the units of a double
			// transposition over four mutually symmetric leaves); skip it
			// to keep the decomposition a partition.
			taken := false
			for _, p := range unit {
				if assigned[p.U] || assigned[p.V] {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			comp := make([]int, 0, len(unit))
			for _, p := range unit {
				comp = append(comp, p.U)
			}
			sort.Ints(comp)
			perm := identityPerm(n)
			for _, p := range unit {
				perm[p.U], perm[p.V] = p.V, p.U
			}
			img := make([]int, len(comp))
			for i, v := range comp {
				img[i] = perm[v]
			}
			rep := Component{Nodes: append([]int(nil), comp...)}
			sib := Component{Nodes: append([]int(nil), img...)}
			sort.Ints(sib.Nodes)
			g := Group{
				Members: []Component{rep, sib},
				Maps:    [][]int{append([]int(nil), comp...), img},
			}
			for _, v := range comp {
				assigned[v] = true
			}
			for _, v := range img {
				assigned[v] = true
			}

			// Extend the group with further siblings: involutions mapping
			// the representative onto disjoint, still-unassigned node sets
			// while fixing everything else outside rep ∪ image.
			for {
				added := false
				free := unassignedMask()
				for _, inv2 := range invs {
					img2 := make([]int, len(comp))
					ok := true
					var imgMask uint16
					for i, v := range comp {
						w := inv2.Perm[v]
						if w == v {
							ok = false
							break
						}
						img2[i] = w
						imgMask |= 1 << uint(w)
					}
					if !ok || free&imgMask != imgMask {
						continue
					}
					// inv2 must fix every node outside comp ∪ img2.
					var compMask uint16
					for _, v := range comp {
						compMask |= 1 << uint(v)
					}
					fixesRest := true
					for v := 0; v < n; v++ {
						bit := uint16(1) << uint(v)
						if compMask&bit == 0 && imgMask&bit == 0 && inv2.Perm[v] != v {
							fixesRest = false
							break
						}
					}
					if !fixesRest {
						continue
					}
					sibNodes := append([]int(nil), img2...)
					sort.Ints(sibNodes)
					g.Members = append(g.Members, Component{Nodes: sibNodes})
					g.Maps = append(g.Maps, img2)
					for _, v := range img2 {
						assigned[v] = true
					}
					added = true
					break
				}
				if !added {
					break
				}
			}
			d.Groups = append(d.Groups, g)
		}
	}

	// Deterministic group order: by smallest node of the representative.
	sort.Slice(d.Groups, func(i, j int) bool {
		return d.Groups[i].Members[0].Nodes[0] < d.Groups[j].Members[0].Nodes[0]
	})
	return d
}

// minimalUnits partitions pairs into minimal subsets whose standalone swap
// (fixing all other nodes) is a type-preserving automorphism of m. Subsets
// are examined in increasing size, so extracted units are minimal; the
// whole set is always an automorphism (it came from an involution), so the
// recursion terminates.
func minimalUnits(m *Metagraph, pairs []Edge) [][]Edge {
	var units [][]Edge
	remaining := append([]Edge(nil), pairs...)
	for len(remaining) > 0 {
		k := len(remaining)
		found := false
		for size := 1; size <= k && !found; size++ {
			combinations(k, size, func(idx []int) bool {
				unit := make([]Edge, 0, size)
				for _, i := range idx {
					unit = append(unit, remaining[i])
				}
				if !swapIsAutomorphism(m, unit) {
					return true // keep searching
				}
				units = append(units, unit)
				picked := make(map[int]bool, size)
				for _, i := range idx {
					picked[i] = true
				}
				var rest []Edge
				for i, p := range remaining {
					if !picked[i] {
						rest = append(rest, p)
					}
				}
				remaining = rest
				found = true
				return false
			})
		}
		if !found {
			// Cannot happen: the full remaining set is an automorphism.
			units = append(units, remaining)
			remaining = nil
		}
	}
	return units
}

// combinations calls fn with every size-k index subset of 0..n-1 in
// lexicographic order until fn returns false.
func combinations(n, k int, fn func([]int) bool) {
	idx := make([]int, k)
	var rec func(start, d int) bool
	rec = func(start, d int) bool {
		if d == k {
			return fn(idx)
		}
		for i := start; i < n; i++ {
			idx[d] = i
			if !rec(i+1, d+1) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}

// swapIsAutomorphism reports whether exchanging exactly the given pairs
// (fixing every other node) preserves E_M.
func swapIsAutomorphism(m *Metagraph, pairs []Edge) bool {
	perm := identityPerm(m.N())
	for _, p := range pairs {
		perm[p.U], perm[p.V] = p.V, p.U
	}
	for _, e := range m.Edges() {
		if !m.HasEdge(perm[e.U], perm[e.V]) {
			return false
		}
	}
	return true
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Simplified returns the simplified metagraph M+ of Sect. IV-C as a
// component-level view: the list of retained components (singletons plus one
// representative per group, in group order) and a component-level adjacency
// matrix over the retained components of the *original* metagraph (an edge
// exists between retained components if any cross edge exists in M between
// their node sets). SymISO uses it only to order components, so a
// component-level view suffices.
func (d *Decomposition) Simplified() (comps []Component, adj [][]bool) {
	for _, g := range d.Groups {
		comps = append(comps, g.Representative())
	}
	adj = make([][]bool, len(comps))
	for i := range adj {
		adj[i] = make([]bool, len(comps))
	}
	for i := range comps {
		for j := i + 1; j < len(comps); j++ {
			if crossEdge(d.M, comps[i], comps[j]) {
				adj[i][j], adj[j][i] = true, true
			}
		}
	}
	return comps, adj
}

// crossEdge reports whether any edge of m joins a node of a to a node of b.
func crossEdge(m *Metagraph, a, b Component) bool {
	for _, u := range a.Nodes {
		for _, v := range b.Nodes {
			if m.HasEdge(u, v) {
				return true
			}
		}
	}
	return false
}
