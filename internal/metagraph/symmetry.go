package metagraph

import "repro/internal/graph"

// Symmetry machinery for Def. 1 of the paper: a metagraph M is symmetric if
// there is a non-empty set Ψ of disjoint pairs of distinct nodes such that
// exchanging the nodes of every pair in Ψ (and fixing all other nodes)
// leaves E_M unchanged. Such an exchange is exactly a type-preserving
// involutive automorphism of M that is a product of disjoint transpositions,
// so we enumerate those.

// Involution represents one symmetry of the metagraph: Perm is the full node
// permutation (Perm[Perm[i]] == i) and Pairs lists its transpositions, i.e.
// the set Ψ, with each pair stored as (small, large).
type Involution struct {
	Perm  []int
	Pairs []Edge
}

// Automorphisms returns every type-preserving automorphism of m as a
// permutation slice (perm[i] = image of node i). The identity is included.
// Metagraphs are at most MaxNodes nodes, so exhaustive backtracking is
// exact and fast.
func (m *Metagraph) Automorphisms() [][]int {
	n := m.N()
	perm := make([]int, n)
	used := make([]bool, n)
	var out [][]int
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for c := 0; c < n; c++ {
			if used[c] || m.types[c] != m.types[i] {
				continue
			}
			// Adjacency to already-placed nodes must be preserved.
			ok := true
			for j := 0; j < i; j++ {
				if m.HasEdge(i, j) != m.HasEdge(c, perm[j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			perm[i] = c
			used[c] = true
			rec(i + 1)
			used[c] = false
		}
	}
	rec(0)
	return out
}

// Involutions returns the non-identity automorphisms of m that are products
// of disjoint transpositions (σ∘σ = id), i.e. every witness Ψ for Def. 1.
func (m *Metagraph) Involutions() []Involution {
	var out []Involution
	for _, p := range m.Automorphisms() {
		ok := false
		isInv := true
		for i, pi := range p {
			if p[pi] != i {
				isInv = false
				break
			}
			if pi != i {
				ok = true
			}
		}
		if !isInv || !ok {
			continue
		}
		inv := Involution{Perm: p}
		for i, pi := range p {
			if i < pi {
				inv.Pairs = append(inv.Pairs, Edge{i, pi})
			}
		}
		out = append(out, inv)
	}
	return out
}

// SymmetricPairs returns all unordered node pairs (u, u') that are symmetric
// to each other in m (Def. 1): pairs appearing as a transposition of some
// involutive automorphism. Pairs are returned with U < V, sorted.
func (m *Metagraph) SymmetricPairs() []Edge {
	set := make(map[Edge]struct{})
	for _, inv := range m.Involutions() {
		for _, p := range inv.Pairs {
			set[p] = struct{}{}
		}
	}
	out := make([]Edge, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	SortEdges(out)
	return out
}

// IsSymmetric reports whether m is a symmetric metagraph per Def. 1.
func (m *Metagraph) IsSymmetric() bool {
	return len(m.SymmetricPairs()) > 0
}

// SymmetricPartners returns, for each node, the set of nodes it is symmetric
// to, as a bitmask slice indexed by node.
func (m *Metagraph) SymmetricPartners() []uint16 {
	out := make([]uint16, m.N())
	for _, p := range m.SymmetricPairs() {
		out[p.U] |= 1 << uint(p.V)
		out[p.V] |= 1 << uint(p.U)
	}
	return out
}

// AnchorPairs returns the symmetric pairs whose two nodes both have type t.
// These are the positions where a node pair (x, y) of interest can land for
// the ContainsSym predicate of Eq. 1: φ(x) and φ(y) must be symmetric to
// each other, and for proximity between users both must be user-typed.
func (m *Metagraph) AnchorPairs(t graph.TypeID) []Edge {
	var out []Edge
	for _, p := range m.SymmetricPairs() {
		if m.types[p.U] == t && m.types[p.V] == t {
			out = append(out, p)
		}
	}
	return out
}
