package metagraph

import (
	"sort"

	"repro/internal/graph"
)

// Canonical returns a key that is identical for exactly the metagraphs that
// are isomorphic under a type-preserving bijection (Def. 2 applied between
// two metagraphs). The miner uses it to deduplicate grown patterns.
//
// The key is computed by sorting nodes by type and then minimizing the
// adjacency encoding over all permutations within equal-type groups. With
// ≤5-node patterns (≤16 supported) exhaustive permutation is cheap, and
// restricting to within-group permutations keeps the search tiny.
func (m *Metagraph) Canonical() string {
	n := m.N()

	// Order nodes by type; group boundaries confine the permutations.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return m.types[order[a]] < m.types[order[b]] })

	// groups[i] = slice of original node ids sharing a type, in type order.
	var groups [][]int
	for i := 0; i < n; {
		j := i
		for j < n && m.types[order[j]] == m.types[order[i]] {
			j++
		}
		groups = append(groups, order[i:j])
		i = j
	}

	sortedTypes := make([]graph.TypeID, n)
	for i, v := range order {
		sortedTypes[i] = m.types[v]
	}

	best := make([]byte, 0, n+n*n/8+8)
	first := true

	// pos[orig] = position of original node in the candidate labeling.
	pos := make([]int, n)
	var rec func(gi, base int)
	encode := func() []byte {
		buf := make([]byte, 0, n+1+(n*(n-1))/2)
		buf = append(buf, byte(n))
		for _, t := range sortedTypes {
			buf = append(buf, byte(t))
		}
		// Upper-triangle adjacency bits in labeled order.
		var cur byte
		bits := 0
		inv := make([]int, n) // inv[pos] = original node
		for orig, p := range pos {
			inv[p] = orig
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				cur <<= 1
				if m.HasEdge(inv[i], inv[j]) {
					cur |= 1
				}
				bits++
				if bits == 8 {
					buf = append(buf, cur)
					cur, bits = 0, 0
				}
			}
		}
		if bits > 0 {
			buf = append(buf, cur<<(8-uint(bits)))
		}
		return buf
	}
	rec = func(gi, base int) {
		if gi == len(groups) {
			cand := encode()
			if first || string(cand) < string(best) {
				best = cand
				first = false
			}
			return
		}
		g := groups[gi]
		permute(g, func(p []int) {
			for i, orig := range p {
				pos[orig] = base + i
			}
			rec(gi+1, base+len(g))
		})
	}
	rec(0, 0)
	return string(best)
}

// permute calls fn with every permutation of s. fn must not retain the
// slice. s is restored to its original order afterwards.
func permute(s []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(s) {
			fn(s)
			return
		}
		for i := k; i < len(s); i++ {
			s[k], s[i] = s[i], s[k]
			rec(k + 1)
			s[k], s[i] = s[i], s[k]
		}
	}
	rec(0)
}

// Isomorphic reports whether m and o are isomorphic under a type-preserving
// bijection.
func Isomorphic(m, o *Metagraph) bool {
	if m.N() != o.N() || m.NumEdges() != o.NumEdges() {
		return false
	}
	return m.Canonical() == o.Canonical()
}
