// Package obs is the unified observability layer: a zero-dependency
// metrics registry (counters, gauges, histogram families backed by
// internal/loadstats) with Prometheus text-format exposition, plus
// request tracing and an HTTP middleware that emits per-request
// structured log lines. Every serving tier (engine, WAL, replica,
// server, semproxy edge) records into it, and /metrics on both daemons
// renders from it — so /v1/stats, BENCH cross-checks, and an external
// Prometheus scrape all read the same source of truth.
//
// Layering: process-wide singletons (WAL, replica, engine hot paths)
// record into the Default registry; per-instance components that can
// coexist in one process (each server.Server, each proxy.Proxy) own
// their own Registry, and their /metrics handler renders the union of
// the instance registry and the default one. Gauges whose value belongs
// to one instance (current term, follower lag) register as GaugeFuncs
// with replace-on-register semantics, so the most recently constructed
// instance wins — exactly right for the daemons, and harmless for
// in-process test stacks.
//
// Histograms wrap loadstats.Hist (which is not safe for concurrent use)
// in a mutex; the log-linear layout bounds quantile error at ~1.6% and
// merging at exposition time stays exact. The registry hands back live
// handles — Inc/Add/Observe are lock-free (counters, gauges) or a
// single uncontended mutex (histograms), so hot paths never pay the
// name-lookup cost per operation.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loadstats"
)

// Histogram sample units: samples are recorded as raw int64s and divided
// by the family's unit at exposition, so latency histograms record
// nanoseconds but expose seconds (the Prometheus convention) while count
// histograms (batch sizes) expose raw values.
const (
	Seconds = 1e9 // samples are nanoseconds; expose as seconds
	Units   = 1   // samples are dimensionless counts
)

// Label is one metric dimension. Keep label cardinality bounded: labels
// become map keys in the registry and time series in a scraper.
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. Safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count — the accessor that lets api.ProxyStats
// render from the registry instead of a parallel set of atomics.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64. Safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a mutex-guarded loadstats.Hist: streaming log-linear
// buckets with exact min/max/sum. Exposed in Prometheus text as a
// summary (p50/p90/p99/p99.9 + _sum + _count) because the log-linear
// layout has far too many buckets for native histogram exposition.
type Histogram struct {
	mu   sync.Mutex
	h    *loadstats.Hist
	unit float64
}

// Observe records one raw sample (nanoseconds for latency families).
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.h.Record(v)
	h.mu.Unlock()
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Since records the time elapsed from start — the deferred one-liner for
// wrapping a hot path.
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Summary snapshots the loadstats percentile slate (milliseconds for
// nanosecond samples) — the bridge the property tests and load reports
// use to compare registry histograms against direct loadstats math.
func (h *Histogram) Summary() loadstats.Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Summarize()
}

// quantiles snapshots everything exposition needs in one critical section.
func (h *Histogram) quantiles() (count uint64, sum float64, qs [4]float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	count = h.h.Count()
	sum = float64(h.h.Sum()) / h.unit
	for i, q := range expQuantiles {
		qs[i] = float64(h.h.Quantile(q)) / h.unit
	}
	return count, sum, qs
}

var expQuantiles = [4]float64{0.5, 0.9, 0.99, 0.999}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is every child series sharing one metric name (one HELP/TYPE
// block in the exposition).
type family struct {
	name string
	help string
	kind kind
	unit float64 // histograms only

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry, or use Default for the process-wide registry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level
// instrumentation (WAL, replica, engine) records into.
func Default() *Registry { return defaultRegistry }

// fam returns the family for name, creating it on first use and
// panicking on a kind or unit mismatch — re-registering the same name
// with a different shape is a programming error, not a runtime state.
func (r *Registry) fam(name, help string, k kind, unit float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: k, unit: unit,
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			gaugeFns: make(map[string]func() float64),
			hists:    make(map[string]*Histogram),
		}
		r.fams[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	if k == kindHistogram && f.unit != unit {
		panic(fmt.Sprintf("obs: histogram %q registered with unit %v, requested with %v", name, f.unit, unit))
	}
	return f
}

// Counter returns the counter for name+labels, creating it on first use.
// Repeated calls with the same name and labels return the same handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.fam(name, help, kindCounter, 0)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.counters[key]
	if !ok {
		c = &Counter{}
		f.counters[key] = c
	}
	return c
}

// Gauge returns the settable gauge for name+labels, creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.fam(name, help, kindGauge, 0)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.gauges[key]
	if !ok {
		g = &Gauge{}
		f.gauges[key] = g
	}
	return g
}

// RegisterGaugeFunc registers a callback gauge evaluated at exposition
// time. Re-registering the same name+labels REPLACES the callback — the
// deliberate semantics for per-instance values (current term, follower
// lag): the most recently constructed instance owns the series.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.fam(name, help, kindGauge, 0)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.gauges, key)
	f.gaugeFns[key] = fn
}

// Histogram returns the histogram for name+labels, creating it on first
// use. unit is the divisor applied at exposition (Seconds for
// nanosecond samples, Units for counts).
func (r *Registry) Histogram(name, help string, unit float64, labels ...Label) *Histogram {
	f := r.fam(name, help, kindHistogram, unit)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.hists[key]
	if !ok {
		h = &Histogram{h: loadstats.New(), unit: unit}
		f.hists[key] = h
	}
	return h
}

// labelKey renders labels in sorted-key order exactly as they appear
// inside the exposition braces — the canonical child identity.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := ""
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return out
}
