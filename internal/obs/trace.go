// Request tracing: an opaque ID minted at the first tier that sees a
// request (the semproxy edge, or the server when hit directly), accepted
// from the caller when already present, and carried via context through
// client/Router hops so every tier's structured log line shares it. The
// ID rides HTTP headers and log lines ONLY — never response bodies,
// which must stay byte-identical across replicas and legacy aliases.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
)

type traceKeyType struct{}

var traceKey traceKeyType

// WithTrace returns ctx carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey, id)
}

// TraceID returns the trace ID carried by ctx, or "".
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey).(string)
	return id
}

var traceFallback atomic.Uint64

// NewTraceID mints a 16-hex-char random ID. If the system randomness
// source fails (it effectively cannot on the supported platforms), a
// process-local counter keeps IDs unique rather than failing a request
// over telemetry.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "t" + strconv.FormatUint(traceFallback.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// attrBag collects extra slog attrs a handler wants on its request log
// line (backend URL, hedge outcome) without the middleware knowing the
// handler's vocabulary. Carried by context; guarded because hedged reads
// race their attr writes.
type attrBag struct {
	mu    sync.Mutex
	attrs []slog.Attr
}

type attrBagKeyType struct{}

var attrBagKey attrBagKeyType

func withAttrBag(ctx context.Context) (context.Context, *attrBag) {
	b := &attrBag{}
	return context.WithValue(ctx, attrBagKey, b), b
}

// AddAttrs attaches attrs to the request log line for the request ctx
// belongs to. A no-op when no logging middleware is installed.
func AddAttrs(ctx context.Context, attrs ...slog.Attr) {
	b, _ := ctx.Value(attrBagKey).(*attrBag)
	if b == nil {
		return
	}
	b.mu.Lock()
	b.attrs = append(b.attrs, attrs...)
	b.mu.Unlock()
}

func (b *attrBag) take() []slog.Attr {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attrs
}
