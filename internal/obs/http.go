// HTTP instrumentation middleware, shared by internal/server and
// internal/proxy: per-endpoint latency histograms and status-class
// counters on the wrapped registry, trace minting/propagation via a
// configurable header, and an optional structured per-request log line
// (endpoint, status, latency, trace, epoch, cache disposition, plus
// whatever attrs the handler added via AddAttrs) with a slow-query
// threshold that escalates Info to Warn.
package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// Metric family names the middleware records. One name across server and
// proxy: each owns its registry, so the same family name on different
// /metrics endpoints never collides.
const (
	MetricHTTPRequests = "semprox_http_requests_total"
	MetricHTTPLatency  = "semprox_http_request_seconds"
)

// HTTPOptions configures WrapHTTP. Zero-value fields disable the
// corresponding feature.
type HTTPOptions struct {
	// Registry receives per-endpoint metrics; nil skips metrics.
	Registry *Registry
	// TraceHeader names the request/response trace header
	// (api.HeaderTrace); "" disables tracing. The response header is set
	// before the handler runs, so error envelopes carry it too.
	TraceHeader string
	// Component tags log lines ("server", "proxy").
	Component string
	// Logger emits one line per request; nil disables request logging
	// (the daemons enable it, in-process test stacks stay quiet).
	Logger *slog.Logger
	// SlowThreshold escalates the log line to Warn when the request
	// takes at least this long; 0 never escalates.
	SlowThreshold time.Duration
	// PathLabel bounds metric label cardinality by canonicalizing the
	// request path; nil uses the raw path.
	PathLabel func(string) string
	// EpochHeader and CacheHeader name response headers whose values,
	// when set by the handler, are echoed into the log line (the epoch a
	// read served at; the edge cache hit/miss disposition).
	EpochHeader, CacheHeader string
}

// statusWriter captures the status code without disturbing the wrapped
// ResponseWriter; Unwrap keeps http.ResponseController (and any Flusher
// type-assertions via it) working for the streaming snapshot endpoint.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// statusClass renders a status code as its class label ("2xx").
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// WrapHTTP wraps next with tracing, metrics, and request logging per o.
func WrapHTTP(next http.Handler, o HTTPOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		trace := ""
		if o.TraceHeader != "" {
			trace = r.Header.Get(o.TraceHeader)
			if trace == "" {
				trace = NewTraceID()
			}
			w.Header().Set(o.TraceHeader, trace)
			ctx = WithTrace(ctx, trace)
		}
		var bag *attrBag
		if o.Logger != nil {
			ctx, bag = withAttrBag(ctx)
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		dur := time.Since(start)
		status := sw.status
		if status == 0 { // handler wrote nothing: net/http sends 200
			status = http.StatusOK
		}
		path := r.URL.Path
		if o.PathLabel != nil {
			path = o.PathLabel(path)
		}
		if o.Registry != nil {
			o.Registry.Histogram(MetricHTTPLatency,
				"Request latency by canonical endpoint.", Seconds,
				L("path", path)).ObserveDuration(dur)
			o.Registry.Counter(MetricHTTPRequests,
				"Requests served, by canonical endpoint and status class.",
				L("path", path), L("code", statusClass(status))).Inc()
		}
		if o.Logger == nil {
			return
		}
		attrs := make([]slog.Attr, 0, 12)
		if o.Component != "" {
			attrs = append(attrs, slog.String("component", o.Component))
		}
		attrs = append(attrs,
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("ms", float64(dur.Microseconds())/1e3),
		)
		if trace != "" {
			attrs = append(attrs, slog.String("trace", trace))
		}
		if o.EpochHeader != "" {
			if v := sw.Header().Get(o.EpochHeader); v != "" {
				attrs = append(attrs, slog.String("epoch", v))
			}
		}
		if o.CacheHeader != "" {
			if v := sw.Header().Get(o.CacheHeader); v != "" {
				attrs = append(attrs, slog.String("cache", v))
			}
		}
		attrs = append(attrs, bag.take()...)
		level := slog.LevelInfo
		if o.SlowThreshold > 0 && dur >= o.SlowThreshold {
			level = slog.LevelWarn
			attrs = append(attrs, slog.Bool("slow", true))
		}
		o.Logger.LogAttrs(ctx, level, "request", attrs...)
	})
}
