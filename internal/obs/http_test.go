package obs

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const testTraceHeader = "X-Test-Trace"

func wrapped(reg *Registry, logger *slog.Logger, slow time.Duration, inner http.HandlerFunc) http.Handler {
	return WrapHTTP(inner, HTTPOptions{
		Registry:      reg,
		TraceHeader:   testTraceHeader,
		Component:     "test",
		Logger:        logger,
		SlowThreshold: slow,
		PathLabel: func(p string) string {
			if p == "/known" {
				return "/known"
			}
			return "other"
		},
		EpochHeader: "X-Test-Epoch",
		CacheHeader: "X-Test-Cache",
	})
}

func TestMiddlewareMintsTrace(t *testing.T) {
	reg := NewRegistry()
	var seen string
	h := wrapped(reg, nil, 0, func(w http.ResponseWriter, r *http.Request) {
		seen = TraceID(r.Context())
		w.WriteHeader(200)
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/known", nil))
	if seen == "" {
		t.Fatal("handler saw no trace ID in context")
	}
	if got := rec.Header().Get(testTraceHeader); got != seen {
		t.Fatalf("response trace header %q != context trace %q", got, seen)
	}
}

func TestMiddlewareAcceptsCallerTrace(t *testing.T) {
	h := wrapped(NewRegistry(), nil, 0, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(204)
	})
	req := httptest.NewRequest("GET", "/known", nil)
	req.Header.Set(testTraceHeader, "caller-id-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(testTraceHeader); got != "caller-id-1" {
		t.Fatalf("caller trace not propagated: %q", got)
	}
}

func TestMiddlewareTraceOnErrorResponse(t *testing.T) {
	h := wrapped(NewRegistry(), nil, 0, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusBadRequest)
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/known", nil))
	if rec.Code != 400 {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get(testTraceHeader) == "" {
		t.Fatal("error response missing trace header")
	}
}

func TestMiddlewareMetrics(t *testing.T) {
	reg := NewRegistry()
	h := wrapped(reg, nil, 0, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/known" {
			w.WriteHeader(200)
			return
		}
		http.Error(w, "nope", http.StatusNotFound)
	})
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/known", nil))
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/missing", nil))
	series := parseExposition(t, gatherText(t, reg))
	if got := series[MetricHTTPRequests+`{code="2xx",path="/known"}`]; got != 3 {
		t.Fatalf("2xx counter = %v, want 3", got)
	}
	if got := series[MetricHTTPRequests+`{code="4xx",path="other"}`]; got != 1 {
		t.Fatalf("4xx counter = %v, want 1", got)
	}
	if got := series[MetricHTTPLatency+`_count{path="/known"}`]; got != 3 {
		t.Fatalf("latency count = %v, want 3", got)
	}
}

// logLines decodes a JSON slog buffer into raw lines.
func logLines(buf *bytes.Buffer) []string {
	return strings.Split(strings.TrimSpace(buf.String()), "\n")
}

func TestMiddlewareLogLine(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := wrapped(NewRegistry(), logger, 0, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Test-Epoch", "7")
		w.Header().Set("X-Test-Cache", "hit")
		AddAttrs(r.Context(), slog.String("backend", "http://b1"))
		w.WriteHeader(200)
	})
	req := httptest.NewRequest("GET", "/known", nil)
	req.Header.Set(testTraceHeader, "trace-xyz")
	h.ServeHTTP(httptest.NewRecorder(), req)

	lines := logLines(&buf)
	if len(lines) != 1 {
		t.Fatalf("want exactly one log line, got %d: %v", len(lines), lines)
	}
	for _, want := range []string{
		`"component":"test"`, `"method":"GET"`, `"path":"/known"`,
		`"status":200`, `"trace":"trace-xyz"`, `"epoch":"7"`,
		`"cache":"hit"`, `"backend":"http://b1"`, `"level":"INFO"`, `"ms":`,
	} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("log line missing %s:\n%s", want, lines[0])
		}
	}
}

func TestMiddlewareSlowWarns(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := wrapped(NewRegistry(), logger, time.Millisecond, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(3 * time.Millisecond)
		w.WriteHeader(200)
	})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/known", nil))
	line := logLines(&buf)[0]
	if !strings.Contains(line, `"level":"WARN"`) || !strings.Contains(line, `"slow":true`) {
		t.Fatalf("slow request did not warn:\n%s", line)
	}
}

func TestMiddlewareNoLoggerStaysQuiet(t *testing.T) {
	h := wrapped(NewRegistry(), nil, 0, func(w http.ResponseWriter, r *http.Request) {
		// AddAttrs without a bag must be a no-op, not a panic.
		AddAttrs(r.Context(), slog.String("k", "v"))
		w.WriteHeader(200)
	})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/known", nil))
}

func TestStatusWriterDefaultsAndUnwrap(t *testing.T) {
	reg := NewRegistry()
	h := wrapped(reg, nil, 0, func(w http.ResponseWriter, r *http.Request) {
		// Implicit 200 via Write, plus the Flusher passthrough.
		if _, err := w.Write([]byte("ok")); err != nil {
			t.Errorf("write: %v", err)
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		rc := http.NewResponseController(w)
		if err := rc.Flush(); err != nil {
			t.Errorf("ResponseController.Flush through Unwrap: %v", err)
		}
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/known", nil))
	if rec.Code != 200 || rec.Body.String() != "ok" {
		t.Fatalf("got %d %q", rec.Code, rec.Body.String())
	}
	series := parseExposition(t, gatherText(t, reg))
	if series[MetricHTTPRequests+`{code="2xx",path="/known"}`] != 1 {
		t.Fatal("implicit 200 not counted as 2xx")
	}
}

func TestWithTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty ctx carries a trace")
	}
	if WithTrace(ctx, "") != ctx {
		t.Fatal("WithTrace(\"\") should be a no-op")
	}
	if got := TraceID(WithTrace(ctx, "abc")); got != "abc" {
		t.Fatalf("TraceID = %q", got)
	}
}

func TestStatusClass(t *testing.T) {
	for code, want := range map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 503: "5xx"} {
		if got := statusClass(code); got != want {
			t.Fatalf("statusClass(%d) = %s, want %s", code, got, want)
		}
	}
}
