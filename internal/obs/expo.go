// Prometheus text-format exposition (version 0.0.4), implemented
// directly rather than through a client library: the format is a dozen
// lines of escaping rules, and keeping the repo std-lib-only means the
// serving tiers never pick up a dependency just to be scraped.
// Histogram families render as summaries (quantile-labeled series plus
// _sum and _count) because the log-linear loadstats layout has ~3800
// buckets — faithful but useless as native histogram buckets.
package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// sample is one exposition line: name{labels} value.
type sample struct {
	suffix string // appended to the family name ("_sum", "_count", "")
	labels string // rendered label pairs, without braces
	value  float64
	isUint bool // render as an integer (counters, counts)
	uval   uint64
}

// famSnap is a point-in-time copy of one family, ready to render.
type famSnap struct {
	name, help string
	kind       kind
	samples    []sample
}

// snapshot copies every family under the registry locks. Callback gauges
// are evaluated here, outside any caller-visible critical section.
func (r *Registry) snapshot() []famSnap {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]famSnap, 0, len(fams))
	for _, f := range fams {
		fs := famSnap{name: f.name, help: f.help, kind: f.kind}
		f.mu.Lock()
		switch f.kind {
		case kindCounter:
			for key, c := range f.counters {
				fs.samples = append(fs.samples, sample{labels: key, isUint: true, uval: c.Value()})
			}
		case kindGauge:
			for key, g := range f.gauges {
				fs.samples = append(fs.samples, sample{labels: key, value: float64(g.Value())})
			}
			for key, fn := range f.gaugeFns {
				fs.samples = append(fs.samples, sample{labels: key, value: fn()})
			}
		case kindHistogram:
			for key, h := range f.hists {
				count, sum, qs := h.quantiles()
				for i, q := range expQuantiles {
					fs.samples = append(fs.samples, sample{
						labels: joinLabels(key, `quantile="`+strconv.FormatFloat(q, 'g', -1, 64)+`"`),
						value:  qs[i],
					})
				}
				fs.samples = append(fs.samples, sample{suffix: "_sum", labels: key, value: sum})
				fs.samples = append(fs.samples, sample{suffix: "_count", labels: key, isUint: true, uval: count})
			}
		}
		f.mu.Unlock()
		sort.Slice(fs.samples, func(i, j int) bool {
			if fs.samples[i].suffix != fs.samples[j].suffix {
				return fs.samples[i].suffix < fs.samples[j].suffix
			}
			return fs.samples[i].labels < fs.samples[j].labels
		})
		out = append(out, fs)
	}
	return out
}

// joinLabels concatenates two rendered label fragments.
func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// WriteText renders the union of the given registries in Prometheus text
// format. Families sharing a name across registries merge into one
// HELP/TYPE block (first registry's help wins); a kind mismatch across
// registries drops the later family rather than emitting an unparseable
// duplicate TYPE line.
func WriteText(w io.Writer, regs ...*Registry) error {
	type merged struct {
		snap famSnap
		seen map[string]bool // suffix+labels already emitted
	}
	byName := make(map[string]*merged)
	var names []string
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, fs := range r.snapshot() {
			m, ok := byName[fs.name]
			if !ok {
				m = &merged{snap: fs, seen: make(map[string]bool, len(fs.samples))}
				m.snap.samples = nil
				byName[fs.name] = m
				names = append(names, fs.name)
			} else if m.snap.kind != fs.kind {
				continue
			}
			// Duplicate series (same labels in two registries) keep the
			// earliest registry's sample — one line per series, always
			// parseable.
			for _, s := range fs.samples {
				key := s.suffix + "|" + s.labels
				if m.seen[key] {
					continue
				}
				m.seen[key] = true
				m.snap.samples = append(m.snap.samples, s)
			}
		}
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		fs := byName[name].snap
		typ := "counter"
		switch fs.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "summary"
		}
		if fs.help != "" {
			bw.WriteString("# HELP " + fs.name + " " + escapeHelp(fs.help) + "\n")
		}
		bw.WriteString("# TYPE " + fs.name + " " + typ + "\n")
		for _, s := range fs.samples {
			bw.WriteString(fs.name + s.suffix)
			if s.labels != "" {
				bw.WriteString("{" + s.labels + "}")
			}
			if s.isUint {
				bw.WriteString(" " + strconv.FormatUint(s.uval, 10) + "\n")
			} else {
				bw.WriteString(" " + strconv.FormatFloat(s.value, 'g', -1, 64) + "\n")
			}
		}
	}
	return bw.Flush()
}

// Handler serves the union of the given registries at /metrics. GET and
// HEAD only; the content type is the Prometheus text format version the
// ecosystem's parsers expect.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r.Method == http.MethodHead {
			return
		}
		_ = WriteText(w, regs...)
	})
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
