package obs

import (
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parseExposition is a strict line parser for the subset of the
// Prometheus text format this package emits: every non-comment line must
// be `name{labels} value` or `name value`, every series must be preceded
// by a TYPE line for its family, and values must parse as floats. It
// returns series keyed by `name{labels}`.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "summary":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, parts[1])
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label block: %q", ln+1, line)
			}
			name = key[:i]
		}
		fam := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[fam]; !ok {
				t.Fatalf("line %d: series %q has no TYPE line", ln+1, name)
			}
		}
		if _, dup := series[key]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, key)
		}
		series[key] = v
	}
	return series
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", L("path", "/v1/query"), L("code", "2xx")).Add(3)
	r.Gauge("app_epoch", "Current epoch.").Set(42)
	h := r.Histogram("app_latency_seconds", "Latency.", Seconds)
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 1_000_000) // 1..100ms
	}
	out := gatherText(t, r)

	for _, want := range []string{
		"# HELP app_requests_total Requests served.\n",
		"# TYPE app_requests_total counter\n",
		`app_requests_total{code="2xx",path="/v1/query"} 3` + "\n",
		"# TYPE app_epoch gauge\n",
		"app_epoch 42\n",
		"# TYPE app_latency_seconds summary\n",
		`app_latency_seconds{quantile="0.5"}`,
		`app_latency_seconds{quantile="0.999"}`,
		"app_latency_seconds_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	series := parseExposition(t, out)
	if got := series[`app_latency_seconds{quantile="0.99"}`]; got < 0.09 || got > 0.11 {
		t.Fatalf("p99 = %v s, want ~0.099", got)
	}
	sum := series["app_latency_seconds_sum"]
	if sum < 5.04 || sum > 5.06 { // 1+..+100 ms = 5.05 s
		t.Fatalf("sum = %v s, want ~5.05", sum)
	}
}

func TestExpositionSortedAndDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z_total", "h").Inc()
		r.Counter("a_total", "h", L("x", "2")).Inc()
		r.Counter("a_total", "h", L("x", "1")).Inc()
		r.Gauge("m_gauge", "h").Set(1)
		return r
	}
	a, b := gatherText(t, build()), gatherText(t, build())
	if a != b {
		t.Fatalf("same registry contents rendered differently:\n%s\nvs\n%s", a, b)
	}
	if strings.Index(a, "a_total") > strings.Index(a, "m_gauge") ||
		strings.Index(a, "m_gauge") > strings.Index(a, "z_total") {
		t.Fatalf("families not name-sorted:\n%s", a)
	}
	if strings.Index(a, `x="1"`) > strings.Index(a, `x="2"`) {
		t.Fatalf("children not label-sorted:\n%s", a)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("v", "a\"b\\c\nd")).Inc()
	out := gatherText(t, r)
	want := `esc_total{v="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("label escaping wrong, want %q in:\n%s", want, out)
	}
	parseExposition(t, out)
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "multi\nline \\ help").Inc()
	out := gatherText(t, r)
	if !strings.Contains(out, `# HELP esc_total multi\nline \\ help`+"\n") {
		t.Fatalf("help escaping wrong:\n%s", out)
	}
}

func TestMergedRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("shared_total", "h", L("src", "a")).Add(1)
	b.Counter("shared_total", "h", L("src", "b")).Add(2)
	a.Gauge("only_a", "h").Set(5)
	// Kind conflict across registries: the later family is dropped, the
	// output stays parseable.
	b.Gauge("only_a", "h").Set(7)
	out := gatherText(t, a, b)
	series := parseExposition(t, out)
	if series[`shared_total{src="a"}`] != 1 || series[`shared_total{src="b"}`] != 2 {
		t.Fatalf("merged family lost samples:\n%s", out)
	}
	if strings.Count(out, "# TYPE shared_total") != 1 {
		t.Fatalf("merged family emitted duplicate TYPE lines:\n%s", out)
	}
	if series["only_a"] != 5 {
		t.Fatalf("first registry should win on only_a:\n%s", out)
	}
	ca, cb := NewRegistry(), NewRegistry()
	ca.Counter("x_total", "h").Inc()
	cb.Gauge("x_total", "h").Set(9)
	conflicted := gatherText(t, ca, cb)
	parseExposition(t, conflicted)
	if strings.Contains(conflicted, "x_total 9") {
		t.Fatalf("kind-conflicting later family leaked into output:\n%s", conflicted)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Fatalf("body missing series:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("HEAD", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("HEAD = %d with %d body bytes", rec.Code, rec.Body.Len())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	name := fmt.Sprintf("default_probe_total_%d", len(gatherText(t, Default())))
	Default().Counter(name, "h").Inc()
	if !strings.Contains(gatherText(t, Default()), name) {
		t.Fatal("Default() did not persist a registration")
	}
}
