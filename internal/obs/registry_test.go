package obs

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/loadstats"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "h", L("op", "read"))
	b := r.Counter("test_total", "h", L("op", "read"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("test_total", "h", L("op", "write"))
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Inc()
	a.Add(4)
	if got := b.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	if c.Value() != 0 {
		t.Fatalf("sibling counter moved: %d", c.Value())
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_total", "h", L("a", "1"), L("b", "2"))
	b := r.Counter("t_total", "h", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed child identity")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "h")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.RegisterGaugeFunc("test_fn", "h", func() float64 { return 1 })
	r.RegisterGaugeFunc("test_fn", "h", func() float64 { return 2 })
	out := gatherText(t, r)
	if !strings.Contains(out, "test_fn 2\n") {
		t.Fatalf("re-registered gauge func did not replace:\n%s", out)
	}
	if strings.Contains(out, "test_fn 1\n") {
		t.Fatalf("stale gauge func still rendered:\n%s", out)
	}
}

func TestGaugeFuncReplacesSetGauge(t *testing.T) {
	r := NewRegistry()
	r.Gauge("test_g", "h").Set(9)
	r.RegisterGaugeFunc("test_g", "h", func() float64 { return 3 })
	out := gatherText(t, r)
	if !strings.Contains(out, "test_g 3\n") || strings.Contains(out, "test_g 9\n") {
		t.Fatalf("gauge func did not displace the set gauge:\n%s", out)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_total", "h")
}

func TestHistogramUnitMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("test_seconds", "h", Seconds)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a histogram with a new unit did not panic")
		}
	}()
	r.Histogram("test_seconds", "h", Units)
}

func TestEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty metric name did not panic")
		}
	}()
	NewRegistry().Counter("", "h")
}

// TestHistogramMatchesLoadstats is the quantile property test: a
// registry histogram fed the same samples as a bare loadstats.Hist must
// report the identical Summary slate — obs adds locking and exposition,
// never different math.
func TestHistogramMatchesLoadstats(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewRegistry()
		h := r.Histogram("test_seconds", "h", Seconds)
		direct := loadstats.New()
		n := 1000 + rng.Intn(9000)
		for i := 0; i < n; i++ {
			// Span the exact region, the log-linear octaves, and a heavy tail.
			v := int64(rng.Intn(50)) + rng.Int63n(1_000_000)<<uint(rng.Intn(12))
			h.Observe(v)
			direct.Record(v)
		}
		got, want := h.Summary(), direct.Summarize()
		if got != want {
			t.Fatalf("seed %d: registry summary %+v != direct loadstats summary %+v", seed, got, want)
		}
	}
}

func TestHistogramDurationHelpers(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "h", Seconds)
	h.ObserveDuration(2 * time.Millisecond)
	h.Since(time.Now().Add(-3 * time.Millisecond))
	s := h.Summary()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.MaxMs < 2.9 {
		t.Fatalf("Since recorded %.2fms, want ~3ms", s.MaxMs)
	}
}

// TestRaceHammer hits one registry from many goroutines with concurrent
// Inc/Set/Observe/gather; run under -race (make test) it proves the
// handles and the exposition snapshot are data-race free.
func TestRaceHammer(t *testing.T) {
	r := NewRegistry()
	r.RegisterGaugeFunc("hammer_fn", "h", func() float64 { return 1 })
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("hammer_total", "h", L("w", fmt.Sprint(id%2)))
			g := r.Gauge("hammer_gauge", "h")
			h := r.Histogram("hammer_seconds", "h", Seconds)
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(j))
				h.Observe(int64(j % 1000))
				// Re-lookup interleaves registration with traffic.
				r.Counter("hammer_total", "h", L("w", fmt.Sprint(id%2))).Inc()
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := WriteText(&sb, r); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	out := gatherText(t, r)
	for _, want := range []string{"hammer_total", "hammer_gauge", "hammer_seconds_count", "hammer_fn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("final gather missing %q:\n%s", want, out)
		}
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || a == b {
		t.Fatalf("trace IDs %q / %q: want distinct 16-char hex", a, b)
	}
}

func gatherText(t *testing.T, regs ...*Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := WriteText(&sb, regs...); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return sb.String()
}
