// Package atomicfile replaces a file atomically and durably: content is
// staged to a temp file in the target's directory, fsynced, renamed over
// the target, and the directory entry is fsynced too. A crash at any
// point leaves either the old file or the new one, never a truncated
// hybrid. Staging in the target's directory (not os.TempDir) keeps the
// rename on one filesystem, which is what makes it atomic.
//
// One implementation serves every writer that needs the pattern — engine
// snapshots (cmd/semproxd), benchmark reports (cmd/bench), the WAL's
// skip-list sidecar (internal/wal) — so a future durability fix lands in
// one place.
package atomicfile

import (
	"io"
	"os"
	"path/filepath"
)

// WriteWith atomically replaces path with the bytes write streams out.
// If write (or any later step) fails, the target is untouched and the
// temp file is removed; a crash can at worst leave a stale temp file
// behind, never a partial target.
func WriteWith(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Write is WriteWith for content already in memory.
func Write(path string, data []byte) error {
	return WriteWith(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
