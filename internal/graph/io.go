package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is line oriented:
//
//	# comment
//	T <type-name>                 registers an object type; T lines fix the
//	                              TypeID order (0,1,2,... in order of
//	                              appearance), so a round-tripped graph
//	                              keeps the registry of the graph that was
//	                              written, even for types its nodes visit
//	                              in a different order (or never)
//	N <type-name> <value...>      declares the next node (ids are implicit,
//	                              assigned 0,1,2,... in order of appearance)
//	E <u> <v>                     declares an undirected edge
//
// Values may contain spaces; everything after the type name is the value.
// The format is intentionally trivial so datasets can be inspected and
// hand-edited; T lines are optional on input (types of files written
// before they existed register in node order, as they always did).

// Write serializes g in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# typed object graph: %d nodes, %d edges, %d types\n",
		g.NumNodes(), g.NumEdges(), g.NumTypes())
	for _, name := range g.types.Names() {
		fmt.Fprintf(bw, "T %s\n", name)
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		fmt.Fprintf(bw, "N %s %s\n", g.types.Name(g.Type(v)), g.Name(v))
	}
	var werr error
	g.Edges(func(u, v NodeID) bool {
		if _, err := fmt.Fprintf(bw, "E %d %d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// Read parses the text format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch line[0] {
		case 'T':
			name := strings.TrimSpace(line[1:])
			if name == "" {
				return nil, fmt.Errorf("graph: line %d: type without name", lineNo)
			}
			b.Types().Register(name)
		case 'N':
			rest := strings.TrimSpace(line[1:])
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) == 0 || parts[0] == "" {
				return nil, fmt.Errorf("graph: line %d: node without type", lineNo)
			}
			value := ""
			if len(parts) == 2 {
				value = parts[1]
			}
			b.AddNode(parts[0], value)
		case 'E':
			fields := strings.Fields(line[1:])
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: edge needs two endpoints", lineNo)
			}
			u, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", lineNo, fields[0])
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", lineNo, fields[1])
			}
			b.AddEdge(NodeID(u), NodeID(v))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, line[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
