package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates nodes and edges and assembles an immutable Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	types    *TypeRegistry
	nodeType []TypeID
	nodeName []string
	edges    []Edge
	named    map[string]NodeID // value-keyed node lookup for AddNodeOnce
}

// NewBuilder returns an empty Builder with a fresh type registry.
func NewBuilder() *Builder {
	return &Builder{
		types: NewTypeRegistry(),
		named: make(map[string]NodeID),
	}
}

// Types exposes the builder's registry so callers can pre-register types in
// a fixed order (useful for reproducible TypeIDs).
func (b *Builder) Types() *TypeRegistry { return b.types }

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodeType) }

// AddNode adds a node with the given type name and intrinsic value, and
// returns its id. Values need not be unique.
func (b *Builder) AddNode(typeName, value string) NodeID {
	t := b.types.Register(typeName)
	id := NodeID(len(b.nodeType))
	b.nodeType = append(b.nodeType, t)
	b.nodeName = append(b.nodeName, value)
	return id
}

// AddNodeOnce adds a node keyed by (typeName, value) if it does not already
// exist, and returns the node's id either way. This is the natural way to
// build attribute graphs where attribute values like "College A" are shared.
func (b *Builder) AddNodeOnce(typeName, value string) NodeID {
	key := typeName + "\x00" + value
	if id, ok := b.named[key]; ok {
		return id
	}
	id := b.AddNode(typeName, value)
	b.named[key] = id
	return id
}

// AddEdge records the undirected edge {u, v}. Self loops and duplicates are
// tolerated here and removed by Build.
func (b *Builder) AddEdge(u, v NodeID) {
	b.edges = append(b.edges, Edge{u, v})
}

// Build assembles the Graph. It returns an error if any edge endpoint is out
// of range.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.nodeType)
	for _, e := range b.edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references missing node (have %d nodes)", e.U, e.V, n)
		}
	}

	g := &Graph{
		types:    b.types.Clone(),
		nodeType: append([]TypeID(nil), b.nodeType...),
		nodeName: append([]string(nil), b.nodeName...),
	}

	// Deduplicate edges, drop self loops, and count degrees.
	deg := make([]int64, n)
	seen := make(map[[2]NodeID]struct{}, len(b.edges))
	uniq := make([]Edge, 0, len(b.edges))
	for _, e := range b.edges {
		u, v := e.U, e.V
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]NodeID{u, v}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		uniq = append(uniq, Edge{u, v})
		deg[u]++
		deg[v]++
	}
	g.numEdges = len(uniq)

	// CSR offsets.
	g.off = make([]int64, n+1)
	for v := 0; v < n; v++ {
		g.off[v+1] = g.off[v] + deg[v]
	}
	g.nbr = make([]NodeID, g.off[n])
	fill := make([]int64, n)
	for _, e := range uniq {
		g.nbr[g.off[e.U]+fill[e.U]] = e.V
		fill[e.U]++
		g.nbr[g.off[e.V]+fill[e.V]] = e.U
		fill[e.V]++
	}

	// Sort each neighbor list by (type, id) and record typed sub-ranges.
	nt := g.types.Len()
	g.typeOff = make([]int32, int64(n)*int64(nt+1))
	for v := 0; v < n; v++ {
		lst := g.nbr[g.off[v]:g.off[v+1]]
		sort.Slice(lst, func(i, j int) bool {
			ti, tj := g.nodeType[lst[i]], g.nodeType[lst[j]]
			if ti != tj {
				return ti < tj
			}
			return lst[i] < lst[j]
		})
		base := int64(v) * int64(nt+1)
		idx := 0
		for t := 0; t < nt; t++ {
			g.typeOff[base+int64(t)] = int32(idx)
			for idx < len(lst) && g.nodeType[lst[idx]] == TypeID(t) {
				idx++
			}
		}
		g.typeOff[base+int64(nt)] = int32(idx)
	}

	// Nodes by type.
	g.byType = make([][]NodeID, nt)
	for v := 0; v < n; v++ {
		t := g.nodeType[v]
		g.byType[t] = append(g.byType[t], NodeID(v))
	}
	return g, nil
}

// MustBuild is Build but panics on error; convenient in tests and examples
// where edges are constructed programmatically and cannot be invalid.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
