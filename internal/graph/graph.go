package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (object) within a Graph. IDs are dense: a graph
// with n nodes uses IDs 0..n-1.
type NodeID int32

// InvalidNode marks "no such node" in lookups.
const InvalidNode NodeID = -1

// Edge is an undirected edge between two objects.
type Edge struct {
	U, V NodeID
}

// Graph is an immutable typed object graph in CSR form. Build one with a
// Builder, or derive the next version of a live graph with Apply. All
// accessors are safe for concurrent use because the structure is never
// mutated after Build/Apply.
type Graph struct {
	types *TypeRegistry

	nodeType []TypeID // τ: V → T
	nodeName []string // intrinsic values; may be empty strings

	// CSR adjacency. nbr[off[v]:off[v+1]] lists v's neighbors sorted by
	// (type, id). The flat arrays cover the nodes that existed when they
	// were last (re)built; rows touched by Apply since then — and all
	// nodes added since then — live in ovl instead.
	off []int64
	nbr []NodeID

	// typeOff[v*(numTypes+1)+t] is the index into nbr (relative to off[v])
	// where neighbors of type t start; the final slot holds the degree.
	typeOff []int32

	// byType[t] lists all nodes of type t in ascending order.
	byType [][]NodeID

	numEdges int

	// version counts Apply generations (see delta.go); ovl holds the
	// copy-on-write rows of nodes whose adjacency is newer than the flat
	// arrays. nil for freshly built or compacted graphs, so the hot
	// accessors pay one nil check on the common path.
	version uint64
	ovl     map[NodeID]*ovlRow
}

// Types returns the graph's type registry.
func (g *Graph) Types() *TypeRegistry { return g.types }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodeType) }

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumTypes returns |T|.
func (g *Graph) NumTypes() int { return g.types.Len() }

// Type returns τ(v).
func (g *Graph) Type(v NodeID) TypeID { return g.nodeType[v] }

// Name returns the intrinsic value of v ("" if none was set).
func (g *Graph) Name(v NodeID) string { return g.nodeName[v] }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int {
	if g.ovl != nil {
		if r := g.ovl[v]; r != nil {
			return len(r.nbr)
		}
	}
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns v's neighbor list sorted by (type, id). The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	if g.ovl != nil {
		if r := g.ovl[v]; r != nil {
			return r.nbr
		}
	}
	return g.nbr[g.off[v]:g.off[v+1]]
}

// NeighborsOfType returns the neighbors of v having type t, sorted
// ascending. The returned slice aliases internal storage and must not be
// modified.
func (g *Graph) NeighborsOfType(v NodeID, t TypeID) []NodeID {
	if g.ovl != nil {
		if r := g.ovl[v]; r != nil {
			return r.nbr[r.typeOff[t]:r.typeOff[t+1]]
		}
	}
	base := g.off[v]
	k := int64(v) * int64(g.types.Len()+1)
	lo := base + int64(g.typeOff[k+int64(t)])
	hi := base + int64(g.typeOff[k+int64(t)+1])
	return g.nbr[lo:hi]
}

// DegreeOfType returns the number of neighbors of v having type t.
func (g *Graph) DegreeOfType(v NodeID, t TypeID) int {
	if g.ovl != nil {
		if r := g.ovl[v]; r != nil {
			return int(r.typeOff[t+1] - r.typeOff[t])
		}
	}
	k := int64(v) * int64(g.types.Len()+1)
	return int(g.typeOff[k+int64(t)+1] - g.typeOff[k+int64(t)])
}

// HasEdge reports whether {u, v} ∈ E. Self loops never exist.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	// Search the smaller typed range: v's neighbors of u's type.
	du, dv := g.Degree(u), g.Degree(v)
	if du < dv {
		u, v = v, u
	}
	rng := g.NeighborsOfType(v, g.Type(u))
	i := sort.Search(len(rng), func(i int) bool { return rng[i] >= u })
	return i < len(rng) && rng[i] == u
}

// NodesOfType returns all nodes of type t in ascending order. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) NodesOfType(t TypeID) []NodeID {
	if int(t) >= len(g.byType) || t < 0 {
		return nil
	}
	return g.byType[t]
}

// NumNodesOfType returns the number of nodes of type t.
func (g *Graph) NumNodesOfType(t TypeID) int { return len(g.NodesOfType(t)) }

// Edges iterates over every undirected edge exactly once (u < v) and calls
// fn. Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if !fn(u, v) {
					return
				}
			}
		}
	}
}

// NodeByName returns the first node whose intrinsic value equals name, or
// InvalidNode. It is a linear scan intended for examples and tests, not hot
// paths; real applications should keep their own name index.
func (g *Graph) NodeByName(name string) NodeID {
	for v, n := range g.nodeName {
		if n == name {
			return NodeID(v)
		}
	}
	return InvalidNode
}

func (g *Graph) String() string {
	return fmt.Sprintf("Graph(%d nodes, %d edges, %d types)",
		g.NumNodes(), g.NumEdges(), g.NumTypes())
}

// validNode reports whether v is a node of g.
func (g *Graph) validNode(v NodeID) bool {
	return v >= 0 && int(v) < g.NumNodes()
}
