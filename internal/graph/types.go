// Package graph implements the typed object graph substrate of the paper
// (Sect. II-A): an undirected heterogeneous graph G = (V, E) whose nodes
// carry both an intrinsic value (a name such as "Alice" or "Company X") and
// an object type drawn from a small type set T (user, school, hobby, ...).
//
// The representation is a compressed sparse row (CSR) adjacency in which each
// node's neighbor list is sorted by (type, id). This layout serves the two
// access patterns that dominate metagraph matching: enumerating the neighbors
// of a node that have a given type, and testing edge existence.
package graph

import (
	"fmt"
	"sort"
)

// TypeID identifies an object type within a Graph's type registry. The zero
// value is the first registered type; InvalidType marks "no such type".
type TypeID int32

// InvalidType is returned by lookups for unregistered type names.
const InvalidType TypeID = -1

// TypeRegistry maps between human-readable type names ("user", "school") and
// dense TypeIDs. It implements the type mapping function τ of the paper at
// the vocabulary level; the per-node mapping lives in Graph.
type TypeRegistry struct {
	names []string
	ids   map[string]TypeID
}

// NewTypeRegistry returns an empty registry.
func NewTypeRegistry() *TypeRegistry {
	return &TypeRegistry{ids: make(map[string]TypeID)}
}

// Register returns the TypeID for name, creating it if necessary.
func (r *TypeRegistry) Register(name string) TypeID {
	if id, ok := r.ids[name]; ok {
		return id
	}
	id := TypeID(len(r.names))
	r.names = append(r.names, name)
	r.ids[name] = id
	return id
}

// ID returns the TypeID for name, or InvalidType if name was never
// registered.
func (r *TypeRegistry) ID(name string) TypeID {
	if id, ok := r.ids[name]; ok {
		return id
	}
	return InvalidType
}

// Name returns the name of id. It panics if id is out of range, which
// indicates a programming error rather than bad input.
func (r *TypeRegistry) Name(id TypeID) string {
	return r.names[id]
}

// Len returns the number of registered types.
func (r *TypeRegistry) Len() int { return len(r.names) }

// Names returns the registered type names in TypeID order. The slice is a
// copy and may be retained by the caller.
func (r *TypeRegistry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// SortedNames returns the registered names in lexicographic order,
// independent of registration order. Useful for stable reports.
func (r *TypeRegistry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the registry.
func (r *TypeRegistry) Clone() *TypeRegistry {
	c := NewTypeRegistry()
	for _, n := range r.names {
		c.Register(n)
	}
	return c
}

func (r *TypeRegistry) String() string {
	return fmt.Sprintf("TypeRegistry(%d types: %v)", len(r.names), r.names)
}
