package graph

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for Delta. The write-ahead log (internal/wal) and the
// replication stream (internal/replica) both carry deltas as opaque byte
// payloads, so the encoding is compact (varints, length-prefixed strings)
// and self-delimiting, and the decoder is hardened against arbitrary
// bytes: it returns an error — never panics, never over-allocates — on any
// input it did not produce (fuzzed by FuzzDeltaDecode).
//
// Layout (all integers unsigned varints):
//
//	numNodes
//	  per node: len(Type) Type-bytes len(Value) Value-bytes
//	numEdges
//	  per edge: uint32(U) uint32(V)
//
// Node ids are encoded through uint32 so the full int32 range —
// including InvalidNode in malformed deltas — round-trips; Apply remains
// the layer that rejects out-of-range endpoints.

// maxDeltaString bounds one encoded type or value string; longer strings
// indicate a corrupt stream, not a plausible delta.
const maxDeltaString = 1 << 20

// AppendDelta appends the binary encoding of d to buf and returns the
// extended slice.
func AppendDelta(buf []byte, d Delta) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.Nodes)))
	for _, n := range d.Nodes {
		buf = binary.AppendUvarint(buf, uint64(len(n.Type)))
		buf = append(buf, n.Type...)
		buf = binary.AppendUvarint(buf, uint64(len(n.Value)))
		buf = append(buf, n.Value...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Edges)))
	for _, e := range d.Edges {
		buf = binary.AppendUvarint(buf, uint64(uint32(e.U)))
		buf = binary.AppendUvarint(buf, uint64(uint32(e.V)))
	}
	return buf
}

// EncodeDelta returns the binary encoding of d.
func EncodeDelta(d Delta) []byte { return AppendDelta(nil, d) }

// ValidateDelta reports whether d would survive an encode/decode round
// trip, without paying for one. The encoder accepts any Delta, but the
// decoder enforces bounds on what it reads back; a durable consumer (the
// WAL) must reject up front anything replay would refuse. Kept in sync
// with the decoder: the per-string cap is its only constraint an honest
// encoding can violate — counts are real slice lengths and node ids
// round-trip through uint32 by construction.
func ValidateDelta(d Delta) error {
	for i, n := range d.Nodes {
		if len(n.Type) > maxDeltaString {
			return fmt.Errorf("graph: delta node %d: type of %d bytes exceeds limit %d", i, len(n.Type), maxDeltaString)
		}
		if len(n.Value) > maxDeltaString {
			return fmt.Errorf("graph: delta node %d: value of %d bytes exceeds limit %d", i, len(n.Value), maxDeltaString)
		}
	}
	return nil
}

// DecodeDelta parses an encoding produced by EncodeDelta/AppendDelta. The
// whole input must be consumed — trailing bytes are an error, so a
// length-prefixed container can detect corrupt framing.
func DecodeDelta(b []byte) (Delta, error) {
	d, rest, err := decodeDelta(b)
	if err != nil {
		return Delta{}, err
	}
	if len(rest) != 0 {
		return Delta{}, fmt.Errorf("graph: delta decode: %d trailing bytes", len(rest))
	}
	return d, nil
}

// decodeDelta consumes one delta from the front of b.
func decodeDelta(b []byte) (Delta, []byte, error) {
	var d Delta
	numNodes, b, err := decodeCount(b, "node count", 2)
	if err != nil {
		return Delta{}, nil, err
	}
	if numNodes > 0 {
		d.Nodes = make([]DeltaNode, 0, numNodes)
	}
	for i := 0; i < numNodes; i++ {
		var typ, val string
		if typ, b, err = decodeString(b, "node type"); err != nil {
			return Delta{}, nil, err
		}
		if val, b, err = decodeString(b, "node value"); err != nil {
			return Delta{}, nil, err
		}
		d.Nodes = append(d.Nodes, DeltaNode{Type: typ, Value: val})
	}
	numEdges, b, err := decodeCount(b, "edge count", 2)
	if err != nil {
		return Delta{}, nil, err
	}
	if numEdges > 0 {
		d.Edges = make([]Edge, 0, numEdges)
	}
	for i := 0; i < numEdges; i++ {
		var u, v NodeID
		if u, b, err = decodeNodeID(b, "edge endpoint"); err != nil {
			return Delta{}, nil, err
		}
		if v, b, err = decodeNodeID(b, "edge endpoint"); err != nil {
			return Delta{}, nil, err
		}
		d.Edges = append(d.Edges, Edge{U: u, V: v})
	}
	return d, b, nil
}

// decodeCount reads an element count and rejects values that cannot fit in
// the remaining input (each element needs at least minBytes bytes), so a
// corrupt count can never drive a giant allocation.
func decodeCount(b []byte, what string, minBytes int) (int, []byte, error) {
	n, b, err := decodeUvarint(b, what)
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(b)/minBytes) {
		return 0, nil, fmt.Errorf("graph: delta decode: %s %d exceeds remaining input", what, n)
	}
	return int(n), b, nil
}

// decodeString reads one length-prefixed string.
func decodeString(b []byte, what string) (string, []byte, error) {
	n, b, err := decodeUvarint(b, what)
	if err != nil {
		return "", nil, err
	}
	if n > maxDeltaString || n > uint64(len(b)) {
		return "", nil, fmt.Errorf("graph: delta decode: %s length %d exceeds remaining input", what, n)
	}
	return string(b[:n]), b[n:], nil
}

// decodeNodeID reads one node id (encoded through uint32).
func decodeNodeID(b []byte, what string) (NodeID, []byte, error) {
	n, b, err := decodeUvarint(b, what)
	if err != nil {
		return 0, nil, err
	}
	if n > math.MaxUint32 {
		return 0, nil, fmt.Errorf("graph: delta decode: %s %d exceeds uint32", what, n)
	}
	return NodeID(int32(uint32(n))), b, nil
}

// decodeUvarint reads one varint, mapping truncation and overflow to
// errors.
func decodeUvarint(b []byte, what string) (uint64, []byte, error) {
	n, size := binary.Uvarint(b)
	if size <= 0 {
		return 0, nil, fmt.Errorf("graph: delta decode: truncated or oversized %s varint", what)
	}
	return n, b[size:], nil
}
