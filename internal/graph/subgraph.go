package graph

import "sort"

// InducedEdges returns the edges of the subgraph of g induced on nodes,
// each reported once with U < V. Duplicate input nodes are ignored.
func InducedEdges(g *Graph, nodes []NodeID) []Edge {
	set := make(map[NodeID]struct{}, len(nodes))
	for _, v := range nodes {
		set[v] = struct{}{}
	}
	var out []Edge
	for v := range set {
		for _, u := range g.Neighbors(v) {
			if v < u {
				if _, ok := set[u]; ok {
					out = append(out, Edge{v, u})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// CommonNeighborsOfType returns the nodes of type t adjacent to both u and
// v, exploiting that typed neighbor lists are sorted.
func CommonNeighborsOfType(g *Graph, u, v NodeID, t TypeID) []NodeID {
	a := g.NeighborsOfType(u, t)
	b := g.NeighborsOfType(v, t)
	var out []NodeID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
