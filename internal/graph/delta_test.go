package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// applyToy builds a small two-type graph for delta tests.
func applyToy(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	u0 := b.AddNode("user", "u0")
	u1 := b.AddNode("user", "u1")
	u2 := b.AddNode("user", "u2")
	s0 := b.AddNode("school", "s0")
	s1 := b.AddNode("school", "s1")
	b.AddEdge(u0, s0)
	b.AddEdge(u1, s0)
	b.AddEdge(u2, s1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyAddsNodesAndEdges(t *testing.T) {
	g := applyToy(t)
	ng, touched, err := g.Apply(Delta{
		Nodes: []DeltaNode{{Type: "user", Value: "u3"}},
		Edges: []Edge{{5, 3}, {0, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 3 {
		t.Fatalf("receiver mutated: %v", g)
	}
	if ng.NumNodes() != 6 || ng.NumEdges() != 5 {
		t.Fatalf("apply result: %v", ng)
	}
	if ng.Version() != 1 || g.Version() != 0 {
		t.Fatalf("versions: old %d new %d", g.Version(), ng.Version())
	}
	if want := []NodeID{0, 3, 4}; len(touched) != 3 || touched[0] != want[0] || touched[1] != want[1] || touched[2] != want[2] {
		t.Fatalf("touched = %v, want %v", touched, want)
	}
	if !ng.HasEdge(5, 3) || !ng.HasEdge(0, 4) || ng.HasEdge(5, 4) {
		t.Fatal("edge membership wrong after apply")
	}
	if ng.Name(5) != "u3" || ng.Type(5) != ng.Types().ID("user") {
		t.Fatal("new node attributes wrong")
	}
	if got := ng.NumNodesOfType(ng.Types().ID("user")); got != 4 {
		t.Fatalf("users after apply = %d, want 4", got)
	}
	// Untouched rows share the base arena.
	if ng.Overlaid() && len(ng.Neighbors(1)) == 1 && &ng.Neighbors(1)[0] != &g.Neighbors(1)[0] {
		t.Fatal("untouched row was copied instead of shared")
	}
}

func TestApplyValidation(t *testing.T) {
	g := applyToy(t)
	if _, _, err := g.Apply(Delta{Nodes: []DeltaNode{{Type: "nope", Value: "x"}}}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, _, err := g.Apply(Delta{Edges: []Edge{{0, 99}}}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestApplyIgnoresDupesAndSelfLoops(t *testing.T) {
	g := applyToy(t)
	ng, touched, err := g.Apply(Delta{Edges: []Edge{{0, 0}, {0, 3}, {3, 0}, {1, 3}, {1, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	// {0,3} and {1,3} already exist; nothing is genuinely new.
	if ng.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", ng.NumEdges(), g.NumEdges())
	}
	if len(touched) != 0 {
		t.Fatalf("touched = %v, want empty", touched)
	}
	if ng.Version() != 1 {
		t.Fatalf("version = %d, want 1 (empty deltas still advance)", ng.Version())
	}
}

// graphBytes serializes a graph for structural comparison.
func graphBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestApplyEqualsRebuild is the core copy-on-write property: a chain of
// random deltas applied to a random base graph yields — both before and
// after Compact — exactly the graph a from-scratch Build of the final
// node/edge set produces, under every accessor.
func TestApplyEqualsRebuild(t *testing.T) {
	typeNames := []string{"user", "school", "hobby"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		// Random base.
		b := NewBuilder()
		for _, n := range typeNames {
			b.Types().Register(n)
		}
		n0 := 5 + rng.Intn(10)
		for i := 0; i < n0; i++ {
			b.AddNode(typeNames[rng.Intn(len(typeNames))], "")
		}
		for i := 0; i < 2*n0; i++ {
			b.AddEdge(NodeID(rng.Intn(n0)), NodeID(rng.Intn(n0)))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		// Shadow builder accumulating the same mutations.
		sb := NewBuilder()
		for _, n := range typeNames {
			sb.Types().Register(n)
		}
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			sb.AddNode(typeNames[g.Type(v)], g.Name(v))
		}
		g.Edges(func(u, v NodeID) bool { sb.AddEdge(u, v); return true })

		for step := 0; step < 4; step++ {
			var d Delta
			for i := rng.Intn(3); i > 0; i-- {
				d.Nodes = append(d.Nodes, DeltaNode{Type: typeNames[rng.Intn(len(typeNames))], Value: ""})
			}
			max := g.NumNodes() + len(d.Nodes)
			for i := 1 + rng.Intn(5); i > 0; i-- {
				d.Edges = append(d.Edges, Edge{NodeID(rng.Intn(max)), NodeID(rng.Intn(max))})
			}
			ng, _, err := g.Apply(d)
			if err != nil {
				t.Fatal(err)
			}
			g = ng
			for _, dn := range d.Nodes {
				sb.AddNode(dn.Type, dn.Value)
			}
			for _, e := range d.Edges {
				sb.AddEdge(e.U, e.V)
			}
		}

		want, err := sb.Build()
		if err != nil {
			t.Fatal(err)
		}
		for name, got := range map[string]*Graph{"overlaid": g, "compacted": g.Compact()} {
			if !bytes.Equal(graphBytes(t, got), graphBytes(t, want)) {
				t.Fatalf("trial %d: %s graph differs from rebuild", trial, name)
			}
			if got.NumEdges() != want.NumEdges() {
				t.Fatalf("trial %d: %s edges %d want %d", trial, name, got.NumEdges(), want.NumEdges())
			}
			for v := NodeID(0); int(v) < want.NumNodes(); v++ {
				if got.Degree(v) != want.Degree(v) {
					t.Fatalf("trial %d: %s degree(%d)", trial, name, v)
				}
				for ty := TypeID(0); int(ty) < want.NumTypes(); ty++ {
					a, bz := got.NeighborsOfType(v, ty), want.NeighborsOfType(v, ty)
					if len(a) != len(bz) {
						t.Fatalf("trial %d: %s typed row (%d,%d)", trial, name, v, ty)
					}
					for i := range a {
						if a[i] != bz[i] {
							t.Fatalf("trial %d: %s typed row (%d,%d)[%d]", trial, name, v, ty, i)
						}
					}
				}
			}
		}
		if g.Compact().Version() != g.Version() {
			t.Fatal("compact changed the version")
		}
	}
}

func TestHopDistances(t *testing.T) {
	g := applyToy(t) // u0-s0, u1-s0, u2-s1
	dist := g.HopDistances([]NodeID{0}, 2)
	want := map[NodeID]int32{0: 0, 3: 1, 1: 2}
	if len(dist) != len(want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
	for v, d := range want {
		if dist[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
	if d := g.HopDistances([]NodeID{0, 2}, 0); len(d) != 2 {
		t.Fatalf("radius 0 = %v", d)
	}
}

func TestInduced(t *testing.T) {
	g := applyToy(t)
	sub, toFull := Induced(g, []NodeID{3, 0, 1, 3})
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub = %v", sub)
	}
	if len(toFull) != 3 || toFull[0] != 0 || toFull[1] != 1 || toFull[2] != 3 {
		t.Fatalf("toFull = %v", toFull)
	}
	if sub.Types().ID("school") != g.Types().ID("school") {
		t.Fatal("type ids not preserved")
	}
	if !sub.HasEdge(0, 2) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 1) {
		t.Fatal("induced edges wrong")
	}
}

func TestWithVersion(t *testing.T) {
	g := applyToy(t)
	if got := g.WithVersion(9); got.Version() != 9 || g.Version() != 0 {
		t.Fatal("WithVersion wrong")
	}
}

// TestRoundTripPreservesTypeIDs is the regression test for a subtle
// serialization bug: without T lines the reader registered types in node
// order, silently permuting TypeIDs for graphs whose builder registered
// types up front — queries (pure index reads) still worked, but anything
// matching typed patterns against a round-tripped graph matched the
// wrong types.
func TestRoundTripPreservesTypeIDs(t *testing.T) {
	b := NewBuilder()
	// Registration order deliberately differs from node order.
	for _, n := range []string{"user", "school", "hobby", "ghost"} {
		b.Types().Register(n)
	}
	s := b.AddNode("school", "s0") // first NODE is a school
	u := b.AddNode("user", "u0")
	b.AddEdge(u, s)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"user", "school", "hobby", "ghost"} {
		if g2.Types().ID(name) != g.Types().ID(name) {
			t.Fatalf("type %q: id %d after round-trip, want %d", name, g2.Types().ID(name), g.Types().ID(name))
		}
	}
	if g2.NumTypes() != g.NumTypes() {
		t.Fatalf("types = %d, want %d (never-used types must survive)", g2.NumTypes(), g.NumTypes())
	}
}
