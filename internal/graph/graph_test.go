package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// buildToy constructs the toy social network of Fig. 1(a) in the paper:
// five users interconnected through shared attribute nodes.
func buildToy(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder()
	alice := b.AddNodeOnce("user", "Alice")
	bob := b.AddNodeOnce("user", "Bob")
	kate := b.AddNodeOnce("user", "Kate")
	jay := b.AddNodeOnce("user", "Jay")
	tom := b.AddNodeOnce("user", "Tom")

	clinton := b.AddNodeOnce("surname", "Clinton")
	green := b.AddNodeOnce("address", "123 Green St")
	white := b.AddNodeOnce("address", "456 White St")
	collegeA := b.AddNodeOnce("school", "College A")
	collegeB := b.AddNodeOnce("school", "College B")
	econ := b.AddNodeOnce("major", "Economics")
	physics := b.AddNodeOnce("major", "Physics")
	companyX := b.AddNodeOnce("employer", "Company X")
	music := b.AddNodeOnce("hobby", "Music")

	for _, e := range [][2]NodeID{
		{alice, clinton}, {bob, clinton},
		{alice, green}, {bob, green},
		{kate, white}, {jay, white},
		{bob, collegeA}, {tom, collegeA},
		{kate, collegeB}, {jay, collegeB},
		{bob, econ}, {tom, econ},
		{kate, physics}, {jay, physics},
		{alice, companyX}, {kate, companyX},
		{alice, music}, {kate, music},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := buildToy(t)
	if g.NumNodes() != 14 {
		t.Fatalf("NumNodes = %d, want 14", g.NumNodes())
	}
	if g.NumEdges() != 18 {
		t.Fatalf("NumEdges = %d, want 18", g.NumEdges())
	}
	if g.NumTypes() != 7 {
		t.Fatalf("NumTypes = %d, want 7", g.NumTypes())
	}
	user := g.Types().ID("user")
	if user == InvalidType {
		t.Fatal("user type missing")
	}
	if n := g.NumNodesOfType(user); n != 5 {
		t.Fatalf("users = %d, want 5", n)
	}
}

func TestAddNodeOnceDeduplicates(t *testing.T) {
	b := NewBuilder()
	a := b.AddNodeOnce("user", "Alice")
	a2 := b.AddNodeOnce("user", "Alice")
	if a != a2 {
		t.Fatalf("AddNodeOnce returned %d then %d for the same key", a, a2)
	}
	// Same value under a different type is a different node.
	c := b.AddNodeOnce("surname", "Alice")
	if c == a {
		t.Fatal("AddNodeOnce merged nodes across types")
	}
}

func TestBuildDedupsEdgesAndSelfLoops(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("user", "u")
	v := b.AddNode("user", "v")
	b.AddEdge(u, v)
	b.AddEdge(v, u)
	b.AddEdge(u, v)
	b.AddEdge(u, u)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if g.HasEdge(u, u) {
		t.Fatal("self loop survived Build")
	}
}

func TestBuildRejectsBadEdge(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("user", "u")
	b.AddEdge(u, 99)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted an edge to a missing node")
	}
}

func TestHasEdge(t *testing.T) {
	g := buildToy(t)
	alice := g.NodeByName("Alice")
	bob := g.NodeByName("Bob")
	clinton := g.NodeByName("Clinton")
	if !g.HasEdge(alice, clinton) || !g.HasEdge(clinton, alice) {
		t.Fatal("HasEdge(Alice, Clinton) = false, want true")
	}
	if g.HasEdge(alice, bob) {
		t.Fatal("HasEdge(Alice, Bob) = true, want false (users are linked via attributes only)")
	}
}

func TestNeighborsSortedByTypeThenID(t *testing.T) {
	g := buildToy(t)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			ti, tj := g.Type(nb[i-1]), g.Type(nb[i])
			if ti > tj || (ti == tj && nb[i-1] >= nb[i]) {
				t.Fatalf("node %d neighbors not sorted by (type,id): %v", v, nb)
			}
		}
	}
}

func TestNeighborsOfTypeMatchesFilter(t *testing.T) {
	g := buildToy(t)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for tt := TypeID(0); int(tt) < g.NumTypes(); tt++ {
			var want []NodeID
			for _, u := range g.Neighbors(v) {
				if g.Type(u) == tt {
					want = append(want, u)
				}
			}
			got := g.NeighborsOfType(v, tt)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(append([]NodeID(nil), got...), want) {
				t.Fatalf("NeighborsOfType(%d,%d) = %v, want %v", v, tt, got, want)
			}
			if g.DegreeOfType(v, tt) != len(want) {
				t.Fatalf("DegreeOfType(%d,%d) = %d, want %d", v, tt, g.DegreeOfType(v, tt), len(want))
			}
		}
	}
}

func TestEdgesIteratesEachOnce(t *testing.T) {
	g := buildToy(t)
	seen := make(map[[2]NodeID]int)
	g.Edges(func(u, v NodeID) bool {
		if u >= v {
			t.Fatalf("Edges yielded unordered pair (%d,%d)", u, v)
		}
		seen[[2]NodeID{u, v}]++
		return true
	})
	if len(seen) != g.NumEdges() {
		t.Fatalf("Edges yielded %d pairs, want %d", len(seen), g.NumEdges())
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("edge %v yielded %d times", k, c)
		}
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := buildToy(t)
	n := 0
	g.Edges(func(u, v NodeID) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop after %d edges, want 3", n)
	}
}

func TestRoundTripIO(t *testing.T) {
	g := buildToy(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() || g2.NumTypes() != g.NumTypes() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.Name(v) != g2.Name(v) {
			t.Fatalf("node %d name %q != %q", v, g.Name(v), g2.Name(v))
		}
		if g.Types().Name(g.Type(v)) != g2.Types().Name(g2.Type(v)) {
			t.Fatalf("node %d type mismatch", v)
		}
	}
	g.Edges(func(u, v NodeID) bool {
		if !g2.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) lost in round trip", u, v)
		}
		return true
	})
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"X 1 2\n",
		"E 1\n",
		"E a b\n",
		"N\n",
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("Read(%q) succeeded, want error", c)
		}
	}
}

func TestReadValueWithSpaces(t *testing.T) {
	src := "N address 123 Green St\nN user Alice\nE 0 1\n"
	g, err := Read(bytes.NewBufferString(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.Name(0) != "123 Green St" {
		t.Fatalf("value = %q, want %q", g.Name(0), "123 Green St")
	}
}

func TestStats(t *testing.T) {
	g := buildToy(t)
	s := ComputeStats(g)
	if s.Nodes != 14 || s.Edges != 18 || s.Types != 7 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ByType["user"] != 5 {
		t.Fatalf("users = %d, want 5", s.ByType["user"])
	}
	if s.AvgDegree <= 0 || s.MaxDegree <= 0 {
		t.Fatalf("degenerate degree stats: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty Stats.String")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := buildToy(t)
	count, comp := ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("toy graph components = %d, want 1", count)
	}
	b := NewBuilder()
	b.AddNode("user", "lonely")
	u := b.AddNode("user", "a")
	v := b.AddNode("user", "b")
	b.AddEdge(u, v)
	g2 := b.MustBuild()
	count2, comp2 := ConnectedComponents(g2)
	if count2 != 2 {
		t.Fatalf("components = %d, want 2", count2)
	}
	if comp2[u] != comp2[v] || comp2[0] == comp2[u] {
		t.Fatalf("bad component assignment %v", comp2)
	}
	_ = comp
}

func TestInducedEdges(t *testing.T) {
	g := buildToy(t)
	alice := g.NodeByName("Alice")
	bob := g.NodeByName("Bob")
	clinton := g.NodeByName("Clinton")
	edges := InducedEdges(g, []NodeID{alice, bob, clinton})
	if len(edges) != 2 {
		t.Fatalf("induced edges = %v, want 2 edges", edges)
	}
	for _, e := range edges {
		if e.V != clinton && e.U != clinton {
			t.Fatalf("unexpected induced edge %v", e)
		}
	}
	// Duplicated input nodes must not duplicate edges.
	edges2 := InducedEdges(g, []NodeID{alice, alice, bob, clinton})
	if len(edges2) != 2 {
		t.Fatalf("duplicate nodes changed induced edges: %v", edges2)
	}
}

func TestCommonNeighborsOfType(t *testing.T) {
	g := buildToy(t)
	alice := g.NodeByName("Alice")
	kate := g.NodeByName("Kate")
	hobby := g.Types().ID("hobby")
	employer := g.Types().ID("employer")
	school := g.Types().ID("school")
	if got := CommonNeighborsOfType(g, alice, kate, hobby); len(got) != 1 {
		t.Fatalf("common hobbies = %v, want 1", got)
	}
	if got := CommonNeighborsOfType(g, alice, kate, employer); len(got) != 1 {
		t.Fatalf("common employers = %v, want 1", got)
	}
	if got := CommonNeighborsOfType(g, alice, kate, school); len(got) != 0 {
		t.Fatalf("common schools = %v, want none", got)
	}
}

// randomGraph builds a random typed graph for property tests.
func randomGraph(rng *rand.Rand, nodes, edges, types int) *Graph {
	b := NewBuilder()
	typeNames := make([]string, types)
	for i := range typeNames {
		typeNames[i] = string(rune('a' + i))
	}
	for i := 0; i < nodes; i++ {
		b.AddNode(typeNames[rng.Intn(types)], "")
	}
	for i := 0; i < edges; i++ {
		b.AddEdge(NodeID(rng.Intn(nodes)), NodeID(rng.Intn(nodes)))
	}
	return b.MustBuild()
}

// Property: adjacency is symmetric and HasEdge agrees with Neighbors.
func TestQuickAdjacencySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(30), rng.Intn(60), 1+rng.Intn(5))
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			for _, u := range g.Neighbors(v) {
				if !g.HasEdge(u, v) || !g.HasEdge(v, u) {
					return false
				}
				found := false
				for _, w := range g.Neighbors(u) {
					if w == v {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: degree sums to twice the edge count.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(40), rng.Intn(80), 1+rng.Intn(6))
		sum := 0
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: NodesOfType partitions V.
func TestQuickNodesOfTypePartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(40), rng.Intn(80), 1+rng.Intn(6))
		var all []NodeID
		for tt := TypeID(0); int(tt) < g.NumTypes(); tt++ {
			for _, v := range g.NodesOfType(tt) {
				if g.Type(v) != tt {
					return false
				}
				all = append(all, v)
			}
		}
		if len(all) != g.NumNodes() {
			return false
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i, v := range all {
			if NodeID(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeRegistry(t *testing.T) {
	r := NewTypeRegistry()
	u := r.Register("user")
	if r.Register("user") != u {
		t.Fatal("Register not idempotent")
	}
	s := r.Register("school")
	if u == s {
		t.Fatal("distinct types share an id")
	}
	if r.ID("missing") != InvalidType {
		t.Fatal("ID of missing type should be InvalidType")
	}
	if r.Name(u) != "user" {
		t.Fatalf("Name = %q", r.Name(u))
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	c := r.Clone()
	if c.ID("user") != u || c.ID("school") != s {
		t.Fatal("Clone lost ids")
	}
	c.Register("extra")
	if r.Len() != 2 {
		t.Fatal("Clone shares state with original")
	}
	want := []string{"school", "user"}
	if got := r.SortedNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedNames = %v, want %v", got, want)
	}
}

func TestGraphValidNode(t *testing.T) {
	g := buildToy(t)
	if !g.validNode(0) || g.validNode(-1) || g.validNode(NodeID(g.NumNodes())) {
		t.Fatal("validNode misbehaves")
	}
}
