package graph

import (
	"fmt"
	"sort"
)

// Live mutations. A Graph stays immutable — applying a Delta never touches
// the receiver; it produces a NEW graph value one version later that shares
// every untouched adjacency row with its parent (copy-on-write). Rows whose
// neighbor list changed, plus all freshly added nodes, live in a small
// per-version overlay consulted before the flat CSR arrays; Compact folds
// the overlay back into fresh flat arrays identical to what Builder.Build
// would have produced on the final node/edge set.
//
// Deltas are additive: nodes and edges can be added, never removed. That
// matches the serving scenario (the object graph only grows while queries
// are in flight) and is what makes incremental index maintenance exact —
// existing metagraph instances are never destroyed, so per-key counts only
// need recomputing inside the neighborhood a delta touched.

// DeltaNode declares one node addition: a type name (which must already be
// registered in the graph — a delta cannot invent types) and an intrinsic
// value.
type DeltaNode struct {
	Type  string
	Value string
}

// Delta is a batch of node and edge additions. New nodes receive the ids
// n, n+1, ... (n = NumNodes of the graph the delta is applied to) in slice
// order, and Edges may reference both existing and new ids. Self loops and
// edges already present are ignored, exactly as Builder.Build ignores them.
type Delta struct {
	Nodes []DeltaNode
	Edges []Edge
}

// Empty reports whether the delta adds nothing.
func (d *Delta) Empty() bool { return len(d.Nodes) == 0 && len(d.Edges) == 0 }

// ovlRow is the copy-on-write adjacency row of one touched or new node:
// the same (type, id)-sorted neighbor list and typed sub-range table the
// flat CSR keeps, just owned by a single version.
type ovlRow struct {
	nbr     []NodeID
	typeOff []int32 // len numTypes+1; nbr[typeOff[t]:typeOff[t+1]] has type t
}

// Version returns the graph's version counter: 0 for a freshly built
// graph, parent+1 for every Apply. Snapshots restore it via WithVersion.
func (g *Graph) Version() uint64 { return g.version }

// WithVersion returns a shallow copy of g carrying the given version. All
// storage is shared; use it to re-anchor the counter of a graph
// deserialized from a format that does not carry one.
func (g *Graph) WithVersion(v uint64) *Graph {
	ng := *g
	ng.version = v
	return &ng
}

// Overlaid reports whether g carries copy-on-write rows that Compact would
// fold into flat CSR storage.
func (g *Graph) Overlaid() bool { return g.ovl != nil }

// ValidateApply reports whether d would be accepted by Apply on a graph
// holding numNodes nodes under the given type registry — exactly Apply's
// rejection conditions (unknown type name, out-of-range edge endpoint),
// factored out as THE definition of delta acceptability. Apply itself
// validates through it, and replication uses it to predict a logged
// record's acceptance at the record's own position in a coalesced batch:
// a record the primary rejected must fail on followers too, and sharing
// the predicate makes that structural — a future extra rejection
// condition added here is automatically enforced on both sides.
func ValidateApply(types *TypeRegistry, numNodes int, d Delta) error {
	newN := numNodes + len(d.Nodes)
	for i, n := range d.Nodes {
		if types.ID(n.Type) == InvalidType {
			return fmt.Errorf("graph: delta node %d has unknown type %q", i, n.Type)
		}
	}
	for _, e := range d.Edges {
		if e.U < 0 || int(e.U) >= newN || e.V < 0 || int(e.V) >= newN {
			return fmt.Errorf("graph: delta edge (%d,%d) references missing node (have %d)", e.U, e.V, newN)
		}
	}
	return nil
}

// Apply returns a new graph one version later with the delta's nodes and
// edges added, plus the sorted set of existing-row nodes whose adjacency
// actually changed (endpoints of genuinely new edges — the seeds for
// incremental re-matching). The receiver is not modified and all untouched
// adjacency storage is shared.
//
// Apply fails if a node names an unregistered type or an edge endpoint is
// out of range (see ValidateApply); on failure the receiver is unchanged
// and no partial state escapes.
func (g *Graph) Apply(d Delta) (*Graph, []NodeID, error) {
	oldN := g.NumNodes()
	newN := oldN + len(d.Nodes)
	if err := ValidateApply(g.types, oldN, d); err != nil {
		return nil, nil, err
	}
	newTypes := make([]TypeID, 0, len(d.Nodes))
	for _, n := range d.Nodes {
		newTypes = append(newTypes, g.types.ID(n.Type))
	}

	// Keep only genuinely new edges: no self loops, no duplicates within
	// the delta, nothing already present — the same normalization
	// Builder.Build applies, so an incrementally grown graph compacts to
	// exactly the graph a from-scratch build of the final edge set yields.
	seen := make(map[[2]NodeID]struct{}, len(d.Edges))
	added := make([]Edge, 0, len(d.Edges))
	for _, e := range d.Edges {
		u, v := e.U, e.V
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]NodeID{u, v}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if int(v) < oldN && g.HasEdge(u, v) {
			continue
		}
		added = append(added, Edge{u, v})
	}

	ng := &Graph{
		types:    g.types,
		nodeType: g.nodeType,
		nodeName: g.nodeName,
		off:      g.off,
		nbr:      g.nbr,
		typeOff:  g.typeOff,
		byType:   g.byType,
		numEdges: g.numEdges + len(added),
		version:  g.version + 1,
		ovl:      g.ovl, // replaced below unless the delta is a no-op
	}
	if len(d.Nodes) > 0 {
		ng.nodeType = append(append(make([]TypeID, 0, newN), g.nodeType...), newTypes...)
		names := append(make([]string, 0, newN), g.nodeName...)
		for _, n := range d.Nodes {
			names = append(names, n.Value)
		}
		ng.nodeName = names
		// byType rows gaining nodes are copied ONCE, pre-sized for every
		// addition; the rest stay shared. New ids exceed all old ids, so
		// appending keeps rows ascending.
		gain := make(map[TypeID]int, len(newTypes))
		for _, t := range newTypes {
			gain[t]++
		}
		ng.byType = append([][]NodeID(nil), g.byType...)
		for t, n := range gain {
			row := make([]NodeID, len(g.byType[t]), len(g.byType[t])+n)
			copy(row, g.byType[t])
			ng.byType[t] = row
		}
		for i, t := range newTypes {
			ng.byType[t] = append(ng.byType[t], NodeID(oldN+i))
		}
	}

	// Collect the new neighbors of every touched row. A delta that turned
	// out to be a complete no-op (every edge already present) keeps the
	// parent's overlay as is — no fresh copy-on-write state, nothing new
	// to compact.
	extra := make(map[NodeID][]NodeID, 2*len(added))
	for _, e := range added {
		extra[e.U] = append(extra[e.U], e.V)
		extra[e.V] = append(extra[e.V], e.U)
	}
	if len(extra) == 0 && len(d.Nodes) == 0 {
		return ng, nil, nil
	}
	touched := make([]NodeID, 0, len(extra))
	ng.ovl = make(map[NodeID]*ovlRow, len(extra)+len(d.Nodes))
	// Share untouched overlay rows of an already-overlaid parent.
	for v, r := range g.ovl {
		ng.ovl[v] = r
	}
	for i := 0; i < len(d.Nodes); i++ {
		v := NodeID(oldN + i)
		if _, ok := extra[v]; !ok {
			ng.ovl[v] = ng.newRow(nil)
		}
	}
	for v, more := range extra {
		row := append(append([]NodeID(nil), g.rowNeighbors(v)...), more...)
		ng.ovl[v] = ng.newRow(row)
		if int(v) < oldN {
			touched = append(touched, v)
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	return ng, touched, nil
}

// rowNeighbors returns v's current neighbor list, tolerating ids beyond
// the flat arrays (new nodes of a parent overlay) — unlike Neighbors it
// must not index off for them.
func (g *Graph) rowNeighbors(v NodeID) []NodeID {
	if g.ovl != nil {
		if r := g.ovl[v]; r != nil {
			return r.nbr
		}
	}
	if int(v) >= len(g.off)-1 {
		return nil
	}
	return g.nbr[g.off[v]:g.off[v+1]]
}

// newRow freezes one overlay row: neighbors sorted by (type, id) with the
// typed sub-range table rebuilt, mirroring Builder.Build's row layout.
func (g *Graph) newRow(nbrs []NodeID) *ovlRow {
	nt := g.types.Len()
	sort.Slice(nbrs, func(i, j int) bool {
		ti, tj := g.nodeType[nbrs[i]], g.nodeType[nbrs[j]]
		if ti != tj {
			return ti < tj
		}
		return nbrs[i] < nbrs[j]
	})
	to := make([]int32, nt+1)
	idx := 0
	for t := 0; t < nt; t++ {
		to[t] = int32(idx)
		for idx < len(nbrs) && g.nodeType[nbrs[idx]] == TypeID(t) {
			idx++
		}
	}
	to[nt] = int32(idx)
	return &ovlRow{nbr: nbrs, typeOff: to}
}

// Compact folds the copy-on-write overlay into fresh flat CSR arrays and
// returns the result (the receiver itself when it has no overlay). The
// compacted graph is structurally identical to a from-scratch Build of the
// same node and edge set, and keeps the receiver's version.
func (g *Graph) Compact() *Graph {
	if g.ovl == nil {
		return g
	}
	n := g.NumNodes()
	nt := g.types.Len()
	ng := &Graph{
		types:    g.types,
		nodeType: g.nodeType,
		nodeName: g.nodeName,
		byType:   g.byType,
		numEdges: g.numEdges,
		version:  g.version,
	}
	ng.off = make([]int64, n+1)
	for v := 0; v < n; v++ {
		ng.off[v+1] = ng.off[v] + int64(g.Degree(NodeID(v)))
	}
	ng.nbr = make([]NodeID, ng.off[n])
	ng.typeOff = make([]int32, int64(n)*int64(nt+1))
	for v := 0; v < n; v++ {
		copy(ng.nbr[ng.off[v]:ng.off[v+1]], g.Neighbors(NodeID(v)))
		base := int64(v) * int64(nt+1)
		if r := g.ovl[NodeID(v)]; r != nil {
			copy(ng.typeOff[base:base+int64(nt)+1], r.typeOff)
		} else {
			k := int64(v) * int64(nt+1)
			copy(ng.typeOff[base:base+int64(nt)+1], g.typeOff[k:k+int64(nt)+1])
		}
	}
	return ng
}

// HopDistances runs a multi-source BFS from seeds and returns the hop
// distance of every node within max hops (seeds themselves at distance 0).
// Out-of-range seeds are ignored.
func (g *Graph) HopDistances(seeds []NodeID, max int) map[NodeID]int32 {
	dist := make(map[NodeID]int32, len(seeds))
	frontier := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if !g.validNode(s) {
			continue
		}
		if _, ok := dist[s]; !ok {
			dist[s] = 0
			frontier = append(frontier, s)
		}
	}
	for d := int32(1); int(d) <= max && len(frontier) > 0; d++ {
		var next []NodeID
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if _, ok := dist[u]; !ok {
					dist[u] = d
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Induced builds the node-induced subgraph of g on nodes (duplicates
// ignored) as a standalone flat graph whose type registry assigns the SAME
// TypeIDs as g, plus the mapping from subgraph id to original id (ascending
// in the original ids). Matching a metagraph on the subgraph therefore uses
// the exact type vocabulary of the full graph.
func Induced(g *Graph, nodes []NodeID) (*Graph, []NodeID) {
	toFull := append([]NodeID(nil), nodes...)
	sort.Slice(toFull, func(i, j int) bool { return toFull[i] < toFull[j] })
	uniq := toFull[:0]
	for i, v := range toFull {
		if i == 0 || v != toFull[i-1] {
			uniq = append(uniq, v)
		}
	}
	toFull = uniq

	b := NewBuilder()
	for _, name := range g.types.Names() {
		b.Types().Register(name)
	}
	toSub := make(map[NodeID]NodeID, len(toFull))
	for i, v := range toFull {
		toSub[v] = NodeID(i)
		b.AddNode(g.types.Name(g.Type(v)), g.Name(v))
	}
	for _, v := range toFull {
		for _, u := range g.Neighbors(v) {
			if v < u {
				if su, ok := toSub[u]; ok {
					b.AddEdge(toSub[v], su)
				}
			}
		}
	}
	return b.MustBuild(), toFull
}
