package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a typed object graph; it backs the dataset-description
// rows of Table II.
type Stats struct {
	Nodes     int
	Edges     int
	Types     int
	ByType    map[string]int // node count per type name
	MaxDegree int
	AvgDegree float64
}

// ComputeStats returns summary statistics for g.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Nodes:  g.NumNodes(),
		Edges:  g.NumEdges(),
		Types:  g.NumTypes(),
		ByType: make(map[string]int, g.NumTypes()),
	}
	for t := TypeID(0); int(t) < g.NumTypes(); t++ {
		s.ByType[g.types.Name(t)] = g.NumNodesOfType(t)
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if d := g.Degree(v); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if s.Nodes > 0 {
		s.AvgDegree = 2 * float64(s.Edges) / float64(s.Nodes)
	}
	return s
}

func (s Stats) String() string {
	names := make([]string, 0, len(s.ByType))
	for n := range s.ByType {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes, %d edges, %d types (avg deg %.2f, max deg %d)",
		s.Nodes, s.Edges, s.Types, s.AvgDegree, s.MaxDegree)
	for _, n := range names {
		fmt.Fprintf(&b, "; %s=%d", n, s.ByType[n])
	}
	return b.String()
}

// ConnectedComponents returns the number of connected components and a
// component id per node. Isolated nodes each form their own component.
func ConnectedComponents(g *Graph) (count int, comp []int) {
	n := g.NumNodes()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []NodeID
	for s := NodeID(0); int(s) < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] == -1 {
					comp[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return count, comp
}
