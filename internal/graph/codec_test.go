package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomDelta builds an arbitrary (not necessarily applicable) delta; the
// codec must round-trip any Delta value, validity is Apply's job.
func randomDelta(rng *rand.Rand) Delta {
	var d Delta
	for i := rng.Intn(5); i > 0; i-- {
		d.Nodes = append(d.Nodes, DeltaNode{
			Type:  []string{"user", "school", "", "hobby with spaces", "\x00\xff"}[rng.Intn(5)],
			Value: []string{"", "Alice", "node-42", "名前", "a\nb"}[rng.Intn(5)],
		})
	}
	for i := rng.Intn(8); i > 0; i-- {
		d.Edges = append(d.Edges, Edge{
			U: NodeID(rng.Int31()) - NodeID(rng.Intn(2)), // occasionally negative
			V: NodeID(rng.Int31n(1000)),
		})
	}
	return d
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		want := randomDelta(rng)
		got, err := DecodeDelta(EncodeDelta(want))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		// Encode/Decode normalizes nil vs empty slices only when both are
		// empty, which Empty() treats identically.
		if len(want.Nodes) == 0 && len(got.Nodes) == 0 && len(want.Edges) == 0 && len(got.Edges) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// TestValidateDeltaMatchesRoundTrip: ValidateDelta's verdict must agree
// with an actual encode/decode round trip — it is the WAL's cheap stand-in
// for one on the durable write path.
func TestValidateDeltaMatchesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	check := func(d Delta) {
		t.Helper()
		_, derr := DecodeDelta(EncodeDelta(d))
		verr := ValidateDelta(d)
		if (derr == nil) != (verr == nil) {
			t.Fatalf("ValidateDelta (%v) disagrees with round trip (%v) on %+v", verr, derr, d)
		}
	}
	for trial := 0; trial < 100; trial++ {
		check(randomDelta(rng))
	}
	big := string(make([]byte, maxDeltaString+1))
	check(Delta{Nodes: []DeltaNode{{Type: big, Value: "x"}}})
	check(Delta{Nodes: []DeltaNode{{Type: "user", Value: big}}})
	check(Delta{Nodes: []DeltaNode{{Type: "user", Value: string(make([]byte, maxDeltaString))}}})
}

func TestDeltaCodecEmpty(t *testing.T) {
	b := EncodeDelta(Delta{})
	if len(b) != 2 {
		t.Fatalf("empty delta encodes to %d bytes, want 2", len(b))
	}
	d, err := DecodeDelta(b)
	if err != nil || !d.Empty() {
		t.Fatalf("empty round trip: %+v, %v", d, err)
	}
}

func TestDeltaCodecRejectsCorruptInput(t *testing.T) {
	valid := EncodeDelta(Delta{
		Nodes: []DeltaNode{{Type: "user", Value: "Zoe"}},
		Edges: []Edge{{U: 1, V: 2}},
	})
	// Every strict prefix is truncated and must error.
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeDelta(valid[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", i, len(valid))
		}
	}
	// Trailing garbage must error.
	if _, err := DecodeDelta(append(append([]byte(nil), valid...), 0x01)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A count far beyond the input must error, not allocate.
	if _, err := DecodeDelta([]byte{0xff, 0xff, 0xff, 0xff, 0x07}); err == nil {
		t.Fatal("giant node count accepted")
	}
}

// FuzzDeltaDecode is the satellite guarantee: DecodeDelta never panics on
// arbitrary bytes, and any delta it does accept re-encodes and re-decodes
// to the same value.
func FuzzDeltaDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeDelta(Delta{}))
	f.Add(EncodeDelta(Delta{
		Nodes: []DeltaNode{{Type: "user", Value: "Zoe"}, {Type: "school", Value: "College Z"}},
		Edges: []Edge{{U: 0, V: 7}, {U: -1, V: 1 << 30}},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeDelta(b)
		if err != nil {
			return
		}
		again, err := DecodeDelta(EncodeDelta(d))
		if err != nil {
			t.Fatalf("re-decode of accepted delta failed: %v", err)
		}
		if !reflect.DeepEqual(again, d) {
			t.Fatalf("re-decode drifted:\n got %+v\nwant %+v", again, d)
		}
	})
}
