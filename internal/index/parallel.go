package index

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/match"
	"repro/internal/metagraph"
)

// Parallel offline indexing. Metagraph matching dominates the offline
// phase (Table III) and is embarrassingly parallel across metagraphs: each
// metagraph's instances land in its own single-metagraph part index, and
// parts merge deterministically by metagraph offset regardless of which
// worker finished first. Matchers carry per-Match scratch plus
// construction-time statistics, so every worker owns a private matcher
// built by the newMatcher factory.

// Workers normalizes a worker-count option: values < 1 mean "one worker
// per available CPU" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// MatchParts matches every metagraph of ms into its own single-metagraph
// index using the given number of workers (Workers-normalized). newMatcher
// is invoked once per worker. The returned parts and wall-clock durations
// are aligned with ms; Merge(parts...) reproduces the serial build exactly.
func MatchParts(ms []*metagraph.Metagraph, newMatcher func() match.Matcher, workers int) ([]*Index, []time.Duration) {
	if len(ms) == 0 {
		return nil, nil
	}
	parts := make([]*Index, len(ms))
	times := make([]time.Duration, len(ms))
	workers = Workers(workers)
	if workers > len(ms) {
		workers = len(ms)
	}
	if workers <= 1 {
		matcher := newMatcher()
		for i, m := range ms {
			t0 := time.Now()
			parts[i] = matchOne(m, matcher)
			times[i] = time.Since(t0)
		}
		return parts, times
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		matcher := newMatcher()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				parts[i] = matchOne(ms[i], matcher)
				times[i] = time.Since(t0)
			}
		}()
	}
	for i := range ms {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return parts, times
}

// matchOne builds the single-metagraph part index of m.
func matchOne(m *metagraph.Metagraph, matcher match.Matcher) *Index {
	b := NewBuilder(1)
	b.AddMetagraph(0, m, matcher)
	return b.Build()
}

// BuildParallel is the parallel offline index build: MatchParts followed by
// the offset-aware Merge. It produces an Index identical to adding every
// metagraph to one Builder serially, in near-linear time in the worker
// count when matching dominates.
func BuildParallel(ms []*metagraph.Metagraph, newMatcher func() match.Matcher, workers int) *Index {
	parts, _ := MatchParts(ms, newMatcher, workers)
	return Merge(parts...)
}
