package index

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/metagraph"
)

// randTyped builds a random user/attr graph plus a fresh delta against it.
func randTyped(rng *rand.Rand) (*graph.Graph, graph.Delta) {
	b := graph.NewBuilder()
	for _, n := range []string{"user", "school", "hobby"} {
		b.Types().Register(n)
	}
	nu, ns, nh := 6+rng.Intn(8), 3+rng.Intn(4), 3+rng.Intn(4)
	var ids []graph.NodeID
	for i := 0; i < nu; i++ {
		ids = append(ids, b.AddNode("user", ""))
	}
	for i := 0; i < ns; i++ {
		ids = append(ids, b.AddNode("school", ""))
	}
	for i := 0; i < nh; i++ {
		ids = append(ids, b.AddNode("hobby", ""))
	}
	for i := 0; i < nu; i++ {
		for j := 0; j < 2; j++ {
			b.AddEdge(ids[i], ids[nu+rng.Intn(ns+nh)])
		}
	}
	g := b.MustBuild()

	var d graph.Delta
	for i := rng.Intn(2); i > 0; i-- {
		d.Nodes = append(d.Nodes, graph.DeltaNode{Type: "user", Value: ""})
	}
	total := g.NumNodes() + len(d.Nodes)
	for i := 1 + rng.Intn(4); i > 0; i-- {
		d.Edges = append(d.Edges, graph.Edge{U: graph.NodeID(rng.Intn(total)), V: graph.NodeID(rng.Intn(total))})
	}
	return g, d
}

// patchMetagraphs are the patterns the patch property test re-matches: a
// symmetric metapath and a symmetric triangle-ish pattern over the types
// of randTyped (user=0, school=1, hobby=2).
func patchMetagraphs() []*metagraph.Metagraph {
	return []*metagraph.Metagraph{
		metagraph.MustNew([]graph.TypeID{0, 1, 0}, []metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}),
		metagraph.MustNew([]graph.TypeID{0, 2, 0}, []metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}),
		metagraph.MustNew([]graph.TypeID{0, 1, 0, 2}, []metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 2, V: 3}}),
	}
}

// TestQuickPatchEqualsScratch is the incremental-indexing property: for
// random graphs and deltas, patching the pre-delta part index with
// RematchDelta and compacting yields byte-identical serialization to a
// from-scratch match of the post-delta graph — for every metagraph.
func TestQuickPatchEqualsScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mk := func(g *graph.Graph) match.Matcher { return match.NewSymISO(g) }
	for trial := 0; trial < 40; trial++ {
		g, d := randTyped(rng)
		ng, touched, err := g.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		for mi, m := range patchMetagraphs() {
			before := matchOne(m, mk(g))
			patch := RematchDelta(ng, m, mk, touched)
			patched := before.WithPatch(patch)
			scratch := matchOne(m, mk(ng.Compact()))

			var got, want bytes.Buffer
			if err := Write(&got, patched); err != nil {
				t.Fatal(err)
			}
			if err := Write(&want, scratch); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("trial %d metagraph %d: patched index differs from scratch build (touched %v)", trial, mi, touched)
			}
			// Reads through the overlay agree with the scratch build too.
			for v := graph.NodeID(0); int(v) < ng.NumNodes(); v++ {
				a, b := patched.NodeVec(v), scratch.NodeVec(v)
				if len(a) != len(b) {
					t.Fatalf("trial %d: NodeVec(%d) mismatch", trial, v)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("trial %d: NodeVec(%d)[%d] = %v, want %v", trial, v, i, a[i], b[i])
					}
				}
				pa, pb := patched.Partners(v), scratch.Partners(v)
				if len(pa) != len(pb) {
					t.Fatalf("trial %d: Partners(%d) mismatch", trial, v)
				}
				for i := range pa {
					if pa[i] != pb[i] {
						t.Fatalf("trial %d: Partners(%d)[%d]", trial, v, i)
					}
				}
			}
			if patched.NumPairs() != scratch.NumPairs() {
				t.Fatalf("trial %d: NumPairs %d want %d", trial, patched.NumPairs(), scratch.NumPairs())
			}
		}
	}
}

func TestWithPatchBasics(t *testing.T) {
	base := NewPatch(1, nil, nil)
	if !base.Empty() {
		t.Fatal("nil rows should be empty")
	}
	b := NewBuilder(1)
	ix := b.Build()
	if ix.WithPatch(base) != ix {
		t.Fatal("empty patch must return the receiver")
	}
	p := NewPatch(1, map[graph.NodeID][]Entry{3: {{Meta: 0, Count: 2}}},
		map[PairKey][]Entry{MakePairKey(1, 3): {{Meta: 0, Count: 1}}})
	patched := ix.WithPatch(p)
	if !patched.Pending() || ix.Pending() {
		t.Fatal("pending state wrong")
	}
	if got := patched.NodeVec(3).Get(0); got != 2 {
		t.Fatalf("overlay NodeVec = %v", got)
	}
	if got := patched.PairVec(1, 3).Get(0); got != 1 {
		t.Fatalf("overlay PairVec = %v", got)
	}
	// Second patch shadows the first on overlapping keys.
	p2 := NewPatch(1, map[graph.NodeID][]Entry{3: {{Meta: 0, Count: 5}}}, nil)
	patched2 := patched.WithPatch(p2)
	if got := patched2.NodeVec(3).Get(0); got != 5 {
		t.Fatalf("re-patched NodeVec = %v", got)
	}
	if got := patched2.PairVec(1, 3).Get(0); got != 1 {
		t.Fatalf("re-patched PairVec lost earlier overlay row: %v", got)
	}
	c := patched2.Compact()
	if c.Pending() {
		t.Fatal("compacted index still pending")
	}
	if got := c.NodeVec(3).Get(0); got != 5 {
		t.Fatalf("compacted NodeVec = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("numMeta mismatch must panic")
		}
	}()
	ix.WithPatch(NewPatch(2, map[graph.NodeID][]Entry{1: {{Meta: 0, Count: 1}}}, nil))
}
