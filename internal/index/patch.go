// Incremental index maintenance. When the object graph gains nodes or
// edges, only keys near the mutation can change: every node of a metagraph
// instance lies within Diameter(M) hops of every other (each metagraph edge
// maps onto a graph edge), so an instance using a new edge keeps all of its
// nodes within Diameter(M) hops of that edge's endpoints. RematchDelta
// exploits this: it re-runs the matcher on the induced neighborhood within
// 2·Diameter(M) hops of the touched nodes — large enough to contain every
// instance that CONTAINS an affected key, not just the new instances — and
// emits the recomputed rows as a Patch. WithPatch overlays those rows over
// the flat CSR without rebuilding it; Compact folds the overlay into fresh
// arenas identical to a from-scratch build of the final graph.
package index

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/metagraph"
)

// Patch is a set of full replacement rows for one index: every key listed
// shadows its base row entirely. Rows are canonical (keys ascending,
// entries ascending by Meta) and never empty.
type Patch struct {
	numMeta int
	mx      csr[graph.NodeID]
	mxy     csr[PairKey]
}

// NewPatch freezes replacement rows into a Patch for an index spanning
// numMeta metagraphs. Empty rows are dropped (an additive delta can never
// empty a row).
func NewPatch(numMeta int, mx map[graph.NodeID][]Entry, mxy map[PairKey][]Entry) *Patch {
	dropEmpty(mx)
	dropEmpty(mxy)
	return &Patch{numMeta: numMeta, mx: csrFromRows(mx), mxy: csrFromRows(mxy)}
}

// dropEmpty removes keys with empty rows.
func dropEmpty[K comparable](rows map[K][]Entry) {
	for k, row := range rows {
		if len(row) == 0 {
			delete(rows, k)
		}
	}
}

// NumMeta returns the metagraph span the patch applies to.
func (p *Patch) NumMeta() int { return p.numMeta }

// Empty reports whether the patch replaces no rows.
func (p *Patch) Empty() bool { return len(p.mx.keys) == 0 && len(p.mxy.keys) == 0 }

// NodeKeys returns the node keys the patch replaces, ascending. The slice
// is shared; do not modify.
func (p *Patch) NodeKeys() []graph.NodeID { return p.mx.keys }

// PairKeys returns the pair keys the patch replaces, ascending. The slice
// is shared; do not modify.
func (p *Patch) PairKeys() []PairKey { return p.mxy.keys }

// Transform returns a copy of the patch with f applied to every count,
// mirroring Index.Transform for indices built with a count transform.
func (p *Patch) Transform(f func(float64) float64) *Patch {
	return &Patch{
		numMeta: p.numMeta,
		mx:      csr[graph.NodeID]{keys: p.mx.keys, off: p.mx.off, ent: transformArena(p.mx.ent, f)},
		mxy:     csr[PairKey]{keys: p.mxy.keys, off: p.mxy.off, ent: transformArena(p.mxy.ent, f)},
	}
}

// WithPatch returns a new index whose overlay replaces the patched rows;
// the receiver is unchanged and all base arenas are shared. Patching an
// already-patched index merges the overlays (the newer patch wins on
// overlapping keys). Reads through the result see the replacement rows
// immediately; call Compact to fold the overlay into flat storage.
func (ix *Index) WithPatch(p *Patch) *Index {
	if p.numMeta != ix.numMeta {
		panic(fmt.Sprintf("index: patch spans %d metagraphs, index %d", p.numMeta, ix.numMeta))
	}
	if p.Empty() {
		return ix
	}
	return &Index{
		numMeta:  ix.numMeta,
		mx:       ix.mx,
		mxy:      ix.mxy,
		ovlMx:    shadowMerge(ix.ovlMx, p.mx),
		ovlMxy:   shadowMerge(ix.ovlMxy, p.mxy),
		partners: &partnerTable{},
	}
}

// Pending reports whether the index carries an uncompacted patch overlay.
func (ix *Index) Pending() bool { return len(ix.ovlMx.keys) != 0 || len(ix.ovlMxy.keys) != 0 }

// Compact folds the patch overlay into fresh flat CSR arenas, returning
// the receiver unchanged when there is nothing pending. The result is
// byte-identical (under Write) to an index built from scratch on the
// post-delta graph.
func (ix *Index) Compact() *Index {
	if !ix.Pending() {
		return ix
	}
	return &Index{
		numMeta:  ix.numMeta,
		mx:       shadowMerge(ix.mx, ix.ovlMx),
		mxy:      shadowMerge(ix.mxy, ix.ovlMxy),
		partners: &partnerTable{},
	}
}

// shadowMerge merges two row tables into one fresh table; rows of over
// replace rows of base on key collisions.
func shadowMerge[K cmp.Ordered](base, over csr[K]) csr[K] {
	if len(over.keys) == 0 {
		return base
	}
	if len(base.keys) == 0 {
		return over
	}
	keys := make([]K, 0, len(base.keys)+len(over.keys))
	ent := make([]Entry, 0, len(base.ent)+len(over.ent))
	off := make([]int32, 1, len(base.keys)+len(over.keys)+1)
	i, j := 0, 0
	appendRow := func(c *csr[K], k int) {
		ent = append(ent, c.ent[c.off[k]:c.off[k+1]]...)
		off = append(off, int32(len(ent)))
	}
	for i < len(base.keys) && j < len(over.keys) {
		switch {
		case base.keys[i] < over.keys[j]:
			keys = append(keys, base.keys[i])
			appendRow(&base, i)
			i++
		case base.keys[i] > over.keys[j]:
			keys = append(keys, over.keys[j])
			appendRow(&over, j)
			j++
		default:
			keys = append(keys, over.keys[j])
			appendRow(&over, j)
			i++
			j++
		}
	}
	for ; i < len(base.keys); i++ {
		keys = append(keys, base.keys[i])
		appendRow(&base, i)
	}
	for ; j < len(over.keys); j++ {
		keys = append(keys, over.keys[j])
		appendRow(&over, j)
	}
	return csr[K]{keys: keys, off: off, ent: ent}
}

// Rematch recomputes the rows of one metagraph's single-metagraph part
// index affected by a graph mutation. sub is the induced update
// neighborhood (every instance containing an affected key lies entirely
// inside it), matcher matches on sub, toFull maps sub ids back to full
// graph ids, and affected holds the full-graph keys whose rows may have
// changed. Counting is restricted to affected keys: a node row is
// recomputed when the node is affected, a pair row when both endpoints
// are. The returned patch rows equal the rows a from-scratch match of the
// full post-delta graph would produce for those keys.
func Rematch(m *metagraph.Metagraph, matcher match.Matcher, toFull []graph.NodeID, affected map[graph.NodeID]bool) *Patch {
	symPairs := m.SymmetricPairs()
	if len(symPairs) == 0 || len(affected) == 0 {
		return NewPatch(1, nil, nil)
	}
	posSet := make([]int, 0, m.N())
	seen := make(map[int]bool, m.N())
	for _, p := range symPairs {
		if !seen[p.U] {
			seen[p.U] = true
			posSet = append(posSet, p.U)
		}
		if !seen[p.V] {
			seen[p.V] = true
			posSet = append(posSet, p.V)
		}
	}
	nodeCnt := make(map[graph.NodeID]float64)
	pairCnt := make(map[PairKey]float64)
	match.Instances(matcher, m, func(a []graph.NodeID) bool {
		for _, p := range symPairs {
			x, y := toFull[a[p.U]], toFull[a[p.V]]
			if affected[x] && affected[y] {
				pairCnt[MakePairKey(x, y)]++
			}
		}
		for _, p := range posSet {
			if x := toFull[a[p]]; affected[x] {
				nodeCnt[x]++
			}
		}
		return true
	})
	mx := make(map[graph.NodeID][]Entry, len(nodeCnt))
	for k, c := range nodeCnt {
		mx[k] = []Entry{{0, c}}
	}
	mxy := make(map[PairKey][]Entry, len(pairCnt))
	for k, c := range pairCnt {
		mxy[k] = []Entry{{0, c}}
	}
	return NewPatch(1, mx, mxy)
}

// RematchDelta computes the patch of one metagraph's part index for a
// graph mutation: touched are the nodes whose adjacency changed (plus any
// new nodes with edges), g is the POST-delta graph. Affected keys are the
// nodes within Diameter(m) hops of a touched node; the matcher re-runs on
// the induced neighborhood within twice that radius, which contains every
// instance touching an affected key. newMatcher builds a matcher for the
// neighborhood subgraph.
func RematchDelta(g *graph.Graph, m *metagraph.Metagraph, newMatcher func(*graph.Graph) match.Matcher, touched []graph.NodeID) *Patch {
	if len(touched) == 0 {
		return NewPatch(1, nil, nil)
	}
	diam := m.Diameter()
	dist := g.HopDistances(touched, 2*diam)
	affected := make(map[graph.NodeID]bool, len(dist))
	region := make([]graph.NodeID, 0, len(dist))
	for v, d := range dist {
		region = append(region, v)
		if int(d) <= diam {
			affected[v] = true
		}
	}
	slices.Sort(region)
	sub, toFull := graph.Induced(g, region)
	return Rematch(m, newMatcher(sub), toFull, affected)
}
