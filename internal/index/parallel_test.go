package index

import (
	"bytes"
	"testing"

	"repro/internal/match"
)

// writeBytes serializes ix; Write is deterministic, so equal bytes mean
// equal NodeVec/PairVec tables for every key.
func writeBytes(t testing.TB, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, ix); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMatchPartsAligned checks the MatchParts contract: parts and times
// align with ms, and merging the parts reproduces the serial index.
func TestMatchPartsAligned(t *testing.T) {
	g := buildToy(t)
	mgs := toyMetagraphs()
	parts, times := MatchParts(mgs,
		func() match.Matcher { return match.NewSymISO(g) }, 3)
	if len(parts) != len(mgs) || len(times) != len(mgs) {
		t.Fatalf("parts/times misaligned: %d/%d vs %d", len(parts), len(times), len(mgs))
	}
	for i, p := range parts {
		if p == nil || p.NumMeta() != 1 {
			t.Fatalf("part %d malformed: %+v", i, p)
		}
	}
	merged := Merge(parts...)

	serial := NewBuilder(len(mgs))
	matcher := match.NewSymISO(g)
	for i, m := range mgs {
		serial.AddMetagraph(i, m, matcher)
	}
	if !bytes.Equal(writeBytes(t, merged), writeBytes(t, serial.Build())) {
		t.Fatal("merged parts differ from serial build")
	}
}

func TestMatchPartsEmpty(t *testing.T) {
	parts, times := MatchParts(nil, func() match.Matcher { return nil }, 4)
	if parts != nil || times != nil {
		t.Fatalf("MatchParts(nil) = %v, %v", parts, times)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must normalize to >= 1")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit worker counts must pass through")
	}
}
