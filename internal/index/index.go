// Package index builds and stores the metagraph vectors of the paper
// (Eq. 1–2): for every metagraph M_i, m_xy[i] counts the instances of M_i
// in which nodes x and y sit on positions symmetric to each other
// (ContainsSym), and m_x[i] counts the instances in which x sits on a
// position symmetric to some other position. The vectors are the features
// of the MGP proximity measure and are precomputed offline (Fig. 3).
//
// The frozen Index uses a flat CSR-style layout mirroring the graph
// substrate: all rows of a table live in one contiguous []Entry arena,
// addressed through sorted key and offset slices. Reads (NodeVec, PairVec,
// Partners) are a binary search plus a slice header — no allocation, no
// pointer chasing — and Merge/Project/Transform operate on whole arenas
// instead of one small map row at a time.
package index

import (
	"cmp"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/metagraph"
)

// PairKey identifies an unordered node pair.
type PairKey uint64

// MakePairKey builds the key for the unordered pair {x, y}.
func MakePairKey(x, y graph.NodeID) PairKey {
	if x > y {
		x, y = y, x
	}
	return PairKey(uint64(uint32(x))<<32 | uint64(uint32(y)))
}

// Nodes returns the pair's two nodes with the smaller one first.
func (k PairKey) Nodes() (graph.NodeID, graph.NodeID) {
	return graph.NodeID(uint32(k >> 32)), graph.NodeID(uint32(k))
}

// Entry is one non-zero coordinate of a sparse metagraph vector.
type Entry struct {
	Meta  int32   // metagraph index within M
	Count float64 // instance count (possibly transformed)
}

// SparseVec is a sparse metagraph vector sorted by Meta.
type SparseVec []Entry

// compareEntryMeta orders entries by metagraph index.
func compareEntryMeta(a, b Entry) int { return cmp.Compare(a.Meta, b.Meta) }

// Dot returns v · w for a dense weight vector w indexed by metagraph.
func (v SparseVec) Dot(w []float64) float64 {
	var s float64
	for _, e := range v {
		s += e.Count * w[e.Meta]
	}
	return s
}

// Get returns the coordinate for metagraph i (0 when absent).
func (v SparseVec) Get(i int) float64 {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].Meta < int32(i) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v) && v[lo].Meta == int32(i) {
		return v[lo].Count
	}
	return 0
}

// csr is one table of the index: rows of Entry keyed by K, stored as a
// contiguous arena with sorted keys and per-row offsets. The zero value is
// the empty table.
type csr[K cmp.Ordered] struct {
	keys []K
	off  []int32 // len(keys)+1 when keys is non-empty
	ent  []Entry // arena; row i is ent[off[i]:off[i+1]]
}

// row returns the row for key k, or nil when absent. Allocation-free.
func (c *csr[K]) row(k K) SparseVec {
	i := findKey(c.keys, k)
	if i < 0 {
		return nil
	}
	return c.ent[c.off[i]:c.off[i+1]]
}

// dedupeSorted copies the distinct values of a sorted slice into a
// right-sized allocation, so long-lived key slices never pin the oversized
// scratch array they were deduped from.
func dedupeSorted[K cmp.Ordered](sorted []K) []K {
	return slices.Clone(slices.Compact(sorted))
}

// findKey binary-searches a sorted key slice, returning the position of k
// or -1. slices.BinarySearch is closure-free, so reads stay
// allocation-free.
func findKey[K cmp.Ordered](keys []K, k K) int {
	i, ok := slices.BinarySearch(keys, k)
	if !ok {
		return -1
	}
	return i
}

// csrFromRows freezes map rows into a csr in ascending key order. Each row
// is normalized: sorted by Meta with duplicate coordinates summed (rows
// built by ascending AddMetagraph calls are already sorted, making the
// normalization a no-op scan).
func csrFromRows[K cmp.Ordered](rows map[K][]Entry) csr[K] {
	if len(rows) == 0 {
		return csr[K]{}
	}
	keys := make([]K, 0, len(rows))
	total := 0
	for k, row := range rows {
		keys = append(keys, k)
		total += len(row)
	}
	slices.Sort(keys)
	c := csr[K]{
		keys: keys,
		off:  make([]int32, 1, len(keys)+1),
		ent:  make([]Entry, 0, total),
	}
	for _, k := range keys {
		c.ent = appendNormalized(c.ent, rows[k])
		c.off = append(c.off, int32(len(c.ent)))
	}
	return c
}

// appendNormalized appends row to arena sorted by Meta with duplicate Metas
// coalesced by summing.
func appendNormalized(arena []Entry, row []Entry) []Entry {
	sorted := true
	for i := 1; i < len(row); i++ {
		if row[i].Meta <= row[i-1].Meta {
			sorted = false
			break
		}
	}
	if sorted {
		return append(arena, row...)
	}
	tmp := slices.Clone(row)
	slices.SortFunc(tmp, compareEntryMeta)
	start := len(arena)
	for _, e := range tmp {
		// Coalesce only within this row: never merge into the previous
		// row's tail entry.
		if n := len(arena); n > start && arena[n-1].Meta == e.Meta {
			arena[n-1].Count += e.Count
		} else {
			arena = append(arena, e)
		}
	}
	return arena
}

// Index holds the frozen metagraph vectors for one graph and one metagraph
// set M. It is immutable after Build and safe for concurrent reads.
//
// A live-updated index additionally carries a patch overlay (see patch.go):
// rows recomputed after a graph delta shadow their flat-CSR originals until
// Compact folds them into fresh arenas. Reads stay allocation-free either
// way; an overlaid index pays one extra binary search into the (small)
// overlay per row lookup.
type Index struct {
	numMeta int
	mx      csr[graph.NodeID]
	mxy     csr[PairKey]
	// ovlMx/ovlMxy hold replacement rows from WithPatch. A key present
	// here fully shadows the base row; overlay rows are never empty (a
	// delta only adds instances, so no row ever vanishes).
	ovlMx  csr[graph.NodeID]
	ovlMxy csr[PairKey]
	// partners lists, per node, every y that shares at least one instance
	// with x symmetrically; the online phase ranks these candidates. It is
	// derived from the pair keys on first use: the single-metagraph parts
	// the parallel build produces are merged without their partner tables
	// ever being read, so building them eagerly would be pure waste.
	partners *partnerTable
}

// partnerTable is the lazily built partner CSR (same shape as the vector
// tables, with node lists instead of entries). The Once makes the build
// safe under concurrent first reads.
type partnerTable struct {
	once sync.Once
	keys []graph.NodeID
	off  []int32
	list []graph.NodeID
}

// NumMeta returns |M|, the length of the weight vectors this index pairs
// with.
func (ix *Index) NumMeta() int { return ix.numMeta }

// NodeVec returns m_x (nil when x never occurs symmetrically). The slice is
// a view into the index arena; do not modify.
func (ix *Index) NodeVec(x graph.NodeID) SparseVec {
	if len(ix.ovlMx.keys) != 0 {
		if i := findKey(ix.ovlMx.keys, x); i >= 0 {
			return ix.ovlMx.ent[ix.ovlMx.off[i]:ix.ovlMx.off[i+1]]
		}
	}
	return ix.mx.row(x)
}

// PairVec returns m_xy (nil when x and y never co-occur symmetrically). The
// slice is a view into the index arena; do not modify.
func (ix *Index) PairVec(x, y graph.NodeID) SparseVec {
	k := MakePairKey(x, y)
	if len(ix.ovlMxy.keys) != 0 {
		if i := findKey(ix.ovlMxy.keys, k); i >= 0 {
			return ix.ovlMxy.ent[ix.ovlMxy.off[i]:ix.ovlMxy.off[i+1]]
		}
	}
	return ix.mxy.row(k)
}

// Partners returns the nodes that co-occur symmetrically with x in at least
// one instance, in ascending order. The slice is shared; do not modify.
func (ix *Index) Partners(x graph.NodeID) []graph.NodeID {
	pt := ix.partners
	pt.once.Do(func() { pt.build(unionKeys(ix.mxy.keys, ix.ovlMxy.keys)) })
	i := findKey(pt.keys, x)
	if i < 0 {
		return nil
	}
	return pt.list[pt.off[i]:pt.off[i+1]]
}

// unionKeys merges two sorted key slices without duplicates, returning a
// directly when b is empty (the common, un-patched case).
func unionKeys[K cmp.Ordered](a, b []K) []K {
	if len(b) == 0 {
		return a
	}
	out := make([]K, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// NumPairs returns the number of node pairs with a non-zero m_xy.
func (ix *Index) NumPairs() int {
	n := len(ix.mxy.keys)
	for _, k := range ix.ovlMxy.keys {
		if findKey(ix.mxy.keys, k) < 0 {
			n++
		}
	}
	return n
}

// build derives the partner CSR from the sorted pair keys. For a fixed
// node x the sorted (min, max) pair order emits partners below x first
// (ascending, while x is the max endpoint) and partners above x after
// (ascending, while x is the min endpoint), so every row comes out sorted
// without a per-row sort.
func (pt *partnerTable) build(pairs []PairKey) {
	if len(pairs) == 0 {
		return
	}
	ends := make([]graph.NodeID, 0, 2*len(pairs))
	for _, k := range pairs {
		x, y := k.Nodes()
		ends = append(ends, x, y)
	}
	slices.Sort(ends)
	keys := dedupeSorted(ends)

	off := make([]int32, len(keys)+1)
	for _, k := range pairs {
		x, y := k.Nodes()
		off[findKey(keys, x)+1]++
		off[findKey(keys, y)+1]++
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	list := make([]graph.NodeID, off[len(keys)])
	cur := make([]int32, len(keys))
	copy(cur, off[:len(keys)])
	for _, k := range pairs {
		x, y := k.Nodes()
		xi, yi := findKey(keys, x), findKey(keys, y)
		list[cur[xi]] = y
		cur[xi]++
		list[cur[yi]] = x
		cur[yi]++
	}
	pt.keys, pt.off, pt.list = keys, off, list
}

// Transform returns a copy of the index with f applied to every count; the
// paper mentions log-style transforms of the raw counts (Sect. II-A). Keys,
// offsets and partner lists are shared with the receiver (both are
// immutable); only the entry arenas are copied. A patched receiver is
// compacted first.
func (ix *Index) Transform(f func(float64) float64) *Index {
	ix = ix.Compact()
	out := *ix
	out.mx.ent = transformArena(ix.mx.ent, f)
	out.mxy.ent = transformArena(ix.mxy.ent, f)
	return &out
}

func transformArena(ent []Entry, f func(float64) float64) []Entry {
	nv := make([]Entry, len(ent))
	for i, e := range ent {
		nv[i] = Entry{e.Meta, f(e.Count)}
	}
	return nv
}

// Project returns a view of the index restricted to the metagraph subset
// given by keep (indices into the original M), renumbered 0..len(keep)-1 in
// the given order. Dual-stage training uses it to train on seeds and
// candidates without re-matching anything. When keep is ascending (the
// common case) projected rows inherit the source order and no sorting
// happens at all.
func (ix *Index) Project(keep []int) *Index {
	ix = ix.Compact()
	remap := make([]int32, ix.numMeta)
	for i := range remap {
		remap[i] = -1
	}
	ascending := true
	for newI, oldI := range keep {
		remap[oldI] = int32(newI)
		if newI > 0 && oldI <= keep[newI-1] {
			ascending = false
		}
	}
	return &Index{
		numMeta:  len(keep),
		mx:       projectCSR(ix.mx, remap, ascending),
		mxy:      projectCSR(ix.mxy, remap, ascending),
		partners: &partnerTable{},
	}
}

// projectCSR rewrites one table under the metagraph renumbering, dropping
// rows that lose all coordinates. When the renumbering is not monotone the
// surviving rows are re-sorted in place in the new arena.
func projectCSR[K cmp.Ordered](c csr[K], remap []int32, ascending bool) csr[K] {
	if len(c.keys) == 0 {
		return csr[K]{}
	}
	out := csr[K]{
		keys: make([]K, 0, len(c.keys)),
		off:  make([]int32, 1, len(c.keys)+1),
		ent:  make([]Entry, 0, len(c.ent)),
	}
	for i, k := range c.keys {
		start := len(out.ent)
		for _, e := range c.ent[c.off[i]:c.off[i+1]] {
			if ni := remap[e.Meta]; ni >= 0 {
				out.ent = append(out.ent, Entry{ni, e.Count})
			}
		}
		if len(out.ent) == start {
			continue
		}
		if !ascending {
			slices.SortFunc(out.ent[start:], compareEntryMeta)
		}
		out.keys = append(out.keys, k)
		out.off = append(out.off, int32(len(out.ent)))
	}
	if len(out.keys) == 0 {
		return csr[K]{}
	}
	return out
}

// Merge combines single-metagraph (or multi-metagraph) indices into one,
// renumbering metagraphs by concatenation: part k's metagraph j becomes
// offset(k)+j. The engine caches one single-metagraph index per matched
// metagraph and merges subsets on demand, so dual-stage training never
// re-matches anything.
//
// Parts are consumed by an offset-aware k-way concatenation: each part's
// rows are already Meta-sorted and the per-part offsets grow monotonically,
// so appending part rows in part order yields sorted rows directly — no
// per-row sort is ever needed.
func Merge(parts ...*Index) *Index {
	out := &Index{partners: &partnerTable{}}
	offsets := make([]int32, len(parts))
	var off int32
	compacted := make([]*Index, len(parts))
	for i, p := range parts {
		compacted[i] = p.Compact()
		offsets[i] = off
		off += int32(p.numMeta)
	}
	parts = compacted
	out.numMeta = int(off)
	out.mx = mergeCSR(parts, offsets, func(p *Index) *csr[graph.NodeID] { return &p.mx })
	out.mxy = mergeCSR(parts, offsets, func(p *Index) *csr[PairKey] { return &p.mxy })
	return out
}

// mergeCSR concatenates one table across parts in two passes that stay
// linear in the total part keys/entries (plus one binary search per part
// key into the key union): pass one sizes every output row, pass two fills
// the arena with per-row cursors. Iterating parts in ascending order keeps
// each row's entries in ascending part — and therefore Meta — order, so no
// row is ever sorted.
func mergeCSR[K cmp.Ordered](parts []*Index, offsets []int32, table func(*Index) *csr[K]) csr[K] {
	tables := make([]*csr[K], len(parts))
	totalKeys, totalEnt := 0, 0
	for i, p := range parts {
		tables[i] = table(p)
		totalKeys += len(tables[i].keys)
		totalEnt += len(tables[i].ent)
	}
	if totalEnt == 0 {
		return csr[K]{}
	}
	union := make([]K, 0, totalKeys)
	for _, c := range tables {
		union = append(union, c.keys...)
	}
	slices.Sort(union)
	keys := dedupeSorted(union)

	// Pass one: locate every part key in the union and accumulate row
	// entry counts; prefix-summing them yields the offsets directly.
	pos := make([][]int32, len(tables))
	off := make([]int32, len(keys)+1)
	for pi, c := range tables {
		pp := make([]int32, len(c.keys))
		for ki, k := range c.keys {
			p := int32(findKey(keys, k))
			pp[ki] = p
			off[p+1] += c.off[ki+1] - c.off[ki]
		}
		pos[pi] = pp
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}

	// Pass two: copy rows into place, shifting Metas by the part offset.
	ent := make([]Entry, totalEnt)
	cur := make([]int32, len(keys))
	copy(cur, off[:len(keys)])
	for pi, c := range tables {
		shift := offsets[pi]
		for ki := range c.keys {
			at := cur[pos[pi][ki]]
			for _, e := range c.ent[c.off[ki]:c.off[ki+1]] {
				ent[at] = Entry{e.Meta + shift, e.Count}
				at++
			}
			cur[pos[pi][ki]] = at
		}
	}
	return csr[K]{keys: keys, off: off, ent: ent}
}

// Builder accumulates instance counts metagraph by metagraph and freezes
// them into an Index. It keeps one flat []Entry row per key and reuses two
// scratch count maps across AddMetagraph calls, so matching a metagraph
// allocates nothing per instance.
type Builder struct {
	numMeta int
	mx      map[graph.NodeID][]Entry
	mxy     map[PairKey][]Entry
	// Per-call scratch: counts for the metagraph currently being matched.
	// One float per touched key replaces the per-key inner maps the builder
	// used to allocate for every new key.
	nodeScratch map[graph.NodeID]float64
	pairScratch map[PairKey]float64
}

// NewBuilder returns a Builder for a metagraph set of the given size.
func NewBuilder(numMeta int) *Builder {
	return &Builder{
		numMeta:     numMeta,
		mx:          make(map[graph.NodeID][]Entry),
		mxy:         make(map[PairKey][]Entry),
		nodeScratch: make(map[graph.NodeID]float64),
		pairScratch: make(map[PairKey]float64),
	}
}

// AddMetagraph matches metagraph number i with the given engine and
// accumulates its contribution to every m_x and m_xy. Asymmetric
// metagraphs contribute nothing (ContainsSym can never hold) and are
// skipped without matching.
func (b *Builder) AddMetagraph(i int, m *metagraph.Metagraph, matcher match.Matcher) {
	symPairs := m.SymmetricPairs()
	if len(symPairs) == 0 {
		return
	}
	// Unique positions that participate in any symmetric pair (for Eq. 2).
	posSet := make([]int, 0, m.N())
	seen := make(map[int]bool, m.N())
	for _, p := range symPairs {
		if !seen[p.U] {
			seen[p.U] = true
			posSet = append(posSet, p.U)
		}
		if !seen[p.V] {
			seen[p.V] = true
			posSet = append(posSet, p.V)
		}
	}
	clear(b.nodeScratch)
	clear(b.pairScratch)
	match.Instances(matcher, m, func(a []graph.NodeID) bool {
		for _, p := range symPairs {
			b.pairScratch[MakePairKey(a[p.U], a[p.V])]++
		}
		for _, p := range posSet {
			b.nodeScratch[a[p]]++
		}
		return true
	})
	mi := int32(i)
	for k, c := range b.pairScratch {
		b.mxy[k] = append(b.mxy[k], Entry{mi, c})
	}
	for k, c := range b.nodeScratch {
		b.mx[k] = append(b.mx[k], Entry{mi, c})
	}
}

// Build freezes the accumulated counts into an immutable Index.
func (b *Builder) Build() *Index {
	return &Index{
		numMeta:  b.numMeta,
		mx:       csrFromRows(b.mx),
		mxy:      csrFromRows(b.mxy),
		partners: &partnerTable{},
	}
}
