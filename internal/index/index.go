// Package index builds and stores the metagraph vectors of the paper
// (Eq. 1–2): for every metagraph M_i, m_xy[i] counts the instances of M_i
// in which nodes x and y sit on positions symmetric to each other
// (ContainsSym), and m_x[i] counts the instances in which x sits on a
// position symmetric to some other position. The vectors are the features
// of the MGP proximity measure and are precomputed offline (Fig. 3).
package index

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/metagraph"
)

// PairKey identifies an unordered node pair.
type PairKey uint64

// MakePairKey builds the key for the unordered pair {x, y}.
func MakePairKey(x, y graph.NodeID) PairKey {
	if x > y {
		x, y = y, x
	}
	return PairKey(uint64(uint32(x))<<32 | uint64(uint32(y)))
}

// Nodes returns the pair's two nodes with the smaller one first.
func (k PairKey) Nodes() (graph.NodeID, graph.NodeID) {
	return graph.NodeID(uint32(k >> 32)), graph.NodeID(uint32(k))
}

// Entry is one non-zero coordinate of a sparse metagraph vector.
type Entry struct {
	Meta  int32   // metagraph index within M
	Count float64 // instance count (possibly transformed)
}

// SparseVec is a sparse metagraph vector sorted by Meta.
type SparseVec []Entry

// Dot returns v · w for a dense weight vector w indexed by metagraph.
func (v SparseVec) Dot(w []float64) float64 {
	var s float64
	for _, e := range v {
		s += e.Count * w[e.Meta]
	}
	return s
}

// Get returns the coordinate for metagraph i (0 when absent).
func (v SparseVec) Get(i int) float64 {
	lo := sort.Search(len(v), func(k int) bool { return v[k].Meta >= int32(i) })
	if lo < len(v) && v[lo].Meta == int32(i) {
		return v[lo].Count
	}
	return 0
}

// Index holds the frozen metagraph vectors for one graph and one metagraph
// set M. It is immutable after Build and safe for concurrent reads.
type Index struct {
	numMeta int
	mx      map[graph.NodeID]SparseVec
	mxy     map[PairKey]SparseVec
	// partners[x] lists every y that shares at least one instance with x
	// symmetrically; the online phase ranks these candidates.
	partners map[graph.NodeID][]graph.NodeID
}

// NumMeta returns |M|, the length of the weight vectors this index pairs
// with.
func (ix *Index) NumMeta() int { return ix.numMeta }

// NodeVec returns m_x (nil when x never occurs symmetrically).
func (ix *Index) NodeVec(x graph.NodeID) SparseVec { return ix.mx[x] }

// PairVec returns m_xy (nil when x and y never co-occur symmetrically).
func (ix *Index) PairVec(x, y graph.NodeID) SparseVec {
	return ix.mxy[MakePairKey(x, y)]
}

// Partners returns the nodes that co-occur symmetrically with x in at least
// one instance, in ascending order. The slice is shared; do not modify.
func (ix *Index) Partners(x graph.NodeID) []graph.NodeID { return ix.partners[x] }

// NumPairs returns the number of node pairs with a non-zero m_xy.
func (ix *Index) NumPairs() int { return len(ix.mxy) }

// Transform returns a copy of the index with f applied to every count; the
// paper mentions log-style transforms of the raw counts (Sect. II-A).
func (ix *Index) Transform(f func(float64) float64) *Index {
	out := &Index{
		numMeta:  ix.numMeta,
		mx:       make(map[graph.NodeID]SparseVec, len(ix.mx)),
		mxy:      make(map[PairKey]SparseVec, len(ix.mxy)),
		partners: ix.partners,
	}
	for k, v := range ix.mx {
		nv := make(SparseVec, len(v))
		for i, e := range v {
			nv[i] = Entry{e.Meta, f(e.Count)}
		}
		out.mx[k] = nv
	}
	for k, v := range ix.mxy {
		nv := make(SparseVec, len(v))
		for i, e := range v {
			nv[i] = Entry{e.Meta, f(e.Count)}
		}
		out.mxy[k] = nv
	}
	return out
}

// Project returns a view of the index restricted to the metagraph subset
// given by keep (indices into the original M), renumbered 0..len(keep)-1 in
// the given order. Dual-stage training uses it to train on seeds and
// candidates without re-matching anything.
func (ix *Index) Project(keep []int) *Index {
	remap := make(map[int32]int32, len(keep))
	for newI, oldI := range keep {
		remap[int32(oldI)] = int32(newI)
	}
	project := func(v SparseVec) SparseVec {
		var nv SparseVec
		for _, e := range v {
			if ni, ok := remap[e.Meta]; ok {
				nv = append(nv, Entry{ni, e.Count})
			}
		}
		sort.Slice(nv, func(a, b int) bool { return nv[a].Meta < nv[b].Meta })
		return nv
	}
	out := &Index{
		numMeta:  len(keep),
		mx:       make(map[graph.NodeID]SparseVec, len(ix.mx)),
		mxy:      make(map[PairKey]SparseVec, len(ix.mxy)),
		partners: make(map[graph.NodeID][]graph.NodeID, len(ix.partners)),
	}
	for k, v := range ix.mx {
		if nv := project(v); len(nv) > 0 {
			out.mx[k] = nv
		}
	}
	for k, v := range ix.mxy {
		if nv := project(v); len(nv) > 0 {
			out.mxy[k] = nv
			x, y := k.Nodes()
			out.partners[x] = append(out.partners[x], y)
			out.partners[y] = append(out.partners[y], x)
		}
	}
	for k := range out.partners {
		p := out.partners[k]
		sort.Slice(p, func(a, b int) bool { return p[a] < p[b] })
	}
	return out
}

// Merge combines single-metagraph (or multi-metagraph) indices into one,
// renumbering metagraphs by concatenation: part k's metagraph j becomes
// offset(k)+j. The engine caches one single-metagraph index per matched
// metagraph and merges subsets on demand, so dual-stage training never
// re-matches anything.
func Merge(parts ...*Index) *Index {
	total := 0
	for _, p := range parts {
		total += p.numMeta
	}
	out := &Index{
		numMeta:  total,
		mx:       make(map[graph.NodeID]SparseVec),
		mxy:      make(map[PairKey]SparseVec),
		partners: make(map[graph.NodeID][]graph.NodeID),
	}
	offset := int32(0)
	mxRows := make(map[graph.NodeID][]Entry)
	mxyRows := make(map[PairKey][]Entry)
	for _, p := range parts {
		for k, v := range p.mx {
			for _, e := range v {
				mxRows[k] = append(mxRows[k], Entry{e.Meta + offset, e.Count})
			}
		}
		for k, v := range p.mxy {
			for _, e := range v {
				mxyRows[k] = append(mxyRows[k], Entry{e.Meta + offset, e.Count})
			}
		}
		offset += int32(p.numMeta)
	}
	for k, row := range mxRows {
		out.mx[k] = SparseVec(row) // concatenation order keeps Meta ascending per part append order
		sort.Slice(out.mx[k], func(a, b int) bool { return out.mx[k][a].Meta < out.mx[k][b].Meta })
	}
	for k, row := range mxyRows {
		v := SparseVec(row)
		sort.Slice(v, func(a, b int) bool { return v[a].Meta < v[b].Meta })
		out.mxy[k] = v
		x, y := k.Nodes()
		out.partners[x] = append(out.partners[x], y)
		out.partners[y] = append(out.partners[y], x)
	}
	for k := range out.partners {
		p := out.partners[k]
		sort.Slice(p, func(a, b int) bool { return p[a] < p[b] })
	}
	return out
}

// Builder accumulates instance counts metagraph by metagraph and freezes
// them into an Index.
type Builder struct {
	numMeta int
	mx      map[graph.NodeID]map[int32]float64
	mxy     map[PairKey]map[int32]float64
}

// NewBuilder returns a Builder for a metagraph set of the given size.
func NewBuilder(numMeta int) *Builder {
	return &Builder{
		numMeta: numMeta,
		mx:      make(map[graph.NodeID]map[int32]float64),
		mxy:     make(map[PairKey]map[int32]float64),
	}
}

// AddMetagraph matches metagraph number i with the given engine and
// accumulates its contribution to every m_x and m_xy. Asymmetric
// metagraphs contribute nothing (ContainsSym can never hold) and are
// skipped without matching.
func (b *Builder) AddMetagraph(i int, m *metagraph.Metagraph, matcher match.Matcher) {
	symPairs := m.SymmetricPairs()
	if len(symPairs) == 0 {
		return
	}
	// Unique positions that participate in any symmetric pair (for Eq. 2).
	posSet := make([]int, 0, m.N())
	seen := make(map[int]bool, m.N())
	for _, p := range symPairs {
		if !seen[p.U] {
			seen[p.U] = true
			posSet = append(posSet, p.U)
		}
		if !seen[p.V] {
			seen[p.V] = true
			posSet = append(posSet, p.V)
		}
	}
	mi := int32(i)
	match.Instances(matcher, m, func(a []graph.NodeID) bool {
		for _, p := range symPairs {
			key := MakePairKey(a[p.U], a[p.V])
			row := b.mxy[key]
			if row == nil {
				row = make(map[int32]float64, 2)
				b.mxy[key] = row
			}
			row[mi]++
		}
		for _, p := range posSet {
			x := a[p]
			row := b.mx[x]
			if row == nil {
				row = make(map[int32]float64, 4)
				b.mx[x] = row
			}
			row[mi]++
		}
		return true
	})
}

// Build freezes the accumulated counts into an immutable Index.
func (b *Builder) Build() *Index {
	ix := &Index{
		numMeta:  b.numMeta,
		mx:       make(map[graph.NodeID]SparseVec, len(b.mx)),
		mxy:      make(map[PairKey]SparseVec, len(b.mxy)),
		partners: make(map[graph.NodeID][]graph.NodeID),
	}
	for k, row := range b.mx {
		ix.mx[k] = freeze(row)
	}
	for k, row := range b.mxy {
		ix.mxy[k] = freeze(row)
		x, y := k.Nodes()
		ix.partners[x] = append(ix.partners[x], y)
		ix.partners[y] = append(ix.partners[y], x)
	}
	for k := range ix.partners {
		p := ix.partners[k]
		sort.Slice(p, func(a, b int) bool { return p[a] < p[b] })
	}
	return ix
}

func freeze(row map[int32]float64) SparseVec {
	v := make(SparseVec, 0, len(row))
	for i, c := range row {
		v = append(v, Entry{i, c})
	}
	sort.Slice(v, func(a, b int) bool { return v[a].Meta < v[b].Meta })
	return v
}
