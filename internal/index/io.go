package index

import (
	"bytes"
	"cmp"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Serialization of the metagraph-vector index. Matching dominates the
// offline phase (Table III), so persisting its output lets deployments
// mine+match once and train/query many times.
//
// The wire format mirrors the in-memory CSR layout: sorted keys, row
// offsets and one flat entry arena per table. Index internals are already
// deterministic, so Write is byte-stable without any extra sorting.

// serIndex is the gob-friendly mirror of Index.
type serIndex struct {
	Version int
	NumMeta int
	MxKeys  []graph.NodeID
	MxOff   []int32
	MxEnt   []Entry
	MxyKeys []PairKey
	MxyOff  []int32
	MxyEnt  []Entry
}

const serVersion = 2

// Write serializes ix. A patched index is compacted first, so the wire
// format never carries an overlay and an incrementally updated index
// serializes byte-identically to a from-scratch build of the same rows.
func Write(w io.Writer, ix *Index) error {
	ix = ix.Compact()
	s := serIndex{
		Version: serVersion,
		NumMeta: ix.numMeta,
		MxKeys:  ix.mx.keys,
		MxOff:   ix.mx.off,
		MxEnt:   ix.mx.ent,
		MxyKeys: ix.mxy.keys,
		MxyOff:  ix.mxy.off,
		MxyEnt:  ix.mxy.ent,
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Read deserializes an index written by Write, rebuilding the partner
// lists.
func Read(r io.Reader) (*Index, error) {
	var s serIndex
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	if s.Version != serVersion {
		return nil, fmt.Errorf("index: unsupported version %d", s.Version)
	}
	if s.NumMeta < 0 {
		return nil, fmt.Errorf("index: negative metagraph count")
	}
	if err := checkCSR(s.MxKeys, s.MxOff, s.MxEnt, s.NumMeta); err != nil {
		return nil, fmt.Errorf("index: node table: %w", err)
	}
	if err := checkCSR(s.MxyKeys, s.MxyOff, s.MxyEnt, s.NumMeta); err != nil {
		return nil, fmt.Errorf("index: pair table: %w", err)
	}
	return &Index{
		numMeta:  s.NumMeta,
		mx:       csr[graph.NodeID]{keys: s.MxKeys, off: s.MxOff, ent: s.MxEnt},
		mxy:      csr[PairKey]{keys: s.MxyKeys, off: s.MxyOff, ent: s.MxyEnt},
		partners: &partnerTable{},
	}, nil
}

// Marshal serializes ix to a byte slice. Engine snapshots embed many
// indices (one per matched metagraph plus one per trained class) inside a
// single outer stream, and a length-delimited []byte per index keeps each
// one independently decodable.
func Marshal(ix *Index) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, ix); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a byte slice produced by Marshal, running the same
// structural validation as Read.
func Unmarshal(b []byte) (*Index, error) {
	return Read(bytes.NewReader(b))
}

// checkCSR validates the invariants of one serialized table that reads
// rely on: strictly ascending keys (binary-searched lookups silently
// return wrong rows otherwise) and in-range entry Metas (Dot and Project
// index dense numMeta-length arrays by Meta, so an out-of-range value
// would panic far from the load site).
func checkCSR[K cmp.Ordered](keys []K, off []int32, ent []Entry, numMeta int) error {
	if len(keys) == 0 {
		if len(off) > 1 || len(ent) != 0 {
			return fmt.Errorf("corrupt empty table")
		}
		return nil
	}
	if len(off) != len(keys)+1 || off[0] != 0 || int(off[len(keys)]) != len(ent) {
		return fmt.Errorf("corrupt key/offset tables")
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("offsets not monotone")
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return fmt.Errorf("keys not strictly ascending")
		}
	}
	for _, e := range ent {
		if e.Meta < 0 || int(e.Meta) >= numMeta {
			return fmt.Errorf("entry metagraph %d out of range [0, %d)", e.Meta, numMeta)
		}
	}
	for i := 0; i < len(keys); i++ {
		row := ent[off[i]:off[i+1]]
		for j := 1; j < len(row); j++ {
			if row[j].Meta <= row[j-1].Meta {
				return fmt.Errorf("row entries not strictly ascending by metagraph")
			}
		}
	}
	return nil
}
