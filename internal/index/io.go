package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/graph"
)

// Serialization of the metagraph-vector index. Matching dominates the
// offline phase (Table III), so persisting its output lets deployments
// mine+match once and train/query many times.

// serIndex is the gob-friendly mirror of Index.
type serIndex struct {
	Version int
	NumMeta int
	MxKeys  []graph.NodeID
	MxVecs  [][]Entry
	MxyKeys []PairKey
	MxyVecs [][]Entry
}

const serVersion = 1

// Write serializes ix.
func Write(w io.Writer, ix *Index) error {
	s := serIndex{Version: serVersion, NumMeta: ix.numMeta}
	// Deterministic key order makes output byte-stable.
	for k := range ix.mx {
		s.MxKeys = append(s.MxKeys, k)
	}
	sort.Slice(s.MxKeys, func(i, j int) bool { return s.MxKeys[i] < s.MxKeys[j] })
	for _, k := range s.MxKeys {
		s.MxVecs = append(s.MxVecs, ix.mx[k])
	}
	for k := range ix.mxy {
		s.MxyKeys = append(s.MxyKeys, k)
	}
	sort.Slice(s.MxyKeys, func(i, j int) bool { return s.MxyKeys[i] < s.MxyKeys[j] })
	for _, k := range s.MxyKeys {
		s.MxyVecs = append(s.MxyVecs, ix.mxy[k])
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Read deserializes an index written by Write, rebuilding the partner
// lists.
func Read(r io.Reader) (*Index, error) {
	var s serIndex
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	if s.Version != serVersion {
		return nil, fmt.Errorf("index: unsupported version %d", s.Version)
	}
	if len(s.MxKeys) != len(s.MxVecs) || len(s.MxyKeys) != len(s.MxyVecs) {
		return nil, fmt.Errorf("index: corrupt key/vector tables")
	}
	ix := &Index{
		numMeta:  s.NumMeta,
		mx:       make(map[graph.NodeID]SparseVec, len(s.MxKeys)),
		mxy:      make(map[PairKey]SparseVec, len(s.MxyKeys)),
		partners: make(map[graph.NodeID][]graph.NodeID),
	}
	for i, k := range s.MxKeys {
		ix.mx[k] = s.MxVecs[i]
	}
	for i, k := range s.MxyKeys {
		ix.mxy[k] = s.MxyVecs[i]
		x, y := k.Nodes()
		ix.partners[x] = append(ix.partners[x], y)
		ix.partners[y] = append(ix.partners[y], x)
	}
	for k := range ix.partners {
		p := ix.partners[k]
		sort.Slice(p, func(a, b int) bool { return p[a] < p[b] })
	}
	return ix, nil
}
