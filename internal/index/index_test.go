package index

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/metagraph"
)

const (
	tUser graph.TypeID = iota
	tSurname
	tAddress
	tSchool
	tMajor
	tEmployer
	tHobby
)

// buildToy reproduces the toy social network of Fig. 1(a); names double as
// lookups in assertions.
func buildToy(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for _, n := range []string{"user", "surname", "address", "school", "major", "employer", "hobby"} {
		b.Types().Register(n)
	}
	alice := b.AddNodeOnce("user", "Alice")
	bob := b.AddNodeOnce("user", "Bob")
	kate := b.AddNodeOnce("user", "Kate")
	jay := b.AddNodeOnce("user", "Jay")
	tom := b.AddNodeOnce("user", "Tom")
	clinton := b.AddNodeOnce("surname", "Clinton")
	green := b.AddNodeOnce("address", "123 Green St")
	white := b.AddNodeOnce("address", "456 White St")
	collegeA := b.AddNodeOnce("school", "College A")
	collegeB := b.AddNodeOnce("school", "College B")
	econ := b.AddNodeOnce("major", "Economics")
	physics := b.AddNodeOnce("major", "Physics")
	companyX := b.AddNodeOnce("employer", "Company X")
	music := b.AddNodeOnce("hobby", "Music")
	for _, e := range [][2]graph.NodeID{
		{alice, clinton}, {bob, clinton},
		{alice, green}, {bob, green},
		{kate, white}, {jay, white},
		{bob, collegeA}, {tom, collegeA},
		{kate, collegeB}, {jay, collegeB},
		{bob, econ}, {tom, econ},
		{kate, physics}, {jay, physics},
		{alice, companyX}, {kate, companyX},
		{alice, music}, {kate, music},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

// toyMetagraphs returns M1–M4 of Fig. 2 in order.
func toyMetagraphs() []*metagraph.Metagraph {
	m1 := metagraph.MustNew([]graph.TypeID{tUser, tUser, tSchool, tMajor},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
	m2 := metagraph.MustNew([]graph.TypeID{tUser, tUser, tEmployer, tHobby},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
	m3 := metagraph.MustNew([]graph.TypeID{tUser, tAddress, tUser},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	m4 := metagraph.MustNew([]graph.TypeID{tUser, tUser, tSurname, tAddress},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
	return []*metagraph.Metagraph{m1, m2, m3, m4}
}

func buildToyIndex(t testing.TB) (*graph.Graph, *Index) {
	g := buildToy(t)
	mgs := toyMetagraphs()
	bld := NewBuilder(len(mgs))
	matcher := match.NewSymISO(g)
	for i, m := range mgs {
		bld.AddMetagraph(i, m, matcher)
	}
	return g, bld.Build()
}

func TestPairKey(t *testing.T) {
	k1 := MakePairKey(3, 7)
	k2 := MakePairKey(7, 3)
	if k1 != k2 {
		t.Fatal("PairKey not symmetric")
	}
	x, y := k1.Nodes()
	if x != 3 || y != 7 {
		t.Fatalf("Nodes = %d,%d", x, y)
	}
}

func TestToyVectors(t *testing.T) {
	g, ix := buildToyIndex(t)
	alice := g.NodeByName("Alice")
	bob := g.NodeByName("Bob")
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	tom := g.NodeByName("Tom")

	// Paper Fig. 1(b)/Fig. 2 ground truth:
	// Kate & Jay share one M1 instance (College B + Physics) and one M3
	// instance (456 White St).
	kj := ix.PairVec(kate, jay)
	if kj.Get(0) != 1 || kj.Get(2) != 1 || kj.Get(1) != 0 || kj.Get(3) != 0 {
		t.Fatalf("m_{Kate,Jay} = %v", kj)
	}
	// Alice & Kate share one M2 instance (Company X + Music).
	ak := ix.PairVec(alice, kate)
	if ak.Get(1) != 1 || ak.Get(0) != 0 || ak.Get(3) != 0 {
		t.Fatalf("m_{Alice,Kate} = %v", ak)
	}
	// Alice & Bob: one M4 (Clinton + Green St) and one M3 (Green St).
	ab := ix.PairVec(alice, bob)
	if ab.Get(3) != 1 || ab.Get(2) != 1 {
		t.Fatalf("m_{Alice,Bob} = %v", ab)
	}
	// Bob & Tom: one M1 (College A + Economics).
	bt := ix.PairVec(bob, tom)
	if bt.Get(0) != 1 {
		t.Fatalf("m_{Bob,Tom} = %v", bt)
	}
	// Kate & Tom share nothing.
	if v := ix.PairVec(kate, tom); v != nil {
		t.Fatalf("m_{Kate,Tom} = %v, want nil", v)
	}

	// m_x: Alice occurs symmetrically in M2 (once), M3 (once), M4 (once).
	ax := ix.NodeVec(alice)
	if ax.Get(1) != 1 || ax.Get(2) != 1 || ax.Get(3) != 1 || ax.Get(0) != 0 {
		t.Fatalf("m_Alice = %v", ax)
	}
	// Tom only occurs in M1.
	tx := ix.NodeVec(tom)
	if tx.Get(0) != 1 || tx.Get(1) != 0 {
		t.Fatalf("m_Tom = %v", tx)
	}
}

func TestPartners(t *testing.T) {
	g, ix := buildToyIndex(t)
	kate := g.NodeByName("Kate")
	got := ix.Partners(kate)
	// Kate co-occurs with Alice (M2) and Jay (M1, M3).
	want := map[graph.NodeID]bool{g.NodeByName("Alice"): true, g.NodeByName("Jay"): true}
	if len(got) != len(want) {
		t.Fatalf("Partners(Kate) = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected partner %d", v)
		}
	}
	if ix.NumPairs() == 0 {
		t.Fatal("NumPairs = 0")
	}
}

func TestDot(t *testing.T) {
	_, ix := buildToyIndex(t)
	if ix.NumMeta() != 4 {
		t.Fatalf("NumMeta = %d", ix.NumMeta())
	}
	v := SparseVec{{Meta: 0, Count: 2}, {Meta: 3, Count: 5}}
	w := []float64{0.5, 1, 1, 0.1}
	if got := v.Dot(w); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Dot = %f", got)
	}
	if v.Get(1) != 0 || v.Get(3) != 5 {
		t.Fatal("Get wrong")
	}
}

func TestTransform(t *testing.T) {
	g, ix := buildToyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	tr := ix.Transform(func(c float64) float64 { return math.Log1p(c) })
	if got := tr.PairVec(kate, jay).Get(0); math.Abs(got-math.Log1p(1)) > 1e-12 {
		t.Fatalf("transformed count = %f", got)
	}
	// Original untouched.
	if got := ix.PairVec(kate, jay).Get(0); got != 1 {
		t.Fatalf("original mutated: %f", got)
	}
}

func TestProject(t *testing.T) {
	g, ix := buildToyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	alice := g.NodeByName("Alice")

	// Keep only M3 (index 2) and M1 (index 0), renumbered to 0 and 1.
	p := ix.Project([]int{2, 0})
	if p.NumMeta() != 2 {
		t.Fatalf("NumMeta = %d", p.NumMeta())
	}
	kj := p.PairVec(kate, jay)
	if kj.Get(0) != 1 /* was M3 */ || kj.Get(1) != 1 /* was M1 */ {
		t.Fatalf("projected m_{Kate,Jay} = %v", kj)
	}
	// Alice–Kate only shared M2, which is projected away.
	if v := p.PairVec(alice, kate); v != nil {
		t.Fatalf("projected m_{Alice,Kate} = %v, want nil", v)
	}
	// Partners must reflect the projection: Kate's only partner is Jay now.
	if got := p.Partners(kate); len(got) != 1 || got[0] != jay {
		t.Fatalf("projected Partners(Kate) = %v", got)
	}
}

func TestAsymmetricMetagraphSkipped(t *testing.T) {
	g := buildToy(t)
	asym := metagraph.MustNew([]graph.TypeID{tUser, tSchool, tMajor},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	bld := NewBuilder(1)
	bld.AddMetagraph(0, asym, match.NewQuickSI(g))
	ix := bld.Build()
	if ix.NumPairs() != 0 {
		t.Fatalf("asymmetric metagraph produced %d pairs", ix.NumPairs())
	}
}

func TestMerge(t *testing.T) {
	g := buildToy(t)
	mgs := toyMetagraphs()
	matcher := match.NewSymISO(g)

	// Full index built at once.
	full := NewBuilder(len(mgs))
	for i, m := range mgs {
		full.AddMetagraph(i, m, matcher)
	}
	want := full.Build()

	// Same thing via per-metagraph parts and Merge.
	parts := make([]*Index, len(mgs))
	for i, m := range mgs {
		b := NewBuilder(1)
		b.AddMetagraph(0, m, matcher)
		parts[i] = b.Build()
	}
	got := Merge(parts...)

	if got.NumMeta() != want.NumMeta() {
		t.Fatalf("NumMeta %d != %d", got.NumMeta(), want.NumMeta())
	}
	if got.NumPairs() != want.NumPairs() {
		t.Fatalf("NumPairs %d != %d", got.NumPairs(), want.NumPairs())
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for u := v + 1; int(u) < g.NumNodes(); u++ {
			for i := 0; i < want.NumMeta(); i++ {
				if got.PairVec(v, u).Get(i) != want.PairVec(v, u).Get(i) {
					t.Fatalf("pair (%d,%d) meta %d differs", v, u, i)
				}
			}
		}
		for i := 0; i < want.NumMeta(); i++ {
			if got.NodeVec(v).Get(i) != want.NodeVec(v).Get(i) {
				t.Fatalf("node %d meta %d differs", v, i)
			}
		}
		a, b := got.Partners(v), want.Partners(v)
		if len(a) != len(b) {
			t.Fatalf("partners of %d differ: %v vs %v", v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("partners of %d differ: %v vs %v", v, a, b)
			}
		}
	}
}

// TestBuilderOutOfOrderAddMetagraph pins Build's row normalization: rows
// accumulated by descending-index AddMetagraph calls are unsorted and must
// freeze to the same index as an ascending build — with coalescing
// confined to each row (a row's first entry must never merge into the
// previous key's tail).
func TestBuilderOutOfOrderAddMetagraph(t *testing.T) {
	g := buildToy(t)
	mgs := toyMetagraphs()
	matcher := match.NewSymISO(g)

	asc := NewBuilder(len(mgs))
	for i, m := range mgs {
		asc.AddMetagraph(i, m, matcher)
	}
	want := asc.Build()

	desc := NewBuilder(len(mgs))
	for i := len(mgs) - 1; i >= 0; i-- {
		desc.AddMetagraph(i, mgs[i], matcher)
	}
	got := desc.Build()

	if !bytes.Equal(writeBytes(t, got), writeBytes(t, want)) {
		t.Fatal("out-of-order build differs from ascending build")
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge()
	if m.NumMeta() != 0 || m.NumPairs() != 0 {
		t.Fatal("empty merge not empty")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g, ix := buildToyIndex(t)
	var buf bytes.Buffer
	if err := Write(&buf, ix); err != nil {
		t.Fatalf("Write: %v", err)
	}
	raw := append([]byte(nil), buf.Bytes()...) // Read drains the buffer
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumMeta() != ix.NumMeta() || got.NumPairs() != ix.NumPairs() {
		t.Fatal("round trip changed shape")
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for i := 0; i < ix.NumMeta(); i++ {
			if got.NodeVec(v).Get(i) != ix.NodeVec(v).Get(i) {
				t.Fatalf("node %d meta %d differs", v, i)
			}
		}
		for u := v + 1; int(u) < g.NumNodes(); u++ {
			for i := 0; i < ix.NumMeta(); i++ {
				if got.PairVec(v, u).Get(i) != ix.PairVec(v, u).Get(i) {
					t.Fatalf("pair (%d,%d) differs", v, u)
				}
			}
		}
		a, b := got.Partners(v), ix.Partners(v)
		if len(a) != len(b) {
			t.Fatalf("partners of %d differ", v)
		}
	}
	// Byte-stable output.
	var buf2 bytes.Buffer
	if err := Write(&buf2, ix); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Fatal("serialization not deterministic")
	}
}

var (
	sinkVec      SparseVec
	sinkPartners []graph.NodeID
	sinkFloat    float64
)

// TestZeroAllocReads pins the online-phase contract: reading vectors out
// of the frozen CSR index and dotting them against a weight vector must
// not allocate.
func TestZeroAllocReads(t *testing.T) {
	g, ix := buildToyIndex(t)
	kate := g.NodeByName("Kate")
	jay := g.NodeByName("Jay")
	w := make([]float64, ix.NumMeta())
	for i := range w {
		w[i] = float64(i + 1)
	}
	v := ix.PairVec(kate, jay)
	if len(v) == 0 {
		t.Fatal("empty test vector")
	}
	checks := []struct {
		name string
		fn   func()
	}{
		{"NodeVec", func() { sinkVec = ix.NodeVec(kate) }},
		{"PairVec", func() { sinkVec = ix.PairVec(kate, jay) }},
		{"Partners", func() { sinkPartners = ix.Partners(kate) }},
		{"SparseVec.Dot", func() { sinkFloat = v.Dot(w) }},
		{"SparseVec.Get", func() { sinkFloat = v.Get(2) }},
	}
	for _, c := range checks {
		if allocs := testing.AllocsPerRun(200, c.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f allocs/op, want 0", c.name, allocs)
		}
	}
}

func TestIndexReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("Read accepted garbage")
	}
}

// TestIndexReadRejectsCorruptTables feeds structurally plausible but
// invariant-violating files through Read; each must fail loudly instead of
// panicking later at query time.
func TestIndexReadRejectsCorruptTables(t *testing.T) {
	cases := []struct {
		name string
		s    serIndex
	}{
		{"meta out of range", serIndex{
			Version: serVersion, NumMeta: 1,
			MxKeys: []graph.NodeID{1}, MxOff: []int32{0, 1}, MxEnt: []Entry{{Meta: 5, Count: 1}},
		}},
		{"negative meta", serIndex{
			Version: serVersion, NumMeta: 2,
			MxKeys: []graph.NodeID{1}, MxOff: []int32{0, 1}, MxEnt: []Entry{{Meta: -1, Count: 1}},
		}},
		{"unsorted keys", serIndex{
			Version: serVersion, NumMeta: 1,
			MxKeys: []graph.NodeID{4, 2}, MxOff: []int32{0, 1, 2},
			MxEnt: []Entry{{Meta: 0, Count: 1}, {Meta: 0, Count: 1}},
		}},
		{"offset mismatch", serIndex{
			Version: serVersion, NumMeta: 1,
			MxKeys: []graph.NodeID{1}, MxOff: []int32{0, 2}, MxEnt: []Entry{{Meta: 0, Count: 1}},
		}},
		{"unsorted row", serIndex{
			Version: serVersion, NumMeta: 4,
			MxKeys: []graph.NodeID{1}, MxOff: []int32{0, 2},
			MxEnt: []Entry{{Meta: 3, Count: 1}, {Meta: 1, Count: 1}},
		}},
		{"negative numMeta", serIndex{Version: serVersion, NumMeta: -1}},
		{"bad version", serIndex{Version: 1}},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&c.s); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(&buf); err == nil {
			t.Errorf("%s: Read accepted corrupt file", c.name)
		}
	}
}
