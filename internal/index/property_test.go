// External test package: the property test builds indices over the
// synthetic LinkedIn dataset, whose package transitively imports index —
// an in-package test would be an import cycle.
package index_test

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/mining"
)

func serialize(t testing.TB, ix *index.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := index.Write(&buf, ix); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelBuildMatchesSerial is the parallel/serial equivalence
// property: building the offline index with any worker count must be
// byte-for-byte identical to the one-builder serial build — same NodeVec,
// PairVec and Partners for every key.
func TestParallelBuildMatchesSerial(t *testing.T) {
	ds := dataset.LinkedIn(dataset.Config{Users: 200, Seed: 7, NoiseRate: 0.05})
	pats := mining.ProximityFilter(
		mining.Mine(ds.G, mining.Options{MaxNodes: 4, MinSupport: 5}), ds.Anchor)
	ms := mining.Metagraphs(pats)
	if len(ms) < 4 {
		t.Fatalf("only %d metagraphs mined; dataset too small to exercise parallelism", len(ms))
	}

	serial := index.NewBuilder(len(ms))
	matcher := match.NewSymISO(ds.G)
	for i, m := range ms {
		serial.AddMetagraph(i, m, matcher)
	}
	want := serial.Build()
	wantBytes := serialize(t, want)

	for _, workers := range []int{1, 2, 8} {
		got := index.BuildParallel(ms,
			func() match.Matcher { return match.NewSymISO(ds.G) }, workers)
		if got.NumMeta() != want.NumMeta() {
			t.Fatalf("workers=%d: NumMeta %d != %d", workers, got.NumMeta(), want.NumMeta())
		}
		if !bytes.Equal(serialize(t, got), wantBytes) {
			t.Fatalf("workers=%d: parallel index differs from serial build", workers)
		}
		// Partners are rebuilt, not serialized; compare them explicitly.
		for v := graph.NodeID(0); int(v) < ds.G.NumNodes(); v++ {
			a, b := got.Partners(v), want.Partners(v)
			if len(a) != len(b) {
				t.Fatalf("workers=%d: partners of %d differ: %v vs %v", workers, v, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: partners of %d differ: %v vs %v", workers, v, a, b)
				}
			}
		}
	}
}
