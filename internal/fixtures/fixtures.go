// Package fixtures provides the paper's running example — the toy social
// network of Fig. 1(a) and the metagraphs M1–M5 of Fig. 2 and Fig. 5 — for
// tests, examples, and documentation across the repository.
package fixtures

import (
	"repro/internal/graph"
	"repro/internal/metagraph"
)

// Type ids of the toy graph, fixed by registration order in Toy.
const (
	TUser graph.TypeID = iota
	TSurname
	TAddress
	TSchool
	TMajor
	TEmployer
	THobby
)

// TypeNames lists the toy type names in TypeID order.
var TypeNames = []string{"user", "surname", "address", "school", "major", "employer", "hobby"}

// Toy builds the toy social network of Fig. 1(a): five users (Alice, Bob,
// Kate, Jay, Tom) interconnected through shared attribute nodes.
func Toy() *graph.Graph {
	b := graph.NewBuilder()
	for _, n := range TypeNames {
		b.Types().Register(n)
	}
	alice := b.AddNodeOnce("user", "Alice")
	bob := b.AddNodeOnce("user", "Bob")
	kate := b.AddNodeOnce("user", "Kate")
	jay := b.AddNodeOnce("user", "Jay")
	tom := b.AddNodeOnce("user", "Tom")
	clinton := b.AddNodeOnce("surname", "Clinton")
	green := b.AddNodeOnce("address", "123 Green St")
	white := b.AddNodeOnce("address", "456 White St")
	collegeA := b.AddNodeOnce("school", "College A")
	collegeB := b.AddNodeOnce("school", "College B")
	econ := b.AddNodeOnce("major", "Economics")
	physics := b.AddNodeOnce("major", "Physics")
	companyX := b.AddNodeOnce("employer", "Company X")
	music := b.AddNodeOnce("hobby", "Music")
	for _, e := range [][2]graph.NodeID{
		{alice, clinton}, {bob, clinton},
		{alice, green}, {bob, green},
		{kate, white}, {jay, white},
		{bob, collegeA}, {tom, collegeA},
		{kate, collegeB}, {jay, collegeB},
		{bob, econ}, {tom, econ},
		{kate, physics}, {jay, physics},
		{alice, companyX}, {kate, companyX},
		{alice, music}, {kate, music},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

// M1 is Fig. 2(a): two users sharing a school and a major (classmate).
func M1() *metagraph.Metagraph {
	return metagraph.MustNew([]graph.TypeID{TUser, TUser, TSchool, TMajor},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
}

// M2 is Fig. 2(b) left: two users sharing an employer and a hobby (close
// friend).
func M2() *metagraph.Metagraph {
	return metagraph.MustNew([]graph.TypeID{TUser, TUser, TEmployer, THobby},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
}

// M3 is Fig. 2(b) right: the metapath user–address–user (close friend).
func M3() *metagraph.Metagraph {
	return metagraph.MustNew([]graph.TypeID{TUser, TAddress, TUser},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
}

// M4 is Fig. 2(c): two users sharing a surname and an address (family).
func M4() *metagraph.Metagraph {
	return metagraph.MustNew([]graph.TypeID{TUser, TUser, TSurname, TAddress},
		[]metagraph.Edge{{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}})
}

// M5 is Fig. 5: the six-node metagraph whose components {u1,u2} and
// {u5,u6} are jointly symmetric.
func M5() *metagraph.Metagraph {
	return metagraph.MustNew(
		[]graph.TypeID{TUser, TMajor, TSchool, TUser, TUser, TMajor},
		[]metagraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 2, V: 5}})
}

// All returns M1–M4, the metagraph set used by most toy-level tests.
func All() []*metagraph.Metagraph {
	return []*metagraph.Metagraph{M1(), M2(), M3(), M4()}
}
