package experiments

import (
	"fmt"
	"sort"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
)

// Figs. 6 and 7: NDCG@10 / MAP@10 of MGP, MPP, MGP-U, MGP-B and SRW as the
// number of training examples |Ω| grows, averaged over random splits and
// the dataset's two classes are reported separately — exactly the four
// panels of each figure.

// algoOrder is the legend order of Figs. 6–7.
var algoOrder = []string{"MGP", "MPP", "MGP-U", "MGP-B", "SRW"}

type accuracyCell struct {
	NDCG, MAP float64
}

type accuracyResults struct {
	// byClass[class][algo][|Ω|] = averaged result
	byClass map[string]map[string]map[int]accuracyCell
}

// accuracyFor computes (and caches) the full accuracy sweep for a dataset.
func (s *Suite) accuracyFor(name string) *accuracyResults {
	if r, ok := s.accuracy[name]; ok {
		return r
	}
	p := s.Pipeline(name)
	res := &accuracyResults{byClass: make(map[string]map[string]map[int]accuracyCell)}

	for _, class := range classesOf(p) {
		labels := p.DS.Classes[class]
		splits := s.classSplits(p, class)
		perAlgo := make(map[string]map[int]accuracyCell)
		for _, a := range algoOrder {
			perAlgo[a] = make(map[int]accuracyCell)
		}

		for si, split := range splits {
			for _, nEx := range s.Cfg.ExampleSizes {
				examples := s.trainExamples(p, class, split, nEx, s.Cfg.Seed+int64(1000*si+nEx))

				rankers := []eval.Ranker{
					baselines.NewMGP(p.Index, examples, s.Cfg.Train),
					s.mppRanker(p, examples),
					baselines.NewMGPU(p.Index),
					baselines.NewMGPB(p.Index, examples),
					baselines.NewSRW(p.DS.G, p.DS.Anchor, examples, srwOptions()),
				}
				for _, r := range rankers {
					got := eval.Evaluate(r, labels, split.Test, s.Cfg.TopK)
					cell := perAlgo[r.Name()][nEx]
					cell.NDCG += got.NDCG / float64(len(splits))
					cell.MAP += got.MAP / float64(len(splits))
					perAlgo[r.Name()][nEx] = cell
				}
			}
		}
		res.byClass[class] = perAlgo
	}
	s.accuracy[name] = res
	return res
}

func (s *Suite) mppRanker(p *Pipeline, examples []core.Example) eval.Ranker {
	r, _ := baselines.NewMPP(p.Ms, p.Index, examples, s.Cfg.Train)
	return r
}

func srwOptions() baselines.SRWOptions {
	o := baselines.DefaultSRW()
	// Keep the walk affordable inside the sweep; accuracy plateaus well
	// before this on the synthetic graphs. The query cap bounds the
	// per-step PageRank+derivative recomputations, which dominate SRW.
	o.Steps = 15
	o.Iterations = 10
	o.MaxQueries = 25
	return o
}

// accuracyReport renders one metric of the sweep across both datasets.
func (s *Suite) accuracyReport(title string, pick func(accuracyCell) float64) Report {
	rep := Report{
		Title:  title,
		Header: []string{"dataset", "class", "algorithm"},
	}
	sizes := s.Cfg.ExampleSizes
	for _, n := range sizes {
		rep.Header = append(rep.Header, fmt.Sprintf("|Ω|=%d", n))
	}
	for _, name := range s.DatasetNames() {
		res := s.accuracyFor(name)
		classes := make([]string, 0, len(res.byClass))
		for c := range res.byClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, class := range classes {
			for _, algo := range algoOrder {
				row := []string{name, class, algo}
				for _, n := range sizes {
					row = append(row, f3(pick(res.byClass[class][algo][n])))
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("averaged over %d random 20/80 train-test splits, top-%d ranking", s.Cfg.Splits, s.Cfg.TopK))
	return rep
}

// Fig6 reproduces Fig. 6: NDCG@10 vs |Ω|.
func (s *Suite) Fig6() Report {
	return s.accuracyReport("Fig. 6 — NDCG of MGP and baselines", func(c accuracyCell) float64 { return c.NDCG })
}

// Fig7 reproduces Fig. 7: MAP@10 vs |Ω|.
func (s *Suite) Fig7() Report {
	return s.accuracyReport("Fig. 7 — MAP of MGP and baselines", func(c accuracyCell) float64 { return c.MAP })
}
