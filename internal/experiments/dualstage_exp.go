package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
)

// candidateSweep returns the |K| values for a dataset: either the
// configured sweep or quartiles of the non-seed metagraph count.
func (s *Suite) candidateSweep(name string) []int {
	if s.Cfg.CandidateSweep != nil {
		if sw, ok := s.Cfg.CandidateSweep[name]; ok {
			return sw
		}
	}
	p := s.Pipeline(name)
	nonSeeds := len(p.Ms) - len(core.Seeds(p.Ms))
	var sweep []int
	for _, frac := range []float64{0.1, 0.25, 0.5} {
		k := int(frac * float64(nonSeeds))
		if k > 0 {
			sweep = append(sweep, k)
		}
	}
	return sweep
}

// dualStagePoint measures accuracy and matching time for one dual-stage
// configuration of a class.
type dualStagePoint struct {
	K         int
	NDCG, MAP float64
	MatchSec  float64
}

// dualStageSweep evaluates seed-only (K=0), the |K| sweep, and
// all-metagraphs for one class, averaged over splits. Results are cached:
// Fig. 8 and Fig. 10 share the forward (CH) sweep.
func (s *Suite) dualStageSweep(name, class string, reverse bool) []dualStagePoint {
	key := fmt.Sprintf("%s/%s/%v", name, class, reverse)
	if pts, ok := s.sweeps[key]; ok {
		return pts
	}
	pts := s.dualStageSweepUncached(name, class, reverse)
	s.sweeps[key] = pts
	return pts
}

func (s *Suite) dualStageSweepUncached(name, class string, reverse bool) []dualStagePoint {
	p := s.Pipeline(name)
	labels := p.DS.Classes[class]
	splits := s.classSplits(p, class)
	seedIdx := core.Seeds(p.Ms)
	allIdx := make([]int, len(p.Ms))
	for i := range allIdx {
		allIdx[i] = i
	}

	ks := append([]int{0}, s.candidateSweep(name)...)
	ks = append(ks, len(p.Ms)-len(seedIdx)) // "all"
	points := make([]dualStagePoint, len(ks))
	for i, k := range ks {
		points[i].K = k
	}

	for si, split := range splits {
		examples := s.trainExamples(p, class, split, s.Cfg.TrainExamples, s.Cfg.Seed+int64(400+si))
		for pi, k := range ks {
			var kept []int
			var w []float64
			if k == len(p.Ms)-len(seedIdx) {
				// All metagraphs: ordinary training, full matching cost.
				model := core.Train(p.Index, examples, s.Cfg.Train)
				kept, w = allIdx, model.W
			} else {
				opts := core.DualStageOptions{
					NumCandidates: k,
					Stages:        1,
					Reverse:       reverse,
					Train:         s.Cfg.Train,
				}
				res := core.DualStage(p.Ms, matchFnFor(p), examples, opts)
				kept, w = res.Kept, res.Model.W
			}
			ranker := &baselines.MGPRanker{Label: "MGP", Ix: p.Index.Project(kept), W: w}
			got := eval.Evaluate(ranker, labels, split.Test, s.Cfg.TopK)
			points[pi].NDCG += got.NDCG / float64(len(splits))
			points[pi].MAP += got.MAP / float64(len(splits))
			points[pi].MatchSec = s.Pipeline(name).SubsetMatchTime(kept).Seconds()
		}
	}
	return points
}

// Fig8 reproduces Fig. 8: the relative increase in NDCG, MAP and matching
// time as |K| grows, scaled so seed-only is 0% and all-metagraphs is 100%.
func (s *Suite) Fig8() Report {
	rep := Report{
		Title:  "Fig. 8 — Impact of dual-stage training (percentage increase)",
		Header: []string{"dataset", "class", "|K|", "NDCG%", "MAP%", "Time%"},
	}
	for _, name := range s.DatasetNames() {
		p := s.Pipeline(name)
		for _, class := range classesOf(p) {
			pts := s.dualStageSweep(name, class, false)
			base, full := pts[0], pts[len(pts)-1]
			pct := func(v, lo, hi float64) string {
				if hi == lo {
					return "-"
				}
				return f1(100 * (v - lo) / (hi - lo))
			}
			for _, pt := range pts {
				label := fmt.Sprintf("%d", pt.K)
				if pt.K == full.K {
					label = "all"
				}
				rep.Rows = append(rep.Rows, []string{
					name, class, label,
					pct(pt.NDCG, base.NDCG, full.NDCG),
					pct(pt.MAP, base.MAP, full.MAP),
					pct(pt.MatchSec, base.MatchSec, full.MatchSec),
				})
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"accuracy should approach 100% at small |K| while time stays far below 100% (paper: −83% overall matching time)")
	return rep
}

// Fig10 reproduces Fig. 10: absolute NDCG/MAP of the candidate heuristic
// (CH) against its reverse (RCH) across the |K| sweep.
func (s *Suite) Fig10() Report {
	rep := Report{
		Title:  "Fig. 10 — Candidate heuristic (CH) vs reverse (RCH)",
		Header: []string{"dataset", "class", "|K|", "CH NDCG", "RCH NDCG", "CH MAP", "RCH MAP"},
	}
	for _, name := range s.DatasetNames() {
		p := s.Pipeline(name)
		for _, class := range classesOf(p) {
			ch := s.dualStageSweep(name, class, false)
			rch := s.dualStageSweep(name, class, true)
			// Skip the K=0 and "all" endpoints: CH and RCH coincide there.
			for i := 1; i < len(ch)-1; i++ {
				rep.Rows = append(rep.Rows, []string{
					name, class, fmt.Sprintf("%d", ch[i].K),
					f3(ch[i].NDCG), f3(rch[i].NDCG),
					f3(ch[i].MAP), f3(rch[i].MAP),
				})
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"CH should dominate RCH at every |K| (paper Fig. 10)")
	return rep
}
