package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/metagraph"
	"repro/internal/mining"
)

// Config scales the experiment suite. Defaults run the full suite on one
// laptop core in minutes; raise the sizes to approach the paper's scale.
type Config struct {
	LinkedInUsers int
	FacebookUsers int
	Seed          int64

	// Splits is the number of random train/test splits results are
	// averaged over (the paper uses 10).
	Splits int
	// ExampleSizes is the |Ω| sweep of Figs. 6–7 (paper: 10..1000).
	ExampleSizes []int
	// TrainExamples is |Ω| for the single-model experiments (Fig. 4,
	// Table III, Figs. 8–10); the paper uses 1000.
	TrainExamples int
	// TopK is the ranking cutoff (paper: 10).
	TopK int
	// CandidateSweep lists the |K| values of Figs. 8 and 10 per dataset
	// name; nil picks a sweep from the metagraph count.
	CandidateSweep map[string][]int

	// Workers bounds the goroutines used for offline metagraph matching
	// when building pipelines; values < 1 mean one worker per CPU. The
	// built index is identical for every worker count.
	Workers int

	Train  core.TrainOptions
	Mining mining.Options
	SRW    SRWConfigFn
}

// SRWConfigFn lets callers tune SRW per dataset; nil uses defaults.
type SRWConfigFn func(datasetName string) map[string]float64

// DefaultConfig returns the laptop-scale configuration. The learning rate
// is raised from the paper's γ=10 to 50, which reaches the same optima in
// ~4× fewer iterations (gradient ascent on a scale-invariant objective is
// insensitive to the exact rate once it converges; see EXPERIMENTS.md).
func DefaultConfig() Config {
	tr := core.DefaultTrain()
	tr.Restarts = 3
	tr.LearningRate = 50
	tr.MaxIters = 1500
	return Config{
		LinkedInUsers: 600,
		FacebookUsers: 400,
		Seed:          1,
		Splits:        3,
		ExampleSizes:  []int{10, 100, 1000},
		TrainExamples: 1000,
		TopK:          10,
		Train:         tr,
		Mining:        mining.Options{MaxNodes: 4, MinSupport: 8},
	}
}

// Pipeline holds the offline artifacts of one dataset: mined metagraphs,
// per-metagraph match times, and the full vector index (Fig. 3's offline
// phase), so every experiment reuses them.
type Pipeline struct {
	DS       *dataset.Dataset
	Patterns []mining.Pattern
	Ms       []*metagraph.Metagraph

	MineTime   time.Duration
	MatchTimes []time.Duration // per metagraph, SymISO
	MatchTime  time.Duration   // sum of MatchTimes (attribution basis)
	// MatchWall is the elapsed wall time of the whole match phase. Serial
	// builds have MatchWall ≈ MatchTime; parallel builds have MatchWall
	// below it, and Table III reports MatchWall so its "matching" column
	// stays an elapsed offline cost comparable to the paper.
	MatchWall time.Duration

	Index *index.Index
}

// BuildPipeline mines, matches and indexes one dataset, fanning matching
// out over the given number of workers (< 1 means one per CPU). Per-worker
// SymISO matchers fill one single-metagraph part index each; the parts
// merge by metagraph offset, so the pipeline index is identical to a
// serial build. Per-metagraph match times remain attributable for
// SubsetMatchTime.
func BuildPipeline(ds *dataset.Dataset, mopts mining.Options, workers int) *Pipeline {
	p := &Pipeline{DS: ds}

	start := time.Now()
	all := mining.Mine(ds.G, mopts)
	p.Patterns = mining.ProximityFilter(all, ds.Anchor)
	p.MineTime = time.Since(start)
	p.Ms = mining.Metagraphs(p.Patterns)

	t0 := time.Now()
	parts, times := index.MatchParts(p.Ms,
		func() match.Matcher { return match.NewSymISO(ds.G) }, workers)
	p.MatchWall = time.Since(t0)
	p.MatchTimes = times
	for _, t := range times {
		p.MatchTime += t
	}
	p.Index = index.Merge(parts...)
	return p
}

// SubsetMatchTime returns the matching time attributable to the given
// metagraph subset (used to cost dual-stage configurations without
// re-matching).
func (p *Pipeline) SubsetMatchTime(indices []int) time.Duration {
	var t time.Duration
	for _, i := range indices {
		t += p.MatchTimes[i]
	}
	return t
}

// Suite lazily builds and caches the pipelines and shared per-class
// artifacts used across experiments.
type Suite struct {
	Cfg       Config
	pipelines map[string]*Pipeline
	accuracy  map[string]*accuracyResults // per dataset
	fullW     map[string][]float64        // per dataset/class: weights on all metagraphs
	sweeps    map[string][]dualStagePoint // per dataset/class/direction
}

// NewSuite returns an empty suite for cfg.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		Cfg:       cfg,
		pipelines: make(map[string]*Pipeline),
		accuracy:  make(map[string]*accuracyResults),
		fullW:     make(map[string][]float64),
		sweeps:    make(map[string][]dualStagePoint),
	}
}

// DatasetNames returns the datasets in report order.
func (s *Suite) DatasetNames() []string { return []string{"LinkedIn", "Facebook"} }

// Pipeline returns (building on first use) the pipeline for the dataset.
func (s *Suite) Pipeline(name string) *Pipeline {
	if p, ok := s.pipelines[name]; ok {
		return p
	}
	var ds *dataset.Dataset
	switch name {
	case "LinkedIn":
		ds = dataset.LinkedIn(dataset.Config{Users: s.Cfg.LinkedInUsers, Seed: s.Cfg.Seed, NoiseRate: 0.05})
	case "Facebook":
		ds = dataset.Facebook(dataset.Config{Users: s.Cfg.FacebookUsers, Seed: s.Cfg.Seed + 1, NoiseRate: 0.05})
	default:
		panic("experiments: unknown dataset " + name)
	}
	p := BuildPipeline(ds, s.Cfg.Mining, s.Cfg.Workers)
	s.pipelines[name] = p
	return p
}

// classSplits returns the query splits for one class.
func (s *Suite) classSplits(p *Pipeline, class string) []eval.Split {
	queries := p.DS.Classes[class].Queries()
	return eval.Splits(queries, 0.2, s.Cfg.Splits, s.Cfg.Seed+100)
}

// trainExamples samples |Ω| triplets from a split's training queries,
// drawing half of the negatives from the query's co-occurrence partners
// (hard negatives) — the pairs the online ranking actually discriminates.
func (s *Suite) trainExamples(p *Pipeline, class string, split eval.Split, n int, seed int64) []core.Example {
	return eval.MakeExamplesHard(p.DS.Classes[class], split.Train, p.DS.Users(),
		p.Index.Partners, 0.5, n, seed)
}

// fullWeights trains (once, cached) the all-metagraph MGP model for a
// class on the first split with TrainExamples triplets; Figs. 4 and 9 use
// these weights.
func (s *Suite) fullWeights(name, class string) []float64 {
	key := name + "/" + class
	if w, ok := s.fullW[key]; ok {
		return w
	}
	p := s.Pipeline(name)
	split := s.classSplits(p, class)[0]
	ex := s.trainExamples(p, class, split, s.Cfg.TrainExamples, s.Cfg.Seed+200)
	model := core.Train(p.Index, ex, s.Cfg.Train)
	s.fullW[key] = model.W
	return model.W
}

// classesOf returns the class names of a dataset in report order.
func classesOf(p *Pipeline) []string { return p.DS.ClassNames() }

// matchFnFor adapts index projection as the dual-stage MatchFunc: the
// suite has pre-matched everything, so "matching a subset" is a projection
// whose *cost* is accounted separately via SubsetMatchTime.
func matchFnFor(p *Pipeline) core.MatchFunc {
	return func(indices []int) *index.Index { return p.Index.Project(indices) }
}
