package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mcs"
)

// Fig4 reproduces Fig. 4: the optimal characteristic weights of every
// class, ranked in descending order — the long-tailed sparsity that
// motivates dual-stage training. Each row samples the ranked weight curve.
func (s *Suite) Fig4() Report {
	rep := Report{
		Title:  "Fig. 4 — Sparsity of optimal characteristic weights",
		Header: []string{"dataset", "class", "top1", "p25", "p50", "p75", "last", ">=0.5", "<0.1"},
	}
	for _, name := range s.DatasetNames() {
		p := s.Pipeline(name)
		for _, class := range classesOf(p) {
			w := append([]float64(nil), s.fullWeights(name, class)...)
			sort.Sort(sort.Reverse(sort.Float64Slice(w)))
			n := len(w)
			if n == 0 {
				continue
			}
			at := func(frac float64) float64 { return w[int(frac*float64(n-1))] }
			high, low := 0, 0
			for _, v := range w {
				if v >= 0.5 {
					high++
				}
				if v < 0.1 {
					low++
				}
			}
			rep.Rows = append(rep.Rows, []string{
				name, class,
				f3(w[0]), f3(at(0.25)), f3(at(0.5)), f3(at(0.75)), f3(w[n-1]),
				fmt.Sprintf("%d/%d", high, n),
				fmt.Sprintf("%d/%d", low, n),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"long tail expected: few large weights, many near zero (paper Fig. 4)")
	return rep
}

// Fig9 reproduces Fig. 9: correlation between pairwise structural
// similarity SS and functional similarity FS, with SS binned into five
// intervals and the mean FS reported per bin and class.
func (s *Suite) Fig9() Report {
	bins := []struct {
		lo, hi float64
		label  string
	}{
		{0.0, 0.2, "[0,0.2)"},
		{0.2, 0.4, "[0.2,0.4)"},
		{0.4, 0.6, "[0.4,0.6)"},
		{0.6, 0.8, "[0.6,0.8)"},
		{0.8, 1.0001, "[0.8,1]"},
	}
	rep := Report{
		Title:  "Fig. 9 — Correlation of structural and functional similarities",
		Header: []string{"dataset", "class"},
	}
	for _, b := range bins {
		rep.Header = append(rep.Header, b.label)
	}
	for _, name := range s.DatasetNames() {
		p := s.Pipeline(name)
		// Pairwise SS is class-independent; compute once per dataset.
		n := len(p.Ms)
		ss := make([][]float64, n)
		for i := 0; i < n; i++ {
			ss[i] = make([]float64, n)
			for j := i + 1; j < n; j++ {
				ss[i][j] = mcs.StructuralSimilarity(p.Ms[i], p.Ms[j])
			}
		}
		for _, class := range classesOf(p) {
			w := s.fullWeights(name, class)
			sums := make([]float64, len(bins))
			counts := make([]int, len(bins))
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					fs := core.FunctionalSimilarity(w[i], w[j])
					for bi, b := range bins {
						if ss[i][j] >= b.lo && ss[i][j] < b.hi {
							sums[bi] += fs
							counts[bi]++
							break
						}
					}
				}
			}
			row := []string{name, class}
			for bi := range bins {
				if counts[bi] == 0 {
					row = append(row, "-")
				} else {
					row = append(row, f3(sums[bi]/float64(counts[bi])))
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"mean FS should rise with the SS bin (paper Fig. 9), supporting the candidate heuristic")
	return rep
}
