// Package experiments regenerates every table and figure of the paper's
// evaluation (Sect. V) on the synthetic datasets: Table II (datasets),
// Figs. 6–7 (accuracy vs training examples), Table III (time costs),
// Fig. 4 (weight sparsity), Fig. 8 (dual-stage impact), Fig. 9 (SS/FS
// correlation), Fig. 10 (CH vs RCH), and Fig. 11 (matching engines).
// Absolute numbers differ from the paper (different hardware, synthetic
// data, reduced scale); the shapes are the reproduction target — see
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Report is a printable experiment result: a titled text table with the
// same rows/series the paper reports.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
