package experiments

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/metagraph"
)

// Fig11 reproduces Fig. 11: average matching time per metagraph, grouped
// by metagraph size |V_M|, for SymISO, SymISO-R, BoostISO, TurboISO and
// QuickSI. Engines are rebuilt per dataset (their per-graph precomputation
// is excluded from the timings, matching how the baselines' index build is
// treated in the paper).
func (s *Suite) Fig11() Report {
	rep := Report{
		Title:  "Fig. 11 — Average matching time per metagraph (ms)",
		Header: []string{"dataset", "|V_M|", "#mg", "SymISO", "SymISO-R", "BoostISO", "TurboISO", "QuickSI"},
	}
	for _, name := range s.DatasetNames() {
		p := s.Pipeline(name)
		g := p.DS.G
		engines := []match.Matcher{
			match.NewSymISO(g),
			match.NewSymISOR(g, s.Cfg.Seed),
			match.NewBoostISO(g),
			match.NewTurboISO(g),
			match.NewQuickSI(g),
		}
		bySize := make(map[int][]*metagraph.Metagraph)
		for _, m := range p.Ms {
			bySize[m.N()] = append(bySize[m.N()], m)
		}
		for size := 3; size <= 5; size++ {
			ms := bySize[size]
			if len(ms) == 0 {
				continue
			}
			// Cap the per-size sample to keep the figure affordable while
			// averaging over enough metagraphs to be stable.
			if len(ms) > 24 {
				ms = ms[:24]
			}
			row := []string{name, fmt.Sprintf("%d", size), fmt.Sprintf("%d", len(ms))}
			for _, eng := range engines {
				var total time.Duration
				for _, m := range ms {
					t0 := time.Now()
					eng.Match(m, func([]graph.NodeID) bool { return true })
					total += time.Since(t0)
				}
				row = append(row, fmt.Sprintf("%.2f", total.Seconds()*1000/float64(len(ms))))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"SymISO should beat every backtracking baseline, with a growing margin as |V_M| rises (paper: −52% vs best baseline, ~45% vs SymISO-R)")
	return rep
}

// All runs every experiment in paper order.
func (s *Suite) All() []Report {
	return []Report{
		s.Table2(),
		s.Fig4(),
		s.Fig6(),
		s.Fig7(),
		s.Table3(),
		s.Fig8(),
		s.Fig9(),
		s.Fig10(),
		s.Fig11(),
	}
}
