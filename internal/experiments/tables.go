package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mining"
)

// Table2 reproduces Table II: per-dataset #nodes, #edges, #types,
// #metagraphs (after the proximity filter) and #queries per class.
func (s *Suite) Table2() Report {
	rep := Report{
		Title:  "Table II — Description of datasets",
		Header: []string{"dataset", "#Nodes", "#Edges", "#Types", "#Metagraphs", "#Queries"},
	}
	for _, name := range s.DatasetNames() {
		p := s.Pipeline(name)
		st := graph.ComputeStats(p.DS.G)
		queries := ""
		for i, class := range classesOf(p) {
			if i > 0 {
				queries += ", "
			}
			queries += fmt.Sprintf("%d (%s)", len(p.DS.Classes[class].Queries()), class)
		}
		rep.Rows = append(rep.Rows, []string{
			name,
			fmt.Sprintf("%d", st.Nodes),
			fmt.Sprintf("%d", st.Edges),
			fmt.Sprintf("%d", st.Types),
			fmt.Sprintf("%d", len(p.Ms)),
			queries,
		})
	}
	for _, name := range s.DatasetNames() {
		p := s.Pipeline(name)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: %d of %d metagraphs are metapaths (%.1f%%; paper reports 2–3%%)",
			name, mining.CountPaths(p.Patterns), len(p.Patterns),
			100*float64(mining.CountPaths(p.Patterns))/float64(max(1, len(p.Patterns)))))
	}
	return rep
}

// Table3 reproduces Table III: time spent by mining, matching (all
// metagraphs, SymISO), training with TrainExamples examples, and testing
// per query.
func (s *Suite) Table3() Report {
	rep := Report{
		Title:  "Table III — Time costs without dual-stage training (sec)",
		Header: []string{"dataset", "Mining", "Matching", "Training", "Testing/query"},
	}
	for _, name := range s.DatasetNames() {
		p := s.Pipeline(name)
		class := classesOf(p)[0]
		split := s.classSplits(p, class)[0]
		examples := s.trainExamples(p, class, split, s.Cfg.TrainExamples, s.Cfg.Seed+300)

		t0 := time.Now()
		model := core.Train(p.Index, examples, s.Cfg.Train)
		trainTime := time.Since(t0)

		// Testing: average online ranking latency over the test queries.
		ranker := &baselines.MGPRanker{Label: "MGP", Ix: p.Index, W: model.W}
		nq := len(split.Test)
		t1 := time.Now()
		for _, q := range split.Test {
			ranker.Rank(q)
		}
		var perQuery float64
		if nq > 0 {
			perQuery = time.Since(t1).Seconds() / float64(nq)
		}

		rep.Rows = append(rep.Rows, []string{
			name,
			fmt.Sprintf("%.2f", p.MineTime.Seconds()),
			fmt.Sprintf("%.2f", p.MatchWall.Seconds()),
			fmt.Sprintf("%.2f", trainTime.Seconds()),
			fmt.Sprintf("%.2e", perQuery),
		})
	}
	rep.Notes = append(rep.Notes,
		"matching should dominate the offline phase; online testing is sub-millisecond (paper: ~1e-4 s)")
	return rep
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
