package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mining"
)

// tinyConfig keeps the full suite affordable in unit tests.
func tinyConfig() Config {
	tr := core.DefaultTrain()
	tr.Restarts = 1
	tr.MaxIters = 60
	return Config{
		LinkedInUsers: 120,
		FacebookUsers: 100,
		Seed:          1,
		Splits:        1,
		ExampleSizes:  []int{10, 50},
		TrainExamples: 50,
		TopK:          10,
		Train:         tr,
		Mining:        mining.Options{MaxNodes: 4, MinSupport: 4},
	}
}

func TestPipelineArtifacts(t *testing.T) {
	s := NewSuite(tinyConfig())
	for _, name := range s.DatasetNames() {
		p := s.Pipeline(name)
		if len(p.Ms) == 0 {
			t.Fatalf("%s: no metagraphs mined", name)
		}
		if len(p.MatchTimes) != len(p.Ms) {
			t.Fatalf("%s: match time per metagraph missing", name)
		}
		if p.Index.NumMeta() != len(p.Ms) {
			t.Fatalf("%s: index size mismatch", name)
		}
		if p.Index.NumPairs() == 0 {
			t.Fatalf("%s: empty index", name)
		}
		// Pipeline is cached.
		if s.Pipeline(name) != p {
			t.Fatalf("%s: pipeline not cached", name)
		}
		// Subset cost of everything = total.
		all := make([]int, len(p.Ms))
		for i := range all {
			all[i] = i
		}
		if p.SubsetMatchTime(all) != p.MatchTime {
			t.Fatalf("%s: subset time inconsistent", name)
		}
	}
}

func TestTable2(t *testing.T) {
	s := NewSuite(tinyConfig())
	rep := s.Table2()
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	out := rep.String()
	for _, want := range []string{"LinkedIn", "Facebook", "#Metagraphs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4(t *testing.T) {
	s := NewSuite(tinyConfig())
	rep := s.Fig4()
	if len(rep.Rows) != 4 {
		t.Fatalf("Fig4 rows = %d, want 4 (2 datasets × 2 classes)", len(rep.Rows))
	}
}

func TestFig6AndFig7(t *testing.T) {
	s := NewSuite(tinyConfig())
	rep6 := s.Fig6()
	rep7 := s.Fig7()
	// 2 datasets × 2 classes × 5 algorithms.
	if len(rep6.Rows) != 20 || len(rep7.Rows) != 20 {
		t.Fatalf("rows = %d / %d, want 20", len(rep6.Rows), len(rep7.Rows))
	}
	// The accuracy sweep is computed once and cached.
	if len(s.accuracy) != 2 {
		t.Fatalf("accuracy cache has %d entries", len(s.accuracy))
	}
}

func TestTable3(t *testing.T) {
	s := NewSuite(tinyConfig())
	rep := s.Table3()
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig8(t *testing.T) {
	s := NewSuite(tinyConfig())
	rep := s.Fig8()
	if len(rep.Rows) == 0 {
		t.Fatal("Fig8 empty")
	}
	// Endpoints must be 0% and 100% when the denominators are non-trivial.
	for _, row := range rep.Rows {
		if row[2] == "all" && row[5] != "-" && row[5] != "100.0" {
			t.Fatalf("all-row time%% = %s", row[5])
		}
	}
}

func TestFig9(t *testing.T) {
	s := NewSuite(tinyConfig())
	rep := s.Fig9()
	if len(rep.Rows) != 4 {
		t.Fatalf("Fig9 rows = %d", len(rep.Rows))
	}
}

func TestFig10(t *testing.T) {
	s := NewSuite(tinyConfig())
	rep := s.Fig10()
	if len(rep.Rows) == 0 {
		t.Fatal("Fig10 empty")
	}
	if len(rep.Header) != 7 {
		t.Fatalf("Fig10 header = %v", rep.Header)
	}
}

func TestFig11(t *testing.T) {
	s := NewSuite(tinyConfig())
	rep := s.Fig11()
	if len(rep.Rows) == 0 {
		t.Fatal("Fig11 empty")
	}
	// Every row carries five engine timings.
	for _, row := range rep.Rows {
		if len(row) != 8 {
			t.Fatalf("Fig11 row = %v", row)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := Report{
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	out := rep.String()
	for _, want := range []string{"== t ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestCandidateSweepConfigured(t *testing.T) {
	cfg := tinyConfig()
	cfg.CandidateSweep = map[string][]int{"LinkedIn": {1, 2}}
	s := NewSuite(cfg)
	got := s.candidateSweep("LinkedIn")
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("sweep = %v", got)
	}
}
