package loadstats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// oracleQuantile is the reference definition the histogram approximates:
// the ceil(q*n)-th smallest value of the sorted sample.
func oracleQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkAgainstOracle asserts the histogram error contract on one sample:
// for every probed q, oracle <= Quantile(q) <= oracle*(1+2^-subBits), and
// min/max/sum/count are exact.
func checkAgainstOracle(t *testing.T, name string, values []int64) {
	t.Helper()
	h := New()
	var sum int64
	for _, v := range values {
		h.Record(v)
		if v < 0 {
			v = 0
		}
		sum += v
	}
	sorted := make([]int64, len(values))
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		sorted[i] = v
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if h.Count() != uint64(len(values)) {
		t.Fatalf("%s: count = %d, want %d", name, h.Count(), len(values))
	}
	if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
		t.Fatalf("%s: min/max = %d/%d, want %d/%d", name, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
	}
	if h.Sum() != sum {
		t.Fatalf("%s: sum = %d, want %d", name, h.Sum(), sum)
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999, 1} {
		want := oracleQuantile(sorted, q)
		got := h.Quantile(q)
		if got < want {
			t.Fatalf("%s: Quantile(%v) = %d understates oracle %d", name, q, got, want)
		}
		limit := want + want>>subBits
		if limit < want { // near MaxInt64 the slack itself overflows
			limit = math.MaxInt64
		}
		if got > limit {
			t.Fatalf("%s: Quantile(%v) = %d exceeds oracle %d by more than 1/%d (limit %d)",
				name, q, got, want, subCount, limit)
		}
	}
}

func TestQuantileMatchesOracleAcrossDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func(n int) []int64{
		"uniform_small": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = rng.Int63n(64) // the exact region
			}
			return out
		},
		"uniform_wide": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = rng.Int63n(int64(10 * time.Second))
			}
			return out
		},
		"exponential_latency": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(rng.ExpFloat64() * float64(2*time.Millisecond))
			}
			return out
		},
		"heavy_duplicates": func(n int) []int64 {
			out := make([]int64, n)
			vals := []int64{0, 1, 500, int64(time.Millisecond), int64(time.Second)}
			for i := range out {
				out[i] = vals[rng.Intn(len(vals))]
			}
			return out
		},
		"bimodal_tail": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(rng.ExpFloat64() * float64(200*time.Microsecond))
				if rng.Float64() < 0.01 { // 1% stalls
					out[i] = int64(time.Second) + rng.Int63n(int64(time.Second))
				}
			}
			return out
		},
		"huge_values": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = math.MaxInt64 - rng.Int63n(1<<40)
			}
			return out
		},
	}
	for name, gen := range dists {
		for _, n := range []int{1, 2, 7, 100, 5000} {
			checkAgainstOracle(t, name, gen(n))
		}
	}
}

func TestRecordClampsNegative(t *testing.T) {
	h := New()
	h.Record(-5)
	h.Record(10)
	if h.Min() != 0 || h.Max() != 10 || h.Sum() != 10 {
		t.Fatalf("negative clamp broken: min=%d max=%d sum=%d", h.Min(), h.Max(), h.Sum())
	}
	checkAgainstOracle(t, "negatives", []int64{-1, -100, 0, 5})
}

func TestEmptyHist(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	for _, q := range []float64{0, 0.5, 1} {
		if h.Quantile(q) != 0 {
			t.Fatalf("empty Quantile(%v) = %d", q, h.Quantile(q))
		}
	}
	s := h.Summarize()
	if s.Count != 0 || s.P99Ms != 0 || s.MaxMs != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestQuantileExtremesExact(t *testing.T) {
	h := New()
	values := []int64{3, 99999999, 12345, 77}
	for _, v := range values {
		h.Record(v)
	}
	if got := h.Quantile(1); got != 99999999 {
		t.Fatalf("p100 = %d, want the exact max", got)
	}
	if got := h.Quantile(0); got < 3 || got > 3+3>>subBits {
		t.Fatalf("p0 = %d, want the min's bucket", got)
	}
}

// randHist builds a histogram of n random latency-shaped values.
func randHist(rng *rand.Rand, n int) (*Hist, []int64) {
	h := New()
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(rng.ExpFloat64() * float64(time.Millisecond))
		h.Record(values[i])
	}
	return h, values
}

func TestMergeEqualsRecordingEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a, av := randHist(rng, rng.Intn(2000))
		b, bv := randHist(rng, rng.Intn(2000))
		whole := New()
		for _, v := range append(append([]int64{}, av...), bv...) {
			whole.Record(v)
		}
		a.Merge(b)
		if !reflect.DeepEqual(a, whole) {
			t.Fatalf("trial %d: merge(a,b) differs from recording a∪b directly", trial)
		}
	}
}

func TestMergeAssociativeAndCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		mk := func() (*Hist, *Hist) { // two independent copies of one sample
			x, vals := randHist(rng, rng.Intn(1000))
			y := New()
			for _, v := range vals {
				y.Record(v)
			}
			return x, y
		}
		a1, a2 := mk()
		b1, b2 := mk()
		c1, c2 := mk()

		// (a+b)+c
		a1.Merge(b1)
		a1.Merge(c1)
		// a+(b+c)
		b2.Merge(c2)
		a2.Merge(b2)
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("trial %d: merge is not associative", trial)
		}

		// commutativity: a+b == b+a
		x1, x2 := mk()
		y1, y2 := mk()
		x1.Merge(y1)
		y2.Merge(x2)
		if !reflect.DeepEqual(x1, y2) {
			t.Fatalf("trial %d: merge is not commutative", trial)
		}
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	h, _ := randHist(rand.New(rand.NewSource(3)), 100)
	before := New()
	before.Merge(h) // copy
	h.Merge(New())
	h.Merge(nil)
	if !reflect.DeepEqual(h, before) {
		t.Fatal("merging empty/nil changed the histogram")
	}
	empty := New()
	empty.Merge(h)
	if !reflect.DeepEqual(empty, before) {
		t.Fatal("merging into empty lost values")
	}
}

func TestSummaryMonotonicAndString(t *testing.T) {
	h, _ := randHist(rand.New(rand.NewSource(5)), 10000)
	s := h.Summarize()
	if !(s.P50Ms <= s.P90Ms && s.P90Ms <= s.P99Ms && s.P99Ms <= s.P999Ms && s.P999Ms <= s.MaxMs) {
		t.Fatalf("percentiles not monotonic: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestRecordDuration(t *testing.T) {
	h := New()
	h.RecordDuration(3 * time.Millisecond)
	if h.Sum() != (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("sum = %d", h.Sum())
	}
}

// TestBucketBoundariesRoundTrip pins the bucket layout: every bucket's
// reported upper bound must map back to the same bucket, and boundaries
// must be monotone.
func TestBucketBoundariesRoundTrip(t *testing.T) {
	prev := int64(-1)
	for idx := 0; idx < numBuckets; idx++ {
		up := bucketMax(idx)
		if up < 0 { // octave shift overflowed past int64 range; layout ends here
			break
		}
		if up <= prev {
			t.Fatalf("bucket %d upper bound %d not monotone (prev %d)", idx, up, prev)
		}
		if got := bucketOf(up); got != idx {
			t.Fatalf("bucketMax(%d) = %d maps back to bucket %d", idx, up, got)
		}
		prev = up
	}
}
