// Package loadstats is the latency-distribution math behind the open-loop
// load harness (cmd/loadgen): a fixed-size log-linear histogram of int64
// nanosecond durations in the HDR-histogram style, with streaming inserts,
// exact lossless merge, and rank-based quantiles.
//
// The bucket layout trades a bounded relative error for O(1) inserts and a
// few KiB of memory: values below 2^subBits are recorded exactly, and every
// octave above that is split into 2^subBits sub-buckets, so a reported
// quantile overstates the true order statistic by at most a factor of
// 1 + 2^-subBits (~1.6%). The true minimum, maximum and sum are tracked
// exactly on the side, and Quantile clamps against the exact maximum, so
// p100 is always exact. Merging histograms is plain bucket-count addition —
// associative, commutative, and byte-identical to having recorded every
// value into one histogram, which is what lets per-worker histograms be
// combined without locks on the hot path. Both properties are enforced by
// property tests against a sorted-slice oracle.
package loadstats

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

const (
	// subBits sets the precision: 2^subBits sub-buckets per octave, so the
	// relative quantile error is bounded by 2^-subBits.
	subBits  = 6
	subCount = 1 << subBits // 64

	// octaves covers the full non-negative int64 range: values with bit
	// length subBits+1 .. 63 each get one octave of sub-buckets, plus the
	// exact region below 2^subBits.
	octaves = 64 - subBits

	numBuckets = (octaves + 1) * subCount
)

// Hist is a streaming log-linear histogram of non-negative int64 values
// (nanoseconds, by convention). The zero value is NOT ready to use; call
// New. Not safe for concurrent use — shard per goroutine and Merge.
type Hist struct {
	counts []uint64
	n      uint64
	min    int64
	max    int64
	sum    int64
}

// New returns an empty histogram.
func New() *Hist {
	return &Hist{counts: make([]uint64, numBuckets), min: -1}
}

// bucketOf maps a value to its bucket index. Values < subCount map to
// themselves (exact); a value in octave k (i.e. in [subCount<<k,
// subCount<<(k+1))) maps by dropping its k lowest bits.
func bucketOf(v int64) int {
	if v < subCount {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - (subBits + 1)
	return k<<subBits + int(v>>uint(k))
}

// bucketMax returns the largest value a bucket holds — the value Quantile
// reports for any rank landing in it, so quantiles never understate.
func bucketMax(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	k := idx>>subBits - 1
	sub := int64(idx&(subCount-1) | subCount)
	return (sub+1)<<uint(k) - 1
}

// Record adds one value. Negative values clamp to zero (a scheduled-send
// latency can only be negative through clock trouble; zero is the honest
// floor).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds one duration in nanoseconds.
func (h *Hist) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

// Count returns how many values have been recorded.
func (h *Hist) Count() uint64 { return h.n }

// Min returns the exact smallest recorded value (0 when empty).
func (h *Hist) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest recorded value (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Sum returns the exact sum of recorded values.
func (h *Hist) Sum() int64 { return h.sum }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the q-quantile (q in [0,1]) as the upper bound of the
// bucket holding the ceil(q*n)-th smallest value, clamped to the exact
// observed maximum — so the result never understates the true order
// statistic and overstates it by at most a factor of 1+2^-subBits.
// Returns 0 on an empty histogram; q outside [0,1] clamps.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.n {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if v := bucketMax(i); v < h.max {
				return v
			}
			return h.max
		}
	}
	return h.max // unreachable: cum ends at h.n >= rank
}

// Merge folds other into h: the result is byte-identical to having
// recorded every one of other's values into h directly. other is left
// untouched; merging is associative and commutative.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if h.min < 0 || (other.min >= 0 && other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Summary is the fixed percentile slate the load reports carry.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p99_9_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summarize extracts the report slate, in milliseconds.
func (h *Hist) Summarize() Summary {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return Summary{
		Count:  h.n,
		MeanMs: h.Mean() / 1e6,
		P50Ms:  ms(h.Quantile(0.50)),
		P90Ms:  ms(h.Quantile(0.90)),
		P99Ms:  ms(h.Quantile(0.99)),
		P999Ms: ms(h.Quantile(0.999)),
		MaxMs:  ms(h.Max()),
	}
}

// String renders the slate for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d p50=%.2fms p99=%.2fms p99.9=%.2fms max=%.2fms",
		s.Count, s.P50Ms, s.P99Ms, s.P999Ms, s.MaxMs)
}
