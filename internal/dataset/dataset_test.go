package dataset

import (
	"testing"

	"repro/internal/graph"
)

func TestLinkedInShape(t *testing.T) {
	ds := LinkedIn(Config{Users: 300, Seed: 1, NoiseRate: 0.05})
	if ds.Name != "LinkedIn" {
		t.Fatal("name")
	}
	g := ds.G
	if g.NumTypes() != 4 {
		t.Fatalf("types = %d, want 4", g.NumTypes())
	}
	if len(ds.Users()) != 300 {
		t.Fatalf("users = %d", len(ds.Users()))
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	names := ds.ClassNames()
	if len(names) != 2 || names[0] != "college" || names[1] != "coworker" {
		t.Fatalf("classes = %v", names)
	}
	for _, c := range names {
		labels := ds.Classes[c]
		if labels.NumPairs() == 0 {
			t.Fatalf("class %s has no pairs", c)
		}
		if len(labels.Queries()) < 10 {
			t.Fatalf("class %s has only %d queries", c, len(labels.Queries()))
		}
	}
}

func TestFacebookShape(t *testing.T) {
	ds := Facebook(Config{Users: 250, Seed: 2, NoiseRate: 0.05})
	g := ds.G
	if g.NumTypes() != 10 {
		t.Fatalf("types = %d, want 10", g.NumTypes())
	}
	if len(ds.Users()) != 250 {
		t.Fatalf("users = %d", len(ds.Users()))
	}
	names := ds.ClassNames()
	if len(names) != 2 || names[0] != "classmate" || names[1] != "family" {
		t.Fatalf("classes = %v", names)
	}
	for _, c := range names {
		if ds.Classes[c].NumPairs() == 0 {
			t.Fatalf("class %s empty", c)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := LinkedIn(Config{Users: 150, Seed: 7, NoiseRate: 0.05})
	b := LinkedIn(Config{Users: 150, Seed: 7, NoiseRate: 0.05})
	if a.G.NumNodes() != b.G.NumNodes() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("graph generation not deterministic")
	}
	for _, c := range a.ClassNames() {
		if a.Classes[c].NumPairs() != b.Classes[c].NumPairs() {
			t.Fatalf("labels for %s not deterministic", c)
		}
		for _, q := range a.Classes[c].Queries() {
			for v := range a.Classes[c][q] {
				if !b.Classes[c].Has(q, v) {
					t.Fatalf("pair (%d,%d) missing in second run", q, v)
				}
			}
		}
	}
	c := LinkedIn(Config{Users: 150, Seed: 8, NoiseRate: 0.05})
	if a.Classes["college"].NumPairs() == c.Classes["college"].NumPairs() &&
		a.G.NumEdges() == c.G.NumEdges() {
		t.Log("warning: different seeds produced identical datasets (possible but unlikely)")
	}
}

func TestLabelsAreSymmetricUserPairs(t *testing.T) {
	ds := Facebook(Config{Users: 200, Seed: 3, NoiseRate: 0.05})
	for _, c := range ds.ClassNames() {
		labels := ds.Classes[c]
		for _, q := range labels.Queries() {
			if ds.G.Type(q) != ds.Anchor {
				t.Fatalf("non-user query %d in class %s", q, c)
			}
			for v := range labels[q] {
				if ds.G.Type(v) != ds.Anchor {
					t.Fatalf("non-user label %d in class %s", v, c)
				}
				if !labels.Has(v, q) {
					t.Fatalf("asymmetric label (%d,%d)", q, v)
				}
				if v == q {
					t.Fatal("self label")
				}
			}
		}
	}
}

func TestRuleConsistencyWithoutNoise(t *testing.T) {
	// With zero noise every family label must satisfy the attribute rule.
	ds := Facebook(Config{Users: 200, Seed: 4, NoiseRate: 0})
	g := ds.G
	shares := func(u, v graph.NodeID, tn string) bool {
		return len(graph.CommonNeighborsOfType(g, u, v, g.Types().ID(tn))) > 0
	}
	fam := ds.Classes["family"]
	for _, q := range fam.Queries() {
		for v := range fam[q] {
			if !shares(q, v, "surname") {
				t.Fatalf("family pair (%d,%d) without shared surname", q, v)
			}
			if !shares(q, v, "location") && !shares(q, v, "hometown") {
				t.Fatalf("family pair (%d,%d) without shared location/hometown", q, v)
			}
		}
	}
	cls := ds.Classes["classmate"]
	for _, q := range cls.Queries() {
		for v := range cls[q] {
			if !shares(q, v, "school") {
				t.Fatalf("classmate pair (%d,%d) without shared school", q, v)
			}
			if !shares(q, v, "degree") && !shares(q, v, "major") {
				t.Fatalf("classmate pair (%d,%d) without shared degree/major", q, v)
			}
		}
	}
}

func TestNoiseChangesLabels(t *testing.T) {
	clean := Facebook(Config{Users: 200, Seed: 5, NoiseRate: 0})
	noisy := Facebook(Config{Users: 200, Seed: 5, NoiseRate: 0.3})
	diff := false
	for _, c := range clean.ClassNames() {
		if clean.Classes[c].NumPairs() != noisy.Classes[c].NumPairs() {
			diff = true
			continue
		}
		for _, q := range clean.Classes[c].Queries() {
			for v := range clean.Classes[c][q] {
				if !noisy.Classes[c].Has(q, v) {
					diff = true
				}
			}
		}
	}
	if !diff {
		t.Fatal("30% noise changed nothing")
	}
}

func TestGraphConnectsUsersOnlyViaAttributes(t *testing.T) {
	ds := LinkedIn(Config{Users: 120, Seed: 6, NoiseRate: 0.05})
	g := ds.G
	g.Edges(func(u, v graph.NodeID) bool {
		if g.Type(u) == ds.Anchor && g.Type(v) == ds.Anchor {
			t.Fatalf("direct user–user edge (%d,%d)", u, v)
		}
		if g.Type(u) != ds.Anchor && g.Type(v) != ds.Anchor {
			t.Fatalf("attribute–attribute edge (%d,%d)", u, v)
		}
		return true
	})
}
