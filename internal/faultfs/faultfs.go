// Package faultfs is the fault-injection layer behind the WAL's
// durability claims: a scheduler of I/O failures (failed fsyncs, failed
// or torn writes, failed segment creation) that the WAL consults at
// every syscall boundary when wal.Options.Inject is set. Production
// builds pass no injector and pay one nil check; tests arm rules like
// "fail the 3rd fsync" or "tear the next write after 10 bytes" and then
// assert the log's externally visible promises — an acked append is on
// disk after reopen, a failed one is never acked — instead of hoping a
// real disk misbehaves on schedule.
package faultfs

import (
	"fmt"
	"sync"
)

// Op names one interceptable I/O operation.
type Op string

const (
	// OpWrite is a data write to the active segment.
	OpWrite Op = "write"
	// OpSync is an fsync of the active segment.
	OpSync Op = "sync"
	// OpCreate is the creation (incl. header write+sync) of a segment.
	OpCreate Op = "create"
)

// Rule arms one injection: after skipping the first After matching
// calls, the next Times calls (1 if zero) fail with Err. For OpWrite a
// non-zero TearBytes makes the failure a torn write: the first TearBytes
// bytes of the batch reach the file before the error — the shape a
// crash mid-write leaves on disk.
type Rule struct {
	Op        Op
	After     int
	Times     int
	Err       error
	TearBytes int
}

type armedRule struct {
	Rule
	fired int
}

// Injector schedules injected failures. The zero value injects nothing;
// a nil *Injector is safe to call and also injects nothing, so callers
// hook it unconditionally.
type Injector struct {
	mu    sync.Mutex
	rules []*armedRule
	calls map[Op]int
}

// New returns an empty injector.
func New() *Injector { return &Injector{calls: make(map[Op]int)} }

// Arm adds a rule. Rules are independent: each matching call consults
// every armed rule and the first one due fires.
func (in *Injector) Arm(r Rule) {
	if r.Err == nil {
		r.Err = fmt.Errorf("faultfs: injected %s failure", r.Op)
	}
	if r.Times <= 0 {
		r.Times = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &armedRule{Rule: r})
}

// Calls reports how many times op was checked.
func (in *Injector) Calls(op Op) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[op]
}

// due finds the first armed rule that should fire for this call of op
// (seen = the op's call count before this call).
func (in *Injector) due(op Op, seen int) *armedRule {
	for _, r := range in.rules {
		if r.Op != op || r.fired >= r.Times {
			continue
		}
		if seen < r.After {
			continue
		}
		r.fired++
		return r
	}
	return nil
}

// Check consults the schedule for one call of op, returning the injected
// error if a rule is due.
func (in *Injector) Check(op Op) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	seen := in.calls[op]
	in.calls[op] = seen + 1
	if r := in.due(op, seen); r != nil {
		return r.Err
	}
	return nil
}

// CheckWrite consults the schedule for one OpWrite of n bytes. It
// returns how many bytes the caller should actually hand to the file
// (n when no rule fires; TearBytes — capped at n — for a torn write;
// 0 for a clean failure) and the injected error, if any.
func (in *Injector) CheckWrite(n int) (int, error) {
	if in == nil {
		return n, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	seen := in.calls[OpWrite]
	in.calls[OpWrite] = seen + 1
	r := in.due(OpWrite, seen)
	if r == nil {
		return n, nil
	}
	tear := r.TearBytes
	if tear > n {
		tear = n
	}
	return tear, r.Err
}
