package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	semprox "repro"
	"repro/api"
	"repro/internal/graph"
	"repro/internal/replica"
	"repro/internal/wal"
)

// walServer is trainedServer with a WAL attached: the durable primary
// configuration of semproxd -wal.
func walServer(t *testing.T) (*Server, *wal.WAL, *semprox.Engine, *semprox.Graph) {
	t.Helper()
	s, eng, g := trainedServer(t)
	w, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	s.AttachWAL(w)
	return s, w, eng, g
}

func TestReadyzStandalone(t *testing.T) {
	s, _, _ := trainedServer(t)
	rec := do(t, s, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body api.ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ready" || body.Role != "standalone" || body.Lag != 0 {
		t.Fatalf("readyz = %+v", body)
	}
}

func TestReplicationDisabledWithoutWAL(t *testing.T) {
	s, _, _ := trainedServer(t)
	wantErr(t, do(t, s, http.MethodGet, "/replicate/since?lsn=0", ""),
		http.StatusServiceUnavailable, "replication_disabled")
	wantErr(t, do(t, s, http.MethodGet, "/replicate/snapshot", ""),
		http.StatusServiceUnavailable, "replication_disabled")
}

// TestUpdateDurableAndReplicated drives one update through the durable
// path and reads it back over every surface: the response LSN, /stats,
// /readyz (primary role), the WAL itself, and /replicate/since.
func TestUpdateDurableAndReplicated(t *testing.T) {
	s, w, eng, _ := walServer(t)

	rec := do(t, s, http.MethodPost, "/update",
		`{"nodes":[{"type":"user","name":"zoe"}],"edges":[{"u":"zoe","v":"Kate"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("update status = %d (%s)", rec.Code, rec.Body.String())
	}
	var ur api.UpdateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.LSN != 1 || ur.Epoch != 1 {
		t.Fatalf("update response = %+v, want LSN 1 epoch 1", ur)
	}
	if w.DurableLSN() != 1 {
		t.Fatalf("wal durable = %d, want 1", w.DurableLSN())
	}
	if eng.LSN() != 1 {
		t.Fatalf("engine LSN = %d, want 1", eng.LSN())
	}

	rec = do(t, s, http.MethodGet, "/stats", "")
	var st api.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.LSN != 1 {
		t.Fatalf("stats LSN = %d, want 1", st.LSN)
	}

	rec = do(t, s, http.MethodGet, "/readyz", "")
	var rr api.ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Role != "primary" || rr.Status != "ready" || rr.LSN != 1 {
		t.Fatalf("readyz = %+v", rr)
	}

	// The logged record replays to the same delta the handler resolved.
	rec = do(t, s, http.MethodGet, "/replicate/since?lsn=0", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("since status = %d (%s)", rec.Code, rec.Body.String())
	}
	var sr struct {
		From    uint64 `json:"from"`
		LastLSN uint64 `json:"last_lsn"`
		Records []struct {
			LSN   uint64 `json:"lsn"`
			Delta []byte `json:"delta"`
		} `json:"records"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.LastLSN != 1 || len(sr.Records) != 1 || sr.Records[0].LSN != 1 {
		t.Fatalf("since = %+v", sr)
	}
	d, err := graph.DecodeDelta(sr.Records[0].Delta)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 1 || d.Nodes[0].Value != "zoe" || len(d.Edges) != 1 {
		t.Fatalf("replicated delta = %+v", d)
	}

	// Caught-up poll: empty records, last_lsn tells the follower where
	// the primary is.
	rec = do(t, s, http.MethodGet, "/replicate/since?lsn=1", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Records) != 0 || sr.LastLSN != 1 {
		t.Fatalf("caught-up since = %+v", sr)
	}
}

func TestReplicateSnapshotStreamsEngine(t *testing.T) {
	s, _, eng, g := walServer(t)
	rec := do(t, s, http.MethodGet, "/replicate/snapshot", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	loaded, err := semprox.LoadEngine(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	q := g.NodeByName("Kate")
	want, _ := eng.Query("classmate", q, 5)
	got, err := loaded.Query("classmate", q, 5)
	if err != nil || len(got) != len(want) {
		t.Fatalf("loaded snapshot query: %v (%d vs %d results)", err, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReplicateSinceBadParams(t *testing.T) {
	s, _, _, _ := walServer(t)
	wantErr(t, do(t, s, http.MethodGet, "/replicate/since", ""), http.StatusBadRequest, "bad_request")
	wantErr(t, do(t, s, http.MethodGet, "/replicate/since?lsn=x", ""), http.StatusBadRequest, "bad_request")
	wantErr(t, do(t, s, http.MethodGet, "/replicate/since?lsn=0&max=0", ""), http.StatusBadRequest, "bad_request")
	wantErr(t, do(t, s, http.MethodGet, "/replicate/since?lsn=0&wait_ms=-1", ""), http.StatusBadRequest, "bad_request")
	wantErr(t, do(t, s, http.MethodPost, "/replicate/since?lsn=0", "{}"), http.StatusMethodNotAllowed, "method_not_allowed")
}

// TestReadyzWALFailed: a primary whose log can no longer accept appends
// (sticky I/O failure, or closed) keeps serving reads but must drop
// readiness, so load balancers stop routing writes to it.
func TestReadyzWALFailed(t *testing.T) {
	s, w, _, _ := walServer(t)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on a write-dead primary = %d, want 503", rec.Code)
	}
	var rr api.ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "wal_failed" || rr.Role != "primary" {
		t.Fatalf("readyz = %+v", rr)
	}
}

// TestFollowerRebootstrapSwapsServedEngine: Follower.Run re-bootstraps on
// divergence, swapping in a brand-new engine; the server must serve the
// follower's CURRENT engine, not the one captured at New — otherwise
// /query, /stats and /healthz would freeze at the pre-bootstrap state
// while /readyz (computed from the live follower) reports ready.
func TestFollowerRebootstrapSwapsServedEngine(t *testing.T) {
	ps, _, peng, _ := walServer(t)
	pts := httptest.NewServer(ps)
	defer pts.Close()

	f := replica.NewFollower(pts.URL, pts.Client())
	ctx := context.Background()
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	fsrv := New(f.Engine())
	fsrv.SetFollower(f)
	oldNodes := f.Engine().Graph().NumNodes()

	// The primary moves on (LSN 1) while the follower is detached; a
	// second Bootstrap — what Run does after a stream gap — installs a
	// fresh engine at the primary's new state.
	rec := do(t, ps, http.MethodPost, "/update",
		`{"nodes":[{"type":"user","name":"zoe"}],"edges":[{"u":"zoe","v":"Kate"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("primary update = %d (%s)", rec.Code, rec.Body.String())
	}
	if err := f.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if f.Engine().LSN() != peng.LSN() {
		t.Fatalf("re-bootstrap at LSN %d, primary at %d", f.Engine().LSN(), peng.LSN())
	}

	// Every read surface serves the re-bootstrapped engine.
	var st api.StatsResponse
	if err := json.Unmarshal(do(t, fsrv, http.MethodGet, "/stats", "").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.LSN != peng.LSN() || st.Nodes != oldNodes+1 {
		t.Fatalf("follower /stats = LSN %d nodes %d, want LSN %d nodes %d (stale engine served?)",
			st.LSN, st.Nodes, peng.LSN(), oldNodes+1)
	}
	var hr api.HealthResponse
	if err := json.Unmarshal(do(t, fsrv, http.MethodGet, "/healthz", "").Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Nodes != oldNodes+1 {
		t.Fatalf("follower /healthz nodes = %d, want %d", hr.Nodes, oldNodes+1)
	}
	if rec := do(t, fsrv, http.MethodGet, "/query?class=classmate&query=zoe&k=3", ""); rec.Code != http.StatusOK {
		t.Fatalf("follower /query for a post-bootstrap node = %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestFollowerServerIsReadOnly: a server flagged as follower refuses
// /update and reports catching_up on /readyz until its follower is
// bootstrapped and caught up.
func TestFollowerServerIsReadOnly(t *testing.T) {
	s, _, _ := trainedServer(t)
	s.SetFollower(replica.NewFollower("http://primary.example:8080", nil))
	wantErr(t, do(t, s, http.MethodPost, "/update",
		`{"nodes":[{"type":"user","name":"zoe"}]}`), http.StatusServiceUnavailable, "not_primary")

	rec := do(t, s, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on unbootstrapped follower = %d, want 503", rec.Code)
	}
	var rr api.ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "catching_up" || rr.Role != "follower" {
		t.Fatalf("readyz = %+v", rr)
	}
}
