package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	semprox "repro"
	"repro/api"
	"repro/internal/fixtures"
	"repro/internal/mining"
)

// trainedServer builds a server over the paper's toy graph with the
// "classmate" class trained.
func trainedServer(t testing.TB) (*Server, *semprox.Engine, *semprox.Graph) {
	t.Helper()
	g := fixtures.Toy()
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
	opts.Train.Restarts = 2
	opts.Train.MaxIters = 200
	eng, err := semprox.NewEngine(g, "user", opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Train("classmate", classmateExamples(g))
	return New(eng), eng, g
}

func classmateExamples(g *semprox.Graph) []semprox.Example {
	return []semprox.Example{
		{Q: g.NodeByName("Kate"), X: g.NodeByName("Jay"), Y: g.NodeByName("Alice")},
		{Q: g.NodeByName("Bob"), X: g.NodeByName("Tom"), Y: g.NodeByName("Alice")},
	}
}

// do runs one request through the handler and returns the recorder.
func do(t testing.TB, s *Server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// wantErr asserts a structured error response with the given status and
// code.
func wantErr(t *testing.T, rec *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d (%s), want %d", rec.Code, rec.Body.String(), status)
	}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, rec.Body.String())
	}
	if body.Error.Code != code {
		t.Fatalf("error code = %q (%s), want %q", body.Error.Code, body.Error.Message, code)
	}
	if body.Error.Message == "" {
		t.Fatal("error without message")
	}
}

func TestHealthz(t *testing.T) {
	s, eng, g := trainedServer(t)
	rec := do(t, s, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body api.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Nodes != g.NumNodes() ||
		body.Metagraphs != eng.NumMetagraphs() ||
		len(body.Classes) != 1 || body.Classes[0] != "classmate" {
		t.Fatalf("healthz = %+v", body)
	}
}

func TestClasses(t *testing.T) {
	s, _, _ := trainedServer(t)
	rec := do(t, s, http.MethodGet, "/classes", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body struct {
		Classes []string `json:"classes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Classes) != 1 || body.Classes[0] != "classmate" {
		t.Fatalf("classes = %v", body.Classes)
	}
}

// TestQuerySingleMatchesEngine pins that the HTTP ranking is exactly the
// engine's ranking, for both GET and POST forms.
func TestQuerySingleMatchesEngine(t *testing.T) {
	s, eng, g := trainedServer(t)
	want, err := eng.Query("classmate", g.NodeByName("Kate"), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []*httptest.ResponseRecorder{
		do(t, s, http.MethodGet, "/query?class=classmate&query=Kate&k=5", ""),
		do(t, s, http.MethodPost, "/query", `{"class":"classmate","query":"Kate","k":5}`),
	} {
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
		}
		var body api.QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if len(body.Results) != 1 || body.Results[0].Query != "Kate" {
			t.Fatalf("results = %+v", body.Results)
		}
		got := body.Results[0].Results
		if len(got) != len(want) {
			t.Fatalf("%d results, want %d", len(got), len(want))
		}
		for i, r := range got {
			if semprox.NodeID(r.Node) != want[i].Node || r.Score != want[i].Score ||
				r.Name != g.Name(want[i].Node) {
				t.Fatalf("result[%d] = %+v, want %+v (%s)", i, r, want[i], g.Name(want[i].Node))
			}
		}
	}
}

// TestQueryBatchMatchesEngine pins the batched form against QueryBatch.
func TestQueryBatchMatchesEngine(t *testing.T) {
	s, eng, g := trainedServer(t)
	names := []string{"Kate", "Bob", "Alice", "Jay"}
	qs := make([]semprox.NodeID, len(names))
	for i, n := range names {
		qs[i] = g.NodeByName(n)
	}
	want, err := eng.QueryBatch("classmate", qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(api.QueryRequest{Class: "classmate", Queries: names, K: 3})
	rec := do(t, s, http.MethodPost, "/query", string(req))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
	}
	var body api.QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Results) != len(names) {
		t.Fatalf("%d rankings, want %d", len(body.Results), len(names))
	}
	for i, qr := range body.Results {
		if qr.Query != names[i] || len(qr.Results) != len(want[i]) {
			t.Fatalf("ranking[%d] = %+v, want %d results for %s", i, qr, len(want[i]), names[i])
		}
		for j, r := range qr.Results {
			if semprox.NodeID(r.Node) != want[i][j].Node || r.Score != want[i][j].Score {
				t.Fatalf("ranking[%d][%d] = %+v, want %+v", i, j, r, want[i][j])
			}
		}
	}
}

func TestQueryClientErrors(t *testing.T) {
	s, _, _ := trainedServer(t)
	cases := []struct {
		name   string
		method string
		target string
		body   string
		status int
		code   string
	}{
		{"bad class", http.MethodGet, "/query?class=nope&query=Kate", "", http.StatusNotFound, "class_not_found"},
		{"bad node", http.MethodGet, "/query?class=classmate&query=Nobody", "", http.StatusNotFound, "node_not_found"},
		{"bad node in batch", http.MethodPost, "/query", `{"class":"classmate","queries":["Kate","Nobody"]}`, http.StatusNotFound, "node_not_found"},
		{"malformed JSON", http.MethodPost, "/query", `{"class":"classmate",`, http.StatusBadRequest, "bad_request"},
		{"unknown field", http.MethodPost, "/query", `{"class":"classmate","query":"Kate","frobnicate":1}`, http.StatusBadRequest, "bad_request"},
		{"trailing garbage", http.MethodPost, "/query", `{"class":"classmate","query":"Kate"} extra`, http.StatusBadRequest, "bad_request"},
		{"missing class", http.MethodPost, "/query", `{"query":"Kate"}`, http.StatusBadRequest, "bad_request"},
		{"missing query", http.MethodPost, "/query", `{"class":"classmate"}`, http.StatusBadRequest, "bad_request"},
		{"both forms", http.MethodPost, "/query", `{"class":"classmate","query":"Kate","queries":["Bob"]}`, http.StatusBadRequest, "bad_request"},
		{"bad k", http.MethodGet, "/query?class=classmate&query=Kate&k=ten", "", http.StatusBadRequest, "bad_request"},
		{"negative k", http.MethodGet, "/query?class=classmate&query=Kate&k=-1", "", http.StatusBadRequest, "bad_request"},
		{"negative k post", http.MethodPost, "/query", `{"class":"classmate","query":"Kate","k":-5}`, http.StatusBadRequest, "bad_request"},
		{"bad method", http.MethodDelete, "/query", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"bad method healthz", http.MethodPost, "/healthz", `{}`, http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantErr(t, do(t, s, tc.method, tc.target, tc.body), tc.status, tc.code)
		})
	}
}

func TestQueryBatchTooLarge(t *testing.T) {
	s, _, _ := trainedServer(t)
	big := api.QueryRequest{Class: "classmate", Queries: make([]string, MaxBatch+1)}
	for i := range big.Queries {
		big.Queries[i] = "Kate"
	}
	req, _ := json.Marshal(big)
	wantErr(t, do(t, s, http.MethodPost, "/query", string(req)), http.StatusBadRequest, "bad_request")
}

func TestProximity(t *testing.T) {
	s, eng, g := trainedServer(t)
	want, err := eng.Proximity("classmate", g.NodeByName("Kate"), g.NodeByName("Jay"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []*httptest.ResponseRecorder{
		do(t, s, http.MethodGet, "/proximity?class=classmate&x=Kate&y=Jay", ""),
		do(t, s, http.MethodPost, "/proximity", `{"class":"classmate","x":"Kate","y":"Jay"}`),
	} {
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
		}
		var body struct {
			Proximity float64 `json:"proximity"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if body.Proximity != want {
			t.Fatalf("proximity = %v, want %v", body.Proximity, want)
		}
	}
	wantErr(t, do(t, s, http.MethodGet, "/proximity?class=classmate&x=Kate", ""),
		http.StatusBadRequest, "bad_request")
	wantErr(t, do(t, s, http.MethodGet, "/proximity?class=classmate&x=Kate&y=Nobody", ""),
		http.StatusNotFound, "node_not_found")
}

// TestConcurrentQueryDuringTrain is the -race hammer: many goroutines
// drive /query (single and batched) and /healthz while a NEW class trains
// on the same engine, pinning the engine's documented online thread-safety
// through the HTTP layer.
func TestConcurrentQueryDuringTrain(t *testing.T) {
	s, eng, g := trainedServer(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Train("family", []semprox.Example{
			{Q: g.NodeByName("Alice"), X: g.NodeByName("Bob"), Y: g.NodeByName("Tom")},
		})
	}()
	names := []string{"Kate", "Bob", "Alice", "Jay", "Tom"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				name := names[(w+i)%len(names)]
				if rec := do(t, s, http.MethodGet, "/query?class=classmate&query="+name, ""); rec.Code != http.StatusOK {
					t.Errorf("query %s: status %d", name, rec.Code)
					return
				}
				body := fmt.Sprintf(`{"class":"classmate","queries":["%s","Kate"],"k":3}`, name)
				if rec := do(t, s, http.MethodPost, "/query", body); rec.Code != http.StatusOK {
					t.Errorf("batch %s: status %d", name, rec.Code)
					return
				}
				if rec := do(t, s, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
					t.Errorf("healthz: status %d", rec.Code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-done
	rec := do(t, s, http.MethodGet, "/query?class=family&query=Alice", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("family query after train: %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestSnapshotServesIdentically is the serving half of the snapshot
// acceptance criterion: a server over a saved+loaded engine returns
// byte-identical /query responses to a server over the engine that wrote
// the snapshot.
func TestSnapshotServesIdentically(t *testing.T) {
	s1, eng, _ := trainedServer(t)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := semprox.LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(loaded)
	targets := []string{
		"/query?class=classmate&query=Kate&k=5",
		"/query?class=classmate&query=Bob",
		"/proximity?class=classmate&x=Kate&y=Jay",
		"/classes",
		"/healthz",
	}
	for _, target := range targets {
		r1 := do(t, s1, http.MethodGet, target, "")
		r2 := do(t, s2, http.MethodGet, target, "")
		if r1.Code != http.StatusOK || r2.Code != r1.Code {
			t.Fatalf("%s: status %d vs %d", target, r1.Code, r2.Code)
		}
		if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
			t.Fatalf("%s drifted after snapshot:\n%s\nvs\n%s", target, r1.Body.String(), r2.Body.String())
		}
	}
	batch := `{"class":"classmate","queries":["Kate","Bob","Alice"],"k":4}`
	r1 := do(t, s1, http.MethodPost, "/query", batch)
	r2 := do(t, s2, http.MethodPost, "/query", batch)
	if r1.Code != http.StatusOK || !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Fatalf("batched /query drifted after snapshot:\n%s\nvs\n%s", r1.Body.String(), r2.Body.String())
	}
}

// decodeUpdate parses an /update 200 body.
func decodeUpdate(t *testing.T, rec *httptest.ResponseRecorder) api.UpdateResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
	}
	var out api.UpdateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestUpdateAddsAndServes(t *testing.T) {
	s, eng, g := trainedServer(t)
	s.SetAutoCompact(false)
	body := `{"nodes":[{"type":"user","name":"Zoe"},{"type":"school","name":"College Z"}],
	          "edges":[{"u":"Zoe","v":"College Z"},{"u":"Kate","v":"College Z"},{"u":"Zoe","v":"College A"}]}`
	out := decodeUpdate(t, do(t, s, http.MethodPost, "/update", body))
	if out.Epoch != 1 || out.NodesAdded != 2 || out.EdgesAdded != 3 {
		t.Fatalf("update response = %+v", out)
	}
	if out.Rematched == 0 || out.PendingCompaction == 0 {
		t.Fatalf("expected re-matching and pending compaction, got %+v", out)
	}
	if g.NodeByName("Zoe") != semprox.InvalidNode {
		t.Fatal("pre-update graph snapshot mutated")
	}
	if eng.Graph().NodeByName("Zoe") == semprox.InvalidNode {
		t.Fatal("new node not served")
	}
	// The new user is queryable: Zoe and Kate now share College Z with
	// College A linking Zoe into Kate's old neighborhood.
	rec := do(t, s, http.MethodGet, "/query?class=classmate&query=Zoe&k=5", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("query after update: %d (%s)", rec.Code, rec.Body.String())
	}
	var res api.QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 || len(res.Results[0].Results) == 0 {
		t.Fatalf("Zoe has no ranked neighbors after update: %s", rec.Body.String())
	}
}

func TestUpdateValidation(t *testing.T) {
	s, _, _ := trainedServer(t)
	s.SetAutoCompact(false)
	wantErr(t, do(t, s, http.MethodPost, "/update", `{}`), http.StatusBadRequest, "bad_request")
	wantErr(t, do(t, s, http.MethodPost, "/update",
		`{"nodes":[{"type":"starship","name":"x"}]}`), http.StatusBadRequest, "bad_request")
	wantErr(t, do(t, s, http.MethodPost, "/update",
		`{"nodes":[{"type":"user"}]}`), http.StatusBadRequest, "bad_request")
	wantErr(t, do(t, s, http.MethodPost, "/update",
		`{"edges":[{"u":"Kate","v":"Nobody Known"}]}`), http.StatusNotFound, "node_not_found")
	wantErr(t, do(t, s, http.MethodPost, "/update",
		`{"edges":[{"u":"Kate"}]}`), http.StatusBadRequest, "bad_request")
	wantErr(t, do(t, s, http.MethodGet, "/update", ""), http.StatusMethodNotAllowed, "method_not_allowed")
	// Oversized batches are rejected before any resolution work.
	var sb strings.Builder
	sb.WriteString(`{"edges":[`)
	for i := 0; i <= MaxUpdate; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"u":"Kate","v":"Jay"}`)
	}
	sb.WriteString(`]}`)
	wantErr(t, do(t, s, http.MethodPost, "/update", sb.String()), http.StatusBadRequest, "bad_request")
	// Nothing above may have advanced the epoch.
	var st api.StatsResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/stats", "").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 {
		t.Fatalf("rejected updates advanced the epoch to %d", st.Epoch)
	}
}

func TestStats(t *testing.T) {
	s, eng, g := trainedServer(t)
	s.SetAutoCompact(false)
	rec := do(t, s, http.MethodGet, "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st api.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 || st.Nodes != g.NumNodes() || st.Edges != g.NumEdges() ||
		st.Metagraphs != eng.NumMetagraphs() || st.Matched != eng.MatchedCount() ||
		st.PendingCompaction != 0 || len(st.Classes) != 1 || st.Classes[0] != "classmate" {
		t.Fatalf("stats = %+v", st)
	}
	decodeUpdate(t, do(t, s, http.MethodPost, "/update",
		`{"nodes":[{"type":"hobby","name":"chess"}],"edges":[{"u":"Kate","v":"chess"}]}`))
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/stats", "").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Nodes != g.NumNodes()+1 || st.Edges != g.NumEdges()+1 || st.PendingCompaction == 0 {
		t.Fatalf("stats after update = %+v", st)
	}
	wantErr(t, do(t, s, http.MethodPost, "/stats", "{}"), http.StatusMethodNotAllowed, "method_not_allowed")
}

func TestUpdateAutoCompacts(t *testing.T) {
	s, eng, _ := trainedServer(t)
	decodeUpdate(t, do(t, s, http.MethodPost, "/update",
		`{"nodes":[{"type":"hobby","name":"chess"}],"edges":[{"u":"Kate","v":"chess"}]}`))
	s.WaitCompactions()
	if p := eng.Stats().PendingCompaction; p != 0 {
		t.Fatalf("pending after auto-compaction = %d", p)
	}
}

// TestUpdateWhileQuerying floods queries while updates stream in; every
// response must be well-formed and the server must end at the expected
// epoch. With -race this exercises the epoch swap under real HTTP load.
func TestUpdateWhileQuerying(t *testing.T) {
	s, eng, _ := trainedServer(t)
	const updates = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := do(t, s, http.MethodGet, "/query?class=classmate&query=Kate&k=5", "")
				if rec.Code != http.StatusOK {
					t.Errorf("query during update: %d (%s)", rec.Code, rec.Body.String())
					return
				}
				if rec := do(t, s, http.MethodGet, "/stats", ""); rec.Code != http.StatusOK {
					t.Errorf("stats during update: %d", rec.Code)
					return
				}
			}
		}()
	}
	for i := 0; i < updates; i++ {
		body := fmt.Sprintf(`{"nodes":[{"type":"user","name":"live-%d"}],"edges":[{"u":"live-%d","v":"College A"}]}`, i, i)
		decodeUpdate(t, do(t, s, http.MethodPost, "/update", body))
	}
	close(stop)
	wg.Wait()
	s.WaitCompactions()
	if got := eng.Epoch(); got != updates {
		t.Fatalf("epoch = %d, want %d", got, updates)
	}
}

// TestConcurrentUpdatesDoNotCrossWire is the regression test for the
// id-prediction race: two /update handlers that resolved names off the
// same epoch used to predict the same fresh node ids and silently wire
// one request's edges into the other's node. Handlers now serialize, so
// every concurrently added node must end up with exactly its own edges.
func TestConcurrentUpdatesDoNotCrossWire(t *testing.T) {
	s, eng, g := trainedServer(t)
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(
				`{"nodes":[{"type":"user","name":"cc-%d"}],"edges":[{"u":"cc-%d","v":"College A"},{"u":"cc-%d","v":"Alice"}]}`,
				i, i, i)
			if rec := do(t, s, http.MethodPost, "/update", body); rec.Code != http.StatusOK {
				t.Errorf("update %d: %d (%s)", i, rec.Code, rec.Body.String())
			}
		}(i)
	}
	wg.Wait()
	s.WaitCompactions()
	ng := eng.Graph()
	if got := ng.NumNodes(); got != g.NumNodes()+n {
		t.Fatalf("nodes = %d, want %d", got, g.NumNodes()+n)
	}
	if got := ng.NumEdges(); got != g.NumEdges()+2*n {
		t.Fatalf("edges = %d, want %d", got, g.NumEdges()+2*n)
	}
	college, alice := ng.NodeByName("College A"), ng.NodeByName("Alice")
	for i := 0; i < n; i++ {
		v := ng.NodeByName(fmt.Sprintf("cc-%d", i))
		if v == semprox.InvalidNode {
			t.Fatalf("cc-%d missing", i)
		}
		if ng.Degree(v) != 2 || !ng.HasEdge(v, college) || !ng.HasEdge(v, alice) {
			t.Fatalf("cc-%d has wrong edges (degree %d)", i, ng.Degree(v))
		}
	}
	if eng.Epoch() != n {
		t.Fatalf("epoch = %d, want %d", eng.Epoch(), n)
	}
}
