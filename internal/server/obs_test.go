package server

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/api"
)

// TestMetricsEndpoint: /metrics renders the server registry (per-endpoint
// request counters, engine position gauges) merged with the process
// default (engine apply histogram), in parseable Prometheus text.
func TestMetricsEndpoint(t *testing.T) {
	s, _, _ := trainedServer(t)
	// Drive one query so per-endpoint series exist.
	if rec := do(t, s, http.MethodGet, api.PathQuery+"?class=classmate&query=Kate", ""); rec.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", rec.Code, rec.Body.String())
	}
	rec := do(t, s, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	expo := rec.Body.String()
	for _, series := range []string{
		`semprox_http_requests_total{code="2xx",path="/v1/query"}`,
		"semprox_engine_epoch",
		"semprox_engine_lsn",
		"semprox_engine_apply_seconds", // default-registry family, merged in
	} {
		if !strings.Contains(expo, series) {
			t.Errorf("exposition lacks %s", series)
		}
	}
	// Writes are rejected: the exposition is a read-only surface.
	if rec := do(t, s, http.MethodPost, "/metrics", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}

// TestTraceEchoedOnError: the response trace header is set before the
// handler runs, so error envelopes carry it — accepted from the caller
// when present, minted when absent.
func TestTraceEchoedOnError(t *testing.T) {
	s, _, _ := trainedServer(t)
	r := httptest.NewRequest(http.MethodGet, api.PathQuery, nil) // missing params: 400
	r.Header.Set(api.HeaderTrace, "trace-err-1")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", w.Code)
	}
	if got := w.Header().Get(api.HeaderTrace); got != "trace-err-1" {
		t.Fatalf("error response trace = %q, want the caller's", got)
	}
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, api.PathQuery, nil))
	if w.Header().Get(api.HeaderTrace) == "" {
		t.Fatal("server minted no trace for a bare request")
	}
}

// TestRequestLogLine: SetRequestLog emits one structured line per request
// with the trace ID and canonical fields, escalating to Warn past the
// slow threshold.
func TestRequestLogLine(t *testing.T) {
	s, _, _ := trainedServer(t)
	var buf bytes.Buffer
	s.SetRequestLog(slog.New(slog.NewTextHandler(&buf, nil)), 0)
	r := httptest.NewRequest(http.MethodGet, api.PathHealthz, nil)
	r.Header.Set(api.HeaderTrace, "trace-log-1")
	s.ServeHTTP(httptest.NewRecorder(), r)
	line := buf.String()
	for _, want := range []string{
		"component=server", "path=/v1/healthz", "status=200", "trace=trace-log-1",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log line lacks %q: %s", want, line)
		}
	}
	if strings.Contains(line, "slow=true") {
		t.Errorf("zero threshold escalated: %s", line)
	}

	buf.Reset()
	s.SetRequestLog(slog.New(slog.NewTextHandler(&buf, nil)), time.Nanosecond)
	s.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, api.PathHealthz, nil))
	if line := buf.String(); !strings.Contains(line, "slow=true") || !strings.Contains(line, "level=WARN") {
		t.Errorf("1ns threshold did not escalate: %s", line)
	}
}
