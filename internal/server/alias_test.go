package server

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"

	semprox "repro"
	"repro/api"
	"repro/internal/wal"
)

// twinServers builds two byte-identical durable primaries (one engine
// saved and loaded twice, two empty WALs) so a request sequence can be
// driven through the /v1 paths on one and the legacy aliases on the
// other — including mutating requests, whose state must evolve
// identically on both.
func twinServers(t *testing.T) (v1, legacy *Server) {
	t.Helper()
	_, eng, _ := trainedServer(t)
	var snap bytes.Buffer
	if err := eng.Save(&snap); err != nil {
		t.Fatal(err)
	}
	mk := func() *Server {
		loaded, err := semprox.LoadEngine(bytes.NewReader(snap.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		w, err := wal.Open(t.TempDir(), wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		s := New(loaded)
		s.SetAutoCompact(false) // keep pending counts deterministic mid-sequence
		s.AttachWAL(w)
		return s
	}
	return mk(), mk()
}

// TestLegacyAliasesServeByteIdentical is the alias regression contract:
// every unversioned legacy path must answer byte-for-byte what its /v1
// twin answers — same status, same headers that matter (Content-Type,
// Allow), same body — across success, client-error, method-error and
// mutating requests. The table walks every mounted endpoint.
func TestLegacyAliasesServeByteIdentical(t *testing.T) {
	sV1, sLegacy := twinServers(t)
	steps := []struct {
		name   string
		method string
		path   string // versioned form; the legacy request strips /v1
		query  string
		body   string
	}{
		{"healthz", http.MethodGet, api.PathHealthz, "", ""},
		{"healthz bad method", http.MethodPost, api.PathHealthz, "", "{}"},
		{"classes", http.MethodGet, api.PathClasses, "", ""},
		{"readyz", http.MethodGet, api.PathReadyz, "", ""},
		{"stats", http.MethodGet, api.PathStats, "", ""},
		{"query get", http.MethodGet, api.PathQuery, "?class=classmate&query=Kate&k=5", ""},
		{"query post single", http.MethodPost, api.PathQuery, "", `{"class":"classmate","query":"Kate","k":3}`},
		{"query post batch", http.MethodPost, api.PathQuery, "", `{"class":"classmate","queries":["Kate","Bob"],"k":4}`},
		{"query unknown class", http.MethodGet, api.PathQuery, "?class=nope&query=Kate", ""},
		{"query unknown node", http.MethodGet, api.PathQuery, "?class=classmate&query=Nobody", ""},
		{"query malformed", http.MethodPost, api.PathQuery, "", `{"class":`},
		{"query bad method", http.MethodDelete, api.PathQuery, "", ""},
		{"proximity get", http.MethodGet, api.PathProximity, "?class=classmate&x=Kate&y=Jay", ""},
		{"proximity post", http.MethodPost, api.PathProximity, "", `{"class":"classmate","x":"Kate","y":"Jay"}`},
		{"proximity missing y", http.MethodGet, api.PathProximity, "?class=classmate&x=Kate", ""},
		{"update", http.MethodPost, api.PathUpdate, "", `{"nodes":[{"type":"user","name":"al-1"}],"edges":[{"u":"al-1","v":"Kate"}]}`},
		{"update second", http.MethodPost, api.PathUpdate, "", `{"edges":[{"u":"al-1","v":"Alice"}]}`},
		{"update empty", http.MethodPost, api.PathUpdate, "", `{}`},
		{"update unknown type", http.MethodPost, api.PathUpdate, "", `{"nodes":[{"type":"starship","name":"x"}]}`},
		{"update bad method", http.MethodGet, api.PathUpdate, "", ""},
		{"stats after updates", http.MethodGet, api.PathStats, "", ""},
		{"query after updates", http.MethodGet, api.PathQuery, "?class=classmate&query=al-1&k=5", ""},
		{"replicate since", http.MethodGet, api.PathReplicateSince, "?lsn=0", ""},
		{"replicate since caught up", http.MethodGet, api.PathReplicateSince, "?lsn=2", ""},
		{"replicate since bad lsn", http.MethodGet, api.PathReplicateSince, "?lsn=x", ""},
		{"replicate snapshot", http.MethodGet, api.PathReplicateSnapshot, "", ""},
		{"readyz after updates", http.MethodGet, api.PathReadyz, "", ""},
	}
	for _, tc := range steps {
		legacyPath := api.LegacyPath(tc.path)
		if legacyPath == tc.path {
			t.Fatalf("%s: %q has no legacy alias", tc.name, tc.path)
		}
		r1 := do(t, sV1, tc.method, tc.path+tc.query, tc.body)
		r2 := do(t, sLegacy, tc.method, legacyPath+tc.query, tc.body)
		if r1.Code != r2.Code {
			t.Fatalf("%s: status %d (v1) vs %d (legacy)\nv1: %s\nlegacy: %s",
				tc.name, r1.Code, r2.Code, r1.Body.String(), r2.Body.String())
		}
		for _, h := range []string{"Content-Type", "Allow"} {
			if a, b := r1.Header().Get(h), r2.Header().Get(h); a != b {
				t.Fatalf("%s: header %s %q (v1) vs %q (legacy)", tc.name, h, a, b)
			}
		}
		if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
			t.Fatalf("%s: body drifted between %s and %s:\nv1: %s\nlegacy: %s",
				tc.name, tc.path, legacyPath, r1.Body.String(), r2.Body.String())
		}
	}

	// The two engines must have converged through the mutating steps —
	// the aliases really hit the same handlers, not lookalike copies.
	st1 := do(t, sV1, http.MethodGet, api.PathStats, "")
	st2 := do(t, sLegacy, http.MethodGet, "/stats", "")
	if !bytes.Equal(st1.Body.Bytes(), st2.Body.Bytes()) {
		t.Fatalf("final stats drifted:\n%s\nvs\n%s", st1.Body.String(), st2.Body.String())
	}
}

// TestEveryEndpointMountedTwice guards the route table: each api path
// must answer on both its versioned and legacy form (anything mounted
// once would 404 on the other, which the byte-identity test above could
// miss if the table ever lagged the mux).
func TestEveryEndpointMountedTwice(t *testing.T) {
	s, _, _ := trainedServer(t)
	for _, p := range api.Paths() {
		for _, target := range []string{p, api.LegacyPath(p)} {
			rec := do(t, s, http.MethodGet, target, "")
			if rec.Code == http.StatusNotFound && bytes.Contains(rec.Body.Bytes(), []byte("404 page not found")) {
				t.Errorf("%s: not mounted (%d: %s)", target, rec.Code, rec.Body.String())
			}
		}
	}
	// Sanity: an unmounted path really does produce the mux 404 this test
	// keys on.
	rec := do(t, s, http.MethodGet, fmt.Sprintf("%s/nope", api.Prefix), "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unmounted path = %d, want 404", rec.Code)
	}
}
