// Package server exposes a semprox.Engine over HTTP/JSON — the online
// serving layer of the ROADMAP's "heavy traffic" north star. Endpoints:
//
//	GET  /healthz    liveness plus graph/class inventory
//	GET  /classes    trained class names
//	GET  /query      one ranked query (?class=&query=&k=)
//	POST /query      one query {"class","query","k"} or a batch
//	                 {"class","queries":[...],"k"} in a single request
//	GET  /proximity  one pair score (?class=&x=&y=)
//	POST /proximity  one pair score {"class","x","y"}
//
// Every error is structured JSON — {"error":{"code","message"}} — with a
// 4xx status for client mistakes (unknown class or node, malformed JSON,
// oversized batch), so callers never parse free-text failures. Handlers
// only use the engine operations documented as safe for concurrent use, so
// the server can keep answering while new classes train in the background.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	semprox "repro"
)

// MaxBatch bounds the queries accepted by one batched /query request; a
// larger batch is a client error, not a way to monopolize the process.
const MaxBatch = 1024

// maxBodyBytes bounds a request body (a full batch of long node names fits
// comfortably).
const maxBodyBytes = 1 << 20

// defaultK is the result count when a request leaves k unset.
const defaultK = 10

// Server routes HTTP requests to one engine.
type Server struct {
	eng *semprox.Engine
	mux *http.ServeMux
}

// New wraps an engine in an HTTP handler.
func New(eng *semprox.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/classes", s.handleClasses)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/proximity", s.handleProximity)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is the structured error body of every non-2xx response.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// httpError carries a status and structured body up from helpers.
type httpError struct {
	status int
	apiError
}

func (e *httpError) Error() string { return e.Message }

// errBadRequest builds a 400 with code "bad_request".
func errBadRequest(format string, args ...any) *httpError {
	return &httpError{http.StatusBadRequest, apiError{"bad_request", fmt.Sprintf(format, args...)}}
}

// errNotFound builds a 404 with the given code.
func errNotFound(code, format string, args ...any) *httpError {
	return &httpError{http.StatusNotFound, apiError{code, fmt.Sprintf(format, args...)}}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

// writeErr writes err as a structured error response.
func writeErr(w http.ResponseWriter, err *httpError) {
	writeJSON(w, err.status, struct {
		Error apiError `json:"error"`
	}{err.apiError})
}

// methodCheck 405s anything but the allowed methods.
func methodCheck(w http.ResponseWriter, r *http.Request, allowed ...string) bool {
	for _, m := range allowed {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	writeJSON(w, http.StatusMethodNotAllowed, struct {
		Error apiError `json:"error"`
	}{apiError{"method_not_allowed", fmt.Sprintf("method %s not allowed on %s", r.Method, r.URL.Path)}})
	return false
}

// decodeStrict decodes one JSON object, rejecting unknown fields, trailing
// garbage and oversized bodies with client errors.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) *httpError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errBadRequest("request body exceeds %d bytes", maxBodyBytes)
		}
		return errBadRequest("malformed JSON: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errBadRequest("trailing data after JSON body")
	}
	return nil
}

// resolveClass 404s for classes the engine has not trained.
func (s *Server) resolveClass(class string) *httpError {
	if class == "" {
		return errBadRequest("missing class")
	}
	for _, c := range s.eng.Classes() {
		if c == class {
			return nil
		}
	}
	return errNotFound("class_not_found", "class %q not trained (have %v)", class, s.eng.Classes())
}

// resolveNode maps a node name to its id, 404ing unknown names.
func (s *Server) resolveNode(field, name string) (semprox.NodeID, *httpError) {
	if name == "" {
		return semprox.InvalidNode, errBadRequest("missing %s", field)
	}
	id := s.eng.Graph().NodeByName(name)
	if id == semprox.InvalidNode {
		return semprox.InvalidNode, errNotFound("node_not_found", "node %q not in graph", name)
	}
	return id, nil
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status     string   `json:"status"`
	Nodes      int      `json:"nodes"`
	Edges      int      `json:"edges"`
	Types      int      `json:"types"`
	Metagraphs int      `json:"metagraphs"`
	Classes    []string `json:"classes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	g := s.eng.Graph()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Types:      g.NumTypes(),
		Metagraphs: s.eng.NumMetagraphs(),
		Classes:    s.eng.Classes(),
	})
}

func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Classes []string `json:"classes"`
	}{s.eng.Classes()})
}

// queryRequest is the /query body: exactly one of Query (single) or
// Queries (batch) must be set.
type queryRequest struct {
	Class   string   `json:"class"`
	Query   string   `json:"query,omitempty"`
	Queries []string `json:"queries,omitempty"`
	K       int      `json:"k,omitempty"`
}

// rankedResult is one entry of a ranking.
type rankedResult struct {
	Node  int32   `json:"node"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// queryResult is the ranking of one query.
type queryResult struct {
	Query   string         `json:"query"`
	Results []rankedResult `json:"results"`
}

// batchResult is the /query response for a batched request.
type batchResult struct {
	Class   string        `json:"class"`
	K       int           `json:"k"`
	Results []queryResult `json:"results"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	var req queryRequest
	if r.Method == http.MethodGet {
		req.Class = r.URL.Query().Get("class")
		req.Query = r.URL.Query().Get("query")
		if kStr := r.URL.Query().Get("k"); kStr != "" {
			k, err := strconv.Atoi(kStr)
			if err != nil {
				writeErr(w, errBadRequest("bad k %q", kStr))
				return
			}
			req.K = k
		}
	} else if herr := decodeStrict(w, r, &req); herr != nil {
		writeErr(w, herr)
		return
	}
	// k is a client-facing knob: 0 means "the default", and negative
	// values are rejected rather than inheriting the engine's internal
	// "k <= 0 returns every candidate" convention — an unbounded response
	// a client can't ask for by accident.
	if req.K < 0 {
		writeErr(w, errBadRequest("k must be >= 0, got %d", req.K))
		return
	}
	if req.K == 0 {
		req.K = defaultK
	}
	if herr := s.resolveClass(req.Class); herr != nil {
		writeErr(w, herr)
		return
	}
	switch {
	case req.Query != "" && len(req.Queries) > 0:
		writeErr(w, errBadRequest("set query or queries, not both"))
	case req.Query != "":
		s.querySingle(w, req)
	case len(req.Queries) > 0:
		s.queryBatch(w, req)
	default:
		writeErr(w, errBadRequest("missing query"))
	}
}

// querySingle answers one query through the sharded scan.
func (s *Server) querySingle(w http.ResponseWriter, req queryRequest) {
	q, herr := s.resolveNode("query", req.Query)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	ranked, err := s.eng.Query(req.Class, q, req.K)
	if err != nil {
		writeErr(w, errNotFound("class_not_found", "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, batchResult{
		Class:   req.Class,
		K:       req.K,
		Results: []queryResult{s.render(req.Query, ranked)},
	})
}

// queryBatch resolves every query name, then answers them in one
// QueryBatch call that fans out over the engine's workers.
func (s *Server) queryBatch(w http.ResponseWriter, req queryRequest) {
	if len(req.Queries) > MaxBatch {
		writeErr(w, errBadRequest("batch of %d queries exceeds limit %d", len(req.Queries), MaxBatch))
		return
	}
	qs := make([]semprox.NodeID, len(req.Queries))
	for i, name := range req.Queries {
		q, herr := s.resolveNode(fmt.Sprintf("queries[%d]", i), name)
		if herr != nil {
			writeErr(w, herr)
			return
		}
		qs[i] = q
	}
	rankings, err := s.eng.QueryBatch(req.Class, qs, req.K)
	if err != nil {
		writeErr(w, errNotFound("class_not_found", "%v", err))
		return
	}
	out := batchResult{Class: req.Class, K: req.K, Results: make([]queryResult, len(rankings))}
	for i, ranked := range rankings {
		out.Results[i] = s.render(req.Queries[i], ranked)
	}
	writeJSON(w, http.StatusOK, out)
}

// render converts one engine ranking to its JSON shape.
func (s *Server) render(query string, ranked []semprox.Ranked) queryResult {
	g := s.eng.Graph()
	out := queryResult{Query: query, Results: make([]rankedResult, len(ranked))}
	for i, r := range ranked {
		out.Results[i] = rankedResult{Node: int32(r.Node), Name: g.Name(r.Node), Score: r.Score}
	}
	return out
}

// proximityRequest is the /proximity body.
type proximityRequest struct {
	Class string `json:"class"`
	X     string `json:"x"`
	Y     string `json:"y"`
}

func (s *Server) handleProximity(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	var req proximityRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		req.Class, req.X, req.Y = q.Get("class"), q.Get("x"), q.Get("y")
	} else if herr := decodeStrict(w, r, &req); herr != nil {
		writeErr(w, herr)
		return
	}
	if herr := s.resolveClass(req.Class); herr != nil {
		writeErr(w, herr)
		return
	}
	x, herr := s.resolveNode("x", req.X)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	y, herr := s.resolveNode("y", req.Y)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	p, err := s.eng.Proximity(req.Class, x, y)
	if err != nil {
		writeErr(w, errNotFound("class_not_found", "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Class     string  `json:"class"`
		X         string  `json:"x"`
		Y         string  `json:"y"`
		Proximity float64 `json:"proximity"`
	}{req.Class, req.X, req.Y, p})
}
