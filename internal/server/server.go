// Package server exposes a semprox.Engine over HTTP/JSON — the online
// serving layer of the ROADMAP's "heavy traffic" north star. The wire
// contract — every request/response type, the error envelope, the path
// constants, the request limits — lives in the public api package; this
// package only binds those shapes to an engine. Endpoints (all under
// /v1, with the unversioned pre-v1 paths served as byte-identical
// aliases):
//
//	GET  /v1/healthz    liveness plus graph/class inventory
//	GET  /v1/classes    trained class names
//	GET  /v1/query      one ranked query (?class=&query=&k=)
//	POST /v1/query      one query {"class","query","k"} or a batch
//	                    {"class","queries":[...],"k"} in a single request
//	GET  /v1/proximity  one pair score (?class=&x=&y=)
//	POST /v1/proximity  one pair score {"class","x","y"}
//	POST /v1/update     batched live node/edge additions
//	                    {"nodes":[{"type","name"}],"edges":[{"u","v"}]}
//	GET  /v1/stats      serving epoch + LSN, graph counts, matched
//	                    metagraphs, pending-compaction state
//	GET  /v1/readyz     readiness: primaries are ready once serving;
//	                    followers report replication lag and stay 503
//	                    until caught up
//	GET  /v1/replicate/snapshot   engine snapshot stream (follower bootstrap)
//	GET  /v1/replicate/since      WAL records after an LSN, long-polling
//	                              (503 unless a WAL is attached)
//
// Query and proximity responses carry the serving epoch that computed
// them in the api.HeaderEpoch response header — transport metadata, so
// bodies stay byte-identical across replicas — which is what lets the
// semproxy edge cache key entries by exact data generation.
//
// Every error is the api package's structured envelope —
// {"error":{"code","message"}} — with a 4xx status for client mistakes
// (unknown class, node or type, malformed JSON, oversized batch), so
// callers never parse free-text failures. Handlers only use the engine
// operations documented as safe for concurrent use, so the server keeps
// answering while classes train, updates apply, and overlays compact in
// the background: an update swaps the serving epoch atomically, and a
// query sees the old epoch or the new one, never a mix.
//
// Durability and roles: AttachWAL makes the server a primary — every
// update is appended and fsynced to the write-ahead log before it is
// applied, and the /v1/replicate endpoints feed followers. SetFollower
// makes it a read replica — updates return 503 (the primary owns writes)
// and /v1/readyz reports catch-up progress.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	semprox "repro"
	"repro/api"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/wal"
)

// Request limits re-exported from the wire contract; the api package is
// the source of truth.
const (
	MaxBatch     = api.MaxBatch
	MaxUpdate    = api.MaxUpdate
	maxBodyBytes = api.MaxBodyBytes
	defaultK     = api.DefaultK
)

// role is everything about the server that changes when the node's
// place in the replication topology changes: the engine it serves, the
// log it writes (primary), and the follower feeding it (replica). It is
// swapped as ONE atomic pointer — a promotion (follower → primary on
// failover) replaces the whole set in a single store, and every handler
// loads it exactly once per request, so no request ever sees a primary
// log paired with a follower engine.
type role struct {
	eng *semprox.Engine
	// log, when attached, makes every update durable before its ack;
	// primary then serves it to followers over /v1/replicate.
	log     *wal.WAL
	primary *replica.Primary
	// follower, when set, marks this server a read replica: updates are
	// refused and /v1/readyz reports replication lag.
	follower *replica.Follower
}

// Server routes HTTP requests to one engine.
type Server struct {
	role atomic.Pointer[role]
	mux  *http.ServeMux
	// reg is this server's own metric registry: per-endpoint latency and
	// status-class series plus the engine position gauges. Process-wide
	// families (WAL, replica, engine hot paths) live on the obs default
	// registry; /metrics renders the union, so one scrape sees both —
	// and in-process multi-server stacks keep per-server HTTP counters
	// separable, which is what lets loadgen cross-check request counts.
	reg *obs.Registry
	// wrap is mux behind the obs middleware (tracing, metrics, request
	// log). Rebuilt by SetRequestLog — call that before serving.
	wrap http.Handler
	// autoCompact folds update overlays into flat storage from a
	// background goroutine after each update; compacting wakes track the
	// in-flight goroutines so tests (and graceful shutdown) can wait.
	autoCompact bool
	compacting  sync.WaitGroup
	// updateMu serializes update handlers. The handler predicts the ids
	// of the nodes it adds (n, n+1, ... off the current graph) before
	// calling ApplyUpdate; two concurrent handlers predicting off the
	// same epoch would race to the same ids and silently cross-wire their
	// edges, so the whole read-resolve-apply sequence is one critical
	// section — including the WAL append, which must START in apply
	// order. Queries never touch this lock.
	//
	// The fsync does NOT happen under this lock: the handler enqueues
	// the record (wal.AppendAsync) and applies it inside the critical
	// section, then waits for durability (wal.WaitDurable) outside it —
	// so while update N's fsync runs, update N+1 is already resolving
	// and enqueueing, and the log's group commit folds both into one
	// fsync. The ack still only leaves after the record is on disk;
	// what's pipelined is ack N vs fsync N+1, not durability itself.
	updateMu sync.Mutex
	// ackReplicas > 0 additionally holds each update's ack until some
	// follower has confirmed (via its poll position) durably applying
	// the record — synchronous replication, the failover guarantee that
	// an acked write survives losing the primary.
	ackReplicas atomic.Int64
}

// New wraps an engine in an HTTP handler with background compaction after
// updates enabled. Every endpoint is mounted twice — at its versioned
// /v1 path and at its unversioned legacy alias — serving byte-identical
// responses (error messages mention the canonical /v1 path either way).
func New(eng *semprox.Engine) *Server {
	s := &Server{mux: http.NewServeMux(), reg: obs.NewRegistry(), autoCompact: true}
	s.role.Store(&role{eng: eng})
	for path, h := range map[string]http.HandlerFunc{
		api.PathHealthz:           s.handleHealthz,
		api.PathClasses:           s.handleClasses,
		api.PathQuery:             s.handleQuery,
		api.PathProximity:         s.handleProximity,
		api.PathUpdate:            s.handleUpdate,
		api.PathStats:             s.handleStats,
		api.PathReadyz:            s.handleReadyz,
		api.PathReplicateSince:    s.handleReplicateSince,
		api.PathReplicateSnapshot: s.handleReplicateSnapshot,
	} {
		s.mux.HandleFunc(path, h)
		s.mux.HandleFunc(api.LegacyPath(path), h)
	}
	s.mux.Handle(metricsPath, obs.Handler(s.reg, obs.Default()))
	// The epoch/LSN gauges read through s.engine() so a follower's
	// re-bootstrap (which swaps engines) and a promotion keep the series
	// pointed at whatever engine is actually serving.
	s.reg.RegisterGaugeFunc("semprox_engine_epoch",
		"Serving epoch of the engine behind this server (one per applied update).",
		func() float64 { return float64(s.engine().Epoch()) })
	s.reg.RegisterGaugeFunc("semprox_engine_lsn",
		"Durable log position of the serving epoch.",
		func() float64 { return float64(s.engine().LSN()) })
	s.buildWrap(nil, 0)
	return s
}

// metricsPath serves the Prometheus exposition. Unversioned on purpose:
// it is operational surface, not part of the /v1 wire contract.
const metricsPath = "/metrics"

// buildWrap (re)wraps the mux with the obs middleware.
func (s *Server) buildWrap(logger *slog.Logger, slow time.Duration) {
	s.wrap = obs.WrapHTTP(s.mux, obs.HTTPOptions{
		Registry:      s.reg,
		TraceHeader:   api.HeaderTrace,
		Component:     "server",
		Logger:        logger,
		SlowThreshold: slow,
		PathLabel:     pathLabel,
		EpochHeader:   api.HeaderEpoch,
	})
}

// SetRequestLog enables one structured log line per request on logger —
// endpoint, status, latency, trace ID, serving epoch — escalated to Warn
// when a request takes at least slow (0 never escalates). The daemons
// enable this; in-process test stacks stay quiet by default. Call before
// serving.
func (s *Server) SetRequestLog(logger *slog.Logger, slow time.Duration) {
	s.buildWrap(logger, slow)
}

// knownPaths bounds metric label cardinality: canonical /v1 paths and
// /metrics keep their names, everything else (typos, scans) collapses.
var knownPaths = func() map[string]bool {
	m := map[string]bool{metricsPath: true}
	for _, p := range api.Paths() {
		m[p] = true
	}
	return m
}()

func pathLabel(p string) string {
	if c := api.CanonicalPath(p); knownPaths[c] {
		return c
	}
	return "other"
}

// AttachWAL makes the server a primary: every accepted update is
// appended (and fsynced, via the log's group commit) to w before its
// ack, and the /v1/replicate endpoints serve the log to followers. Call
// before serving.
func (s *Server) AttachWAL(w *wal.WAL) {
	eng := s.role.Load().eng
	s.role.Store(&role{eng: eng, log: w, primary: replica.NewPrimary(eng, w)})
}

// SetFollower marks the server a read replica fed by f: updates return
// 503 (writes belong to the primary) and /v1/readyz reports catch-up
// state. Call before serving.
func (s *Server) SetFollower(f *replica.Follower) {
	s.role.Store(&role{eng: s.role.Load().eng, follower: f})
}

// SetAckReplicas makes every update ack wait until a follower confirms
// durably applying it (n > 0; the count is advisory — one confirming
// follower releases the ack). Safe to call while serving.
func (s *Server) SetAckReplicas(n int) { s.ackReplicas.Store(int64(n)) }

// Promote flips a follower server into a primary serving writes on w —
// the follower's own promoted log (Follower.Promote). The follower's
// current engine, the log, and a fresh Primary replace the old role in
// one atomic store: requests already past their role load finish under
// the old one (they were refusing updates — still correct), everything
// after serves the new. Call only after the follower's Run has stopped.
func (s *Server) Promote(w *wal.WAL) error {
	cur := s.role.Load()
	if cur.follower == nil {
		return errors.New("server: promote: not a follower")
	}
	eng := cur.follower.Engine()
	if eng == nil {
		return errors.New("server: promote: follower has no engine (never bootstrapped)")
	}
	if got, want := eng.LSN()+1, w.NextLSN(); got != want {
		return fmt.Errorf("server: promote: engine expects LSN %d but the log would assign %d", got, want)
	}
	s.role.Store(&role{eng: eng, log: w, primary: replica.NewPrimary(eng, w)})
	return nil
}

// engine returns the engine requests should serve. A follower's engine
// is read through the follower on every request: divergence makes
// Follower.Run re-bootstrap, which swaps in a brand-new engine, and
// handlers that held on to the old pointer would keep serving frozen
// data forever. Each handler calls this once and uses the result
// throughout, so a single request never mixes two engines.
func (s *Server) engine() *semprox.Engine {
	rl := s.role.Load()
	if rl.follower != nil {
		if eng := rl.follower.Engine(); eng != nil {
			return eng
		}
	}
	return rl.eng
}

// SetAutoCompact toggles background compaction after updates. Call before
// serving; with it off, stats keep reporting the pending overlays until
// the operator compacts some other way.
func (s *Server) SetAutoCompact(on bool) { s.autoCompact = on }

// WaitCompactions blocks until every background compaction kicked off by
// handled updates has finished.
func (s *Server) WaitCompactions() { s.compacting.Wait() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.wrap.ServeHTTP(w, r) }

// errBadRequest builds a 400 with code "bad_request".
func errBadRequest(format string, args ...any) *api.Error {
	return api.Errorf(http.StatusBadRequest, api.CodeBadRequest, format, args...)
}

// errNotFound builds a 404 with the given code.
func errNotFound(code, format string, args ...any) *api.Error {
	return api.Errorf(http.StatusNotFound, code, format, args...)
}

// errUnavailable builds a 503 with the given code.
func errUnavailable(code, format string, args ...any) *api.Error {
	return api.Errorf(http.StatusServiceUnavailable, code, format, args...)
}

// errInternal builds a 500 with code "internal".
func errInternal(format string, args ...any) *api.Error {
	return api.Errorf(http.StatusInternalServerError, api.CodeInternal, format, args...)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

// writeErr writes err as the structured error envelope.
func writeErr(w http.ResponseWriter, err *api.Error) {
	writeJSON(w, err.Status, api.ErrorEnvelope{Error: *err})
}

// methodCheck 405s anything but the allowed methods. The message names
// the canonical /v1 path whichever alias was hit, keeping legacy and
// versioned responses byte-identical.
func methodCheck(w http.ResponseWriter, r *http.Request, allowed ...string) bool {
	for _, m := range allowed {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	writeErr(w, api.Errorf(http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
		"method %s not allowed on %s", r.Method, api.CanonicalPath(r.URL.Path)))
	return false
}

// decodeStrict decodes one JSON object, rejecting unknown fields, trailing
// garbage and oversized bodies with client errors.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) *api.Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errBadRequest("request body exceeds %d bytes", maxBodyBytes)
		}
		return errBadRequest("malformed JSON: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errBadRequest("trailing data after JSON body")
	}
	return nil
}

// resolveClass 404s for classes the serving epoch has not trained.
func resolveClass(classes []string, class string) *api.Error {
	if class == "" {
		return errBadRequest("missing class")
	}
	for _, c := range classes {
		if c == class {
			return nil
		}
	}
	return errNotFound(api.CodeClassNotFound, "class %q not trained (have %v)", class, classes)
}

// resolveNode maps a node name to its id, 404ing unknown names.
func resolveNode(g *semprox.Graph, field, name string) (semprox.NodeID, *api.Error) {
	if name == "" {
		return semprox.InvalidNode, errBadRequest("missing %s", field)
	}
	id := g.NodeByName(name)
	if id == semprox.InvalidNode {
		return semprox.InvalidNode, errNotFound(api.CodeNodeNotFound, "node %q not in graph", name)
	}
	return id, nil
}

// setEpochHeader stamps a read response with the serving epoch that
// produced it (api.HeaderEpoch). The value comes from the SAME pinned
// View the results were computed on — reading Engine.Epoch separately
// here could pair an old epoch's results with a new epoch's counter
// across a concurrent update, exactly the torn pairing an epoch-keyed
// edge cache cannot tolerate.
func setEpochHeader(w http.ResponseWriter, v semprox.View) {
	w.Header().Set(api.HeaderEpoch, strconv.FormatUint(v.Epoch(), 10))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	eng := s.engine()
	g := eng.Graph()
	writeJSON(w, http.StatusOK, api.HealthResponse{
		Status:     "ok",
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Types:      g.NumTypes(),
		Metagraphs: eng.NumMetagraphs(),
		Classes:    eng.Classes(),
	})
}

func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, api.ClassesResponse{Classes: s.engine().Classes()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	var req api.QueryRequest
	if r.Method == http.MethodGet {
		req.Class = r.URL.Query().Get("class")
		req.Query = r.URL.Query().Get("query")
		if kStr := r.URL.Query().Get("k"); kStr != "" {
			k, err := strconv.Atoi(kStr)
			if err != nil {
				writeErr(w, errBadRequest("bad k %q", kStr))
				return
			}
			req.K = k
		}
	} else if herr := decodeStrict(w, r, &req); herr != nil {
		writeErr(w, herr)
		return
	}
	// k is a client-facing knob: 0 means "the default", and negative
	// values are rejected rather than inheriting the engine's internal
	// "k <= 0 returns every candidate" convention — an unbounded response
	// a client can't ask for by accident.
	if req.K < 0 {
		writeErr(w, errBadRequest("k must be >= 0, got %d", req.K))
		return
	}
	if req.K == 0 {
		req.K = defaultK
	}
	// One pinned View answers the whole request — name resolution, the
	// scan, and the epoch header all describe the same generation, even
	// if an update swaps a new epoch in mid-request.
	v := s.engine().View()
	if herr := resolveClass(v.Classes(), req.Class); herr != nil {
		writeErr(w, herr)
		return
	}
	switch {
	case req.Query != "" && len(req.Queries) > 0:
		writeErr(w, errBadRequest("set query or queries, not both"))
	case req.Query != "":
		querySingle(w, v, req)
	case len(req.Queries) > 0:
		queryBatch(w, v, req)
	default:
		writeErr(w, errBadRequest("missing query"))
	}
}

// querySingle answers one query through the sharded scan.
func querySingle(w http.ResponseWriter, v semprox.View, req api.QueryRequest) {
	q, herr := resolveNode(v.Graph(), "query", req.Query)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	ranked, err := v.Query(req.Class, q, req.K)
	if err != nil {
		writeErr(w, errNotFound(api.CodeClassNotFound, "%v", err))
		return
	}
	setEpochHeader(w, v)
	writeJSON(w, http.StatusOK, api.QueryResponse{
		Class:   req.Class,
		K:       req.K,
		Results: []api.QueryResult{render(v.Graph(), req.Query, ranked)},
	})
}

// queryBatch resolves every query name, then answers them in one
// QueryBatch call that fans out over the engine's workers.
func queryBatch(w http.ResponseWriter, v semprox.View, req api.QueryRequest) {
	if len(req.Queries) > MaxBatch {
		writeErr(w, errBadRequest("batch of %d queries exceeds limit %d", len(req.Queries), MaxBatch))
		return
	}
	qs := make([]semprox.NodeID, len(req.Queries))
	for i, name := range req.Queries {
		q, herr := resolveNode(v.Graph(), fmt.Sprintf("queries[%d]", i), name)
		if herr != nil {
			writeErr(w, herr)
			return
		}
		qs[i] = q
	}
	rankings, err := v.QueryBatch(req.Class, qs, req.K)
	if err != nil {
		writeErr(w, errNotFound(api.CodeClassNotFound, "%v", err))
		return
	}
	out := api.QueryResponse{Class: req.Class, K: req.K, Results: make([]api.QueryResult, len(rankings))}
	for i, ranked := range rankings {
		out.Results[i] = render(v.Graph(), req.Queries[i], ranked)
	}
	setEpochHeader(w, v)
	writeJSON(w, http.StatusOK, out)
}

// render converts one engine ranking to its wire shape.
func render(g *semprox.Graph, query string, ranked []semprox.Ranked) api.QueryResult {
	out := api.QueryResult{Query: query, Results: make([]api.RankedResult, len(ranked))}
	for i, r := range ranked {
		out.Results[i] = api.RankedResult{Node: int32(r.Node), Name: g.Name(r.Node), Score: r.Score}
	}
	return out
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodPost) {
		return
	}
	rl := s.role.Load()
	if rl.follower != nil {
		writeErr(w, errUnavailable(api.CodeNotPrimary,
			"this replica is read-only; send updates to the primary at %s", rl.follower.PrimaryURL()))
		return
	}
	var req api.UpdateRequest
	if herr := decodeStrict(w, r, &req); herr != nil {
		writeErr(w, herr)
		return
	}
	if len(req.Nodes) == 0 && len(req.Edges) == 0 {
		writeErr(w, errBadRequest("empty update: add nodes, edges, or both"))
		return
	}
	if total := len(req.Nodes) + len(req.Edges); total > MaxUpdate {
		writeErr(w, errBadRequest("update of %d additions exceeds limit %d", total, MaxUpdate))
		return
	}
	st, herr := s.applyUpdate(rl, req)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	// Durability gate, OUTSIDE the lock: the record was enqueued and the
	// engine updated in the critical section; the ack leaves only after
	// the log reports the record fsynced. Meanwhile the next update is
	// already inside the critical section enqueueing — its record rides
	// the same or the next group commit. A failed wait means the log is
	// sticky-poisoned (readyz flips wal_failed); the epoch already
	// applied stays visible locally but was never acked.
	if rl.log != nil {
		if err := rl.log.WaitDurable(st.LSN); err != nil {
			writeErr(w, errInternal("update at LSN %d applied but not durable (log failed): %v", st.LSN, err))
			return
		}
		if rl.primary != nil && s.ackReplicas.Load() > 0 {
			// Synchronous replication: hold the ack until a follower's
			// poll position confirms the record is durable off this box
			// too. ctx ends (client gone / server timeout) → the write IS
			// applied and locally durable, but we cannot claim it's
			// replicated; 500 tells the client its fate is unknown.
			if !rl.primary.WaitConfirmed(r.Context(), st.LSN) {
				writeErr(w, errInternal("update at LSN %d durable locally but not yet confirmed by any replica", st.LSN))
				return
			}
		}
	}
	if s.autoCompact && st.Pending > 0 {
		s.compacting.Add(1)
		go func() {
			defer s.compacting.Done()
			rl.eng.Compact()
		}()
	}
	writeJSON(w, http.StatusOK, api.UpdateResponse{
		Epoch:             st.Epoch,
		LSN:               st.LSN,
		NodesAdded:        st.NodesAdded,
		EdgesAdded:        st.EdgesAdded,
		Rematched:         st.Rematched,
		PendingCompaction: st.Pending,
	})
}

// applyUpdate is the update critical section: resolve the request
// against the current graph, enqueue the record, apply the delta. It
// returns with the record IN FLIGHT to disk — the caller must gate the
// ack on WaitDurable.
func (s *Server) applyUpdate(rl *role, req api.UpdateRequest) (semprox.UpdateStats, *api.Error) {
	var zero semprox.UpdateStats
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	eng := rl.eng // never a follower here: the update was refused by the caller
	g := eng.Graph()
	d := semprox.Delta{Nodes: make([]semprox.DeltaNode, len(req.Nodes))}
	fresh := make(map[string]semprox.NodeID, len(req.Nodes))
	for i, n := range req.Nodes {
		if n.Type == "" || n.Name == "" {
			return zero, errBadRequest("nodes[%d]: type and name are required", i)
		}
		if g.Types().ID(n.Type) == semprox.InvalidType {
			return zero, errBadRequest("nodes[%d]: unknown type %q (a delta cannot introduce types)", i, n.Type)
		}
		d.Nodes[i] = semprox.DeltaNode{Type: n.Type, Value: n.Name}
		if _, dup := fresh[n.Name]; !dup {
			fresh[n.Name] = semprox.NodeID(g.NumNodes() + i)
		}
	}
	// One pass over the graph replaces a per-endpoint NodeByName scan;
	// like NodeByName, the first node wins a duplicated name.
	var byName map[string]semprox.NodeID
	if len(req.Edges) > 0 {
		byName = make(map[string]semprox.NodeID, g.NumNodes())
		for v := semprox.NodeID(0); int(v) < g.NumNodes(); v++ {
			if name := g.Name(v); name != "" {
				if _, dup := byName[name]; !dup {
					byName[name] = v
				}
			}
		}
	}
	resolve := func(field, name string) (semprox.NodeID, *api.Error) {
		if name == "" {
			return semprox.InvalidNode, errBadRequest("missing %s", field)
		}
		if id, ok := fresh[name]; ok {
			return id, nil
		}
		if id, ok := byName[name]; ok {
			return id, nil
		}
		return semprox.InvalidNode, errNotFound(api.CodeNodeNotFound, "node %q neither in graph nor added by this update", name)
	}
	d.Edges = make([]semprox.Edge, len(req.Edges))
	for i, e := range req.Edges {
		u, herr := resolve(fmt.Sprintf("edges[%d].u", i), e.U)
		if herr != nil {
			return zero, herr
		}
		v, herr := resolve(fmt.Sprintf("edges[%d].v", i), e.V)
		if herr != nil {
			return zero, herr
		}
		d.Edges[i] = semprox.Edge{U: u, V: v}
	}
	// Log order equals apply order: the delta is enqueued to the log and
	// applied to the engine inside updateMu. The enqueue assigns the LSN
	// and starts the record toward disk but does NOT wait for the fsync —
	// that's the caller's WaitDurable, outside the lock, which is what
	// lets consecutive updates share one group commit. A crash can
	// therefore lose an applied-but-unsynced suffix; no ack ever covered
	// it (WaitDurable gates every ack), and recovery replays exactly the
	// durable prefix.
	var st semprox.UpdateStats
	var err error
	if rl.log != nil {
		lsn, aerr := rl.log.AppendAsync(d)
		if aerr != nil {
			return zero, errInternal("wal append: %v", aerr)
		}
		st, err = eng.ApplyUpdateAt(d, lsn)
		if err != nil {
			// The record is logged but the engine rejected it — the
			// validation above is meant to make this unreachable. Leaving
			// the log and engine disagreeing would brick the next boot
			// (replay hits the same record) and wedge followers, so first
			// make the record itself durable, then record the skip durably
			// in the log's skip list, then advance the LSN past the dead
			// record: ApplyUpdateAt is deterministic, so replay reproduces
			// the recorded skip and re-bootstrapping replicas land beyond
			// it — every copy stays aligned. (The skip sidecar must never
			// name a record that isn't on disk, hence the wait first.)
			log.Printf("server: update logged at LSN %d but rejected by the engine (recording the skip): %v", lsn, err)
			if derr := rl.log.WaitDurable(lsn); derr != nil {
				// The record never became durable and the log is poisoned
				// (readyz now wal_failed); with no durable record there is
				// no gap to annotate, and the engine never applied it.
				return zero, errInternal("update rejected at LSN %d and the log failed syncing it: %v (rejection: %v)", lsn, derr, err)
			}
			if serr := rl.log.RecordSkip(lsn); serr != nil {
				// RecordSkip poisons the log on failure: Append now refuses
				// and readyz reports wal_failed, so the operator learns
				// immediately that the next boot would refuse to replay past
				// this record, instead of at that boot.
				log.Printf("server: recording skip of LSN %d failed, WAL poisoned (readyz now wal_failed): %v", lsn, serr)
			}
			eng.AdvanceLSN(lsn)
			return zero, errInternal("update logged at LSN %d but rejected by the engine: %v", lsn, err)
		}
	} else {
		st, err = eng.ApplyUpdate(d)
		if err != nil {
			// Everything client-controlled was validated above; a residual
			// failure still maps to a 400 with the engine's reason.
			return zero, errBadRequest("%v", err)
		}
	}
	return st, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	st := s.engine().Stats()
	writeJSON(w, http.StatusOK, api.StatsResponse{
		Epoch:             st.Epoch,
		LSN:               st.LSN,
		Nodes:             st.Nodes,
		Edges:             st.Edges,
		Types:             st.Types,
		Metagraphs:        st.Metagraphs,
		Matched:           st.Matched,
		PendingCompaction: st.PendingCompaction,
		Classes:           st.Classes,
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	rl := s.role.Load()
	if rl.follower != nil {
		// One Status() read feeds the whole response: separate calls
		// would re-read the atomics and could disagree with the
		// ready/LSN values reported here.
		fst := rl.follower.Status()
		resp := api.ReadyResponse{Status: api.StatusReady, Role: api.RoleFollower,
			LSN: fst.Applied, PrimaryLSN: fst.PrimaryLSN, Lag: fst.Lag, Term: fst.Term}
		status := http.StatusOK
		switch {
		case fst.Fenced:
			// Not catching_up: fencing never clears with time, only by
			// reaching a current-term primary. Monitors treat the two
			// differently (a fenced follower is still an election
			// candidate; its LSN and term are trustworthy).
			resp.Status = api.StatusFenced
			status = http.StatusServiceUnavailable
		case !fst.Ready:
			resp.Status = api.StatusCatchingUp
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, resp)
		return
	}
	role, term := api.RoleStandalone, uint64(0)
	if rl.log != nil {
		role, term = api.RolePrimary, rl.log.Term()
		// A primary whose log has sticky-failed (disk full, I/O error) can
		// accept no more writes until restart; readiness is how load
		// balancers find that out.
		if err := rl.log.Err(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable,
				api.ReadyResponse{Status: api.StatusWALFailed, Role: role, LSN: rl.eng.LSN(), Term: term})
			return
		}
	}
	writeJSON(w, http.StatusOK, api.ReadyResponse{Status: api.StatusReady, Role: role, LSN: rl.eng.LSN(), Term: term})
}

func (s *Server) handleReplicateSince(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	primary := s.role.Load().primary
	if primary == nil {
		writeErr(w, errUnavailable(api.CodeReplicationDisabled,
			"no write-ahead log attached (start with -wal to serve followers)"))
		return
	}
	status, body, err := primary.ServeSince(r)
	if err != nil {
		code := api.CodeBadRequest
		switch {
		case status == http.StatusConflict:
			code = api.CodeTermMismatch
		case status >= 500:
			code = api.CodeInternal
		}
		writeErr(w, api.Errorf(status, code, "%s", err.Error()))
		return
	}
	writeJSON(w, status, body)
}

func (s *Server) handleReplicateSnapshot(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	primary := s.role.Load().primary
	if primary == nil {
		writeErr(w, errUnavailable(api.CodeReplicationDisabled,
			"no write-ahead log attached (start with -wal to serve followers)"))
		return
	}
	// The snapshot streams straight from one immutable epoch; an error
	// after the first byte cannot become a structured response, so the
	// client detects it as a truncated gob stream.
	if err := primary.ServeSnapshot(w, r); err != nil {
		//lint:semprox-allow mid-stream failure: headers (and possibly body bytes) are already sent, so no envelope can travel; the client detects the truncated gob stream
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleProximity(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	var req api.ProximityRequest
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		req.Class, req.X, req.Y = q.Get("class"), q.Get("x"), q.Get("y")
	} else if herr := decodeStrict(w, r, &req); herr != nil {
		writeErr(w, herr)
		return
	}
	v := s.engine().View()
	if herr := resolveClass(v.Classes(), req.Class); herr != nil {
		writeErr(w, herr)
		return
	}
	x, herr := resolveNode(v.Graph(), "x", req.X)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	y, herr := resolveNode(v.Graph(), "y", req.Y)
	if herr != nil {
		writeErr(w, herr)
		return
	}
	p, err := v.Proximity(req.Class, x, y)
	if err != nil {
		writeErr(w, errNotFound(api.CodeClassNotFound, "%v", err))
		return
	}
	setEpochHeader(w, v)
	writeJSON(w, http.StatusOK, api.ProximityResponse{Class: req.Class, X: req.X, Y: req.Y, Proximity: p})
}
