#!/usr/bin/env bash
# Edge-tier smoke test: build semproxd + semproxy + semproxctl, run a
# durable primary and two followers on loopback behind a REAL semproxy
# edge proxy, and prove the two edge-tier claims end to end:
#
#   1. The epoch-keyed cache serves repeat reads byte-identically
#      (miss -> hit), and an update THROUGH the proxy flushes it — the
#      next read is a miss under a bumped epoch, never stale bytes.
#   2. kill -9 the primary under a live reader: every read through the
#      proxy keeps succeeding off the caught-up followers (zero failed
#      reads), and writes fail loudly (no primary owns them).
set -euo pipefail
cd "$(dirname "$0")/.."
. "$(dirname "$0")/smoke_lib.sh"

PRIMARY=127.0.0.1:18111
FOLLOWER1=127.0.0.1:18112
FOLLOWER2=127.0.0.1:18113
PROXY=127.0.0.1:18110
smoke_init
primary_pid=""
f1_pid=""
f2_pid=""
proxy_pid=""
cleanup() {
    [ -n "$proxy_pid" ] && kill "$proxy_pid" 2>/dev/null || true
    [ -n "$f2_pid" ] && kill "$f2_pid" 2>/dev/null || true
    [ -n "$f1_pid" ] && kill "$f1_pid" 2>/dev/null || true
    [ -n "$primary_pid" ] && kill "$primary_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    smoke_cleanup_tmp
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/semproxd" ./cmd/semproxd
go build -o "$tmp/semproxy" ./cmd/semproxy
go build -o "$tmp/semproxctl" ./cmd/semproxctl

echo "== start durable primary on $PRIMARY and two followers"
start_daemon "$logdir/proxy_primary.log" "http://$PRIMARY/v1/healthz" \
    "$tmp/semproxd" -addr "$PRIMARY" -dataset linkedin -users 200 -classes college \
    -wal "$tmp/wal"
primary_pid=$daemon_pid
start_daemon "$logdir/proxy_follower1.log" "http://$FOLLOWER1/v1/healthz" \
    "$tmp/semproxd" -addr "$FOLLOWER1" -follow "http://$PRIMARY"
f1_pid=$daemon_pid
start_daemon "$logdir/proxy_follower2.log" "http://$FOLLOWER2/v1/healthz" \
    "$tmp/semproxd" -addr "$FOLLOWER2" -follow "http://$PRIMARY"
f2_pid=$daemon_pid

echo "== start the semproxy edge tier on $PROXY"
start_daemon "$logdir/proxy_edge.log" "http://$PROXY/v1/healthz" \
    "$tmp/semproxy" -addr "$PROXY" -primary "http://$PRIMARY" \
    -followers "http://$FOLLOWER1,http://$FOLLOWER2" -stats-poll 200ms
proxy_pid=$daemon_pid
role=$(curl -fsS "http://$PROXY/v1/readyz" | jq -r .role)
[ "$role" = proxy ] || {
    echo "FAIL: proxy readyz role = $role, want proxy" >&2
    exit 1
}

echo "== repeat read through the proxy: miss then byte-identical hit"
Q="http://$PROXY/v1/query?class=college&query=user-17&k=5"
curl -fsS -D "$tmp/h1" "$Q" -o "$tmp/b1"
curl -fsS -D "$tmp/h2" "$Q" -o "$tmp/b2"
grep -qi '^x-semprox-cache: miss' "$tmp/h1" || {
    echo "FAIL: first read was not a cache miss" >&2
    cat "$tmp/h1" >&2
    exit 1
}
grep -qi '^x-semprox-cache: hit' "$tmp/h2" || {
    echo "FAIL: repeat read was not a cache hit" >&2
    cat "$tmp/h2" >&2
    exit 1
}
cmp -s "$tmp/b1" "$tmp/b2" || {
    echo "FAIL: cached response bytes diverged from the fresh ones" >&2
    exit 1
}
epoch1=$(grep -i '^x-semprox-epoch:' "$tmp/h1" | tr -dc 0-9)

echo "== update through the proxy bumps the epoch and flushes the cache"
curl -fsS "http://$PROXY/v1/update" \
    -d '{"nodes":[{"type":"user","name":"edge-1"}],"edges":[{"u":"edge-1","v":"user-17"}]}' >/dev/null
curl -fsS -D "$tmp/h3" "$Q" -o /dev/null
grep -qi '^x-semprox-cache: miss' "$tmp/h3" || {
    echo "FAIL: read after the epoch bump still served the cached entry" >&2
    cat "$tmp/h3" >&2
    exit 1
}

echo "== the bumped epoch becomes cacheable once the followers catch up"
ok=""
for _ in $(seq 1 240); do
    curl -fsS "$Q" >/dev/null
    curl -fsS -D "$tmp/h4" "$Q" -o /dev/null
    if grep -qi '^x-semprox-cache: hit' "$tmp/h4"; then
        epoch2=$(grep -i '^x-semprox-epoch:' "$tmp/h4" | tr -dc 0-9)
        [ "$epoch2" -gt "$epoch1" ] && ok=1 && break
    fi
    sleep 0.25
done
[ -n "$ok" ] || {
    echo "FAIL: post-update reads never became cache hits under a newer epoch" >&2
    cat "$logdir/proxy_edge.log" >&2
    exit 1
}

echo "== the stats extension reports the flush, and semproxctl -counts renders it"
"$tmp/semproxctl" -primary "http://$PROXY" -stats -counts >"$tmp/stats.json" 2>"$tmp/stats.err"
flushes=$(jq -r .proxy.epoch_flushes "$tmp/stats.json")
hits=$(jq -r .proxy.cache_hits "$tmp/stats.json")
[ "$flushes" -ge 1 ] && [ "$hits" -ge 1 ] || {
    echo "FAIL: proxy stats extension missing the flush/hit counters" >&2
    cat "$tmp/stats.json" >&2
    exit 1
}
grep -q 'edge cache:' "$tmp/stats.err" || {
    echo "FAIL: semproxctl -counts did not render the edge cache counters" >&2
    cat "$tmp/stats.err" >&2
    exit 1
}

echo "== kill -9 the primary under a live reader: zero failed reads through the proxy"
# 100 DISTINCT anchors so every read is a real forward (no cache hit can
# mask a failover), with the primary dying a third of the way in.
: >"$tmp/read_errors"
(
    for i in $(seq 0 99); do
        curl -fsS "http://$PROXY/v1/query?class=college&query=user-$((i % 100))&k=3" \
            -o /dev/null 2>>"$tmp/read_errors" || echo "read $i failed" >>"$tmp/read_errors"
    done
) &
reader_pid=$!
sleep 0.5
kill -9 "$primary_pid"
wait "$primary_pid" 2>/dev/null || true
primary_pid=""
wait "$reader_pid"
if [ -s "$tmp/read_errors" ]; then
    echo "FAIL: reads failed through the proxy during primary death:" >&2
    cat "$tmp/read_errors" >&2
    cat "$logdir/proxy_edge.log" >&2
    exit 1
fi
role=$(curl -fsS "http://$PROXY/v1/readyz" | jq -r .status)
[ "$role" = ready ] || {
    echo "FAIL: proxy not ready after primary death (followers still live): $role" >&2
    exit 1
}

echo "== writes through the proxy must now fail loudly"
if curl -fsS "http://$PROXY/v1/update" \
    -d '{"nodes":[{"type":"user","name":"orphan"}]}' >/dev/null 2>&1; then
    echo "FAIL: update through the proxy succeeded with a dead primary" >&2
    exit 1
fi

echo "OK: edge tier cached byte-identically, flushed on the epoch bump, and served zero failed reads across a primary kill"
