#!/usr/bin/env bash
# Replication smoke test: build semproxd + semproxctl, run a durable
# primary (-wal) and a follower (-follow) on loopback, push live updates
# through the primary's durable write path, wait for the follower to
# catch up (/v1/readyz flips to 200), and assert both processes serve
# byte-identical /v1/query output and agree on the LSN. All protocol
# traffic goes through semproxctl — the typed client package — so the
# smoke exercises the same wire contract (api) in-process consumers use.
set -euo pipefail
cd "$(dirname "$0")/.."
. "$(dirname "$0")/smoke_lib.sh"

PRIMARY=127.0.0.1:18091
FOLLOWER=127.0.0.1:18092
smoke_init
primary_pid=""
follower_pid=""
cleanup() {
    [ -n "$follower_pid" ] && kill "$follower_pid" 2>/dev/null || true
    [ -n "$primary_pid" ] && kill "$primary_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    smoke_cleanup_tmp
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/semproxd" ./cmd/semproxd
go build -o "$tmp/semproxctl" ./cmd/semproxctl
ctl() { "$tmp/semproxctl" "$@"; }

echo "== start durable primary on $PRIMARY"
start_daemon "$logdir/replication_primary.log" "http://$PRIMARY/v1/healthz" \
    "$tmp/semproxd" -addr "$PRIMARY" -dataset linkedin -users 200 -classes college \
    -wal "$tmp/wal"
primary_pid=$daemon_pid

echo "== start follower on $FOLLOWER"
start_daemon "$logdir/replication_follower.log" "http://$FOLLOWER/v1/healthz" \
    "$tmp/semproxd" -addr "$FOLLOWER" -follow "http://$PRIMARY"
follower_pid=$daemon_pid

echo "== push live updates through the primary (typed client write path)"
for i in 1 2 3; do
    ctl -primary "http://$PRIMARY" \
        -update '{"nodes":[{"type":"user","name":"smoke-'"$i"'"}],"edges":[{"u":"smoke-'"$i"'","v":"user-1"},{"u":"smoke-'"$i"'","v":"user-2"}]}' \
        >/dev/null
done

echo "== wait for the follower to catch up (readyz 200 AND lsn 3)"
wait_http "http://$FOLLOWER/v1/readyz" 120 || {
    echo "follower /v1/readyz:" >&2
    curl -sS "http://$FOLLOWER/v1/readyz" >&2 || true
    cat "$logdir/replication_follower.log" >&2
    exit 1
}
# readyz can momentarily report 200 between polls while later updates are
# still in flight; wait until the follower has actually applied LSN 3.
caught_up=""
for _ in $(seq 1 150); do
    if [ "$(ctl -primary "http://$FOLLOWER" -stats | jq .lsn)" = 3 ]; then
        caught_up=1
        break
    fi
    sleep 0.2
done
[ -n "$caught_up" ] || {
    echo "FAIL: follower never reached LSN 3" >&2
    ctl -primary "http://$FOLLOWER" -stats >&2 || true
    cat "$logdir/replication_follower.log" >&2
    exit 1
}

echo "== compare answers byte for byte (typed client against both replicas)"
for q in user-1 user-7 smoke-2; do
    ctl -primary "http://$PRIMARY" -class college -query "$q" -k 10 >"$tmp/primary.q.json"
    ctl -primary "http://$FOLLOWER" -class college -query "$q" -k 10 >"$tmp/follower.q.json"
    cmp -s "$tmp/primary.q.json" "$tmp/follower.q.json" || {
        echo "FAIL: query for $q diverged between primary and follower" >&2
        diff "$tmp/primary.q.json" "$tmp/follower.q.json" >&2 || true
        exit 1
    }
done

echo "== legacy aliases answer byte-identically to /v1"
for path in "query?class=college&query=user-1&k=10" stats healthz; do
    curl -fsS "http://$PRIMARY/v1/$path" >"$tmp/v1.json"
    curl -fsS "http://$PRIMARY/$path" >"$tmp/legacy.json"
    cmp -s "$tmp/v1.json" "$tmp/legacy.json" || {
        echo "FAIL: legacy /$path diverged from /v1/$path" >&2
        diff "$tmp/v1.json" "$tmp/legacy.json" >&2 || true
        exit 1
    }
done

p_lsn=$(ctl -primary "http://$PRIMARY" -stats | jq .lsn)
f_lsn=$(ctl -primary "http://$FOLLOWER" -stats | jq .lsn)
lag=$(curl -fsS "http://$FOLLOWER/v1/readyz" | jq .lag)
if [ "$p_lsn" != "$f_lsn" ] || [ "$p_lsn" != 3 ] || [ "$lag" != 0 ]; then
    echo "FAIL: lsn primary=$p_lsn follower=$f_lsn lag=$lag (want 3/3/0)" >&2
    exit 1
fi

echo "== a follower must refuse writes (not_primary)"
if ctl -primary "http://$FOLLOWER" -update '{"nodes":[{"type":"user","name":"x"}]}' >/dev/null 2>"$tmp/deny.err"; then
    echo "FAIL: follower accepted an update" >&2
    exit 1
fi
grep -q not_primary "$tmp/deny.err" || {
    echo "FAIL: follower denial lacked the not_primary code:" >&2
    cat "$tmp/deny.err" >&2
    exit 1
}

echo "OK: follower caught up at LSN $f_lsn with lag 0 and byte-identical answers"
