#!/usr/bin/env bash
# Replication smoke test: build semproxd, run a durable primary (-wal) and
# a follower (-follow) on loopback, push live updates through the
# primary's durable write path, wait for the follower to catch up
# (/readyz flips to 200), and assert both processes serve byte-identical
# /query output and agree on the LSN. Exercises for real what the unit
# tests prove in-process: snapshot bootstrap, WAL streaming, epoch-applied
# deltas, lag reporting.
set -euo pipefail
cd "$(dirname "$0")/.."

PRIMARY=127.0.0.1:18091
FOLLOWER=127.0.0.1:18092
tmp=$(mktemp -d)
primary_pid=""
follower_pid=""
cleanup() {
    [ -n "$follower_pid" ] && kill "$follower_pid" 2>/dev/null || true
    [ -n "$primary_pid" ] && kill "$primary_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

wait_http() { # url [tries]
    local url=$1 tries=${2:-240}
    for _ in $(seq 1 "$tries"); do
        curl -fsS "$url" >/dev/null 2>&1 && return 0
        sleep 0.5
    done
    echo "FAIL: timeout waiting for $url" >&2
    return 1
}

echo "== build"
go build -o "$tmp/semproxd" ./cmd/semproxd

echo "== start durable primary on $PRIMARY"
"$tmp/semproxd" -addr "$PRIMARY" -dataset linkedin -users 200 -classes college \
    -wal "$tmp/wal" >"$tmp/primary.log" 2>&1 &
primary_pid=$!
wait_http "http://$PRIMARY/healthz" || { cat "$tmp/primary.log" >&2; exit 1; }

echo "== start follower on $FOLLOWER"
"$tmp/semproxd" -addr "$FOLLOWER" -follow "http://$PRIMARY" >"$tmp/follower.log" 2>&1 &
follower_pid=$!
wait_http "http://$FOLLOWER/healthz" || { cat "$tmp/follower.log" >&2; exit 1; }

echo "== push live updates through the primary"
for i in 1 2 3; do
    curl -fsS -d '{"nodes":[{"type":"user","name":"smoke-'"$i"'"}],"edges":[{"u":"smoke-'"$i"'","v":"user-1"},{"u":"smoke-'"$i"'","v":"user-2"}]}' \
        "http://$PRIMARY/update" >/dev/null
done

echo "== wait for the follower to catch up (readyz 200 AND lsn 3)"
wait_http "http://$FOLLOWER/readyz" 120 || {
    echo "follower /readyz:" >&2
    curl -sS "http://$FOLLOWER/readyz" >&2 || true
    cat "$tmp/follower.log" >&2
    exit 1
}
# readyz can momentarily report 200 between polls while later updates are
# still in flight; wait until the follower has actually applied LSN 3.
caught_up=""
for _ in $(seq 1 150); do
    if [ "$(curl -fsS "http://$FOLLOWER/stats" | jq .lsn)" = 3 ]; then
        caught_up=1
        break
    fi
    sleep 0.2
done
[ -n "$caught_up" ] || {
    echo "FAIL: follower never reached LSN 3" >&2
    curl -sS "http://$FOLLOWER/stats" >&2 || true
    cat "$tmp/follower.log" >&2
    exit 1
}

echo "== compare answers byte for byte"
for q in user-1 user-7 smoke-2; do
    curl -fsS "http://$PRIMARY/query?class=college&query=$q&k=10" >"$tmp/primary.q.json"
    curl -fsS "http://$FOLLOWER/query?class=college&query=$q&k=10" >"$tmp/follower.q.json"
    cmp -s "$tmp/primary.q.json" "$tmp/follower.q.json" || {
        echo "FAIL: /query for $q diverged between primary and follower" >&2
        diff "$tmp/primary.q.json" "$tmp/follower.q.json" >&2 || true
        exit 1
    }
done

p_lsn=$(curl -fsS "http://$PRIMARY/stats" | jq .lsn)
f_lsn=$(curl -fsS "http://$FOLLOWER/stats" | jq .lsn)
lag=$(curl -fsS "http://$FOLLOWER/readyz" | jq .lag)
if [ "$p_lsn" != "$f_lsn" ] || [ "$p_lsn" != 3 ] || [ "$lag" != 0 ]; then
    echo "FAIL: lsn primary=$p_lsn follower=$f_lsn lag=$lag (want 3/3/0)" >&2
    exit 1
fi

code=$(curl -s -o /dev/null -w '%{http_code}' -d '{"nodes":[{"type":"user","name":"x"}]}' "http://$FOLLOWER/update")
if [ "$code" != 503 ]; then
    echo "FAIL: follower accepted /update (HTTP $code, want 503)" >&2
    exit 1
fi

echo "OK: follower caught up at LSN $f_lsn with lag 0 and byte-identical answers"
