#!/usr/bin/env bash
# Load smoke test against real processes: build semproxd, run a durable
# primary and two followers on loopback — the same topology `make
# load-smoke` self-hosts in-process — wait for both followers to catch
# up, then point cmd/loadgen's external mode at the stack and fire every
# scenario's Poisson stream at its gate rate for a short deterministic
# window. loadgen's smoke checks (zero request errors, every send
# measured, monotone percentile slate) apply unchanged; nothing
# committed is written. This is the cross-check that the open-loop
# harness and the real daemon wiring agree — the in-process smoke can't
# catch a bug in semproxd's own flag plumbing or process lifecycle.
set -euo pipefail
cd "$(dirname "$0")/.."
. "$(dirname "$0")/smoke_lib.sh"

PRIMARY=127.0.0.1:18111
F1=127.0.0.1:18112
F2=127.0.0.1:18113
smoke_init
pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    smoke_cleanup_tmp
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/semproxd" ./cmd/semproxd
go build -o "$tmp/loadgen" ./cmd/loadgen

echo "== start durable primary on $PRIMARY"
start_daemon "$logdir/load_primary.log" "http://$PRIMARY/v1/healthz" \
    "$tmp/semproxd" -addr "$PRIMARY" -dataset linkedin -users 200 -classes college \
    -wal "$tmp/wal"
pids+=("$daemon_pid")

echo "== start two followers"
start_daemon "$logdir/load_f1.log" "http://$F1/v1/healthz" \
    "$tmp/semproxd" -addr "$F1" -follow "http://$PRIMARY"
pids+=("$daemon_pid")
start_daemon "$logdir/load_f2.log" "http://$F2/v1/healthz" \
    "$tmp/semproxd" -addr "$F2" -follow "http://$PRIMARY"
pids+=("$daemon_pid")
wait_http "http://$F1/v1/readyz" || { cat "$logdir/load_f1.log" >&2; exit 1; }
wait_http "http://$F2/v1/readyz" || { cat "$logdir/load_f2.log" >&2; exit 1; }

echo "== open-loop smoke through the external stack"
"$tmp/loadgen" -mode smoke -out - \
    -primary "http://$PRIMARY" -followers "http://$F1,http://$F2" \
    >"$logdir/load_smoke_output.log" || {
    echo "FAIL: loadgen smoke against the external stack failed" >&2
    tail -20 "$logdir/load_primary.log" >&2 || true
    exit 1
}

echo "OK: open-loop smoke passed against real semproxd processes"
