#!/usr/bin/env bash
# Bounded per-commit fuzzing: every Fuzz* target in the repo runs its
# engine for a short budget (FUZZ_TIME, default 5s each) instead of only
# replaying seed corpora as ordinary tests. `go test -fuzz` accepts one
# target per invocation, so targets are enumerated (by grepping test
# files for fuzz declarations, then confirmed via `go test -list`) and
# run one at a time. The script hard-fails if it finds no targets at
# all: FuzzDeltaDecode guards the WAL's delta codec, and a rename that
# silently emptied this smoke would un-gate it.
set -euo pipefail
cd "$(dirname "$0")/.."

budget="${FUZZ_TIME:-5s}"
ran=0

# Packages that declare a fuzz target, module-relative.
mapfile -t dirs < <(grep -rl --include='*_test.go' '^func Fuzz' . | xargs -rn1 dirname | sort -u)

for dir in "${dirs[@]}"; do
    pkg="./${dir#./}"
    # Confirm via the test binary itself so a commented-out declaration
    # can't produce a phantom run.
    targets=$(go test "$pkg" -run '^$' -list '^Fuzz' | grep '^Fuzz' || true)
    [ -z "$targets" ] && continue
    for t in $targets; do
        echo "== fuzz $pkg $t ($budget)"
        go test "$pkg" -run '^$' -fuzz "^${t}\$" -fuzztime "$budget"
        ran=$((ran + 1))
    done
done

if [ "$ran" -eq 0 ]; then
    echo "FAIL: no Fuzz targets found; FuzzDeltaDecode should exist (internal/graph)"
    exit 1
fi
echo "fuzz smoke: $ran target(s) ran ${budget} each"
