#!/usr/bin/env bash
# Observability smoke test: build semproxd + semproxy + semproxctl, run
# a durable primary, a follower, and a semproxy edge tier on loopback
# with request logging and a pprof listener, and prove the observability
# claims end to end:
#
#   1. /metrics on the real daemons exposes the key families — WAL
#      fsync latency, follower replication lag, per-endpoint request
#      latency, hedge and cache counters — and the counters MOVE when
#      traffic flows (a registry that renders but never increments
#      would pass any static check).
#   2. A caller-supplied X-Semprox-Trace ID on a routed read appears in
#      BOTH the proxy's and a backend's request-log lines — one ID
#      stitches the hop chain together — and is echoed on the response.
#   3. The -debug-addr pprof listener answers, and semproxctl -metrics
#      fetches a prefix-filtered exposition over the typed client.
set -euo pipefail
cd "$(dirname "$0")/.."
. "$(dirname "$0")/smoke_lib.sh"

PRIMARY=127.0.0.1:18121
FOLLOWER=127.0.0.1:18122
PROXY=127.0.0.1:18120
DEBUG=127.0.0.1:18129
smoke_init
primary_pid=""
f1_pid=""
proxy_pid=""
cleanup() {
    [ -n "$proxy_pid" ] && kill "$proxy_pid" 2>/dev/null || true
    [ -n "$f1_pid" ] && kill "$f1_pid" 2>/dev/null || true
    [ -n "$primary_pid" ] && kill "$primary_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    smoke_cleanup_tmp
}
trap cleanup EXIT

# metric_value <metrics_url> <series_prefix>: print the value of the
# first sample whose series starts with the prefix (exact series when
# the prefix includes the full label set), or "MISSING".
metric_value() {
    local expo
    expo=$(curl -fsS "$1")
    echo "$expo" | awk -v p="$2" '
        index($0, p) == 1 { print $NF; found = 1; exit }
        END { if (!found) print "MISSING" }'
}

# require_series <metrics_url> <daemon_log> <series_prefix>...: every
# prefix must match at least one sample line in the exposition. Retries
# for a few seconds — the series all register before the daemon's
# listener starts, so one settled scrape is expected; the retry absorbs
# a slow scrape on a loaded CI box — then fails loudly with the full
# semprox exposition and the daemon's log.
require_series() {
    local url=$1 logfile=$2 expo missing
    shift 2
    for _ in $(seq 1 20); do
        expo=$(curl -fsS "$url")
        missing=""
        for p in "$@"; do
            echo "$expo" | grep -q "^$p" || missing=$p
        done
        [ -z "$missing" ] && return 0
        sleep 0.25
    done
    echo "FAIL: $url is missing series $missing" >&2
    echo "$expo" | grep '^semprox' >&2 || true
    echo "---- $logfile" >&2
    tail -40 "$logfile" >&2
    exit 1
}

echo "== build"
go build -o "$tmp/semproxd" ./cmd/semproxd
go build -o "$tmp/semproxy" ./cmd/semproxy
go build -o "$tmp/semproxctl" ./cmd/semproxctl

echo "== start durable primary (pprof on $DEBUG), one follower, and the edge proxy"
start_daemon "$logdir/obs_primary.log" "http://$PRIMARY/v1/healthz" \
    "$tmp/semproxd" -addr "$PRIMARY" -dataset linkedin -users 200 -classes college \
    -wal "$tmp/wal" -debug-addr "$DEBUG"
primary_pid=$daemon_pid
start_daemon "$logdir/obs_follower.log" "http://$FOLLOWER/v1/healthz" \
    "$tmp/semproxd" -addr "$FOLLOWER" -follow "http://$PRIMARY"
f1_pid=$daemon_pid
start_daemon "$logdir/obs_proxy.log" "http://$PROXY/v1/healthz" \
    "$tmp/semproxy" -addr "$PROXY" -primary "http://$PRIMARY" \
    -followers "http://$FOLLOWER" -stats-poll 200ms
proxy_pid=$daemon_pid

echo "== wait for the follower to enter the proxy's live set"
live=""
for _ in $(seq 1 240); do
    v=$(metric_value "http://$PROXY/metrics" "semprox_router_live_followers ")
    [ "$v" = 1 ] && live=1 && break
    sleep 0.25
done
[ -n "$live" ] || {
    echo "FAIL: proxy never reported semprox_router_live_followers 1" >&2
    cat "$logdir/obs_proxy.log" >&2
    exit 1
}

echo "== key families exist on every tier before the traffic-movement check"
require_series "http://$PRIMARY/metrics" "$logdir/obs_primary.log" \
    'semprox_wal_fsync_seconds_count' \
    'semprox_wal_appends_total' \
    'semprox_wal_term' \
    'semprox_engine_epoch' \
    'semprox_engine_lsn' \
    'semprox_http_requests_total{' \
    'semprox_http_request_seconds{'
require_series "http://$FOLLOWER/metrics" "$logdir/obs_follower.log" \
    'semprox_replica_lag' \
    'semprox_replica_applied_lsn' \
    'semprox_replica_polls_total' \
    'semprox_replica_bootstraps_total'
require_series "http://$PROXY/metrics" "$logdir/obs_proxy.log" \
    'semprox_proxy_hedges_total{outcome="issued"}' \
    'semprox_proxy_cache_lookups_total{result="hit"}' \
    'semprox_proxy_cache_lookups_total{result="miss"}' \
    'semprox_proxy_reads_total' \
    'semprox_router_live_followers'

echo "== traffic moves the counters: queries through the proxy, an update through the primary"
q_before=$(metric_value "http://$PROXY/metrics" 'semprox_http_requests_total{code="2xx",path="/v1/query"}')
miss_before=$(metric_value "http://$PROXY/metrics" 'semprox_proxy_cache_lookups_total{result="miss"}')
fsync_before=$(metric_value "http://$PRIMARY/metrics" 'semprox_wal_fsync_seconds_count')
[ "$q_before" = MISSING ] && q_before=0
[ "$miss_before" = MISSING ] && miss_before=0
[ "$fsync_before" = MISSING ] && {
    echo "FAIL: primary has no semprox_wal_fsync_seconds_count sample" >&2
    exit 1
}

Q="http://$PROXY/v1/query?class=college&query=user-17&k=5"
curl -fsS "$Q" >/dev/null
curl -fsS "$Q" >/dev/null
curl -fsS "http://$PROXY/v1/update" \
    -d '{"nodes":[{"type":"user","name":"obs-1"}],"edges":[{"u":"obs-1","v":"user-17"}]}' >/dev/null

moved=""
for _ in $(seq 1 40); do
    q_after=$(metric_value "http://$PROXY/metrics" 'semprox_http_requests_total{code="2xx",path="/v1/query"}')
    hit_after=$(metric_value "http://$PROXY/metrics" 'semprox_proxy_cache_lookups_total{result="hit"}')
    miss_after=$(metric_value "http://$PROXY/metrics" 'semprox_proxy_cache_lookups_total{result="miss"}')
    fsync_after=$(metric_value "http://$PRIMARY/metrics" 'semprox_wal_fsync_seconds_count')
    if [ "$q_after" != MISSING ] && [ "$q_after" -ge $((q_before + 2)) ] &&
        [ "$hit_after" != MISSING ] && [ "$hit_after" -ge 1 ] &&
        [ "$miss_after" -gt "$miss_before" ] &&
        [ "$fsync_after" -gt "$fsync_before" ]; then
        moved=1 && break
    fi
    sleep 0.25
done
[ -n "$moved" ] || {
    echo "FAIL: counters did not move with traffic:" >&2
    echo "  /v1/query 2xx: $q_before -> ${q_after:-?} (want +2)" >&2
    echo "  cache hits: ${hit_after:-?} (want >= 1), misses: $miss_before -> ${miss_after:-?}" >&2
    echo "  wal fsyncs: $fsync_before -> ${fsync_after:-?}" >&2
    exit 1
}

echo "== follower replication lag returns to 0 after the update"
caught_up=""
for _ in $(seq 1 240); do
    lag=$(metric_value "http://$FOLLOWER/metrics" 'semprox_replica_lag ')
    [ "$lag" = 0 ] && caught_up=1 && break
    sleep 0.25
done
[ -n "$caught_up" ] || {
    echo "FAIL: follower lag never returned to 0 (last: ${lag:-?})" >&2
    cat "$logdir/obs_follower.log" >&2
    exit 1
}

echo "== one trace ID stitches the proxy and backend request logs together"
TRACE=smoke-trace-123
curl -fsS -D "$tmp/th" -H "X-Semprox-Trace: $TRACE" \
    "http://$PROXY/v1/query?class=college&query=user-42&k=3" -o /dev/null
grep -qi "^x-semprox-trace: $TRACE" "$tmp/th" || {
    echo "FAIL: proxy response did not echo the caller's trace ID" >&2
    cat "$tmp/th" >&2
    exit 1
}
grep -q "trace=$TRACE" "$logdir/obs_proxy.log" || {
    echo "FAIL: trace $TRACE missing from the proxy request log" >&2
    tail -20 "$logdir/obs_proxy.log" >&2
    exit 1
}
if ! grep -q "trace=$TRACE" "$logdir/obs_primary.log" "$logdir/obs_follower.log"; then
    echo "FAIL: trace $TRACE missing from every backend request log" >&2
    tail -10 "$logdir/obs_primary.log" "$logdir/obs_follower.log" >&2
    exit 1
fi

echo "== the -debug-addr pprof listener answers"
curl -fsS "http://$DEBUG/debug/pprof/" | grep -qi profile || {
    echo "FAIL: pprof index on $DEBUG did not render" >&2
    exit 1
}

echo "== semproxctl -metrics fetches a prefix-filtered exposition"
"$tmp/semproxctl" -primary "http://$PRIMARY" -metrics -metrics-prefix semprox_wal \
    >"$tmp/ctl_metrics" 2>/dev/null
grep -q '^semprox_wal_fsync_seconds' "$tmp/ctl_metrics" || {
    echo "FAIL: semproxctl -metrics output missing semprox_wal_fsync_seconds" >&2
    cat "$tmp/ctl_metrics" >&2
    exit 1
}
if grep -v '^#' "$tmp/ctl_metrics" | grep -q -v '^semprox_wal'; then
    echo "FAIL: -metrics-prefix semprox_wal let foreign families through:" >&2
    grep -v '^#' "$tmp/ctl_metrics" | grep -v '^semprox_wal' >&2
    exit 1
fi

echo "OK: /metrics live on every tier with moving counters, one trace ID visible across the proxy and backend logs, pprof and semproxctl -metrics answering"
