#!/usr/bin/env bash
# Routing smoke test: build semproxd + semproxctl, run a durable primary
# and a follower on loopback, push live updates through the routed write
# path (semproxctl -update pins to the primary), wait for the follower to
# catch up, then drive routed reads through the replica-aware client —
# every repetition must be byte-identical whichever replica serves it.
# Finally KILL THE PRIMARY and prove read traffic keeps flowing through
# the caught-up follower with zero failed requests — the client-side
# failover the PR's routing layer exists for.
set -euo pipefail
cd "$(dirname "$0")/.."
. "$(dirname "$0")/smoke_lib.sh"

PRIMARY=127.0.0.1:18093
FOLLOWER=127.0.0.1:18094
smoke_init
primary_pid=""
follower_pid=""
cleanup() {
    [ -n "$follower_pid" ] && kill "$follower_pid" 2>/dev/null || true
    [ -n "$primary_pid" ] && kill "$primary_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    smoke_cleanup_tmp
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/semproxd" ./cmd/semproxd
go build -o "$tmp/semproxctl" ./cmd/semproxctl

echo "== start durable primary on $PRIMARY"
start_daemon "$logdir/routing_primary.log" "http://$PRIMARY/v1/healthz" \
    "$tmp/semproxd" -addr "$PRIMARY" -dataset linkedin -users 200 -classes college \
    -wal "$tmp/wal"
primary_pid=$daemon_pid

echo "== start follower on $FOLLOWER"
start_daemon "$logdir/routing_follower.log" "http://$FOLLOWER/v1/healthz" \
    "$tmp/semproxd" -addr "$FOLLOWER" -follow "http://$PRIMARY"
follower_pid=$daemon_pid

echo "== push live updates through the routed write path (pins to the primary)"
for i in 1 2 3; do
    "$tmp/semproxctl" -primary "http://$PRIMARY" -followers "http://$FOLLOWER" \
        -update '{"nodes":[{"type":"user","name":"routed-'"$i"'"}],"edges":[{"u":"routed-'"$i"'","v":"user-1"}]}' \
        >/dev/null
done

echo "== wait until every replica reports ready at LSN 3"
ok=""
for _ in $(seq 1 240); do
    if "$tmp/semproxctl" -primary "http://$PRIMARY" -followers "http://$FOLLOWER" -ready >"$tmp/ready.json" 2>/dev/null \
        && [ "$(jq -r '.[1].state.lsn' "$tmp/ready.json")" = 3 ]; then
        ok=1
        break
    fi
    sleep 0.25
done
[ -n "$ok" ] || {
    echo "FAIL: replicas never all became ready at LSN 3" >&2
    cat "$tmp/ready.json" >&2 || true
    cat "$logdir/routing_follower.log" >&2
    exit 1
}

echo "== routed reads: 40 repetitions must be byte-identical across replicas"
"$tmp/semproxctl" -primary "http://$PRIMARY" -followers "http://$FOLLOWER" \
    -class college -query routed-2 -k 5 -n 40 -counts >"$tmp/routed.json" 2>"$tmp/routed.err"
grep -q "1/1 followers in rotation" "$tmp/routed.err" || {
    echo "FAIL: follower never entered rotation" >&2
    cat "$tmp/routed.err" >&2
    exit 1
}

echo "== the routed answer matches the follower's direct answer byte-for-byte"
curl -fsS "http://$FOLLOWER/v1/query" -d '{"class":"college","query":"routed-2","k":5}' >"$tmp/direct.json"
# Both are the same api.QueryResponse rendered with two-space indent.
if ! diff <(jq -S . "$tmp/routed.json") <(jq -S . "$tmp/direct.json") >&2; then
    echo "FAIL: routed response diverged from the follower's direct response" >&2
    exit 1
fi

echo "== kill the primary; routed reads must keep serving through the follower"
kill -9 "$primary_pid"
wait "$primary_pid" 2>/dev/null || true
primary_pid=""
"$tmp/semproxctl" -primary "http://$PRIMARY" -followers "http://$FOLLOWER" \
    -class college -query routed-2 -k 5 -n 20 >"$tmp/failover.json" 2>/dev/null || {
    echo "FAIL: routed reads failed after primary death" >&2
    cat "$logdir/routing_follower.log" >&2
    exit 1
}
if ! diff <(jq -S . "$tmp/failover.json") <(jq -S . "$tmp/routed.json") >&2; then
    echo "FAIL: post-failover answers diverged from pre-failover answers" >&2
    exit 1
fi

echo "== updates must now fail loudly (no primary owns writes)"
if "$tmp/semproxctl" -primary "http://$PRIMARY" \
    -update '{"nodes":[{"type":"user","name":"orphan"}]}' >/dev/null 2>&1; then
    echo "FAIL: update succeeded with a dead primary" >&2
    exit 1
fi

echo "OK: routed reads spread, stayed byte-identical, and survived primary death with zero failures"
