#!/usr/bin/env bash
# Failover smoke test: kill -9 the primary under a live write stream and
# prove the cluster survives it end to end.
#
#   - a durable primary (-wal -ack-replicas 1) and two durable followers
#     (-state) that monitor it (-peers/-advertise);
#   - a background writer pushes updates through the replica-aware router
#     (semproxctl -update with the full backend list), recording every
#     ACKED marker name;
#   - kill -9 the primary mid-stream: one follower must win the promotion
#     election, and the SAME writer command line must resume getting acks
#     (the router re-resolves the primary) — time-to-restore is printed;
#   - every acked marker must be queryable on the promoted primary (no
#     lost acked writes: ack-replicas=1 means an ack implies a follower
#     held the record durably, and the election picks the longest log);
#   - zombie fencing: the dead primary is revived from its old snapshot
#     and WAL (term 1). A follower pointed at it refuses to apply its
#     stream (/v1/readyz reports "fenced", applied LSN does not regress),
#     the router still routes reads to the term-2 primary even with the
#     zombie answering, and a write addressed at the zombie is never
#     falsely acked (its synchronous ack can't be confirmed by anyone).
set -euo pipefail
cd "$(dirname "$0")/.."
. "$(dirname "$0")/smoke_lib.sh"

P=127.0.0.1:18101
A=127.0.0.1:18102
B=127.0.0.1:18103
smoke_init
pids=()
cleanup() {
    touch "$tmp/stop_writer"
    for pid in "${pids[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    smoke_cleanup_tmp
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/semproxd" ./cmd/semproxd
go build -o "$tmp/semproxctl" ./cmd/semproxctl
ctl() { "$tmp/semproxctl" "$@"; }

echo "== start durable primary on $P (synchronous: -ack-replicas 1)"
start_daemon "$logdir/failover_primary.log" "http://$P/v1/healthz" \
    "$tmp/semproxd" -addr "$P" -dataset linkedin -users 200 -classes college \
    -wal "$tmp/p-wal" -save "$tmp/engine.snap" -ack-replicas 1
primary_pid=$daemon_pid
pids+=("$primary_pid")

echo "== start two durable followers with promotion monitors"
start_daemon "$logdir/failover_a.log" "http://$A/v1/healthz" \
    "$tmp/semproxd" -addr "$A" -follow "http://$P" -state "$tmp/a" \
    -advertise "http://$A" -peers "http://$B" -ack-replicas 1
a_pid=$daemon_pid
pids+=("$a_pid")
start_daemon "$logdir/failover_b.log" "http://$B/v1/healthz" \
    "$tmp/semproxd" -addr "$B" -follow "http://$P" -state "$tmp/b" \
    -advertise "http://$B" -peers "http://$A" -ack-replicas 1
b_pid=$daemon_pid
pids+=("$b_pid")
wait_http "http://$A/v1/readyz" || { cat "$logdir/failover_a.log" >&2; exit 1; }
wait_http "http://$B/v1/readyz" || { cat "$logdir/failover_b.log" >&2; exit 1; }

echo "== start the write stream (routed; every acked marker recorded)"
: >"$tmp/acked.txt"
writer() {
    local i=0 name
    while [ ! -f "$tmp/stop_writer" ]; do
        i=$((i + 1))
        name="mark-$i"
        # Retry the SAME marker until acked: duplicate node additions are
        # deduplicated by the engine, so a lost-ack retry cannot fork state.
        until ctl -primary "http://$P" -followers "http://$A,http://$B" -timeout 10s \
            -update '{"nodes":[{"type":"user","name":"'"$name"'"}],"edges":[{"u":"'"$name"'","v":"user-1"}]}' \
            >/dev/null 2>>"$logdir/failover_writer.err"; do
            [ -f "$tmp/stop_writer" ] && return 0
            sleep 0.3
        done
        echo "$name" >>"$tmp/acked.txt"
        sleep 0.05
    done
}
writer &
writer_pid=$!
pids+=("$writer_pid")

for _ in $(seq 1 240); do
    [ "$(wc -l <"$tmp/acked.txt")" -ge 5 ] && break
    sleep 0.25
done
pre_kill=$(wc -l <"$tmp/acked.txt")
[ "$pre_kill" -ge 5 ] || { echo "FAIL: writer never got 5 acks" >&2; cat "$logdir/failover_writer.err" >&2; exit 1; }

echo "== kill -9 the primary mid-stream (after $pre_kill acked writes)"
kill -9 "$primary_pid"
killed_at=$(date +%s%3N)

echo "== wait for the writer's acks to resume through the router"
resumed=""
for _ in $(seq 1 240); do
    if [ "$(wc -l <"$tmp/acked.txt")" -gt "$pre_kill" ]; then
        resumed=1
        break
    fi
    sleep 0.25
done
[ -n "$resumed" ] || {
    echo "FAIL: no write acked within 60s of killing the primary" >&2
    tail -5 "$logdir/failover_writer.err" >&2 || true
    cat "$logdir/failover_a.log" "$logdir/failover_b.log" >&2
    exit 1
}
restore_ms=$(($(date +%s%3N) - killed_at))
echo "   writes restored ${restore_ms}ms after kill -9"

# Let a few post-failover writes through, then stop the writer cleanly.
sleep 2
touch "$tmp/stop_writer"
wait "$writer_pid" 2>/dev/null || true
total=$(wc -l <"$tmp/acked.txt")

echo "== identify the promoted primary"
new=""
for cand in "$A" "$B"; do
    if [ "$(curl -fsS "http://$cand/v1/readyz" | jq -r .role)" = primary ]; then
        new=$cand
    fi
done
[ -n "$new" ] || { echo "FAIL: neither follower claims the primary role" >&2; exit 1; }
loser=$A
[ "$new" = "$A" ] && loser=$B
term=$(curl -fsS "http://$new/v1/readyz" | jq .term)
[ "$term" = 2 ] || { echo "FAIL: promoted primary at term $term, want 2" >&2; exit 1; }
echo "   $new promoted at term 2 ($loser lost the election)"

echo "== every one of the $total acked markers must be on the promoted primary"
while read -r name; do
    ctl -primary "http://$new" -class college -query "$name" -k 3 >/dev/null || {
        echo "FAIL: acked write $name is missing from the promoted primary" >&2
        exit 1
    }
done <"$tmp/acked.txt"

echo "== revive the dead primary as a term-1 zombie from its old state"
loser_lsn=$(curl -sS "http://$loser/v1/readyz" | jq .lsn)
# Stop the loser first (clean kill) so we can restart it against the
# zombie; without its monitor, nothing steers it back to the real primary.
loser_pid=$b_pid
statedir=$tmp/b
if [ "$loser" = "$A" ]; then
    loser_pid=$a_pid
    statedir=$tmp/a
fi
kill "$loser_pid" 2>/dev/null || true
for _ in $(seq 1 40); do
    curl -fsS "http://$loser/v1/healthz" >/dev/null 2>&1 || break
    sleep 0.25
done
# The zombie reuses the killed primary's port: exactly the bind race
# start_daemon's bounded retry exists for.
start_daemon "$logdir/failover_zombie.log" "http://$P/v1/healthz" \
    "$tmp/semproxd" -addr "$P" -snapshot "$tmp/engine.snap" -wal "$tmp/p-wal" -ack-replicas 1
pids+=("$daemon_pid")
zterm=$(curl -fsS "http://$P/v1/readyz" | jq '.term // 1')
[ "$zterm" = 1 ] || { echo "FAIL: zombie came back at term $zterm, want 1" >&2; exit 1; }

echo "== a follower pointed at the zombie must fence, not apply its stream"
# Reuse the loser's real state dir: it holds term-2 records the zombie
# has never seen.
start_daemon "$logdir/failover_fenced.log" "http://$loser/v1/healthz" \
    "$tmp/semproxd" -addr "$loser" -follow "http://$P" -state "$statedir"
pids+=("$daemon_pid")
fenced=""
for _ in $(seq 1 120); do
    if [ "$(curl -sS "http://$loser/v1/readyz" | jq -r .status)" = fenced ]; then
        fenced=1
        break
    fi
    sleep 0.25
done
[ -n "$fenced" ] || {
    echo "FAIL: follower behind the zombie never reported fenced:" >&2
    curl -sS "http://$loser/v1/readyz" >&2 || true
    cat "$logdir/failover_fenced.log" >&2
    exit 1
}
fenced_lsn=$(curl -sS "http://$loser/v1/readyz" | jq .lsn)
[ "$fenced_lsn" -ge "$loser_lsn" ] || {
    echo "FAIL: fenced follower regressed from LSN $loser_lsn to $fenced_lsn" >&2
    exit 1
}
echo "   fenced at LSN $fenced_lsn (>= $loser_lsn, nothing rolled back)"

echo "== the router must still serve reads from the term-2 history"
last=$(tail -1 "$tmp/acked.txt")
ctl -primary "http://$P" -followers "http://$new,http://$loser" \
    -class college -query "$last" -k 3 >/dev/null || {
    echo "FAIL: routed read with the zombie configured as primary lost $last" >&2
    exit 1
}

echo "== a write addressed at the zombie must never be falsely acked"
if ctl -primary "http://$P" -timeout 3s \
    -update '{"nodes":[{"type":"user","name":"zombie-write"}]}' >/dev/null 2>"$tmp/zdeny.err"; then
    echo "FAIL: the fenced-off zombie acked a write nobody will ever replicate" >&2
    exit 1
fi

echo "OK: $total acked writes survived kill -9 (restored in ${restore_ms}ms), zombie fenced at term 1"
