# Shared plumbing for the smoke scripts. Source this after setting
# `set -euo pipefail`:
#
#     . "$(dirname "$0")/smoke_lib.sh"
#     smoke_init
#
# smoke_init creates the scratch dir ($tmp, removed on exit) and the log
# dir ($logdir): daemon logs belong in $logdir, which defaults to $tmp
# but honors SMOKE_LOG_DIR so CI can keep the logs as artifacts after a
# failure. The caller still owns its EXIT trap (process teardown varies
# per script) but should call smoke_cleanup_tmp from it.
#
# start_daemon starts a background process and waits until its health
# URL answers, with a bounded retry (3 attempts) when the process dies
# before becoming healthy — the fixed loopback ports these scripts use
# can collide with a lingering process from a previous run (TIME_WAIT,
# unreaped child), and a bind failure exits immediately; retrying after
# a short pause is what distinguishes that race from a real crash.

smoke_init() {
    tmp=$(mktemp -d)
    logdir=${SMOKE_LOG_DIR:-$tmp}
    mkdir -p "$logdir"
}

smoke_cleanup_tmp() {
    rm -rf "$tmp"
}

wait_http() { # url [tries]
    local url=$1 tries=${2:-240}
    for _ in $(seq 1 "$tries"); do
        curl -fsS "$url" >/dev/null 2>&1 && return 0
        sleep 0.5
    done
    echo "FAIL: timeout waiting for $url" >&2
    return 1
}

# wait_healthy <pid> <url> [tries]: poll the health URL while the
# process is still alive. Distinguishes "starting up" (keep polling)
# from "exited before binding" (return fast so the caller can retry).
wait_healthy() {
    local pid=$1 url=$2 tries=${3:-240}
    for _ in $(seq 1 "$tries"); do
        curl -fsS "$url" >/dev/null 2>&1 && return 0
        kill -0 "$pid" 2>/dev/null || return 1
        sleep 0.5
    done
    return 1
}

# start_daemon <logfile> <health_url> <cmd...>
# Starts cmd in the background (appending to logfile), waits for
# health_url, and sets $daemon_pid. If the process exits before turning
# healthy — the port-bind race — it is restarted, up to 3 attempts. A
# process that stays alive but never answers is a real failure: no
# retry, dump the log, return 1.
start_daemon() {
    local logfile=$1 health=$2 attempt
    shift 2
    daemon_pid=""
    for attempt in 1 2 3; do
        "$@" >>"$logfile" 2>&1 &
        daemon_pid=$!
        if wait_healthy "$daemon_pid" "$health"; then
            return 0
        fi
        if kill -0 "$daemon_pid" 2>/dev/null; then
            echo "FAIL: process never answered $health (alive but not healthy)" >&2
            break
        fi
        echo "   start attempt $attempt exited before healthy (port-bind race?); retrying: $*" >&2
        sleep 1
    done
    echo "FAIL: could not start: $*" >&2
    cat "$logfile" >&2
    return 1
}
