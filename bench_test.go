package semprox

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/fixtures"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/mining"
)

// One benchmark per table and figure of the paper's evaluation (Sect. V),
// each regenerating the corresponding report through the experiment
// harness at bench scale, plus micro-benchmarks for the hot paths
// (matching engines, proximity evaluation, training). Run
// cmd/experiments for the full-size reports.

// benchConfig is the reduced scale used inside benchmarks.
func benchConfig() experiments.Config {
	tr := core.DefaultTrain()
	tr.Restarts = 1
	tr.MaxIters = 80
	return experiments.Config{
		LinkedInUsers: 200,
		FacebookUsers: 150,
		Seed:          1,
		Splits:        1,
		ExampleSizes:  []int{10, 100},
		TrainExamples: 100,
		TopK:          10,
		Train:         tr,
		Mining:        mining.Options{MaxNodes: 4, MinSupport: 5},
	}
}

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
)

// sharedSuite returns a suite with pre-built pipelines so individual
// benchmarks measure their experiment, not dataset construction.
func sharedSuite() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(benchConfig())
		for _, name := range benchSuite.DatasetNames() {
			benchSuite.Pipeline(name)
		}
	})
	return benchSuite
}

func BenchmarkTable2DatasetPrep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchConfig())
		if rep := s.Table2(); len(rep.Rows) != 2 {
			b.Fatal("bad Table II")
		}
	}
}

func BenchmarkFig4WeightSparsity(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Fig4(); len(rep.Rows) == 0 {
			b.Fatal("bad Fig. 4")
		}
	}
}

func BenchmarkFig6AccuracyNDCG(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Fig6(); len(rep.Rows) == 0 {
			b.Fatal("bad Fig. 6")
		}
	}
}

func BenchmarkFig7AccuracyMAP(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Fig7(); len(rep.Rows) == 0 {
			b.Fatal("bad Fig. 7")
		}
	}
}

func BenchmarkTable3TimeCosts(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Table3(); len(rep.Rows) != 2 {
			b.Fatal("bad Table III")
		}
	}
}

func BenchmarkFig8DualStage(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Fig8(); len(rep.Rows) == 0 {
			b.Fatal("bad Fig. 8")
		}
	}
}

func BenchmarkFig9SSFSCorrelation(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Fig9(); len(rep.Rows) == 0 {
			b.Fatal("bad Fig. 9")
		}
	}
}

func BenchmarkFig10CHvsRCH(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Fig10(); len(rep.Rows) == 0 {
			b.Fatal("bad Fig. 10")
		}
	}
}

func BenchmarkFig11MatchingEngines(b *testing.B) {
	s := sharedSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Fig11(); len(rep.Rows) == 0 {
			b.Fatal("bad Fig. 11")
		}
	}
}

// ---- micro-benchmarks: per-engine matching cost on one dataset ----
// These isolate the Fig. 11 comparison per engine.

func benchDataset() *dataset.Dataset {
	return dataset.LinkedIn(dataset.Config{Users: 200, Seed: 1, NoiseRate: 0.05})
}

func benchMatcher(b *testing.B, mk func(*Graph) match.Matcher) {
	b.Helper()
	ds := benchDataset()
	pats := mining.ProximityFilter(
		mining.Mine(ds.G, mining.Options{MaxNodes: 4, MinSupport: 5}), ds.Anchor)
	ms := mining.Metagraphs(pats)
	if len(ms) == 0 {
		b.Fatal("no metagraphs")
	}
	eng := mk(ds.G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			eng.Match(m, func([]NodeID) bool { return true })
		}
	}
}

func BenchmarkMatchSymISO(b *testing.B) {
	benchMatcher(b, func(g *Graph) match.Matcher { return match.NewSymISO(g) })
}

func BenchmarkMatchSymISOR(b *testing.B) {
	benchMatcher(b, func(g *Graph) match.Matcher { return match.NewSymISOR(g, 1) })
}

func BenchmarkMatchBoostISO(b *testing.B) {
	benchMatcher(b, func(g *Graph) match.Matcher { return match.NewBoostISO(g) })
}

func BenchmarkMatchTurboISO(b *testing.B) {
	benchMatcher(b, func(g *Graph) match.Matcher { return match.NewTurboISO(g) })
}

func BenchmarkMatchQuickSI(b *testing.B) {
	benchMatcher(b, func(g *Graph) match.Matcher { return match.NewQuickSI(g) })
}

// BenchmarkOfflineIndexBuild measures the offline matching+indexing phase
// (the dominant cost of Table III) across worker counts. On multicore
// hardware the build scales near-linearly: matching fans out one metagraph
// per worker and the parts merge by offset. cmd/bench wraps the same
// measurement into BENCH_offline.json for the perf trajectory.
func BenchmarkOfflineIndexBuild(b *testing.B) {
	ds := benchDataset()
	pats := mining.ProximityFilter(
		mining.Mine(ds.G, mining.Options{MaxNodes: 4, MinSupport: 5}), ds.Anchor)
	ms := mining.Metagraphs(pats)
	if len(ms) == 0 {
		b.Fatal("no metagraphs")
	}
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := index.BuildParallel(ms,
					func() match.Matcher { return match.NewSymISO(ds.G) }, workers)
				if ix.NumPairs() == 0 {
					b.Fatal("empty index")
				}
			}
		})
	}
}

// ---- micro-benchmarks: online phase and learning ----

func benchIndex(b *testing.B) (*Graph, *index.Index) {
	b.Helper()
	ds := benchDataset()
	pats := mining.ProximityFilter(
		mining.Mine(ds.G, mining.Options{MaxNodes: 4, MinSupport: 5}), ds.Anchor)
	ms := mining.Metagraphs(pats)
	bld := index.NewBuilder(len(ms))
	matcher := match.NewSymISO(ds.G)
	for i, m := range ms {
		bld.AddMetagraph(i, m, matcher)
	}
	return ds.G, bld.Build()
}

// BenchmarkOnlineQuery measures the online phase of Table III: one ranked
// query against precomputed vectors.
func BenchmarkOnlineQuery(b *testing.B) {
	g, ix := benchIndex(b)
	w := core.UniformWeights(ix.NumMeta())
	users := g.NodesOfType(g.Types().ID("user"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Rank(ix, w, users[i%len(users)])
	}
}

// BenchmarkRankTop measures the sharded online top-k scan behind /query
// across worker counts. cmd/bench wraps the same measurement (plus a
// serial/sharded equality gate) into BENCH_online.json for the perf
// trajectory.
func BenchmarkRankTop(b *testing.B) {
	g, ix := benchIndex(b)
	w := core.UniformWeights(ix.NumMeta())
	users := g.NodesOfType(g.Types().ID("user"))
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := core.RankTopSharded(ix, w, users[i%len(users)], 10, workers); len(r) > 10 {
					b.Fatal("k overflow")
				}
			}
		})
	}
}

// BenchmarkSparseVecDot measures the innermost online-phase loop: one
// sparse·dense dot product. Must report 0 allocs/op (also asserted by
// TestZeroAllocReads in internal/index).
func BenchmarkSparseVecDot(b *testing.B) {
	g, ix := benchIndex(b)
	w := core.UniformWeights(ix.NumMeta())
	users := g.NodesOfType(g.Types().ID("user"))
	var v index.SparseVec
	for _, u := range users {
		if nv := ix.NodeVec(u); len(nv) > len(v) {
			v = nv
		}
	}
	if len(v) == 0 {
		b.Fatal("no node vectors")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += v.Dot(w)
	}
	_ = s
}

// BenchmarkIndexNodeVec measures one keyed read out of the CSR index.
// Must report 0 allocs/op.
func BenchmarkIndexNodeVec(b *testing.B) {
	g, ix := benchIndex(b)
	users := g.NodesOfType(g.Types().ID("user"))
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n += len(ix.NodeVec(users[i%len(users)]))
	}
	_ = n
}

// BenchmarkProximityEval measures a single π(x, y) evaluation.
func BenchmarkProximityEval(b *testing.B) {
	g, ix := benchIndex(b)
	w := core.UniformWeights(ix.NumMeta())
	users := g.NodesOfType(g.Types().ID("user"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Proximity(ix, w, users[i%len(users)], users[(i+7)%len(users)])
	}
}

// BenchmarkTrain measures one full training run (Table III's training
// column at bench scale).
func BenchmarkTrain(b *testing.B) {
	ds := benchDataset()
	g, ix := ds.G, (*index.Index)(nil)
	pats := mining.ProximityFilter(
		mining.Mine(g, mining.Options{MaxNodes: 4, MinSupport: 5}), ds.Anchor)
	ms := mining.Metagraphs(pats)
	bld := index.NewBuilder(len(ms))
	matcher := match.NewSymISO(g)
	for i, m := range ms {
		bld.AddMetagraph(i, m, matcher)
	}
	ix = bld.Build()
	labels := ds.Classes["college"]
	queries := labels.Queries()
	splits := eval.Splits(queries, 0.2, 1, 1)
	examples := eval.MakeExamples(labels, splits[0].Train, ds.Users(), 100, 1)
	opts := core.DefaultTrain()
	opts.Restarts = 1
	opts.MaxIters = 80
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Train(ix, examples, opts)
	}
}

// BenchmarkMining measures metagraph enumeration (Table III's mining
// column at bench scale).
func BenchmarkMining(b *testing.B) {
	ds := benchDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.Mine(ds.G, mining.Options{MaxNodes: 4, MinSupport: 5})
	}
}

// BenchmarkEngineEndToEnd measures the full public-API flow on the toy
// graph: mine, train, query.
func BenchmarkEngineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := fixtures.Toy()
		opts := DefaultOptions()
		opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
		opts.Train.Restarts = 1
		opts.Train.MaxIters = 60
		eng, err := NewEngine(g, "user", opts)
		if err != nil {
			b.Fatal(err)
		}
		eng.Train("classmate", []Example{
			{Q: g.NodeByName("Kate"), X: g.NodeByName("Jay"), Y: g.NodeByName("Alice")},
		})
		if _, err := eng.Query("classmate", g.NodeByName("Kate"), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// communityGraph builds a community-structured social graph: many small
// clusters of users sharing cluster-local schools, employers and hobbies.
// Unlike the synthetic LinkedIn generator (whose attribute hubs make the
// whole graph reachable in 4 hops), this is the shape live updates are
// built for: a delta lands in one community and the re-match neighborhood
// stays a tiny fraction of the graph.
func communityGraph(communities, usersPer int) *Graph {
	b := NewGraphBuilder()
	for _, tn := range []string{"user", "school", "employer", "hobby"} {
		b.Types().Register(tn)
	}
	rng := rand.New(rand.NewSource(3))
	for c := 0; c < communities; c++ {
		school := b.AddNodeOnce("school", fmt.Sprintf("school-%d", c))
		emp := b.AddNodeOnce("employer", fmt.Sprintf("employer-%d", c))
		hob := b.AddNodeOnce("hobby", fmt.Sprintf("hobby-%d", c))
		for u := 0; u < usersPer; u++ {
			user := b.AddNode("user", fmt.Sprintf("user-%d-%d", c, u))
			b.AddEdge(user, school)
			if rng.Intn(2) == 0 {
				b.AddEdge(user, emp)
			}
			if rng.Intn(2) == 0 {
				b.AddEdge(user, hob)
			}
		}
	}
	return b.MustBuild()
}

// BenchmarkApplyUpdate compares serving a graph mutation incrementally
// (ApplyUpdate: copy-on-write graph, neighborhood re-match, index row
// patching) against the only alternative the pre-update engine had:
// rebuilding the offline pipeline (mine → match → train) from scratch.
// Each delta adds one user to one community of a 60-community graph —
// the re-match neighborhood is ~1.5% of the nodes.
func BenchmarkApplyUpdate(b *testing.B) {
	const communities, usersPer = 60, 10
	g := communityGraph(communities, usersPer)
	opts := DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 5}
	opts.Train.Restarts = 1
	opts.Train.MaxIters = 60
	var examples []Example
	for c := 0; c < 10; c++ {
		examples = append(examples, Example{
			Q: g.NodeByName(fmt.Sprintf("user-%d-0", c)),
			X: g.NodeByName(fmt.Sprintf("user-%d-1", c)),
			Y: g.NodeByName(fmt.Sprintf("user-%d-2", (c+1)%communities)),
		})
	}
	build := func() *Engine {
		eng, err := NewEngine(g, "user", opts)
		if err != nil {
			b.Fatal(err)
		}
		eng.Train("community", examples)
		return eng
	}

	b.Run("incremental", func(b *testing.B) {
		eng := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fresh := NodeID(eng.Graph().NumNodes())
			_, err := eng.ApplyUpdate(Delta{
				Nodes: []DeltaNode{{Type: "user", Value: fmt.Sprintf("bench-user-%d", i)}},
				Edges: []Edge{
					{U: fresh, V: g.NodeByName(fmt.Sprintf("school-%d", i%communities))},
					{U: fresh, V: g.NodeByName(fmt.Sprintf("user-%d-0", i%communities))},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			eng.Compact()
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			build()
		}
	})
}
