package semprox

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/metagraph"
)

// Engine snapshots. Mining and matching dominate the offline phase
// (Table III), and training adds gradient ascent on top — none of which a
// serving process should repeat on restart. Save captures everything the
// online phase needs (graph, epoch counter, options, metagraph set, every
// matched single-metagraph index, every trained class with its merged
// index and weights); LoadEngine restores an engine that answers
// Query/Proximity identically to the one that wrote the snapshot, and can
// still train new classes and apply updates because the matching cache and
// epoch counter are restored slot by slot.
//
// A live-updated engine round-trips too: the graph text format
// materializes the copy-on-write overlay, update overlays on the indices
// compact on the way out (index.Write), and the epoch counter plus the
// durable log position (LSN) ride in the snapshot header — so a loaded
// engine resumes at the saved epoch with nothing pending, answering
// exactly as the saved one did, and recovery knows which WAL records the
// snapshot already covers (see ReplayWAL).

// snapMetagraph rebuilds one metagraph via metagraph.New.
type snapMetagraph struct {
	Types []graph.TypeID
	Edges []metagraph.Edge
}

// snapPart is one matched slot of the engine's lazy matching cache.
type snapPart struct {
	Slot int
	Ix   []byte // index.Marshal of the single-metagraph part
}

// snapClass is one trained class model.
type snapClass struct {
	Name          string
	Kept          []int
	W             []float64
	LogLikelihood float64
	Iterations    int
	Ix            []byte // index.Marshal of the merged class index
}

// snapshot is the gob wire format of a saved engine.
type snapshot struct {
	Version    int
	Epoch      uint64 // serving epoch counter (v2+; zero for v1 streams)
	LSN        uint64 // durable log position (v3+; see loadLSN for v1/v2)
	Graph      []byte // graph.Write text format
	AnchorType string
	Opts       Options
	Metas      []snapMetagraph
	Parts      []snapPart
	Classes    []snapClass
}

// snapshotVersion is the current wire version. Version 1 (pre-live-update,
// no epoch counter) still loads, resuming at epoch 0; version 2 (epoch but
// no LSN) loads with the LSN anchored to the epoch counter, which is what
// the LSN of a WAL-less engine would have been.
const snapshotVersion = 3

// loadLSN maps a decoded snapshot to the engine LSN it represents.
func loadLSN(s *snapshot) uint64 {
	if s.Version >= 3 {
		return s.LSN
	}
	return s.Epoch
}

// Save serializes the engine so LoadEngine can restore it without mining,
// matching or training. Classes are written in sorted name order and every
// index serializes its frozen CSR arenas (compacted first), so saving the
// same engine twice yields identical bytes. Save reads one immutable
// epoch, so it is safe to call concurrently with queries, training, and
// updates — it simply snapshots whichever epoch is serving.
func (e *Engine) Save(w io.Writer) error {
	return e.saveEpoch(e.cur.Load(), w)
}

// SaveWait is Save with a durability gate for write-ahead-logged
// engines: the epoch to stream is pinned FIRST, wait is called with
// that epoch's LSN, and only after it returns is anything written.
// With wait = the WAL's WaitDurable this guarantees the snapshot never
// gets ahead of the durable log — without the gate, a pipelined commit
// (apply visible before fsync completes) could hand a bootstrapping
// follower state the primary loses in a crash, and the LSNs would be
// silently reassigned to different records under it.
func (e *Engine) SaveWait(w io.Writer, wait func(lsn uint64) error) error {
	ep := e.cur.Load()
	if wait != nil {
		if err := wait(ep.lsn); err != nil {
			return fmt.Errorf("semprox: snapshot durability gate at LSN %d: %w", ep.lsn, err)
		}
	}
	return e.saveEpoch(ep, w)
}

func (e *Engine) saveEpoch(ep *epoch, w io.Writer) error {
	var gbuf bytes.Buffer
	if err := graph.Write(&gbuf, ep.g); err != nil {
		return fmt.Errorf("semprox: snapshot graph: %w", err)
	}
	s := snapshot{
		Version:    snapshotVersion,
		Epoch:      ep.version,
		LSN:        ep.lsn,
		Graph:      gbuf.Bytes(),
		AnchorType: ep.g.Types().Name(e.anchor),
		Opts:       e.opts,
	}
	s.Metas = make([]snapMetagraph, len(e.ms))
	for i, m := range e.ms {
		s.Metas[i] = snapMetagraph{
			Types: m.Types(),
			Edges: append([]metagraph.Edge(nil), m.Edges()...),
		}
	}
	for i, ix := range ep.metaIx {
		if ix == nil {
			continue
		}
		b, err := index.Marshal(ix)
		if err != nil {
			return fmt.Errorf("semprox: snapshot metagraph %d: %w", i, err)
		}
		s.Parts = append(s.Parts, snapPart{Slot: i, Ix: b})
	}
	names := make([]string, 0, len(ep.classes))
	for name := range ep.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cm := ep.classes[name]
		b, err := index.Marshal(cm.ix)
		if err != nil {
			return fmt.Errorf("semprox: snapshot class %q: %w", name, err)
		}
		s.Classes = append(s.Classes, snapClass{
			Name:          name,
			Kept:          cm.kept,
			W:             cm.model.W,
			LogLikelihood: cm.model.LogLikelihood,
			Iterations:    cm.model.Iterations,
			Ix:            b,
		})
	}
	return gob.NewEncoder(w).Encode(&s)
}

// LoadEngine restores an engine written by Save. The loaded engine answers
// Query, Proximity, Weights and Classes identically to the saved one,
// resumes at the saved epoch, and training new classes picks up the
// restored matching cache (already matched metagraphs are never
// re-matched).
func LoadEngine(r io.Reader) (*Engine, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("semprox: snapshot decode: %w", err)
	}
	if s.Version < 1 || s.Version > snapshotVersion {
		return nil, fmt.Errorf("semprox: unsupported snapshot version %d", s.Version)
	}
	g, err := graph.Read(bytes.NewReader(s.Graph))
	if err != nil {
		return nil, fmt.Errorf("semprox: snapshot graph: %w", err)
	}
	g = g.WithVersion(s.Epoch)
	anchor := g.Types().ID(s.AnchorType)
	if anchor == graph.InvalidType {
		return nil, fmt.Errorf("semprox: snapshot anchor type %q not in graph", s.AnchorType)
	}
	if !validEngine(s.Opts.Engine) {
		return nil, fmt.Errorf("semprox: snapshot matching engine %q unknown", s.Opts.Engine)
	}
	e := &Engine{
		anchor: anchor,
		opts:   s.Opts,
		ms:     make([]*metagraph.Metagraph, len(s.Metas)),
	}
	for i, sm := range s.Metas {
		m, err := metagraph.New(sm.Types, sm.Edges)
		if err != nil {
			return nil, fmt.Errorf("semprox: snapshot metagraph %d: %w", i, err)
		}
		e.ms[i] = m
	}
	ep := &epoch{
		g:       g,
		metaIx:  make([]*index.Index, len(e.ms)),
		classes: make(map[string]*classModel, len(s.Classes)),
		version: s.Epoch,
		lsn:     loadLSN(&s),
	}
	for _, p := range s.Parts {
		if p.Slot < 0 || p.Slot >= len(e.ms) {
			return nil, fmt.Errorf("semprox: snapshot part slot %d out of range [0, %d)", p.Slot, len(e.ms))
		}
		if ep.metaIx[p.Slot] != nil {
			return nil, fmt.Errorf("semprox: snapshot part slot %d duplicated", p.Slot)
		}
		ix, err := index.Unmarshal(p.Ix)
		if err != nil {
			return nil, fmt.Errorf("semprox: snapshot part %d: %w", p.Slot, err)
		}
		if ix.NumMeta() != 1 {
			return nil, fmt.Errorf("semprox: snapshot part %d spans %d metagraphs, want 1", p.Slot, ix.NumMeta())
		}
		ep.metaIx[p.Slot] = ix
	}
	for _, sc := range s.Classes {
		if _, dup := ep.classes[sc.Name]; dup {
			return nil, fmt.Errorf("semprox: snapshot class %q duplicated", sc.Name)
		}
		if len(sc.W) != len(sc.Kept) {
			return nil, fmt.Errorf("semprox: snapshot class %q: %d weights for %d metagraphs", sc.Name, len(sc.W), len(sc.Kept))
		}
		for _, idx := range sc.Kept {
			if idx < 0 || idx >= len(e.ms) {
				return nil, fmt.Errorf("semprox: snapshot class %q keeps metagraph %d out of range [0, %d)", sc.Name, idx, len(e.ms))
			}
		}
		ix, err := index.Unmarshal(sc.Ix)
		if err != nil {
			return nil, fmt.Errorf("semprox: snapshot class %q: %w", sc.Name, err)
		}
		if ix.NumMeta() != len(sc.Kept) {
			return nil, fmt.Errorf("semprox: snapshot class %q: index spans %d metagraphs, want %d", sc.Name, ix.NumMeta(), len(sc.Kept))
		}
		ep.classes[sc.Name] = &classModel{
			kept: sc.Kept,
			ix:   ix,
			model: &core.Model{
				W:             sc.W,
				LogLikelihood: sc.LogLikelihood,
				Iterations:    sc.Iterations,
			},
		}
	}
	e.cur.Store(ep)
	return e, nil
}
