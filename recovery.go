package semprox

import (
	"fmt"
	"log"

	"repro/internal/wal"
)

// Crash recovery. A write-ahead-logged deployment (semproxd -wal) makes
// every applied update durable before serving it: the delta is appended
// and fsynced to the log, then applied at the LSN the log assigned. On a
// crash — no clean shutdown, overlays uncompacted, snapshot arbitrarily
// stale — recovery is: load the newest snapshot (LSN L), open the WAL
// (which heals any torn tail), and ReplayWAL the records with LSN > L.
// The recovered engine is byte-identical to one that never crashed
// (property-tested in recovery_test.go), because ApplyUpdateAt is
// deterministic and replay re-applies exactly the suffix the snapshot
// misses.

// ReplayWAL applies every logged record beyond the engine's current LSN,
// in order, and returns how many it applied and how many it skipped.
// Records at or below the engine's LSN are already part of its state
// (the snapshot covered them) and count toward neither.
//
// A record the engine rejects is handled by the log's durable skip
// list (wal.RecordSkip): a primary that ever had an append rejected
// post-durability recorded the LSN before advancing past it, so replay
// distinguishes the two possible causes of a rejection. A rejected
// record that IS in the skip list reproduces the primary's own skip —
// ApplyUpdateAt is deterministic, so advancing past it
// (Engine.AdvanceLSN) lands on exactly the state the primary served —
// and counts toward skipped. A rejected record that is NOT in the skip
// list means the log and the snapshot disagree about the graph (most
// plausibly a -wal directory paired with the wrong snapshot, since
// byte-level corruption is already caught by the WAL's CRC framing) and
// aborts the replay: that is corruption, not something to paper over.
//
// ReplayWAL fails up front on either misalignment between log and
// engine: a log missing records the engine needs (its first retained LSN
// is beyond engine LSN + 1 — the snapshot predates the log's truncation
// horizon), or a log that ends BEHIND the engine (a stale WAL directory
// paired with a newer snapshot) — serving in that state would assign
// future appends LSNs the engine rejects, durably logging records that
// never apply.
func ReplayWAL(e *Engine, w *wal.WAL) (applied, skipped int, err error) {
	at := e.LSN()
	if first := w.FirstLSN(); first > at+1 {
		return 0, 0, fmt.Errorf("semprox: wal starts at LSN %d but engine is at %d: snapshot predates log truncation", first, at)
	}
	if next := w.NextLSN(); next <= at {
		return 0, 0, fmt.Errorf("semprox: wal ends at LSN %d but engine is at %d: stale log directory for this snapshot", next-1, at)
	}
	err = w.Replay(at, func(r wal.Record) error {
		if _, aerr := e.ApplyUpdateAt(r.Delta, r.LSN); aerr != nil {
			if !w.Skipped(r.LSN) {
				return fmt.Errorf("semprox: replay LSN %d: record rejected and not in the log's skip list — the log and the snapshot disagree about the graph (mispaired -wal directory?): %w", r.LSN, aerr)
			}
			log.Printf("semprox: replay LSN %d: reproducing the primary's recorded skip (record was rejected: %v)", r.LSN, aerr)
			e.AdvanceLSN(r.LSN)
			skipped++
			return nil
		}
		applied++
		return nil
	})
	return applied, skipped, err
}
