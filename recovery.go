package semprox

import (
	"fmt"

	"repro/internal/wal"
)

// Crash recovery. A write-ahead-logged deployment (semproxd -wal) makes
// every applied update durable before serving it: the delta is appended
// and fsynced to the log, then applied at the LSN the log assigned. On a
// crash — no clean shutdown, overlays uncompacted, snapshot arbitrarily
// stale — recovery is: load the newest snapshot (LSN L), open the WAL
// (which heals any torn tail), and ReplayWAL the records with LSN > L.
// The recovered engine is byte-identical to one that never crashed
// (property-tested in recovery_test.go), because ApplyUpdateAt is
// deterministic and replay re-applies exactly the suffix the snapshot
// misses.

// ReplayWAL applies every logged record beyond the engine's current LSN,
// in order, and returns how many it applied. Records at or below the
// engine's LSN are already part of its state (the snapshot covered them)
// and are skipped. An application error aborts the replay: a record the
// engine rejects means the log and the snapshot disagree about the graph,
// which is corruption, not something to paper over.
//
// ReplayWAL fails up front on either misalignment between log and
// engine: a log missing records the engine needs (its first retained LSN
// is beyond engine LSN + 1 — the snapshot predates the log's truncation
// horizon), or a log that ends BEHIND the engine (a stale WAL directory
// paired with a newer snapshot) — serving in that state would assign
// future appends LSNs the engine rejects, durably logging records that
// never apply.
func ReplayWAL(e *Engine, w *wal.WAL) (int, error) {
	at := e.LSN()
	if first := w.FirstLSN(); first > at+1 {
		return 0, fmt.Errorf("semprox: wal starts at LSN %d but engine is at %d: snapshot predates log truncation", first, at)
	}
	if next := w.NextLSN(); next <= at {
		return 0, fmt.Errorf("semprox: wal ends at LSN %d but engine is at %d: stale log directory for this snapshot", next-1, at)
	}
	applied := 0
	err := w.Replay(at, func(r wal.Record) error {
		if _, err := e.ApplyUpdateAt(r.Delta, r.LSN); err != nil {
			return fmt.Errorf("semprox: replay LSN %d: %w", r.LSN, err)
		}
		applied++
		return nil
	})
	if err != nil {
		return applied, err
	}
	return applied, nil
}
