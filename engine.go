package semprox

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/metagraph"
	"repro/internal/mining"
)

// Options configures an Engine.
type Options struct {
	// Mining bounds metagraph enumeration (size cap, MNI support).
	Mining mining.Options
	// Train configures gradient ascent (µ, γ, restarts, ...).
	Train core.TrainOptions
	// Engine selects the matching engine: "symiso" (default), "quicksi",
	// "turboiso", or "boostiso". SymISO is the paper's algorithm.
	Engine string
	// Workers bounds the goroutines used for offline metagraph matching
	// (the dominant cost of Table III). Values < 1 mean one worker per
	// available CPU. Matching fans out one metagraph per worker with a
	// private matcher, and the per-metagraph vectors merge
	// deterministically by metagraph offset, so the built index is
	// identical for every worker count.
	Workers int
	// LogTransform applies log(1+count) to the metagraph vectors, the
	// count transform suggested in Sect. II-A. Off by default.
	LogTransform bool
}

// DefaultOptions mirrors the paper's setup (metagraphs of ≤5 nodes,
// µ=5, γ=10 with decay, 5 restarts, SymISO matching) with matching
// parallelized over all available CPUs.
func DefaultOptions() Options {
	return Options{
		Mining: mining.DefaultOptions(),
		Train:  core.DefaultTrain(),
		Engine: "symiso",
	}
}

// Engine is the end-to-end semantic proximity search system.
//
// Thread safety: Train and TrainDualStage mutate the engine and must not
// run concurrently with each other or with MatchedCount. Query, Proximity,
// Weights and Classes are safe for concurrent use at any time — including
// while another class trains (the class table is lock-guarded and frozen
// indices are immutable). The lazy matching cache is guarded per slot
// (sync.Once), so the engine's internal matching fan-out installs each
// metagraph's vectors exactly once.
type Engine struct {
	g      *graph.Graph
	anchor graph.TypeID
	opts   Options

	ms []*metagraph.Metagraph

	// metaIx caches the single-metagraph index of each matched metagraph;
	// dual-stage training matches lazily and never re-matches. metaOnce
	// guards each slot so concurrent installs agree on exactly one match.
	// Matchers are built per worker by matchMissing (SymISO carries
	// per-Match scratch sized to the graph, and SymISO-R style engines may
	// carry mutable state), so none is retained on the engine.
	metaIx   []*index.Index
	metaOnce []sync.Once

	classMu sync.RWMutex
	classes map[string]*classModel
}

// setClass installs a trained class model.
func (e *Engine) setClass(class string, cm *classModel) {
	e.classMu.Lock()
	e.classes[class] = cm
	e.classMu.Unlock()
}

// class returns the trained model of a class, or nil.
func (e *Engine) class(class string) *classModel {
	e.classMu.RLock()
	cm := e.classes[class]
	e.classMu.RUnlock()
	return cm
}

// classModel is the learned state of one semantic class.
type classModel struct {
	kept  []int // metagraph indices the model was trained on
	ix    *index.Index
	model *core.Model
}

// validEngine reports whether name selects a known matching engine,
// without paying for a matcher construction (BoostISO's costs a full
// graph scan).
func validEngine(name string) bool {
	switch name {
	case "", "symiso", "quicksi", "turboiso", "boostiso":
		return true
	}
	return false
}

// newMatcher builds a matcher for an engine name already vetted by
// validEngine in NewEngine.
func newMatcher(name string, g *graph.Graph) match.Matcher {
	switch name {
	case "", "symiso":
		return match.NewSymISO(g)
	case "quicksi":
		return match.NewQuickSI(g)
	case "turboiso":
		return match.NewTurboISO(g)
	case "boostiso":
		return match.NewBoostISO(g)
	}
	panic("semprox: unvalidated matching engine " + name)
}

// NewEngine mines the metagraph set of g (filtered to symmetric
// metagraphs with a symmetric pair of anchor-typed nodes, per Sect. V-A)
// and prepares lazy matching. anchorType is the object type proximity is
// measured between (e.g. "user").
func NewEngine(g *graph.Graph, anchorType string, opts Options) (*Engine, error) {
	anchor := g.Types().ID(anchorType)
	if anchor == graph.InvalidType {
		return nil, fmt.Errorf("semprox: unknown anchor type %q", anchorType)
	}
	e := &Engine{
		g:       g,
		anchor:  anchor,
		opts:    opts,
		classes: make(map[string]*classModel),
	}
	if !validEngine(opts.Engine) {
		return nil, fmt.Errorf("semprox: unknown matching engine %q", opts.Engine)
	}
	patterns := mining.ProximityFilter(mining.Mine(g, opts.Mining), anchor)
	e.ms = mining.Metagraphs(patterns)
	e.metaIx = make([]*index.Index, len(e.ms))
	e.metaOnce = make([]sync.Once, len(e.ms))
	return e, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.g }

// SetWorkers overrides Options.Workers (values < 1 mean one worker per
// CPU). A snapshot-loaded engine carries the worker count of the host
// that saved it; the serving host retunes it here. Call before serving —
// like Train, it must not race with queries or training.
func (e *Engine) SetWorkers(n int) { e.opts.Workers = n }

// Metagraphs returns the mined metagraph set M (do not modify).
func (e *Engine) Metagraphs() []*Metagraph { return e.ms }

// NumMetagraphs returns |M|.
func (e *Engine) NumMetagraphs() int { return len(e.ms) }

// matchMissing fans the still-unmatched metagraphs of the subset out over
// Options.Workers goroutines via index.MatchParts (one private matcher per
// worker) and installs the parts through the per-slot Once. Returns with
// every requested slot populated. The nil pre-scan relies on the engine
// contract that only one Train*/matchMissing runs at a time; the Once
// install keeps even a violation of that contract memory-safe.
func (e *Engine) matchMissing(indices []int) {
	pending := make([]int, 0, len(indices))
	for _, i := range indices {
		if e.metaIx[i] == nil {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return
	}
	ms := make([]*metagraph.Metagraph, len(pending))
	for k, i := range pending {
		ms[k] = e.ms[i]
	}
	parts, _ := index.MatchParts(ms, func() match.Matcher {
		return newMatcher(e.opts.Engine, e.g)
	}, e.opts.Workers)
	for k, i := range pending {
		part := parts[k]
		e.metaOnce[i].Do(func() {
			if e.opts.LogTransform {
				part = part.Transform(log1p)
			}
			e.metaIx[i] = part
		})
	}
}

// indexFor merges the cached vectors of a metagraph subset, matching any
// missing metagraphs in parallel first. The merge order is the order of
// indices, so the result is deterministic for every worker count.
func (e *Engine) indexFor(indices []int) *index.Index {
	e.matchMissing(indices)
	parts := make([]*index.Index, len(indices))
	for k, i := range indices {
		parts[k] = e.metaIx[i]
	}
	return index.Merge(parts...)
}

// MatchedCount reports how many metagraphs have been matched so far —
// after TrainDualStage this stays well below NumMetagraphs, which is the
// whole point of Alg. 1. Like Train*, it must not race with in-flight
// training.
func (e *Engine) MatchedCount() int {
	n := 0
	for _, ix := range e.metaIx {
		if ix != nil {
			n++
		}
	}
	return n
}

// Train learns the weight vector of the named class over ALL metagraphs,
// matching unmatched ones in parallel (Options.Workers) on first use.
func (e *Engine) Train(class string, examples []Example) {
	all := make([]int, len(e.ms))
	for i := range all {
		all[i] = i
	}
	ix := e.indexFor(all)
	e.setClass(class, &classModel{
		kept:  all,
		ix:    ix,
		model: core.Train(ix, examples, e.opts.Train),
	})
}

// TrainDualStage learns the class with dual-stage training (Alg. 1):
// only the metapath seeds plus numCandidates heuristically-selected
// metagraphs are ever matched. Each stage's matching fans out over
// Options.Workers.
func (e *Engine) TrainDualStage(class string, examples []Example, numCandidates int) {
	opts := core.DefaultDualStage(numCandidates)
	opts.Train = e.opts.Train
	res := core.DualStage(e.ms, e.indexFor, examples, opts)
	e.setClass(class, &classModel{
		kept:  res.Kept,
		ix:    e.indexFor(res.Kept),
		model: res.Model,
	})
}

// Classes returns the trained class names, sorted.
func (e *Engine) Classes() []string {
	e.classMu.RLock()
	out := make([]string, 0, len(e.classes))
	for c := range e.classes {
		out = append(out, c)
	}
	e.classMu.RUnlock()
	sort.Strings(out)
	return out
}

// Weights returns the learned weight per metagraph index for a class
// (zero for metagraphs the class never matched), or nil if the class is
// untrained.
func (e *Engine) Weights(class string) []float64 {
	cm := e.class(class)
	if cm == nil {
		return nil
	}
	w := make([]float64, len(e.ms))
	for k, idx := range cm.kept {
		w[idx] = cm.model.W[k]
	}
	return w
}

// Query ranks the nodes closest to q under the named class and returns
// the top k (k <= 0 returns all candidates). The class must be trained.
// The candidate scan shards over Options.Workers goroutines with per-shard
// top-k heaps (long candidate lists dominate online latency), and the
// sharded result is identical to the serial scan for every worker count.
// Safe for concurrent use once the class is trained.
func (e *Engine) Query(class string, q NodeID, k int) ([]Ranked, error) {
	cm := e.class(class)
	if cm == nil {
		return nil, fmt.Errorf("semprox: class %q not trained", class)
	}
	return core.RankTopSharded(cm.ix, cm.model.W, q, k, e.opts.Workers), nil
}

// QueryBatch answers many queries of one class in a single call, fanning
// the queries out over Options.Workers goroutines. Each query runs the
// serial scan — cross-query parallelism already saturates the workers, and
// per-query results are identical either way. Results align with qs. Safe
// for concurrent use once the class is trained.
func (e *Engine) QueryBatch(class string, qs []NodeID, k int) ([][]Ranked, error) {
	cm := e.class(class)
	if cm == nil {
		return nil, fmt.Errorf("semprox: class %q not trained", class)
	}
	out := make([][]Ranked, len(qs))
	workers := index.Workers(e.opts.Workers)
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			out[i] = core.RankTop(cm.ix, cm.model.W, q, k)
		}
		return out, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = core.RankTop(cm.ix, cm.model.W, qs[i], k)
			}
		}()
	}
	for i := range qs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out, nil
}

// Proximity evaluates π(x, y) under the named class's learned weights.
// Safe for concurrent use once the class is trained.
func (e *Engine) Proximity(class string, x, y NodeID) (float64, error) {
	cm := e.class(class)
	if cm == nil {
		return 0, fmt.Errorf("semprox: class %q not trained", class)
	}
	return core.Proximity(cm.ix, cm.model.W, x, y), nil
}
