package semprox

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/metagraph"
	"repro/internal/mining"
)

// Options configures an Engine.
type Options struct {
	// Mining bounds metagraph enumeration (size cap, MNI support).
	Mining mining.Options
	// Train configures gradient ascent (µ, γ, restarts, ...).
	Train core.TrainOptions
	// Engine selects the matching engine: "symiso" (default), "quicksi",
	// "turboiso", or "boostiso". SymISO is the paper's algorithm.
	Engine string
	// LogTransform applies log(1+count) to the metagraph vectors, the
	// count transform suggested in Sect. II-A. Off by default.
	LogTransform bool
}

// DefaultOptions mirrors the paper's setup (metagraphs of ≤5 nodes,
// µ=5, γ=10 with decay, 5 restarts, SymISO matching).
func DefaultOptions() Options {
	return Options{
		Mining: mining.DefaultOptions(),
		Train:  core.DefaultTrain(),
		Engine: "symiso",
	}
}

// Engine is the end-to-end semantic proximity search system. It is not
// safe for concurrent mutation (Train*), but Query/Proximity are safe to
// call concurrently once training is done.
type Engine struct {
	g      *graph.Graph
	anchor graph.TypeID
	opts   Options

	ms      []*metagraph.Metagraph
	matcher match.Matcher

	// metaIx caches the single-metagraph index of each matched metagraph;
	// dual-stage training matches lazily and never re-matches.
	metaIx []*index.Index

	classes map[string]*classModel
}

// classModel is the learned state of one semantic class.
type classModel struct {
	kept  []int // metagraph indices the model was trained on
	ix    *index.Index
	model *core.Model
}

// NewEngine mines the metagraph set of g (filtered to symmetric
// metagraphs with a symmetric pair of anchor-typed nodes, per Sect. V-A)
// and prepares lazy matching. anchorType is the object type proximity is
// measured between (e.g. "user").
func NewEngine(g *graph.Graph, anchorType string, opts Options) (*Engine, error) {
	anchor := g.Types().ID(anchorType)
	if anchor == graph.InvalidType {
		return nil, fmt.Errorf("semprox: unknown anchor type %q", anchorType)
	}
	e := &Engine{
		g:       g,
		anchor:  anchor,
		opts:    opts,
		classes: make(map[string]*classModel),
	}
	switch opts.Engine {
	case "", "symiso":
		e.matcher = match.NewSymISO(g)
	case "quicksi":
		e.matcher = match.NewQuickSI(g)
	case "turboiso":
		e.matcher = match.NewTurboISO(g)
	case "boostiso":
		e.matcher = match.NewBoostISO(g)
	default:
		return nil, fmt.Errorf("semprox: unknown matching engine %q", opts.Engine)
	}
	patterns := mining.ProximityFilter(mining.Mine(g, opts.Mining), anchor)
	e.ms = mining.Metagraphs(patterns)
	e.metaIx = make([]*index.Index, len(e.ms))
	return e, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.g }

// Metagraphs returns the mined metagraph set M (do not modify).
func (e *Engine) Metagraphs() []*Metagraph { return e.ms }

// NumMetagraphs returns |M|.
func (e *Engine) NumMetagraphs() int { return len(e.ms) }

// metaIndex lazily matches metagraph i and caches its vectors.
func (e *Engine) metaIndex(i int) *index.Index {
	if e.metaIx[i] == nil {
		b := index.NewBuilder(1)
		b.AddMetagraph(0, e.ms[i], e.matcher)
		ix := b.Build()
		if e.opts.LogTransform {
			ix = ix.Transform(log1p)
		}
		e.metaIx[i] = ix
	}
	return e.metaIx[i]
}

// indexFor merges the cached vectors of a metagraph subset.
func (e *Engine) indexFor(indices []int) *index.Index {
	parts := make([]*index.Index, len(indices))
	for k, i := range indices {
		parts[k] = e.metaIndex(i)
	}
	return index.Merge(parts...)
}

// MatchedCount reports how many metagraphs have been matched so far —
// after TrainDualStage this stays well below NumMetagraphs, which is the
// whole point of Alg. 1.
func (e *Engine) MatchedCount() int {
	n := 0
	for _, ix := range e.metaIx {
		if ix != nil {
			n++
		}
	}
	return n
}

// Train learns the weight vector of the named class over ALL metagraphs
// (matching each on first use).
func (e *Engine) Train(class string, examples []Example) {
	all := make([]int, len(e.ms))
	for i := range all {
		all[i] = i
	}
	ix := e.indexFor(all)
	e.classes[class] = &classModel{
		kept:  all,
		ix:    ix,
		model: core.Train(ix, examples, e.opts.Train),
	}
}

// TrainDualStage learns the class with dual-stage training (Alg. 1):
// only the metapath seeds plus numCandidates heuristically-selected
// metagraphs are ever matched.
func (e *Engine) TrainDualStage(class string, examples []Example, numCandidates int) {
	opts := core.DefaultDualStage(numCandidates)
	opts.Train = e.opts.Train
	res := core.DualStage(e.ms, e.indexFor, examples, opts)
	e.classes[class] = &classModel{
		kept:  res.Kept,
		ix:    e.indexFor(res.Kept),
		model: res.Model,
	}
}

// Classes returns the trained class names, sorted.
func (e *Engine) Classes() []string {
	out := make([]string, 0, len(e.classes))
	for c := range e.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Weights returns the learned weight per metagraph index for a class
// (zero for metagraphs the class never matched), or nil if the class is
// untrained.
func (e *Engine) Weights(class string) []float64 {
	cm := e.classes[class]
	if cm == nil {
		return nil
	}
	w := make([]float64, len(e.ms))
	for k, idx := range cm.kept {
		w[idx] = cm.model.W[k]
	}
	return w
}

// Query ranks the nodes closest to q under the named class and returns
// the top k (k <= 0 returns all candidates). The class must be trained.
func (e *Engine) Query(class string, q NodeID, k int) ([]Ranked, error) {
	cm := e.classes[class]
	if cm == nil {
		return nil, fmt.Errorf("semprox: class %q not trained", class)
	}
	return core.RankTop(cm.ix, cm.model.W, q, k), nil
}

// Proximity evaluates π(x, y) under the named class's learned weights.
func (e *Engine) Proximity(class string, x, y NodeID) (float64, error) {
	cm := e.classes[class]
	if cm == nil {
		return 0, fmt.Errorf("semprox: class %q not trained", class)
	}
	return core.Proximity(cm.ix, cm.model.W, x, y), nil
}
