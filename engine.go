package semprox

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/metagraph"
	"repro/internal/mining"
)

// Options configures an Engine.
type Options struct {
	// Mining bounds metagraph enumeration (size cap, MNI support).
	Mining mining.Options
	// Train configures gradient ascent (µ, γ, restarts, ...).
	Train core.TrainOptions
	// Engine selects the matching engine: "symiso" (default), "quicksi",
	// "turboiso", or "boostiso". SymISO is the paper's algorithm.
	Engine string
	// Workers bounds the goroutines used for offline metagraph matching
	// (the dominant cost of Table III). Values < 1 mean one worker per
	// available CPU. Matching fans out one metagraph per worker with a
	// private matcher, and the per-metagraph vectors merge
	// deterministically by metagraph offset, so the built index is
	// identical for every worker count.
	Workers int
	// LogTransform applies log(1+count) to the metagraph vectors, the
	// count transform suggested in Sect. II-A. Off by default.
	LogTransform bool
}

// DefaultOptions mirrors the paper's setup (metagraphs of ≤5 nodes,
// µ=5, γ=10 with decay, 5 restarts, SymISO matching) with matching
// parallelized over all available CPUs.
func DefaultOptions() Options {
	return Options{
		Mining: mining.DefaultOptions(),
		Train:  core.DefaultTrain(),
		Engine: "symiso",
	}
}

// log1p is the count transform used when Options.LogTransform is set.
func log1p(c float64) float64 { return math.Log1p(c) }

// Engine is the end-to-end semantic proximity search system.
//
// Thread safety: the engine serves every read — Query, QueryBatch,
// Proximity, Weights, Classes, Graph, Epoch, View, MatchedCount, Stats,
// Save —
// from an immutable epoch published through an atomic pointer, so reads
// are always safe, always lock-free, and always see one consistent
// (graph, index, classes) snapshot, never a mix of two generations.
// Writers — Train, TrainDualStage, ApplyUpdate, Compact — serialize among
// themselves on an internal mutex, build the next epoch off the read
// path, and swap it in atomically; they never block a reader. SetWorkers
// is the one exception: call it before serving.
type Engine struct {
	anchor graph.TypeID
	opts   Options

	ms []*metagraph.Metagraph

	// mu serializes epoch writers; cur is the serving epoch.
	mu  sync.Mutex
	cur atomic.Pointer[epoch]
}

// epoch is one immutable serving generation: the graph version, the lazy
// matching cache, and the trained classes that go with it. Epochs are
// never mutated after publish — writers copy what changes and share the
// rest.
type epoch struct {
	g *graph.Graph

	// metaIx caches the single-metagraph index of each matched metagraph;
	// dual-stage training matches lazily and never re-matches. Matchers
	// are built per worker by matchMissing (SymISO carries per-Match
	// scratch sized to the graph, and SymISO-R style engines may carry
	// mutable state), so none is retained.
	metaIx []*index.Index

	classes map[string]*classModel

	// version is the serving epoch counter: the graph's Apply generation,
	// persisted across snapshots. pending counts the structures (graph +
	// indices) still carrying copy-on-write overlays that Compact would
	// fold into flat storage.
	version uint64
	pending int

	// lsn is the log sequence number of the last durable update applied:
	// a write-ahead-logged update carries its WAL-assigned LSN through
	// ApplyUpdateAt, recovery replays records with LSN > lsn, and a
	// follower replica reports primaryLSN - lsn as its lag. Without a WAL
	// it simply advances by one per update, mirroring version.
	lsn uint64
}

// classModel is the learned state of one semantic class.
type classModel struct {
	kept  []int // metagraph indices the model was trained on
	ix    *index.Index
	model *core.Model
}

// validEngine reports whether name selects a known matching engine,
// without paying for a matcher construction (BoostISO's costs a full
// graph scan).
func validEngine(name string) bool {
	switch name {
	case "", "symiso", "quicksi", "turboiso", "boostiso":
		return true
	}
	return false
}

// newMatcher builds a matcher for an engine name already vetted by
// validEngine in NewEngine.
func newMatcher(name string, g *graph.Graph) match.Matcher {
	switch name {
	case "", "symiso":
		return match.NewSymISO(g)
	case "quicksi":
		return match.NewQuickSI(g)
	case "turboiso":
		return match.NewTurboISO(g)
	case "boostiso":
		return match.NewBoostISO(g)
	}
	panic("semprox: unvalidated matching engine " + name)
}

// NewEngine mines the metagraph set of g (filtered to symmetric
// metagraphs with a symmetric pair of anchor-typed nodes, per Sect. V-A)
// and prepares lazy matching. anchorType is the object type proximity is
// measured between (e.g. "user").
func NewEngine(g *graph.Graph, anchorType string, opts Options) (*Engine, error) {
	anchor := g.Types().ID(anchorType)
	if anchor == graph.InvalidType {
		return nil, fmt.Errorf("semprox: unknown anchor type %q", anchorType)
	}
	if !validEngine(opts.Engine) {
		return nil, fmt.Errorf("semprox: unknown matching engine %q", opts.Engine)
	}
	e := &Engine{anchor: anchor, opts: opts}
	patterns := mining.ProximityFilter(mining.Mine(g, opts.Mining), anchor)
	e.ms = mining.Metagraphs(patterns)
	e.cur.Store(&epoch{
		g:       g,
		metaIx:  make([]*index.Index, len(e.ms)),
		classes: make(map[string]*classModel),
		version: g.Version(),
	})
	return e, nil
}

// Graph returns the graph of the current serving epoch.
func (e *Engine) Graph() *Graph { return e.cur.Load().g }

// Epoch returns the serving epoch counter: 0 for a freshly built engine,
// +1 per ApplyUpdate, preserved across Save/LoadEngine.
func (e *Engine) Epoch() uint64 { return e.cur.Load().version }

// LSN returns the log sequence number of the last update applied: the
// position of this engine in its write-ahead log (see internal/wal).
// Snapshots persist it (wire v3), so recovery knows exactly which WAL
// records the snapshot already covers. Safe for concurrent use.
func (e *Engine) LSN() uint64 { return e.cur.Load().lsn }

// SetWorkers overrides Options.Workers (values < 1 mean one worker per
// CPU). A snapshot-loaded engine carries the worker count of the host
// that saved it; the serving host retunes it here. Call before serving —
// unlike everything else on the engine, it must not race with queries,
// training, or updates.
func (e *Engine) SetWorkers(n int) { e.opts.Workers = n }

// Metagraphs returns the mined metagraph set M (do not modify).
func (e *Engine) Metagraphs() []*Metagraph { return e.ms }

// NumMetagraphs returns |M|.
func (e *Engine) NumMetagraphs() int { return len(e.ms) }

// matchMissing matches the still-unmatched metagraphs of the subset on
// ep's graph, fanning them out over Options.Workers goroutines via
// index.MatchParts (one private matcher per worker). It returns a metaIx
// slice with every requested slot populated — ep.metaIx itself when
// nothing was missing, a copy otherwise (epochs are immutable; the caller
// publishes the copy). Callers hold e.mu.
//
// index.MatchParts cannot fail: its only returns are the part indices
// (one per input metagraph, always populated) and the per-metagraph
// wall-clock durations that cmd/bench reports — there is no error to
// propagate here, only timing data this path has no use for.
func (e *Engine) matchMissing(ep *epoch, metaIx []*index.Index, indices []int) []*index.Index {
	pending := make([]int, 0, len(indices))
	for _, i := range indices {
		if metaIx[i] == nil {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return metaIx
	}
	ms := make([]*metagraph.Metagraph, len(pending))
	for k, i := range pending {
		ms[k] = e.ms[i]
	}
	parts, _ := index.MatchParts(ms, func() match.Matcher {
		return newMatcher(e.opts.Engine, ep.g)
	}, e.opts.Workers)
	out := append([]*index.Index(nil), metaIx...)
	for k, i := range pending {
		part := parts[k]
		if e.opts.LogTransform {
			part = part.Transform(log1p)
		}
		out[i] = part
	}
	return out
}

// mergeFor merges the cached vectors of a metagraph subset in the order
// of indices, so the result is deterministic for every worker count.
// Every requested slot must already be matched.
func mergeFor(metaIx []*index.Index, indices []int) *index.Index {
	parts := make([]*index.Index, len(indices))
	for k, i := range indices {
		parts[k] = metaIx[i]
	}
	return index.Merge(parts...)
}

// MatchedCount reports how many metagraphs have been matched so far —
// after TrainDualStage this stays well below NumMetagraphs, which is the
// whole point of Alg. 1. Safe for concurrent use (it reads one epoch).
func (e *Engine) MatchedCount() int {
	n := 0
	for _, ix := range e.cur.Load().metaIx {
		if ix != nil {
			n++
		}
	}
	return n
}

// publish installs the next epoch with its pending-compaction count
// recomputed. Callers hold e.mu.
func (e *Engine) publish(ep *epoch) {
	ep.pending = 0
	if ep.g.Overlaid() {
		ep.pending++
	}
	for _, ix := range ep.metaIx {
		if ix != nil && ix.Pending() {
			ep.pending++
		}
	}
	for _, cm := range ep.classes {
		if cm.ix.Pending() {
			ep.pending++
		}
	}
	e.cur.Store(ep)
}

// withClass copies the class table with one entry replaced.
func withClass(classes map[string]*classModel, name string, cm *classModel) map[string]*classModel {
	out := make(map[string]*classModel, len(classes)+1)
	for k, v := range classes {
		out[k] = v
	}
	out[name] = cm
	return out
}

// Train learns the weight vector of the named class over ALL metagraphs,
// matching unmatched ones in parallel (Options.Workers) on first use.
// Queries keep serving the previous epoch until the trained class is
// swapped in.
func (e *Engine) Train(class string, examples []Example) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ep := e.cur.Load()
	all := make([]int, len(e.ms))
	for i := range all {
		all[i] = i
	}
	metaIx := e.matchMissing(ep, ep.metaIx, all)
	ix := mergeFor(metaIx, all)
	cm := &classModel{kept: all, ix: ix, model: core.Train(ix, examples, e.opts.Train)}
	e.publish(&epoch{
		g:       ep.g,
		metaIx:  metaIx,
		classes: withClass(ep.classes, class, cm),
		version: ep.version,
		lsn:     ep.lsn,
	})
}

// TrainDualStage learns the class with dual-stage training (Alg. 1):
// only the metapath seeds plus numCandidates heuristically-selected
// metagraphs are ever matched. Each stage's matching fans out over
// Options.Workers.
func (e *Engine) TrainDualStage(class string, examples []Example, numCandidates int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ep := e.cur.Load()
	metaIx := ep.metaIx
	matchFn := func(indices []int) *index.Index {
		metaIx = e.matchMissing(ep, metaIx, indices)
		return mergeFor(metaIx, indices)
	}
	opts := core.DefaultDualStage(numCandidates)
	opts.Train = e.opts.Train
	res := core.DualStage(e.ms, matchFn, examples, opts)
	cm := &classModel{kept: res.Kept, ix: mergeFor(metaIx, res.Kept), model: res.Model}
	e.publish(&epoch{
		g:       ep.g,
		metaIx:  metaIx,
		classes: withClass(ep.classes, class, cm),
		version: ep.version,
		lsn:     ep.lsn,
	})
}

// Classes returns the trained class names, sorted.
func (e *Engine) Classes() []string {
	classes := e.cur.Load().classes
	out := make([]string, 0, len(classes))
	for c := range classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Weights returns the learned weight per metagraph index for a class
// (zero for metagraphs the class never matched), or nil if the class is
// untrained.
func (e *Engine) Weights(class string) []float64 {
	cm := e.cur.Load().classes[class]
	if cm == nil {
		return nil
	}
	w := make([]float64, len(e.ms))
	for k, idx := range cm.kept {
		w[idx] = cm.model.W[k]
	}
	return w
}

// View pins the current serving epoch: every read through the returned
// View — Query, QueryBatch, Proximity, Graph, Epoch — answers from the
// SAME immutable (graph, index, classes) generation, even while updates
// swap new epochs in concurrently. Engine.Query and Engine.Epoch each
// load the epoch pointer independently, so a caller pairing their
// results can observe a torn (result, epoch) combination across an
// update; callers that need the pairing exact — the serving layer stamps
// each response with the epoch that produced it so the edge cache can
// key on it — take one View and read everything through it. Views are
// cheap (one atomic load) and must not be retained beyond the request:
// a held View keeps its whole epoch reachable.
func (e *Engine) View() View { return View{e: e, ep: e.cur.Load()} }

// View is one pinned serving epoch of an Engine (see Engine.View). Safe
// for concurrent use; all methods describe the same generation.
type View struct {
	e  *Engine
	ep *epoch
}

// Epoch returns the serving epoch counter of the pinned generation.
func (v View) Epoch() uint64 { return v.ep.version }

// Graph returns the graph of the pinned generation.
func (v View) Graph() *Graph { return v.ep.g }

// Classes returns the trained class names of the pinned generation,
// sorted.
func (v View) Classes() []string {
	out := make([]string, 0, len(v.ep.classes))
	for c := range v.ep.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Query ranks the nodes closest to q under the named class and returns
// the top k (k <= 0 returns all candidates). The class must be trained.
// The candidate scan shards over Options.Workers goroutines with per-shard
// top-k heaps (long candidate lists dominate online latency), and the
// sharded result is identical to the serial scan for every worker count.
// Safe for concurrent use at any time, including while the engine trains,
// applies updates, or compacts.
func (e *Engine) Query(class string, q NodeID, k int) ([]Ranked, error) {
	return e.View().Query(class, q, k)
}

// Query is Engine.Query against the pinned epoch.
func (v View) Query(class string, q NodeID, k int) ([]Ranked, error) {
	cm := v.ep.classes[class]
	if cm == nil {
		return nil, fmt.Errorf("semprox: class %q not trained", class)
	}
	return core.RankTopSharded(cm.ix, cm.model.W, q, k, v.e.opts.Workers), nil
}

// QueryBatch answers many queries of one class in a single call, fanning
// the queries out over Options.Workers goroutines. Each query runs the
// serial scan — cross-query parallelism already saturates the workers, and
// per-query results are identical either way. Results align with qs, and
// the whole batch is answered from ONE epoch: a concurrent ApplyUpdate
// never splits a batch across generations. Safe for concurrent use.
func (e *Engine) QueryBatch(class string, qs []NodeID, k int) ([][]Ranked, error) {
	return e.View().QueryBatch(class, qs, k)
}

// QueryBatch is Engine.QueryBatch against the pinned epoch.
func (v View) QueryBatch(class string, qs []NodeID, k int) ([][]Ranked, error) {
	cm := v.ep.classes[class]
	if cm == nil {
		return nil, fmt.Errorf("semprox: class %q not trained", class)
	}
	out := make([][]Ranked, len(qs))
	workers := index.Workers(v.e.opts.Workers)
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			out[i] = core.RankTop(cm.ix, cm.model.W, q, k)
		}
		return out, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = core.RankTop(cm.ix, cm.model.W, qs[i], k)
			}
		}()
	}
	for i := range qs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out, nil
}

// Proximity evaluates π(x, y) under the named class's learned weights.
// Safe for concurrent use.
func (e *Engine) Proximity(class string, x, y NodeID) (float64, error) {
	return e.View().Proximity(class, x, y)
}

// Proximity is Engine.Proximity against the pinned epoch.
func (v View) Proximity(class string, x, y NodeID) (float64, error) {
	cm := v.ep.classes[class]
	if cm == nil {
		return 0, fmt.Errorf("semprox: class %q not trained", class)
	}
	return core.Proximity(cm.ix, cm.model.W, x, y), nil
}
