package api_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/api"
)

func TestPathsAreVersioned(t *testing.T) {
	paths := api.Paths()
	if len(paths) == 0 {
		t.Fatal("no paths declared")
	}
	seen := map[string]bool{}
	for _, p := range paths {
		if !strings.HasPrefix(p, api.Prefix+"/") {
			t.Fatalf("path %q does not carry the %s prefix", p, api.Prefix)
		}
		if seen[p] {
			t.Fatalf("path %q declared twice", p)
		}
		seen[p] = true
	}
}

func TestLegacyPathStripsPrefixOnly(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{api.PathQuery, "/query"},
		{api.PathReplicateSince, "/replicate/since"},
		{"/query", "/query"},       // already legacy
		{"/v2/query", "/v2/query"}, // other versions untouched
		{"/metrics", "/metrics"},   // unknown paths untouched
	} {
		if got := api.LegacyPath(tc.in); got != tc.want {
			t.Errorf("LegacyPath(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestCanonicalPathRoundTrips(t *testing.T) {
	for _, p := range api.Paths() {
		if got := api.CanonicalPath(p); got != p {
			t.Errorf("CanonicalPath(%q) = %q, want unchanged", p, got)
		}
		if got := api.CanonicalPath(api.LegacyPath(p)); got != p {
			t.Errorf("CanonicalPath(%q) = %q, want %q", api.LegacyPath(p), got, p)
		}
	}
	if got := api.CanonicalPath("/not-an-endpoint"); got != "/not-an-endpoint" {
		t.Errorf("CanonicalPath on unknown path = %q, want unchanged", got)
	}
}

func TestErrorfAndEnvelope(t *testing.T) {
	e := api.Errorf(404, api.CodeNodeNotFound, "node %q not in graph", "zoe")
	if e.Status != 404 || e.Code != api.CodeNodeNotFound {
		t.Fatalf("Errorf = %+v", e)
	}
	if got := e.Error(); got != `node_not_found: node "zoe" not in graph` {
		t.Fatalf("Error() = %q", got)
	}

	// The envelope serializes code and message only — Status is transport
	// metadata and must not leak into the body.
	body, err := json.Marshal(api.ErrorEnvelope{Error: *e})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"node_not_found","message":"node \"zoe\" not in graph"}}`
	if string(body) != want {
		t.Fatalf("envelope = %s, want %s", body, want)
	}
	var back api.ErrorEnvelope
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatal(err)
	}
	if back.Error.Code != e.Code || back.Error.Message != e.Message || back.Error.Status != 0 {
		t.Fatalf("round trip = %+v", back.Error)
	}
}

func TestReadyResponseReady(t *testing.T) {
	if !(api.ReadyResponse{Status: api.StatusReady}).Ready() {
		t.Fatal("ready status not ready")
	}
	for _, s := range []string{api.StatusCatchingUp, api.StatusWALFailed, ""} {
		if (api.ReadyResponse{Status: s}).Ready() {
			t.Fatalf("status %q reported ready", s)
		}
	}
}
