// Package api is the versioned wire contract of the semprox serving
// layer — the one place the HTTP protocol is declared. The server
// (internal/server) renders exactly these types, the typed Go client
// (client) decodes exactly these types, and the replication machinery
// (internal/replica) speaks through the same client, so no consumer ever
// re-declares a request or response shape.
//
// Every endpoint lives under the /v1 prefix (PathQuery, PathUpdate, …);
// the pre-versioning unversioned paths remain served as byte-identical
// aliases (LegacyPath) so old clients keep working. Every non-2xx
// response is the uniform envelope
//
//	{"error": {"code": "<machine-readable>", "message": "<human>"}}
//
// with the codes enumerated below, so callers branch on Code and never
// parse free-text failures.
//
// Compatibility contract: within /v1, fields are only ever added (with
// omitempty), never renamed, re-typed, or removed; codes and paths are
// append-only. A breaking change means a /v2 prefix, served alongside.
package api

import (
	"fmt"
	"strings"
)

// Version is the current API version; every path below carries it.
const Version = "v1"

// Prefix is the path prefix of every versioned endpoint.
const Prefix = "/" + Version

// Versioned endpoint paths. LegacyPath maps each to its pre-versioning
// unversioned alias, which servers keep serving byte-identically.
const (
	PathHealthz           = Prefix + "/healthz"
	PathReadyz            = Prefix + "/readyz"
	PathClasses           = Prefix + "/classes"
	PathQuery             = Prefix + "/query"
	PathProximity         = Prefix + "/proximity"
	PathUpdate            = Prefix + "/update"
	PathStats             = Prefix + "/stats"
	PathReplicateSince    = Prefix + "/replicate/since"
	PathReplicateSnapshot = Prefix + "/replicate/snapshot"
)

// Paths lists every versioned endpoint, in a stable order. Servers
// iterate it to mount versioned and legacy routes from one table.
func Paths() []string {
	return []string{
		PathHealthz, PathReadyz, PathClasses, PathQuery, PathProximity,
		PathUpdate, PathStats, PathReplicateSince, PathReplicateSnapshot,
	}
}

// LegacyPath returns the unversioned alias of a versioned path
// ("/v1/query" → "/query"). Paths without the version prefix come back
// unchanged.
func LegacyPath(p string) string {
	return strings.TrimPrefix(p, Prefix)
}

// CanonicalPath returns the versioned form of a request path: a known
// legacy alias gains the /v1 prefix, everything else comes back
// unchanged. Error messages mention canonical paths only, so a legacy
// request and its /v1 twin produce byte-identical responses.
func CanonicalPath(p string) string {
	for _, v := range Paths() {
		if p == v || p == LegacyPath(v) {
			return v
		}
	}
	return p
}

// HeaderEpoch is the response header stamping query and proximity
// responses with the serving epoch that produced them — the same counter
// PathStats serves, emitted per response so edge caches (cmd/semproxy)
// can key entries by the exact data generation without a second request
// and without the torn pairing a separate stats poll could observe. It
// rides transport metadata, not the body, so response bytes stay
// identical across servers with and without the header — the
// byte-identity invariant replicas are tested under. Headers are
// additive transport metadata; adding one is a compatible /v1 change.
const HeaderEpoch = "X-Semprox-Epoch"

// HeaderTrace carries the per-request trace ID: minted at the first tier
// that sees a request (the semproxy edge, or a server hit directly),
// accepted verbatim when the caller already set one, and echoed on every
// response — success or error envelope — so one failed routed read is
// greppable across proxy and backend structured log lines. Like
// HeaderEpoch it is transport metadata only: the ID never appears in a
// response body, preserving byte-identity across replicas and aliases.
const HeaderTrace = "X-Semprox-Trace"

// Request limits, enforced server-side with CodeBadRequest. Clients that
// pre-validate against the same constants never burn a round trip on an
// oversized request.
const (
	// MaxBatch bounds the queries accepted by one batched query request.
	MaxBatch = 1024
	// MaxUpdate bounds the node plus edge additions of one update.
	MaxUpdate = 4096
	// MaxBodyBytes bounds a request body.
	MaxBodyBytes = 1 << 20
	// DefaultK is the result count when a query leaves k unset (0).
	DefaultK = 10
)

// Machine-readable error codes carried by the error envelope.
const (
	// CodeBadRequest: a malformed or over-limit request (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeClassNotFound: the named class is not trained (HTTP 404).
	CodeClassNotFound = "class_not_found"
	// CodeNodeNotFound: a node name not present in the graph (HTTP 404).
	CodeNodeNotFound = "node_not_found"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint (HTTP 405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotPrimary: an update sent to a read replica (HTTP 503); the
	// message names the primary to resend to.
	CodeNotPrimary = "not_primary"
	// CodeReplicationDisabled: a /replicate endpoint on a server with no
	// write-ahead log attached (HTTP 503).
	CodeReplicationDisabled = "replication_disabled"
	// CodeTermMismatch: a replication poll whose term query parameter
	// disagrees with the serving log's record at that LSN (HTTP 409) —
	// the poller's history diverged (it holds records a promotion
	// overwrote) and must re-bootstrap, not stream.
	CodeTermMismatch = "term_mismatch"
	// CodeInternal: a server-side failure (HTTP 5xx).
	CodeInternal = "internal"
)

// Error is the structured error of every non-2xx response. Status is the
// HTTP status it traveled under — transport metadata, not part of the
// body (the envelope carries code and message only).
type Error struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errorf builds an Error with a formatted message.
func Errorf(status int, code, format string, args ...any) *Error {
	return &Error{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorEnvelope is the body shape of every non-2xx response.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}

// QueryRequest is the POST body of PathQuery: exactly one of Query
// (single) or Queries (batch, ≤ MaxBatch) must be set. K = 0 (or unset)
// requests the server default, DefaultK; negative K is rejected with
// CodeBadRequest (the Go client normalizes negative k to 0 before
// sending). The GET form carries the same fields as ?class=&query=&k=
// parameters.
type QueryRequest struct {
	Class   string   `json:"class"`
	Query   string   `json:"query,omitempty"`
	Queries []string `json:"queries,omitempty"`
	K       int      `json:"k,omitempty"`
}

// RankedResult is one entry of a ranking.
type RankedResult struct {
	Node  int32   `json:"node"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// QueryResult is the ranking of one query.
type QueryResult struct {
	Query   string         `json:"query"`
	Results []RankedResult `json:"results"`
}

// QueryResponse is the PathQuery response; a single query is a batch of
// one.
type QueryResponse struct {
	Class   string        `json:"class"`
	K       int           `json:"k"`
	Results []QueryResult `json:"results"`
}

// ProximityRequest is the POST body of PathProximity (GET: ?class=&x=&y=).
type ProximityRequest struct {
	Class string `json:"class"`
	X     string `json:"x"`
	Y     string `json:"y"`
}

// ProximityResponse is the PathProximity response.
type ProximityResponse struct {
	Class     string  `json:"class"`
	X         string  `json:"x"`
	Y         string  `json:"y"`
	Proximity float64 `json:"proximity"`
}

// UpdateNode is one node addition of an update; Type must already be
// registered in the graph (a delta cannot introduce types).
type UpdateNode struct {
	Type string `json:"type"`
	Name string `json:"name"`
}

// UpdateEdge is one edge addition; endpoints are node names, resolving
// against the request's own new nodes first and the graph second.
type UpdateEdge struct {
	U string `json:"u"`
	V string `json:"v"`
}

// UpdateRequest is the PathUpdate body; Nodes plus Edges is bounded by
// MaxUpdate.
type UpdateRequest struct {
	Nodes []UpdateNode `json:"nodes,omitempty"`
	Edges []UpdateEdge `json:"edges,omitempty"`
}

// UpdateResponse reports what one accepted update did.
type UpdateResponse struct {
	Epoch             uint64 `json:"epoch"`
	LSN               uint64 `json:"lsn"`
	NodesAdded        int    `json:"nodes_added"`
	EdgesAdded        int    `json:"edges_added"`
	Rematched         int    `json:"rematched"`
	PendingCompaction int    `json:"pending_compaction"`
}

// HealthResponse is the PathHealthz body.
type HealthResponse struct {
	Status     string   `json:"status"`
	Nodes      int      `json:"nodes"`
	Edges      int      `json:"edges"`
	Types      int      `json:"types"`
	Metagraphs int      `json:"metagraphs"`
	Classes    []string `json:"classes"`
}

// ClassesResponse is the PathClasses body.
type ClassesResponse struct {
	Classes []string `json:"classes"`
}

// StatsResponse is the PathStats body. Proxy is absent from engine
// servers; the semproxy edge tier forwards the primary's stats and
// appends its own hedge/cache counters there (an added omitempty field —
// a compatible /v1 extension).
type StatsResponse struct {
	Epoch             uint64      `json:"epoch"`
	LSN               uint64      `json:"lsn"`
	Nodes             int         `json:"nodes"`
	Edges             int         `json:"edges"`
	Types             int         `json:"types"`
	Metagraphs        int         `json:"metagraphs"`
	Matched           int         `json:"matched"`
	PendingCompaction int         `json:"pending_compaction"`
	Classes           []string    `json:"classes"`
	Proxy             *ProxyStats `json:"proxy,omitempty"`
}

// ProxyStats is the semproxy edge tier's observability block: how the
// hedger and the epoch-keyed response cache are behaving. Reads counts
// the read requests forwarded to backends (cache hits never reach one);
// HedgesIssued/Won/Cancelled decompose the duplicate requests the
// hedger launched (won = the hedge's answer was used, cancelled = the
// first attempt won and the hedge was cancelled mid-flight);
// EpochFlushes counts the epoch bumps the proxy observed, each of which
// flushes the cache; Epoch is the newest epoch observed.
type ProxyStats struct {
	Reads           uint64 `json:"reads"`
	HedgesIssued    uint64 `json:"hedges_issued"`
	HedgesWon       uint64 `json:"hedges_won"`
	HedgesCancelled uint64 `json:"hedges_cancelled"`
	CacheHits       uint64 `json:"cache_hits"`
	CacheMisses     uint64 `json:"cache_misses"`
	CacheEvictions  uint64 `json:"cache_evictions"`
	CacheEntries    int    `json:"cache_entries"`
	CacheBytes      int    `json:"cache_bytes"`
	EpochFlushes    uint64 `json:"epoch_flushes"`
	Epoch           uint64 `json:"epoch"`
}

// Roles reported by PathReadyz.
const (
	RolePrimary    = "primary"
	RoleFollower   = "follower"
	RoleStandalone = "standalone"
	// RoleProxy: a semproxy edge tier — not a replica; it fronts a
	// primary and followers and owns no data of its own.
	RoleProxy = "proxy"
)

// Readiness statuses reported by PathReadyz.
const (
	StatusReady      = "ready"
	StatusCatchingUp = "catching_up"
	StatusWALFailed  = "wal_failed"
	// StatusNoBackends: a proxy that can currently reach no backend able
	// to serve reads — no live follower and no ready primary.
	StatusNoBackends = "no_backends"
	// StatusFenced: a follower that observed records from a term older
	// than one it has already applied — it is polling a zombie primary
	// (one that lost its authority to a promotion) and refuses to apply
	// anything from it. Unlike catching_up this does not clear with
	// time; it clears when the follower reaches a current-term primary.
	StatusFenced = "fenced"
)

// ReadyResponse is the PathReadyz body. Unlike errors it travels on both
// 200 (ready) and 503 (catching up, fenced, or a primary whose WAL
// sticky-failed) so load balancers and the client Router read lag
// without a second request. Term is the node's promotion epoch — the
// term its log writes under (primary) or the newest term it has
// observed (follower); the Router trusts the highest-term backend
// claiming RolePrimary as the one true primary.
type ReadyResponse struct {
	Status     string `json:"status"`
	Role       string `json:"role"`
	LSN        uint64 `json:"lsn"`
	PrimaryLSN uint64 `json:"primary_lsn,omitempty"`
	Lag        uint64 `json:"lag"`
	Term       uint64 `json:"term,omitempty"`
}

// Ready reports whether the response announces a caught-up, serving
// replica.
func (r ReadyResponse) Ready() bool { return r.Status == StatusReady }

// ReplicateRecord is one logged delta on the wire; Delta is the WAL's
// binary encoding (graph.EncodeDelta), which encoding/json carries as
// base64. Term is the promotion epoch the record was written under
// (absent = 1, the term of every record logged before terms existed).
type ReplicateRecord struct {
	LSN   uint64 `json:"lsn"`
	Term  uint64 `json:"term,omitempty"`
	Delta []byte `json:"delta"`
}

// SinceResponse is the PathReplicateSince body: records with LSN > From
// in log order, plus the primary's durable LSN at read time so followers
// measure their lag. An empty Records with LastLSN == From means caught
// up. Term is the serving log's CURRENT term (absent = 1): a follower
// that has observed a newer term anywhere refuses this response — the
// server is a zombie, fenced off by a promotion it has not noticed yet.
type SinceResponse struct {
	From    uint64            `json:"from"`
	LastLSN uint64            `json:"last_lsn"`
	Term    uint64            `json:"term,omitempty"`
	Records []ReplicateRecord `json:"records"`
}
