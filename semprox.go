// Package semprox is the public API of this reproduction of "Semantic
// Proximity Search on Graphs with Metagraph-based Learning" (Fang et al.,
// ICDE 2016). It wires the substrates together exactly as the paper's
// framework figure (Fig. 3) does:
//
//	offline:  mine metagraphs → match them (SymISO) → index the
//	          metagraph vectors m_x, m_xy → learn per-class weights w*
//	online:   rank nodes by MGP proximity π(q, ·; w*)
//	live:     ApplyUpdate grows the graph while queries keep serving —
//	          neighborhood re-match, index patching, atomic epoch swap
//
// The central type is Engine. A typical session:
//
//	b := semprox.NewGraphBuilder()
//	alice := b.AddNodeOnce("user", "Alice")
//	college := b.AddNodeOnce("school", "College A")
//	b.AddEdge(alice, college)
//	... more nodes and edges ...
//	g := b.MustBuild()
//
//	eng, err := semprox.NewEngine(g, "user", semprox.DefaultOptions())
//	eng.Train("classmate", examples)            // or TrainDualStage
//	results := eng.Query("classmate", alice, 10)
//
// Everything is implemented from scratch on the standard library; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure.
package semprox

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/metagraph"
)

// Re-exported building blocks so downstream users never import internal
// packages.
type (
	// Graph is an immutable typed object graph (Sect. II-A).
	Graph = graph.Graph
	// GraphBuilder accumulates nodes/edges and builds a Graph.
	GraphBuilder = graph.Builder
	// NodeID identifies a node of a Graph.
	NodeID = graph.NodeID
	// TypeID identifies an object type.
	TypeID = graph.TypeID
	// Metagraph is a type-level pattern graph (Sect. II-A).
	Metagraph = metagraph.Metagraph
	// Example is a pairwise training triplet (q, x, y): x should rank
	// before y for query q (Sect. III-B).
	Example = core.Example
	// Ranked is one result of a proximity query.
	Ranked = core.Ranked
	// Labels is a class's ground-truth relation, usable to generate
	// training examples.
	Labels = eval.Labels
)

// InvalidNode marks "no such node".
const InvalidNode = graph.InvalidNode

// InvalidType marks "no such object type".
const InvalidType = graph.InvalidType

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// ReadGraph parses the text graph format (see WriteGraph).
var ReadGraph = graph.Read

// WriteGraph serializes a graph in a line-oriented text format.
var WriteGraph = graph.Write

// MakeExamples samples training triplets from a labeled relation: q from
// train queries, x relevant to q, y a non-relevant candidate.
var MakeExamples = eval.MakeExamples
