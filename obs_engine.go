// Engine observability: the update hot path records into the obs
// default registry (every engine in the process folds into one series —
// a real daemon runs one engine; in-process test stacks share the
// family, which only fattens the histograms). Per-instance gauges (the
// serving epoch) are registered by the tier that owns the instance —
// internal/server wires a GaugeFunc over its engine's Stats.
package semprox

import "repro/internal/obs"

var (
	engApply = obs.Default().Histogram("semprox_engine_apply_seconds",
		"ApplyUpdate latency: validate, patch, and publish one new serving epoch.", obs.Seconds)
	engRematched = obs.Default().Histogram("semprox_engine_rematched_metagraphs",
		"Matched metagraphs incrementally re-matched per update — the delta-bounded work the paper's offline rebuild would redo in full.", obs.Units)
	engCompactions = obs.Default().Counter("semprox_engine_compactions_total",
		"Background compactions that folded update overlays into flat storage.")
)
