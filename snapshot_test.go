package semprox

import (
	"bytes"
	"testing"

	"repro/internal/fixtures"
)

// saveLoad round-trips an engine through the snapshot format.
func saveLoad(t *testing.T, eng *Engine) *Engine {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestSnapshotRoundTrip is the acceptance property: a saved+loaded engine
// answers queries identically (nodes AND bit-for-bit scores) to the
// in-memory engine that wrote the snapshot.
func TestSnapshotRoundTrip(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	loaded := saveLoad(t, eng)

	if loaded.NumMetagraphs() != eng.NumMetagraphs() {
		t.Fatalf("metagraphs: %d, want %d", loaded.NumMetagraphs(), eng.NumMetagraphs())
	}
	if loaded.MatchedCount() != eng.MatchedCount() {
		t.Fatalf("matched: %d, want %d", loaded.MatchedCount(), eng.MatchedCount())
	}
	if got := loaded.Classes(); len(got) != 1 || got[0] != "classmate" {
		t.Fatalf("classes = %v", got)
	}
	wantW, gotW := eng.Weights("classmate"), loaded.Weights("classmate")
	if len(wantW) != len(gotW) {
		t.Fatalf("weights: %d, want %d", len(gotW), len(wantW))
	}
	for i := range wantW {
		if wantW[i] != gotW[i] {
			t.Fatalf("weight[%d] = %v, want %v", i, gotW[i], wantW[i])
		}
	}
	for _, name := range []string{"Kate", "Bob", "Alice", "Jay", "Tom"} {
		q := g.NodeByName(name)
		want, err := eng.Query("classmate", q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Query("classmate", q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %s: %d results, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %s: result[%d] = %+v, want %+v", name, i, got[i], want[i])
			}
		}
		p1, err1 := eng.Proximity("classmate", q, g.NodeByName("Jay"))
		p2, err2 := loaded.Proximity("classmate", q, g.NodeByName("Jay"))
		if err1 != nil || err2 != nil || p1 != p2 {
			t.Fatalf("proximity %s: %v/%v vs %v/%v", name, p1, err1, p2, err2)
		}
	}
}

// TestSnapshotDeterministicBytes pins that saving the same engine twice —
// and saving a loaded engine — produces identical bytes, so snapshots can
// be content-addressed and diffed.
func TestSnapshotDeterministicBytes(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	var a, b bytes.Buffer
	if err := eng.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same engine differ")
	}
	loaded, err := LoadEngine(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := loaded.Save(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("save→load→save drifted")
	}
}

// TestSnapshotDualStageResumesTraining saves a dual-stage engine (a strict
// subset of metagraphs matched), reloads it, and trains a NEW class on the
// loaded engine: the restored matching cache must be picked up instead of
// re-matched, and the new class must answer queries.
func TestSnapshotDualStageResumesTraining(t *testing.T) {
	eng, g := toyEngine(t)
	eng.TrainDualStage("classmate", classmateExamples(g), 2)
	matched := eng.MatchedCount()
	if matched == 0 || matched >= eng.NumMetagraphs() {
		t.Fatalf("dual stage matched %d of %d; need a strict subset", matched, eng.NumMetagraphs())
	}
	loaded := saveLoad(t, eng)
	if loaded.MatchedCount() != matched {
		t.Fatalf("loaded matched %d, want %d", loaded.MatchedCount(), matched)
	}
	loaded.Train("family", []Example{
		{Q: g.NodeByName("Alice"), X: g.NodeByName("Bob"), Y: g.NodeByName("Tom")},
	})
	if loaded.MatchedCount() != loaded.NumMetagraphs() {
		t.Fatal("full training on the loaded engine should match everything")
	}
	if _, err := loaded.Query("family", g.NodeByName("Alice"), 5); err != nil {
		t.Fatal(err)
	}
	// The original class still answers identically after the new training.
	want, _ := eng.Query("classmate", g.NodeByName("Kate"), 10)
	got, err := loaded.Query("classmate", g.NodeByName("Kate"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("post-train query drifted: %d vs %d results", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-train result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSnapshotUntrainedEngine round-trips an engine with no trained
// classes and no matched metagraphs (mining output only).
func TestSnapshotUntrainedEngine(t *testing.T) {
	eng, g := toyEngine(t)
	loaded := saveLoad(t, eng)
	if loaded.NumMetagraphs() != eng.NumMetagraphs() || loaded.MatchedCount() != 0 {
		t.Fatalf("untrained round trip: %d metagraphs, %d matched",
			loaded.NumMetagraphs(), loaded.MatchedCount())
	}
	loaded.Train("classmate", classmateExamples(g))
	if _, err := loaded.Query("classmate", g.NodeByName("Kate"), 5); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRejectsCorruptInput exercises the load-time validation.
func TestSnapshotRejectsCorruptInput(t *testing.T) {
	if _, err := LoadEngine(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	eng := func() *Engine {
		g := fixtures.Toy()
		e, err := NewEngine(g, "user", DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}()
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// fullSnapshot saves a trained, updated engine — the richest wire shape
// (graph, epoch, LSN, matched parts, classes) — for the corruption tests.
func fullSnapshot(t *testing.T) []byte {
	t.Helper()
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	if _, err := eng.ApplyUpdate(Delta{
		Nodes: []DeltaNode{{Type: "user", Value: "Zoe"}},
		Edges: []Edge{{U: NodeID(g.NumNodes()), V: g.NodeByName("College A")}},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotEveryPrefixTruncationErrors: a crash mid-save (the reason
// semproxd stages snapshots through a temp file) leaves a prefix; loading
// any strict prefix must return an error, never succeed and never panic.
func TestSnapshotEveryPrefixTruncationErrors(t *testing.T) {
	data := fullSnapshot(t)
	for i := 0; i < len(data); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadEngine panicked on %d-byte prefix of %d: %v", i, len(data), r)
				}
			}()
			if _, err := LoadEngine(bytes.NewReader(data[:i])); err == nil {
				t.Fatalf("prefix of %d/%d bytes loaded without error", i, len(data))
			}
		}()
	}
}

// TestSnapshotBitFlipsNeverPanic flips bits across the snapshot: loads
// may fail (almost all do) or — when the flip lands in a don't-care byte
// — succeed, but must never panic. This is the contract that lets
// semproxd load operator-provided files straight off disk.
func TestSnapshotBitFlipsNeverPanic(t *testing.T) {
	data := fullSnapshot(t)
	stride := len(data)/4096 + 1
	for pos := 0; pos < len(data); pos += stride {
		for _, mask := range []byte{0x01, 0x80} {
			mutated := append([]byte(nil), data...)
			mutated[pos] ^= mask
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("LoadEngine panicked on bit flip at %d (mask %#x): %v", pos, mask, r)
					}
				}()
				eng, err := LoadEngine(bytes.NewReader(mutated))
				if err != nil || eng == nil {
					return
				}
				// A flip that still loads must yield a usable engine:
				// probing the core read paths must not panic either.
				_ = eng.Stats()
				for _, class := range eng.Classes() {
					_, _ = eng.Query(class, 0, 3)
				}
			}()
		}
	}
}
