// Command semproxlint runs the repo's project-specific analyzers
// (internal/lint) — the machine checks behind the conventions DESIGN.md
// used to state as prose: rawpath, atomicwrite, metricname, envelope,
// ctxfirst, sleepwait.
//
// Two modes, one binary:
//
//	semproxlint ./...                      # driver mode (what make lint runs)
//	go vet -vettool=$(command -v semproxlint) ./...
//
// Driver mode re-executes itself through `go vet -vettool`, which hands
// each package's syntax and type information to the unitchecker
// protocol — the same way staticcheck and vet run, with no extra
// package-loading machinery. Any argument that looks like a flag or a
// unitchecker *.cfg file selects vet-tool mode, so the one binary serves
// both invocations.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && isPackagePatterns(args) {
		os.Exit(drive(args))
	}
	// Vet-tool protocol: cmd/go invokes the tool with -V=full, -flags,
	// and per-package *.cfg files. unitchecker never returns.
	unitchecker.Main(lint.Analyzers()...)
}

// isPackagePatterns reports whether every argument reads as a package
// pattern ("./...", "repro/client"), i.e. none is a flag or a
// unitchecker config file.
func isPackagePatterns(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return false
		}
	}
	return true
}

// drive re-executes this binary under `go vet -vettool`, which performs
// the package loading, caching, and diagnostic rendering. The exit code
// is vet's: non-zero when any analyzer reports.
func drive(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "semproxlint: cannot locate own executable: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "semproxlint: %v\n", err)
		return 2
	}
	return 0
}
