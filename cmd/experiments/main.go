// Command experiments regenerates the tables and figures of the paper's
// evaluation (Sect. V) on the synthetic datasets and prints them in paper
// order. Each experiment reports the same rows/series as its counterpart;
// see EXPERIMENTS.md for the shape comparison against the published
// numbers.
//
// Usage:
//
//	experiments [-exp all|table2|fig4|fig6|fig7|table3|fig8|fig9|fig10|fig11]
//	            [-linkedin-users N] [-facebook-users N] [-splits N]
//	            [-train-examples N] [-max-nodes N] [-min-support N] [-seed N]
//	            [-workers N]
//
// The defaults complete in a few minutes on one core; raise the user
// counts to approach the paper's dataset sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, table2, fig4, fig6, fig7, table3, fig8, fig9, fig10, fig11")
		liUsers  = flag.Int("linkedin-users", 0, "LinkedIn-like user count (0 = default)")
		fbUsers  = flag.Int("facebook-users", 0, "Facebook-like user count (0 = default)")
		splits   = flag.Int("splits", 0, "train/test splits to average over (0 = default; paper uses 10)")
		trainEx  = flag.Int("train-examples", 0, "training examples for single-model experiments (0 = default; paper uses 1000)")
		maxNodes = flag.Int("max-nodes", 0, "metagraph size cap (0 = default; paper uses 5)")
		minSup   = flag.Int("min-support", 0, "MNI support threshold (0 = default)")
		seed     = flag.Int64("seed", 0, "base random seed (0 = default)")
		workers  = flag.Int("workers", 0, "offline matching workers (0 = one per CPU; learned results are identical for every count, only timings change)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *liUsers > 0 {
		cfg.LinkedInUsers = *liUsers
	}
	if *fbUsers > 0 {
		cfg.FacebookUsers = *fbUsers
	}
	if *splits > 0 {
		cfg.Splits = *splits
	}
	if *trainEx > 0 {
		cfg.TrainExamples = *trainEx
	}
	if *maxNodes > 0 {
		cfg.Mining.MaxNodes = *maxNodes
	}
	if *minSup > 0 {
		cfg.Mining.MinSupport = *minSup
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	s := experiments.NewSuite(cfg)
	run := func(name string, fn func() experiments.Report) {
		start := time.Now()
		rep := fn()
		fmt.Println(rep.String())
		fmt.Printf("(generated in %.1fs)\n\n", time.Since(start).Seconds())
	}

	all := map[string]func() experiments.Report{
		"table2": s.Table2,
		"fig4":   s.Fig4,
		"fig6":   s.Fig6,
		"fig7":   s.Fig7,
		"table3": s.Table3,
		"fig8":   s.Fig8,
		"fig9":   s.Fig9,
		"fig10":  s.Fig10,
		"fig11":  s.Fig11,
	}
	order := []string{"table2", "fig4", "fig6", "fig7", "table3", "fig8", "fig9", "fig10", "fig11"}

	switch *exp {
	case "all":
		for _, name := range order {
			run(name, all[name])
		}
	default:
		fn, ok := all[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			flag.Usage()
			os.Exit(2)
		}
		run(*exp, fn)
	}
}
