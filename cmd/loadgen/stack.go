package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"time"

	semprox "repro"
	"repro/client"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// target is the serving stack a suite fires at: a replica-aware Router
// over one primary and N followers, plus the name space queries draw from.
type target struct {
	router *client.Router
	names  []string // query-able anchor (user) node names
	class  string
	desc   string // for the report's "target" field
	close  func()
	// metricsURLs are the /metrics bases of the tier the router actually
	// talks to (backends directly, or the edge proxy alone): summing
	// semprox_http_requests_total over them before and after a measured
	// leg cross-checks client-observed sends against server-observed
	// serves. Empty disables the cross-check.
	metricsURLs []string
	hc          *http.Client // scrape client (nil: http.DefaultClient)
}

// loadClient builds the shared HTTP client for load generation: the
// default transport keeps only 2 idle conns per host, which at load rates
// turns every request into a fresh TCP handshake (and eventually port
// exhaustion); the pool here is sized for the open-loop burst depth.
func loadClient() *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 512,
		IdleConnTimeout:     90 * time.Second,
	}
	return &http.Client{Transport: tr, Timeout: client.DefaultTimeout}
}

// backends is the raw self-hosted serving stack before any routing tier
// is chosen: the primary and follower base URLs, the query name space,
// and the shared HTTP client. selfHost fronts it with a client.Router
// directly; -mode proxy fronts it with a real internal/proxy edge tier.
type backends struct {
	primaryURL   string
	followerURLs []string
	names        []string
	hc           *http.Client
	close        func()
}

// buildBackends stands up the real serving stack in-process: a trained
// engine behind a durable primary (WAL in a temp dir) plus def.Followers
// real followers bootstrapped and streaming over loopback HTTP — the
// same wiring semproxd -wal / -follow runs. wrapFollower, when non-nil,
// wraps each follower's HTTP handler (the proxy bench injects tail
// latency into one follower this way); it sees the follower index and
// must return a handler that still serves the wrapped one.
func buildBackends(ctx context.Context, def Defaults, wrapFollower func(i int, h http.Handler) http.Handler) (*backends, error) {
	ds := dataset.LinkedIn(dataset.Config{Users: def.Users, Seed: def.Seed, NoiseRate: 0.05})
	labels, ok := ds.Classes[def.Class]
	if !ok {
		return nil, fmt.Errorf("dataset has no class %q (have %v)", def.Class, ds.ClassNames())
	}
	opts := semprox.DefaultOptions()
	// Load generation measures the serving path, not model quality or
	// mining richness: MaxNodes 3 keeps the metagraph set small so an
	// update's incremental re-match costs single-digit milliseconds per
	// engine (at MaxNodes 4 it is ~100ms, and on a small CI box every
	// mixed-workload scenario just measures the re-matcher). A short
	// training run keeps stack setup in seconds.
	opts.Mining = mining.Options{MaxNodes: 3, MinSupport: 5}
	opts.Train.Restarts = 1
	opts.Train.MaxIters = 60
	eng, err := semprox.NewEngine(ds.G, "user", opts)
	if err != nil {
		return nil, err
	}
	eng.Train(def.Class, semprox.MakeExamples(labels, labels.Queries(), ds.Users(), 100, def.Seed))

	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	fail := func(err error) (*backends, error) {
		cleanup()
		return nil, err
	}

	dir, err := os.MkdirTemp("", "loadgen-wal-*")
	if err != nil {
		return nil, err
	}
	cleanups = append(cleanups, func() { os.RemoveAll(dir) })
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return fail(err)
	}
	cleanups = append(cleanups, func() { w.Close() })

	srv := server.New(eng)
	srv.AttachWAL(w)
	pts := httptest.NewServer(srv)
	cleanups = append(cleanups, pts.Close)

	runCtx, stopRun := context.WithCancel(ctx)
	cleanups = append(cleanups, stopRun)

	hc := loadClient()
	var urls []string
	var followers []*replica.Follower
	for i := 0; i < def.Followers; i++ {
		f := replica.NewFollower(pts.URL, hc)
		f.PollWait = 200 * time.Millisecond
		f.Backoff = 20 * time.Millisecond
		if err := f.Bootstrap(ctx); err != nil {
			return fail(fmt.Errorf("bootstrap follower %d: %w", i, err))
		}
		go f.Run(runCtx) //nolint:errcheck // ends with ctx
		fsrv := server.New(f.Engine())
		fsrv.SetFollower(f)
		var h http.Handler = fsrv
		if wrapFollower != nil {
			h = wrapFollower(i, fsrv)
		}
		fts := httptest.NewServer(h)
		cleanups = append(cleanups, fts.Close)
		followers = append(followers, f)
		urls = append(urls, fts.URL)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		ready := 0
		for _, f := range followers {
			if f.Status().Ready {
				ready++
			}
		}
		if ready == len(followers) {
			break
		}
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("followers never became ready (%d/%d)", ready, len(followers)))
		}
		time.Sleep(10 * time.Millisecond)
	}

	names := userNames(eng)
	if len(names) == 0 {
		return fail(fmt.Errorf("no user nodes to query"))
	}
	return &backends{
		primaryURL:   pts.URL,
		followerURLs: urls,
		names:        names,
		hc:           hc,
		close:        cleanup,
	}, nil
}

// probeRouter fronts the backends with a replica-aware Router, waits for
// every follower to enter rotation, and starts the probe loop (which
// ends with ctx).
func probeRouter(ctx context.Context, b *backends) (*client.Router, error) {
	router := client.NewRouter(b.primaryURL, b.followerURLs, b.hc)
	deadline := time.Now().Add(30 * time.Second)
	for router.Probe(ctx) < len(b.followerURLs) {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("only %d/%d followers entered rotation", router.Probe(ctx), len(b.followerURLs))
		}
		time.Sleep(10 * time.Millisecond)
	}
	go router.Run(ctx) //nolint:errcheck // ends with ctx
	return router, nil
}

// selfHost is the default target: the self-hosted stack reached directly
// through the replica-aware client.Router, no edge tier in between.
func selfHost(ctx context.Context, def Defaults) (*target, error) {
	b, err := buildBackends(ctx, def, nil)
	if err != nil {
		return nil, err
	}
	runCtx, stopRun := context.WithCancel(ctx)
	router, err := probeRouter(runCtx, b)
	if err != nil {
		stopRun()
		b.close()
		return nil, err
	}
	return &target{
		router:      router,
		names:       b.names,
		class:       def.Class,
		desc:        fmt.Sprintf("self-hosted loopback stack: durable primary + %d followers, %d users", def.Followers, def.Users),
		metricsURLs: append([]string{b.primaryURL}, b.followerURLs...),
		hc:          b.hc,
		close: func() {
			stopRun()
			b.close()
		},
	}, nil
}

// userNames lists the anchor node names of the engine's graph, sorted for
// deterministic draw order.
func userNames(eng *semprox.Engine) []string {
	g := eng.Graph()
	var names []string
	for _, q := range g.NodesOfType(g.Types().ID("user")) {
		names = append(names, g.Name(q))
	}
	sort.Strings(names)
	return names
}

// external targets an already-running stack (scripts/load_smoke.sh starts
// real semproxd processes). The primary must serve the configured class;
// query names assume the built-in datasets' user-N naming with def.Users
// users.
func external(ctx context.Context, primaryURL, followersCSV string, def Defaults) (*target, error) {
	var followerURLs []string
	for _, u := range strings.Split(followersCSV, ",") {
		if u = strings.TrimSpace(u); u != "" {
			followerURLs = append(followerURLs, u)
		}
	}
	hc := loadClient()
	router := client.NewRouter(primaryURL, followerURLs, hc)

	classes, err := router.Primary().Classes(ctx)
	if err != nil {
		return nil, fmt.Errorf("primary %s unreachable: %w", primaryURL, err)
	}
	found := false
	for _, c := range classes {
		found = found || c == def.Class
	}
	if !found {
		return nil, fmt.Errorf("primary %s has no class %q (have %v)", primaryURL, def.Class, classes)
	}

	runCtx, stopRun := context.WithCancel(ctx)
	deadline := time.Now().Add(30 * time.Second)
	for router.Probe(ctx) < len(followerURLs) {
		if time.Now().After(deadline) {
			stopRun()
			return nil, fmt.Errorf("only %d/%d followers entered rotation", router.Probe(ctx), len(followerURLs))
		}
		time.Sleep(100 * time.Millisecond)
	}
	go router.Run(runCtx) //nolint:errcheck // ends with ctx

	names := make([]string, def.Users)
	for i := range names {
		names[i] = fmt.Sprintf("user-%d", i)
	}
	return &target{
		router:      router,
		names:       names,
		class:       def.Class,
		desc:        fmt.Sprintf("external stack: primary %s + %d followers", primaryURL, len(followerURLs)),
		metricsURLs: append([]string{primaryURL}, followerURLs...),
		hc:          hc,
		close:       stopRun,
	}, nil
}
