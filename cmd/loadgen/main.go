// Command loadgen is the open-loop load harness behind BENCH_load.json —
// the latency-percentile half of the perf trajectory, where cmd/bench's
// closed-loop best-of-reps numbers are structurally blind: queueing,
// tail latency, and coordinated omission.
//
// It stands up the real serving stack (a durable primary plus streaming
// followers, reached through the public client.Router — or an external
// stack via -primary/-followers), then fires Poisson-arrival request
// streams at configured rates. Arrivals are OPEN LOOP: the generator
// never waits for a response before sending the next request, and every
// request's latency clock starts at its scheduled arrival time, so a
// server stall is charged with the queueing delay of everything scheduled
// behind it instead of quietly thinning the sample. Scenarios (request
// mixes, swept rates, SLOs) are declared in loadgen.toml; the sweep finds
// the max sustainable QPS under each scenario's p99 SLO.
//
// Modes:
//
//	loadgen                          # full sweep, rewrites BENCH_load.json
//	loadgen -mode smoke -out -       # short deterministic run, no files touched,
//	                                 # fails on any error / inconsistent percentiles
//	loadgen -mode gate  -out -       # short run at each scenario's gate rate,
//	                                 # compared against the committed BENCH_load.json:
//	                                 # fresh p99 > base p99 * gate-mult + gate-slack
//	                                 # fails the gate (and CI)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/report"
)

const (
	modeFull  = "full"
	modeSmoke = "smoke"
	modeGate  = "gate"
	modeProxy = "proxy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "loadgen.toml", "scenario suite config")
		mode       = flag.String("mode", modeFull, "full (sweep every rate), smoke (gate rate, consistency checks), gate (gate rate, p99 regression check vs -baseline), or proxy (edge-tier hedge/cache A/B, writes BENCH_proxy.json)")
		out        = flag.String("out", "", "report output path ('-' for stdout only; default BENCH_load.json in full mode, '-' otherwise)")
		baseline   = flag.String("baseline", "BENCH_load.json", "committed baseline the gate compares against")
		gateMult   = flag.Float64("gate-mult", 3, "gate tolerance: fresh p99 may be up to this multiple of the baseline p99...")
		gateSlack  = flag.Duration("gate-slack", 25*time.Millisecond, "...plus this absolute slack (absorbs timer noise on near-zero baselines)")
		window     = flag.Duration("duration", 0, "override the per-rate measurement window (0 = config duration in full mode, mode default otherwise)")
		primaryURL = flag.String("primary", "", "fire at this external primary instead of self-hosting the stack")
		followers  = flag.String("followers", "", "comma-separated external follower base URLs (with -primary)")
		users      = flag.Int("users", 0, "override defaults.users (dataset size / external user-N name space)")
		seed       = flag.Int64("seed", 0, "override defaults.seed for the Poisson schedules")
	)
	flag.Parse()

	cfg, err := LoadConfig(*configPath)
	if err != nil {
		return err
	}
	if *users > 0 {
		cfg.Defaults.Users = *users
	}
	if *seed != 0 {
		cfg.Defaults.Seed = *seed
	}
	switch *mode {
	case modeFull, modeSmoke, modeGate, modeProxy:
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if *out == "" {
		*out = report.Stdout
		switch *mode {
		case modeFull:
			*out = "BENCH_load.json"
		case modeProxy:
			*out = "BENCH_proxy.json"
		}
	}
	w := *window
	if w == 0 {
		switch *mode {
		case modeSmoke:
			w = 600 * time.Millisecond
		case modeGate:
			w = time.Second
		default:
			w = cfg.Defaults.Duration
		}
	}

	// In gate mode the baseline must load before the expensive part runs.
	var base *Report
	if *mode == modeGate {
		base = &Report{}
		if err := report.Load(*baseline, base); err != nil {
			return fmt.Errorf("gate: %w", err)
		}
		if len(base.Scenarios) == 0 {
			return fmt.Errorf("gate: baseline %s has no scenarios", *baseline)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Proxy mode runs its own A/B harness over its own proxy-fronted
	// targets and writes the edge-tier report.
	if *mode == modeProxy {
		return runProxyBench(ctx, cfg, *configPath, w, *out)
	}

	start := time.Now()
	var tgt *target
	if *primaryURL != "" {
		tgt, err = external(ctx, *primaryURL, *followers, cfg.Defaults)
	} else {
		tgt, err = selfHost(ctx, cfg.Defaults)
	}
	if err != nil {
		return err
	}
	defer tgt.close()
	fmt.Printf("target up in %.1fs: %s\n", time.Since(start).Seconds(), tgt.desc)

	rep := &Report{
		Benchmark:  "open_loop_load",
		Mode:       *mode,
		Config:     *configPath,
		Target:     tgt.desc,
		Arrivals:   fmt.Sprintf("poisson open-loop (seed %d), send-scheduled latency", cfg.Defaults.Seed),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC(),
	}
	for i := range cfg.Scenarios {
		res, err := runScenario(ctx, tgt, &cfg.Scenarios[i], cfg.Defaults, *mode, w)
		if err != nil {
			return err
		}
		rep.Scenarios = append(rep.Scenarios, res)
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}

	if err := report.EmitJSON(*out, rep); err != nil {
		return err
	}
	switch *mode {
	case modeSmoke:
		if err := checkSmoke(rep); err != nil {
			return err
		}
		fmt.Println("smoke OK: every scenario completed error-free with consistent percentiles")
	case modeGate:
		checks, err := compareGate(base, rep, *gateMult, *gateSlack)
		if err != nil {
			return err
		}
		failed := 0
		for _, c := range checks {
			verdict := "ok"
			if !c.OK {
				verdict = "REGRESSION"
				failed++
			}
			fmt.Printf("gate    %-12s rate=%-5d base_p99=%7.2fms fresh_p99=%7.2fms limit=%7.2fms %s\n",
				c.Scenario, c.RateQPS, c.BaseP99Ms, c.FreshP99Ms, c.LimitMs, verdict)
		}
		if failed > 0 {
			return fmt.Errorf("gate: %d/%d scenarios regressed past p99 tolerance (x%g + %v) vs %s",
				failed, len(checks), *gateMult, *gateSlack, *baseline)
		}
		fmt.Printf("gate OK: %d scenarios within p99 tolerance (x%g + %v) of %s\n",
			len(checks), *gateMult, *gateSlack, *baseline)
	default:
		for _, sc := range rep.Scenarios {
			fmt.Printf("load    %-12s max sustainable %d req/s under p99 <= %.0fms\n",
				sc.Name, sc.MaxSustainableQPS, sc.SLOP99Ms)
		}
	}
	return nil
}
