package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/proxy"
	"repro/internal/report"
)

// -mode proxy proves the edge tier's two perf claims with the same
// open-loop machinery that produces BENCH_load.json, writing the result
// to BENCH_proxy.json:
//
//   - Hedged reads cut the tail: one follower gets intermittent injected
//     latency (a straggler, not a uniformly slow box — a uniformly slow
//     backend would raise its own p95 budget and correctly never hedge),
//     and the same read scenario runs at its gate rate through an
//     unhedged proxy and a hedged one. The p99 cut and the hedge rate
//     (which must stay under the cap) are reported.
//   - The epoch-keyed cache raises the knee: a Zipf-hot read scenario
//     sweeps its rates through a cache-off proxy and a cache-on one; the
//     max sustainable QPS ratio is the headline.
//
// Both legs of each A/B go through a real internal/proxy instance over
// the same backends, so the comparison isolates exactly the feature
// under test rather than proxy-vs-no-proxy overhead.

// ProxyReport is the BENCH_proxy.json shape.
type ProxyReport struct {
	Benchmark  string      `json:"benchmark"` // "edge_proxy"
	Config     string      `json:"config"`
	Target     string      `json:"target"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Timestamp  time.Time   `json:"timestamp"`
	Hedge      HedgeResult `json:"hedge"`
	Cache      CacheResult `json:"cache"`
}

// HedgeResult is the injected-straggler tail A/B.
type HedgeResult struct {
	Scenario       string         `json:"scenario"`
	RateQPS        int            `json:"rate_qps"`
	InjectedSlow   string         `json:"injected_slow"`
	InjectedStalls uint64         `json:"injected_stalls"`
	CapPct         int            `json:"cap_pct"`
	Unhedged       RateRow        `json:"unhedged"`
	Hedged         RateRow        `json:"hedged"`
	P99CutPct      float64        `json:"p99_cut_pct"`
	HedgeRatePct   float64        `json:"hedge_rate_pct"`
	Counters       api.ProxyStats `json:"counters"` // hedged leg's proxy
}

// CacheResult is the Zipf-hot cache-off/cache-on sweep A/B.
type CacheResult struct {
	Scenario   string         `json:"scenario"`
	Entries    int            `json:"entries"`
	Uncached   ScenarioResult `json:"uncached"`
	Cached     ScenarioResult `json:"cached"`
	SpeedupX   float64        `json:"speedup_x"` // cached / uncached max sustainable QPS
	HitRatePct float64        `json:"hit_rate_pct"`
	Counters   api.ProxyStats `json:"counters"` // cached leg's proxy
}

// slowInjector adds delay to 1-in-every query/proximity requests through
// the wrapped handler while enabled — an intermittent straggler.
// Readiness probes and replication are never delayed (the follower must
// stay caught up and in rotation; only its reads straggle).
type slowInjector struct {
	every  uint64
	delay  time.Duration
	on     atomic.Bool
	n      atomic.Uint64
	stalls atomic.Uint64
}

func (s *slowInjector) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := api.CanonicalPath(r.URL.Path)
		isRead := p == api.PathQuery || p == api.PathProximity
		if s.on.Load() && isRead && s.n.Add(1)%s.every == 0 {
			s.stalls.Add(1)
			select {
			case <-time.After(s.delay):
			case <-r.Context().Done():
				return // the hedge winner cancelled this attempt
			}
		}
		h.ServeHTTP(w, r)
	})
}

// proxyTarget fronts the backends with a real internal/proxy edge tier
// and returns a target whose router points at the proxy alone — every
// operation (reads AND updates) flows through the edge tier, exactly how
// a non-Go caller would reach the stack.
func proxyTarget(ctx context.Context, b *backends, def Defaults, opts proxy.Options) (*target, *proxy.Proxy, error) {
	runCtx, stopRun := context.WithCancel(ctx)
	backRouter, err := probeRouter(runCtx, b)
	if err != nil {
		stopRun()
		return nil, nil, err
	}
	p := proxy.New(backRouter, opts)
	pts := httptest.NewServer(p)
	return &target{
		router: client.NewRouter(pts.URL, nil, b.hc),
		names:  b.names,
		class:  def.Class,
		desc:   fmt.Sprintf("edge proxy (cache=%d hedge=%v) over loopback primary + %d followers", opts.CacheEntries, opts.Hedge, len(b.followerURLs)),
		// The client fires at the proxy alone, so the cross-check scrapes
		// the proxy alone: hedges and backend failovers multiply requests
		// BEHIND the edge, never between the client and it.
		metricsURLs: []string{pts.URL},
		hc:          b.hc,
		close: func() {
			pts.Close()
			stopRun()
		},
	}, p, nil
}

// settle runs between A/B legs. Everything here shares one process (and
// usually one CI vCPU), and a leg that ends on its SLO-breaking rate
// leaves a saturated heap behind — without an explicit GC + pause, the
// NEXT leg pays that garbage off as p99 spikes and the A/B stops
// measuring the feature under test.
func settle() {
	debug.FreeOSMemory()
	time.Sleep(2 * time.Second)
}

// pickProxyScenarios selects the two workloads the proxy bench needs
// from the suite: a pure-read uniform scenario for the hedge A/B (a
// cacheable or mixed workload would blur what hedging did) and a
// pure-read Zipf scenario for the cache A/B (a cache's win IS the hot
// head). Selection is by shape, not name, and fails loudly.
func pickProxyScenarios(cfg *Config) (readSc, zipfSc *Scenario, err error) {
	pureRead := func(s *Scenario) bool {
		return s.Mix.Query > 0 && s.Mix.Update == 0 && s.Mix.Proximity == 0 && s.Mix.Batch == 0
	}
	for i := range cfg.Scenarios {
		s := &cfg.Scenarios[i]
		if !pureRead(s) {
			continue
		}
		if s.KeyDist == keyDistZipf && zipfSc == nil {
			zipfSc = s
		}
		if s.KeyDist == keyDistUniform && readSc == nil {
			readSc = s
		}
	}
	if readSc == nil {
		return nil, nil, fmt.Errorf("proxy bench needs a pure-read uniform scenario in the suite")
	}
	if zipfSc == nil {
		return nil, nil, fmt.Errorf(`proxy bench needs a pure-read key_dist = "zipf" scenario in the suite`)
	}
	return readSc, zipfSc, nil
}

// runProxyBench is -mode proxy.
func runProxyBench(ctx context.Context, cfg *Config, configPath string, window time.Duration, out string) error {
	readSc, zipfSc, err := pickProxyScenarios(cfg)
	if err != nil {
		return err
	}
	def := cfg.Defaults
	// 50x the suite's dataset: a cache hit costs the same however big the
	// graph is, but the backend's candidate scan does not — the uncached
	// knee must sit well below the rate the single-process harness itself
	// can dispatch, or the A/B measures the harness ceiling, not the
	// cache.
	def.Users *= 50

	// One follower becomes an intermittent straggler for the hedge A/B:
	// the proxy's per-backend p95 budget stays at the fast baseline, so
	// the injected stalls are exactly the reads a hedge should rescue.
	inj := &slowInjector{every: 20, delay: 40 * time.Millisecond}
	start := time.Now()
	b, err := buildBackends(ctx, def, func(i int, h http.Handler) http.Handler {
		if i == 0 {
			return inj.wrap(h)
		}
		return h
	})
	if err != nil {
		return err
	}
	defer b.close()
	fmt.Printf("target up in %.1fs: edge proxy over loopback primary + %d followers, %d users\n",
		time.Since(start).Seconds(), len(b.followerURLs), def.Users)

	rep := &ProxyReport{
		Benchmark:  "edge_proxy",
		Config:     configPath,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC(),
		Target:     fmt.Sprintf("internal/proxy edge tier over self-hosted loopback stack: durable primary + %d followers, %d users", def.Followers, def.Users),
	}

	// --- Hedge A/B: same scenario, same rate, straggler on; the only
	// difference between the legs is Options.Hedge. The cache is off in
	// BOTH legs so repeats of a hot anchor cannot absorb the stalls.
	inj.on.Store(true)
	hedgeLeg := func(hedge bool) (RateRow, api.ProxyStats, error) {
		tgt, p, err := proxyTarget(ctx, b, def, proxy.Options{CacheEntries: 0, Hedge: hedge, HTTPClient: b.hc})
		if err != nil {
			return RateRow{}, api.ProxyStats{}, err
		}
		res, err := runScenario(ctx, tgt, readSc, def, modeSmoke, window)
		if err != nil {
			tgt.close()
			return RateRow{}, api.ProxyStats{}, err
		}
		counters := p.Counters()
		tgt.close()
		settle()
		return res.Rates[0], counters, nil
	}
	fmt.Printf("proxy   hedge A/B: %q at %d req/s, straggler follower: +%v on 1-in-%d reads\n",
		readSc.Name, readSc.GateRate, inj.delay, inj.every)
	unhedged, _, err := hedgeLeg(false)
	if err != nil {
		return err
	}
	hedged, hc, err := hedgeLeg(true)
	if err != nil {
		return err
	}
	inj.on.Store(false)

	hr := HedgeResult{
		Scenario:       readSc.Name,
		RateQPS:        readSc.GateRate,
		InjectedSlow:   fmt.Sprintf("follower 0: +%v on 1-in-%d reads", inj.delay, inj.every),
		InjectedStalls: inj.stalls.Load(),
		CapPct:         proxy.DefaultHedgeCapPct,
		Unhedged:       unhedged,
		Hedged:         hedged,
		Counters:       hc,
	}
	if unhedged.Latency.P99Ms > 0 {
		hr.P99CutPct = 100 * (1 - hedged.Latency.P99Ms/unhedged.Latency.P99Ms)
	}
	if hc.Reads > 0 {
		hr.HedgeRatePct = 100 * float64(hc.HedgesIssued) / float64(hc.Reads)
	}
	rep.Hedge = hr
	fmt.Printf("proxy   hedge: p99 %.2fms -> %.2fms (cut %.1f%%), hedge rate %.1f%% (cap %d%%), %d stalls injected\n",
		unhedged.Latency.P99Ms, hedged.Latency.P99Ms, hr.P99CutPct, hr.HedgeRatePct, hr.CapPct, inj.stalls.Load())

	// --- Cache A/B: the Zipf-hot sweep, cache off vs on. Hedging is off
	// in both legs (no straggler is injected, so it would not fire — but
	// keeping it off makes the legs identical except for the cache).
	cacheLeg := func(entries int) (ScenarioResult, api.ProxyStats, error) {
		tgt, p, err := proxyTarget(ctx, b, def, proxy.Options{CacheEntries: entries, Hedge: false, HTTPClient: b.hc})
		if err != nil {
			return ScenarioResult{}, api.ProxyStats{}, err
		}
		res, err := runScenario(ctx, tgt, zipfSc, def, modeFull, window)
		if err != nil {
			tgt.close()
			return ScenarioResult{}, api.ProxyStats{}, err
		}
		counters := p.Counters()
		tgt.close()
		settle()
		return res, counters, nil
	}
	const cacheEntries = 4096
	fmt.Printf("proxy   cache A/B: %q (zipf s=%g) swept at %v\n", zipfSc.Name, zipfSc.ZipfS, zipfSc.Rates)
	uncached, _, err := cacheLeg(0)
	if err != nil {
		return err
	}
	cached, cc, err := cacheLeg(cacheEntries)
	if err != nil {
		return err
	}
	cr := CacheResult{
		Scenario: zipfSc.Name,
		Entries:  cacheEntries,
		Uncached: uncached,
		Cached:   cached,
		Counters: cc,
	}
	if uncached.MaxSustainableQPS > 0 {
		cr.SpeedupX = float64(cached.MaxSustainableQPS) / float64(uncached.MaxSustainableQPS)
	}
	if lookups := cc.CacheHits + cc.CacheMisses; lookups > 0 {
		cr.HitRatePct = 100 * float64(cc.CacheHits) / float64(lookups)
	}
	rep.Cache = cr
	fmt.Printf("proxy   cache: max sustainable %d -> %d req/s (%.1fx), hit rate %.1f%%\n",
		uncached.MaxSustainableQPS, cached.MaxSustainableQPS, cr.SpeedupX, cr.HitRatePct)

	return report.EmitJSON(out, rep)
}
