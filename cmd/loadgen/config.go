package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/api"
)

// The scenario suite is declared in a loadgen.toml in the style of
// golang/benchmarks' suites.toml: a [defaults] table plus one [[scenario]]
// table per workload. The repo is std-lib only, so config.go implements
// the small TOML subset the suite needs — tables, array-of-tables
// headers, and `key = value` lines where a value is a quoted string, an
// integer, a float, a bool, or a flat array of those — with unknown keys
// rejected loudly so a typo cannot silently run a default workload.

// Config is one parsed suite.
type Config struct {
	Defaults  Defaults
	Scenarios []Scenario
}

// Defaults configures the target stack and the measurement windows shared
// by every scenario.
type Defaults struct {
	Users     int           // self-hosted dataset size (and user-N name space)
	Class     string        // trained proximity class queries run against
	Followers int           // self-hosted follower count behind the router
	Duration  time.Duration // measured window per swept rate
	Warmup    time.Duration // discarded open-loop warmup before each window
	SLOP99    time.Duration // a rate is sustainable while p99 stays under this
	Seed      int64         // base seed for the Poisson schedules
}

// Scenario is one open-loop workload: a request mix fired at each swept
// arrival rate.
type Scenario struct {
	Name      string
	Rates     []int         // swept Poisson arrival rates, requests/s
	GateRate  int           // the single rate smoke and gate runs measure
	K         int           // top-k for query/batch operations
	BatchSize int           // queries per batch operation
	SLOP99    time.Duration // per-scenario SLO override (0 = defaults)
	KeyDist   string        // anchor popularity: "uniform" (default) or "zipf"
	ZipfS     float64       // Zipf exponent (> 1; defaults to 1.2 when key_dist = "zipf")
	Mix       Mix
}

// Anchor-popularity distributions. Uniform spreads queries evenly over
// the name space; zipf concentrates them on a hot head (rank-r anchors
// drawn with probability proportional to 1/r^s), the shape real
// entity-lookup traffic has and the one a response cache lives on.
const (
	keyDistUniform = "uniform"
	keyDistZipf    = "zipf"
)

// Mix is the operation mix as relative weights (normalized at draw time).
type Mix struct {
	Query     float64 // single routed /v1/query
	Update    float64 // routed /v1/update (pins to the primary)
	Proximity float64 // routed /v1/proximity pair score
	Batch     float64 // routed batched /v1/query of BatchSize names
}

func (m Mix) total() float64 { return m.Query + m.Update + m.Proximity + m.Batch }

// Map renders the mix for the report, dropping zero weights.
func (m Mix) Map() map[string]float64 {
	out := map[string]float64{}
	for k, w := range map[string]float64{
		"query": m.Query, "update": m.Update, "proximity": m.Proximity, "batch": m.Batch,
	} {
		if w > 0 {
			out[k] = w
		}
	}
	return out
}

// LoadConfig reads and validates a suite file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := parseConfig(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// parseConfig parses the suite text and applies defaulting + validation.
func parseConfig(text string) (*Config, error) {
	cfg := &Config{Defaults: Defaults{
		Users:     200,
		Class:     "college",
		Followers: 2,
		Duration:  3 * time.Second,
		Warmup:    300 * time.Millisecond,
		SLOP99:    50 * time.Millisecond,
		Seed:      1,
	}}
	section := "" // "", "defaults", or "scenario"
	var cur *Scenario

	for ln, raw := range strings.Split(text, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "[["):
			name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "[["), "]]"))
			if name != "scenario" || !strings.HasSuffix(line, "]]") {
				return nil, fail("unknown table array %q (only [[scenario]] exists)", line)
			}
			cfg.Scenarios = append(cfg.Scenarios, Scenario{})
			cur = &cfg.Scenarios[len(cfg.Scenarios)-1]
			section = "scenario"
		case strings.HasPrefix(line, "["):
			name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "["), "]"))
			if name != "defaults" || !strings.HasSuffix(line, "]") {
				return nil, fail("unknown table %q (only [defaults] exists)", line)
			}
			section = "defaults"
		default:
			key, val, err := parseKV(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			switch section {
			case "defaults":
				err = cfg.Defaults.set(key, val)
			case "scenario":
				err = cur.set(key, val)
			default:
				err = fmt.Errorf("key %q outside any table", key)
			}
			if err != nil {
				return nil, fail("%v", err)
			}
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// stripComment trims whitespace and removes a trailing # comment that is
// not inside a quoted string.
func stripComment(line string) string {
	inStr := false
	for i, r := range line {
		switch r {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return strings.TrimSpace(line[:i])
			}
		}
	}
	return strings.TrimSpace(line)
}

// parseKV splits `key = value` and parses the value.
func parseKV(line string) (string, any, error) {
	key, rest, ok := strings.Cut(line, "=")
	if !ok {
		return "", nil, fmt.Errorf("expected key = value, got %q", line)
	}
	key = strings.TrimSpace(key)
	val, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return "", nil, fmt.Errorf("key %q: %w", key, err)
	}
	return key, val, nil
}

// parseValue parses one scalar or flat array.
func parseValue(s string) (any, error) {
	switch {
	case s == "":
		return nil, fmt.Errorf("empty value")
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case strings.HasPrefix(s, `"`):
		if len(s) < 2 || !strings.HasSuffix(s, `"`) {
			return nil, fmt.Errorf("unterminated string %s", s)
		}
		body := s[1 : len(s)-1]
		if strings.Contains(body, `"`) {
			return nil, fmt.Errorf("escapes are not supported in %s", s)
		}
		return body, nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated array %s", s)
		}
		var out []any
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return out, nil
		}
		for _, el := range strings.Split(body, ",") {
			v, err := parseValue(strings.TrimSpace(el))
			if err != nil {
				return nil, err
			}
			if _, nested := v.([]any); nested {
				return nil, fmt.Errorf("nested arrays are not supported")
			}
			out = append(out, v)
		}
		return out, nil
	default:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return i, nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("unparsable value %q (strings must be quoted)", s)
	}
}

// Typed accessors: each converts or errors with the key name attached.

func asInt(key string, v any) (int, error) {
	i, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("%s: want an integer, got %T", key, v)
	}
	return int(i), nil
}

func asString(key string, v any) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%s: want a quoted string, got %T", key, v)
	}
	return s, nil
}

func asDuration(key string, v any) (time.Duration, error) {
	s, err := asString(key, v)
	if err != nil {
		return 0, err
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("%s: %q is not a non-negative duration", key, s)
	}
	return d, nil
}

func asWeight(key string, v any) (float64, error) {
	switch t := v.(type) {
	case int64:
		v = float64(t)
	case float64:
	default:
		return 0, fmt.Errorf("%s: want a number, got %T", key, v)
	}
	f := v.(float64)
	if f < 0 {
		return 0, fmt.Errorf("%s: weight must be non-negative", key)
	}
	return f, nil
}

func asIntSlice(key string, v any) ([]int, error) {
	arr, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("%s: want an array of integers, got %T", key, v)
	}
	out := make([]int, 0, len(arr))
	for _, el := range arr {
		i, ok := el.(int64)
		if !ok {
			return nil, fmt.Errorf("%s: want integers, got %T", key, el)
		}
		out = append(out, int(i))
	}
	return out, nil
}

func (d *Defaults) set(key string, v any) (err error) {
	switch key {
	case "users":
		d.Users, err = asInt(key, v)
	case "class":
		d.Class, err = asString(key, v)
	case "followers":
		d.Followers, err = asInt(key, v)
	case "duration":
		d.Duration, err = asDuration(key, v)
	case "warmup":
		d.Warmup, err = asDuration(key, v)
	case "slo_p99":
		d.SLOP99, err = asDuration(key, v)
	case "seed":
		var i int
		i, err = asInt(key, v)
		d.Seed = int64(i)
	default:
		err = fmt.Errorf("unknown [defaults] key %q", key)
	}
	return err
}

func (s *Scenario) set(key string, v any) (err error) {
	switch key {
	case "name":
		s.Name, err = asString(key, v)
	case "rates":
		s.Rates, err = asIntSlice(key, v)
	case "gate_rate":
		s.GateRate, err = asInt(key, v)
	case "k":
		s.K, err = asInt(key, v)
	case "batch_size":
		s.BatchSize, err = asInt(key, v)
	case "slo_p99":
		s.SLOP99, err = asDuration(key, v)
	case "key_dist":
		s.KeyDist, err = asString(key, v)
	case "zipf_s":
		s.ZipfS, err = asWeight(key, v)
	case "query":
		s.Mix.Query, err = asWeight(key, v)
	case "update":
		s.Mix.Update, err = asWeight(key, v)
	case "proximity":
		s.Mix.Proximity, err = asWeight(key, v)
	case "batch":
		s.Mix.Batch, err = asWeight(key, v)
	default:
		err = fmt.Errorf("unknown [[scenario]] key %q", key)
	}
	return err
}

// validate applies per-scenario defaulting and rejects suites that could
// not run or would lie (no rates, unreachable gate rate, empty mix).
func (c *Config) validate() error {
	d := &c.Defaults
	if d.Users < 10 {
		return fmt.Errorf("defaults.users = %d: need at least 10", d.Users)
	}
	if d.Followers < 0 || d.Class == "" || d.Duration <= 0 || d.SLOP99 <= 0 {
		return fmt.Errorf("defaults: followers/class/duration/slo_p99 must be set and positive")
	}
	if len(c.Scenarios) == 0 {
		return fmt.Errorf("no [[scenario]] tables")
	}
	seen := map[string]bool{}
	for i := range c.Scenarios {
		s := &c.Scenarios[i]
		if s.Name == "" {
			return fmt.Errorf("scenario %d: missing name", i+1)
		}
		if seen[s.Name] {
			return fmt.Errorf("scenario %q declared twice", s.Name)
		}
		seen[s.Name] = true
		if s.Mix.total() <= 0 {
			return fmt.Errorf("scenario %q: empty operation mix", s.Name)
		}
		if len(s.Rates) == 0 {
			return fmt.Errorf("scenario %q: no rates", s.Name)
		}
		sort.Ints(s.Rates)
		if s.Rates[0] < 1 {
			return fmt.Errorf("scenario %q: rates must be >= 1", s.Name)
		}
		if s.GateRate == 0 {
			s.GateRate = s.Rates[0]
		}
		if !containsInt(s.Rates, s.GateRate) {
			// The gate compares against the committed row at this rate, so
			// the full sweep must always measure it.
			s.Rates = append([]int{s.GateRate}, s.Rates...)
			sort.Ints(s.Rates)
		}
		if s.K == 0 {
			s.K = api.DefaultK
		}
		if s.K < 1 {
			return fmt.Errorf("scenario %q: k must be >= 1", s.Name)
		}
		if s.SLOP99 == 0 {
			s.SLOP99 = d.SLOP99
		}
		switch s.KeyDist {
		case "", keyDistUniform:
			s.KeyDist = keyDistUniform
			if s.ZipfS != 0 {
				return fmt.Errorf("scenario %q: zipf_s set but key_dist is uniform", s.Name)
			}
		case keyDistZipf:
			if s.ZipfS == 0 {
				s.ZipfS = 1.2
			}
			// math/rand's Zipf generator requires s > 1 (the tail must
			// converge); s = 1.0001 is effectively uniform-ish, s = 2 is
			// brutally hot-headed.
			if s.ZipfS <= 1 {
				return fmt.Errorf("scenario %q: zipf_s must be > 1, got %g", s.Name, s.ZipfS)
			}
		default:
			return fmt.Errorf("scenario %q: unknown key_dist %q (uniform or zipf)", s.Name, s.KeyDist)
		}
		if s.Mix.Batch > 0 {
			if s.BatchSize == 0 {
				s.BatchSize = 8
			}
			if s.BatchSize < 2 || s.BatchSize > api.MaxBatch {
				return fmt.Errorf("scenario %q: batch_size %d outside [2, %d]", s.Name, s.BatchSize, api.MaxBatch)
			}
		} else if s.BatchSize != 0 {
			return fmt.Errorf("scenario %q: batch_size set but the batch weight is zero", s.Name)
		}
	}
	return nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
