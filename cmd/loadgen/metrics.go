package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/api"
)

// opPaths are the canonical endpoints loadgen operations land on (batch
// queries POST to the query path); the server-side cross-check counts
// exactly these, so probe (readyz), stats-poll, and replication traffic
// never pollute the comparison.
var opPaths = []string{api.PathQuery, api.PathProximity, api.PathUpdate}

// scrapeOpsServed sums semprox_http_requests_total over the operation
// endpoints (all status classes) across every /metrics base of the tier
// the router fires at. Called before and after a measured leg; the delta
// is the server-observed request count the client-observed Sent must
// match in an error-free window.
func (t *target) scrapeOpsServed(ctx context.Context) (uint64, error) {
	hc := t.hc
	if hc == nil {
		hc = http.DefaultClient
	}
	var total uint64
	for _, base := range t.metricsURLs {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
		if err != nil {
			return 0, err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return 0, fmt.Errorf("scraping %s/metrics: %w", base, err)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return 0, fmt.Errorf("scraping %s/metrics: %w", base, err)
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("scraping %s/metrics: status %d", base, resp.StatusCode)
		}
		n, err := sumOpRequests(string(body))
		if err != nil {
			return 0, fmt.Errorf("scraping %s/metrics: %w", base, err)
		}
		total += n
	}
	return total, nil
}

// sumOpRequests totals the request-counter samples for the operation
// endpoints in one Prometheus text exposition.
func sumOpRequests(expo string) (uint64, error) {
	var total uint64
	for _, line := range strings.Split(expo, "\n") {
		if !strings.HasPrefix(line, "semprox_http_requests_total{") {
			continue
		}
		onOpPath := false
		for _, p := range opPaths {
			onOpPath = onOpPath || strings.Contains(line, `path="`+p+`"`)
		}
		if !onOpPath {
			continue
		}
		_, val, ok := strings.Cut(line, "} ")
		if !ok {
			return 0, fmt.Errorf("malformed sample %q", line)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("malformed sample %q: %w", line, err)
		}
		total += n
	}
	return total, nil
}
