package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseCommittedSuite(t *testing.T) {
	cfg, err := LoadConfig("../../loadgen.toml")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Scenarios) < 3 {
		t.Fatalf("committed suite has %d scenarios, the load trajectory needs >= 3", len(cfg.Scenarios))
	}
	if cfg.Defaults.Class == "" || cfg.Defaults.Users < 10 {
		t.Fatalf("bad defaults: %+v", cfg.Defaults)
	}
	for _, sc := range cfg.Scenarios {
		if sc.GateRate == 0 || !containsInt(sc.Rates, sc.GateRate) {
			t.Fatalf("scenario %q: gate rate %d not in sweep %v", sc.Name, sc.GateRate, sc.Rates)
		}
		if sc.SLOP99 <= 0 || sc.K < 1 || sc.Mix.total() <= 0 {
			t.Fatalf("scenario %q under-defaulted: %+v", sc.Name, sc)
		}
	}
}

func TestParseConfigFull(t *testing.T) {
	cfg, err := parseConfig(`
# comment
[defaults]
users = 50
class = "college"   # trailing comment
followers = 1
duration = "2s"
warmup = "100ms"
slo_p99 = "40ms"
seed = 9

[[scenario]]
name = "reads"
query = 1.0
rates = [300, 100, 200]
gate_rate = 150

[[scenario]]
name = "mix"
query = 3
update = 1
batch = 0.5
batch_size = 4
slo_p99 = "80ms"
k = 3
rates = [50]
`)
	if err != nil {
		t.Fatal(err)
	}
	d := cfg.Defaults
	if d.Users != 50 || d.Followers != 1 || d.Duration != 2*time.Second ||
		d.Warmup != 100*time.Millisecond || d.SLOP99 != 40*time.Millisecond || d.Seed != 9 {
		t.Fatalf("defaults drifted: %+v", d)
	}
	reads := cfg.Scenarios[0]
	if got := reads.Rates; len(got) != 4 || got[0] != 100 || got[1] != 150 || got[2] != 200 || got[3] != 300 {
		t.Fatalf("rates not sorted with the gate rate folded in: %v", got)
	}
	if reads.SLOP99 != 40*time.Millisecond || reads.K != 10 {
		t.Fatalf("reads under-defaulted: %+v", reads)
	}
	mix := cfg.Scenarios[1]
	if mix.GateRate != 50 || mix.SLOP99 != 80*time.Millisecond || mix.K != 3 || mix.BatchSize != 4 {
		t.Fatalf("mix scenario drifted: %+v", mix)
	}
	if w := mix.Mix.Map(); w["query"] != 3 || w["update"] != 1 || w["batch"] != 0.5 || len(w) != 3 {
		t.Fatalf("mix map drifted: %v", w)
	}
}

func TestParseConfigErrors(t *testing.T) {
	base := `
[defaults]
class = "college"
[[scenario]]
name = "ok"
query = 1.0
rates = [100]
`
	cases := map[string]string{
		"unknown defaults key":   "[defaults]\nbogus = 1\n" + base,
		"unknown scenario key":   base + "\nbogus = 1\n",
		"unknown table":          "[nope]\n" + base,
		"unknown table array":    "[[nope]]\n" + base,
		"key outside tables":     "users = 5\n" + base,
		"missing equals":         base + "\njust words\n",
		"unquoted string":        base + "\nname = unquoted\n",
		"unterminated string":    base + "\nname = \"open\n",
		"unterminated array":     base + "\nrates = [1, 2\n",
		"nested array":           base + "\nrates = [[1]]\n",
		"negative weight":        base + "\nquery = -1\n",
		"bad duration":           base + "\nslo_p99 = \"fast\"\n",
		"non-integer rate":       base + "\nrates = [1.5]\n",
		"duplicate name":         base + "\n[[scenario]]\nname = \"ok\"\nquery = 1.0\nrates = [1]\n",
		"no scenarios":           "[defaults]\nusers = 50\n",
		"empty mix":              "[defaults]\nusers = 50\n[[scenario]]\nname = \"x\"\nrates = [1]\n",
		"no rates":               "[defaults]\nusers = 50\n[[scenario]]\nname = \"x\"\nquery = 1.0\n",
		"zero rate":              base + "\n[[scenario]]\nname = \"z\"\nquery = 1.0\nrates = [0]\n",
		"tiny users":             "[defaults]\nusers = 2\n" + base,
		"batch size without mix": base + "\n[[scenario]]\nname = \"b\"\nquery = 1.0\nrates = [1]\nbatch_size = 4\n",
		"batch size too big":     base + "\n[[scenario]]\nname = \"b\"\nbatch = 1.0\nrates = [1]\nbatch_size = 100000\n",
		"unknown key_dist":       base + "\n[[scenario]]\nname = \"z\"\nquery = 1.0\nrates = [1]\nkey_dist = \"pareto\"\n",
		"zipf_s without zipf":    base + "\n[[scenario]]\nname = \"z\"\nquery = 1.0\nrates = [1]\nzipf_s = 1.5\n",
		"zipf_s too small":       base + "\n[[scenario]]\nname = \"z\"\nquery = 1.0\nrates = [1]\nkey_dist = \"zipf\"\nzipf_s = 1.0\n",
	}
	for name, text := range cases {
		if _, err := parseConfig(text); err == nil {
			t.Errorf("%s: config accepted:\n%s", name, text)
		}
	}
}

func TestParseConfigDefaultsBatchSizeAndGateRate(t *testing.T) {
	cfg, err := parseConfig(`
[defaults]
users = 50
[[scenario]]
name = "b"
batch = 1.0
rates = [20, 10]
`)
	if err != nil {
		t.Fatal(err)
	}
	sc := cfg.Scenarios[0]
	if sc.BatchSize != 8 {
		t.Fatalf("batch_size not defaulted: %d", sc.BatchSize)
	}
	if sc.GateRate != 10 {
		t.Fatalf("gate rate should default to the lowest swept rate, got %d", sc.GateRate)
	}
}

func TestParseConfigKeyDist(t *testing.T) {
	cfg, err := parseConfig(`
[defaults]
users = 50
[[scenario]]
name = "hot"
query = 1.0
rates = [100]
key_dist = "zipf"
[[scenario]]
name = "cold"
query = 1.0
rates = [100]
`)
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := cfg.Scenarios[0], cfg.Scenarios[1]
	if hot.KeyDist != keyDistZipf || hot.ZipfS != 1.2 {
		t.Fatalf("zipf scenario under-defaulted: %+v", hot)
	}
	if cold.KeyDist != keyDistUniform || cold.ZipfS != 0 {
		t.Fatalf("uniform scenario drifted: %+v", cold)
	}
}

func TestStripComment(t *testing.T) {
	for in, want := range map[string]string{
		`key = "a#b" # real comment`: `key = "a#b"`,
		"   # only comment":          "",
		"plain = 1":                  "plain = 1",
	} {
		if got := stripComment(in); got != want {
			t.Errorf("stripComment(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseValueScalars(t *testing.T) {
	for in, want := range map[string]any{
		"true":     true,
		"false":    false,
		"42":       int64(42),
		"-3":       int64(-3),
		"2.5":      2.5,
		`"text"`:   "text",
		`[1, 2]`:   []any{int64(1), int64(2)},
		`[]`:       []any(nil),
		`["a"]`:    []any{"a"},
		`[1, "a"]`: []any{int64(1), "a"},
	} {
		got, err := parseValue(in)
		if err != nil {
			t.Errorf("parseValue(%q): %v", in, err)
			continue
		}
		if !equalAny(got, want) {
			t.Errorf("parseValue(%q) = %#v, want %#v", in, got, want)
		}
	}
}

func equalAny(a, b any) bool {
	as, aok := a.([]any)
	bs, bok := b.([]any)
	if aok != bok {
		return false
	}
	if !aok {
		return a == b
	}
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestErrorsNameTheLine(t *testing.T) {
	_, err := parseConfig("[defaults]\nusers = 50\nbroken line\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("parse error does not name the line: %v", err)
	}
}
