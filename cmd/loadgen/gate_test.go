package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/loadstats"
)

func mkReport(name string, gateRate int, p99 float64, errs int) *Report {
	return &Report{
		Benchmark: "open_loop_load",
		Scenarios: []ScenarioResult{{
			Name:        name,
			GateRateQPS: gateRate,
			Rates: []RateRow{{
				RateQPS: gateRate,
				Sent:    100,
				Errors:  errs,
				Latency: loadstats.Summary{Count: uint64(100 - errs), P50Ms: p99 / 2, P99Ms: p99, P999Ms: p99, MaxMs: p99},
			}},
		}},
	}
}

func TestCompareGatePassAndFail(t *testing.T) {
	base := mkReport("reads", 100, 10, 0)

	checks, err := compareGate(base, mkReport("reads", 100, 29, 0), 3, 0)
	if err != nil || len(checks) != 1 || !checks[0].OK {
		t.Fatalf("fresh p99 under base*3 should pass: %+v, %v", checks, err)
	}

	checks, err = compareGate(base, mkReport("reads", 100, 31, 0), 3, 0)
	if err != nil || checks[0].OK {
		t.Fatalf("fresh p99 over base*3 should fail: %+v, %v", checks, err)
	}

	// The additive slack rescues near-zero baselines from demanding
	// sub-noise latency.
	tiny := mkReport("reads", 100, 0.01, 0)
	checks, err = compareGate(tiny, mkReport("reads", 100, 5, 0), 3, 25*time.Millisecond)
	if err != nil || !checks[0].OK {
		t.Fatalf("slack should absorb noise on a near-zero baseline: %+v, %v", checks, err)
	}

	// Errors in the fresh run fail the gate even with a fine p99.
	checks, err = compareGate(base, mkReport("reads", 100, 1, 5), 3, 0)
	if err != nil || checks[0].OK {
		t.Fatalf("request errors must fail the gate: %+v, %v", checks, err)
	}
}

func TestCompareGateStructuralErrors(t *testing.T) {
	base := mkReport("reads", 100, 10, 0)

	if _, err := compareGate(base, mkReport("writes", 100, 1, 0), 3, 0); err == nil ||
		!strings.Contains(err.Error(), "missing from the fresh run") {
		t.Fatalf("missing fresh scenario must fail loudly: %v", err)
	}

	noRow := mkReport("reads", 100, 10, 0)
	noRow.Scenarios[0].Rates[0].RateQPS = 999 // baseline row not at its gate rate
	if _, err := compareGate(noRow, mkReport("reads", 100, 1, 0), 3, 0); err == nil ||
		!strings.Contains(err.Error(), "regenerate") {
		t.Fatalf("baseline without its gate-rate row must fail loudly: %v", err)
	}

	freshOff := mkReport("reads", 200, 1, 0) // fresh measured a different rate
	if _, err := compareGate(base, freshOff, 3, 0); err == nil {
		t.Fatal("fresh run missing the baseline gate rate must fail loudly")
	}
}

func TestCheckSmoke(t *testing.T) {
	good := mkReport("reads", 100, 10, 0)
	if err := checkSmoke(good); err != nil {
		t.Fatalf("clean smoke flagged: %v", err)
	}

	withErrs := mkReport("reads", 100, 10, 0)
	withErrs.Scenarios[0].Rates[0].Errors = 1
	withErrs.Scenarios[0].Rates[0].Latency.Count = 99
	if err := checkSmoke(withErrs); err == nil {
		t.Fatal("smoke with request errors must fail")
	}

	empty := mkReport("reads", 100, 10, 0)
	empty.Scenarios[0].Rates[0].Latency.Count = 0
	if err := checkSmoke(empty); err == nil {
		t.Fatal("smoke with no completions must fail")
	}

	lost := mkReport("reads", 100, 10, 0)
	lost.Scenarios[0].Rates[0].Latency.Count = 50 // sent 100, measured 50, 0 errors
	if err := checkSmoke(lost); err == nil {
		t.Fatal("smoke losing measurements must fail")
	}

	warped := mkReport("reads", 100, 10, 0)
	warped.Scenarios[0].Rates[0].Latency.P50Ms = 99 // above p99
	if err := checkSmoke(warped); err == nil {
		t.Fatal("non-monotone percentiles must fail")
	}
}
